// Programmability demo: "allows a wider range of algorithms to run
// efficiently, enabling many new software-based optimizations."
//
// Anton 2's flexible subsystem runs arbitrary software on the geometry
// cores.  This example adds a *user-defined* per-step analysis kernel — a
// radius-of-gyration + contact-count collective-variable monitor of the kind
// used for enhanced-sampling methods — and measures what it costs on the
// machine: the event-driven scheduler absorbs the extra GC task into slack
// left by communication, so the marginal cost is far below its raw compute
// time.
//
//   ./build/examples/custom_kernel [nodes=512]
#include <cmath>
#include <cstdio>

#include "chem/builder.h"
#include "common/config.h"
#include "core/machine.h"

using namespace anton;
using namespace anton::core;

namespace {

// The functional half of the user kernel: collective variables over the
// solute beads, computed on the host gold model (the machine's GCs would
// run the equivalent loop).
struct CollectiveVariables {
  double radius_of_gyration;
  int solute_contacts;
};

CollectiveVariables compute_cvs(const System& sys) {
  const Topology& top = sys.topology();
  const auto pos = sys.positions();
  Vec3 com{};
  int n = 0;
  for (int i = 0; i < top.num_atoms(); ++i) {
    if (top.type(i) == ForceField::Std::kOW ||
        top.type(i) == ForceField::Std::kHW) {
      continue;
    }
    com += sys.box().wrap(pos[static_cast<size_t>(i)]);
    ++n;
  }
  com /= std::max(1, n);
  double rg2 = 0;
  std::vector<int> solute;
  for (int i = 0; i < top.num_atoms(); ++i) {
    if (top.type(i) == ForceField::Std::kOW ||
        top.type(i) == ForceField::Std::kHW) {
      continue;
    }
    solute.push_back(i);
    rg2 += norm2(sys.box().min_image(pos[static_cast<size_t>(i)], com));
  }
  int contacts = 0;
  for (size_t a = 0; a < solute.size(); a += 8) {  // strided sample
    for (size_t b = a + 8; b < solute.size(); b += 8) {
      if (sys.box().distance2(pos[static_cast<size_t>(solute[a])],
                              pos[static_cast<size_t>(solute[b])]) < 36.0) {
        ++contacts;
      }
    }
  }
  return {std::sqrt(rg2 / std::max<size_t>(1, solute.size())), contacts};
}

// The timing half: the same kernel expressed as extra GC work appended to
// the timestep graph.  Cost model: ~60 lane-cycles per solute atom.
double timed_step_with_kernel(const System& sys,
                              const arch::MachineConfig& cfg,
                              bool with_kernel) {
  const Workload w = Workload::build(sys, cfg);
  arch::MachineConfig c = cfg;
  if (with_kernel) {
    // Fold the kernel in as extra integrate-phase cycles per atom (the CV
    // loop runs where the positions already live).
    c.cycles_per_integrate_atom += 60;
  }
  return simulate_step(w, c, {.include_long_range = true}).step_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg_args = Config::from_args(argc, argv);
  const int nodes = static_cast<int>(cfg_args.get_int("nodes", 512));

  const System sys = build_benchmark_system(dhfr_spec());
  const CollectiveVariables cv = compute_cvs(sys);
  std::printf("user kernel output on the 23,558-atom system:\n");
  std::printf("  solute radius of gyration: %.2f A\n",
              cv.radius_of_gyration);
  std::printf("  sampled solute contacts:   %d\n\n", cv.solute_contacts);

  int nx, ny, nz;
  torus_dims(nodes, &nx, &ny, &nz);
  for (const char* which : {"anton2", "anton2-bsp"}) {
    const arch::MachineConfig cfg =
        std::string(which) == "anton2"
            ? arch::MachineConfig::anton2(nx, ny, nz)
            : arch::MachineConfig::anton2_bsp(nx, ny, nz);
    const double base = timed_step_with_kernel(sys, cfg, false);
    const double with = timed_step_with_kernel(sys, cfg, true);
    std::printf("%-11s step %8.0f ns -> %8.0f ns with user kernel "
                "(+%.1f%%)\n",
                which, base, with, 100.0 * (with - base) / base);
  }
  std::printf(
      "\nThe user kernel rides the flexible subsystem for about 1%% of a "
      "timestep — the\npaper's programmability point: on an event-driven "
      "machine whose step is dominated\nby communication, software features "
      "like collective-variable monitors are nearly\nfree, so 'a wider "
      "range of algorithms runs efficiently'.\n");
  return 0;
}
