// Quickstart: build a small solvated system, run it on the simulated
// 64-node Anton 2, and print both the physics (energies, temperature) and
// the machine performance report.
//
//   ./build/examples/quickstart [atoms=6000] [nodes=64] [steps=20]
//             [--trace out.json] [--metrics metrics.json]
//
// --trace writes a Chrome trace (open in https://ui.perfetto.dev or
// chrome://tracing): MD engine wall-clock phases, DES task spans, torus
// packet lifecycles and link occupancy, event-queue depth.  --metrics
// writes an anton.metrics.v1 JSON snapshot of the same run.
#include <cstdio>

#include "chem/builder.h"
#include "common/config.h"
#include "core/machine.h"
#include "md/engine.h"
#include "md/minimize.h"
#include "obs/flightrecorder.h"

using namespace anton;

int main(int argc, char** argv) {
  // Crash forensics: any fatal signal or invariant failure dumps the last-N
  // flight-recorder events (ANTON_FLIGHT_PATH overrides the destination;
  // ANTON_FLIGHT_EXIT_DUMP=1 also dumps on clean exit).
  obs::flight::install_crash_handler();
  const Config cfg = Config::from_args(argc, argv);
  const int atoms = static_cast<int>(cfg.get_int("atoms", 6000));
  const int nodes = static_cast<int>(cfg.get_int("nodes", 64));
  const int steps = static_cast<int>(cfg.get_int("steps", 20));
  const std::string trace_path = cfg.get_string("trace", "");
  const std::string metrics_path = cfg.get_string("metrics", "");

  // 1. Build a solvated protein-like system at liquid-water density.
  std::printf("Building %d-atom solvated system...\n", atoms);
  BuilderOptions opts;
  opts.total_atoms = atoms;
  opts.solute_fraction = 0.10;
  opts.seed = 42;
  System sys = build_solvated_system(opts);
  std::printf("  box %.1f A, %d molecules, %zu constraints\n",
              sys.box().lengths().x, sys.topology().num_molecules(),
              sys.topology().constraints().size());

  // 2. Relax builder clashes, then re-thermalise.
  MdParams md;
  md.cutoff = 8.0;
  md.skin = 1.0;
  md.dt_fs = 2.0;
  md.respa_k = 2;
  md.long_range = LongRangeMethod::kMesh;
  const auto min = md::minimize_energy(sys, md, 200);
  sys.assign_velocities(300.0, 42);
  std::printf("  minimised: %.1f -> %.1f kcal/mol in %d steps\n",
              min.initial_energy, min.final_energy, min.steps);

  // 3. Run on the simulated Anton 2 machine: functional physics + timing.
  int nx, ny, nz;
  core::torus_dims(nodes, &nx, &ny, &nz);
  arch::MachineConfig mc = arch::MachineConfig::anton2(nx, ny, nz);
  mc.trace_path = trace_path;
  mc.metrics_path = metrics_path;
  core::AntonMachine machine(mc);
  std::printf("\nRunning %d steps on the simulated %dx%dx%d Anton 2...\n",
              steps, nx, ny, nz);
  const core::PerfReport perf = machine.run(sys, md, steps);

  // 4. Report.
  md::Simulation probe(sys, md);
  const EnergyReport e = probe.energies();
  std::printf("\nphysics after %d steps:\n", steps);
  std::printf("  temperature     %8.1f K\n", sys.temperature());
  std::printf("  potential       %8.1f kcal/mol\n", e.potential());
  std::printf("  kinetic         %8.1f kcal/mol\n", e.kinetic);

  std::printf("\nmachine performance (%s, %d nodes):\n",
              perf.machine.c_str(), perf.nodes);
  std::printf("  full step       %8.0f ns (with FFT)\n",
              perf.full_step.step_ns);
  std::printf("  short step      %8.0f ns (RESPA inner)\n",
              perf.short_step.step_ns);
  std::printf("  simulation rate %8.2f us/day at dt=%.1f fs\n",
              perf.us_per_day(), perf.dt_fs);
  if (!trace_path.empty()) {
    std::printf("\ntrace written to %s (load in ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  return 0;
}
