// Umbrella-sampling window: the kind of enhanced-sampling workload Anton 2's
// programmability enables ("allows a wider range of algorithms to run
// efficiently").
//
// Two solute beads are held at a series of target separations with harmonic
// distance restraints; each window samples the restrained distance and the
// machine model reports what the added bias costs per step.  A trajectory of
// the final window is written in XYZ for external visualisation.
//
//   ./build/examples/umbrella_window [windows=4] [steps=300]
#include <cstdio>
#include <fstream>

#include "chem/builder.h"
#include "common/config.h"
#include "common/stats.h"
#include "core/machine.h"
#include "md/checkpoint.h"
#include "md/engine.h"
#include "md/minimize.h"

using namespace anton;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int windows = static_cast<int>(cfg.get_int("windows", 4));
  const int steps = static_cast<int>(cfg.get_int("steps", 300));

  // A small solvated two-chain system; restrain the first bead of each
  // chain against the other.
  BuilderOptions o;
  o.total_atoms = 3000;
  o.solute_fraction = 0.12;
  o.chain_length = 60;
  o.seed = 99;
  System base = build_solvated_system(o);

  MdParams p;
  p.cutoff = 7.0;
  p.skin = 0.8;
  p.dt_fs = 1.0;
  p.respa_k = 2;
  p.long_range = LongRangeMethod::kMesh;
  p.thermostat = ThermostatKind::kLangevin;
  p.langevin_gamma_per_fs = 0.02;
  p.temperature_k = 300.0;
  md::minimize_energy(base, p, 200);
  base.assign_velocities(300.0, 99);

  // Pick the two chain-start beads (first two molecules are chains).
  const auto [a_begin, a_end] = base.topology().molecule_range(0);
  const auto [b_begin, b_end] = base.topology().molecule_range(1);
  (void)a_end;
  (void)b_end;
  const int bead_a = a_begin, bead_b = b_begin;
  const double k_umbrella = 8.0;  // kcal/mol/Å²

  std::printf("umbrella sampling over the %d-%d bead separation "
              "(k = %.1f kcal/mol/A^2)\n\n",
              bead_a, bead_b, k_umbrella);
  std::printf("%8s %12s %12s %10s\n", "r0 (A)", "<r> (A)", "stddev (A)",
              "samples");

  std::ofstream traj("/tmp/umbrella_last_window.xyz");
  for (int w = 0; w < windows; ++w) {
    const double r0 = 8.0 + 3.0 * w;
    // Fresh topology clone with this window's restraint.
    auto top = std::make_shared<Topology>(base.topology());
    top->add_distance_restraint({bead_a, bead_b, k_umbrella, r0});
    System sys(top, base.box(),
               std::vector<Vec3>(base.positions().begin(),
                                 base.positions().end()));
    std::copy(base.velocities().begin(), base.velocities().end(),
              sys.velocities().begin());

    md::Simulation sim(std::move(sys), p);
    sim.step(steps / 3);  // burn-in toward the window target
    RunningStat r_stat;
    for (int s = 0; s < steps; s += 5) {
      sim.step(5);
      r_stat.add(sim.system().box().distance(
          sim.system().positions()[static_cast<size_t>(bead_a)],
          sim.system().positions()[static_cast<size_t>(bead_b)]));
      if (w == windows - 1) {
        md::append_xyz_frame(traj, sim.system(),
                             "window r0=" + std::to_string(r0));
      }
    }
    std::printf("%8.1f %12.2f %12.2f %10llu\n", r0, r_stat.mean(),
                r_stat.stddev(),
                static_cast<unsigned long long>(r_stat.count()));
  }
  std::printf("\nlast window trajectory: /tmp/umbrella_last_window.xyz\n");

  // What does the bias cost on the machine?  One extra GC distance term per
  // step is noise; the interesting number is the whole enhanced-sampling
  // step rate.
  const core::AntonMachine machine(arch::MachineConfig::anton2(4, 4, 4));
  const auto perf = machine.estimate(base, p.dt_fs, p.respa_k);
  std::printf("machine estimate for this system on 64 Anton 2 nodes: "
              "%.1f us/day\n",
              perf.us_per_day());
  return 0;
}
