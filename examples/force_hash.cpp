// Prints a bit-exact digest of the forces and energies of one deterministic
// force evaluation.  Two builds that claim bitwise-identical physics — e.g.
// the AVX2 and scalar SIMD backends, or different thread counts under
// deterministic_forces — must print byte-identical output; scripts/check.sh
// diffs this across the two backend trees as the cross-configuration parity
// smoke test.
//
//   ./build/examples/force_hash [molecules=729] [threads=4] [seed=11]
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <vector>

#include "chem/builder.h"
#include "common/config.h"
#include "common/threadpool.h"
#include "md/forces.h"

using namespace anton;

namespace {

// FNV-1a over the raw little-endian bytes of a double sequence.
struct Digest {
  uint64_t h = 1469598103934665603ull;
  void add(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
};

uint64_t bits_of(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int molecules = static_cast<int>(cfg.get_int("molecules", 729));
  const int threads = static_cast<int>(cfg.get_int("threads", 4));
  const uint64_t seed = static_cast<uint64_t>(cfg.get_int("seed", 11));

  System sys = build_water_box(molecules, seed);
  MdParams md;
  md.cutoff = 9.0;
  md.skin = 1.0;
  md.tabulate_erfc = true;
  md.deterministic_forces = true;
  md.long_range = LongRangeMethod::kMesh;

  ThreadPool pool(static_cast<unsigned>(threads));
  md::ForceCompute fc(sys.topology_ptr(), sys.box(), md, &pool);
  std::vector<Vec3> forces(static_cast<size_t>(sys.num_atoms()), Vec3{});
  fc.warm(sys.positions());
  const EnergyReport e = fc.compute_all(sys.positions(), forces);

  Digest d;
  for (const Vec3& f : forces) {
    d.add(f.x);
    d.add(f.y);
    d.add(f.z);
  }
  std::printf("atoms %d threads %d\n", sys.num_atoms(), threads);
  std::printf("force_digest %016" PRIx64 "\n", d.h);
  std::printf("f0 %016" PRIx64 " %016" PRIx64 " %016" PRIx64 "\n",
              bits_of(forces[0].x), bits_of(forces[0].y),
              bits_of(forces[0].z));
  std::printf("e_lj %016" PRIx64 "\n", bits_of(e.lj));
  std::printf("e_coul_real %016" PRIx64 "\n", bits_of(e.coulomb_real));
  std::printf("e_coul_kspace %016" PRIx64 "\n", bits_of(e.coulomb_kspace));
  std::printf("e_coul_excl %016" PRIx64 "\n", bits_of(e.coulomb_excl));
  return 0;
}
