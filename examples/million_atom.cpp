// Million-atom capacity demo: the abstract's "first platform to achieve
// simulation rates of multiple microseconds of physical time per day for
// systems with millions of atoms."
//
// Builds an STMV-class (~1.07M atom) solvated system, decomposes it onto the
// 512-node machine, and reports the rate plus where the timestep goes.
//
//   ./build/examples/million_atom [atoms=1066628]
#include <cstdio>
#include <iostream>

#include "chem/builder.h"
#include "common/config.h"
#include "common/table.h"
#include "core/machine.h"

using namespace anton;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int atoms = static_cast<int>(cfg.get_int("atoms", 1066628));

  std::printf("Building %d-atom solvated system (this allocates ~%d MB)...\n",
              atoms, static_cast<int>(atoms * 120e-6));
  BuilderOptions opts;
  opts.total_atoms = atoms;
  opts.solute_fraction = 0.12;
  opts.temperature_k = -1;  // capacity study: timing only
  opts.seed = 7;
  const System sys = build_solvated_system(opts);
  std::printf("  box %.1f A per side\n", sys.box().lengths().x);

  const core::AntonMachine machine(arch::MachineConfig::anton2());
  const core::Workload w = core::Workload::build(sys, machine.config());
  std::printf("  %d nodes, %.0f atoms/node, %.1fM pairwise interactions "
              "per step\n",
              w.num_nodes(), w.mean_atoms_per_node(),
              static_cast<double>(w.total_pairs()) / 1e6);

  const core::PerfReport r = machine.estimate(sys, 2.5, 2);
  std::printf("\nsimulation rate: %.2f us/day (%.0f ns/day)\n",
              r.us_per_day(), r.ns_per_day());
  std::printf("full step %.2f us, RESPA short step %.2f us\n",
              r.full_step.step_ns / 1e3, r.short_step.step_ns / 1e3);

  TextTable t({"phase", "busy per node (ns)", "phase ends at (ns)"});
  for (const char* phase :
       {"pos_export", "pair_local", "pair_tile", "bonded", "spread", "fft",
        "interp", "integrate", "constrain", "migrate"}) {
    const auto& busy = r.full_step.exec.phase_busy_ns;
    const auto& end = r.full_step.exec.phase_end_ns;
    const auto bit = busy.find(phase);
    const auto eit = end.find(phase);
    t.add_row({phase,
               TextTable::fmt(bit == busy.end() ? 0 : bit->second / 512, 1),
               TextTable::fmt(eit == end.end() ? 0 : eit->second, 0)});
  }
  t.print(std::cout);
  return 0;
}
