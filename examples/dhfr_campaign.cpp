// DHFR-class scaling campaign: the workload the paper's headline number is
// quoted on.  Builds the standard 23,558-atom benchmark system and studies
// how simulation rate, communication exposure, and the event-driven
// advantage change across machine sizes — the kind of study an Anton user
// runs before committing machine time.
//
//   ./build/examples/dhfr_campaign [max_nodes=512]
#include <cstdio>
#include <iostream>
#include <vector>

#include "chem/builder.h"
#include "common/config.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "core/machine.h"
#include "core/sweep.h"

using namespace anton;

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const int max_nodes = static_cast<int>(cfg.get_int("max_nodes", 512));

  std::printf("Building the standard 23,558-atom benchmark system...\n");
  const System sys = build_benchmark_system(dhfr_spec());

  // All machine points run in one parallel sweep; the output is identical
  // to a serial campaign, just produced sooner.
  std::vector<int> node_counts;
  std::vector<core::EstimatePoint> pts;
  for (int nodes = 8; nodes <= max_nodes; nodes *= 2) {
    int nx, ny, nz;
    core::torus_dims(nodes, &nx, &ny, &nz);
    node_counts.push_back(nodes);
    pts.push_back({arch::MachineConfig::anton2(nx, ny, nz), 2.5, 2});
    pts.push_back({arch::MachineConfig::anton2_bsp(nx, ny, nz), 2.5, 2});
  }
  ThreadPool pool;
  const auto results = core::SweepRunner(&pool).estimate(sys, pts);

  TextTable t({"nodes", "atoms/node", "us/day", "step (us)",
               "noc bytes/step (KB)", "mean msg lat (ns)", "event/bsp"});
  for (size_t i = 0; i < node_counts.size(); ++i) {
    const int nodes = node_counts[i];
    const auto& re = results[2 * i];
    const auto& rb = results[2 * i + 1];
    t.add_row({TextTable::fmt_int(nodes),
               TextTable::fmt(23558.0 / nodes, 0),
               TextTable::fmt(re.us_per_day()),
               TextTable::fmt(re.avg_step_ns() / 1e3, 2),
               TextTable::fmt(re.full_step.exec.noc.total_bytes / 1e3, 0),
               TextTable::fmt(re.full_step.exec.noc.latency_ns.mean(), 0),
               TextTable::fmt(re.us_per_day() / rb.us_per_day(), 2)});
  }
  t.print(std::cout);

  std::printf(
      "\nAt 512 nodes each node holds ~46 atoms: per-step compute is tens of"
      "\nnanoseconds and everything hinges on how well communication is"
      "\nhidden — which is why the event-driven column grows with scale.\n");
  return 0;
}
