// Sweep-as-a-service demo: stand up the concurrent estimator daemon, throw
// a repetitive sweep at it from several client threads, and print the
// service's view of the traffic (hit rate, coalescing, latency quantiles).
//
//   ./build/examples/sweep_service [atoms=6000] [queries=400] [clients=8]
//       [--svc-threads N] [--svc-cache-mb N] [--svc-queue-depth N]
//       [--metrics svc_metrics.json]
//
// The client traffic is deliberately redundant — a small grid of machine
// points asked for over and over, the shape a sweep frontend or an
// interactive what-if session produces — so most queries resolve as cache
// hits or coalesce onto an in-flight evaluation instead of recomputing.
#include <cstdio>
#include <thread>
#include <vector>

#include "chem/builder.h"
#include "common/config.h"
#include "common/threadpool.h"
#include "core/machine.h"
#include "obs/flightrecorder.h"
#include "obs/metrics.h"
#include "svc/service.h"

using namespace anton;

int main(int argc, char** argv) {
  obs::flight::install_crash_handler();
  const Config cfg = Config::from_args(argc, argv);
  const SvcFlags flags = SvcFlags::from_config(cfg);
  const int atoms = static_cast<int>(cfg.get_int("atoms", 6000));
  const int queries = static_cast<int>(cfg.get_int("queries", 400));
  const int clients = static_cast<int>(cfg.get_int("clients", 8));
  const std::string metrics_path = cfg.get_string("metrics", "");

  std::printf("Building %d-atom solvated system...\n", atoms);
  BuilderOptions opts;
  opts.total_atoms = atoms;
  opts.seed = 42;
  const System sys = build_solvated_system(opts);

  // The sweep grid: a handful of node counts x timestep choices.  Configs
  // are built once and shared immutably with every query.
  std::vector<std::shared_ptr<const arch::MachineConfig>> grid;
  std::vector<double> dts;
  for (const int nodes : {64, 128, 256}) {
    int nx, ny, nz;
    core::torus_dims(nodes, &nx, &ny, &nz);
    grid.push_back(std::make_shared<const arch::MachineConfig>(
        arch::MachineConfig::anton2(nx, ny, nz)));
  }
  for (const double dt : {2.0, 2.5}) dts.push_back(dt);
  const size_t distinct = grid.size() * dts.size();

  ThreadPool pool(static_cast<unsigned>(flags.threads));
  obs::MetricsRegistry metrics;
  svc::EstimatorService::Options sopt;
  sopt.pool = &pool;
  sopt.cache_bytes = flags.cache_bytes();
  sopt.queue_depth = static_cast<size_t>(flags.queue_depth);
  sopt.metrics = &metrics;
  svc::EstimatorService service(sopt);
  const int sys_id = service.register_system(sys);
  service.start();
  std::printf(
      "service up: %u workers, %d MiB cache, queue depth %d, "
      "%zu distinct sweep points\n",
      pool.size(), flags.cache_mb, flags.queue_depth, distinct);

  const double t0 = obs::wall_seconds();
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int q = c; q < queries; q += clients) {
        const auto& mc = grid[static_cast<size_t>(q) % grid.size()];
        const double dt = dts[(static_cast<size_t>(q) / grid.size()) % dts.size()];
        service.query(mc, sys_id, dt);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = obs::wall_seconds() - t0;

  const svc::EstimatorService::Stats st = service.stats();
  std::printf("\n%d queries from %d clients in %.2f s (%.0f q/s):\n",
              queries, clients, elapsed, queries / elapsed);
  std::printf("  hits       %6llu\n", (unsigned long long)st.hits);
  std::printf("  misses     %6llu\n", (unsigned long long)st.misses);
  std::printf("  coalesced  %6llu\n", (unsigned long long)st.coalesced);
  std::printf("  shed       %6llu\n", (unsigned long long)st.shed);
  std::printf("  evaluated  %6llu  (distinct points: %zu)\n",
              (unsigned long long)st.evaluated, distinct);
  std::printf("  cache      %zu entries, %.1f KiB resident\n",
              st.cache.entries, st.cache.bytes / 1024.0);

  service.shutdown();
  if (!metrics_path.empty()) {
    metrics.save_json(metrics_path);
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  return 0;
}
