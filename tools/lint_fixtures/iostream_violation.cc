// Fixture: <iostream> in library code.
#include <iostream>  // violation: stream globals in a library TU

void report(int n) { std::cout << n << "\n"; }
