// Seeded violation for the raw-intrinsics rule: vendor SIMD intrinsics
// outside src/common/simd.h.  The WILL_FAIL fixture test asserts anton-lint
// still rejects this file, so the rule cannot silently rot.
#include <immintrin.h>

namespace fixture {

double sum4(const double* p) {
  __m256d v = _mm256_loadu_pd(p);
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

}  // namespace fixture
