// Fixture: must produce ZERO violations — guards against rule over-firing.
#include <map>
#include <sstream>
#include <vector>

// A map (ordered) may be iterated freely.
double sum_map(const std::map<int, double>& m) {
  double sum = 0.0;
  for (const auto& kv : m) sum += kv.second;
  return sum;
}

// Allocation outside an annotated function is fine.
void grow(std::vector<int>& v) {
  v.reserve(128);
  v.push_back(1);
}

// ANTON_HOT_NOALLOC
double hot_sum(const std::vector<double>& v) {
  double s = 0.0;
  // Words like "news" or "renewal" in comments must not trip the lint.
  for (double x : v) s += x;
  return s;
}
