// Fixture: every lint rule fires in this file and every hit carries an
// `// anton-lint: allow(rule)` marker — the anton_lint.suppressions ctest
// runs the linter over tools/lint_fixtures/passing and asserts exit 0, so
// a regression that breaks suppression matching fails loudly instead of
// shipping silently.
#include "common/fixed_point.h"
#include <iostream>     // anton-lint: allow(iostream-lib) exercises the suppression
#include <immintrin.h>  // anton-lint: allow(raw-intrinsics) exercises the suppression
#include <chrono>
#include <functional>
#include <unordered_map>
#include <vector>

void hot_path(std::vector<int>& scratch) {
  ANTON_HOT_NOALLOC();
  if (scratch.empty()) {
    scratch.reserve(64);  // anton-lint: allow(hot-alloc) amortized warmup
  }
  scratch.push_back(1);  // anton-lint: allow(hot-alloc) capacity reserved above
}

double checksum(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  // anton-lint: allow(unordered-iter) commutative sum — order cannot matter
  for (const auto& [key, w] : weights) {
    sum += w;
    (void)key;
  }
  return sum;
}

void mixed_fixed() {
  // anton-lint: allow(fixed-literal) documented calibration constant
  anton::Fixed<16> half{0.5};
  (void)half;
}

long legacy_timer() {
  auto t = std::chrono::steady_clock::now();  // anton-lint: allow(raw-clock) exercises the suppression
  return t.time_since_epoch().count();
}

void stored_callback() {
  std::function<void()> cb = [] {};  // anton-lint: allow(des-std-function) exercises the suppression
  cb();
}

// anton-lint: allow(raw-intrinsics) exercises the suppression
__m256d raw_vector(__m256d a) {
  return _mm256_add_pd(a, a);  // anton-lint: allow(raw-intrinsics) exercises the suppression
}
