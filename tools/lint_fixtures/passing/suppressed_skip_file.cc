// Fixture: the skip-file escape hatch must keep working.  This file is
// full of would-be violations; the anton_lint.suppressions ctest asserts
// it lints clean solely because of the marker on the next line.
// anton-lint: skip-file
#include <iostream>
#include <functional>
#include <vector>

// ANTON_HOT_NOALLOC
void hot_but_skipped(std::vector<int>& v, int n) {
  v.resize(static_cast<size_t>(n));
  int* leak = new int[8];
  (void)leak;
  std::function<void()> fn = [] {};
  fn();
  std::cout << "skip-file silences all of this\n";
}
