// Fixture: the two tempting shortcuts in a cross-shard mailbox, seeded so
// anton_lint keeps rejecting them.  A real ShardRing (src/sim/mailbox.h)
// carries trivially-movable Parcels whose callables live in InlineFn
// buffers, and orders drains by *simulated* time — never the host clock.
#include <chrono>
#include <functional>
#include <vector>

namespace anton::sim_fixture {

struct Parcel {
  double time;
  std::function<void()> fn;  // violation: heap-owning callable per parcel
};

struct Mailbox {
  std::vector<Parcel> ring;

  // violation: std::function parameter on the cross-shard post path
  void post(double t, std::function<void()> fn);

  double drain_deadline() const {
    // violation: host wall-clock consulted inside the DES core
    const auto now = std::chrono::steady_clock::now();
    return static_cast<double>(now.time_since_epoch().count());
  }
};

}  // namespace anton::sim_fixture
