// Fixture: std::function in the discrete-event core (parameter and member).
// The path filter treats this directory as DES-core code.
#include <functional>

namespace anton::sim_fixture {

// violation: std::function parameter on a scheduling entry point
void schedule_at(double t, std::function<void()> fn);

struct Event {
  double time;
  std::function<void()> fn;  // violation: std::function member per event
};

}  // namespace anton::sim_fixture
