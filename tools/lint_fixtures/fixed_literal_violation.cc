// Fixture: raw floating literals mixed with fixed-point types.
#include "common/fixed_point.h"

using anton::Fixed;
using anton::ForceFixed;

anton::Fixed<32> half_unit() {
  // The lint is line-based: the literal and the fixed-point token must share
  // a line to be caught, which they do in idiomatic single-expression code.
  Fixed<32> f = Fixed<32>::from_raw(static_cast<int64_t>(0.5 * 65536.0));  // violation
  return f;
}

double ok_conversion() {
  // Explicit conversions are fine:
  const auto f = Fixed<32>::from_double(0.5);
  return f.to_double();
}

anton::Fixed<16> scaled() {
  Fixed<16> a;
  a += Fixed<16>::from_raw(static_cast<int64_t>(1.5e3));  // violation
  return a;
}
