// Fixture: heap-allocating calls inside an ANTON_HOT_NOALLOC function.
#include <functional>
#include <memory>
#include <vector>

// ANTON_HOT_NOALLOC
void hot_path(std::vector<int>& scratch, int n) {
  scratch.resize(static_cast<size_t>(n));      // violation: resize
  for (int i = 0; i < n; ++i) {
    scratch.push_back(i);                      // violation: push_back
  }
  int* leak = new int[8];                      // violation: new
  (void)leak;
  // anton-lint: allow(des-std-function) — this file seeds hot-alloc only
  std::function<void()> fn = [] {};            // violation: std::function
  fn();
  auto p = std::make_unique<int>(3);           // violation: make_unique
  (void)p;
  // Suppressed growth is fine:
  scratch.reserve(64);  // anton-lint: allow(hot-alloc)
}

// Not annotated: allocation here must NOT be flagged.
void cold_path(std::vector<int>& v) { v.push_back(1); }
