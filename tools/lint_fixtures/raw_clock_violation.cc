// Fixture: raw steady_clock read outside src/obs/.
#include <chrono>

double elapsed_seconds() {
  const auto t0 = std::chrono::steady_clock::now();  // violation: raw clock
  const auto t1 =
      std::chrono::high_resolution_clock::now();  // violation: raw clock
  return std::chrono::duration<double>(t1 - t0).count();
}
