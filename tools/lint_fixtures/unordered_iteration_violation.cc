// Fixture: order-sensitive accumulation over unordered containers.
#include <unordered_map>
#include <unordered_set>

double sum_values(const std::unordered_map<int, double>& m) {
  std::unordered_map<int, double> local = m;
  double sum = 0.0;
  for (const auto& kv : local) {  // violation: unordered iteration order
    sum += kv.second;             // feeds a float accumulation
  }
  return sum;
}

double sum_set(const std::unordered_set<int>& s) {
  double sum = 0.0;
  for (int v : s) sum += 1.0 / v;  // violation: parameter is unordered too
  return sum;
}
