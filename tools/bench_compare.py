#!/usr/bin/env python3
"""Statistical bench-regression gate.

Compares a fresh bench result against a committed baseline and fails (exit 1)
when any performance metric moved past its tolerance band in the bad
direction.  Both bench output schemas are understood:

  * anton.metrics.v1 snapshots (BENCH_f7.json, BENCH_f8.json, run metrics):
    gauges compare by value, stats by mean, counters by value.
  * google-benchmark JSON (BENCH_f6.json): each benchmark name compares by
    the *minimum* real_time across its repetition entries — the same
    statistic bench_util.h's time_min_ms uses, robust to bursty hosts.

Direction is inferred from the metric name:

  lower-better   *_ms, *_ns, *_us, *.seconds, *.real_time, *.cpu_time
  higher-better  *speedup*, *_meps, *ipc, rates ("/s")
  equality       *.match, *.points, *.atoms, *.dims (structure must not move)
  info           everything else (reported, never gated)

Tolerances come from a JSON config (default bench/bench_compare.json next to
the baseline): {"default_tolerance": 0.25, "metrics": {"<name>": 0.10}}.
A tolerance of 0.25 means a lower-better metric may grow 25% before the gate
trips; equality metrics always use an exact match (with 1e-9 slack).

Usage:
  bench_compare.py BASELINE CURRENT [options]

Options:
  --config FILE        tolerance config (default: bench_compare.json beside
                       the baseline, if present)
  --advisory           report, but always exit 0 (CI on shared runners)
  --update             copy CURRENT over BASELINE after the report
  --append-history F   append one summary JSON line to F
  -q, --quiet          only print regressions and the verdict
"""

import argparse
import json
import math
import os
import shutil
import sys
import time


def load_metrics(path):
    """Returns {name: value} for either bench schema."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    if "benchmarks" in doc:  # google-benchmark JSON
        for entry in doc["benchmarks"]:
            if entry.get("run_type", "iteration") != "iteration":
                continue
            name = entry["name"]
            t = entry.get("real_time")
            if t is not None:
                key = name + ".real_time"
                out[key] = min(out.get(key, math.inf), float(t))
        return out
    if doc.get("schema") == "anton.metrics.v1":
        for name, m in doc.get("metrics", {}).items():
            kind = m.get("type")
            if kind in ("gauge", "counter"):
                out[name] = float(m["value"])
            elif kind == "stat":
                out[name] = float(m.get("mean", 0.0))
            elif kind == "histogram":
                out[name + ".p50"] = float(m.get("p50", 0.0))
        return out
    raise ValueError(f"{path}: neither google-benchmark nor anton.metrics.v1")


def classify(name):
    """'lower', 'higher', 'equal', or 'info'."""
    n = name.lower()
    leaf = n.rsplit(".", 1)[-1]
    if leaf in ("match", "points", "atoms", "dims", "mesh", "constraints",
                "steps_per_iter"):
        return "equal"
    if (n.endswith("_ms") or n.endswith("_ns") or n.endswith("_us")
            or n.endswith(".seconds") or n.endswith(".real_time")
            or n.endswith(".cpu_time") or n.endswith(".makespan_ns")):
        return "lower"
    if ("speedup" in n or n.endswith("_meps") or n.endswith(".ipc")
            or n.endswith("/s") or n.endswith("_per_day")):
        return "higher"
    return "info"


def load_config(path, baseline):
    if path is None:
        guess = os.path.join(os.path.dirname(os.path.abspath(baseline)),
                             "bench_compare.json")
        path = guess if os.path.exists(guess) else None
    if path is None:
        return 0.25, {}
    with open(path) as f:
        cfg = json.load(f)
    per_metric = {k: float(v) for k, v in cfg.get("metrics", {}).items()}
    return float(cfg.get("default_tolerance", 0.25)), per_metric


def compare(base, cur, default_tol, per_metric):
    """Returns (rows, regressions); each row is (status, name, detail)."""
    rows = []
    regressions = []
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            rows.append(("MISS", name, "present in baseline, absent now"))
            regressions.append(name)
            continue
        if name not in base:
            rows.append(("NEW", name, f"= {cur[name]:.6g} (no baseline)"))
            continue
        b, c = base[name], cur[name]
        kind = classify(name)
        tol = per_metric.get(name, default_tol)
        if kind == "info":
            rows.append(("info", name, f"{b:.6g} -> {c:.6g}"))
            continue
        if kind == "equal":
            ok = abs(c - b) <= 1e-9 * max(1.0, abs(b))
            rows.append(("ok" if ok else "FAIL", name,
                         f"{b:.6g} -> {c:.6g} (must match)"))
            if not ok:
                regressions.append(name)
            continue
        if b == 0:
            rows.append(("info", name, f"{b:.6g} -> {c:.6g} (zero baseline)"))
            continue
        ratio = c / b
        # Fraction moved in the *bad* direction (negative = improvement).
        bad = ratio - 1.0 if kind == "lower" else 1.0 - ratio
        ok = bad <= tol
        arrow = "slower" if kind == "lower" else "lower"
        detail = (f"{b:.6g} -> {c:.6g}  ({100 * bad:+.1f}% {arrow},"
                  f" tol {100 * tol:.0f}%)")
        rows.append(("ok" if ok else "FAIL", name, detail))
        if not ok:
            regressions.append(name)
    return rows, regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--config")
    ap.add_argument("--advisory", action="store_true")
    ap.add_argument("--update", action="store_true")
    ap.add_argument("--append-history", metavar="FILE")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args()

    try:
        base = load_metrics(args.baseline)
        cur = load_metrics(args.current)
        default_tol, per_metric = load_config(args.config, args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    rows, regressions = compare(base, cur, default_tol, per_metric)
    for status, name, detail in rows:
        if args.quiet and status not in ("FAIL", "MISS"):
            continue
        print(f"  [{status:>4}] {name}: {detail}")

    gated = sum(1 for s, _, _ in rows if s in ("ok", "FAIL", "MISS"))
    if regressions:
        verdict = "ADVISORY" if args.advisory else "FAIL"
        print(f"bench_compare: {verdict} — {len(regressions)} of {gated} "
              f"gated metrics regressed vs {args.baseline}")
    else:
        print(f"bench_compare: OK — {gated} gated metrics within tolerance "
              f"vs {args.baseline}")

    if args.append_history:
        record = {
            "time": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "baseline": os.path.basename(args.baseline),
            "current": os.path.basename(args.current),
            "gated": gated,
            "regressions": regressions,
            "metrics": {k: v for k, v in sorted(cur.items())
                        if classify(k) != "info"},
        }
        with open(args.append_history, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")

    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"bench_compare: baseline {args.baseline} updated")

    if regressions and not args.advisory:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
