// Seeded interprocedural purity violation for the anton_callgraph.fixture
// ctest (WILL_FAIL): hot_accumulate is annotated ANTON_HOT_NOALLOC but
// reaches operator new[] two calls down — exactly the shape anton_lint's
// intra-procedural regexes cannot see, because the allocation is not in the
// annotated function's own body.  tools/anton_callgraph.py must report a
// cg-alloc chain hot_accumulate -> reserve_scratch -> grow_buffer ->
// operator new[] when run over this TU's callgraph records.
#include <cstddef>

#include "common/error.h"

namespace anton::cgfix {
namespace {

// Level 2: the actual allocation, invisible to a per-function regex.
double* grow_buffer(std::size_t n) { return new double[n]; }

// Level 1: an innocent-looking helper.
double* reserve_scratch(std::size_t n) { return grow_buffer(n); }

}  // namespace

double hot_accumulate(const double* xs, std::size_t n) {
  ANTON_HOT_NOALLOC();
  double* scratch = reserve_scratch(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    scratch[i] = xs[i];
    sum += scratch[i];
  }
  delete[] scratch;
  return sum;
}

}  // namespace anton::cgfix
