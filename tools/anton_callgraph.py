#!/usr/bin/env python3
"""anton-callgraph: interprocedural hot-path purity verifier.

anton_lint.py checks the ANTON_HOT_NOALLOC contract *intra*-procedurally with
regexes: a hot function that calls a helper which allocates two frames down
passes the lint and is only caught (maybe) at runtime by the alloc hook.
This tool closes that hole with a whole-program call-graph proof.

Pipeline
--------
A tree configured with -DANTON_CALLGRAPH=ON compiles every TU with GCC
`-fcallgraph-info=su` (-O0, so no call edge is inlined away) and turns the
`ANTON_HOT_NOALLOC()` marker macro (common/error.h) into a real call to
`anton::detail::hot_noalloc_root()`.  This tool then:

  1. parses every per-TU `.ci` file under the given build directories and
     links them into one graph (external symbols merge across TUs; local
     symbols stay TU-qualified);
  2. collects the *roots*: every function with a call edge to the marker —
     exact mangled symbol names, one per template instantiation;
  3. runs reachability from each root to a banned-sink list:
       cg-alloc   operator new/delete, malloc/free family
       cg-throw   __cxa_throw / __cxa_allocate_exception / std::__throw_*
       cg-lock    pthread_mutex/rwlock/spin/cond, std::mutex::lock family
       cg-io      iostream operators, printf/fwrite family
     and reports each violation with the full root -> sink call chain;
  4. reports every *opaque edge* (indirect call through a function pointer
     or sim::InlineFn dispatch) reachable from a root: the graph cannot see
     through it, so it must carry an explicit suppression with a reason;
  5. enforces a per-root *stack budget* using the `su` stack-usage records:
     the worst-case acyclic call chain from each root must fit the bound,
     and recursion reachable from a root is flagged (cg-recursion).

Traversal cuts at the cold failure traps (`anton::detail::fail*`,
__assert_fail, abort, std::terminate): a function that fails a check is
aborting the run, so its trap may format and throw — the *fast path* is what
must stay pure.

Suppressions
------------
tools/callgraph_allow.txt, one per line, reason required:

  allow(cg-alloc) root="glob" sink="glob" [via="glob"] reason="why"
  allow(cg-opaque) caller="glob" [site="file:line:col-glob"] reason="why"
  allow(cg-stack|cg-recursion) root="glob" reason="why"

Globs (fnmatch) match demangled signatures.  Unused suppressions warn.

Exit status: 0 clean, 1 violations, 2 usage/config error.
"""

import argparse
import fnmatch
import json
import os
import re
import subprocess
import sys
from collections import deque

MARKER = "anton::detail::hot_noalloc_root"

RULES = ("cg-alloc", "cg-throw", "cg-lock", "cg-io", "cg-opaque",
         "cg-stack", "cg-recursion")

# --------------------------------------------------------------------------
# .ci parsing
# --------------------------------------------------------------------------

_NODE_RE = re.compile(
    r'node:\s*\{\s*title:\s*"((?:[^"\\]|\\.)*)"'
    r'\s+label:\s*"((?:[^"\\]|\\.)*)"')
_EDGE_RE = re.compile(
    r'edge:\s*\{\s*sourcename:\s*"((?:[^"\\]|\\.)*)"'
    r'\s+targetname:\s*"((?:[^"\\]|\\.)*)"'
    r'(?:\s+label:\s*"((?:[^"\\]|\\.)*)")?')
_STACK_RE = re.compile(r"^(\d+) bytes \((static|dynamic[^)]*)\)$")


def _unescape(s):
    return s.replace('\\"', '"').replace("\\\\", "\\")


class Node:
    __slots__ = ("title", "sig", "defloc", "stack", "stack_dynamic", "edges")

    def __init__(self, title):
        self.title = title
        self.sig = title          # demangled signature once a label is seen
        self.defloc = ""          # "file:line:col" of the definition
        self.stack = 0            # worst-case own frame, bytes (su record)
        self.stack_dynamic = False
        self.edges = []           # (target_title, callsite_label)


class Graph:
    def __init__(self):
        self.nodes = {}

    def node(self, title):
        n = self.nodes.get(title)
        if n is None:
            n = self.nodes[title] = Node(title)
        return n

    def add_ci(self, path):
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        for m in _NODE_RE.finditer(text):
            title = _unescape(m.group(1))
            label = _unescape(m.group(2))
            n = self.node(title)
            fields = label.split("\\n")
            if fields and fields[0]:
                n.sig = fields[0]
            defloc = ""
            has_stack = False
            for field in fields[1:]:
                sm = _STACK_RE.match(field)
                if sm:
                    # Same symbol across TUs compiles identically; keep max
                    # to be safe against flag skew.
                    has_stack = True
                    n.stack = max(n.stack, int(sm.group(1)))
                    if sm.group(2) != "static":
                        n.stack_dynamic = True
                elif not defloc and ":" in field:
                    defloc = field
            # A record with a stack field comes from the TU that *defines*
            # the function; records from TUs that merely call it point at the
            # declaration (often a header) and must not win the defloc.
            if defloc and (has_stack or not n.defloc):
                n.defloc = defloc
        for m in _EDGE_RE.finditer(text):
            src = _unescape(m.group(1))
            tgt = _unescape(m.group(2))
            label = _unescape(m.group(3)) if m.group(3) else ""
            self.node(src).edges.append((tgt, label))
            self.node(tgt)  # ensure target exists even if declaration-only

    def dedup_edges(self):
        # The same weak symbol parsed from N TUs accumulates N copies of
        # every edge; collapse them (keeping one callsite label per pair).
        for n in self.nodes.values():
            seen = {}
            for tgt, label in n.edges:
                seen.setdefault(tgt, label)
            n.edges = list(seen.items())

    def demangle(self):
        """Replaces node signatures with c++filt demanglings of the symbol
        titles.  The .ci label signatures are unreliable (GCC emits bare ')'
        for some variadic/template declarations); the mangled title is
        authoritative.  Falls back to the label when c++filt is missing."""
        bares = {}
        for title in self.nodes:
            bare = _strip_tu_prefix(title)
            if bare.startswith("_Z"):
                bares.setdefault(bare, None)
        if bares:
            try:
                proc = subprocess.run(
                    ["c++filt"], input="\n".join(bares) + "\n",
                    capture_output=True, text=True, check=False)
                out = proc.stdout.splitlines()
                if len(out) == len(bares):
                    for bare, dem in zip(list(bares), out):
                        bares[bare] = dem
            except OSError:
                pass
        for title, node in self.nodes.items():
            bare = _strip_tu_prefix(title)
            dem = bares.get(bare)
            if dem:
                node.sig = dem
            elif not bare.startswith("_Z"):
                node.sig = bare  # plain C symbol
            # else: keep the label signature as a best effort


# --------------------------------------------------------------------------
# sink / cut classification
# --------------------------------------------------------------------------

_ALLOC_C = {"malloc", "calloc", "realloc", "free", "aligned_alloc",
            "posix_memalign", "memalign", "valloc", "strdup", "strndup",
            "reallocarray"}
_THROW_C = {"__cxa_throw", "__cxa_rethrow", "__cxa_allocate_exception",
            "__cxa_bad_cast", "__cxa_bad_typeid"}
_LOCK_C = {"pthread_mutex_lock", "pthread_mutex_timedlock",
           "pthread_rwlock_rdlock", "pthread_rwlock_wrlock",
           "pthread_rwlock_timedrdlock", "pthread_rwlock_timedwrlock",
           "pthread_spin_lock", "pthread_cond_wait",
           "pthread_cond_timedwait", "sem_wait", "sem_timedwait", "flock",
           "lockf"}
_IO_C = {"printf", "fprintf", "vfprintf", "sprintf", "snprintf", "puts",
         "fputs", "putchar", "fputc", "putc", "fwrite", "fread", "fopen",
         "fclose", "fflush", "scanf", "fscanf", "getline"}

_LOCK_SIG_PREFIXES = (
    "std::mutex::lock()",
    "std::recursive_mutex::lock()",
    "std::timed_mutex::lock()",
    "std::shared_mutex::lock()",
    "std::shared_mutex::lock_shared()",
    "__gthread_mutex_lock(",
    "__gthread_recursive_mutex_lock(",
    "std::condition_variable::wait(",
)
_IO_SIG_MARKERS = ("std::basic_ostream", "std::basic_istream",
                   "std::basic_filebuf", "std::basic_fstream")

# Placement new/delete construct in caller-provided storage — the pooled
# InlineFn arena and fixed workspaces depend on them; they do not allocate.
_PLACEMENT = {"_ZnwmPv", "_ZnamPv", "_ZdlPvS_", "_ZdaPvS_"}

# Cold failure traps: traversal stops here.  A function that fails a check
# is aborting the run; its unwind/format path is not steady-state.
_CUT_C = {"abort", "exit", "_exit", "__assert_fail", "__cxa_pure_virtual",
          "__stack_chk_fail"}
_CUT_SIG_MARKERS = ("anton::detail::fail", "std::terminate()")


def _strip_tu_prefix(title):
    # Internal-linkage titles are "path/to/tu.cc:_ZL..."; the bare mangled
    # (or C) name is the segment after the last ':'.
    i = title.rfind(":")
    return title[i + 1:] if i >= 0 else title


def classify_sink(node):
    """Returns a rule id if node is a banned sink, else None."""
    bare = _strip_tu_prefix(node.title)
    sig = node.sig
    if bare in _PLACEMENT:
        return None
    if bare in _ALLOC_C:
        return "cg-alloc"
    # _Znw/_Zna: operator new / new[];  _Zdl/_Zda: operator delete forms.
    if bare.startswith(("_Znw", "_Zna", "_Zdl", "_Zda")):
        return "cg-alloc"
    if bare in _THROW_C or sig.startswith("std::__throw_"):
        return "cg-throw"
    if bare in _LOCK_C or sig.startswith(_LOCK_SIG_PREFIXES):
        return "cg-lock"
    if bare in _IO_C or any(m in sig for m in _IO_SIG_MARKERS):
        return "cg-io"
    return None


def is_cut(node):
    bare = _strip_tu_prefix(node.title)
    if bare in _CUT_C:
        return True
    return any(m in node.sig for m in _CUT_SIG_MARKERS)


# --------------------------------------------------------------------------
# suppressions
# --------------------------------------------------------------------------

_ALLOW_LINE = re.compile(r"^allow\(([\w-]+)\)\s*(.*)$")
_KV = re.compile(r'(\w+)\s*=\s*"((?:[^"\\]|\\.)*)"')
_ALLOWED_KEYS = {"root", "sink", "via", "caller", "site", "reason"}


class Suppression:
    def __init__(self, rule, kv, origin):
        self.rule = rule
        self.kv = kv
        self.origin = origin
        self.used = False

    def matches(self, finding):
        if self.rule != finding["rule"]:
            return False
        for key in ("root", "sink", "caller", "site"):
            pat = self.kv.get(key)
            if pat is None:
                continue
            val = finding.get(key, "")
            if not fnmatch.fnmatchcase(val, pat):
                return False
        via = self.kv.get("via")
        if via is not None:
            chain = finding.get("chain_sigs", [])
            if not any(fnmatch.fnmatchcase(c, via) for c in chain):
                return False
        return True


def load_suppressions(path):
    sups = []
    if path is None or not os.path.exists(path):
        return sups
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            m = _ALLOW_LINE.match(line)
            if not m:
                raise SystemExit(
                    f"{path}:{lineno}: error: unparseable suppression "
                    f"(expected `allow(rule) key=\"glob\" ... "
                    f"reason=\"...\"`)")
            rule = m.group(1)
            if rule not in RULES:
                raise SystemExit(
                    f"{path}:{lineno}: error: unknown rule '{rule}' "
                    f"(known: {', '.join(RULES)})")
            kv = {km.group(1): _unescape(km.group(2))
                  for km in _KV.finditer(m.group(2))}
            unknown = set(kv) - _ALLOWED_KEYS
            if unknown:
                raise SystemExit(
                    f"{path}:{lineno}: error: unknown key(s) "
                    f"{', '.join(sorted(unknown))}")
            if not kv.get("reason", "").strip():
                raise SystemExit(
                    f"{path}:{lineno}: error: suppression without a reason "
                    f"— every allow() must say why the edge is sanctioned")
            sups.append(Suppression(rule, kv, f"{path}:{lineno}"))
    return sups


# --------------------------------------------------------------------------
# analysis
# --------------------------------------------------------------------------

def find_roots(graph):
    """Maps root title -> callsite label of its marker edge."""
    roots = {}
    for n in graph.nodes.values():
        for tgt, label in n.edges:
            t = graph.nodes.get(tgt)
            if t is not None and MARKER in t.sig:
                roots[n.title] = label
    return roots


def _defloc(node):
    # "file:line:col" -> "file:line" for GCC-style output
    parts = node.defloc.rsplit(":", 1)
    return parts[0] if len(parts) == 2 and parts[1].isdigit() else node.defloc


def analyze_root(graph, root_title, findings):
    """BFS from one root; records purity violations and opaque edges."""
    root = graph.nodes[root_title]
    parent = {root_title: None}     # title -> (parent_title, callsite)
    queue = deque([root_title])
    reached_sinks = set()
    while queue:
        title = queue.popleft()
        node = graph.nodes[title]
        for tgt, label in node.edges:
            target = graph.nodes.get(tgt)
            if target is None or MARKER in target.sig:
                continue
            if _strip_tu_prefix(tgt) == "__indirect_call":
                findings.append({
                    "rule": "cg-opaque",
                    "root": root.sig,
                    "caller": node.sig,
                    "site": label,
                    "file": _defloc(node),
                    "chain_sigs": _chain_sigs(graph, parent, title),
                    "message":
                        f"opaque indirect call in `{node.sig}` at {label}: "
                        "the callgraph cannot see through a function "
                        "pointer; verify the possible targets and suppress "
                        "with a reason",
                })
                continue
            # Cut check first: a cold trap like fail_with<Emit> carries
            # std::basic_ostream in its instantiated signature and would
            # otherwise classify as a cg-io sink.
            if is_cut(target):
                continue  # cold failure trap: fast path ends here
            rule = classify_sink(target)
            if rule is not None:
                if (tgt, rule) not in reached_sinks:
                    reached_sinks.add((tgt, rule))
                    chain = _chain_sigs(graph, parent, title) + [target.sig]
                    findings.append({
                        "rule": rule,
                        "root": root.sig,
                        "sink": target.sig,
                        "site": label,
                        "file": _defloc(root),
                        "chain_sigs": chain,
                        "chain": _chain_pretty(graph, parent, title,
                                               target.sig, label),
                        "message":
                            f"hot root `{root.sig}` reaches banned sink "
                            f"`{target.sig}`",
                    })
                continue  # do not descend past a sink
            if tgt not in parent:
                parent[tgt] = (title, label)
                queue.append(tgt)
    return parent


def _chain_sigs(graph, parent, title):
    chain = []
    while title is not None:
        chain.append(graph.nodes[title].sig)
        entry = parent.get(title)
        title = entry[0] if entry else None
    return list(reversed(chain))


def _chain_pretty(graph, parent, last_title, sink_sig, sink_site):
    steps = []
    title = last_title
    site = sink_site
    while title is not None:
        steps.append((graph.nodes[title].sig, site))
        entry = parent.get(title)
        if entry is None:
            break
        title, site = entry
    steps.reverse()
    lines = []
    for i, (sig, callsite) in enumerate(steps):
        prefix = "    " + ("   " * i) + ("-> " if i else "")
        lines.append(f"{prefix}{sig}")
    lines.append("    " + "   " * len(steps) + f"-> {sink_sig}  [{sink_site}]")
    return lines


def analyze_stack(graph, root_title, budget, findings):
    """Worst-case acyclic stack depth from root; flags recursion."""
    root = graph.nodes[root_title]
    memo = {}
    on_stack = set()
    cycles = []

    def depth(title):
        if title in memo:
            return memo[title]
        node = graph.nodes.get(title)
        if node is None:
            return 0
        if title in on_stack:
            cycles.append(node.sig)
            return 0
        on_stack.add(title)
        best = 0
        best_child = None
        for tgt, _label in node.edges:
            target = graph.nodes.get(tgt)
            if target is None or MARKER in target.sig or is_cut(target) \
                    or classify_sink(target) is not None \
                    or _strip_tu_prefix(tgt) == "__indirect_call":
                continue
            d = depth(tgt)
            if d > best:
                best, best_child = d, tgt
        on_stack.discard(title)
        memo[title] = node.stack + best
        chains[title] = best_child  # for worst-chain reconstruction
        return memo[title]

    chains = {}
    total = depth(root_title)
    for sig in sorted(set(cycles)):
        findings.append({
            "rule": "cg-recursion",
            "root": root.sig,
            "via": sig,
            "file": _defloc(root),
            "chain_sigs": [root.sig, sig],
            "message":
                f"recursion reachable from hot root `{root.sig}` "
                f"(cycle through `{sig}`): worst-case stack is unbounded",
        })
    if budget and total > budget:
        # reconstruct the worst chain
        chain = []
        t = root_title
        while t is not None:
            n = graph.nodes[t]
            chain.append(f"{n.sig}  [{n.stack} bytes]")
            t = chains.get(t)
        findings.append({
            "rule": "cg-stack",
            "root": root.sig,
            "file": _defloc(root),
            "chain_sigs": [root.sig],
            "chain": ["    " + ("-> " if i else "") + c
                      for i, c in enumerate(chain)],
            "message":
                f"hot root `{root.sig}` worst-case stack {total} bytes "
                f"exceeds budget {budget}",
        })
    return total


# --------------------------------------------------------------------------
# root cross-check against the annotated sources
# --------------------------------------------------------------------------

_SRC_MARKER_RE = re.compile(r"^\s*ANTON_HOT_NOALLOC\s*\(\s*\)\s*;")


def crosscheck_roots(src_dir, graph, roots, errors):
    """Every ANTON_HOT_NOALLOC() site in src must appear as >= 1 graph root
    defined in that file (catches: annotated TU not compiled into the
    callgraph tree, or an annotated template never instantiated)."""
    sites = {}
    for dirpath, dirnames, names in os.walk(src_dir):
        dirnames[:] = [d for d in dirnames if not d.startswith((".", "build"))]
        for name in sorted(names):
            if not name.endswith((".h", ".hpp", ".cc", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            count = 0
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                for line in f:
                    if _SRC_MARKER_RE.match(line):
                        count += 1
            if count:
                sites[os.path.normpath(path)] = count
    # distinct definition locations of roots, grouped per source file
    root_locs = {}
    for title in roots:
        node = graph.nodes[title]
        loc = node.defloc.rsplit(":", 1)[0]  # strip column
        file = loc.rsplit(":", 1)[0] if ":" in loc else loc
        root_locs.setdefault(os.path.normpath(file), set()).add(loc)
    total_sites = 0
    for path, count in sorted(sites.items()):
        total_sites += count
        # The same source file can appear under several path spellings across
        # TUs (absolute vs build-relative deflocs), so merge every matching
        # group and dedup by line number.
        lines = set()
        for file, locs in root_locs.items():
            if file.endswith(path) or path.endswith(file):
                lines.update(loc.rsplit(":", 1)[1] for loc in locs)
        found = len(lines)
        if found < count:
            errors.append(
                f"{path}: error: [cg-roots] {count} ANTON_HOT_NOALLOC() "
                f"site(s) but only {found} verified root definition(s) in "
                "the callgraph — a hot TU is missing from the build tree or "
                "an annotated template is never instantiated")
    return total_sites


# --------------------------------------------------------------------------
# main
# --------------------------------------------------------------------------

def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="anton-callgraph",
        description="Interprocedural hot-path purity verifier (GCC "
                    "-fcallgraph-info linker + reachability).")
    ap.add_argument("paths", nargs="+",
                    help="build directories (or .ci files) to link")
    ap.add_argument("--allow", default=None,
                    help="suppression file (tools/callgraph_allow.txt)")
    ap.add_argument("--stack-budget", type=int, default=262144,
                    help="max worst-case acyclic stack bytes per hot root "
                         "(0 disables; default 256 KiB)")
    ap.add_argument("--src", default=None,
                    help="source dir to cross-check annotation sites "
                         "against discovered roots")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as an anton.callgraph.v1 JSON doc")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the summary")
    args = ap.parse_args(argv)

    ci_files = []
    for p in args.paths:
        if os.path.isfile(p):
            ci_files.append(p)
        elif os.path.isdir(p):
            for dirpath, _dirnames, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(".ci"):
                        ci_files.append(os.path.join(dirpath, name))
        else:
            print(f"anton-callgraph: no such path: {p}", file=sys.stderr)
            return 2
    if not ci_files:
        print("anton-callgraph: no .ci files found — configure the tree "
              "with -DANTON_CALLGRAPH=ON and build it first",
              file=sys.stderr)
        return 2

    try:
        suppressions = load_suppressions(args.allow)
    except SystemExit as e:
        print(e, file=sys.stderr)
        return 2

    graph = Graph()
    for f in ci_files:
        graph.add_ci(f)
    graph.dedup_edges()
    graph.demangle()

    roots = find_roots(graph)
    if not roots:
        print("anton-callgraph: no hot roots found — was the tree built "
              "with -DANTON_CALLGRAPH=ON (marker macro enabled)?",
              file=sys.stderr)
        return 2

    findings = []
    for title in sorted(roots):
        analyze_root(graph, title, findings)
        if args.stack_budget or True:
            analyze_stack(graph, title, args.stack_budget, findings)

    # Dedup (template instantiations of the same root produce identical
    # chains up to instantiation arguments; keep them distinct — each is a
    # separately compiled hot body — but drop exact duplicates from
    # re-parsed weak symbols).
    seen = set()
    unique = []
    for f in findings:
        key = (f["rule"], f["root"], f.get("sink", ""), f.get("caller", ""),
               f.get("site", ""))
        if key in seen:
            continue
        seen.add(key)
        unique.append(f)
    findings = unique

    errors = []
    total_sites = None
    if args.src:
        total_sites = crosscheck_roots(args.src, graph, roots, errors)

    kept = []
    for f in findings:
        sup = next((s for s in suppressions if s.matches(f)), None)
        if sup is not None:
            sup.used = True
        else:
            kept.append(f)

    unused = [s for s in suppressions if not s.used]

    if args.json:
        json.dump({
            "schema": "anton.callgraph.v1",
            "ci_files": len(ci_files),
            "nodes": len(graph.nodes),
            "roots": len(roots),
            "annotation_sites": total_sites,
            "stack_budget": args.stack_budget,
            "violations": [
                {k: v for k, v in f.items() if k != "chain"}
                for f in kept
            ],
            "root_errors": errors,
            "unused_suppressions": [s.origin for s in unused],
        }, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for f in kept:
            print(f"{f.get('file', '?')}: error: [{f['rule']}] "
                  f"{f['message']}")
            for line in f.get("chain", []):
                print(line)
        for e in errors:
            print(e)
        for s in unused:
            print(f"{s.origin}: warning: unused suppression "
                  f"(allow({s.rule}))", file=sys.stderr)

    if not args.quiet:
        n_roots = len(roots)
        print(f"anton-callgraph: linked {len(ci_files)} TU(s), "
              f"{len(graph.nodes)} symbols; verified {n_roots} hot root(s)"
              + (f" covering {total_sites} annotation site(s)"
                 if total_sites is not None else "")
              + f"; {len(kept)} violation(s), {len(errors)} root error(s), "
              f"{len(findings) - len(kept)} suppressed",
              file=sys.stderr)
    return 1 if (kept or errors) else 0


if __name__ == "__main__":
    sys.exit(main())
