#!/usr/bin/env python3
"""validate_trace: sanity-check a Chrome trace-event JSON file.

Used by scripts/check.sh (and by hand) to confirm that the telemetry
layer's TraceWriter emitted something Perfetto / chrome://tracing will
actually load:

  * the file parses as JSON (object form with a "traceEvents" array);
  * the array is non-empty;
  * every "X" (complete) event has numeric ts and dur >= 0;
  * every "B" (begin) event has a matching "E" (end) on the same
    (pid, tid), properly nested;
  * counter ("C") and metadata ("M") events carry their required fields.

Exit status: 0 if valid, 1 if not, 2 on usage error.  Stdlib only.
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: cannot parse: {e}")

    if isinstance(doc, list):
        events = doc  # array form is legal in the spec
    elif isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return fail(f"{path}: no 'traceEvents' array")
    else:
        return fail(f"{path}: top level is neither object nor array")

    if not events:
        return fail(f"{path}: traceEvents is empty")

    open_stacks = {}  # (pid, tid) -> count of unmatched B events
    counts = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"{path}: event {i} is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str):
            return fail(f"{path}: event {i} has no 'ph'")
        counts[ph] = counts.get(ph, 0) + 1
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "X":
            if not isinstance(ev.get("ts"), (int, float)):
                return fail(f"{path}: X event {i} has non-numeric ts")
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{path}: X event {i} has bad dur {dur!r}")
        elif ph == "B":
            open_stacks[key] = open_stacks.get(key, 0) + 1
        elif ph == "E":
            if open_stacks.get(key, 0) <= 0:
                return fail(f"{path}: E event {i} on {key} without open B")
            open_stacks[key] -= 1
        elif ph == "C":
            if not isinstance(ev.get("args"), dict) or not ev["args"]:
                return fail(f"{path}: C event {i} has no args series")
        elif ph == "M":
            if "name" not in ev:
                return fail(f"{path}: M event {i} has no name")

    unclosed = {k: v for k, v in open_stacks.items() if v != 0}
    if unclosed:
        return fail(f"{path}: unmatched B events on tracks {unclosed}")
    if counts.get("X", 0) == 0 and counts.get("B", 0) == 0:
        return fail(f"{path}: no span events (X or B/E) at all")

    summary = ", ".join(f"{ph}:{n}" for ph, n in sorted(counts.items()))
    print(f"validate_trace: OK: {path}: {len(events)} events ({summary})")
    return 0


def main(argv):
    if len(argv) < 2:
        print("usage: validate_trace.py TRACE.json [TRACE.json...]",
              file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc = max(rc, validate(path))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
