#!/usr/bin/env python3
"""validate_trace: sanity-check a Chrome trace-event JSON file.

Used by scripts/check.sh (and by hand) to confirm that the telemetry
layer's TraceWriter emitted something Perfetto / chrome://tracing will
actually load:

  * the file parses as JSON (object form with a "traceEvents" array);
  * the array is non-empty;
  * every "X" (complete) event has numeric ts and dur >= 0;
  * every "B" (begin) event has a matching "E" (end) on the same
    (pid, tid), properly nested;
  * counter ("C") and metadata ("M") events carry their required fields.

Flight-recorder dumps (obs/flightrecorder.h) are the same format plus a
top-level "flight" object; when present it must carry the
"anton.flight.v1" schema tag and thread/record counts consistent with the
events in the file.  Pass --flight to additionally *require* the file to
be a flight dump (crash-dump smoke tests).

Exit status: 0 if valid, 1 if not, 2 on usage error.  Stdlib only.
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def validate(path, require_flight=False):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: cannot parse: {e}")

    if isinstance(doc, list):
        events = doc  # array form is legal in the spec
    elif isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return fail(f"{path}: no 'traceEvents' array")
    else:
        return fail(f"{path}: top level is neither object nor array")

    flight = doc.get("flight") if isinstance(doc, dict) else None
    if require_flight and flight is None:
        return fail(f"{path}: not a flight dump (no 'flight' object)")
    if flight is not None:
        if flight.get("schema") != "anton.flight.v1":
            return fail(f"{path}: flight schema is "
                        f"{flight.get('schema')!r}, want 'anton.flight.v1'")
        for field in ("threads", "records"):
            if not isinstance(flight.get(field), int) or flight[field] < 0:
                return fail(f"{path}: flight.{field} missing or negative")
        n_records = sum(1 for ev in events
                        if isinstance(ev, dict)
                        and ev.get("cat") == "flight"
                        and ev.get("name") != "flight.window"
                        and ev.get("ph") != "M")
        if n_records != flight["records"]:
            return fail(f"{path}: flight.records={flight['records']} but "
                        f"{n_records} flight events present")
        if require_flight and flight["records"] == 0:
            return fail(f"{path}: flight dump holds zero records")

    if not events:
        return fail(f"{path}: traceEvents is empty")

    open_stacks = {}  # (pid, tid) -> count of unmatched B events
    counts = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"{path}: event {i} is not an object")
        ph = ev.get("ph")
        if not isinstance(ph, str):
            return fail(f"{path}: event {i} has no 'ph'")
        counts[ph] = counts.get(ph, 0) + 1
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "X":
            if not isinstance(ev.get("ts"), (int, float)):
                return fail(f"{path}: X event {i} has non-numeric ts")
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{path}: X event {i} has bad dur {dur!r}")
        elif ph == "B":
            open_stacks[key] = open_stacks.get(key, 0) + 1
        elif ph == "E":
            if open_stacks.get(key, 0) <= 0:
                return fail(f"{path}: E event {i} on {key} without open B")
            open_stacks[key] -= 1
        elif ph == "C":
            if not isinstance(ev.get("args"), dict) or not ev["args"]:
                return fail(f"{path}: C event {i} has no args series")
        elif ph == "M":
            if "name" not in ev:
                return fail(f"{path}: M event {i} has no name")

    unclosed = {k: v for k, v in open_stacks.items() if v != 0}
    if unclosed:
        return fail(f"{path}: unmatched B events on tracks {unclosed}")
    if counts.get("X", 0) == 0 and counts.get("B", 0) == 0:
        return fail(f"{path}: no span events (X or B/E) at all")

    summary = ", ".join(f"{ph}:{n}" for ph, n in sorted(counts.items()))
    tag = " [flight]" if flight is not None else ""
    print(f"validate_trace: OK: {path}: {len(events)} events "
          f"({summary}){tag}")
    return 0


def main(argv):
    args = [a for a in argv[1:] if a != "--flight"]
    require_flight = "--flight" in argv[1:]
    if not args:
        print("usage: validate_trace.py [--flight] TRACE.json "
              "[TRACE.json...]", file=sys.stderr)
        return 2
    rc = 0
    for path in args:
        rc = max(rc, validate(path, require_flight))
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
