#!/usr/bin/env python3
"""anton-lint: project-specific static checks for the anton2sim tree.

The hot-path guarantees established by the zero-allocation threaded
short-range pipeline (PR 1) are properties of *discipline*, not of the type
system: a single stray push_back inside a pair kernel, or a std::unordered_map
iteration feeding an order-sensitive sum, silently breaks the zero-allocation
and bit-determinism contracts the Anton model depends on.  This tool turns
those contracts into machine-checked rules.

Rules
-----
  hot-alloc        No heap-allocating calls (`new`, push_back, emplace_back,
                   resize, reserve, assign, insert, make_unique, make_shared,
                   std::function construction) inside a hot-annotated
                   function.  The preferred annotation is the marker macro
                   `ANTON_HOT_NOALLOC();` (common/error.h) as the first
                   statement of the body — the same marker feeds the
                   interprocedural verifier tools/anton_callgraph.py.  The
                   legacy comment form `// ANTON_HOT_NOALLOC` alone on the
                   line above the signature is still honoured.
  unordered-iter   No range-for iteration over std::unordered_map /
                   std::unordered_set variables: their order is
                   implementation-defined, so any accumulation they feed is
                   non-deterministic across standard libraries and runs.
  fixed-literal    In files that include common/fixed_point.h, a floating
                   literal may not appear on a line that touches Fixed /
                   FixedVec3 / ForceFixed unless it goes through an explicit
                   conversion (from_double / to_double / resolution /
                   max_magnitude / accumulate).  Raw literal <-> fixed mixing
                   is how scale bugs enter.
  iostream-lib     Library code under src/ must not include <iostream>
                   (stream globals add static-init order hazards and drag
                   ~100KB into every binary; use ostringstream via error.h
                   or return data).
  raw-clock        No std::chrono::steady_clock::now() (or
                   high_resolution_clock) outside src/obs/.  All wall-clock
                   reads go through obs::wall_seconds() so the telemetry
                   layer owns the single timing source: phase attribution,
                   the disabled-path zero-cost guarantee, and deterministic
                   replay all assume no code times itself on the side.
  raw-intrinsics   No vendor SIMD intrinsics (<immintrin.h> and friends,
                   _mm*/_MM_* calls, __m128/__m256/__m512 types) outside
                   src/common/simd.h.  Every kernel goes through the portable
                   simd:: wrappers so the scalar backend stays bitwise
                   equivalent and a new ISA backend is a one-file change;
                   a stray intrinsic in a kernel silently breaks both.
  des-std-function No std::function in the discrete-event core (src/sim/,
                   src/noc/) or the estimator service (src/svc/).  Events
                   live in the queue's pooled inline-callable arena
                   (sim::InlineFn); a std::function parameter or member
                   re-introduces a heap allocation per event (any capture
                   past its ~16-byte SSO) and defeats the zero-allocation
                   steady state.  The service's per-query path has the same
                   contract: requests dispatch through shared_ptr<Job> and
                   the pool trampoline, never a per-query type-erased
                   callable.  Take a deduced template parameter on the hot
                   path, or store sim::InlineFn.

Suppressions
------------
  // anton-lint: allow(rule[,rule...])   on the offending line or the line
                                         directly above it
  // anton-lint: skip-file               anywhere in the first 10 lines

Output
------
Diagnostics are GCC-style (`file:line: error: [rule-id] message`) so editors
and CI annotators can parse the location; `--json` emits the same findings
as an anton.lint.v1 JSON document instead.

Exit status: 0 if clean, 1 if any violation, 2 on usage error.
"""

import argparse
import json
import os
import re
import sys

RULES = ("hot-alloc", "unordered-iter", "fixed-literal", "iostream-lib",
         "raw-clock", "raw-intrinsics", "des-std-function")

SOURCE_EXTS = (".h", ".cc", ".cpp", ".hpp")

ALLOC_CALLS = re.compile(
    r"(?:"
    r"\bnew\b"
    r"|\.\s*push_back\s*\("
    r"|\.\s*emplace_back\s*\("
    r"|\.\s*resize\s*\("
    r"|\.\s*reserve\s*\("
    r"|\.\s*assign\s*\("
    r"|\.\s*insert\s*\("
    r"|\bmake_unique\s*<"
    r"|\bmake_shared\s*<"
    r"|\bstd::function\s*<"
    r")"
)

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;=]*?>\s*&?\s*"
    r"(\w+)\s*[;={(),]"
)
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([^)]+)\)")

FLOAT_LITERAL = re.compile(
    r"(?<![\w.])(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+[eE][+-]?\d+)[fF]?"
)
FIXED_TOKEN = re.compile(r"\b(?:Fixed\s*<|FixedVec3\s*<|ForceFixed)\b")
FIXED_CONVERSIONS = re.compile(
    r"\b(?:from_double|to_double|resolution|max_magnitude|accumulate)\s*\("
)

RAW_CLOCK = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*"
    r"(?:steady_clock|high_resolution_clock)\s*::\s*now\s*\("
)
# The telemetry layer is the one sanctioned home of the wall clock.
RAW_CLOCK_ALLOWED_DIRS = ("src/obs/",)

RAW_INTRINSICS_INCLUDE = re.compile(
    r"#\s*include\s*<(?:immintrin|x86intrin|xmmintrin|emmintrin|pmmintrin|"
    r"tmmintrin|smmintrin|nmmintrin|wmmintrin|ammintrin|avx\w*intrin)\.h>"
)
# Intrinsic calls (_mm_..., _mm256_...), control macros (_MM_HINT_T0,
# _MM_SHUFFLE) and register types.  __builtin_prefetch is a compiler
# builtin, not a vendor intrinsic, and deliberately does not match.
RAW_INTRINSICS_USE = re.compile(
    r"(?:\b_mm\d*_\w+|\b_MM_\w+|\b__m(?:64|128|256|512)[di]?\b)"
)
# The portable SIMD layer is the one sanctioned home of raw intrinsics.
RAW_INTRINSICS_ALLOWED_FILES = ("src/common/simd.h",)

DES_STD_FUNCTION = re.compile(r"\bstd\s*::\s*function\s*<")
# The discrete-event core: every callable here rides the event queue's
# pooled inline arena, so std::function is banned file-wide (not just in
# annotated hot functions).  src/svc/ joins the list because the service's
# per-query path (key hash, cache probe, coalesce check) must stay
# allocation-free under concurrency — a std::function materialized per
# query would heap-allocate on every request; job dispatch goes through
# shared_ptr<Job> and the pool's (fn-pointer, ctx) trampoline instead.
# The one sanctioned exception, the cold-path test-evaluator seam in
# service.h, carries an explicit allow().  lint_fixtures is scanned so the
# seeded violation keeps the rule honest.
DES_NOFUNCTION_DIRS = ("src/sim/", "src/noc/", "src/svc/",
                       "tools/lint_fixtures/")

ALLOW_RE = re.compile(r"//\s*anton-lint:\s*allow\(([^)]*)\)")
SKIP_FILE_RE = re.compile(r"//\s*anton-lint:\s*skip-file")
# Two annotation forms mark a hot no-alloc function:
#   * macro form (preferred): `ANTON_HOT_NOALLOC();` as the first statement
#     of the body — also consumed by tools/anton_callgraph.py, which needs
#     the marker compiled into the callgraph.  The hot region is the
#     enclosing brace pair.
#   * comment form (legacy): `// ANTON_HOT_NOALLOC` alone on the line above
#     the signature; the region runs from the next '{' to its match.
ANNOTATION_COMMENT_RE = re.compile(r"^\s*//\s*ANTON_HOT_NOALLOC\s*$")
ANNOTATION_MACRO_RE = re.compile(r"\bANTON_HOT_NOALLOC\s*\(\s*\)\s*;")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        # GCC-style so editors and CI annotators parse the location.
        return f"{self.path}:{self.line}: error: [{self.rule}] {self.message}"

    def to_json(self):
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "severity": "error", "message": self.message}


def strip_comments_and_strings(lines):
    """Returns lines with comments and string/char literals blanked out
    (lengths preserved so columns and brace positions stay meaningful)."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i = 0
        n = len(line)
        in_str = None  # quote char when inside a literal
        while i < n:
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    res.append("  ")
                    i += 2
                    in_block = False
                else:
                    res.append(" ")
                    i += 1
            elif in_str:
                if c == "\\":
                    res.append("  ")
                    i += 2
                elif c == in_str:
                    res.append(c)
                    i += 1
                    in_str = None
                else:
                    res.append(" ")
                    i += 1
            elif c == "/" and nxt == "/":
                res.append(" " * (n - i))
                break
            elif c == "/" and nxt == "*":
                res.append("  ")
                i += 2
                in_block = True
            elif c in "\"'":
                res.append(c)
                in_str = c
                i += 1
            else:
                res.append(c)
                i += 1
        out.append("".join(res))
    return out


def allowed_rules(raw_lines, idx):
    """Set of rules suppressed for raw_lines[idx] (same line or line above)."""
    allowed = set()
    for j in (idx, idx - 1):
        if 0 <= j < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[j])
            if m:
                allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def hot_regions(raw_lines, code_lines):
    """Yields (start_idx, end_idx) line-index ranges (inclusive) of functions
    annotated hot.  Macro form (`ANTON_HOT_NOALLOC();` inside the body) maps
    to the enclosing brace pair; comment form (`// ANTON_HOT_NOALLOC` on its
    own line) maps from the first '{' at or after the annotation to its
    match."""
    regions = []
    n = len(code_lines)

    # --- comment form: forward scan from the annotation line -------------
    for idx, raw in enumerate(raw_lines):
        if not ANNOTATION_COMMENT_RE.match(raw):
            continue
        depth = 0
        start = None
        end = None
        i = idx
        while i < n and end is None:
            for ch in code_lines[i]:
                if ch == "{":
                    depth += 1
                    if start is None:
                        start = i
                elif ch == "}" and start is not None:
                    depth -= 1
                    if depth == 0:
                        end = i
                        break
            i += 1
        if start is not None:
            # Unterminated brace (malformed file): hot to end of file.
            regions.append((start, end if end is not None else n - 1))

    # --- macro form: the enclosing brace pair ----------------------------
    # One char-level pass with a brace stack; when the marker statement is
    # reached, the innermost open brace is the hot function's body.
    stack = []       # line indices of currently-unmatched '{'
    active = []      # [region_start_line, stack_depth_of_body]
    for i, code in enumerate(code_lines):
        m = ANNOTATION_MACRO_RE.search(code)
        marker_col = m.start() if m else None
        for col, ch in enumerate(code):
            if marker_col is not None and col == marker_col and stack:
                active.append([stack[-1], len(stack)])
            if ch == "{":
                stack.append(i)
            elif ch == "}":
                if stack:
                    stack.pop()
                still = []
                for reg in active:
                    if len(stack) < reg[1]:
                        regions.append((reg[0], i))
                    else:
                        still.append(reg)
                active = still
    for reg in active:
        regions.append((reg[0], n - 1))
    return regions


def check_hot_alloc(path, raw_lines, code_lines, violations):
    for start, end in hot_regions(raw_lines, code_lines):
        for i in range(start, end + 1):
            m = ALLOC_CALLS.search(code_lines[i])
            if not m:
                continue
            if "hot-alloc" in allowed_rules(raw_lines, i):
                continue
            violations.append(Violation(
                path, i + 1, "hot-alloc",
                f"heap-allocating call `{m.group(0).strip()}` inside an "
                "ANTON_HOT_NOALLOC function (hoist the buffer into a "
                "persistent workspace, or annotate amortized growth with "
                "`// anton-lint: allow(hot-alloc)`)"))


def check_unordered_iter(path, raw_lines, code_lines, violations):
    unordered_vars = set()
    for code in code_lines:
        for m in UNORDERED_DECL.finditer(code):
            unordered_vars.add(m.group(1))
    for i, code in enumerate(code_lines):
        m = RANGE_FOR.search(code)
        if not m:
            continue
        expr = m.group(1).strip()
        base = re.split(r"[.\-\[(]", expr)[0].strip().lstrip("*&")
        hit = base in unordered_vars or "unordered_map" in expr \
            or "unordered_set" in expr
        if not hit:
            continue
        if "unordered-iter" in allowed_rules(raw_lines, i):
            continue
        violations.append(Violation(
            path, i + 1, "unordered-iter",
            f"range-for over unordered container `{expr}`: iteration order "
            "is implementation-defined, so any accumulation it feeds is "
            "non-deterministic (copy keys into a sorted vector first)"))


def check_fixed_literal(path, raw_lines, code_lines, violations):
    includes_fixed = any(
        "common/fixed_point.h" in raw for raw in raw_lines[:80]
    ) or path.replace(os.sep, "/").endswith("common/fixed_point.h")
    if not includes_fixed:
        return
    for i, code in enumerate(code_lines):
        if not FIXED_TOKEN.search(code):
            continue
        if FIXED_CONVERSIONS.search(code):
            continue
        m = FLOAT_LITERAL.search(code)
        if not m:
            continue
        if "fixed-literal" in allowed_rules(raw_lines, i):
            continue
        violations.append(Violation(
            path, i + 1, "fixed-literal",
            f"floating literal `{m.group(0)}` mixed with fixed-point types "
            "without an explicit conversion (wrap it in "
            "Fixed<>::from_double(...) so the quantization is visible)"))


def check_iostream(path, raw_lines, code_lines, violations, lib_roots):
    norm = os.path.abspath(path)
    if lib_roots and not any(norm.startswith(r + os.sep) for r in lib_roots):
        return
    for i, code in enumerate(code_lines):
        if re.search(r"#\s*include\s*<iostream>", code):
            if "iostream-lib" in allowed_rules(raw_lines, i):
                continue
            violations.append(Violation(
                path, i + 1, "iostream-lib",
                "<iostream> in library code: stream globals add static-init "
                "hazards; use <sstream>/<ostream> (error.h) or return data"))


def check_raw_clock(path, raw_lines, code_lines, violations):
    norm = os.path.abspath(path).replace(os.sep, "/")
    if any("/" + d in norm or norm.startswith(d)
           for d in RAW_CLOCK_ALLOWED_DIRS):
        return
    for i, code in enumerate(code_lines):
        m = RAW_CLOCK.search(code)
        if not m:
            continue
        if "raw-clock" in allowed_rules(raw_lines, i):
            continue
        violations.append(Violation(
            path, i + 1, "raw-clock",
            f"raw clock read `{m.group(0).strip()}` outside src/obs/: use "
            "obs::wall_seconds() (obs/profiler.h) so timing flows through "
            "the telemetry layer"))


def check_raw_intrinsics(path, raw_lines, code_lines, violations):
    norm = os.path.abspath(path).replace(os.sep, "/")
    if any(norm.endswith("/" + f) for f in RAW_INTRINSICS_ALLOWED_FILES):
        return
    for i, code in enumerate(code_lines):
        m = RAW_INTRINSICS_INCLUDE.search(code) or \
            RAW_INTRINSICS_USE.search(code)
        if not m:
            continue
        if "raw-intrinsics" in allowed_rules(raw_lines, i):
            continue
        violations.append(Violation(
            path, i + 1, "raw-intrinsics",
            f"raw vendor intrinsic `{m.group(0).strip()}` outside "
            "src/common/simd.h: kernels must use the portable simd:: "
            "wrappers so the scalar backend stays bitwise equivalent "
            "(add the operation to simd.h if it is missing)"))


def check_des_std_function(path, raw_lines, code_lines, violations):
    norm = os.path.abspath(path).replace(os.sep, "/")
    if not any("/" + d in norm or norm.startswith(d)
               for d in DES_NOFUNCTION_DIRS):
        return
    for i, code in enumerate(code_lines):
        m = DES_STD_FUNCTION.search(code)
        if not m:
            continue
        if "des-std-function" in allowed_rules(raw_lines, i):
            continue
        violations.append(Violation(
            path, i + 1, "des-std-function",
            "std::function in the discrete-event core: it heap-allocates "
            "any capture past its SSO buffer, breaking the pooled "
            "zero-allocation event path (take a deduced template parameter "
            "or store sim::InlineFn)"))


def lint_file(path, rules, lib_roots):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        print(f"anton-lint: cannot read {path}: {e}", file=sys.stderr)
        return []
    if any(SKIP_FILE_RE.search(line) for line in raw_lines[:10]):
        return []
    code_lines = strip_comments_and_strings(raw_lines)
    violations = []
    if "hot-alloc" in rules:
        check_hot_alloc(path, raw_lines, code_lines, violations)
    if "unordered-iter" in rules:
        check_unordered_iter(path, raw_lines, code_lines, violations)
    if "fixed-literal" in rules:
        check_fixed_literal(path, raw_lines, code_lines, violations)
    if "iostream-lib" in rules:
        check_iostream(path, raw_lines, code_lines, violations, lib_roots)
    if "raw-clock" in rules:
        check_raw_clock(path, raw_lines, code_lines, violations)
    if "raw-intrinsics" in rules:
        check_raw_intrinsics(path, raw_lines, code_lines, violations)
    if "des-std-function" in rules:
        check_des_std_function(path, raw_lines, code_lines, violations)
    return violations


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = [d for d in dirs if not d.startswith(("build", "."))]
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, name))
        else:
            print(f"anton-lint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="anton-lint",
        description="Project-specific hot-path lint for anton2sim.")
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to scan (default: src)")
    ap.add_argument("--rules", default=",".join(RULES),
                    help="comma-separated rule subset to run")
    ap.add_argument("--lib-root", action="append", default=[],
                    help="directory treated as library code for iostream-lib "
                         "(default: every scanned directory)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--json", action="store_true",
                    help="emit violations as a JSON document on stdout "
                         "(for CI annotation) instead of GCC-style lines")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    rules = set()
    for r in args.rules.split(","):
        r = r.strip()
        if not r:
            continue
        if r not in RULES:
            print(f"anton-lint: unknown rule '{r}' (see --list-rules)",
                  file=sys.stderr)
            return 2
        rules.add(r)

    paths = args.paths or ["src"]
    lib_roots = [os.path.abspath(p) for p in (args.lib_root or paths)
                 if os.path.isdir(p)]
    files = gather_files(paths)

    violations = []
    seen = set()
    for f in files:
        for v in lint_file(f, rules, lib_roots):
            # Overlapping annotated regions (e.g. a comment that mentions the
            # annotation above an annotated function) must not double-report.
            key = (v.path, v.line, v.rule)
            if key in seen:
                continue
            seen.add(key)
            violations.append(v)

    if args.json:
        json.dump({"schema": "anton.lint.v1",
                   "files_scanned": len(files),
                   "violations": [v.to_json() for v in violations]},
                  sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for v in violations:
            print(v)
    if not args.quiet:
        print(f"anton-lint: scanned {len(files)} files, "
              f"{len(violations)} violation(s)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
