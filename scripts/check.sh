#!/usr/bin/env bash
# Pre-PR gate: default build + full ctest + anton-lint + callgraph + sanitizer
# passes.
#
# Usage:
#   scripts/check.sh                  # everything: build, ctest, lint,
#                                     # callgraph, scalar backend, ASan + UBSan
#   scripts/check.sh --fast           # inner-loop subset: default build,
#                                     # ctest, lint (+ fixtures), callgraph
#                                     # gate; skips the scalar-backend
#                                     # rebuild, force-parity diff, telemetry
#                                     # smoke, bench smoke and all sanitizer
#                                     # trees (minutes -> seconds of rebuild)
#   ANTON_CHECK_SANITIZERS="address undefined thread" scripts/check.sh
#   ANTON_CHECK_SANITIZERS="" scripts/check.sh   # skip sanitizer builds
#
# Each sanitizer preset builds into its own directory (build-<preset>) so the
# instrumented trees never collide with the default build/.  TSan is not in
# the default list because it is an order of magnitude slower; add it via
# ANTON_CHECK_SANITIZERS before merging thread-pool or kernel changes.
# The callgraph gate builds its own tree too (build-cg/, GCC -O0 with
# -fcallgraph-info=su) — see tools/anton_callgraph.py.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
done

JOBS="${ANTON_CHECK_JOBS:-$(nproc)}"
SANITIZERS="${ANTON_CHECK_SANITIZERS-address undefined}"

step() { printf '\n==> %s\n' "$*"; }

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

step "default build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"

step "ctest (default build)"
ctest --test-dir build --output-on-failure -j"$JOBS"

step "anton-lint (src/ must be clean, fixtures must fail, suppressions hold)"
python3 tools/anton_lint.py src
if python3 tools/anton_lint.py -q tools/lint_fixtures; then
  echo "error: lint fixtures passed — anton_lint.py has rotted into a no-op" >&2
  exit 1
fi
echo "lint fixtures correctly rejected"
python3 tools/anton_lint.py -q tools/lint_fixtures/passing
echo "lint suppression fixtures correctly accepted"

step "callgraph purity gate (build-cg/, -DANTON_CALLGRAPH=ON)"
cmake -B build-cg -S . -DANTON_CALLGRAPH=ON >/dev/null
cmake --build build-cg -j"$JOBS"
ctest --test-dir build-cg --output-on-failure -j"$JOBS" -R 'anton_callgraph'

if [ "$FAST" = 1 ]; then
  step "fast gate passed (scalar backend, telemetry, bench and sanitizer passes skipped)"
  exit 0
fi

step "scalar-backend build (build-scalar/, ANTON_SIMD=scalar)"
cmake -B build-scalar -S . -DANTON_SIMD=scalar >/dev/null
cmake --build build-scalar -j"$JOBS"

step "ctest (scalar backend)"
ctest --test-dir build-scalar --output-on-failure -j"$JOBS"

step "cross-backend force parity (native vs scalar, bitwise)"
./build/examples/force_hash > "$SCRATCH/force_hash_native.txt"
./build-scalar/examples/force_hash > "$SCRATCH/force_hash_scalar.txt"
diff "$SCRATCH/force_hash_native.txt" "$SCRATCH/force_hash_scalar.txt"
echo "force digests byte-identical across SIMD backends:"
grep force_digest "$SCRATCH/force_hash_native.txt"

step "telemetry smoke (trace + metrics round-trip)"
TELEMETRY_TMP="$SCRATCH"
./build/examples/quickstart atoms=1500 nodes=8 steps=4 \
  --trace "$TELEMETRY_TMP/trace.json" \
  --metrics "$TELEMETRY_TMP/metrics.json" >/dev/null
python3 tools/validate_trace.py "$TELEMETRY_TMP/trace.json"
python3 -c "
import json, sys
doc = json.load(open('$TELEMETRY_TMP/metrics.json'))
assert doc.get('schema') == 'anton.metrics.v1', doc.get('schema')
assert doc.get('metrics'), 'metrics snapshot is empty'
print(f\"metrics snapshot OK: {len(doc['metrics'])} metrics\")
"

step "flight-recorder smoke (exit dump must validate as a flight trace)"
ANTON_FLIGHT_EXIT_DUMP=1 ANTON_FLIGHT_PATH="$SCRATCH/flight.json" \
  ./build/examples/quickstart atoms=1500 nodes=8 steps=2 >/dev/null
python3 tools/validate_trace.py --flight "$SCRATCH/flight.json"

step "threaded parity (serial vs threaded kernels, bitwise where promised)"
ctest --test-dir build --output-on-failure -j"$JOBS" \
  -R 'test_md_threaded|test_determinism|test_fft'

step "DES core (zero-allocation steady state + sweep parity + shard determinism)"
ctest --test-dir build --output-on-failure -j"$JOBS" \
  -R 'DesNoAlloc|SweepRunner|EventQueue|Pdes|ParallelEngine'

# The estimator service's concurrency claims (exactly-once evaluation,
# coalescing, bounded queue, drain-on-shutdown) are only as good as their
# TSan run, so the svc suite gets a targeted thread-sanitizer pass even
# though full-tree TSan stays opt-in via ANTON_CHECK_SANITIZERS.
step "estimator-service TSan pass (build-thread/, svc tests only)"
cmake -B build-thread -S . -DANTON_SANITIZE=thread -DANTON_SIMD=scalar \
      >/dev/null
cmake --build build-thread --target test_svc -j"$JOBS"
ctest --test-dir build-thread --output-on-failure -j"$JOBS" \
  -L sanitize-thread -R 'EstimatorService|ResultCache|CacheKey'

# The parallel DES engine's plain (non-atomic) mailbox indices and stat
# lanes rely on the ThreadPool dispatch rendezvous for ordering; TSan on the
# determinism suite is what shows that reliance is sound, not luck.
step "parallel-DES TSan pass (build-thread/, pdes tests only)"
cmake --build build-thread --target test_pdes -j"$JOBS"
ctest --test-dir build-thread --output-on-failure -j"$JOBS" \
  -L sanitize-thread -R 'Pdes|ParallelEngine'

step "service load smoke (estimator daemon end-to-end)"
./build/examples/sweep_service atoms=3000 queries=160 clients=8 \
  --svc-threads 4 --svc-cache-mb 32 --svc-queue-depth 64 \
  --metrics "$SCRATCH/svc_metrics.json"
python3 -c "
import json
doc = json.load(open('$SCRATCH/svc_metrics.json'))
m = doc['metrics']
assert m['svc.queries']['value'] == 160, m['svc.queries']
assert m['svc.shed']['value'] == 0, 'service shed under smoke load'
hits = m['svc.hits']['value']
assert hits > 100, f'cache ineffective: {hits} hits of 160'
assert 'p99' in m['svc.latency_ms'], 'latency histogram lost its p99'
print(f\"service smoke OK: {int(hits)}/160 hits, \"
      f\"p99 {m['svc.latency_ms']['p99']:.2f} ms\")
"

step "bench smoke (BENCH_f6.json ... BENCH_f10.json)"
cmake --build build --target bench-smoke -j"$JOBS"
python3 - <<'EOF'
import json
doc = json.load(open('build/BENCH_f6.json'))
best, avx2 = {}, 0
for b in doc['benchmarks']:
    if b.get('run_type') == 'aggregate':
        continue
    name = b['name'].split('/')[0]
    best[name] = min(best.get(name, float('inf')), b['real_time'])
    avx2 = max(avx2, int(b.get('simd_avx2', 0)))
if avx2:
    pk = best['BM_PairKernelScalar'] / best['BM_PairKernelSimd']
    te = best['BM_TableEvalScalar'] / best['BM_TableEvalSimd']
    print(f'pair-kernel simd speedup: {pk:.2f}x  table-eval: {te:.2f}x')
    assert pk >= 2.0, f'pair-kernel simd speedup regressed: {pk:.2f}x < 2x'
    assert te >= 2.0, f'table-eval simd speedup regressed: {te:.2f}x < 2x'
else:
    print('scalar SIMD backend: speedup gates not applicable, skipped')
EOF
python3 -c "
import json
doc = json.load(open('build/BENCH_f7.json'))
assert doc.get('schema') == 'anton.metrics.v1', doc.get('schema')
speedup = doc['metrics']['f7.longrange.speedup_t4']['value']
print(f'long-range combined speedup at 4 threads: {speedup:.2f}x')
assert speedup >= 2.0, f'long-range speedup regressed: {speedup:.2f}x < 2x'
"
python3 -c "
import json
doc = json.load(open('build/BENCH_f8.json'))
assert doc.get('schema') == 'anton.metrics.v1', doc.get('schema')
m = doc['metrics']
speedup = m['f8.queue.speedup']['value']
print(f'event-queue speedup over legacy kernel: {speedup:.2f}x')
assert speedup >= 2.0, f'event-queue speedup regressed: {speedup:.2f}x < 2x'
assert m['f8.sweep.match']['value'] == 1, 'threaded sweep diverged from serial'
"
python3 -c "
import json
doc = json.load(open('build/BENCH_f9.json'))
assert doc.get('schema') == 'anton.metrics.v1', doc.get('schema')
m = doc['metrics']
speedup = m['f9.speedup']['value']
print(f'estimator service speedup over uncached-serial: {speedup:.2f}x')
assert speedup >= 5.0, f'service throughput regressed: {speedup:.2f}x < 5x'
assert m['f9.verify.match']['value'] == 1, 'cache hit diverged from recompute'
assert m['f9.shed']['value'] == 0, 'service shed during the throughput run'
"
python3 -c "
import json
doc = json.load(open('build/BENCH_f10.json'))
assert doc.get('schema') == 'anton.metrics.v1', doc.get('schema')
m = doc['metrics']
speedup = m['f10.storm.speedup']['value']
print(f'parallel DES at 8 shards over legacy serial kernel: {speedup:.2f}x')
assert speedup >= 3.0, f'parallel-DES speedup regressed: {speedup:.2f}x < 3x'
assert m['f10.storm.clock_match']['value'] == 1, \
    'sharded storm clock diverged from the serial kernel'
assert m['f10.runner.match']['value'] == 1, \
    'sharded timestep makespan diverged from the serial engine'
"

step "bench regression gate (tools/bench_compare.py)"
# Fresh results vs committed baselines: advisory here because absolute times
# vary host-to-host (the hard floors above are the portable gates), but the
# full report lands in the log and one summary line per file in the history.
for f in f6 f7 f8 f9 f10; do
  python3 tools/bench_compare.py "bench/BENCH_$f.json" "build/BENCH_$f.json" \
    --advisory --append-history "build/bench_history.jsonl"
done
# The gate itself must still have teeth: identical inputs pass, the seeded
# half-speedup/2x-slower fixture fails.  Mirrors the lint-fixtures pattern.
python3 tools/bench_compare.py bench/BENCH_f7.json bench/BENCH_f7.json -q
if python3 tools/bench_compare.py bench/BENCH_f7.json \
     tools/bench_fixtures/BENCH_f7_regressed.json -q >/dev/null 2>&1; then
  echo "error: regressed fixture passed — bench_compare.py has rotted" >&2
  exit 1
fi
echo "bench_compare fixture correctly rejected"

# Sanitizer trees use the scalar SIMD backend: instrumentation composes
# poorly with wide intrinsics (ASan shadow checks on 32-byte lanes), and the
# scalar path exercises identical per-lane semantics by construction.
for san in $SANITIZERS; do
  step "sanitizer pass: $san (build-$san/, ANTON_SIMD=scalar)"
  cmake -B "build-$san" -S . -DANTON_SANITIZE="$san" \
        -DANTON_SIMD=scalar >/dev/null
  cmake --build "build-$san" -j"$JOBS"
  ctest --test-dir "build-$san" --output-on-failure -j"$JOBS" \
    -L "sanitize-$san"
done

step "all checks passed"
