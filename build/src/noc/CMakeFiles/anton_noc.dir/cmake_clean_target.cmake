file(REMOVE_RECURSE
  "libanton_noc.a"
)
