# Empty compiler generated dependencies file for anton_noc.
# This may be replaced when dependencies are built.
