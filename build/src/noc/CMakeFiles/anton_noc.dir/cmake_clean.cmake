file(REMOVE_RECURSE
  "CMakeFiles/anton_noc.dir/torus.cc.o"
  "CMakeFiles/anton_noc.dir/torus.cc.o.d"
  "libanton_noc.a"
  "libanton_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
