# Empty dependencies file for anton_fft.
# This may be replaced when dependencies are built.
