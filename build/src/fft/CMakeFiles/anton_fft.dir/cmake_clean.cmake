file(REMOVE_RECURSE
  "CMakeFiles/anton_fft.dir/fft.cc.o"
  "CMakeFiles/anton_fft.dir/fft.cc.o.d"
  "libanton_fft.a"
  "libanton_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
