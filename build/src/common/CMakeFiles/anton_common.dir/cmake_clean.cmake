file(REMOVE_RECURSE
  "CMakeFiles/anton_common.dir/config.cc.o"
  "CMakeFiles/anton_common.dir/config.cc.o.d"
  "CMakeFiles/anton_common.dir/hilbert.cc.o"
  "CMakeFiles/anton_common.dir/hilbert.cc.o.d"
  "CMakeFiles/anton_common.dir/threadpool.cc.o"
  "CMakeFiles/anton_common.dir/threadpool.cc.o.d"
  "libanton_common.a"
  "libanton_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
