# Empty dependencies file for anton_common.
# This may be replaced when dependencies are built.
