file(REMOVE_RECURSE
  "libanton_common.a"
)
