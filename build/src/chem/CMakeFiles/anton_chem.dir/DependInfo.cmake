
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/builder.cc" "src/chem/CMakeFiles/anton_chem.dir/builder.cc.o" "gcc" "src/chem/CMakeFiles/anton_chem.dir/builder.cc.o.d"
  "/root/repo/src/chem/forcefield.cc" "src/chem/CMakeFiles/anton_chem.dir/forcefield.cc.o" "gcc" "src/chem/CMakeFiles/anton_chem.dir/forcefield.cc.o.d"
  "/root/repo/src/chem/system.cc" "src/chem/CMakeFiles/anton_chem.dir/system.cc.o" "gcc" "src/chem/CMakeFiles/anton_chem.dir/system.cc.o.d"
  "/root/repo/src/chem/topology.cc" "src/chem/CMakeFiles/anton_chem.dir/topology.cc.o" "gcc" "src/chem/CMakeFiles/anton_chem.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/anton_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/anton_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
