file(REMOVE_RECURSE
  "CMakeFiles/anton_chem.dir/builder.cc.o"
  "CMakeFiles/anton_chem.dir/builder.cc.o.d"
  "CMakeFiles/anton_chem.dir/forcefield.cc.o"
  "CMakeFiles/anton_chem.dir/forcefield.cc.o.d"
  "CMakeFiles/anton_chem.dir/system.cc.o"
  "CMakeFiles/anton_chem.dir/system.cc.o.d"
  "CMakeFiles/anton_chem.dir/topology.cc.o"
  "CMakeFiles/anton_chem.dir/topology.cc.o.d"
  "libanton_chem.a"
  "libanton_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
