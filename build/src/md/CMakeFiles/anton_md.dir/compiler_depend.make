# Empty compiler generated dependencies file for anton_md.
# This may be replaced when dependencies are built.
