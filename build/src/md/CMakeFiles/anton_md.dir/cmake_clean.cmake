file(REMOVE_RECURSE
  "CMakeFiles/anton_md.dir/analysis.cc.o"
  "CMakeFiles/anton_md.dir/analysis.cc.o.d"
  "CMakeFiles/anton_md.dir/bonded.cc.o"
  "CMakeFiles/anton_md.dir/bonded.cc.o.d"
  "CMakeFiles/anton_md.dir/checkpoint.cc.o"
  "CMakeFiles/anton_md.dir/checkpoint.cc.o.d"
  "CMakeFiles/anton_md.dir/constraints.cc.o"
  "CMakeFiles/anton_md.dir/constraints.cc.o.d"
  "CMakeFiles/anton_md.dir/engine.cc.o"
  "CMakeFiles/anton_md.dir/engine.cc.o.d"
  "CMakeFiles/anton_md.dir/ewald.cc.o"
  "CMakeFiles/anton_md.dir/ewald.cc.o.d"
  "CMakeFiles/anton_md.dir/forces.cc.o"
  "CMakeFiles/anton_md.dir/forces.cc.o.d"
  "CMakeFiles/anton_md.dir/gse.cc.o"
  "CMakeFiles/anton_md.dir/gse.cc.o.d"
  "CMakeFiles/anton_md.dir/minimize.cc.o"
  "CMakeFiles/anton_md.dir/minimize.cc.o.d"
  "CMakeFiles/anton_md.dir/neighborlist.cc.o"
  "CMakeFiles/anton_md.dir/neighborlist.cc.o.d"
  "CMakeFiles/anton_md.dir/nonbonded.cc.o"
  "CMakeFiles/anton_md.dir/nonbonded.cc.o.d"
  "CMakeFiles/anton_md.dir/workspace.cc.o"
  "CMakeFiles/anton_md.dir/workspace.cc.o.d"
  "libanton_md.a"
  "libanton_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
