file(REMOVE_RECURSE
  "libanton_md.a"
)
