
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/analysis.cc" "src/md/CMakeFiles/anton_md.dir/analysis.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/analysis.cc.o.d"
  "/root/repo/src/md/bonded.cc" "src/md/CMakeFiles/anton_md.dir/bonded.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/bonded.cc.o.d"
  "/root/repo/src/md/checkpoint.cc" "src/md/CMakeFiles/anton_md.dir/checkpoint.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/checkpoint.cc.o.d"
  "/root/repo/src/md/constraints.cc" "src/md/CMakeFiles/anton_md.dir/constraints.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/constraints.cc.o.d"
  "/root/repo/src/md/engine.cc" "src/md/CMakeFiles/anton_md.dir/engine.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/engine.cc.o.d"
  "/root/repo/src/md/ewald.cc" "src/md/CMakeFiles/anton_md.dir/ewald.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/ewald.cc.o.d"
  "/root/repo/src/md/forces.cc" "src/md/CMakeFiles/anton_md.dir/forces.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/forces.cc.o.d"
  "/root/repo/src/md/gse.cc" "src/md/CMakeFiles/anton_md.dir/gse.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/gse.cc.o.d"
  "/root/repo/src/md/minimize.cc" "src/md/CMakeFiles/anton_md.dir/minimize.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/minimize.cc.o.d"
  "/root/repo/src/md/neighborlist.cc" "src/md/CMakeFiles/anton_md.dir/neighborlist.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/neighborlist.cc.o.d"
  "/root/repo/src/md/nonbonded.cc" "src/md/CMakeFiles/anton_md.dir/nonbonded.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/nonbonded.cc.o.d"
  "/root/repo/src/md/workspace.cc" "src/md/CMakeFiles/anton_md.dir/workspace.cc.o" "gcc" "src/md/CMakeFiles/anton_md.dir/workspace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chem/CMakeFiles/anton_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/anton_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/anton_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/anton_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
