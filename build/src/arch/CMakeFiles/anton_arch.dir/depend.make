# Empty dependencies file for anton_arch.
# This may be replaced when dependencies are built.
