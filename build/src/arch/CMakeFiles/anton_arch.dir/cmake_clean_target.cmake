file(REMOVE_RECURSE
  "libanton_arch.a"
)
