file(REMOVE_RECURSE
  "CMakeFiles/anton_arch.dir/presets.cc.o"
  "CMakeFiles/anton_arch.dir/presets.cc.o.d"
  "libanton_arch.a"
  "libanton_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
