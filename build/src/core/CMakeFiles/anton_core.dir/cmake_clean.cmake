file(REMOVE_RECURSE
  "CMakeFiles/anton_core.dir/decomposition_study.cc.o"
  "CMakeFiles/anton_core.dir/decomposition_study.cc.o.d"
  "CMakeFiles/anton_core.dir/machine.cc.o"
  "CMakeFiles/anton_core.dir/machine.cc.o.d"
  "CMakeFiles/anton_core.dir/taskgraph.cc.o"
  "CMakeFiles/anton_core.dir/taskgraph.cc.o.d"
  "CMakeFiles/anton_core.dir/timestep.cc.o"
  "CMakeFiles/anton_core.dir/timestep.cc.o.d"
  "CMakeFiles/anton_core.dir/workload.cc.o"
  "CMakeFiles/anton_core.dir/workload.cc.o.d"
  "libanton_core.a"
  "libanton_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
