# Empty compiler generated dependencies file for anton_core.
# This may be replaced when dependencies are built.
