file(REMOVE_RECURSE
  "libanton_core.a"
)
