# Empty compiler generated dependencies file for anton_geom.
# This may be replaced when dependencies are built.
