file(REMOVE_RECURSE
  "CMakeFiles/anton_geom.dir/cells.cc.o"
  "CMakeFiles/anton_geom.dir/cells.cc.o.d"
  "CMakeFiles/anton_geom.dir/decomp.cc.o"
  "CMakeFiles/anton_geom.dir/decomp.cc.o.d"
  "libanton_geom.a"
  "libanton_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anton_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
