file(REMOVE_RECURSE
  "libanton_geom.a"
)
