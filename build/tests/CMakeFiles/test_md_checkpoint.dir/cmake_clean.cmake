file(REMOVE_RECURSE
  "CMakeFiles/test_md_checkpoint.dir/test_md_checkpoint.cc.o"
  "CMakeFiles/test_md_checkpoint.dir/test_md_checkpoint.cc.o.d"
  "test_md_checkpoint"
  "test_md_checkpoint.pdb"
  "test_md_checkpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
