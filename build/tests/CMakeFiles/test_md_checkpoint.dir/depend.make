# Empty dependencies file for test_md_checkpoint.
# This may be replaced when dependencies are built.
