file(REMOVE_RECURSE
  "CMakeFiles/test_md_features.dir/test_md_features.cc.o"
  "CMakeFiles/test_md_features.dir/test_md_features.cc.o.d"
  "test_md_features"
  "test_md_features.pdb"
  "test_md_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
