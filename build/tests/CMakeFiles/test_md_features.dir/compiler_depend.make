# Empty compiler generated dependencies file for test_md_features.
# This may be replaced when dependencies are built.
