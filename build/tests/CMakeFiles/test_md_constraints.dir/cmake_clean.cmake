file(REMOVE_RECURSE
  "CMakeFiles/test_md_constraints.dir/test_md_constraints.cc.o"
  "CMakeFiles/test_md_constraints.dir/test_md_constraints.cc.o.d"
  "test_md_constraints"
  "test_md_constraints.pdb"
  "test_md_constraints[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
