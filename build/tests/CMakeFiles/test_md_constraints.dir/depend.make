# Empty dependencies file for test_md_constraints.
# This may be replaced when dependencies are built.
