file(REMOVE_RECURSE
  "CMakeFiles/test_md_engine.dir/test_md_engine.cc.o"
  "CMakeFiles/test_md_engine.dir/test_md_engine.cc.o.d"
  "test_md_engine"
  "test_md_engine.pdb"
  "test_md_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
