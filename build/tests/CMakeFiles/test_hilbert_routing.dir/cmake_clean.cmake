file(REMOVE_RECURSE
  "CMakeFiles/test_hilbert_routing.dir/test_hilbert_routing.cc.o"
  "CMakeFiles/test_hilbert_routing.dir/test_hilbert_routing.cc.o.d"
  "test_hilbert_routing"
  "test_hilbert_routing.pdb"
  "test_hilbert_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hilbert_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
