# Empty dependencies file for test_hilbert_routing.
# This may be replaced when dependencies are built.
