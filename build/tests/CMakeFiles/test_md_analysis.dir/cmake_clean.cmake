file(REMOVE_RECURSE
  "CMakeFiles/test_md_analysis.dir/test_md_analysis.cc.o"
  "CMakeFiles/test_md_analysis.dir/test_md_analysis.cc.o.d"
  "test_md_analysis"
  "test_md_analysis.pdb"
  "test_md_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
