# Empty dependencies file for test_md_nonbonded.
# This may be replaced when dependencies are built.
