file(REMOVE_RECURSE
  "CMakeFiles/test_md_nonbonded.dir/test_md_nonbonded.cc.o"
  "CMakeFiles/test_md_nonbonded.dir/test_md_nonbonded.cc.o.d"
  "test_md_nonbonded"
  "test_md_nonbonded.pdb"
  "test_md_nonbonded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_nonbonded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
