# Empty compiler generated dependencies file for test_md_ewald.
# This may be replaced when dependencies are built.
