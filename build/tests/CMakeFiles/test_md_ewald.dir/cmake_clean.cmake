file(REMOVE_RECURSE
  "CMakeFiles/test_md_ewald.dir/test_md_ewald.cc.o"
  "CMakeFiles/test_md_ewald.dir/test_md_ewald.cc.o.d"
  "test_md_ewald"
  "test_md_ewald.pdb"
  "test_md_ewald[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_ewald.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
