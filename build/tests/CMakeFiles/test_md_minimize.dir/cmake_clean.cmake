file(REMOVE_RECURSE
  "CMakeFiles/test_md_minimize.dir/test_md_minimize.cc.o"
  "CMakeFiles/test_md_minimize.dir/test_md_minimize.cc.o.d"
  "test_md_minimize"
  "test_md_minimize.pdb"
  "test_md_minimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
