# Empty compiler generated dependencies file for test_md_minimize.
# This may be replaced when dependencies are built.
