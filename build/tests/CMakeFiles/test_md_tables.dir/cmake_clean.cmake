file(REMOVE_RECURSE
  "CMakeFiles/test_md_tables.dir/test_md_tables.cc.o"
  "CMakeFiles/test_md_tables.dir/test_md_tables.cc.o.d"
  "test_md_tables"
  "test_md_tables.pdb"
  "test_md_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
