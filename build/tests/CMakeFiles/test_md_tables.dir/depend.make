# Empty dependencies file for test_md_tables.
# This may be replaced when dependencies are built.
