# Empty compiler generated dependencies file for test_md_bonded.
# This may be replaced when dependencies are built.
