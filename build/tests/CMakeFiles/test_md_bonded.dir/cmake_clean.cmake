file(REMOVE_RECURSE
  "CMakeFiles/test_md_bonded.dir/test_md_bonded.cc.o"
  "CMakeFiles/test_md_bonded.dir/test_md_bonded.cc.o.d"
  "test_md_bonded"
  "test_md_bonded.pdb"
  "test_md_bonded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_bonded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
