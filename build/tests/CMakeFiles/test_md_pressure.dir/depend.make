# Empty dependencies file for test_md_pressure.
# This may be replaced when dependencies are built.
