file(REMOVE_RECURSE
  "CMakeFiles/test_md_pressure.dir/test_md_pressure.cc.o"
  "CMakeFiles/test_md_pressure.dir/test_md_pressure.cc.o.d"
  "test_md_pressure"
  "test_md_pressure.pdb"
  "test_md_pressure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
