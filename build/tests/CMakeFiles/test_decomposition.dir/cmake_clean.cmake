file(REMOVE_RECURSE
  "CMakeFiles/test_decomposition.dir/test_decomposition.cc.o"
  "CMakeFiles/test_decomposition.dir/test_decomposition.cc.o.d"
  "test_decomposition"
  "test_decomposition.pdb"
  "test_decomposition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
