# Empty compiler generated dependencies file for test_perf_report.
# This may be replaced when dependencies are built.
