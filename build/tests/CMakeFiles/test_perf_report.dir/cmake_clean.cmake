file(REMOVE_RECURSE
  "CMakeFiles/test_perf_report.dir/test_perf_report.cc.o"
  "CMakeFiles/test_perf_report.dir/test_perf_report.cc.o.d"
  "test_perf_report"
  "test_perf_report.pdb"
  "test_perf_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
