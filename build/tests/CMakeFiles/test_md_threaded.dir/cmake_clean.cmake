file(REMOVE_RECURSE
  "CMakeFiles/test_md_threaded.dir/test_md_threaded.cc.o"
  "CMakeFiles/test_md_threaded.dir/test_md_threaded.cc.o.d"
  "test_md_threaded"
  "test_md_threaded.pdb"
  "test_md_threaded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_threaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
