# Empty dependencies file for test_md_threaded.
# This may be replaced when dependencies are built.
