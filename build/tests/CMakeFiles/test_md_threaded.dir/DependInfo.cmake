
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_md_threaded.cc" "tests/CMakeFiles/test_md_threaded.dir/test_md_threaded.cc.o" "gcc" "tests/CMakeFiles/test_md_threaded.dir/test_md_threaded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/md/CMakeFiles/anton_md.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/anton_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/anton_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/anton_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/anton_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
