# Empty dependencies file for test_md_barostat.
# This may be replaced when dependencies are built.
