file(REMOVE_RECURSE
  "CMakeFiles/test_md_barostat.dir/test_md_barostat.cc.o"
  "CMakeFiles/test_md_barostat.dir/test_md_barostat.cc.o.d"
  "test_md_barostat"
  "test_md_barostat.pdb"
  "test_md_barostat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md_barostat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
