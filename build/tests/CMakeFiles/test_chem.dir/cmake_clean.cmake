file(REMOVE_RECURSE
  "CMakeFiles/test_chem.dir/test_chem.cc.o"
  "CMakeFiles/test_chem.dir/test_chem.cc.o.d"
  "test_chem"
  "test_chem.pdb"
  "test_chem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
