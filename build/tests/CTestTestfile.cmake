# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_chem[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_md_bonded[1]_include.cmake")
include("/root/repo/build/tests/test_md_nonbonded[1]_include.cmake")
include("/root/repo/build/tests/test_md_ewald[1]_include.cmake")
include("/root/repo/build/tests/test_md_constraints[1]_include.cmake")
include("/root/repo/build/tests/test_md_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_taskgraph[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_md_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_md_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_md_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_md_pressure[1]_include.cmake")
include("/root/repo/build/tests/test_md_features[1]_include.cmake")
include("/root/repo/build/tests/test_decomposition[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_hilbert_routing[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_md_barostat[1]_include.cmake")
include("/root/repo/build/tests/test_perf_report[1]_include.cmake")
include("/root/repo/build/tests/test_md_threaded[1]_include.cmake")
include("/root/repo/build/tests/test_md_tables[1]_include.cmake")
