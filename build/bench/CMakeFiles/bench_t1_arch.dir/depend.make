# Empty dependencies file for bench_t1_arch.
# This may be replaced when dependencies are built.
