file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_network.dir/bench_f5_network.cc.o"
  "CMakeFiles/bench_f5_network.dir/bench_f5_network.cc.o.d"
  "bench_f5_network"
  "bench_f5_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
