file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_decomposition.dir/bench_a2_decomposition.cc.o"
  "CMakeFiles/bench_a2_decomposition.dir/bench_a2_decomposition.cc.o.d"
  "bench_a2_decomposition"
  "bench_a2_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
