# Empty dependencies file for bench_a2_decomposition.
# This may be replaced when dependencies are built.
