# Empty compiler generated dependencies file for bench_f3_eventdriven.
# This may be replaced when dependencies are built.
