file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_eventdriven.dir/bench_f3_eventdriven.cc.o"
  "CMakeFiles/bench_f3_eventdriven.dir/bench_f3_eventdriven.cc.o.d"
  "bench_f3_eventdriven"
  "bench_f3_eventdriven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_eventdriven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
