# Empty compiler generated dependencies file for bench_f6_md_kernels.
# This may be replaced when dependencies are built.
