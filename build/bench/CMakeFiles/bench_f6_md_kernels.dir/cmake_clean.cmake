file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_md_kernels.dir/bench_f6_md_kernels.cc.o"
  "CMakeFiles/bench_f6_md_kernels.dir/bench_f6_md_kernels.cc.o.d"
  "bench_f6_md_kernels"
  "bench_f6_md_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_md_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
