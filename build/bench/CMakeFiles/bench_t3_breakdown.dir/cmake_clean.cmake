file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_breakdown.dir/bench_t3_breakdown.cc.o"
  "CMakeFiles/bench_t3_breakdown.dir/bench_t3_breakdown.cc.o.d"
  "bench_t3_breakdown"
  "bench_t3_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
