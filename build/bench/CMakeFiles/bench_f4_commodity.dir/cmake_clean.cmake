file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_commodity.dir/bench_f4_commodity.cc.o"
  "CMakeFiles/bench_f4_commodity.dir/bench_f4_commodity.cc.o.d"
  "bench_f4_commodity"
  "bench_f4_commodity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_commodity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
