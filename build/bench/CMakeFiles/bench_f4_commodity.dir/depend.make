# Empty dependencies file for bench_f4_commodity.
# This may be replaced when dependencies are built.
