# Empty compiler generated dependencies file for bench_f2_size_sweep.
# This may be replaced when dependencies are built.
