file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_rates.dir/bench_t2_rates.cc.o"
  "CMakeFiles/bench_t2_rates.dir/bench_t2_rates.cc.o.d"
  "bench_t2_rates"
  "bench_t2_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
