# Empty dependencies file for bench_t2_rates.
# This may be replaced when dependencies are built.
