file(REMOVE_RECURSE
  "CMakeFiles/million_atom.dir/million_atom.cpp.o"
  "CMakeFiles/million_atom.dir/million_atom.cpp.o.d"
  "million_atom"
  "million_atom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/million_atom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
