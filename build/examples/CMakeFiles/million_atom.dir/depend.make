# Empty dependencies file for million_atom.
# This may be replaced when dependencies are built.
