# Empty dependencies file for umbrella_window.
# This may be replaced when dependencies are built.
