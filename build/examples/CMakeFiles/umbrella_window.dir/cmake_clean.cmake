file(REMOVE_RECURSE
  "CMakeFiles/umbrella_window.dir/umbrella_window.cpp.o"
  "CMakeFiles/umbrella_window.dir/umbrella_window.cpp.o.d"
  "umbrella_window"
  "umbrella_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umbrella_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
