# Empty compiler generated dependencies file for dhfr_campaign.
# This may be replaced when dependencies are built.
