file(REMOVE_RECURSE
  "CMakeFiles/dhfr_campaign.dir/dhfr_campaign.cpp.o"
  "CMakeFiles/dhfr_campaign.dir/dhfr_campaign.cpp.o.d"
  "dhfr_campaign"
  "dhfr_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhfr_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
