// F10 — Parallel discrete-event engine: the F8 mixed unicast/multicast
// storm and a 512-node timestep replay on sim::ParallelEngine, against the
// compiled-in legacy std::function / std::priority_queue baseline
// (des_storm.h, shared with F8).
//
// Two claims are gated:
//   1. Throughput: the sharded engine at 8 shards beats the legacy serial
//      kernel by >= 3x on the same storm (pinned baseline, any host).  The
//      margin comes from the pooled queue rewrite compounded with
//      shard-private heaps: 8 queues of N/8 chains pay a shallower heap and
//      a hotter cache than one queue of N, and on multi-core hosts the
//      windows also run concurrently.
//   2. Determinism: the simulated clock after the drain is bitwise
//      identical at every shard count {1, 2, 4, 8} and equal to the legacy
//      kernel's clock; the 512-node timestep makespan is bitwise identical
//      between the serial engine and 8 shards.
//
// Set ANTON_BENCH_SMOKE=1 to shrink repetitions for CI.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/timestep.h"
#include "core/workload.h"
#include "des_storm.h"
#include "sim/parallel_engine.h"

namespace anton::bench {
namespace {

// ---- Sharded storm: the PooledStorm event mix replayed over P shard
// queues.  A chain starts on its home shard (the engine's spatial mapping)
// and migrates to the next shard every kMigrateEvery hops, so a 1/6 of all
// hops cross a shard boundary through the engine's mailboxes.  Hop delays
// are content-derived (hop_delay), so the final clock — the maximum chain
// completion time — is independent of where each hop executed.
constexpr int kMigrateEvery = 6;

// The storms replay the F8 mix at the 512-node machine's real multicast
// fan-out: the step graph's position imports reach up to 13 import-region
// destinations (avg 10.3 — see the pos_destinations sizing in
// Workload::build), where F8's single-queue microbench deliberately
// undercharges at 4.
constexpr int kF10FanOut = 13;

struct ShardedStorm {
  struct alignas(64) Lane {
    uint64_t v = 0;
  };

  sim::ParallelEngine& eng;
  int chains;
  int depth;
  std::vector<Lane> delivered;  // per shard, single writer per window
  std::vector<int> mcast_deps = std::vector<int>(kF10FanOut, 1);

  ShardedStorm(sim::ParallelEngine& e, int n_chains, int n_depth)
      : eng(e), chains(n_chains), depth(n_depth),
        delivered(static_cast<size_t>(e.shards())) {}

  int shard_at(uint32_t chain, int d) const {
    const int home = sim::ParallelEngine::shard_of(static_cast<int>(chain),
                                                   chains, eng.shards());
    return (home + d / kMigrateEvery) % eng.shards();
  }

  // Schedules hop 0 from the coordinator (the engine is not running yet, so
  // writing another shard's queue directly is safe).
  void seed(uint32_t chain) {
    const int s0 = shard_at(chain, 0);
    eng.queue(s0).schedule_after(hop_delay(chain, 0), [this, chain, s0] {
      deliver(chain, 0, s0);
    });
  }

  // Executes hop d on `shard`'s queue, then schedules hop d + 1 — exactly
  // PooledStorm's shape, so delivery times (and the final clock) are
  // bitwise identical to both serial storms.
  void deliver(uint32_t chain, int d, int shard) {
    // Same delivery payloads as PooledStorm: an inline 24-byte struct for
    // unicast-shaped hops, a persistent-array lookup for multicast-shaped.
    if (d % kMcastEvery == kMcastEvery - 1) {
      delivered[static_cast<size_t>(shard)].v += static_cast<uint64_t>(
          mcast_deps[static_cast<size_t>(
              (chain + static_cast<uint32_t>(d)) %
              static_cast<uint32_t>(kF10FanOut))]);
    } else {
      const Deliver hit{&delivered[static_cast<size_t>(shard)].v, chain,
                        static_cast<uint64_t>(d)};
      hit();
    }
    if (d + 1 >= depth) return;
    const double delay = hop_delay(chain, d + 1);
    const int next = shard_at(chain, d + 1);
    sim::EventQueue& q = eng.queue(shard);
    if (next == shard) {
      q.schedule_after(delay, [this, chain, d, shard] {
        deliver(chain, d + 1, shard);
      });
    } else {
      // Cross-shard: delay >= 1.0 == the engine lookahead, so the parcel
      // always lands at or beyond the current window's end.  The canonical
      // key is the chain id — the logical producer, independent of P.
      eng.post(shard, next, q.now() + delay, chain,
               [this, chain, d, next] { deliver(chain, d + 1, next); });
    }
  }

  uint64_t total_delivered() const {
    uint64_t n = 0;
    for (const auto& lane : delivered) n += lane.v;
    return n;
  }
};

StormResult run_sharded_storm(int reps, int chains, int depth, int shards,
                              ThreadPool* pool) {
  StormResult r;
  r.events = static_cast<uint64_t>(chains) * static_cast<uint64_t>(depth);
  r.ms = time_min_ms(reps, 1, [&] {
    sim::ParallelEngine eng(shards, kStormLookaheadNs, pool);
    // Pre-size from the workload: each chain has at most one outstanding
    // event (delays >= the window width), so `chains` bounds any shard's
    // arena and any single mailbox ring even under maximal skew.
    eng.reserve(static_cast<size_t>(chains), static_cast<size_t>(chains));
    ShardedStorm storm(eng, chains, depth);
    for (int c = 0; c < chains; ++c) storm.seed(static_cast<uint32_t>(c));
    r.final_t = eng.run();
    ANTON_CHECK(storm.total_delivered() == r.events);
    eng.check_mailbox_balance();
    eng.check_arenas();
  });
  return r;
}

}  // namespace
}  // namespace anton::bench

int main() {
  using namespace anton;
  using namespace anton::bench;

  const bool smoke = std::getenv("ANTON_BENCH_SMOKE") != nullptr;
  const int reps = smoke ? 3 : 5;
  const int chains = smoke ? 1024 : 4096;
  const int depth = smoke ? 240 : 600;

  print_header("F10", "Parallel DES engine: sharded conservative windows");
  BenchReport report("f10");

  // One pool for every sharded run; sized to the host (the engine degrades
  // to serial-over-shards on 1-core machines, with identical results).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::unique_ptr<ThreadPool> pool;
  if (hw > 1) pool = std::make_unique<ThreadPool>(std::min(hw, 8u) - 1);

  {
    std::cout << "\n-- event storm (" << chains << " chains x " << depth
              << " hops, 1/" << kMigrateEvery << " cross-shard) --\n";
    const auto legacy_r = run_storm<LegacyStorm>(reps, chains, depth,
                                                 kF10FanOut);
    const auto pooled_r = run_storm<PooledStorm>(reps, chains, depth,
                                                 kF10FanOut);
    ANTON_CHECK(legacy_r.final_t == pooled_r.final_t);
    const double legacy_meps =
        static_cast<double>(legacy_r.events) / (legacy_r.ms * 1e3);
    const double pooled_meps =
        static_cast<double>(pooled_r.events) / (pooled_r.ms * 1e3);
    report.record("storm.legacy_meps", legacy_meps);
    report.record("storm.pooled_meps", pooled_meps);

    TextTable t({"engine", "shards", "ms/storm", "events/us", "vs legacy",
                 "clock"});
    t.add_row({"legacy std::function heap", "-", TextTable::fmt(legacy_r.ms, 2),
               TextTable::fmt(legacy_meps, 2), "1.00", "ref"});
    t.add_row({"pooled serial queue", "-", TextTable::fmt(pooled_r.ms, 2),
               TextTable::fmt(pooled_meps, 2),
               TextTable::fmt(pooled_meps / legacy_meps, 2), "match"});

    bool clocks_match = true;
    double sharded8_meps = 0;
    for (int shards : {1, 2, 4, 8}) {
      const auto r = run_sharded_storm(reps, chains, depth, shards,
                                       pool.get());
      const bool match = r.final_t == legacy_r.final_t;
      clocks_match = clocks_match && match;
      const double meps = static_cast<double>(r.events) / (r.ms * 1e3);
      if (shards == 8) sharded8_meps = meps;
      report.record("storm.sharded" + std::to_string(shards) + "_meps", meps);
      t.add_row({"parallel engine", std::to_string(shards),
                 TextTable::fmt(r.ms, 2), TextTable::fmt(meps, 2),
                 TextTable::fmt(meps / legacy_meps, 2),
                 match ? "match" : "MISMATCH"});
    }
    t.print(std::cout);

    report.record("storm.speedup", sharded8_meps / legacy_meps);
    report.record("storm.clock_match", clocks_match ? 1.0 : 0.0);
    if (!clocks_match) {
      std::cout << "\nERROR: sharded clock diverged from the serial kernel\n";
      return 1;
    }
  }

  {
    const int dim = smoke ? 4 : 8;
    const int nodes = dim * dim * dim;
    std::cout << "\n-- timestep replay (" << nodes
              << "-node torus, full step) --\n";
    BuilderOptions opt;
    opt.total_atoms = smoke ? 8192 : 65536;
    opt.temperature_k = -1;
    const System sys = build_solvated_system(opt);
    arch::MachineConfig cfg = arch::MachineConfig::anton2(dim, dim, dim);
    const core::Workload workload = core::Workload::build(sys, cfg);

    TextTable t({"engine", "shards", "ms/step", "makespan_ns", "clock"});
    double serial_ms = 0, serial_ns = 0;
    bool match = true;
    for (int shards : {0, 1, 8}) {
      cfg.des_shards = shards;
      core::TimestepRunner runner(workload, cfg);
      runner.run_timestep();  // warm arenas and outboxes
      double ns = 0;
      const double ms = time_min_ms(reps, 1, [&] { ns = runner.run_timestep(); });
      if (shards == 0) {
        serial_ms = ms;
        serial_ns = ns;
      } else {
        match = match && ns == serial_ns;
      }
      t.add_row({shards == 0 ? "serial legacy" : "parallel engine",
                 std::to_string(shards), TextTable::fmt(ms, 2),
                 TextTable::fmt(ns, 4),
                 shards == 0 ? "ref" : (ns == serial_ns ? "match" : "MISMATCH")});
      if (shards == 8) {
        report.record("runner.serial_ms", serial_ms);
        report.record("runner.sharded_ms", ms);
        report.record("runner.speedup", serial_ms / ms);
      }
    }
    t.print(std::cout);
    report.record("runner.match", match ? 1.0 : 0.0);
    if (!match) {
      std::cout << "\nERROR: sharded timestep diverged from serial engine\n";
      return 1;
    }
  }

  std::cout << "\nThe conservative-window engine keeps the machine model "
               "bitwise deterministic at every\nshard count while the "
               "shard-private queues shrink each heap by the shard factor.\n";
  return 0;
}
