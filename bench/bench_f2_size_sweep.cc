// F2 — Capacity sweep: simulation rate vs system size on the 512-node
// Anton 2.  The abstract: "the first platform to achieve simulation rates of
// multiple microseconds of physical time per day for systems with millions
// of atoms."
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("F2", "us/day vs system size at 512 nodes (Anton 2)");

  BenchReport report("f2");
  TextTable t({"atoms", "us/day", "step (ns)", "pairs/step (M)",
               "atoms/node", "compute frac"});
  const auto cfg = machine_preset("anton2", 512);

  // Each point builds its own system (the dominant cost at 4M atoms), so
  // the whole pipeline — build, workload, estimate — runs inside the sweep.
  struct SizePoint {
    core::PerfReport report;
    double pairs_m = 0;
    double atoms_per_node = 0;
  };
  const std::vector<int> sizes{23558, 92224,  262144,  524288,
                               1066628, 2217000, 4194304};
  std::vector<SizePoint> results;
  core::SweepRunner(sweep_pool()).map(sizes.size(), results, [&](size_t i) {
    BuilderOptions o;
    o.total_atoms = sizes[i];
    o.solute_fraction = 0.11;
    o.temperature_k = -1;  // timing only; skip velocity assignment
    o.seed = 2014;
    const System sys = build_solvated_system(o);
    const core::Workload w = core::Workload::build(sys, cfg);
    SizePoint p;
    p.report = core::AntonMachine(cfg).estimate(sys, 2.5, 2);
    p.pairs_m = static_cast<double>(w.total_pairs()) / 1e6;
    p.atoms_per_node = w.mean_atoms_per_node();
    return p;
  });

  double mm_atom_rate = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    const int atoms = sizes[i];
    const auto& r = results[i].report;
    if (atoms >= 1000000 && mm_atom_rate == 0) mm_atom_rate = r.us_per_day();
    report.record("us_per_day.a" + std::to_string(atoms), r.us_per_day());
    t.add_row({TextTable::fmt_int(atoms), TextTable::fmt(r.us_per_day()),
               TextTable::fmt(r.avg_step_ns(), 0),
               TextTable::fmt(results[i].pairs_m, 1),
               TextTable::fmt(results[i].atoms_per_node, 0),
               TextTable::fmt(r.full_step.exec.compute_fraction(), 3)});
  }
  t.print(std::cout);
  std::cout << "\npaper anchor: multiple us/day at millions of atoms "
               "(measured at ~1.07M atoms: "
            << TextTable::fmt(mm_atom_rate) << " us/day).\n";
  return 0;
}
