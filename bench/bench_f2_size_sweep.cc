// F2 — Capacity sweep: simulation rate vs system size on the 512-node
// Anton 2.  The abstract: "the first platform to achieve simulation rates of
// multiple microseconds of physical time per day for systems with millions
// of atoms."
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("F2", "us/day vs system size at 512 nodes (Anton 2)");

  BenchReport report("f2");
  TextTable t({"atoms", "us/day", "step (ns)", "pairs/step (M)",
               "atoms/node", "compute frac"});
  const core::AntonMachine m2(machine_preset("anton2", 512));

  double mm_atom_rate = 0;
  for (int atoms : {23558, 92224, 262144, 524288, 1066628, 2217000,
                    4194304}) {
    BuilderOptions o;
    o.total_atoms = atoms;
    o.solute_fraction = 0.11;
    o.temperature_k = -1;  // timing only; skip velocity assignment
    o.seed = 2014;
    const System sys = build_solvated_system(o);
    const auto r = m2.estimate(sys, 2.5, 2);
    const core::Workload w = core::Workload::build(sys, m2.config());
    if (atoms >= 1000000 && mm_atom_rate == 0) mm_atom_rate = r.us_per_day();
    report.record("us_per_day.a" + std::to_string(atoms), r.us_per_day());
    t.add_row({TextTable::fmt_int(atoms), TextTable::fmt(r.us_per_day()),
               TextTable::fmt(r.avg_step_ns(), 0),
               TextTable::fmt(static_cast<double>(w.total_pairs()) / 1e6, 1),
               TextTable::fmt(w.mean_atoms_per_node(), 0),
               TextTable::fmt(r.full_step.exec.compute_fraction(), 3)});
  }
  t.print(std::cout);
  std::cout << "\npaper anchor: multiple us/day at millions of atoms "
               "(measured at ~1.07M atoms: "
            << TextTable::fmt(mm_atom_rate) << " us/day).\n";
  return 0;
}
