// F7 — Long-range electrostatics kernels: GSE spread + 3D FFT + gather and
// the direct Ewald k-space sum, new threaded pipeline vs the pre-rewrite
// serial baseline.
//
// The baseline is compiled into this binary (namespace `legacy` below): the
// old complex-only Fft3D with per-call line scratch and element-at-a-time
// strided Y/Z passes, and the old GSE spread/gather with per-call weight
// vectors and two modulo ops per mesh point.  Pinning the baseline in code
// keeps the comparison honest on any host — the speedup reported here mixes
// the algorithmic wins (real-to-complex forward path, tiled transpose
// passes, wrapped-index precompute, table caching) with thread scaling,
// exactly what a user upgrading across this change experiences.
//
// Set ANTON_BENCH_SMOKE=1 to shrink repetitions for CI.
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "fft/fft.h"
#include "md/ewald.h"
#include "md/gse.h"
#include "obs/profiler.h"

namespace anton::bench {
namespace legacy {

// ---- Pre-rewrite 3D FFT: complex-only, per-call scratch, strided passes.

// The old per-line plan: single twiddle table, conjugated inside the
// butterfly loop on the inverse path.
class FftPlan {
 public:
  explicit FftPlan(int n) : n_(n) {
    int log2n = 0;
    while ((1 << log2n) < n) ++log2n;
    twiddles_.resize(static_cast<size_t>(n / 2));
    for (int k = 0; k < n / 2; ++k) {
      const double theta = -2.0 * M_PI * k / n;
      twiddles_[static_cast<size_t>(k)] = {std::cos(theta), std::sin(theta)};
    }
    bitrev_.resize(static_cast<size_t>(n));
    for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) {
      uint32_t r = 0;
      for (int b = 0; b < log2n; ++b) {
        r |= ((i >> b) & 1u) << (log2n - 1 - b);
      }
      bitrev_[i] = r;
    }
  }

  void transform(std::span<Complex> data, bool inverse) const {
    for (int i = 0; i < n_; ++i) {
      const auto j = static_cast<int>(bitrev_[static_cast<size_t>(i)]);
      if (i < j) {
        std::swap(data[static_cast<size_t>(i)], data[static_cast<size_t>(j)]);
      }
    }
    for (int len = 2; len <= n_; len <<= 1) {
      const int half = len / 2;
      const int tw_step = n_ / len;
      for (int start = 0; start < n_; start += len) {
        for (int k = 0; k < half; ++k) {
          Complex w = twiddles_[static_cast<size_t>(k * tw_step)];
          if (inverse) w = std::conj(w);
          const size_t a = static_cast<size_t>(start + k);
          const size_t b = a + static_cast<size_t>(half);
          const Complex t = data[b] * w;
          data[b] = data[a] - t;
          data[a] += t;
        }
      }
    }
    if (inverse) {
      const double scale = 1.0 / n_;
      for (auto& v : data) v *= scale;
    }
  }

 private:
  int n_;
  std::vector<Complex> twiddles_;
  std::vector<uint32_t> bitrev_;
};

class Fft3D {
 public:
  Fft3D(int nx, int ny, int nz)
      : nx_(nx), ny_(ny), nz_(nz), px_(nx), py_(ny), pz_(nz) {}

  size_t num_points() const {
    return static_cast<size_t>(nx_) * ny_ * nz_;
  }
  size_t index(int x, int y, int z) const {
    return (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
  }

  void transform(std::span<Complex> data, bool inverse) const {
    for (int z = 0; z < nz_; ++z) {
      for (int y = 0; y < ny_; ++y) {
        px_.transform(data.subspan(index(0, y, z), static_cast<size_t>(nx_)),
                      inverse);
      }
    }
    std::vector<Complex> line(static_cast<size_t>(std::max(ny_, nz_)));
    for (int z = 0; z < nz_; ++z) {
      for (int x = 0; x < nx_; ++x) {
        for (int y = 0; y < ny_; ++y) {
          line[static_cast<size_t>(y)] = data[index(x, y, z)];
        }
        py_.transform({line.data(), static_cast<size_t>(ny_)}, inverse);
        for (int y = 0; y < ny_; ++y) {
          data[index(x, y, z)] = line[static_cast<size_t>(y)];
        }
      }
    }
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        for (int z = 0; z < nz_; ++z) {
          line[static_cast<size_t>(z)] = data[index(x, y, z)];
        }
        pz_.transform({line.data(), static_cast<size_t>(nz_)}, inverse);
        for (int z = 0; z < nz_; ++z) {
          data[index(x, y, z)] = line[static_cast<size_t>(z)];
        }
      }
    }
  }

 private:
  int nx_, ny_, nz_;
  FftPlan px_, py_, pz_;
};

// ---- Pre-rewrite GSE: serial full-spectrum tables, per-call weight
// vectors, two modulos per spread/gather mesh point.

int signed_freq(int f, int n) { return f <= n / 2 ? f : f - n; }

class GseMesh {
 public:
  GseMesh(const Box& box, double alpha, double spacing, double sigma)
      : box_(box),
        sigma_(sigma),
        nx_(next_power_of_two(std::max(
            4, static_cast<int>(std::ceil(box.lengths().x / spacing))))),
        ny_(next_power_of_two(std::max(
            4, static_cast<int>(std::ceil(box.lengths().y / spacing))))),
        nz_(next_power_of_two(std::max(
            4, static_cast<int>(std::ceil(box.lengths().z / spacing))))),
        fft_(nx_, ny_, nz_) {
    h_ = {box.lengths().x / nx_, box.lengths().y / ny_,
          box.lengths().z / nz_};
    const double support = 3.2 * sigma;
    rx_ = std::max(1, static_cast<int>(std::ceil(support / h_.x)));
    ry_ = std::max(1, static_cast<int>(std::ceil(support / h_.y)));
    rz_ = std::max(1, static_cast<int>(std::ceil(support / h_.z)));
    build_tables(alpha);
    mesh_.assign(fft_.num_points(), Complex{});
    rho_.assign(fft_.num_points(), 0.0);
  }

  // The old table build: one serial triple loop over the full spectrum,
  // rerun from scratch on every box resize.
  void build_tables(double alpha) {
    green_.assign(fft_.num_points(), 0.0);
    virial_factor_.assign(fft_.num_points(), 0.0);
    const double c = units::kCoulomb * 4.0 * M_PI;
    const Vec3 two_pi_over_l{2.0 * M_PI / box_.lengths().x,
                             2.0 * M_PI / box_.lengths().y,
                             2.0 * M_PI / box_.lengths().z};
    for (int fz = 0; fz < nz_; ++fz) {
      for (int fy = 0; fy < ny_; ++fy) {
        for (int fx = 0; fx < nx_; ++fx) {
          if (fx == 0 && fy == 0 && fz == 0) continue;
          const double kx = signed_freq(fx, nx_) * two_pi_over_l.x;
          const double ky = signed_freq(fy, ny_) * two_pi_over_l.y;
          const double kz = signed_freq(fz, nz_) * two_pi_over_l.z;
          const double k2 = kx * kx + ky * ky + kz * kz;
          green_[fft_.index(fx, fy, fz)] =
              c * std::exp(-k2 / (4.0 * alpha * alpha) +
                           sigma_ * sigma_ * k2) /
              k2;
          virial_factor_[fft_.index(fx, fy, fz)] =
              1.0 - k2 / (2.0 * alpha * alpha);
        }
      }
    }
  }

  void spread(const Topology& top, std::span<const Vec3> pos) {
    std::fill(rho_.begin(), rho_.end(), 0.0);
    const double inv_two_sigma2 = 1.0 / (2.0 * sigma_ * sigma_);
    const double norm3 = 1.0 / std::pow(2.0 * M_PI * sigma_ * sigma_, 1.5);
    const auto q = top.charges();
    std::vector<double> wx(static_cast<size_t>(2 * rx_ + 1));
    std::vector<double> wy(static_cast<size_t>(2 * ry_ + 1));
    std::vector<double> wz(static_cast<size_t>(2 * rz_ + 1));
    for (size_t i = 0; i < pos.size(); ++i) {
      if (q[i] == 0.0) continue;
      const Vec3 p = box_.wrap(pos[i]);
      const int cx = static_cast<int>(p.x / h_.x);
      const int cy = static_cast<int>(p.y / h_.y);
      const int cz = static_cast<int>(p.z / h_.z);
      for (int d = -rx_; d <= rx_; ++d) {
        const double dx = (cx + d) * h_.x - p.x;
        wx[static_cast<size_t>(d + rx_)] = std::exp(-dx * dx * inv_two_sigma2);
      }
      for (int d = -ry_; d <= ry_; ++d) {
        const double dy = (cy + d) * h_.y - p.y;
        wy[static_cast<size_t>(d + ry_)] = std::exp(-dy * dy * inv_two_sigma2);
      }
      for (int d = -rz_; d <= rz_; ++d) {
        const double dz = (cz + d) * h_.z - p.z;
        wz[static_cast<size_t>(d + rz_)] = std::exp(-dz * dz * inv_two_sigma2);
      }
      const double qn = q[i] * norm3;
      for (int dz = -rz_; dz <= rz_; ++dz) {
        const int mz = (cz + dz % nz_ + nz_) % nz_;
        const double wzq = wz[static_cast<size_t>(dz + rz_)] * qn;
        for (int dy = -ry_; dy <= ry_; ++dy) {
          const int my = (cy + dy % ny_ + ny_) % ny_;
          const double wyz = wy[static_cast<size_t>(dy + ry_)] * wzq;
          const size_t row = (static_cast<size_t>(mz) * ny_ + my) * nx_;
          for (int dx = -rx_; dx <= rx_; ++dx) {
            const int mx = (cx + dx % nx_ + nx_) % nx_;
            rho_[row + static_cast<size_t>(mx)] +=
                wx[static_cast<size_t>(dx + rx_)] * wyz;
          }
        }
      }
    }
  }

  void compute(const Topology& top, std::span<const Vec3> pos,
               std::span<Vec3> forces, EnergyReport& energy) {
    spread(top, pos);
    for (size_t m = 0; m < mesh_.size(); ++m) {
      mesh_[m] = Complex{rho_[m], 0.0};
    }
    fft_.transform(mesh_, /*inverse=*/false);
    const double e_k_scale =
        (h_.x * h_.y * h_.z) /
        (2.0 * static_cast<double>(fft_.num_points()));
    double w_kspace = 0.0;
    for (size_t m = 0; m < mesh_.size(); ++m) {
      w_kspace +=
          e_k_scale * green_[m] * virial_factor_[m] * std::norm(mesh_[m]);
      mesh_[m] *= green_[m];
    }
    energy.virial += w_kspace;
    fft_.transform(mesh_, /*inverse=*/true);

    const double vol_cell = h_.x * h_.y * h_.z;
    double e = 0.0;
    for (size_t m = 0; m < mesh_.size(); ++m) {
      e += rho_[m] * mesh_[m].real();
    }
    energy.coulomb_kspace += 0.5 * vol_cell * e;

    const double inv_two_sigma2 = 1.0 / (2.0 * sigma_ * sigma_);
    const double norm3 = 1.0 / std::pow(2.0 * M_PI * sigma_ * sigma_, 1.5);
    const double inv_sigma2 = 1.0 / (sigma_ * sigma_);
    const auto q = top.charges();
    std::vector<double> wx(static_cast<size_t>(2 * rx_ + 1));
    std::vector<double> wy(static_cast<size_t>(2 * ry_ + 1));
    std::vector<double> wz(static_cast<size_t>(2 * rz_ + 1));
    std::vector<double> dxs(wx.size()), dys(wy.size()), dzs(wz.size());
    for (size_t i = 0; i < pos.size(); ++i) {
      if (q[i] == 0.0) continue;
      const Vec3 p = box_.wrap(pos[i]);
      const int cx = static_cast<int>(p.x / h_.x);
      const int cy = static_cast<int>(p.y / h_.y);
      const int cz = static_cast<int>(p.z / h_.z);
      for (int d = -rx_; d <= rx_; ++d) {
        const double dx = (cx + d) * h_.x - p.x;
        dxs[static_cast<size_t>(d + rx_)] = dx;
        wx[static_cast<size_t>(d + rx_)] = std::exp(-dx * dx * inv_two_sigma2);
      }
      for (int d = -ry_; d <= ry_; ++d) {
        const double dy = (cy + d) * h_.y - p.y;
        dys[static_cast<size_t>(d + ry_)] = dy;
        wy[static_cast<size_t>(d + ry_)] = std::exp(-dy * dy * inv_two_sigma2);
      }
      for (int d = -rz_; d <= rz_; ++d) {
        const double dz = (cz + d) * h_.z - p.z;
        dzs[static_cast<size_t>(d + rz_)] = dz;
        wz[static_cast<size_t>(d + rz_)] = std::exp(-dz * dz * inv_two_sigma2);
      }
      Vec3 acc{};
      for (int dz = -rz_; dz <= rz_; ++dz) {
        const int mz = (cz + dz % nz_ + nz_) % nz_;
        const double wzv = wz[static_cast<size_t>(dz + rz_)];
        for (int dy = -ry_; dy <= ry_; ++dy) {
          const int my = (cy + dy % ny_ + ny_) % ny_;
          const double wyz = wy[static_cast<size_t>(dy + ry_)] * wzv;
          const size_t row = (static_cast<size_t>(mz) * ny_ + my) * nx_;
          for (int dx = -rx_; dx <= rx_; ++dx) {
            const int mx = (cx + dx % nx_ + nx_) % nx_;
            const double w = wx[static_cast<size_t>(dx + rx_)] * wyz;
            const double phi = mesh_[row + static_cast<size_t>(mx)].real();
            acc += (phi * w) * Vec3{dxs[static_cast<size_t>(dx + rx_)],
                                    dys[static_cast<size_t>(dy + ry_)],
                                    dzs[static_cast<size_t>(dz + rz_)]};
          }
        }
      }
      forces[i] += (-q[i] * vol_cell * norm3 * inv_sigma2) * acc;
    }
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }

 private:
  Box box_;
  double sigma_;
  int nx_, ny_, nz_;
  int rx_ = 0, ry_ = 0, rz_ = 0;
  Vec3 h_{};
  Fft3D fft_;
  std::vector<double> green_, virial_factor_, rho_;
  std::vector<Complex> mesh_;
};

// ---- Pre-rewrite direct Ewald: phase tables rebuilt (and reallocated)
// on every call, serial k loop.

void ewald_compute(const Box& box, const Topology& top,
                   std::span<const Vec3> pos, double alpha, int nmax,
                   std::span<Vec3> forces, EnergyReport& energy) {
  using Cx = std::complex<double>;
  const size_t n = pos.size();
  const auto q = top.charges();
  const size_t stride = n;
  const auto fill = [&](std::vector<Cx>& out, double coord(const Vec3&),
                        double length) {
    out.resize(static_cast<size_t>(nmax + 1) * stride);
    for (size_t i = 0; i < n; ++i) out[i] = Cx{1.0, 0.0};
    for (size_t i = 0; i < n; ++i) {
      const double theta = 2.0 * M_PI * coord(pos[i]) / length;
      const Cx base{std::cos(theta), std::sin(theta)};
      Cx cur = base;
      for (int f = 1; f <= nmax; ++f) {
        out[static_cast<size_t>(f) * stride + i] = cur;
        cur *= base;
      }
    }
  };
  std::vector<Cx> px, py, pz;
  fill(px, [](const Vec3& p) -> double { return p.x; }, box.lengths().x);
  fill(py, [](const Vec3& p) -> double { return p.y; }, box.lengths().y);
  fill(pz, [](const Vec3& p) -> double { return p.z; }, box.lengths().z);
  const auto phase = [&](int fx, int fy, int fz, size_t i) {
    const Cx vx = fx >= 0 ? px[static_cast<size_t>(fx) * stride + i]
                          : std::conj(px[static_cast<size_t>(-fx) * stride + i]);
    const Cx vy = fy >= 0 ? py[static_cast<size_t>(fy) * stride + i]
                          : std::conj(py[static_cast<size_t>(-fy) * stride + i]);
    const Cx vz = fz >= 0 ? pz[static_cast<size_t>(fz) * stride + i]
                          : std::conj(pz[static_cast<size_t>(-fz) * stride + i]);
    return vx * vy * vz;
  };

  const double pref = units::kCoulomb * 2.0 * M_PI / box.volume();
  const Vec3 two_pi_over_l{2.0 * M_PI / box.lengths().x,
                           2.0 * M_PI / box.lengths().y,
                           2.0 * M_PI / box.lengths().z};
  double e_total = 0.0, w_total = 0.0;
  for (int fx = 0; fx <= nmax; ++fx) {
    for (int fy = (fx == 0) ? 0 : -nmax; fy <= nmax; ++fy) {
      for (int fz = (fx == 0 && fy == 0) ? 1 : -nmax; fz <= nmax; ++fz) {
        const Vec3 k{fx * two_pi_over_l.x, fy * two_pi_over_l.y,
                     fz * two_pi_over_l.z};
        const double k2 = norm2(k);
        const double a = std::exp(-k2 / (4.0 * alpha * alpha)) / k2;
        Cx s{0, 0};
        for (size_t i = 0; i < n; ++i) s += q[i] * phase(fx, fy, fz, i);
        const double e_k = 2.0 * a * std::norm(s);
        e_total += e_k;
        w_total += e_k * (1.0 - k2 / (2.0 * alpha * alpha));
        const Cx s_conj = std::conj(s);
        for (size_t i = 0; i < n; ++i) {
          const double im = (s_conj * phase(fx, fy, fz, i)).imag();
          forces[i] += (2.0 * pref * 2.0 * a * q[i] * im) * k;
        }
      }
    }
  }
  energy.coulomb_kspace += pref * e_total;
  energy.virial += pref * w_total;
}

}  // namespace legacy

// Timing statistic: bench::time_min_ms (bench_util.h), shared with f6/f8.
}  // namespace anton::bench

int main() {
  using namespace anton;
  using namespace anton::bench;
  using namespace anton::md;

  const bool smoke = std::getenv("ANTON_BENCH_SMOKE") != nullptr;
  const int reps = smoke ? 2 : 7;
  const int iters = smoke ? 1 : 3;

  // The 4k-water system: 1331 molecules = 3993 atoms.
  System sys = build_water_box(1331, 7);
  const double alpha = 0.35, spacing = 1.1, sigma = 1.2;

  print_header("F7", "Long-range electrostatics kernels (3,993-atom water)");
  BenchReport report("f7");
  report.record("atoms", static_cast<double>(sys.num_atoms()));

  legacy::GseMesh old_gse(sys.box(), alpha, spacing, sigma);
  GseMesh new_gse_serial(sys.box(), alpha, spacing, sigma);
  ThreadPool pool(4);
  GseMesh new_gse_t4(sys.box(), alpha, spacing, sigma, &pool);
  report.record("mesh.nx", old_gse.nx());
  report.record("mesh.ny", old_gse.ny());
  report.record("mesh.nz", old_gse.nz());

  std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
  EnergyReport e;
  const auto run = [&](auto& gse) {
    std::fill(f.begin(), f.end(), Vec3{});
    e = EnergyReport{};
    gse.compute(sys.topology(), sys.positions(), f, e);
  };

  // Warm everything (plans, workspaces, per-thread scratch) before timing.
  run(old_gse);
  run(new_gse_serial);
  run(new_gse_t4);

  {
    std::cout << "\n-- combined spread + 3D FFT + k-multiply + gather --\n";
    const double legacy_ms = time_min_ms(reps, iters, [&] { run(old_gse); });
    const double serial_ms =
        time_min_ms(reps, iters, [&] { run(new_gse_serial); });
    const double t4_ms = time_min_ms(reps, iters, [&] { run(new_gse_t4); });
    report.record("longrange.legacy_ms", legacy_ms);
    report.record("longrange.new_serial_ms", serial_ms);
    report.record("longrange.new_t4_ms", t4_ms);
    report.record("longrange.speedup_serial", legacy_ms / serial_ms);
    report.record("longrange.speedup_t4", legacy_ms / t4_ms);
    TextTable t({"variant", "ms/step", "speedup"});
    t.add_row({"legacy serial", TextTable::fmt(legacy_ms, 2), "1.00"});
    t.add_row({"new serial", TextTable::fmt(serial_ms, 2),
               TextTable::fmt(legacy_ms / serial_ms, 2)});
    t.add_row({"new 4 threads", TextTable::fmt(t4_ms, 2),
               TextTable::fmt(legacy_ms / t4_ms, 2)});
    t.print(std::cout);
  }

  {
    std::cout << "\n-- 3D FFT round trip on the charge mesh --\n";
    legacy::Fft3D old_fft(old_gse.nx(), old_gse.ny(), old_gse.nz());
    Fft3D new_fft(old_gse.nx(), old_gse.ny(), old_gse.nz(), &pool);
    std::vector<double> grid(old_fft.num_points());
    for (size_t i = 0; i < grid.size(); ++i) {
      grid[i] = std::sin(0.37 * static_cast<double>(i));
    }
    std::vector<Complex> cmesh(old_fft.num_points());
    std::vector<Complex> hmesh(new_fft.half_points());
    std::vector<double> out(grid.size());
    const double legacy_ms = time_min_ms(reps, iters, [&] {
      for (size_t m = 0; m < cmesh.size(); ++m) {
        cmesh[m] = Complex{grid[m], 0.0};
      }
      old_fft.transform(cmesh, false);
      old_fft.transform(cmesh, true);
    });
    const double new_ms = time_min_ms(reps, iters, [&] {
      new_fft.forward_real(grid, hmesh);
      new_fft.inverse_real(hmesh, out);
    });
    report.record("fft.legacy_ms", legacy_ms);
    report.record("fft.new_t4_ms", new_ms);
    report.record("fft.speedup_t4", legacy_ms / new_ms);
    TextTable t({"variant", "ms/round-trip", "speedup"});
    t.add_row({"legacy complex", TextTable::fmt(legacy_ms, 2), "1.00"});
    t.add_row({"new r2c, 4 threads", TextTable::fmt(new_ms, 2),
               TextTable::fmt(legacy_ms / new_ms, 2)});
    t.print(std::cout);
  }

  {
    std::cout << "\n-- Green's-function table rebuild (barostat resize) --\n";
    const Box grown(1.002 * sys.box().lengths());
    const double legacy_ms = time_min_ms(reps, 1, [&] {
      old_gse.build_tables(alpha);
    });
    // Alternate between two boxes with identical mesh dimensions so every
    // set_box call changes the lengths and takes the rebuild-in-place path
    // (the mesh currently sits at sys.box(), so start with the grown cell).
    bool flip = true;
    const double new_ms = time_min_ms(reps, 1, [&] {
      new_gse_t4.set_box(flip ? grown : sys.box());
      flip = !flip;
    });
    new_gse_t4.set_box(sys.box());
    report.record("tables.legacy_ms", legacy_ms);
    report.record("tables.new_t4_ms", new_ms);
    report.record("tables.speedup_t4", legacy_ms / new_ms);
    TextTable t({"variant", "ms/rebuild", "speedup"});
    t.add_row({"legacy full-spectrum serial", TextTable::fmt(legacy_ms, 2),
               "1.00"});
    t.add_row({"new half-spectrum, 4 threads", TextTable::fmt(new_ms, 2),
               TextTable::fmt(legacy_ms / new_ms, 2)});
    t.print(std::cout);
  }

  {
    std::cout << "\n-- direct Ewald k-space (nmax = 6) --\n";
    const int nmax = 6;
    EwaldDirect new_serial(sys.box(), alpha, nmax);
    EwaldDirect new_t4(sys.box(), alpha, nmax, &pool);
    const auto run_ewald = [&](EwaldDirect& ew) {
      std::fill(f.begin(), f.end(), Vec3{});
      e = EnergyReport{};
      ew.compute(sys.topology(), sys.positions(), f, e);
    };
    run_ewald(new_serial);  // warm tables
    run_ewald(new_t4);
    const int ew_reps = smoke ? 1 : 3;
    const double legacy_ms = time_min_ms(ew_reps, 1, [&] {
      std::fill(f.begin(), f.end(), Vec3{});
      e = EnergyReport{};
      legacy::ewald_compute(sys.box(), sys.topology(), sys.positions(), alpha,
                            nmax, f, e);
    });
    const double serial_ms =
        time_min_ms(ew_reps, 1, [&] { run_ewald(new_serial); });
    const double t4_ms = time_min_ms(ew_reps, 1, [&] { run_ewald(new_t4); });
    report.record("ewald.legacy_ms", legacy_ms);
    report.record("ewald.new_serial_ms", serial_ms);
    report.record("ewald.new_t4_ms", t4_ms);
    report.record("ewald.speedup_serial", legacy_ms / serial_ms);
    report.record("ewald.speedup_t4", legacy_ms / t4_ms);
    TextTable t({"variant", "ms/eval", "speedup"});
    t.add_row({"legacy (tables rebuilt per call)", TextTable::fmt(legacy_ms, 2),
               "1.00"});
    t.add_row({"new serial", TextTable::fmt(serial_ms, 2),
               TextTable::fmt(legacy_ms / serial_ms, 2)});
    t.add_row({"new 4 threads", TextTable::fmt(t4_ms, 2),
               TextTable::fmt(legacy_ms / t4_ms, 2)});
    t.print(std::cout);
  }

  std::cout << "\nThe combined-path speedup is the headline number: it is "
               "what the RESPA outer\nstep pays every long-range evaluation.\n";
  return 0;
}
