// F6 — Commodity-baseline kernel throughput on this host (google-benchmark).
// Grounds the F4 comparison: these are the kernels a commodity platform runs
// in software that Anton executes in silicon.
#include <benchmark/benchmark.h>

#include <cmath>
#include <random>

#include "chem/builder.h"
#include "common/simd.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "fft/fft.h"
#include "md/constraints.h"
#include "md/engine.h"
#include "md/gse.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"
#include "md/workspace.h"
#include "obs/flightrecorder.h"
#include "obs/perfcounters.h"

namespace anton::md {

// Pre-SIMD scalar inner loops, compiled into this binary as the baseline for
// the vectorization speedup gates (scripts/check.sh requires the library's
// SIMD kernels to beat these by >= 2x on an AVX2 host).  They reproduce the
// former library code paths exactly: the scalar tabulated pair loop and the
// scalar cubic-Hermite table evaluation.
namespace legacy {

constexpr double kTwoOverSqrtPi = 1.1283791670955126;

double pair_pass(const Box& box, const ForceWorkspace& ws,
                 const NeighborList& nlist, std::span<const Vec3> pos,
                 std::span<const int> types, std::span<const double> charges,
                 double alpha, double cutoff2, std::span<Vec3> f) {
  const auto q_scaled = ws.scaled_charges();
  const double coul_shift = ws.coul_shift();
  const int ntypes = ws.num_types();
  const LjMixed* lj_table = &ws.lj(0, 0);
  const Vec3 box_l = box.lengths();
  const Vec3 inv_l{1.0 / box_l.x, 1.0 / box_l.y, 1.0 / box_l.z};
  const double table_r2_min = ws.table_r2_min();
  const CoulTableView tab = ws.coul_ef();
  double e_sum = 0.0;

  const size_t n = pos.size();
  for (size_t i = 0; i < n; ++i) {
    const Vec3 pi = pos[i];
    const double qi = q_scaled[i];
    const LjMixed* lj_row = lj_table + types[i] * ntypes;
    Vec3 fi{};
    for (int j : nlist.neighbors_of(static_cast<int>(i))) {
      Vec3 d = pi - pos[static_cast<size_t>(j)];
      d.x -= box_l.x * std::nearbyint(d.x * inv_l.x);
      d.y -= box_l.y * std::nearbyint(d.y * inv_l.y);
      d.z -= box_l.z * std::nearbyint(d.z * inv_l.z);
      const double r2 = norm2(d);
      if (r2 >= cutoff2) continue;
      double f_pair = 0.0;

      const LjMixed& lj = lj_row[types[static_cast<size_t>(j)]];
      if (lj.eps > 0) {
        const double inv_r2 = 1.0 / r2;
        const double sr2 = lj.sigma2 * inv_r2;
        const double sr6 = sr2 * sr2 * sr2;
        f_pair += 24.0 * lj.eps * (2.0 * sr6 * sr6 - sr6) * inv_r2;
        e_sum += 4.0 * lj.eps * (sr6 * sr6 - sr6) - lj.e_shift;
      }

      const double qq = qi * charges[static_cast<size_t>(j)];
      if (qq != 0.0) {
        double e_c, f_c;
        if (r2 >= table_r2_min) {
          const double s = (r2 - tab.x0) * tab.inv_h;
          int k = static_cast<int>(s);
          if (k > tab.n - 2) k = tab.n - 2;
          const double t = s - k;
          const CoulNode& a = tab.nodes[k];
          const CoulNode& b = tab.nodes[k + 1];
          const double t2 = t * t;
          const double t3 = t2 * t;
          const double h00 = 2 * t3 - 3 * t2 + 1;
          const double h10 = (t3 - 2 * t2 + t) * tab.h;
          const double h01 = -2 * t3 + 3 * t2;
          const double h11 = (t3 - t2) * tab.h;
          e_c = qq * (h00 * a.ev + h10 * a.ed + h01 * b.ev + h11 * b.ed -
                      coul_shift);
          f_c = qq * (h00 * a.fv + h10 * a.fd + h01 * b.fv + h11 * b.fd);
        } else {
          const double inv_r2 = 1.0 / r2;
          const double r = std::sqrt(r2);
          const double ar = alpha * r;
          const double erfc_ar = std::erfc(ar);
          e_c = qq * (erfc_ar / r - coul_shift);
          f_c = qq *
                (erfc_ar / r + kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) *
                inv_r2;
        }
        e_sum += e_c;
        f_pair += f_c;
      }

      const Vec3 fv = f_pair * d;
      fi += fv;
      f[static_cast<size_t>(j)] -= fv;
    }
    f[i] += fi;
  }
  return e_sum;
}

}  // namespace legacy

namespace {

// Crash forensics for bench runs: a kill or invariant failure mid-run dumps
// the flight-recorder rings (tools/validate_trace.py reads the dump).
const bool g_flight_armed = [] {
  obs::flight::install_crash_handler();
  return true;
}();

// One shared hardware-counter group for the whole binary (benchmarks run
// serially on the main thread).  Each kernel scopes a PerfTap over its
// timing loop and exports "ipc" / "llc_miss_rate" counters alongside the
// times — "perf" says whether the host allowed perf_event_open at all, so
// downstream tooling (tools/bench_compare.py) knows when to skip them.
obs::PerfCounters& perf_group() {
  static obs::PerfCounters pc;
  return pc;
}

class PerfTap {
 public:
  explicit PerfTap(benchmark::State& state) : state_(state) {
    if (perf_group().available()) {
      s0_ = perf_group().read();
    }
  }
  ~PerfTap() {
    state_.counters["perf"] = s0_.valid ? 1.0 : 0.0;
    if (!s0_.valid) return;
    const obs::PerfSample d = perf_group().read() - s0_;
    if (!d.valid) return;
    if (d.cycles > 0) state_.counters["ipc"] = d.ipc();
    if (d.llc_loads > 0) state_.counters["llc_miss_rate"] = d.llc_miss_rate();
  }
  PerfTap(const PerfTap&) = delete;
  PerfTap& operator=(const PerfTap&) = delete;

 private:
  benchmark::State& state_;
  obs::PerfSample s0_;
};

const System& water4k() {
  static const System sys = build_water_box(1331, 7);  // 3,993 atoms
  return sys;
}

// Arg(0) = the number of worker threads; 1 runs the serial path.  The
// parallel build produces bit-identical CSR output for every thread count.
void BM_NeighborListBuild(benchmark::State& state) {
  const System& sys = water4k();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  ThreadPool pool(threads);
  ThreadPool* p = threads > 1 ? &pool : nullptr;
  NeighborList nlist(9.0, 1.0);
  PerfTap tap(state);
  for (auto _ : state) {
    nlist.build(sys.box(), sys.positions(), sys.topology(), p);
    benchmark::DoNotOptimize(nlist.num_pairs());
  }
  state.counters["pairs"] = static_cast<double>(nlist.num_pairs());
}
BENCHMARK(BM_NeighborListBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Steady-state short-range pair evaluation: persistent workspace (premixed
// LJ table, prescaled charges, fused erfc tables) and per-thread force
// buffers, so iterations after the first perform zero heap allocation.
void BM_NonbondedPairs(benchmark::State& state) {
  const System& sys = water4k();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  ThreadPool pool(threads);
  ThreadPool* p = threads > 1 ? &pool : nullptr;
  NeighborList nlist(9.0, 1.0);
  nlist.build(sys.box(), sys.positions(), sys.topology(), p);
  std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
  ForceWorkspace ws;
  {
    // Untimed warm-up: builds the erfc tables and sizes all scratch so the
    // loop below measures the allocation-free steady state only.
    EnergyReport e;
    compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                      f, e, p, false, &ws, true);
  }
  PerfTap tap(state);
  for (auto _ : state) {
    EnergyReport e;
    std::fill(f.begin(), f.end(), Vec3{});
    compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                      f, e, p, /*shift_at_cutoff=*/false, &ws,
                      /*tabulate_erfc=*/true);
    benchmark::DoNotOptimize(e.lj);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(nlist.num_pairs()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NonbondedPairs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// ---- Vectorization gates: the library's SIMD pair kernel and table
// evaluation vs the compiled-in legacy scalar loops above.  Both variants
// run serially over the identical neighbor list / inputs; the "simd_avx2"
// counter tells scripts/check.sh whether the >=2x gate applies (it is only
// enforced when the library was built with the AVX2 backend).

void BM_PairKernelScalar(benchmark::State& state) {
  const System& sys = water4k();
  NeighborList nlist(9.0, 1.0);
  nlist.build(sys.box(), sys.positions(), sys.topology(), nullptr);
  std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
  ForceWorkspace ws;
  {
    // Warm-up through the real entry point builds the same workspace state
    // (premixed LJ, prescaled charges, erfc tables) the legacy loop reads.
    EnergyReport e;
    compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                      f, e, nullptr, false, &ws, true);
  }
  const Topology& top = sys.topology();
  PerfTap tap(state);
  for (auto _ : state) {
    std::fill(f.begin(), f.end(), Vec3{});
    const double e = legacy::pair_pass(sys.box(), ws, nlist, sys.positions(),
                                       top.types(), top.charges(), 0.35,
                                       9.0 * 9.0, f);
    benchmark::DoNotOptimize(e);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(nlist.num_pairs()), benchmark::Counter::kIsRate);
  state.counters["simd_avx2"] = simd::kAvx2 ? 1.0 : 0.0;
}
BENCHMARK(BM_PairKernelScalar)->Unit(benchmark::kMillisecond);

void BM_PairKernelSimd(benchmark::State& state) {
  const System& sys = water4k();
  NeighborList nlist(9.0, 1.0);
  nlist.build(sys.box(), sys.positions(), sys.topology(), nullptr);
  std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
  ForceWorkspace ws;
  {
    EnergyReport e;
    compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                      f, e, nullptr, false, &ws, true);
  }
  PerfTap tap(state);
  for (auto _ : state) {
    EnergyReport e;
    std::fill(f.begin(), f.end(), Vec3{});
    compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                      f, e, nullptr, /*shift_at_cutoff=*/false, &ws,
                      /*tabulate_erfc=*/true);
    benchmark::DoNotOptimize(e.lj);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(nlist.num_pairs()), benchmark::Counter::kIsRate);
  state.counters["simd_avx2"] = simd::kAvx2 ? 1.0 : 0.0;
}
BENCHMARK(BM_PairKernelSimd)->Unit(benchmark::kMillisecond);

// Table-eval gate inputs: one cubic-Hermite table of the erfc-like radial
// shape over the squared-distance domain the pair kernel uses, evaluated at
// uniformly random in-domain abscissae.
struct TableEvalFixture {
  CubicTable tab;
  std::vector<double> xs;
  std::vector<double> out;

  explicit TableEvalFixture(int n_points)
      : xs(static_cast<size_t>(n_points)), out(static_cast<size_t>(n_points)) {
    tab.build(
        0.25, 81.0, 1537, [](double x) { return std::exp(-0.3 * x) / x; },
        [](double x) {
          return -std::exp(-0.3 * x) * (0.3 * x + 1.0) / (x * x);
        });
    std::mt19937_64 rng(12345);
    std::uniform_real_distribution<double> dist(0.25, 81.0);
    for (double& x : xs) x = dist(rng);
  }
};

void BM_TableEvalScalar(benchmark::State& state) {
  static TableEvalFixture fx(1 << 14);
  const int n = static_cast<int>(fx.xs.size());
  PerfTap tap(state);
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) fx.out[static_cast<size_t>(i)] =
        fx.tab(fx.xs[static_cast<size_t>(i)]);
    benchmark::DoNotOptimize(fx.out.data());
    benchmark::ClobberMemory();
  }
  state.counters["evals/s"] =
      benchmark::Counter(static_cast<double>(n), benchmark::Counter::kIsRate);
  state.counters["simd_avx2"] = simd::kAvx2 ? 1.0 : 0.0;
}
BENCHMARK(BM_TableEvalScalar)->Unit(benchmark::kMicrosecond);

void BM_TableEvalSimd(benchmark::State& state) {
  static TableEvalFixture fx(1 << 14);
  const int n = static_cast<int>(fx.xs.size());
  PerfTap tap(state);
  for (auto _ : state) {
    fx.tab.eval_batch(fx.xs.data(), fx.out.data(), n);
    benchmark::DoNotOptimize(fx.out.data());
    benchmark::ClobberMemory();
  }
  state.counters["evals/s"] =
      benchmark::Counter(static_cast<double>(n), benchmark::Counter::kIsRate);
  state.counters["simd_avx2"] = simd::kAvx2 ? 1.0 : 0.0;
}
BENCHMARK(BM_TableEvalSimd)->Unit(benchmark::kMicrosecond);

void BM_GseMesh(benchmark::State& state) {
  const System& sys = water4k();
  GseMesh gse(sys.box(), 0.35, 1.1, 1.2);
  std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
  PerfTap tap(state);
  for (auto _ : state) {
    EnergyReport e;
    std::fill(f.begin(), f.end(), Vec3{});
    gse.compute(sys.topology(), sys.positions(), f, e);
    benchmark::DoNotOptimize(e.coulomb_kspace);
  }
  state.counters["mesh"] = static_cast<double>(gse.mesh_points());
}
BENCHMARK(BM_GseMesh)->Unit(benchmark::kMillisecond);

void BM_Fft3D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fft3D fft(n, n, n);
  std::vector<Complex> data(fft.num_points(), Complex{1.0, 0.5});
  PerfTap tap(state);
  for (auto _ : state) {
    fft.forward(data);
    fft.inverse(data);
    benchmark::DoNotOptimize(data[0]);
  }
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ShakeWater(benchmark::State& state) {
  const System& sys = water4k();
  std::vector<Vec3> ref(sys.positions().begin(), sys.positions().end());
  Rng rng(3, 0);
  PerfTap tap(state);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Vec3> pos = ref;
    for (auto& p : pos) p += 0.02 * rng.gaussian_vec3();
    std::vector<Vec3> vel(pos.size());
    state.ResumeTiming();
    const auto stats = shake(sys.box(), sys.topology(), ref, pos, vel, 0.01,
                             1e-8, 200);
    benchmark::DoNotOptimize(stats.iterations);
  }
  state.counters["constraints"] =
      static_cast<double>(sys.topology().constraints().size());
}
BENCHMARK(BM_ShakeWater)->Unit(benchmark::kMillisecond);

void BM_FullStep(benchmark::State& state) {
  MdParams p;
  p.cutoff = 9.0;
  p.skin = 1.0;
  p.dt_fs = 2.5;
  p.respa_k = 2;
  p.long_range = LongRangeMethod::kMesh;
  System sys = water4k();
  Simulation sim(std::move(sys), p);
  sim.step(2);
  // One full RESPA cycle (respa_k inner steps) per iteration, so every
  // iteration does the same work regardless of step parity.
  PerfTap tap(state);
  for (auto _ : state) {
    sim.step(p.respa_k);
    benchmark::DoNotOptimize(sim.step_count());
  }
  state.counters["atoms"] = static_cast<double>(sim.system().num_atoms());
  state.counters["steps_per_iter"] = static_cast<double>(p.respa_k);
}
BENCHMARK(BM_FullStep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace anton::md

BENCHMARK_MAIN();
