// F6 — Commodity-baseline kernel throughput on this host (google-benchmark).
// Grounds the F4 comparison: these are the kernels a commodity platform runs
// in software that Anton executes in silicon.
#include <benchmark/benchmark.h>

#include "chem/builder.h"
#include "common/threadpool.h"
#include "fft/fft.h"
#include "md/constraints.h"
#include "md/engine.h"
#include "md/gse.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"

namespace anton::md {
namespace {

const System& water4k() {
  static const System sys = build_water_box(1331, 7);  // 3,993 atoms
  return sys;
}

// Arg(0) = the number of worker threads; 1 runs the serial path.  The
// parallel build produces bit-identical CSR output for every thread count.
void BM_NeighborListBuild(benchmark::State& state) {
  const System& sys = water4k();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  ThreadPool pool(threads);
  ThreadPool* p = threads > 1 ? &pool : nullptr;
  NeighborList nlist(9.0, 1.0);
  for (auto _ : state) {
    nlist.build(sys.box(), sys.positions(), sys.topology(), p);
    benchmark::DoNotOptimize(nlist.num_pairs());
  }
  state.counters["pairs"] = static_cast<double>(nlist.num_pairs());
}
BENCHMARK(BM_NeighborListBuild)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Steady-state short-range pair evaluation: persistent workspace (premixed
// LJ table, prescaled charges, fused erfc tables) and per-thread force
// buffers, so iterations after the first perform zero heap allocation.
void BM_NonbondedPairs(benchmark::State& state) {
  const System& sys = water4k();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  ThreadPool pool(threads);
  ThreadPool* p = threads > 1 ? &pool : nullptr;
  NeighborList nlist(9.0, 1.0);
  nlist.build(sys.box(), sys.positions(), sys.topology(), p);
  std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
  ForceWorkspace ws;
  {
    // Untimed warm-up: builds the erfc tables and sizes all scratch so the
    // loop below measures the allocation-free steady state only.
    EnergyReport e;
    compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                      f, e, p, false, &ws, true);
  }
  for (auto _ : state) {
    EnergyReport e;
    std::fill(f.begin(), f.end(), Vec3{});
    compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                      f, e, p, /*shift_at_cutoff=*/false, &ws,
                      /*tabulate_erfc=*/true);
    benchmark::DoNotOptimize(e.lj);
  }
  state.counters["pairs/s"] = benchmark::Counter(
      static_cast<double>(nlist.num_pairs()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NonbondedPairs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_GseMesh(benchmark::State& state) {
  const System& sys = water4k();
  GseMesh gse(sys.box(), 0.35, 1.1, 1.2);
  std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
  for (auto _ : state) {
    EnergyReport e;
    std::fill(f.begin(), f.end(), Vec3{});
    gse.compute(sys.topology(), sys.positions(), f, e);
    benchmark::DoNotOptimize(e.coulomb_kspace);
  }
  state.counters["mesh"] = static_cast<double>(gse.mesh_points());
}
BENCHMARK(BM_GseMesh)->Unit(benchmark::kMillisecond);

void BM_Fft3D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Fft3D fft(n, n, n);
  std::vector<Complex> data(fft.num_points(), Complex{1.0, 0.5});
  for (auto _ : state) {
    fft.forward(data);
    fft.inverse(data);
    benchmark::DoNotOptimize(data[0]);
  }
}
BENCHMARK(BM_Fft3D)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_ShakeWater(benchmark::State& state) {
  const System& sys = water4k();
  std::vector<Vec3> ref(sys.positions().begin(), sys.positions().end());
  Rng rng(3, 0);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Vec3> pos = ref;
    for (auto& p : pos) p += 0.02 * rng.gaussian_vec3();
    std::vector<Vec3> vel(pos.size());
    state.ResumeTiming();
    const auto stats = shake(sys.box(), sys.topology(), ref, pos, vel, 0.01,
                             1e-8, 200);
    benchmark::DoNotOptimize(stats.iterations);
  }
  state.counters["constraints"] =
      static_cast<double>(sys.topology().constraints().size());
}
BENCHMARK(BM_ShakeWater)->Unit(benchmark::kMillisecond);

void BM_FullStep(benchmark::State& state) {
  MdParams p;
  p.cutoff = 9.0;
  p.skin = 1.0;
  p.dt_fs = 2.5;
  p.respa_k = 2;
  p.long_range = LongRangeMethod::kMesh;
  System sys = water4k();
  Simulation sim(std::move(sys), p);
  sim.step(2);
  // One full RESPA cycle (respa_k inner steps) per iteration, so every
  // iteration does the same work regardless of step parity.
  for (auto _ : state) {
    sim.step(p.respa_k);
    benchmark::DoNotOptimize(sim.step_count());
  }
  state.counters["atoms"] = static_cast<double>(sim.system().num_atoms());
  state.counters["steps_per_iter"] = static_cast<double>(p.respa_k);
}
BENCHMARK(BM_FullStep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace anton::md

BENCHMARK_MAIN();
