// T1 — Architecture comparison table: Anton 1 vs Anton 2 node parameters and
// the modelled per-subsystem peak rates (the paper's machine-overview table).
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("T1", "Anton 1 vs Anton 2 node architecture (modelled)");

  const auto a1 = arch::MachineConfig::anton1();
  const auto a2 = arch::MachineConfig::anton2();

  TextTable t({"parameter", "anton1", "anton2", "ratio"});
  auto row = [&](const std::string& name, double v1, double v2,
                 int precision = 2) {
    t.add_row({name, TextTable::fmt(v1, precision),
               TextTable::fmt(v2, precision),
               TextTable::fmt(v1 != 0 ? v2 / v1 : 0.0, 2)});
  };
  row("PPIMs / node", a1.ppims_per_node, a2.ppims_per_node, 0);
  row("PPIM clock (GHz)", a1.ppim_clock_ghz, a2.ppim_clock_ghz);
  row("pairwise peak (pairs/ns/node)", a1.pair_rate_per_ns(),
      a2.pair_rate_per_ns());
  row("geometry cores / node", a1.geometry_cores, a2.geometry_cores, 0);
  row("GC SIMD width", a1.gc_simd_width, a2.gc_simd_width, 0);
  row("GC clock (GHz)", a1.gc_clock_ghz, a2.gc_clock_ghz);
  row("GC lane rate (ops/ns/node)", a1.gc_lane_rate_per_ns(),
      a2.gc_lane_rate_per_ns());
  row("link bandwidth (GB/s/dir)", a1.noc.link_bandwidth_gbs,
      a2.noc.link_bandwidth_gbs);
  row("hop latency (ns)", a1.noc.hop_latency_ns, a2.noc.hop_latency_ns);
  row("injection overhead (ns)", a1.noc.injection_overhead_ns,
      a2.noc.injection_overhead_ns);
  row("GC task dispatch (ns)", a1.gc_task_overhead_ns,
      a2.gc_task_overhead_ns);
  t.add_row({"synchronisation", "bulk-synchronous", "event-driven", "-"});
  t.print(std::cout);

  BenchReport report("t1");
  report.record("anton1.pair_rate_per_ns", a1.pair_rate_per_ns());
  report.record("anton2.pair_rate_per_ns", a2.pair_rate_per_ns());
  report.record("anton1.gc_lane_rate_per_ns", a1.gc_lane_rate_per_ns());
  report.record("anton2.gc_lane_rate_per_ns", a2.gc_lane_rate_per_ns());

  std::cout << "\nKey architectural change: fine-grained event-driven "
               "operation (hardware\ncountdown triggers, "
            << a2.sync_trigger_ns
            << " ns per task fire) replaces global phase barriers\n("
            << core::barrier_cost_ns(a1) << " ns per barrier on the 512-node "
            << "torus).\n";
  return 0;
}
