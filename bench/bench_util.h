// Shared helpers for the experiment harness.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (see DESIGN.md / EXPERIMENTS.md for the index) and prints the
// same kind of rows/series the paper reports.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "arch/config.h"
#include "chem/builder.h"
#include "common/table.h"
#include "core/machine.h"

namespace anton::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& description) {
  std::cout << "\n=== " << experiment_id << ": " << description << " ===\n";
}

// The standard 23,558-atom benchmark system (DHFR class), built once.
inline const System& dhfr_system() {
  static const System sys = build_benchmark_system(dhfr_spec());
  return sys;
}

// Machine preset by name with an arbitrary node count.
inline arch::MachineConfig machine_preset(const std::string& name,
                                          int nodes) {
  int nx, ny, nz;
  core::torus_dims(nodes, &nx, &ny, &nz);
  if (name == "anton1") return arch::MachineConfig::anton1(nx, ny, nz);
  if (name == "anton2-bsp") return arch::MachineConfig::anton2_bsp(nx, ny, nz);
  return arch::MachineConfig::anton2(nx, ny, nz);
}

// Paper-anchored reference points quoted in the abstract; printed next to
// measured values so every run shows paper-vs-reproduction at a glance.
inline constexpr double kPaperDhfr512UsPerDay = 85.0;
inline constexpr double kPaperAnton2OverAnton1 = 10.0;  // "up to ten times"
inline constexpr double kPaperCommoditySpeedup = 180.0;

}  // namespace anton::bench
