// Shared helpers for the experiment harness.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (see DESIGN.md / EXPERIMENTS.md for the index) and prints the
// same kind of rows/series the paper reports.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "arch/config.h"
#include "chem/builder.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "core/machine.h"
#include "core/sweep.h"
#include "obs/flightrecorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace anton::bench {

inline void print_header(const std::string& experiment_id,
                         const std::string& description) {
  std::cout << "\n=== " << experiment_id << ": " << description << " ===\n";
}

// Minimum over `reps` timed repetitions of `iters` calls each, in
// milliseconds per call — the stable statistic on hosts with bursty
// background load.  Shared by every baseline-gated comparison (f6/f7/f8) so
// the gated speedups are measured the same way everywhere.
template <typename Fn>
double time_min_ms(int reps, int iters, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = obs::wall_seconds();
    for (int it = 0; it < iters; ++it) fn();
    const double dt = (obs::wall_seconds() - t0) / iters;
    if (dt < best) best = dt;
  }
  return best * 1e3;
}

// The standard 23,558-atom benchmark system (DHFR class), built once.
inline const System& dhfr_system() {
  static const System sys = build_benchmark_system(dhfr_spec());
  return sys;
}

// Machine preset by name with an arbitrary node count.
inline arch::MachineConfig machine_preset(const std::string& name,
                                          int nodes) {
  int nx, ny, nz;
  core::torus_dims(nodes, &nx, &ny, &nz);
  if (name == "anton1") return arch::MachineConfig::anton1(nx, ny, nz);
  if (name == "anton2-bsp") return arch::MachineConfig::anton2_bsp(nx, ny, nz);
  return arch::MachineConfig::anton2(nx, ny, nz);
}

// Uniform machine-readable bench output.  Each experiment binary records
// its headline numbers into a MetricsRegistry and writes one
// "anton.metrics.v1" snapshot, BENCH_<id>.json, on destruction (into
// $ANTON_BENCH_DIR when set, else the working directory) — the same schema
// the telemetry layer uses everywhere, so downstream tooling parses bench
// results and run metrics identically.  F6 is the exception: its
// BENCH_f6.json is google-benchmark's own format, produced by the
// bench-smoke target, and stays that way.
class BenchReport {
 public:
  explicit BenchReport(std::string experiment_id)
      : id_(std::move(experiment_id)) {
    // A bench killed mid-run (timeout, OOM reaper, ^C) leaves a flight dump
    // behind instead of nothing.
    obs::flight::install_crash_handler();
  }
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() {
    try {
      save();
    } catch (...) {
      // Benches must not die on an unwritable output directory.
    }
  }

  void record(const std::string& name, double value) {
    reg_.gauge(id_ + "." + name)->set(value);
  }
  obs::MetricsRegistry& registry() { return reg_; }

  std::string path() const {
    const char* dir = std::getenv("ANTON_BENCH_DIR");
    const std::string prefix =
        dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : std::string();
    return prefix + "BENCH_" + id_ + ".json";
  }

  void save() const {
    if (reg_.empty()) return;
    reg_.save_json(path());
    std::cout << "\n[metrics] " << path() << "\n";
  }

 private:
  std::string id_;
  obs::MetricsRegistry reg_;
};

// Shared worker pool for sweep parallelism.  ANTON_SWEEP_THREADS picks the
// width (0/unset = hardware concurrency, 1 = serial); every bench maps its
// estimate points through core::SweepRunner on this pool, so the printed
// tables are bitwise identical at any setting.
inline ThreadPool* sweep_pool() {
  static const long requested = [] {
    const char* env = std::getenv("ANTON_SWEEP_THREADS");
    return env != nullptr && *env != '\0' ? std::strtol(env, nullptr, 10) : 0L;
  }();
  if (requested == 1) return nullptr;  // serial: skip pool construction
  static ThreadPool pool(requested > 1 ? static_cast<unsigned>(requested) : 0);
  return &pool;
}

// Estimate a batch of machine points on one system, in point order.
inline std::vector<core::PerfReport> sweep_estimates(
    const System& sys, std::span<const core::EstimatePoint> points) {
  return core::SweepRunner(sweep_pool()).estimate(sys, points);
}

// Paper-anchored reference points quoted in the abstract; printed next to
// measured values so every run shows paper-vs-reproduction at a glance.
inline constexpr double kPaperDhfr512UsPerDay = 85.0;
inline constexpr double kPaperAnton2OverAnton1 = 10.0;  // "up to ten times"
inline constexpr double kPaperCommoditySpeedup = 180.0;

}  // namespace anton::bench
