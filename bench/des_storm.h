// The mixed unicast/multicast event storm shared by the DES benches.
//
// F8 uses it to compare the pooled inline-callable queue against the
// pre-rewrite std::function / std::priority_queue kernel; F10 replays the
// same storm on the sharded parallel engine.  Keeping the baseline and the
// workload in one header keeps every comparison honest: identical jitter,
// identical payload shapes, identical FIFO tie-breaks on any host.
//
// The baseline (namespace `legacy`) is compiled in: the old event queue
// stored each event as a std::function<void()> inside a binary
// priority_queue, copying the top element out on every step.  The torus
// scheduled deliveries as lambdas capturing a user std::function — larger
// than libstdc++'s 16-byte SSO buffer, so every send allocated and every
// dispatch allocated again for the copy.  The storm gives both queues that
// exact payload shape: a per-event delivery callable nested inside the
// scheduled closure.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "bench_util.h"
#include "sim/event_queue.h"

namespace anton::bench {
namespace legacy {

// ---- Pre-rewrite event queue: type-erased heap-allocating callbacks and a
// copy-out-on-pop binary heap.
class EventQueue {
 public:
  void schedule_at(sim::SimTime t, std::function<void()> fn) {
    ANTON_CHECK_MSG(t >= now_ - 1e-9, "event scheduled in the past: t="
                                          << t << " now=" << now_);
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  void schedule_after(sim::SimTime delay, std::function<void()> fn) {
    ANTON_CHECK(delay >= 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  sim::SimTime now() const { return now_; }

  sim::SimTime run() {
    while (!heap_.empty()) step();
    return now_;
  }

  void step() {
    ANTON_CHECK(!heap_.empty());
    // Top must be copied out before pop so the callback may schedule more.
    Event ev = heap_.top();
    heap_.pop();
    now_ = std::max(now_, ev.time);
    ++executed_;
    ev.fn();
  }

 private:
  struct Event {
    sim::SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  sim::SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace legacy

// Deterministic per-event jitter so chains interleave and the heap is
// genuinely exercised (uniform delays would degenerate into FIFO order).
// The minimum over all (chain, d) is exactly 1.0 — the lookahead the
// sharded replay uses.
inline double hop_delay(uint32_t chain, int d) {
  const uint32_t salt = chain * 2654435761u + static_cast<uint32_t>(d);
  return 1.0 + 0.25 * static_cast<double>(salt % 7);
}
inline constexpr double kStormLookaheadNs = 1.0;

// The delivery payload the storms carry: a counter plus the (task, sender)
// ids the executor's release callbacks capture.  At 24 bytes it exceeds
// libstdc++'s 16-byte std::function SSO buffer — exactly like the old
// taskgraph's [this, dst_task, id] and multicast-map captures did — so the
// legacy queue allocates when the callable is type-erased and again when
// step() copies the top event out of the heap.
struct Deliver {
  uint64_t* counter;
  uint64_t task_id;
  uint64_t sender_id;
  void operator()() const { ++*counter; }
};

// Every third hop is multicast-shaped: in a step graph the position-import
// multicasts and the force-return unicasts are comparable in delivery
// count, so a 2:1 unicast:multicast event mix is a conservative stand-in.
// kFanOut = 4 is F8's deliberately conservative default; the real 512-node
// step graph's position multicasts reach up to 13 import-region
// destinations (avg 10.3), which F10 charges via set_fan_out().
inline constexpr int kMcastEvery = 3;
inline constexpr int kFanOut = 4;

// ---- Legacy storm: the delivery callable is type-erased into a
// std::function nested inside the scheduled closure, the shape the old
// torus/taskgraph put on the queue for every packet.
struct LegacyStorm {
  legacy::EventQueue q;
  uint64_t delivered = 0;
  int depth = 0;
  int fan_out = kFanOut;

  void set_fan_out(int f) { fan_out = f; }

  void hop(uint32_t chain, int d) {
    if (d % kMcastEvery == kMcastEvery - 1) {
      mcast_hop(chain, d);
      return;
    }
    std::function<void()> deliver =
        Deliver{&delivered, chain, static_cast<uint64_t>(d)};
    q.schedule_after(hop_delay(chain, d),
                     [this, chain, d, fn = std::move(deliver)] {
                       fn();
                       if (d + 1 < depth) hop(chain, d + 1);
                     });
  }

  // The old executor built a node->task map per multicast and captured it
  // by value in the delivery std::function; the old torus then copied that
  // callable into each destination's scheduled closure, and step() deep-
  // copied map and all on every pop.  We charge a single destination's
  // worth of that traffic per multicast hop — an undercount of what the
  // old code paid per fan-out.
  void mcast_hop(uint32_t chain, int d) {
    std::map<int, int> node_to_task;
    for (int k = 0; k < fan_out; ++k) {
      node_to_task.emplace(static_cast<int>(chain) * fan_out + k, d + k);
    }
    std::function<void(int)> deliver =
        [this, m = std::move(node_to_task)](int node) {
          delivered += static_cast<uint64_t>(m.count(node));
        };
    q.schedule_after(hop_delay(chain, d),
                     [this, chain, d, fn = std::move(deliver)] {
                       fn(static_cast<int>(chain) * fan_out);
                       if (d + 1 < depth) hop(chain, d + 1);
                     });
  }
};

// ---- Pooled storm: identical event mix, but the delivery callable stays a
// plain struct captured inline, and the multicast callback resolves its
// dependent through a persistent array by index (the new executor's shape)
// — no type-erased allocation, no per-call containers.
struct PooledStorm {
  sim::EventQueue q;
  uint64_t delivered = 0;
  int depth = 0;
  int fan_out = kFanOut;
  std::vector<int> mcast_deps = std::vector<int>(kFanOut, 1);

  void set_fan_out(int f) {
    fan_out = f;
    mcast_deps.assign(static_cast<size_t>(f), 1);
  }

  void hop(uint32_t chain, int d) {
    if (d % kMcastEvery == kMcastEvery - 1) {
      mcast_hop(chain, d);
      return;
    }
    const Deliver deliver{&delivered, chain, static_cast<uint64_t>(d)};
    q.schedule_after(hop_delay(chain, d), [this, chain, d, deliver] {
      deliver();
      if (d + 1 < depth) hop(chain, d + 1);
    });
  }

  void mcast_hop(uint32_t chain, int d) {
    q.schedule_after(
        hop_delay(chain, d), [this, deps = &mcast_deps, chain, d] {
          delivered += static_cast<uint64_t>(
              (*deps)[static_cast<size_t>(
                  (chain + static_cast<uint32_t>(d)) %
                  static_cast<uint32_t>(deps->size()))]);
          if (d + 1 < depth) hop(chain, d + 1);
        });
  }
};

struct StormResult {
  double ms = 0;        // per full storm (schedule + drain)
  double final_t = 0;   // queue clock after the drain, for cross-checking
  uint64_t events = 0;
};

template <class Storm>
StormResult run_storm(int reps, int chains, int depth,
                      int fan_out = kFanOut) {
  StormResult r;
  r.events = static_cast<uint64_t>(chains) * static_cast<uint64_t>(depth);
  // Shared min-of-reps statistic (bench_util.h).  Each timed call builds a
  // fresh storm — construction is identical for the legacy and new variants,
  // so the gated ratio is unaffected — then schedules and drains it.
  r.ms = time_min_ms(reps, 1, [&] {
    Storm storm;
    storm.depth = depth;
    storm.set_fan_out(fan_out);
    for (int c = 0; c < chains; ++c) {
      storm.hop(static_cast<uint32_t>(c), 0);
    }
    r.final_t = storm.q.run();
    ANTON_CHECK(storm.delivered == r.events);
  });
  return r;
}

}  // namespace anton::bench
