// F1 — Strong scaling on the standard 23,558-atom benchmark (DHFR class):
// μs/day vs node count for Anton 2 and Anton 1.  The abstract's anchors:
// 85 μs/day on 512 Anton 2 nodes; up to 10× Anton 1 at equal node count.
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("F1",
               "Strong scaling, 23,558-atom system: us/day vs node count");
  const System& sys = dhfr_system();

  BenchReport report("f1");
  TextTable t({"nodes", "anton2 us/day", "anton1 us/day", "anton2/anton1",
               "anton2 step (ns)", "anton2 compute frac"});
  const std::vector<int> node_counts{8, 16, 32, 64, 128, 256, 512};
  std::vector<core::EstimatePoint> pts;
  for (int nodes : node_counts) {
    pts.push_back({machine_preset("anton2", nodes), 2.5, 2});
    pts.push_back({machine_preset("anton1", nodes), 2.5, 2});
  }
  const auto results = sweep_estimates(sys, pts);
  double last_a2 = 0;
  for (size_t i = 0; i < node_counts.size(); ++i) {
    const int nodes = node_counts[i];
    const auto& r2 = results[2 * i];
    const auto& r1 = results[2 * i + 1];
    last_a2 = r2.us_per_day();
    const std::string n = std::to_string(nodes);
    report.record("anton2.us_per_day.n" + n, r2.us_per_day());
    report.record("anton1.us_per_day.n" + n, r1.us_per_day());
    t.add_row({TextTable::fmt_int(nodes), TextTable::fmt(r2.us_per_day()),
               TextTable::fmt(r1.us_per_day()),
               TextTable::fmt(r2.us_per_day() / r1.us_per_day(), 1),
               TextTable::fmt(r2.avg_step_ns(), 0),
               TextTable::fmt(r2.full_step.exec.compute_fraction(), 3)});
  }
  t.print(std::cout);
  std::cout << "\npaper anchor: " << kPaperDhfr512UsPerDay
            << " us/day at 512 nodes (measured: " << TextTable::fmt(last_a2)
            << "); speedup vs Anton 1 'up to " << kPaperAnton2OverAnton1
            << "x'.\n";
  return 0;
}
