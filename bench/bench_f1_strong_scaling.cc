// F1 — Strong scaling on the standard 23,558-atom benchmark (DHFR class):
// μs/day vs node count for Anton 2 and Anton 1.  The abstract's anchors:
// 85 μs/day on 512 Anton 2 nodes; up to 10× Anton 1 at equal node count.
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("F1",
               "Strong scaling, 23,558-atom system: us/day vs node count");
  const System& sys = dhfr_system();

  BenchReport report("f1");
  TextTable t({"nodes", "anton2 us/day", "anton1 us/day", "anton2/anton1",
               "anton2 step (ns)", "anton2 compute frac"});
  double last_a2 = 0;
  for (int nodes : {8, 16, 32, 64, 128, 256, 512}) {
    const core::AntonMachine m2(machine_preset("anton2", nodes));
    const core::AntonMachine m1(machine_preset("anton1", nodes));
    const auto r2 = m2.estimate(sys, 2.5, 2);
    const auto r1 = m1.estimate(sys, 2.5, 2);
    last_a2 = r2.us_per_day();
    const std::string n = std::to_string(nodes);
    report.record("anton2.us_per_day.n" + n, r2.us_per_day());
    report.record("anton1.us_per_day.n" + n, r1.us_per_day());
    t.add_row({TextTable::fmt_int(nodes), TextTable::fmt(r2.us_per_day()),
               TextTable::fmt(r1.us_per_day()),
               TextTable::fmt(r2.us_per_day() / r1.us_per_day(), 1),
               TextTable::fmt(r2.avg_step_ns(), 0),
               TextTable::fmt(r2.full_step.exec.compute_fraction(), 3)});
  }
  t.print(std::cout);
  std::cout << "\npaper anchor: " << kPaperDhfr512UsPerDay
            << " us/day at 512 nodes (measured: " << TextTable::fmt(last_a2)
            << "); speedup vs Anton 1 'up to " << kPaperAnton2OverAnton1
            << "x'.\n";
  return 0;
}
