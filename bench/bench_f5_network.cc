// F5 — Network-sensitivity study: how much fine-grained event-driven
// operation hides the interconnect.  Sweeps router hop latency and link
// bandwidth on the 512-node machine; event-driven vs bulk-synchronous.
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("F5",
               "Network sensitivity at 512 nodes (23,558-atom system)");
  const System& sys = dhfr_system();
  BenchReport report("f5");

  {
    std::cout << "\n-- hop-latency sweep (link bandwidth fixed) --\n";
    TextTable t({"hop latency (ns)", "event us/day", "bsp us/day",
                 "event/bsp"});
    const std::vector<double> hops{5.0, 10.0, 20.0, 40.0, 80.0, 160.0};
    std::vector<core::EstimatePoint> pts;
    for (double hop : hops) {
      auto ce = machine_preset("anton2", 512);
      auto cb = machine_preset("anton2-bsp", 512);
      ce.noc.hop_latency_ns = hop;
      cb.noc.hop_latency_ns = hop;
      pts.push_back({ce, 2.5, 2});
      pts.push_back({cb, 2.5, 2});
    }
    const auto results = sweep_estimates(sys, pts);
    for (size_t i = 0; i < hops.size(); ++i) {
      const double hop = hops[i];
      const auto& re = results[2 * i];
      const auto& rb = results[2 * i + 1];
      report.record("event_over_bsp.hop_ns" + TextTable::fmt(hop, 0),
                    re.us_per_day() / rb.us_per_day());
      t.add_row({TextTable::fmt(hop, 0), TextTable::fmt(re.us_per_day()),
                 TextTable::fmt(rb.us_per_day()),
                 TextTable::fmt(re.us_per_day() / rb.us_per_day(), 2)});
    }
    t.print(std::cout);
  }

  {
    std::cout << "\n-- link-bandwidth sweep (hop latency fixed) --\n";
    TextTable t({"link BW (GB/s)", "event us/day", "bsp us/day",
                 "event/bsp"});
    const std::vector<double> bws{4.0, 8.0, 16.0, 24.0, 48.0, 96.0};
    std::vector<core::EstimatePoint> pts;
    for (double bw : bws) {
      auto ce = machine_preset("anton2", 512);
      auto cb = machine_preset("anton2-bsp", 512);
      ce.noc.link_bandwidth_gbs = bw;
      cb.noc.link_bandwidth_gbs = bw;
      pts.push_back({ce, 2.5, 2});
      pts.push_back({cb, 2.5, 2});
    }
    const auto results = sweep_estimates(sys, pts);
    for (size_t i = 0; i < bws.size(); ++i) {
      const double bw = bws[i];
      const auto& re = results[2 * i];
      const auto& rb = results[2 * i + 1];
      report.record("event_over_bsp.bw_gbs" + TextTable::fmt(bw, 0),
                    re.us_per_day() / rb.us_per_day());
      t.add_row({TextTable::fmt(bw, 0), TextTable::fmt(re.us_per_day()),
                 TextTable::fmt(rb.us_per_day()),
                 TextTable::fmt(re.us_per_day() / rb.us_per_day(), 2)});
    }
    t.print(std::cout);
  }

  std::cout << "\nEvent-driven scheduling is consistently less sensitive to "
               "the network: overlap hides\nlatency that a barrier schedule "
               "must expose on every phase boundary.\n";
  return 0;
}
