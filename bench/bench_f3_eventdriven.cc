// F3 — Event-driven ablation: identical Anton 2 hardware under fine-grained
// event-driven scheduling vs bulk-synchronous phase barriers.  This isolates
// the paper's central architectural claim: event-driven operation "improves
// performance by increasing the overlap of computation with communication".
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("F3",
               "Event-driven vs bulk-synchronous on Anton 2 hardware "
               "(23,558-atom system)");
  const System& sys = dhfr_system();

  TextTable t({"nodes", "event us/day", "bsp us/day", "speedup",
               "event step (ns)", "bsp step (ns)", "event compute frac",
               "bsp compute frac"});
  BenchReport report("f3");
  const std::vector<int> node_counts{8, 32, 64, 128, 256, 512};
  std::vector<core::EstimatePoint> pts;
  for (int nodes : node_counts) {
    pts.push_back({machine_preset("anton2", nodes), 2.5, 2});
    pts.push_back({machine_preset("anton2-bsp", nodes), 2.5, 2});
  }
  const auto results = sweep_estimates(sys, pts);
  for (size_t i = 0; i < node_counts.size(); ++i) {
    const int nodes = node_counts[i];
    const auto& re = results[2 * i];
    const auto& rb = results[2 * i + 1];
    report.record("event_driven_speedup.n" + std::to_string(nodes),
                  re.us_per_day() / rb.us_per_day());
    t.add_row({TextTable::fmt_int(nodes), TextTable::fmt(re.us_per_day()),
               TextTable::fmt(rb.us_per_day()),
               TextTable::fmt(re.us_per_day() / rb.us_per_day(), 2),
               TextTable::fmt(re.avg_step_ns(), 0),
               TextTable::fmt(rb.avg_step_ns(), 0),
               TextTable::fmt(re.full_step.exec.compute_fraction(), 3),
               TextTable::fmt(rb.full_step.exec.compute_fraction(), 3)});
  }
  t.print(std::cout);
  std::cout << "\nThe event-driven advantage grows with node count: per-node "
               "work shrinks while the\nbarrier + exposed-communication cost "
               "of the BSP schedule does not.\n";
  return 0;
}
