// F4 — Commodity comparison: the abstract's "85 μs/day — 180 times faster
// than any commodity hardware platform or general-purpose supercomputer."
//
// Three measurements:
//   1. Our from-scratch parallel MD engine, timed on this host (real wall
//      clock) — the single-node commodity data point.
//   2. A strong-scaling extrapolation of that engine to a commodity cluster:
//      T(P) = max(T1/P, T_floor).  The floor models the per-step latency
//      wall of MPI-class machines on a 23.5k-atom system (hundreds of μs per
//      step regardless of node count; documented in EXPERIMENTS.md).  The
//      floor constant (430 μs) is calibrated to the best 2014-era commodity
//      DHFR rates (~0.5 μs/day).
//   3. The Anton 2 machine model at 512 nodes.
#include "bench_util.h"
#include "common/threadpool.h"
#include "md/engine.h"
#include "md/minimize.h"
#include "obs/profiler.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("F4", "Anton 2 vs commodity platforms (23,558-atom system)");

  // --- 1. host measurement -------------------------------------------------
  MdParams p;
  p.cutoff = 9.0;
  p.skin = 1.0;
  p.dt_fs = 2.5;
  p.respa_k = 2;
  p.long_range = LongRangeMethod::kMesh;
  p.mesh_spacing = 1.1;

  System sys = dhfr_system();
  ThreadPool pool;
  // The synthetic builder leaves steric clashes; relax them before timing
  // dynamics (a preparation step every MD campaign runs anyway).
  md::minimize_energy(sys, p, 200, 0.1, 10.0, &pool);
  sys.assign_velocities(300.0, 1);
  md::Simulation sim(std::move(sys), p, &pool);
  sim.step(4);  // warm the neighbour list and caches
  const int measured_steps = 20;
  const double t0 = obs::wall_seconds();
  sim.step(measured_steps);
  const double host_step_s = (obs::wall_seconds() - t0) / measured_steps;
  const double host_us_day = units::us_per_day(p.dt_fs, host_step_s);

  // --- 2. commodity-cluster extrapolation ----------------------------------
  const double floor_step_s = 430e-6;  // calibrated latency wall, see header
  TextTable t({"platform", "step time", "us/day", "anton2 advantage"});
  // One machine point, but still routed through the sweep harness so every
  // estimate in the bench suite shares one code path.
  const core::EstimatePoint pt{machine_preset("anton2", 512), p.dt_fs,
                               p.respa_k};
  const auto anton2 =
      sweep_estimates(dhfr_system(), std::span(&pt, 1)).front();
  const double a2 = anton2.us_per_day();

  BenchReport report("f4");
  report.record("host.us_per_day", host_us_day);
  report.record("anton2.us_per_day", a2);

  auto add = [&](const std::string& name, double step_s) {
    const double usd = units::us_per_day(p.dt_fs, step_s);
    t.add_row({name, TextTable::fmt(step_s * 1e6, 1) + " us",
               TextTable::fmt(usd, 3), TextTable::fmt(a2 / usd, 0) + "x"});
  };
  add("this host (" + std::to_string(pool.size()) + " threads, our engine)",
      host_step_s);
  for (int nodes : {16, 64, 256, 1024}) {
    add("commodity cluster, " + std::to_string(nodes) + " nodes (model)",
        std::max(host_step_s * pool.size() / (nodes * 16.0), floor_step_s));
  }
  add("commodity latency wall (best case, model)", floor_step_s);
  t.add_row({"Anton 2, 512 nodes (machine model)",
             TextTable::fmt(anton2.avg_step_ns() / 1e3, 2) + " us",
             TextTable::fmt(a2, 2), "1x"});
  t.print(std::cout);

  const double best_commodity = units::us_per_day(p.dt_fs, floor_step_s);
  report.record("speedup_vs_latency_wall", a2 / best_commodity);
  std::cout << "\npaper anchor: " << kPaperCommoditySpeedup
            << "x over the best commodity platform (measured: "
            << TextTable::fmt(a2 / best_commodity, 0) << "x vs the modelled "
            << "latency wall).\nHost engine measured at "
            << TextTable::fmt(host_us_day, 3)
            << " us/day — absolute host numbers are not comparable to 2014 "
               "hardware;\nthe claim under test is the *ratio* against the "
               "commodity latency wall.\n";
  return 0;
}
