// F9 — Estimator service under load: the concurrent daemon (content-
// addressed cache + request coalescing + admission control, src/svc/)
// against the uncached-serial baseline it replaces.
//
// The baseline is compiled into this binary: the pre-service way to answer
// an estimator query stream was a loop calling AntonMachine::estimate()
// per request, no cache, no concurrency — exactly what examples and sweep
// frontends did before src/svc/ existed.  Both sides replay the same mixed
// trace: a small grid of distinct machine points queried over and over in
// bursts, the shape a sweep frontend or an interactive what-if session
// produces.  The trace mixes the three request classes the service
// distinguishes — first-touch misses (must evaluate), duplicate in-flight
// bursts (must coalesce), and repeats of settled points (must hit) — and
// thousands of them run concurrently from many client threads.
//
// After the timed run, every distinct point's cached answer is checked
// bitwise against a fresh single-threaded estimate (us/day, step times and
// the per-phase maps) — the cache must never trade correctness for speed.
//
// Set ANTON_BENCH_SMOKE=1 to shrink the trace for CI.
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "svc/service.h"

namespace anton::bench {
namespace {

struct TracePoint {
  std::shared_ptr<const arch::MachineConfig> config;
  double dt_fs;
};

// The distinct sweep points: {event-driven, BSP} x node counts x dt.
std::vector<TracePoint> build_grid(bool smoke) {
  std::vector<TracePoint> grid;
  const std::vector<int> node_counts =
      smoke ? std::vector<int>{8, 16} : std::vector<int>{8, 16, 32};
  for (const char* preset : {"anton2", "anton2-bsp"}) {
    for (const int nodes : node_counts) {
      for (const double dt : {2.0, 2.5}) {
        grid.push_back({std::make_shared<const arch::MachineConfig>(
                            machine_preset(preset, nodes)),
                        dt});
      }
    }
  }
  return grid;
}

// trace[q] -> grid index.  Blocks of consecutive queries share a point so
// concurrent clients pile onto the same key while it is still in flight
// (coalescing), then keep re-asking it once settled (hits); walking the
// blocks round-robin interleaves cold first-touches throughout the run.
size_t trace_point(size_t q, size_t grid_size) {
  constexpr size_t kBurst = 16;
  return (q / kBurst) % grid_size;
}

// Compare every double the report carries, including the phase maps.
bool bitwise_equal(const core::PerfReport& a, const core::PerfReport& b) {
  bool ok = a.machine == b.machine && a.nodes == b.nodes &&
            a.atoms == b.atoms && a.avg_step_ns() == b.avg_step_ns() &&
            a.us_per_day() == b.us_per_day();
  for (const core::StepTiming* s : {&a.full_step, &a.short_step}) {
    const core::StepTiming* t =
        s == &a.full_step ? &b.full_step : &b.short_step;
    ok = ok && s->step_ns == t->step_ns &&
         s->exec.makespan_ns == t->exec.makespan_ns &&
         s->exec.phase_busy_ns == t->exec.phase_busy_ns &&
         s->exec.phase_end_ns == t->exec.phase_end_ns &&
         s->exec.critical_path_ns == t->exec.critical_path_ns;
  }
  return ok;
}

}  // namespace
}  // namespace anton::bench

int main() {
  using namespace anton;
  using namespace anton::bench;

  const bool smoke = std::getenv("ANTON_BENCH_SMOKE") != nullptr;
  const size_t queries = smoke ? 384 : 4096;
  const int clients = smoke ? 8 : 16;

  print_header("F9", "Estimator service vs uncached-serial queries");
  BenchReport report("f9");

  BuilderOptions opt;
  opt.total_atoms = 2048;
  opt.temperature_k = -1;
  const System sys = build_solvated_system(opt);
  const auto grid = build_grid(smoke);
  std::cout << "\ntrace: " << queries << " queries over " << grid.size()
            << " distinct points, " << clients << " concurrent clients, "
            << opt.total_atoms << "-atom system\n";

  // ---- Baseline: the same trace answered the pre-service way — one
  // uncached estimate() per query, serially on one thread.
  double serial_ms = 0;
  {
    std::cout << "\n-- uncached-serial baseline --\n";
    const double t0 = obs::wall_seconds();
    double checksum = 0;
    for (size_t q = 0; q < queries; ++q) {
      const TracePoint& p = grid[trace_point(q, grid.size())];
      const core::AntonMachine machine(p.config);
      checksum += machine.estimate(sys, p.dt_fs).us_per_day();
    }
    serial_ms = (obs::wall_seconds() - t0) * 1e3;
    std::cout << "serial: " << TextTable::fmt(serial_ms, 0) << " ms ("
              << TextTable::fmt(queries / (serial_ms * 1e-3), 0)
              << " q/s), checksum " << TextTable::fmt(checksum, 1) << "\n";
  }

  // ---- Service: same trace, replayed concurrently by `clients` threads.
  double service_ms = 0;
  obs::MetricsRegistry metrics;
  svc::EstimatorService::Stats st;
  {
    ThreadPool pool;
    svc::EstimatorService::Options sopt;
    sopt.pool = &pool;
    sopt.cache_bytes = 64 << 20;
    sopt.queue_depth = 1024;  // never shed: throughput, not overload, here
    sopt.metrics = &metrics;
    svc::EstimatorService service(sopt);
    const int sys_id = service.register_system(sys);
    service.start();

    const double t0 = obs::wall_seconds();
    std::vector<std::thread> threads;
    std::atomic<uint64_t> rejected{0};
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t q = static_cast<size_t>(c); q < queries;
             q += static_cast<size_t>(clients)) {
          const TracePoint& p = grid[trace_point(q, grid.size())];
          const svc::QueryResult r = service.query(p.config, sys_id, p.dt_fs);
          if (r.status == svc::Status::kShed ||
              r.status == svc::Status::kShutdown) {
            rejected.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    service_ms = (obs::wall_seconds() - t0) * 1e3;
    ANTON_CHECK_MSG(rejected.load() == 0, "service rejected "
                                              << rejected.load()
                                              << " queries mid-benchmark");

    // Verification: every distinct point's cached answer must be bitwise
    // identical to a fresh single-threaded recompute.
    bool match = true;
    for (const TracePoint& p : grid) {
      const svc::QueryResult cached = service.query(p.config, sys_id, p.dt_fs);
      match = match && cached.status == svc::Status::kHit;
      const core::AntonMachine machine(p.config);
      match = match && bitwise_equal(cached.report,
                                     machine.estimate(sys, p.dt_fs));
    }
    report.record("verify.match", match ? 1.0 : 0.0);
    st = service.stats();
    service.shutdown();
    if (!match) {
      std::cout << "\nERROR: cached result diverged from fresh recompute\n";
      return 1;
    }
  }

  const double speedup = serial_ms / service_ms;
  const double qps = queries / (service_ms * 1e-3);
  const Histogram lat =
      metrics.histogram("svc.latency_ms", 0, 256, 1024)->snapshot();
  const double hit_rate =
      static_cast<double>(st.hits) / static_cast<double>(st.queries);

  report.record("queries", static_cast<double>(queries));
  report.record("distinct", static_cast<double>(grid.size()));
  report.record("serial_ms", serial_ms);
  report.record("service_ms", service_ms);
  report.record("speedup", speedup);
  report.record("qps", qps);
  report.record("hit_rate", hit_rate);
  report.record("coalesced", static_cast<double>(st.coalesced));
  report.record("shed", static_cast<double>(st.shed));
  report.record("evaluated", static_cast<double>(st.evaluated));
  report.record("p50_ms", lat.quantile(0.5));
  report.record("p95_ms", lat.quantile(0.95));
  report.record("p99_ms", lat.quantile(0.99));

  TextTable t({"variant", "ms/trace", "q/s", "speedup"});
  t.add_row({"uncached serial loop", TextTable::fmt(serial_ms, 0),
             TextTable::fmt(queries / (serial_ms * 1e-3), 0), "1.00"});
  t.add_row({"estimator service", TextTable::fmt(service_ms, 0),
             TextTable::fmt(qps, 0), TextTable::fmt(speedup, 2)});
  t.print(std::cout);

  std::cout << "\ntraffic: " << st.hits << " hits, " << st.misses
            << " misses, " << st.coalesced << " coalesced, " << st.shed
            << " shed; " << st.evaluated << " evaluations for "
            << grid.size() << " distinct points\n";
  std::cout << "latency: p50 " << TextTable::fmt(lat.quantile(0.5), 3)
            << " ms, p95 " << TextTable::fmt(lat.quantile(0.95), 3)
            << " ms, p99 " << TextTable::fmt(lat.quantile(0.99), 3)
            << " ms\n";
  std::cout << "cached answers verified bitwise against fresh recompute\n";
  return 0;
}
