// T2 — Simulation-rate table for the standard benchmark suite at 512 nodes:
// DHFR-, ApoA1-, STMV- and ribosome-class systems on Anton 2 and Anton 1.
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  print_header("T2", "Benchmark-suite simulation rates at 512 nodes");

  const auto c2 = machine_preset("anton2", 512);
  const auto c1 = machine_preset("anton1", 512);

  TextTable t({"system", "atoms", "anton2 us/day", "anton1 us/day", "ratio",
               "ns/day (anton2)"});
  BenchReport report("t2");
  // One sweep point per suite system; each builds its own System (the
  // ribosome-class build is the expensive part) then runs both machines.
  const auto suite = benchmark_suite();
  struct Row {
    core::PerfReport r2, r1;
  };
  std::vector<Row> results;
  core::SweepRunner(sweep_pool()).map(suite.size(), results, [&](size_t i) {
    BuilderOptions o;
    o.total_atoms = suite[i].total_atoms;
    o.solute_fraction = suite[i].solute_fraction;
    o.temperature_k = -1;
    o.seed = 2014;
    const System sys = build_solvated_system(o);
    Row row;
    row.r2 = core::AntonMachine(c2).estimate(sys, 2.5, 2);
    row.r1 = core::AntonMachine(c1).estimate(sys, 2.5, 2);
    return row;
  });
  for (size_t i = 0; i < suite.size(); ++i) {
    const auto& spec = suite[i];
    const auto& r2 = results[i].r2;
    const auto& r1 = results[i].r1;
    report.record("anton2.us_per_day." + spec.name, r2.us_per_day());
    report.record("anton1.us_per_day." + spec.name, r1.us_per_day());
    t.add_row({spec.name, TextTable::fmt_int(spec.total_atoms),
               TextTable::fmt(r2.us_per_day()),
               TextTable::fmt(r1.us_per_day()),
               TextTable::fmt(r2.us_per_day() / r1.us_per_day(), 1),
               TextTable::fmt(r2.ns_per_day(), 0)});
  }
  t.print(std::cout);
  std::cout << "\npaper anchors: 85 us/day for the 23,558-atom system; "
               "multi-us/day at 1M+ atoms;\nAnton 2 up to 10x Anton 1 at "
               "equal node count.\n";
  return 0;
}
