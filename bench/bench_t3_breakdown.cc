// T3 — Per-phase breakdown of a full timestep: where the cycles go on each
// machine, for the 23,558-atom and the ~1M-atom systems.
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

namespace {

void breakdown(const System& sys, const std::string& label,
               BenchReport& report) {
  std::cout << "\n-- " << label << " (" << sys.num_atoms()
            << " atoms, 512 nodes, full step) --\n";
  TextTable t({"phase", "anton2 busy/node (ns)", "anton2 phase end (ns)",
               "anton1 busy/node (ns)", "anton1 phase end (ns)"});
  // Both machines' steps go through the sweep harness: each point builds
  // its workload and simulates one full step, independently of the other.
  const std::vector<arch::MachineConfig> cfgs{machine_preset("anton2", 512),
                                              machine_preset("anton1", 512)};
  std::vector<core::StepTiming> steps;
  core::SweepRunner(sweep_pool()).map(cfgs.size(), steps, [&](size_t i) {
    const core::Workload w = core::Workload::build(sys, cfgs[i]);
    return core::simulate_step(w, cfgs[i], {.include_long_range = true});
  });
  const core::StepTiming& t2 = steps[0];
  const core::StepTiming& t1 = steps[1];
  const double n = 512.0;
  for (const char* phase :
       {"pos_export", "pair_local", "pair_tile", "bonded", "spread", "fft",
        "interp", "integrate", "constrain", "migrate", "barrier"}) {
    const auto get = [&](const core::StepTiming& st, bool end) {
      const auto& m = end ? st.exec.phase_end_ns : st.exec.phase_busy_ns;
      const auto it = m.find(phase);
      return it == m.end() ? 0.0 : (end ? it->second : it->second / n);
    };
    report.record(label + ".anton2.busy_per_node_ns." + phase,
                  get(t2, false));
    t.add_row({phase, TextTable::fmt(get(t2, false), 1),
               TextTable::fmt(get(t2, true), 0),
               TextTable::fmt(get(t1, false), 1),
               TextTable::fmt(get(t1, true), 0)});
  }
  report.record(label + ".anton2.makespan_ns", t2.step_ns);
  report.record(label + ".anton1.makespan_ns", t1.step_ns);
  t.add_row({"TOTAL (makespan)", "-", TextTable::fmt(t2.step_ns, 0), "-",
             TextTable::fmt(t1.step_ns, 0)});
  t.print(std::cout);
}

}  // namespace

int main() {
  print_header("T3", "Per-phase timestep breakdown");
  BenchReport report("t3");
  breakdown(dhfr_system(), "dhfr_23k", report);

  BuilderOptions o;
  o.total_atoms = 1066628;
  o.solute_fraction = 0.12;
  o.temperature_k = -1;
  o.seed = 2014;
  breakdown(build_solvated_system(o), "stmv_1m", report);
  return 0;
}
