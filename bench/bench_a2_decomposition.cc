// A2 — Decomposition-scheme study: half-shell vs neutral-territory import
// volume on the 23,558-atom system across machine sizes.  The NT method is
// the Anton line's signature communication optimisation; its advantage
// appears exactly where the paper operates — home boxes smaller than the
// cutoff.
#include "bench_util.h"
#include "core/decomposition_study.h"

using namespace anton;
using namespace anton::bench;
using core::DecompositionScheme;

int main() {
  print_header("A2",
               "Import volume: half-shell vs neutral territory "
               "(23,558-atom system)");
  const System& sys = dhfr_system();

  TextTable t({"nodes", "atoms/node", "half-shell imports/node",
               "NT imports/node", "NT saving", "import KB/node (HS)"});
  BenchReport report("a2");
  const std::vector<int> node_counts{8, 64, 216, 512};
  struct Pair {
    core::ImportStats hs, nt;
  };
  std::vector<Pair> results;
  core::SweepRunner(sweep_pool())
      .map(node_counts.size(), results, [&](size_t i) {
        const auto cfg = machine_preset("anton2", node_counts[i]);
        Pair p;
        p.hs = core::analyze_decomposition(sys, cfg,
                                           DecompositionScheme::kHalfShell);
        p.nt = core::analyze_decomposition(
            sys, cfg, DecompositionScheme::kNeutralTerritory);
        return p;
      });
  for (size_t i = 0; i < node_counts.size(); ++i) {
    const int nodes = node_counts[i];
    const auto& hs = results[i].hs;
    const auto& nt = results[i].nt;
    // Identical pair totals: both schemes cover every interaction.
    if (hs.total_pairs != nt.total_pairs) return 1;
    report.record("nt_import_saving.n" + std::to_string(nodes),
                  hs.mean_import_per_node() /
                      std::max(1.0, nt.mean_import_per_node()));
    t.add_row({TextTable::fmt_int(nodes),
               TextTable::fmt(23558.0 / nodes, 0),
               TextTable::fmt(hs.mean_import_per_node(), 0),
               TextTable::fmt(nt.mean_import_per_node(), 0),
               TextTable::fmt(hs.mean_import_per_node() /
                                  std::max(1.0, nt.mean_import_per_node()),
                              2) + "x",
               TextTable::fmt(hs.total_import_bytes / nodes / 1e3, 1)});
  }
  t.print(std::cout);
  std::cout << "\nAt 512 nodes the home box (7.7 A) is smaller than the "
               "cutoff (9 A): the half-shell\nimport region covers dozens "
               "of neighbour boxes, while NT's tower+plate grows only\n"
               "as the cutoff's cross-section — the geometry behind the "
               "Anton papers' import math.\n";
  return 0;
}
