// F8 — Discrete-event core: pooled inline-callable queue + 4-ary heap vs
// the pre-rewrite std::function / std::priority_queue kernel, and the
// parallel sweep harness vs a serial estimate loop.
//
// The storm workload and the compiled-in legacy baseline live in
// des_storm.h (shared with F10's sharded-engine replay); pinning the
// baseline in code keeps the comparison honest on any host.
//
// The sweep section replays the F3 study (event-driven vs BSP across node
// counts) serially and on a 4-thread SweepRunner and checks the merged
// results are bitwise identical — the harness buys wall time, never drift.
//
// Set ANTON_BENCH_SMOKE=1 to shrink repetitions for CI.
#include <vector>

#include "bench_util.h"
#include "des_storm.h"
#include "obs/profiler.h"

int main() {
  using namespace anton;
  using namespace anton::bench;

  const bool smoke = std::getenv("ANTON_BENCH_SMOKE") != nullptr;
  const int reps = smoke ? 3 : 7;
  const int chains = smoke ? 64 : 512;
  const int depth = smoke ? 250 : 2500;

  print_header("F8", "Discrete-event core and sweep harness");
  BenchReport report("f8");

  {
    std::cout << "\n-- single-queue event storm (" << chains << " chains x "
              << depth << " hops, nested delivery payload) --\n";
    const auto old_r = run_storm<LegacyStorm>(reps, chains, depth);
    const auto new_r = run_storm<PooledStorm>(reps, chains, depth);
    // Identical jitter, identical FIFO tie-breaks: the two kernels must
    // agree on the simulated clock to the last bit.
    ANTON_CHECK(old_r.final_t == new_r.final_t);
    const double old_meps =
        static_cast<double>(old_r.events) / (old_r.ms * 1e3);
    const double new_meps =
        static_cast<double>(new_r.events) / (new_r.ms * 1e3);
    report.record("queue.legacy_meps", old_meps);
    report.record("queue.new_meps", new_meps);
    report.record("queue.speedup", new_meps / old_meps);
    TextTable t({"variant", "ms/storm", "events/us", "speedup"});
    t.add_row({"legacy std::function + binary heap",
               TextTable::fmt(old_r.ms, 2), TextTable::fmt(old_meps, 2),
               "1.00"});
    t.add_row({"pooled inline callables + 4-ary heap",
               TextTable::fmt(new_r.ms, 2), TextTable::fmt(new_meps, 2),
               TextTable::fmt(new_meps / old_meps, 2)});
    t.print(std::cout);
  }

  {
    std::cout << "\n-- F3 sweep (event vs BSP), serial vs SweepRunner(4) --\n";
    const System& sys = dhfr_system();
    std::vector<core::EstimatePoint> pts;
    const std::vector<int> node_counts =
        smoke ? std::vector<int>{8, 16} : std::vector<int>{8, 32, 64, 128};
    for (int nodes : node_counts) {
      pts.push_back({machine_preset("anton2", nodes), 2.5, 2});
      pts.push_back({machine_preset("anton2-bsp", nodes), 2.5, 2});
    }

    const core::SweepRunner serial(nullptr);
    ThreadPool pool(4);
    const core::SweepRunner threaded(&pool);

    // Warm both paths (system caches, pool threads) before timing.
    const auto warm = serial.estimate(sys, std::span(pts.data(), 2));
    (void)warm;

    const double t0 = obs::wall_seconds();
    const auto rs = serial.estimate(sys, pts);
    const double serial_ms = (obs::wall_seconds() - t0) * 1e3;
    const double t1 = obs::wall_seconds();
    const auto rt = threaded.estimate(sys, pts);
    const double threaded_ms = (obs::wall_seconds() - t1) * 1e3;

    bool match = rs.size() == rt.size();
    for (size_t i = 0; match && i < rs.size(); ++i) {
      match = rs[i].us_per_day() == rt[i].us_per_day() &&
              rs[i].avg_step_ns() == rt[i].avg_step_ns();
    }
    report.record("sweep.points", static_cast<double>(pts.size()));
    report.record("sweep.serial_ms", serial_ms);
    report.record("sweep.threaded_ms", threaded_ms);
    report.record("sweep.speedup", serial_ms / threaded_ms);
    report.record("sweep.match", match ? 1.0 : 0.0);
    TextTable t({"variant", "ms/sweep", "speedup", "bitwise match"});
    t.add_row({"serial loop", TextTable::fmt(serial_ms, 0), "1.00", "-"});
    t.add_row({"SweepRunner, 4 threads", TextTable::fmt(threaded_ms, 0),
               TextTable::fmt(serial_ms / threaded_ms, 2),
               match ? "yes" : "NO"});
    t.print(std::cout);
    if (!match) {
      std::cout << "\nERROR: threaded sweep diverged from serial results\n";
      return 1;
    }
  }

  std::cout << "\nEvery packet delivery and task release in the machine "
               "model rides the event queue,\nso the storm speedup "
               "compounds across the full simulator.\n";
  return 0;
}
