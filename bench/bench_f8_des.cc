// F8 — Discrete-event core: pooled inline-callable queue + 4-ary heap vs
// the pre-rewrite std::function / std::priority_queue kernel, and the
// parallel sweep harness vs a serial estimate loop.
//
// The baseline is compiled into this binary (namespace `legacy` below): the
// old event queue stored each event as a std::function<void()> inside a
// binary priority_queue, copying the top element out on every step.  The
// torus scheduled deliveries as lambdas capturing a user std::function —
// larger than libstdc++'s 16-byte SSO buffer, so every send allocated and
// every dispatch allocated again for the copy.  The storm below gives both
// queues that exact payload shape: a per-event delivery callable nested
// inside the scheduled closure.  Pinning the baseline in code keeps the
// comparison honest on any host.
//
// The sweep section replays the F3 study (event-driven vs BSP across node
// counts) serially and on a 4-thread SweepRunner and checks the merged
// results are bitwise identical — the harness buys wall time, never drift.
//
// Set ANTON_BENCH_SMOKE=1 to shrink repetitions for CI.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "bench_util.h"
#include "obs/profiler.h"
#include "sim/event_queue.h"

namespace anton::bench {
namespace legacy {

// ---- Pre-rewrite event queue: type-erased heap-allocating callbacks and a
// copy-out-on-pop binary heap.
class EventQueue {
 public:
  void schedule_at(sim::SimTime t, std::function<void()> fn) {
    ANTON_CHECK_MSG(t >= now_ - 1e-9, "event scheduled in the past: t="
                                          << t << " now=" << now_);
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  void schedule_after(sim::SimTime delay, std::function<void()> fn) {
    ANTON_CHECK(delay >= 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  sim::SimTime now() const { return now_; }

  sim::SimTime run() {
    while (!heap_.empty()) step();
    return now_;
  }

  void step() {
    ANTON_CHECK(!heap_.empty());
    // Top must be copied out before pop so the callback may schedule more.
    Event ev = heap_.top();
    heap_.pop();
    now_ = std::max(now_, ev.time);
    ++executed_;
    ev.fn();
  }

 private:
  struct Event {
    sim::SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  sim::SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace legacy

namespace {

// Deterministic per-event jitter so chains interleave and the heap is
// genuinely exercised (uniform delays would degenerate into FIFO order).
double hop_delay(uint32_t chain, int d) {
  const uint32_t salt = chain * 2654435761u + static_cast<uint32_t>(d);
  return 1.0 + 0.25 * static_cast<double>(salt % 7);
}

// The delivery payload both storms carry: a counter plus the (task, sender)
// ids the executor's release callbacks capture.  At 24 bytes it exceeds
// libstdc++'s 16-byte std::function SSO buffer — exactly like the old
// taskgraph's [this, dst_task, id] and multicast-map captures did — so the
// legacy queue allocates when the callable is type-erased and again when
// step() copies the top event out of the heap.
struct Deliver {
  uint64_t* counter;
  uint64_t task_id;
  uint64_t sender_id;
  void operator()() const { ++*counter; }
};

// Every third hop is multicast-shaped: in a step graph the position-import
// multicasts and the force-return unicasts are comparable in delivery
// count, so a 2:1 unicast:multicast event mix is a conservative stand-in.
constexpr int kMcastEvery = 3;
constexpr int kFanOut = 4;

// ---- Legacy storm: the delivery callable is type-erased into a
// std::function nested inside the scheduled closure, the shape the old
// torus/taskgraph put on the queue for every packet.
struct LegacyStorm {
  legacy::EventQueue q;
  uint64_t delivered = 0;
  int depth = 0;

  void hop(uint32_t chain, int d) {
    if (d % kMcastEvery == kMcastEvery - 1) {
      mcast_hop(chain, d);
      return;
    }
    std::function<void()> deliver =
        Deliver{&delivered, chain, static_cast<uint64_t>(d)};
    q.schedule_after(hop_delay(chain, d),
                     [this, chain, d, fn = std::move(deliver)] {
                       fn();
                       if (d + 1 < depth) hop(chain, d + 1);
                     });
  }

  // The old executor built a node->task map per multicast and captured it
  // by value in the delivery std::function; the old torus then copied that
  // callable into each destination's scheduled closure, and step() deep-
  // copied map and all on every pop.  We charge a single destination's
  // worth of that traffic per multicast hop — an undercount of what the
  // old code paid per fan-out.
  void mcast_hop(uint32_t chain, int d) {
    std::map<int, int> node_to_task;
    for (int k = 0; k < kFanOut; ++k) {
      node_to_task.emplace(static_cast<int>(chain) * kFanOut + k, d + k);
    }
    std::function<void(int)> deliver =
        [this, m = std::move(node_to_task)](int node) {
          delivered += static_cast<uint64_t>(m.count(node));
        };
    q.schedule_after(hop_delay(chain, d),
                     [this, chain, d, fn = std::move(deliver)] {
                       fn(static_cast<int>(chain) * kFanOut);
                       if (d + 1 < depth) hop(chain, d + 1);
                     });
  }
};

// ---- Pooled storm: identical event mix, but the delivery callable stays a
// plain struct captured inline, and the multicast callback resolves its
// dependent through a persistent array by index (the new executor's shape)
// — no type-erased allocation, no per-call containers.
struct PooledStorm {
  sim::EventQueue q;
  uint64_t delivered = 0;
  int depth = 0;
  std::vector<int> mcast_deps = std::vector<int>(kFanOut, 1);

  void hop(uint32_t chain, int d) {
    if (d % kMcastEvery == kMcastEvery - 1) {
      mcast_hop(chain, d);
      return;
    }
    const Deliver deliver{&delivered, chain, static_cast<uint64_t>(d)};
    q.schedule_after(hop_delay(chain, d), [this, chain, d, deliver] {
      deliver();
      if (d + 1 < depth) hop(chain, d + 1);
    });
  }

  void mcast_hop(uint32_t chain, int d) {
    q.schedule_after(
        hop_delay(chain, d), [this, deps = &mcast_deps, chain, d] {
          delivered += static_cast<uint64_t>(
              (*deps)[static_cast<size_t>((chain + static_cast<uint32_t>(d)) %
                                          kFanOut)]);
          if (d + 1 < depth) hop(chain, d + 1);
        });
  }
};

struct StormResult {
  double ms = 0;        // per full storm (schedule + drain)
  double final_t = 0;   // queue clock after the drain, for cross-checking
  uint64_t events = 0;
};

template <class Storm>
StormResult run_storm(int reps, int chains, int depth) {
  StormResult r;
  r.events = static_cast<uint64_t>(chains) * static_cast<uint64_t>(depth);
  // Shared min-of-reps statistic (bench_util.h).  Each timed call builds a
  // fresh storm — construction is identical for the legacy and new variants,
  // so the gated ratio is unaffected — then schedules and drains it.
  r.ms = time_min_ms(reps, 1, [&] {
    Storm storm;
    storm.depth = depth;
    for (int c = 0; c < chains; ++c) {
      storm.hop(static_cast<uint32_t>(c), 0);
    }
    r.final_t = storm.q.run();
    ANTON_CHECK(storm.delivered == r.events);
  });
  return r;
}

}  // namespace
}  // namespace anton::bench

int main() {
  using namespace anton;
  using namespace anton::bench;

  const bool smoke = std::getenv("ANTON_BENCH_SMOKE") != nullptr;
  const int reps = smoke ? 3 : 7;
  const int chains = smoke ? 64 : 512;
  const int depth = smoke ? 250 : 2500;

  print_header("F8", "Discrete-event core and sweep harness");
  BenchReport report("f8");

  {
    std::cout << "\n-- single-queue event storm (" << chains << " chains x "
              << depth << " hops, nested delivery payload) --\n";
    const auto old_r = run_storm<LegacyStorm>(reps, chains, depth);
    const auto new_r = run_storm<PooledStorm>(reps, chains, depth);
    // Identical jitter, identical FIFO tie-breaks: the two kernels must
    // agree on the simulated clock to the last bit.
    ANTON_CHECK(old_r.final_t == new_r.final_t);
    const double old_meps =
        static_cast<double>(old_r.events) / (old_r.ms * 1e3);
    const double new_meps =
        static_cast<double>(new_r.events) / (new_r.ms * 1e3);
    report.record("queue.legacy_meps", old_meps);
    report.record("queue.new_meps", new_meps);
    report.record("queue.speedup", new_meps / old_meps);
    TextTable t({"variant", "ms/storm", "events/us", "speedup"});
    t.add_row({"legacy std::function + binary heap",
               TextTable::fmt(old_r.ms, 2), TextTable::fmt(old_meps, 2),
               "1.00"});
    t.add_row({"pooled inline callables + 4-ary heap",
               TextTable::fmt(new_r.ms, 2), TextTable::fmt(new_meps, 2),
               TextTable::fmt(new_meps / old_meps, 2)});
    t.print(std::cout);
  }

  {
    std::cout << "\n-- F3 sweep (event vs BSP), serial vs SweepRunner(4) --\n";
    const System& sys = dhfr_system();
    std::vector<core::EstimatePoint> pts;
    const std::vector<int> node_counts =
        smoke ? std::vector<int>{8, 16} : std::vector<int>{8, 32, 64, 128};
    for (int nodes : node_counts) {
      pts.push_back({machine_preset("anton2", nodes), 2.5, 2});
      pts.push_back({machine_preset("anton2-bsp", nodes), 2.5, 2});
    }

    const core::SweepRunner serial(nullptr);
    ThreadPool pool(4);
    const core::SweepRunner threaded(&pool);

    // Warm both paths (system caches, pool threads) before timing.
    const auto warm = serial.estimate(sys, std::span(pts.data(), 2));
    (void)warm;

    const double t0 = obs::wall_seconds();
    const auto rs = serial.estimate(sys, pts);
    const double serial_ms = (obs::wall_seconds() - t0) * 1e3;
    const double t1 = obs::wall_seconds();
    const auto rt = threaded.estimate(sys, pts);
    const double threaded_ms = (obs::wall_seconds() - t1) * 1e3;

    bool match = rs.size() == rt.size();
    for (size_t i = 0; match && i < rs.size(); ++i) {
      match = rs[i].us_per_day() == rt[i].us_per_day() &&
              rs[i].avg_step_ns() == rt[i].avg_step_ns();
    }
    report.record("sweep.points", static_cast<double>(pts.size()));
    report.record("sweep.serial_ms", serial_ms);
    report.record("sweep.threaded_ms", threaded_ms);
    report.record("sweep.speedup", serial_ms / threaded_ms);
    report.record("sweep.match", match ? 1.0 : 0.0);
    TextTable t({"variant", "ms/sweep", "speedup", "bitwise match"});
    t.add_row({"serial loop", TextTable::fmt(serial_ms, 0), "1.00", "-"});
    t.add_row({"SweepRunner, 4 threads", TextTable::fmt(threaded_ms, 0),
               TextTable::fmt(serial_ms / threaded_ms, 2),
               match ? "yes" : "NO"});
    t.print(std::cout);
    if (!match) {
      std::cout << "\nERROR: threaded sweep diverged from serial results\n";
      return 1;
    }
  }

  std::cout << "\nEvery packet delivery and task release in the machine "
               "model rides the event queue,\nso the storm speedup "
               "compounds across the full simulator.\n";
  return 0;
}
