// A1 — Ablations of the design choices DESIGN.md calls out, all on the
// 512-node Anton 2 with the 23,558-atom system:
//   (a) hardware multicast for position import vs plain unicasts,
//   (b) RESPA long-range cadence,
//   (c) mesh spacing (FFT size vs spreading cost trade-off),
//   (d) pairwise cutoff (HTIS load vs import-region size),
//   (e) fine-grained sync trigger cost (what if event dispatch were slow).
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

namespace {

double rate(const arch::MachineConfig& cfg, const System& sys,
            int respa_k = 2) {
  return core::AntonMachine(cfg).estimate(sys, 2.5, respa_k).us_per_day();
}

}  // namespace

int main() {
  const System& sys = dhfr_system();
  const auto base = machine_preset("anton2", 512);
  const double baseline = rate(base, sys);
  BenchReport report("a1");
  report.record("baseline.us_per_day", baseline);

  print_header("A1a", "hardware multicast vs unicast position import");
  {
    TextTable t({"import mechanism", "us/day", "vs baseline"});
    t.add_row({"multicast tree (baseline)", TextTable::fmt(baseline), "1.00"});
    auto c = base;
    c.use_multicast = false;
    const double v = rate(c, sys);
    report.record("unicast_import.vs_baseline", v / baseline);
    t.add_row({"unicast per destination", TextTable::fmt(v),
               TextTable::fmt(v / baseline, 2)});
    t.print(std::cout);
  }

  print_header("A1b", "RESPA long-range cadence");
  {
    TextTable t({"k (FFT every k steps)", "us/day", "vs k=1"});
    const double k1 = rate(base, sys, 1);
    for (int k : {1, 2, 3, 4}) {
      const double v = rate(base, sys, k);
      report.record("respa.us_per_day.k" + std::to_string(k), v);
      t.add_row({TextTable::fmt_int(k), TextTable::fmt(v),
                 TextTable::fmt(v / k1, 2)});
    }
    t.print(std::cout);
  }

  print_header("A1c", "mesh spacing (FFT size vs spreading traffic)");
  {
    TextTable t({"target spacing (A)", "mesh", "us/day"});
    for (double spacing : {1.0, 1.5, 2.0, 3.0, 4.0}) {
      auto c = base;
      c.mesh_spacing = spacing;
      const core::Workload w = core::Workload::build(sys, c);
      const double v = rate(c, sys);
      t.add_row({TextTable::fmt(spacing, 1),
                 TextTable::fmt_int(w.mesh_dim(0)) + "^3",
                 TextTable::fmt(v)});
    }
    t.print(std::cout);
  }

  print_header("A1d", "pairwise cutoff (HTIS load vs import volume)");
  {
    TextTable t({"cutoff (A)", "pairs/step (M)", "us/day"});
    for (double rc : {7.0, 9.0, 11.0, 13.0}) {
      auto c = base;
      c.machine_cutoff = rc;
      const core::Workload w = core::Workload::build(sys, c);
      const double v = rate(c, sys);
      t.add_row({TextTable::fmt(rc, 1),
                 TextTable::fmt(static_cast<double>(w.total_pairs()) / 1e6, 1),
                 TextTable::fmt(v)});
    }
    t.print(std::cout);
  }

  print_header("A1f", "routing policy (dimension-order vs randomised)");
  {
    TextTable t({"routing", "us/day", "vs baseline"});
    t.add_row({"dimension-order (baseline)", TextTable::fmt(baseline),
               "1.00"});
    auto c = base;
    c.noc.routing = noc::RoutingPolicy::kRandomizedOrder;
    const double v = rate(c, sys);
    report.record("randomized_routing.vs_baseline", v / baseline);
    t.add_row({"randomised axis order", TextTable::fmt(v),
               TextTable::fmt(v / baseline, 2)});
    t.print(std::cout);
    std::cout << "MD's traffic is regular nearest-neighbour exchange, for "
                 "which deterministic DOR is\nalready conflict-free; "
                 "randomisation creates transient hotspots.  It only pays "
                 "on\nadversarial patterns (see the converging-traffic test "
                 "in test_hilbert_routing).\n";
  }

  print_header("A1e", "event-dispatch cost sensitivity");
  {
    TextTable t({"sync trigger (ns)", "us/day", "vs baseline"});
    for (double trig : {2.0, 8.0, 32.0, 128.0}) {
      auto c = base;
      c.sync_trigger_ns = trig;
      const double v = rate(c, sys);
      report.record("sync_trigger.vs_baseline.ns" + TextTable::fmt(trig, 0),
                    v / baseline);
      t.add_row({TextTable::fmt(trig, 0), TextTable::fmt(v),
                 TextTable::fmt(v / baseline, 2)});
    }
    t.print(std::cout);
    std::cout << "\nFine-grained operation only pays off because firing a "
                 "task costs nanoseconds;\nwith slow dispatch the "
                 "event-driven machine degrades toward BSP behaviour.\n";
  }
  return 0;
}
