// A1 — Ablations of the design choices DESIGN.md calls out, all on the
// 512-node Anton 2 with the 23,558-atom system:
//   (a) hardware multicast for position import vs plain unicasts,
//   (b) RESPA long-range cadence,
//   (c) mesh spacing (FFT size vs spreading cost trade-off),
//   (d) pairwise cutoff (HTIS load vs import-region size),
//   (e) fine-grained sync trigger cost (what if event dispatch were slow).
#include "bench_util.h"

using namespace anton;
using namespace anton::bench;

int main() {
  const System& sys = dhfr_system();
  const auto base = machine_preset("anton2", 512);

  // All ablation points are collected up front and evaluated in one sweep;
  // the sections below print results by index.
  std::vector<core::EstimatePoint> pts;
  const auto add = [&](const arch::MachineConfig& cfg, int respa_k = 2) {
    pts.push_back({cfg, 2.5, respa_k});
    return pts.size() - 1;
  };

  const size_t i_base = add(base);
  auto c_uni = base;
  c_uni.use_multicast = false;
  const size_t i_unicast = add(c_uni);

  const std::vector<int> respa_ks{1, 2, 3, 4};
  std::vector<size_t> i_respa;
  for (int k : respa_ks) i_respa.push_back(add(base, k));

  const std::vector<double> spacings{1.0, 1.5, 2.0, 3.0, 4.0};
  std::vector<size_t> i_spacing;
  for (double spacing : spacings) {
    auto c = base;
    c.mesh_spacing = spacing;
    i_spacing.push_back(add(c));
  }

  const std::vector<double> cutoffs{7.0, 9.0, 11.0, 13.0};
  std::vector<size_t> i_cutoff;
  for (double rc : cutoffs) {
    auto c = base;
    c.machine_cutoff = rc;
    i_cutoff.push_back(add(c));
  }

  auto c_rand = base;
  c_rand.noc.routing = noc::RoutingPolicy::kRandomizedOrder;
  const size_t i_rand = add(c_rand);

  const std::vector<double> triggers{2.0, 8.0, 32.0, 128.0};
  std::vector<size_t> i_trig;
  for (double trig : triggers) {
    auto c = base;
    c.sync_trigger_ns = trig;
    i_trig.push_back(add(c));
  }

  const auto results = sweep_estimates(sys, pts);
  const auto rate_at = [&](size_t i) { return results[i].us_per_day(); };
  const double baseline = rate_at(i_base);

  BenchReport report("a1");
  report.record("baseline.us_per_day", baseline);

  print_header("A1a", "hardware multicast vs unicast position import");
  {
    TextTable t({"import mechanism", "us/day", "vs baseline"});
    t.add_row({"multicast tree (baseline)", TextTable::fmt(baseline), "1.00"});
    const double v = rate_at(i_unicast);
    report.record("unicast_import.vs_baseline", v / baseline);
    t.add_row({"unicast per destination", TextTable::fmt(v),
               TextTable::fmt(v / baseline, 2)});
    t.print(std::cout);
  }

  print_header("A1b", "RESPA long-range cadence");
  {
    TextTable t({"k (FFT every k steps)", "us/day", "vs k=1"});
    const double k1 = rate_at(i_respa[0]);
    for (size_t j = 0; j < respa_ks.size(); ++j) {
      const double v = rate_at(i_respa[j]);
      report.record("respa.us_per_day.k" + std::to_string(respa_ks[j]), v);
      t.add_row({TextTable::fmt_int(respa_ks[j]), TextTable::fmt(v),
                 TextTable::fmt(v / k1, 2)});
    }
    t.print(std::cout);
  }

  print_header("A1c", "mesh spacing (FFT size vs spreading traffic)");
  {
    TextTable t({"target spacing (A)", "mesh", "us/day"});
    for (size_t j = 0; j < spacings.size(); ++j) {
      const core::Workload w =
          core::Workload::build(sys, pts[i_spacing[j]].config);
      t.add_row({TextTable::fmt(spacings[j], 1),
                 TextTable::fmt_int(w.mesh_dim(0)) + "^3",
                 TextTable::fmt(rate_at(i_spacing[j]))});
    }
    t.print(std::cout);
  }

  print_header("A1d", "pairwise cutoff (HTIS load vs import volume)");
  {
    TextTable t({"cutoff (A)", "pairs/step (M)", "us/day"});
    for (size_t j = 0; j < cutoffs.size(); ++j) {
      const core::Workload w =
          core::Workload::build(sys, pts[i_cutoff[j]].config);
      t.add_row({TextTable::fmt(cutoffs[j], 1),
                 TextTable::fmt(static_cast<double>(w.total_pairs()) / 1e6, 1),
                 TextTable::fmt(rate_at(i_cutoff[j]))});
    }
    t.print(std::cout);
  }

  print_header("A1f", "routing policy (dimension-order vs randomised)");
  {
    TextTable t({"routing", "us/day", "vs baseline"});
    t.add_row({"dimension-order (baseline)", TextTable::fmt(baseline),
               "1.00"});
    const double v = rate_at(i_rand);
    report.record("randomized_routing.vs_baseline", v / baseline);
    t.add_row({"randomised axis order", TextTable::fmt(v),
               TextTable::fmt(v / baseline, 2)});
    t.print(std::cout);
    std::cout << "MD's traffic is regular nearest-neighbour exchange, for "
                 "which deterministic DOR is\nalready conflict-free; "
                 "randomisation creates transient hotspots.  It only pays "
                 "on\nadversarial patterns (see the converging-traffic test "
                 "in test_hilbert_routing).\n";
  }

  print_header("A1e", "event-dispatch cost sensitivity");
  {
    TextTable t({"sync trigger (ns)", "us/day", "vs baseline"});
    for (size_t j = 0; j < triggers.size(); ++j) {
      const double v = rate_at(i_trig[j]);
      report.record(
          "sync_trigger.vs_baseline.ns" + TextTable::fmt(triggers[j], 0),
          v / baseline);
      t.add_row({TextTable::fmt(triggers[j], 0), TextTable::fmt(v),
                 TextTable::fmt(v / baseline, 2)});
    }
    t.print(std::cout);
    std::cout << "\nFine-grained operation only pays off because firing a "
                 "task costs nanoseconds;\nwith slow dispatch the "
                 "event-driven machine degrades toward BSP behaviour.\n";
  }
  return 0;
}
