#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace anton::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth < 5) {
      q.schedule_after(1.0, [&chain, depth] { chain(depth + 1); });
    }
  };
  q.schedule_at(0.0, [&chain] { chain(0); });
  q.run();
  EXPECT_EQ(fired, 6);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double t_inner = -1;
  q.schedule_at(10.0, [&] {
    q.schedule_after(2.5, [&] { t_inner = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(t_inner, 12.5);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.schedule_at(10.0, [&] {
    EXPECT_THROW(q.schedule_at(5.0, [] {}), Error);
  });
  q.run();
}

TEST(EventQueue, CountsExecuted) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(i, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 7u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ResetClearsClock) {
  EventQueue q;
  q.schedule_at(100.0, [] {});
  q.run();
  q.reset();
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, ResetWithPendingThrows) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  EXPECT_THROW(q.reset(), Error);
  q.run();
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.step();
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  q.run();
  EXPECT_EQ(count, 2);
}

TEST(EventQueue, CallablesAreNeverCopied) {
  // The old priority_queue kernel copied the top event (and its closure)
  // out of the heap on every step; the pooled arena moves callables and
  // sifts POD entries, so a scheduled callable must never be copied.
  struct Probe {
    int* copies;
    int* runs;
    Probe(int* c, int* r) : copies(c), runs(r) {}
    Probe(const Probe& o) : copies(o.copies), runs(o.runs) { ++*copies; }
    Probe(Probe&& o) noexcept = default;
    void operator()() const { ++*runs; }
  };
  EventQueue q;
  int copies = 0, runs = 0;
  q.schedule_at(2.0, Probe(&copies, &runs));
  q.schedule_at(1.0, Probe(&copies, &runs));
  q.schedule_at(1.5, Probe(&copies, &runs));
  q.run();
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(copies, 0);
}

TEST(EventQueue, HoldsMoveOnlyCallables) {
  // std::function required copyable callables; the inline representation
  // only needs a nothrow move.
  EventQueue q;
  int got = 0;
  auto payload = std::make_unique<int>(41);
  q.schedule_at(1.0, [&got, p = std::move(payload)] { got = *p + 1; });
  q.run();
  EXPECT_EQ(got, 42);
}

TEST(EventQueue, FifoAmongEqualTimestampsUnderStress) {
  // Interleaved out-of-order batches exercise the 4-ary sift paths; within
  // each timestamp, insertion order must survive every heap shape.
  EventQueue q;
  std::vector<int> fired;
  std::map<double, std::vector<int>> per_time;
  int id = 0;
  const double times[] = {50, 10, 30, 20, 10, 50, 30, 10, 20, 40};
  for (int rep = 0; rep < 8; ++rep) {
    for (const double t : times) {
      per_time[t].push_back(id);
      q.schedule_at(t, [&fired, id] { fired.push_back(id); });
      ++id;
    }
  }
  q.run();
  std::vector<int> want;
  for (const auto& [t, ids] : per_time) {
    want.insert(want.end(), ids.begin(), ids.end());
  }
  EXPECT_EQ(fired, want);
}

TEST(EventQueue, ArenaSlotsRecycleAcrossBursts) {
  EventQueue q;
  auto burst = [&] {
    for (int i = 0; i < 64; ++i) {
      q.schedule_after(1.0 + 0.1 * i, [] {});
    }
    q.run();
  };
  burst();
  const size_t warm = q.arena_slots();
  EXPECT_LE(warm, 64u);
  for (int r = 0; r < 5; ++r) burst();
  // A warmed pool satisfies identical bursts without growing.
  EXPECT_EQ(q.arena_slots(), warm);
  EXPECT_EQ(q.arena_free(), q.arena_slots());
  q.check_arena();
}

TEST(EventQueue, NextTimeTracksEarliestPending) {
  EventQueue q;
  EXPECT_FALSE(std::isfinite(q.next_time()));  // empty: +infinity
  q.schedule_at(7.0, [] {});
  q.schedule_at(3.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 3.0);
  q.step();
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
  q.run();
  EXPECT_FALSE(std::isfinite(q.next_time()));
}

TEST(EventQueue, RunUntilStopsStrictlyBeforeHorizon) {
  // The window loop relies on run_until's strict `<`: an event at exactly
  // the horizon belongs to the next window.
  EventQueue q;
  std::vector<double> fired;
  for (const double t : {1.0, 2.0, 3.0, 4.0}) {
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(q.next_time(), 3.0);
  q.run_until(100.0);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, ScheduleMoveTransfersPrebuiltCallback) {
  // The mailbox drain hands the queue an already-built Callback; the
  // callable must move in without a copy or a fresh allocation site.
  EventQueue q;
  int runs = 0;
  EventQueue::Callback cb([&runs] { ++runs; });
  q.schedule_move(4.0, std::move(cb));
  q.run();
  EXPECT_EQ(runs, 1);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, ReservePrewarmsArenaAndHeap) {
  EventQueue q;
  q.reserve(64);
  for (int i = 0; i < 64; ++i) q.schedule_at(1.0 + i, [] {});
  const size_t slots = q.arena_slots();
  EXPECT_EQ(slots, 64u);
  q.run();
  // A second identical burst reuses the same slots.
  for (int i = 0; i < 64; ++i) q.schedule_at(100.0 + i, [] {});
  EXPECT_EQ(q.arena_slots(), slots);
  q.run();
  q.check_arena();
}

TEST(EventQueue, NestedSchedulingReusesFreedSlot) {
  // step() frees the slot before invoking, so a chain of self-scheduling
  // events runs in exactly one arena slot.
  EventQueue q;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth < 100) {
      q.schedule_after(1.0, [&chain, depth] { chain(depth + 1); });
    }
  };
  q.schedule_at(0.0, [&chain] { chain(0); });
  q.run();
  EXPECT_EQ(fired, 101);
  EXPECT_EQ(q.arena_slots(), 1u);
  q.check_arena();
}

}  // namespace
}  // namespace anton::sim
