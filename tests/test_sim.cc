#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace anton::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth < 5) {
      q.schedule_after(1.0, [&chain, depth] { chain(depth + 1); });
    }
  };
  q.schedule_at(0.0, [&chain] { chain(0); });
  q.run();
  EXPECT_EQ(fired, 6);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double t_inner = -1;
  q.schedule_at(10.0, [&] {
    q.schedule_after(2.5, [&] { t_inner = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(t_inner, 12.5);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.schedule_at(10.0, [&] {
    EXPECT_THROW(q.schedule_at(5.0, [] {}), Error);
  });
  q.run();
}

TEST(EventQueue, CountsExecuted) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(i, [] {});
  q.run();
  EXPECT_EQ(q.executed(), 7u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ResetClearsClock) {
  EventQueue q;
  q.schedule_at(100.0, [] {});
  q.run();
  q.reset();
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, ResetWithPendingThrows) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  EXPECT_THROW(q.reset(), Error);
  q.run();
}

TEST(EventQueue, StepExecutesExactlyOne) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.step();
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  q.run();
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace anton::sim
