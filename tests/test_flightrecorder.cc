// Flight recorder: ring semantics, concurrency, crash dumps, and the
// zero-allocation steady state.
//
// Like test_des_noalloc.cc, this binary overrides the global allocator with
// a counting hook: after the one-time per-thread ring attach, recording
// into the flight buffer must perform no heap allocation at all — that is
// the property that lets ANTON_HOT_NOALLOC paths (the DES queue loop, the
// NoC delivery path) record without losing their callgraph-verified purity.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/flightrecorder.h"

namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace anton {
namespace {

namespace flight = obs::flight;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Each test owns the recorder's global state: reset, then pin the env knobs
// it relies on (the config is re-read on the first attach after a reset).
void fresh(const char* depth = nullptr) {
  flight::reset_for_testing();
  if (depth != nullptr) {
    setenv("ANTON_FLIGHT_DEPTH", depth, 1);
  } else {
    unsetenv("ANTON_FLIGHT_DEPTH");
  }
  unsetenv("ANTON_FLIGHT");
  unsetenv("ANTON_FLIGHT_PATH");
}

TEST(FlightRecorder, RingWrapKeepsOnlyTheLastDepthRecords) {
  fresh("64");
  for (int i = 0; i < 200; ++i) {
    flight::record(flight::Kind::kMark, "wrap",
                   static_cast<uint64_t>(i));
  }
  const flight::Stats st = flight::stats();
  EXPECT_EQ(st.threads, 1);
  EXPECT_EQ(st.records, 200u);
  EXPECT_EQ(st.retained, 64u);

  const std::string path = "flight_wrap.json";
  ASSERT_TRUE(flight::dump(path.c_str()));
  const std::string d = slurp(path);
  EXPECT_NE(d.find("\"anton.flight.v1\""), std::string::npos);
  // Retained window is payloads 136..199: the oldest survivor is 136.
  EXPECT_NE(d.find("\"payload\":199"), std::string::npos);
  EXPECT_NE(d.find("\"payload\":136"), std::string::npos);
  EXPECT_EQ(d.find("\"payload\":135"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DepthRoundsUpToPowerOfTwo) {
  fresh("100");  // not a power of two: must round to 128
  flight::record(flight::Kind::kMark, "probe");
  for (int i = 0; i < 500; ++i) {
    flight::record(flight::Kind::kMark, "fill");
  }
  EXPECT_EQ(flight::stats().retained, 128u);
}

TEST(FlightRecorder, ConcurrentPerThreadWritersNeverInterleave) {
  fresh("256");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        flight::record_sim(flight::Kind::kDesEvent, "evt",
                           1000.0 * t + i, static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : writers) th.join();
  const flight::Stats st = flight::stats();
  EXPECT_EQ(st.threads, kThreads);  // main never recorded
  EXPECT_EQ(st.records, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(st.retained, static_cast<uint64_t>(kThreads) * 256u);

  const std::string path = "flight_threads.json";
  ASSERT_TRUE(flight::dump(path.c_str()));
  const std::string d = slurp(path);
  EXPECT_NE(d.find("\"threads\":4"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, SteadyStateRecordingIsAllocationFree) {
  fresh("4096");
  // Warm-up: the first record on this thread attaches the ring (the one
  // sanctioned allocation, amortized like the event arena).
  flight::record(flight::Kind::kMark, "warm");
  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    flight::record_sim(flight::Kind::kDesEvent, "evt", 10.0 * i,
                       static_cast<uint64_t>(i));
    flight::record_at(flight::Kind::kNocSend, "noc", 10.0 * i + 1, 7);
  }
  const std::int64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "flight recording allocated on the hot path";
  EXPECT_EQ(flight::stats().records, 20001u);
}

TEST(FlightRecorder, DisabledViaEnvRecordsNothing) {
  flight::reset_for_testing();
  setenv("ANTON_FLIGHT", "0", 1);
  flight::record(flight::Kind::kMark, "ignored");
  flight::record(flight::Kind::kMark, "ignored");
  const flight::Stats st = flight::stats();
  EXPECT_EQ(st.threads, 0);
  EXPECT_EQ(st.records, 0u);
  unsetenv("ANTON_FLIGHT");
  flight::reset_for_testing();
}

TEST(FlightRecorder, InvariantFailureDumpsOnceWithTheFailedExpression) {
  fresh();
  const std::string path = "flight_invariant.json";
  std::remove(path.c_str());
  flight::install_crash_handler(path.c_str());
  flight::record(flight::Kind::kMark, "before-failure");
  EXPECT_THROW(ANTON_CHECK(1 == 2), anton::Error);
  const std::string d = slurp(path);
  ASSERT_FALSE(d.empty()) << "no dump written on ANTON_CHECK failure";
  EXPECT_NE(d.find("\"anton.flight.v1\""), std::string::npos);
  EXPECT_NE(d.find("\"kind\":\"invariant\""), std::string::npos);
  EXPECT_NE(d.find("1 == 2"), std::string::npos);
  EXPECT_NE(d.find("before-failure"), std::string::npos);

  // Once per process: a second caught failure must not rewrite the file.
  std::remove(path.c_str());
  EXPECT_THROW(ANTON_CHECK(2 == 3), anton::Error);
  EXPECT_TRUE(slurp(path).empty());
}

TEST(FlightRecorder, DumpPathReflectsInstallOverride) {
  fresh();
  flight::install_crash_handler("flight_custom_path.json");
  EXPECT_STREQ(flight::dump_path(), "flight_custom_path.json");
}

TEST(FlightRecorderDeathTest, FatalSignalDumpsBeforeDying) {
  fresh();
  const std::string path = "flight_sigterm.json";
  std::remove(path.c_str());
  flight::install_crash_handler(path.c_str());
  flight::record(flight::Kind::kMark, "pre-kill", 42);
  EXPECT_EXIT(std::raise(SIGTERM), testing::KilledBySignal(SIGTERM), "");
  // The dump happened in the death-test child, before the re-raise killed
  // it; the file lands in the shared working directory.
  const std::string d = slurp(path);
  ASSERT_FALSE(d.empty()) << "no dump written by the SIGTERM handler";
  EXPECT_NE(d.find("\"anton.flight.v1\""), std::string::npos);
  EXPECT_NE(d.find("pre-kill"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace anton
