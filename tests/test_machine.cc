#include <gtest/gtest.h>

#include "chem/builder.h"
#include "core/machine.h"
#include "md/engine.h"

namespace anton::core {
namespace {

// A small system / small machine so tests stay fast.
System small_system() {
  BuilderOptions o;
  o.total_atoms = 3000;
  o.solute_fraction = 0.1;
  o.seed = 77;
  o.temperature_k = -1;
  return build_solvated_system(o);
}

TEST(Timestep, Deterministic) {
  const System sys = small_system();
  const auto cfg = arch::MachineConfig::anton2(2, 2, 2);
  const Workload w = Workload::build(sys, cfg);
  const StepTiming a = simulate_step(w, cfg, {.include_long_range = true});
  const StepTiming b = simulate_step(w, cfg, {.include_long_range = true});
  EXPECT_DOUBLE_EQ(a.step_ns, b.step_ns);
  EXPECT_EQ(a.exec.tasks_executed, b.exec.tasks_executed);
}

TEST(Timestep, ShortStepFasterThanFull) {
  const System sys = small_system();
  const auto cfg = arch::MachineConfig::anton2(2, 2, 2);
  const Workload w = Workload::build(sys, cfg);
  const StepTiming full = simulate_step(w, cfg, {.include_long_range = true});
  const StepTiming srt = simulate_step(w, cfg, {.include_long_range = false});
  EXPECT_LT(srt.step_ns, full.step_ns);
  EXPECT_EQ(srt.phase_ns("fft"), 0.0);
  EXPECT_GT(full.phase_ns("fft"), 0.0);
}

TEST(Timestep, EventDrivenFasterThanBsp) {
  const System sys = small_system();
  const auto ev = arch::MachineConfig::anton2(2, 2, 2);
  const auto bsp = arch::MachineConfig::anton2_bsp(2, 2, 2);
  const Workload w = Workload::build(sys, ev);
  const double t_ev =
      simulate_step(w, ev, {.include_long_range = true}).step_ns;
  const double t_bsp =
      simulate_step(w, bsp, {.include_long_range = true}).step_ns;
  EXPECT_LT(t_ev, t_bsp);
}

TEST(Timestep, BspRunsBarriers) {
  const System sys = small_system();
  const auto bsp = arch::MachineConfig::anton2_bsp(2, 2, 2);
  const Workload w = Workload::build(sys, bsp);
  const StepTiming t = simulate_step(w, bsp, {.include_long_range = true});
  EXPECT_GT(t.phase_ns("barrier"), 0.0);
  const StepTiming ev = simulate_step(
      w, arch::MachineConfig::anton2(2, 2, 2), {.include_long_range = true});
  EXPECT_EQ(ev.phase_ns("barrier"), 0.0);
}

TEST(Timestep, AllPhasesPresent) {
  const System sys = small_system();
  const auto cfg = arch::MachineConfig::anton2(2, 2, 2);
  const Workload w = Workload::build(sys, cfg);
  const StepTiming t = simulate_step(w, cfg, {.include_long_range = true});
  for (const char* phase :
       {"pos_export", "pair_local", "pair_tile", "bonded", "spread", "fft",
        "interp", "integrate", "constrain", "migrate"}) {
    EXPECT_GT(t.phase_ns(phase), 0.0) << phase;
  }
}

TEST(Timestep, MorePairsTakesLonger) {
  // A denser (larger) system on the same machine must not be faster.
  BuilderOptions small;
  small.total_atoms = 2001;
  small.temperature_k = -1;
  small.seed = 3;
  BuilderOptions big = small;
  big.total_atoms = 6000;
  const auto cfg = arch::MachineConfig::anton2(2, 2, 2);
  const Workload ws = Workload::build(build_solvated_system(small), cfg);
  const Workload wb = Workload::build(build_solvated_system(big), cfg);
  EXPECT_GT(wb.total_pairs(), ws.total_pairs());
  const double ts = simulate_step(ws, cfg, {}).step_ns;
  const double tb = simulate_step(wb, cfg, {}).step_ns;
  EXPECT_GT(tb, ts);
}

TEST(Machine, EstimateProducesReport) {
  const System sys = small_system();
  AntonMachine m(arch::MachineConfig::anton2(2, 2, 2));
  const PerfReport r = m.estimate(sys, 2.5, 2);
  EXPECT_EQ(r.nodes, 8);
  EXPECT_EQ(r.atoms, sys.num_atoms());
  EXPECT_GT(r.full_step.step_ns, 0);
  EXPECT_GT(r.short_step.step_ns, 0);
  EXPECT_GT(r.us_per_day(), 0);
  // avg is between short and full.
  EXPECT_GE(r.avg_step_ns(), r.short_step.step_ns);
  EXPECT_LE(r.avg_step_ns(), r.full_step.step_ns);
}

TEST(Machine, Anton2FasterThanAnton1) {
  const System sys = small_system();
  AntonMachine m2(arch::MachineConfig::anton2(2, 2, 2));
  AntonMachine m1(arch::MachineConfig::anton1(2, 2, 2));
  const double v2 = m2.estimate(sys).us_per_day();
  const double v1 = m1.estimate(sys).us_per_day();
  EXPECT_GT(v2, 2.0 * v1);
}

TEST(Machine, RespaImprovesThroughput) {
  const System sys = small_system();
  AntonMachine m(arch::MachineConfig::anton2(2, 2, 2));
  const double k1 = m.estimate(sys, 2.5, 1).us_per_day();
  const double k3 = m.estimate(sys, 2.5, 3).us_per_day();
  EXPECT_GT(k3, k1);
}

TEST(Machine, FunctionalRunAdvancesPhysicsAndTimes) {
  System sys = build_water_box(216, 88);
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.0;
  p.respa_k = 2;
  p.long_range = LongRangeMethod::kMesh;
  const std::vector<Vec3> before(sys.positions().begin(),
                                 sys.positions().end());
  AntonMachine m(arch::MachineConfig::anton2(2, 2, 2));
  const PerfReport r = m.run(sys, p, 6);
  EXPECT_GT(r.us_per_day(), 0);
  // Physics advanced.
  double moved = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    moved += norm(sys.positions()[i] - before[i]);
  }
  EXPECT_GT(moved, 0.0);
}

TEST(Machine, FunctionalRunMatchesGoldEngineTrajectory) {
  // The machine's functional layer *is* the gold engine; a machine run and
  // a plain engine run must produce identical positions.
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.0;
  p.respa_k = 1;
  p.long_range = LongRangeMethod::kMesh;

  System sys_machine = build_water_box(216, 89);
  System sys_gold = sys_machine;
  AntonMachine m(arch::MachineConfig::anton2(2, 2, 2));
  m.run(sys_machine, p, 5);

  md::Simulation sim(std::move(sys_gold), p);
  sim.step(5);

  for (int i = 0; i < sys_machine.num_atoms(); ++i) {
    EXPECT_EQ(sys_machine.positions()[static_cast<size_t>(i)],
              sim.system().positions()[static_cast<size_t>(i)]);
  }
}

TEST(Machine, UsPerDayArithmetic) {
  PerfReport r;
  r.dt_fs = 2.5;
  r.respa_k = 1;
  r.full_step.step_ns = 2500.0;  // 2.5 us per step
  r.short_step.step_ns = 2500.0;
  // 2.5 fs per 2.5 us -> 1e-9 ratio -> 86400 s/day * 1e-9 = 86.4 us/day.
  EXPECT_NEAR(r.us_per_day(), 86.4, 1e-9);
}

}  // namespace
}  // namespace anton::core
