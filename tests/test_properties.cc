// Parameterised property tests: invariants that must hold across whole
// families of inputs (TEST_P sweeps), complementing the example-based suites.
#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "common/rng.h"
#include "core/machine.h"
#include "fft/fft.h"
#include "geom/box.h"
#include "md/ewald.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"

namespace anton {
namespace {

// --- Box / minimum image over many box shapes ------------------------------

class BoxProperty : public ::testing::TestWithParam<Vec3> {};

TEST_P(BoxProperty, MinImageIsShortestOverImages) {
  const Box box(GetParam());
  Rng rng(101, 0);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3 a = rng.uniform_in_box(box.lengths());
    const Vec3 b = rng.uniform_in_box(box.lengths());
    const double d = box.distance(a, b);
    // No periodic image of b may be closer than the minimum image.
    for (int ix = -1; ix <= 1; ++ix) {
      for (int iy = -1; iy <= 1; ++iy) {
        for (int iz = -1; iz <= 1; ++iz) {
          const Vec3 image = b + Vec3{ix * box.lengths().x,
                                      iy * box.lengths().y,
                                      iz * box.lengths().z};
          EXPECT_LE(d, norm(a - image) + 1e-9);
        }
      }
    }
  }
}

TEST_P(BoxProperty, WrapPreservesImageClass) {
  const Box box(GetParam());
  Rng rng(102, 0);
  for (int trial = 0; trial < 200; ++trial) {
    const Vec3 p{rng.uniform(-40, 40), rng.uniform(-40, 40),
                 rng.uniform(-40, 40)};
    // Wrapping must not change distances to any fixed point.
    const Vec3 q = rng.uniform_in_box(box.lengths());
    EXPECT_NEAR(box.distance(p, q), box.distance(box.wrap(p), q), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BoxProperty,
                         ::testing::Values(Vec3{10, 10, 10},
                                           Vec3{8, 16, 32},
                                           Vec3{21.3, 9.7, 14.1},
                                           Vec3{5, 50, 5}));

// --- FFT across sizes -------------------------------------------------------

class FftProperty : public ::testing::TestWithParam<int> {};

TEST_P(FftProperty, RoundTripAndParseval) {
  const int n = GetParam();
  FftPlan plan(n);
  Rng rng(103, static_cast<uint64_t>(n));
  std::vector<Complex> sig(static_cast<size_t>(n));
  for (auto& v : sig) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = sig;
  double e_time = 0;
  for (const auto& v : sig) e_time += std::norm(v);

  plan.transform(sig, false);
  double e_freq = 0;
  for (const auto& v : sig) e_freq += std::norm(v);
  EXPECT_NEAR(e_freq / n, e_time, 1e-7 * std::max(1.0, e_time));

  plan.transform(sig, true);
  for (size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(sig[i].real(), orig[i].real(), 1e-9);
    EXPECT_NEAR(sig[i].imag(), orig[i].imag(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftProperty,
                         ::testing::Values(2, 4, 8, 32, 128, 512, 2048));

// --- Ewald alpha-independence across splitting parameters -------------------

class EwaldAlphaProperty : public ::testing::TestWithParam<double> {};

double total_coulomb_at_alpha(const Box& box,
                              const std::shared_ptr<Topology>& top,
                              const std::vector<Vec3>& pos, double alpha) {
  NeighborList nlist(5.8, 0.0);
  nlist.build(box, pos, *top);
  std::vector<Vec3> f(pos.size());
  EnergyReport e;
  md::compute_nonbonded(box, *top, nlist, pos, alpha, f, e);
  md::EwaldDirect ewald(box, alpha, 16);
  ewald.compute(*top, pos, f, e);
  e.coulomb_self += md::ewald_self_energy(*top, alpha);
  return e.coulomb_real + e.coulomb_kspace + e.coulomb_self;
}

TEST_P(EwaldAlphaProperty, TotalCoulombIndependentOfSplit) {
  const double alpha = GetParam();
  // Fixed small neutral charge gas.
  const Box box = Box::cube(12.0);
  ForceField ff = ForceField::standard();
  auto top = std::make_shared<Topology>(ff);
  std::vector<Vec3> pos;
  Rng rng(104, 0);
  for (int i = 0; i < 6; ++i) {
    top->add_atom(ForceField::Std::kION, i % 2 ? 1.0 : -1.0);
    pos.push_back(rng.uniform_in_box(box.lengths()));
  }
  top->finalize();

  const double total = total_coulomb_at_alpha(box, top, pos, alpha);
  const double reference = total_coulomb_at_alpha(box, top, pos, 0.70);
  EXPECT_NEAR(total, reference, std::abs(reference) * 5e-4 + 5e-3)
      << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, EwaldAlphaProperty,
                         ::testing::Values(0.55, 0.65, 0.75, 0.85));

// --- Neighbour list correctness across cutoffs -------------------------------

class NeighborListProperty : public ::testing::TestWithParam<double> {};

TEST_P(NeighborListProperty, PairCountMatchesBruteForce) {
  const double cutoff = GetParam();
  const System sys = build_water_box(216, 105, -1);
  NeighborList nlist(cutoff, 0.5);
  nlist.build(sys.box(), sys.positions(), sys.topology());
  int64_t brute = 0;
  const auto pos = sys.positions();
  const double rl2 = (cutoff + 0.5) * (cutoff + 0.5);
  for (int i = 0; i < sys.num_atoms(); ++i) {
    for (int j = i + 1; j < sys.num_atoms(); ++j) {
      if (sys.topology().excluded(i, j)) continue;
      if (sys.box().distance2(pos[static_cast<size_t>(i)],
                              pos[static_cast<size_t>(j)]) < rl2) {
        ++brute;
      }
    }
  }
  EXPECT_EQ(nlist.num_pairs(), brute) << "cutoff=" << cutoff;
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, NeighborListProperty,
                         ::testing::Values(3.0, 4.5, 6.0, 7.5));

// --- Workload pair partition across node grids -------------------------------

struct GridCase {
  int nx, ny, nz;
};

class WorkloadGridProperty : public ::testing::TestWithParam<GridCase> {};

TEST_P(WorkloadGridProperty, PairTotalInvariantUnderDecomposition) {
  const auto [nx, ny, nz] = GetParam();
  const System sys = build_water_box(729, 106, -1);
  auto make = [&](int a, int b, int c) {
    auto cfg = arch::MachineConfig::anton2(a, b, c);
    cfg.machine_cutoff = 6.0;
    return core::Workload::build(sys, cfg);
  };
  const auto reference = make(1, 1, 1);
  const auto w = make(nx, ny, nz);
  EXPECT_EQ(w.total_pairs(), reference.total_pairs());
  int atoms = 0;
  for (int v = 0; v < w.num_nodes(); ++v) atoms += w.node(v).atoms;
  EXPECT_EQ(atoms, sys.num_atoms());
}

INSTANTIATE_TEST_SUITE_P(Grids, WorkloadGridProperty,
                         ::testing::Values(GridCase{2, 1, 1},
                                           GridCase{2, 2, 1},
                                           GridCase{2, 2, 2},
                                           GridCase{3, 3, 3},
                                           GridCase{4, 2, 3}));

// --- Torus routing properties across random endpoints ------------------------

class TorusRouteProperty : public ::testing::TestWithParam<int> {};

TEST_P(TorusRouteProperty, RouteLengthEqualsHopCountAndIsMinimal) {
  const int dim = GetParam();
  sim::EventQueue q;
  noc::TorusConfig cfg;
  cfg.nx = dim;
  cfg.ny = dim;
  cfg.nz = dim;
  noc::Torus t(cfg, &q);
  Rng rng(107, static_cast<uint64_t>(dim));
  for (int trial = 0; trial < 100; ++trial) {
    const int src = static_cast<int>(rng.uniform_u64(
        static_cast<uint64_t>(t.num_nodes())));
    const int dst = static_cast<int>(rng.uniform_u64(
        static_cast<uint64_t>(t.num_nodes())));
    const auto route = t.route(src, dst);
    EXPECT_EQ(static_cast<int>(route.size()), t.hop_count(src, dst));
    // Symmetric distance.
    EXPECT_EQ(t.hop_count(src, dst), t.hop_count(dst, src));
    // Bounded by the torus diameter.
    EXPECT_LE(t.hop_count(src, dst), 3 * (dim / 2));
    // Route actually ends at dst: walk it.
    int cur = src;
    int cx, cy, cz;
    for (const auto& link : route) {
      EXPECT_EQ(link.node, cur);
      t.coords(cur, &cx, &cy, &cz);
      const int axis = link.dir / 2;
      const int step = (link.dir % 2 == 0) ? 1 : -1;
      int coords[3] = {cx, cy, cz};
      coords[axis] = (coords[axis] + step + dim) % dim;
      cur = t.rank(coords[0], coords[1], coords[2]);
    }
    EXPECT_EQ(cur, dst);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, TorusRouteProperty,
                         ::testing::Values(2, 3, 4, 8));

}  // namespace
}  // namespace anton
