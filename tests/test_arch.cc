#include <gtest/gtest.h>

#include "arch/config.h"
#include "core/timestep.h"

namespace anton::arch {
namespace {

TEST(MachineConfig, Anton2PresetDerivedRates) {
  const auto c = MachineConfig::anton2();
  // 76 PPIMs at 1.65 GHz, one pair per cycle each.
  EXPECT_NEAR(c.pair_rate_per_ns(), 76 * 1.65, 1e-9);
  // 64 cores x 4 lanes x 1.65 GHz.
  EXPECT_NEAR(c.gc_lane_rate_per_ns(), 64 * 4 * 1.65, 1e-9);
  EXPECT_EQ(c.sync, SyncModel::kEventDriven);
  EXPECT_EQ(c.noc.num_nodes(), 512);
}

TEST(MachineConfig, Anton1PresetIsSlowerEverywhere) {
  const auto a1 = MachineConfig::anton1();
  const auto a2 = MachineConfig::anton2();
  EXPECT_LT(a1.pair_rate_per_ns(), a2.pair_rate_per_ns());
  EXPECT_LT(a1.gc_lane_rate_per_ns(), a2.gc_lane_rate_per_ns());
  EXPECT_LT(a1.noc.link_bandwidth_gbs, a2.noc.link_bandwidth_gbs);
  EXPECT_GT(a1.noc.hop_latency_ns, a2.noc.hop_latency_ns);
  EXPECT_GT(a1.gc_task_overhead_ns, a2.gc_task_overhead_ns);
  EXPECT_EQ(a1.sync, SyncModel::kBulkSynchronous);
}

TEST(MachineConfig, BspVariantOnlyChangesSync) {
  const auto ev = MachineConfig::anton2();
  const auto bsp = MachineConfig::anton2_bsp();
  EXPECT_EQ(bsp.sync, SyncModel::kBulkSynchronous);
  EXPECT_EQ(bsp.ppims_per_node, ev.ppims_per_node);
  EXPECT_EQ(bsp.geometry_cores, ev.geometry_cores);
  EXPECT_DOUBLE_EQ(bsp.noc.link_bandwidth_gbs, ev.noc.link_bandwidth_gbs);
}

TEST(MachineConfig, TimeHelpers) {
  const auto c = MachineConfig::anton2();
  // 1254 pairs at 125.4 pairs/ns = 10 ns.
  EXPECT_NEAR(c.htis_time_ns(1254.0), 10.0, 1e-9);
  // gc_time: lane_cycles / (lanes * GHz).
  EXPECT_NEAR(c.gc_time_ns(c.gc_lane_rate_per_ns() * 7.0), 7.0, 1e-9);
  EXPECT_NEAR(c.htis_time_ns(0), 0.0, 1e-12);
}

TEST(MachineConfig, CustomTorusDims) {
  const auto c = MachineConfig::anton2(2, 4, 8);
  EXPECT_EQ(c.noc.nx, 2);
  EXPECT_EQ(c.noc.ny, 4);
  EXPECT_EQ(c.noc.nz, 8);
  EXPECT_EQ(c.noc.num_nodes(), 64);
}

TEST(BarrierCost, ScalesWithTorusRadius) {
  const auto small = MachineConfig::anton1(2, 2, 2);
  const auto large = MachineConfig::anton1(8, 8, 8);
  EXPECT_LT(core::barrier_cost_ns(small), core::barrier_cost_ns(large));
  // Base software cost is the floor.
  EXPECT_GE(core::barrier_cost_ns(small), small.barrier_base_ns);
}

}  // namespace
}  // namespace anton::arch
