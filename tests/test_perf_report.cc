// PerfReport arithmetic and estimate/run consistency on non-cubic and
// non-power-of-two machines.
#include <gtest/gtest.h>

#include "chem/builder.h"
#include "core/machine.h"

namespace anton::core {
namespace {

TEST(PerfReport, RespaWeightedAverage) {
  PerfReport r;
  r.respa_k = 3;
  r.full_step.step_ns = 3000;
  r.short_step.step_ns = 1500;
  EXPECT_NEAR(r.avg_step_ns(), (3000 + 2 * 1500) / 3.0, 1e-9);
  r.respa_k = 1;
  EXPECT_NEAR(r.avg_step_ns(), 3000.0, 1e-9);
}

TEST(PerfReport, NsPerDayIsThousandTimesUs) {
  PerfReport r;
  r.dt_fs = 2.0;
  r.respa_k = 1;
  r.full_step.step_ns = 5000;
  r.short_step.step_ns = 5000;
  EXPECT_NEAR(r.ns_per_day(), 1000.0 * r.us_per_day(), 1e-9);
}

TEST(Machine, NonCubicTorusWorks) {
  BuilderOptions o;
  o.total_atoms = 4000;
  o.solute_fraction = 0.1;
  o.temperature_k = -1;
  o.seed = 801;
  const System sys = build_solvated_system(o);
  const AntonMachine m(arch::MachineConfig::anton2(4, 2, 1));
  const PerfReport r = m.estimate(sys);
  EXPECT_EQ(r.nodes, 8);
  EXPECT_GT(r.us_per_day(), 0);
}

TEST(Machine, SingleNodeMachineWorks) {
  const System sys = build_water_box(512, 802, -1);
  const AntonMachine m(arch::MachineConfig::anton2(1, 1, 1));
  const PerfReport r = m.estimate(sys);
  EXPECT_GT(r.us_per_day(), 0);
  // No cross-node traffic: all pairwise work is one internal task.
  EXPECT_EQ(r.full_step.phase_ns("pair_tile"), 0.0);
}

TEST(Machine, EstimateMonotonicInMachineSpeed) {
  // Doubling the PPIM count can only help (or leave unchanged).
  BuilderOptions o;
  o.total_atoms = 6000;
  o.solute_fraction = 0.1;
  o.temperature_k = -1;
  o.seed = 803;
  const System sys = build_solvated_system(o);
  auto slow = arch::MachineConfig::anton2(2, 2, 2);
  auto fast = slow;
  fast.ppims_per_node *= 2;
  const double v_slow =
      AntonMachine(slow).estimate(sys).us_per_day();
  const double v_fast =
      AntonMachine(fast).estimate(sys).us_per_day();
  EXPECT_GE(v_fast, v_slow * 0.999);
}

TEST(Machine, MoreNodesHelpThisWorkload) {
  const System sys = build_benchmark_system(dhfr_spec());
  const double v8 =
      AntonMachine(arch::MachineConfig::anton2(2, 2, 2)).estimate(sys).us_per_day();
  const double v64 =
      AntonMachine(arch::MachineConfig::anton2(4, 4, 4)).estimate(sys).us_per_day();
  EXPECT_GT(v64, v8);
}

}  // namespace
}  // namespace anton::core
