#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "chem/forcefield.h"
#include "chem/system.h"
#include "chem/topology.h"
#include "common/units.h"

namespace anton {
namespace {

TEST(ForceField, CombinationRules) {
  const ForceField ff = ForceField::standard();
  const auto ow = ff.find_type("OW");
  const auto cb = ff.find_type("CB");
  const LjPair p = ff.lj(ow, cb);
  EXPECT_NEAR(p.sigma, 0.5 * (3.1507 + 3.9000), 1e-12);
  EXPECT_NEAR(p.eps, std::sqrt(0.1521 * 0.0860), 1e-12);
  // Symmetric.
  const LjPair q = ff.lj(cb, ow);
  EXPECT_DOUBLE_EQ(p.sigma, q.sigma);
  EXPECT_DOUBLE_EQ(p.eps, q.eps);
}

TEST(ForceField, FindTypeThrowsOnUnknown) {
  const ForceField ff = ForceField::standard();
  EXPECT_THROW(ff.find_type("XX"), Error);
}

TEST(Topology, LinearChainExclusions) {
  // 5-bead chain 0-1-2-3-4: 1-2 and 1-3 neighbours excluded, 1-4 scaled.
  ForceField ff = ForceField::standard();
  Topology top(ff);
  for (int i = 0; i < 5; ++i) top.add_atom(ForceField::Std::kCB, 0.0);
  for (int i = 0; i < 4; ++i) top.add_bond({i, i + 1, 300.0, 1.5});
  top.finalize();

  EXPECT_TRUE(top.excluded(0, 1));   // 1-2
  EXPECT_TRUE(top.excluded(0, 2));   // 1-3
  EXPECT_TRUE(top.excluded(0, 3));   // 1-4 (excluded from plain loop)
  EXPECT_FALSE(top.excluded(0, 4));  // 1-5 fully interacting
  EXPECT_TRUE(top.excluded(2, 1));   // order-independent

  ASSERT_EQ(top.pairs14().size(), 2u);  // (0,3) and (1,4)
  EXPECT_EQ(top.pairs14()[0].i, 0);
  EXPECT_EQ(top.pairs14()[0].j, 3);
}

TEST(Topology, ConstraintsActAsBondsForExclusions) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  for (int i = 0; i < 3; ++i) top.add_atom(ForceField::Std::kOW, 0.0);
  top.add_constraint({0, 1, 1.0});
  top.add_constraint({0, 2, 1.0});
  top.finalize();
  EXPECT_TRUE(top.excluded(0, 1));
  EXPECT_TRUE(top.excluded(1, 2));  // 1-3 via the shared oxygen
}

TEST(Topology, ValidationCatchesBadIndices) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  EXPECT_THROW(top.add_bond({0, 5, 300.0, 1.5}), Error);
  EXPECT_THROW(top.add_bond({0, 0, 300.0, 1.5}), Error);
}

TEST(Topology, DegreesOfFreedom) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  for (int i = 0; i < 3; ++i) top.add_atom(ForceField::Std::kOW, 0.0);
  top.add_constraint({0, 1, 1.0});
  top.finalize();
  EXPECT_EQ(top.degrees_of_freedom(), 9 - 1);
}

TEST(WaterBox, ExactCountsAndGeometry) {
  const System sys = build_water_box(64, 1);
  EXPECT_EQ(sys.num_atoms(), 192);
  const Topology& top = sys.topology();
  EXPECT_EQ(top.waters().size(), 64u);
  EXPECT_EQ(top.constraints().size(), 192u);  // 3 per water
  EXPECT_EQ(top.num_molecules(), 64);

  // Rigid geometry: O-H = 0.9572 Å on every water, right out of the builder.
  const auto pos = sys.positions();
  for (const auto& w : top.waters()) {
    const double oh1 = sys.box().distance(pos[static_cast<size_t>(w.o)],
                                          pos[static_cast<size_t>(w.h1)]);
    EXPECT_NEAR(oh1, 0.9572, 1e-9);
    const double hh = sys.box().distance(pos[static_cast<size_t>(w.h1)],
                                         pos[static_cast<size_t>(w.h2)]);
    EXPECT_NEAR(hh, 2 * 0.9572 * std::sin(104.52 * M_PI / 360.0), 1e-9);
  }
}

TEST(WaterBox, DensityMatchesLiquidWater) {
  const System sys = build_water_box(512, 2);
  const double atoms_per_a3 = sys.num_atoms() / sys.box().volume();
  EXPECT_NEAR(atoms_per_a3, units::kWaterAtomsPerA3, 1e-6);
}

TEST(WaterBox, Neutral) {
  const System sys = build_water_box(100, 3);
  EXPECT_NEAR(sys.topology().total_charge(), 0.0, 1e-9);
}

TEST(SolvatedSystem, ExactAtomCount) {
  BuilderOptions o;
  o.total_atoms = 5000;
  o.solute_fraction = 0.1;
  o.temperature_k = -1;  // skip velocity assignment for speed
  const System sys = build_solvated_system(o);
  EXPECT_EQ(sys.num_atoms(), 5000);
  EXPECT_NEAR(sys.topology().total_charge(), 0.0, 1e-9);
}

TEST(SolvatedSystem, HasAllBondedTermTypes) {
  BuilderOptions o;
  o.total_atoms = 3000;
  o.solute_fraction = 0.15;
  o.temperature_k = -1;
  const System sys = build_solvated_system(o);
  const Topology& top = sys.topology();
  EXPECT_GT(top.bonds().size(), 0u);
  EXPECT_GT(top.angles().size(), 0u);
  EXPECT_GT(top.dihedrals().size(), 0u);
  EXPECT_GT(top.pairs14().size(), 0u);
  EXPECT_GT(top.waters().size(), 0u);
}

TEST(SolvatedSystem, NoSevereOverlaps) {
  BuilderOptions o;
  o.total_atoms = 4000;
  o.solute_fraction = 0.1;
  o.temperature_k = -1;
  const System sys = build_solvated_system(o);
  const auto pos = sys.positions();
  // Spot check: water oxygens should not sit on top of each other.  Full
  // O(N²) on 4000 atoms is fine in a test.
  const Topology& top = sys.topology();
  int close = 0;
  for (const auto& wa : top.waters()) {
    for (const auto& wb : top.waters()) {
      if (wa.o >= wb.o) continue;
      if (sys.box().distance2(pos[static_cast<size_t>(wa.o)],
                              pos[static_cast<size_t>(wb.o)]) < 2.0 * 2.0) {
        ++close;
      }
    }
  }
  EXPECT_EQ(close, 0);
}

TEST(SolvatedSystem, DhfrSpecMatchesPaperCount) {
  const BenchmarkSpec spec = dhfr_spec();
  EXPECT_EQ(spec.total_atoms, 23558);  // the abstract's standard benchmark
}

TEST(System, VelocityAssignmentHitsTemperature) {
  System sys = build_water_box(216, 4, -1);
  sys.assign_velocities(300.0, 99);
  EXPECT_NEAR(sys.temperature(), 300.0, 1e-6);
  const Vec3 p = sys.center_of_mass_velocity();
  EXPECT_NEAR(norm(p), 0.0, 1e-9);
}

TEST(System, VelocityAssignmentDeterministic) {
  System a = build_water_box(64, 5, -1);
  System b = build_water_box(64, 5, -1);
  a.assign_velocities(300.0, 7);
  b.assign_velocities(300.0, 7);
  for (int i = 0; i < a.num_atoms(); ++i) {
    EXPECT_EQ(a.velocities()[static_cast<size_t>(i)],
              b.velocities()[static_cast<size_t>(i)]);
  }
}

TEST(System, KineticEnergyMatchesEquipartition) {
  System sys = build_water_box(216, 6, -1);
  sys.assign_velocities(300.0, 1);
  const double expected =
      0.5 * sys.topology().degrees_of_freedom() * units::kBoltzmann * 300.0;
  EXPECT_NEAR(sys.kinetic_energy(), expected, 1e-6);
}

TEST(TestMolecule, HasBondedTermsAndIsSmall) {
  const System sys = build_test_molecule(1);
  EXPECT_GE(sys.num_atoms(), 4);
  EXPECT_GT(sys.topology().bonds().size(), 0u);
  EXPECT_GT(sys.topology().dihedrals().size(), 0u);
}

TEST(BenchmarkSuite, OrderedBySize) {
  const auto suite = benchmark_suite();
  ASSERT_GE(suite.size(), 3u);
  for (size_t i = 1; i < suite.size(); ++i) {
    EXPECT_GT(suite[i].total_atoms, suite[i - 1].total_atoms);
  }
}

}  // namespace
}  // namespace anton
