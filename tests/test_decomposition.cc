#include <gtest/gtest.h>

#include "chem/builder.h"
#include "core/decomposition_study.h"

namespace anton::core {
namespace {

arch::MachineConfig machine(int n, double cutoff) {
  auto cfg = arch::MachineConfig::anton2(n, n, n);
  cfg.machine_cutoff = cutoff;
  return cfg;
}

TEST(DecompositionStudy, SchemesCoverIdenticalPairSets) {
  const System sys = build_water_box(729, 401, -1);
  const auto cfg = machine(3, 6.0);
  const auto hs =
      analyze_decomposition(sys, cfg, DecompositionScheme::kHalfShell);
  const auto nt =
      analyze_decomposition(sys, cfg, DecompositionScheme::kNeutralTerritory);
  EXPECT_EQ(hs.total_pairs, nt.total_pairs);
  EXPECT_GT(hs.total_pairs, 0);
}

TEST(DecompositionStudy, SingleNodeNeedsNoImports) {
  const System sys = build_water_box(216, 402, -1);
  const auto cfg = machine(1, 6.0);
  const auto hs =
      analyze_decomposition(sys, cfg, DecompositionScheme::kHalfShell);
  EXPECT_DOUBLE_EQ(hs.mean_import_per_node(), 0.0);
  EXPECT_DOUBLE_EQ(hs.total_import_bytes, 0.0);
}

TEST(DecompositionStudy, ImportExportBalance) {
  // Total copies exported must equal total copies imported.
  const System sys = build_water_box(729, 403, -1);
  const auto cfg = machine(3, 6.0);
  for (auto scheme : {DecompositionScheme::kHalfShell,
                      DecompositionScheme::kNeutralTerritory}) {
    const auto s = analyze_decomposition(sys, cfg, scheme);
    EXPECT_NEAR(s.imported_atoms.sum(), s.exported_copies.sum(), 1e-9);
  }
}

TEST(DecompositionStudy, NtWinsAtFineDecomposition) {
  // Home boxes much smaller than the cutoff: the NT tower+plate import
  // volume beats the half-shell import.
  BuilderOptions o;
  o.total_atoms = 12000;
  o.solute_fraction = 0;
  o.temperature_k = -1;
  o.seed = 404;
  const System sys = build_solvated_system(o);  // box ~49 Å
  const auto cfg = machine(6, 9.0);             // home boxes ~8.2 Å < cutoff
  const auto hs =
      analyze_decomposition(sys, cfg, DecompositionScheme::kHalfShell);
  const auto nt =
      analyze_decomposition(sys, cfg, DecompositionScheme::kNeutralTerritory);
  EXPECT_LT(nt.mean_import_per_node(), hs.mean_import_per_node());
}

TEST(DecompositionStudy, HalfShellWinsAtCoarseDecomposition) {
  const System sys = build_water_box(1000, 405, -1);  // box ~31 Å
  const auto cfg = machine(2, 6.0);  // home boxes 15.5 Å >> cutoff
  const auto hs =
      analyze_decomposition(sys, cfg, DecompositionScheme::kHalfShell);
  const auto nt =
      analyze_decomposition(sys, cfg, DecompositionScheme::kNeutralTerritory);
  EXPECT_LE(hs.mean_import_per_node(), nt.mean_import_per_node());
}

TEST(DecompositionStudy, ImportBytesScaleWithPositionSize) {
  const System sys = build_water_box(729, 406, -1);
  auto cfg = machine(3, 6.0);
  cfg.bytes_per_position = 8.0;
  const auto a =
      analyze_decomposition(sys, cfg, DecompositionScheme::kHalfShell);
  cfg.bytes_per_position = 16.0;
  const auto b =
      analyze_decomposition(sys, cfg, DecompositionScheme::kHalfShell);
  EXPECT_NEAR(b.total_import_bytes, 2.0 * a.total_import_bytes, 1e-6);
}

}  // namespace
}  // namespace anton::core
