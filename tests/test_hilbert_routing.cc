// Tests for the Hilbert curve and the randomised-order routing policy.
#include <gtest/gtest.h>

#include <set>

#include "common/hilbert.h"
#include "common/rng.h"
#include "geom/sort.h"
#include "noc/torus.h"

namespace anton {
namespace {

class HilbertBits : public ::testing::TestWithParam<int> {};

TEST_P(HilbertBits, EncodeDecodeRoundTrip) {
  const int bits = GetParam();
  Rng rng(601, static_cast<uint64_t>(bits));
  const uint32_t max = 1u << bits;
  for (int t = 0; t < 500; ++t) {
    const uint32_t x = static_cast<uint32_t>(rng.uniform_u64(max));
    const uint32_t y = static_cast<uint32_t>(rng.uniform_u64(max));
    const uint32_t z = static_cast<uint32_t>(rng.uniform_u64(max));
    const auto d = hilbert_decode(hilbert_encode(x, y, z, bits), bits);
    EXPECT_EQ(d.x, x);
    EXPECT_EQ(d.y, y);
    EXPECT_EQ(d.z, z);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, HilbertBits, ::testing::Values(1, 2, 4, 8));

TEST(Hilbert, CurveIsBijective) {
  const int bits = 2;  // 64 cells
  std::set<uint64_t> seen;
  for (uint32_t x = 0; x < 4; ++x) {
    for (uint32_t y = 0; y < 4; ++y) {
      for (uint32_t z = 0; z < 4; ++z) {
        EXPECT_TRUE(seen.insert(hilbert_encode(x, y, z, bits)).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 63u);
}

TEST(Hilbert, ConsecutiveIndicesAreFaceAdjacent) {
  // The defining property of the Hilbert curve (Morton does NOT have it).
  const int bits = 3;  // 512 cells
  auto prev = hilbert_decode(0, bits);
  for (uint64_t h = 1; h < 512; ++h) {
    const auto cur = hilbert_decode(h, bits);
    const int manhattan =
        std::abs(static_cast<int>(cur.x) - static_cast<int>(prev.x)) +
        std::abs(static_cast<int>(cur.y) - static_cast<int>(prev.y)) +
        std::abs(static_cast<int>(cur.z) - static_cast<int>(prev.z));
    EXPECT_EQ(manhattan, 1) << "jump at h=" << h;
    prev = cur;
  }
}

TEST(Hilbert, SortBeatsMortonOnLocality) {
  const Box box({32, 32, 32});
  Rng rng(602, 0);
  std::vector<Vec3> pos;
  for (int i = 0; i < 3000; ++i) pos.push_back(rng.uniform_in_box(box.lengths()));
  auto mean_step = [&](const std::vector<int>& perm) {
    const auto sorted = apply_permutation(std::span<const Vec3>(pos),
                                          std::span<const int>(perm));
    double acc = 0;
    for (size_t i = 1; i < sorted.size(); ++i) {
      acc += box.distance(sorted[i - 1], sorted[i]);
    }
    return acc / static_cast<double>(sorted.size() - 1);
  };
  const double hilbert = mean_step(hilbert_order(box, pos));
  const double morton = mean_step(morton_order(box, pos));
  EXPECT_LT(hilbert, morton);
}

TEST(RandomizedRouting, RoutesRemainMinimalAndCorrect) {
  noc::TorusConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 4;
  cfg.routing = noc::RoutingPolicy::kRandomizedOrder;
  sim::EventQueue q;
  noc::Torus t(cfg, &q);
  Rng rng(603, 0);
  for (int trial = 0; trial < 200; ++trial) {
    const int src = static_cast<int>(rng.uniform_u64(64));
    const int dst = static_cast<int>(rng.uniform_u64(64));
    const auto route = t.route(src, dst);
    EXPECT_EQ(static_cast<int>(route.size()), t.hop_count(src, dst));
    int cur = src;
    for (const auto& link : route) {
      EXPECT_EQ(link.node, cur);
      int cx, cy, cz;
      t.coords(cur, &cx, &cy, &cz);
      int c[3] = {cx, cy, cz};
      const int axis = link.dir / 2;
      c[axis] = (c[axis] + (link.dir % 2 == 0 ? 1 : -1) + 4) % 4;
      cur = t.rank(c[0], c[1], c[2]);
    }
    EXPECT_EQ(cur, dst);
  }
}

TEST(RandomizedRouting, SpreadsPathsAcrossFamilies) {
  noc::TorusConfig cfg;
  cfg.nx = cfg.ny = cfg.nz = 4;
  cfg.routing = noc::RoutingPolicy::kRandomizedOrder;
  sim::EventQueue q;
  noc::Torus t(cfg, &q);
  const int src = t.rank(0, 0, 0), dst = t.rank(1, 1, 1);
  std::set<int> first_dirs;
  for (int i = 0; i < 60; ++i) {
    first_dirs.insert(t.route(src, dst)[0].dir);
  }
  // A 3-axis diagonal has 3 possible first steps; DOR always takes +x.
  EXPECT_GE(first_dirs.size(), 2u);
}

TEST(RandomizedRouting, MulticastTreesStayDimensionOrdered) {
  // Tree prefix sharing requires deterministic routes; randomised policy
  // must not change multicast traffic volume.
  auto tree_bytes = [](noc::RoutingPolicy policy) {
    noc::TorusConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.routing = policy;
    cfg.packet_overhead_bytes = 0;
    sim::EventQueue q;
    noc::Torus t(cfg, &q);
    std::vector<int> dsts;
    for (int n = 1; n < 16; ++n) dsts.push_back(n);
    t.multicast(0, dsts, 1000.0, [](int) {});
    q.run();
    return t.stats().total_bytes;
  };
  EXPECT_DOUBLE_EQ(tree_bytes(noc::RoutingPolicy::kDimensionOrder),
                   tree_bytes(noc::RoutingPolicy::kRandomizedOrder));
}

TEST(RandomizedRouting, RelievesHotspotUnderConvergingTraffic) {
  // Many nodes in an x-row sending to the same destination: DOR funnels all
  // of it through the destination's -x/+x links; randomised order spreads
  // it.  Compare completion times.
  auto run = [](noc::RoutingPolicy policy) {
    noc::TorusConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.routing = policy;
    cfg.hop_latency_ns = 10;
    cfg.injection_overhead_ns = 0;
    cfg.packet_overhead_bytes = 0;
    sim::EventQueue q;
    noc::Torus t(cfg, &q);
    const int dst = t.rank(2, 2, 2);
    for (int x = 0; x < 4; ++x) {
      for (int y = 0; y < 4; ++y) {
        for (int z = 0; z < 4; ++z) {
          const int src = t.rank(x, y, z);
          if (src == dst) continue;
          t.unicast(src, dst, 2000.0, [] {});
        }
      }
    }
    return q.run();
  };
  const double t_dor = run(noc::RoutingPolicy::kDimensionOrder);
  const double t_rnd = run(noc::RoutingPolicy::kRandomizedOrder);
  // All traffic terminates at one node either way (its 6 inbound links are
  // the true bottleneck), but the randomised scheme balances the upstream
  // segments, so it must not be slower.
  EXPECT_LE(t_rnd, t_dor * 1.02);
}

}  // namespace
}  // namespace anton
