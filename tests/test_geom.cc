#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "geom/box.h"
#include "geom/cells.h"
#include "geom/decomp.h"
#include "geom/sort.h"

namespace anton {
namespace {

TEST(Box, WrapIntoPrimaryCell) {
  const Box box({10, 20, 30});
  const Vec3 w = box.wrap({-1, 25, 61});
  EXPECT_NEAR(w.x, 9, 1e-12);
  EXPECT_NEAR(w.y, 5, 1e-12);
  EXPECT_NEAR(w.z, 1, 1e-12);
}

TEST(Box, WrapIsIdempotent) {
  const Box box({7.5, 7.5, 7.5});
  Rng rng(1, 0);
  for (int i = 0; i < 1000; ++i) {
    const Vec3 p{rng.uniform(-100, 100), rng.uniform(-100, 100),
                 rng.uniform(-100, 100)};
    const Vec3 w = box.wrap(p);
    EXPECT_GE(w.x, 0);
    EXPECT_LT(w.x, 7.5);
    const Vec3 w2 = box.wrap(w);
    EXPECT_NEAR(w.x, w2.x, 1e-12);
    EXPECT_NEAR(w.y, w2.y, 1e-12);
    EXPECT_NEAR(w.z, w2.z, 1e-12);
  }
}

TEST(Box, MinImageShorterThanHalfBox) {
  const Box box({10, 10, 10});
  Rng rng(2, 0);
  for (int i = 0; i < 2000; ++i) {
    const Vec3 a = rng.uniform_in_box(box.lengths());
    const Vec3 b = rng.uniform_in_box(box.lengths());
    const Vec3 d = box.min_image(a, b);
    EXPECT_LE(std::abs(d.x), 5.0 + 1e-12);
    EXPECT_LE(std::abs(d.y), 5.0 + 1e-12);
    EXPECT_LE(std::abs(d.z), 5.0 + 1e-12);
  }
}

TEST(Box, MinImageCrossesBoundary) {
  const Box box({10, 10, 10});
  const Vec3 d = box.min_image({9.5, 0, 0}, {0.5, 0, 0});
  EXPECT_NEAR(d.x, -1.0, 1e-12);  // through the boundary, not across the box
  EXPECT_NEAR(box.distance({9.5, 0, 0}, {0.5, 0, 0}), 1.0, 1e-12);
}

TEST(Box, MinImageInvariantUnderWrapping) {
  const Box box({13, 17, 19});
  Rng rng(3, 0);
  for (int i = 0; i < 500; ++i) {
    const Vec3 a{rng.uniform(-50, 50), rng.uniform(-50, 50),
                 rng.uniform(-50, 50)};
    const Vec3 b{rng.uniform(-50, 50), rng.uniform(-50, 50),
                 rng.uniform(-50, 50)};
    EXPECT_NEAR(box.distance(a, b), box.distance(box.wrap(a), box.wrap(b)),
                1e-9);
  }
}

TEST(Box, MaxCutoff) {
  EXPECT_DOUBLE_EQ(Box({10, 20, 30}).max_cutoff(), 5.0);
}

TEST(Box, RejectsNonPositive) {
  EXPECT_THROW(Box({0, 1, 1}), Error);
  EXPECT_THROW(Box({1, -2, 1}), Error);
}

TEST(CellGrid, DimsRespectMinCell) {
  const Box box({30, 30, 30});
  CellGrid grid(box, 4.5);
  EXPECT_EQ(grid.nx(), 6);  // 30/4.5 = 6.67 -> 6 cells of 5.0
  EXPECT_GE(grid.cell_lengths().x, 4.5);
}

TEST(CellGrid, BinningIsComplete) {
  const Box box({20, 20, 20});
  CellGrid grid(box, 5.0);
  Rng rng(4, 0);
  std::vector<Vec3> pos;
  for (int i = 0; i < 500; ++i) pos.push_back(rng.uniform_in_box(box.lengths()));
  grid.bin(pos);
  std::set<int> seen;
  for (int c = 0; c < grid.num_cells(); ++c) {
    for (int a : grid.cell_atoms(c)) {
      EXPECT_TRUE(seen.insert(a).second) << "atom binned twice";
      EXPECT_EQ(grid.cell_of(pos[static_cast<size_t>(a)]), c);
    }
  }
  EXPECT_EQ(seen.size(), pos.size());
}

TEST(CellGrid, StencilUnique) {
  const Box box({40, 40, 40});
  CellGrid grid(box, 5.0);  // 8x8x8 cells
  const auto s = grid.stencil(grid.index(3, 3, 3));
  EXPECT_EQ(s.size(), 27u);
  const auto h = grid.half_stencil(grid.index(3, 3, 3));
  EXPECT_EQ(h.size(), 14u);
}

TEST(CellGrid, HalfStencilCoversAllPairsOnce) {
  // Every unordered pair of nearby cells must appear exactly once across all
  // half-stencils.
  const Box box({20, 20, 20});
  CellGrid grid(box, 5.0);  // 4x4x4
  std::multiset<std::pair<int, int>> covered;
  for (int c = 0; c < grid.num_cells(); ++c) {
    for (int n : grid.half_stencil(c)) {
      covered.insert({std::min(c, n), std::max(c, n)});
    }
  }
  // Each adjacent distinct cell pair appears exactly once.
  for (const auto& p : covered) {
    if (p.first != p.second) {
      EXPECT_EQ(covered.count(p), 1u) << p.first << "," << p.second;
    }
  }
}

TEST(DomainDecomp, RanksAndCoordsRoundTrip) {
  const Box box({80, 80, 80});
  DomainDecomp dd(box, 4, 2, 8);
  EXPECT_EQ(dd.num_nodes(), 64);
  for (int r = 0; r < dd.num_nodes(); ++r) {
    int x, y, z;
    dd.coords(r, &x, &y, &z);
    EXPECT_EQ(dd.rank(x, y, z), r);
  }
}

TEST(DomainDecomp, NodeAssignmentsPartition) {
  const Box box({64, 64, 64});
  DomainDecomp dd(box, 4, 4, 4);
  Rng rng(5, 0);
  std::vector<Vec3> pos;
  for (int i = 0; i < 4000; ++i) pos.push_back(rng.uniform_in_box(box.lengths()));
  const auto counts = dd.counts(pos);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 4000);
  // Uniform positions: every node gets something close to the mean.
  for (int c : counts) {
    EXPECT_GT(c, 20);
    EXPECT_LT(c, 120);
  }
}

TEST(DomainDecomp, ImportOffsetsFaceOnly) {
  // Home box 16 Å, cutoff 10 Å < 16: only the 26 surrounding boxes.
  const Box box({128, 128, 128});
  DomainDecomp dd(box, 8, 8, 8);
  const auto full = dd.import_offsets(10.0, ImportShell::kFull);
  EXPECT_EQ(full.size(), 26u);
  const auto half = dd.import_offsets(10.0, ImportShell::kHalf);
  EXPECT_EQ(half.size(), 13u);
}

TEST(DomainDecomp, ImportOffsetsGrowWithCutoff) {
  const Box box({128, 128, 128});
  DomainDecomp dd(box, 8, 8, 8);  // 16 Å home boxes
  const auto near = dd.import_offsets(10.0, ImportShell::kFull);
  const auto far = dd.import_offsets(20.0, ImportShell::kFull);
  EXPECT_GT(far.size(), near.size());
  // 20 Å reaches boxes two away along an axis (gap = 16 < 20) but not the
  // far corners (gap = sqrt(3)*16 = 27.7 > 20).
  const auto has = [&](int x, int y, int z) {
    return std::find(far.begin(), far.end(), NodeOffset{x, y, z}) != far.end();
  };
  EXPECT_TRUE(has(2, 0, 0));
  EXPECT_FALSE(has(2, 2, 2));
}

TEST(DomainDecomp, HalfShellIsExactComplement) {
  const Box box({96, 96, 96});
  DomainDecomp dd(box, 6, 6, 6);
  const auto full = dd.import_offsets(12.0, ImportShell::kFull);
  const auto half = dd.import_offsets(12.0, ImportShell::kHalf);
  EXPECT_EQ(full.size(), 2 * half.size());
  for (const auto& off : half) {
    const NodeOffset neg{-off.dx, -off.dy, -off.dz};
    EXPECT_NE(std::find(full.begin(), full.end(), neg), full.end());
    EXPECT_EQ(std::count(half.begin(), half.end(), neg), 0);
  }
}

TEST(DomainDecomp, NeighborRankWraps) {
  const Box box({40, 40, 40});
  DomainDecomp dd(box, 4, 4, 4);
  const int r = dd.rank(3, 0, 0);
  EXPECT_EQ(dd.neighbor_rank(r, {1, 0, 0}), dd.rank(0, 0, 0));
  EXPECT_EQ(dd.neighbor_rank(r, {0, -1, 0}), dd.rank(3, 3, 0));
}

TEST(MortonSort, ProducesValidPermutation) {
  const Box box({32, 32, 32});
  Rng rng(6, 0);
  std::vector<Vec3> pos;
  for (int i = 0; i < 1000; ++i) pos.push_back(rng.uniform_in_box(box.lengths()));
  const auto perm = morton_order(box, pos);
  std::set<int> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), pos.size());
}

TEST(MortonSort, ImprovesLocality) {
  // Mean distance between consecutive atoms should shrink after sorting.
  const Box box({32, 32, 32});
  Rng rng(7, 0);
  std::vector<Vec3> pos;
  for (int i = 0; i < 2000; ++i) pos.push_back(rng.uniform_in_box(box.lengths()));
  const auto perm = morton_order(box, pos);
  const auto sorted =
      apply_permutation(std::span<const Vec3>(pos), std::span<const int>(perm));
  auto mean_step = [&](const std::vector<Vec3>& v) {
    double acc = 0;
    for (size_t i = 1; i < v.size(); ++i) acc += box.distance(v[i - 1], v[i]);
    return acc / static_cast<double>(v.size() - 1);
  };
  EXPECT_LT(mean_step(sorted), 0.5 * mean_step(pos));
}

}  // namespace
}  // namespace anton
