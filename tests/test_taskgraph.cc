#include <gtest/gtest.h>

#include "core/taskgraph.h"

namespace anton::core {
namespace {

arch::MachineConfig bare_machine() {
  arch::MachineConfig c = arch::MachineConfig::anton2(2, 2, 2);
  // Strip overheads so timing assertions are exact.
  c.htis_task_overhead_ns = 0;
  c.gc_task_overhead_ns = 0;
  c.sync_trigger_ns = 0;
  c.noc.hop_latency_ns = 10;
  c.noc.injection_overhead_ns = 0;
  c.noc.packet_overhead_bytes = 0;
  c.noc.link_bandwidth_gbs = 1.0;  // 1 B/ns
  return c;
}

ExecStats run_graph(TaskGraph& g, const arch::MachineConfig& c) {
  sim::EventQueue q;
  noc::Torus t(c.noc, &q);
  return execute(g, c, t, q);
}

TEST(TaskGraph, SerialChainSumsBusyTimes) {
  const auto c = bare_machine();
  TaskGraph g;
  const int a = g.add_task(0, Unit::kGc, 100, "a");
  const int b = g.add_task(0, Unit::kGc, 50, "b");
  const int d = g.add_task(0, Unit::kGc, 25, "c");
  g.add_local_dep(a, b);
  g.add_local_dep(b, d);
  const auto s = run_graph(g, c);
  EXPECT_NEAR(s.makespan_ns, 175.0, 1e-9);
  EXPECT_EQ(s.tasks_executed, 3u);
}

TEST(TaskGraph, IndependentTasksOnOneUnitSerialize) {
  const auto c = bare_machine();
  TaskGraph g;
  g.add_task(0, Unit::kHtis, 100, "x");
  g.add_task(0, Unit::kHtis, 100, "x");
  const auto s = run_graph(g, c);
  EXPECT_NEAR(s.makespan_ns, 200.0, 1e-9);
}

TEST(TaskGraph, DifferentUnitsOverlap) {
  const auto c = bare_machine();
  TaskGraph g;
  g.add_task(0, Unit::kHtis, 100, "x");
  g.add_task(0, Unit::kGc, 100, "y");
  const auto s = run_graph(g, c);
  EXPECT_NEAR(s.makespan_ns, 100.0, 1e-9);
}

TEST(TaskGraph, DifferentNodesOverlap) {
  const auto c = bare_machine();
  TaskGraph g;
  g.add_task(0, Unit::kGc, 100, "x");
  g.add_task(1, Unit::kGc, 100, "x");
  const auto s = run_graph(g, c);
  EXPECT_NEAR(s.makespan_ns, 100.0, 1e-9);
  EXPECT_NEAR(s.max_node_busy_ns, 100.0, 1e-9);
  EXPECT_NEAR(s.mean_node_busy_ns, 200.0 / 8, 1e-9);
}

TEST(TaskGraph, MessageDependencyAddsNetworkLatency) {
  const auto c = bare_machine();
  TaskGraph g;
  const int a = g.add_task(0, Unit::kGc, 100, "a");  // node (0,0,0)
  const int b = g.add_task(1, Unit::kGc, 50, "b");   // node (1,0,0): 1 hop
  g.add_message(a, b, 200.0);  // 200 B at 1 B/ns = 200 ns
  const auto s = run_graph(g, c);
  // 100 (a) + 10 (hop) + 200 (wire) + 50 (b).
  EXPECT_NEAR(s.makespan_ns, 360.0, 1e-9);
}

TEST(TaskGraph, MulticastReachesAllDependents) {
  const auto c = bare_machine();
  TaskGraph g;
  const int src = g.add_task(0, Unit::kGc, 10, "src");
  std::vector<int> sinks;
  for (int n = 1; n < 8; ++n) {
    sinks.push_back(g.add_task(n, Unit::kGc, 5, "sink"));
  }
  g.add_multicast(src, sinks, 100.0);
  const auto s = run_graph(g, c);
  EXPECT_EQ(s.tasks_executed, 8u);
  EXPECT_GT(s.makespan_ns, 10.0);
}

TEST(TaskGraph, EventDrivenBeatsBspOnSameGraphShape) {
  // Two nodes each do compute A then exchange then compute B.  BSP inserts
  // a barrier; event-driven doesn't.  BSP must be slower.
  auto build = [](TaskGraph& g, bool bsp, double barrier_cost) {
    const int a0 = g.add_task(0, Unit::kGc, 100, "a");
    const int a1 = g.add_task(1, Unit::kGc, 150, "a");
    const int b0 = g.add_task(0, Unit::kGc, 100, "b");
    const int b1 = g.add_task(1, Unit::kGc, 100, "b");
    g.add_message(a0, b1, 50.0);
    g.add_message(a1, b0, 50.0);
    if (bsp) {
      const int bar = g.add_task(0, Unit::kSync, barrier_cost, "barrier");
      g.add_barrier_dep(a0, bar);
      g.add_barrier_dep(a1, bar);
      g.add_barrier_dep(bar, b0);
      g.add_barrier_dep(bar, b1);
    }
  };
  const auto c = bare_machine();
  TaskGraph ge, gb;
  build(ge, false, 0);
  build(gb, true, 200.0);
  const double te = run_graph(ge, c).makespan_ns;
  const double tb = run_graph(gb, c).makespan_ns;
  EXPECT_LT(te, tb);
}

TEST(TaskGraph, DeadlockDetected) {
  const auto c = bare_machine();
  TaskGraph g;
  const int a = g.add_task(0, Unit::kGc, 10, "a");
  const int b = g.add_task(0, Unit::kGc, 10, "b");
  g.add_local_dep(a, b);
  g.add_local_dep(b, a);  // cycle
  TaskGraph g2 = g;
  EXPECT_THROW(run_graph(g2, c), Error);
}

TEST(TaskGraph, PhaseAccounting) {
  const auto c = bare_machine();
  TaskGraph g;
  g.add_task(0, Unit::kGc, 100, "alpha");
  g.add_task(1, Unit::kGc, 60, "alpha");
  g.add_task(2, Unit::kGc, 40, "beta");
  const auto s = run_graph(g, c);
  EXPECT_NEAR(s.phase_busy_ns.at("alpha"), 160.0, 1e-9);
  EXPECT_NEAR(s.phase_busy_ns.at("beta"), 40.0, 1e-9);
  EXPECT_NEAR(s.phase_end_ns.at("alpha"), 100.0, 1e-9);
}

TEST(TaskGraph, DispatchOverheadsCharged) {
  auto c = bare_machine();
  c.gc_task_overhead_ns = 7;
  c.sync_trigger_ns = 3;  // event-driven: +3
  TaskGraph g;
  g.add_task(0, Unit::kGc, 100, "a");
  const auto s = run_graph(g, c);
  EXPECT_NEAR(s.makespan_ns, 110.0, 1e-9);
}

TEST(TaskGraph, ExecutorReuseIsDeterministic) {
  // One persistent Executor replaying the same graph must reproduce every
  // statistic exactly — makespan, both phase maps, and the critical path —
  // and leave the event pool balanced.  This is the machine run loop's
  // steady state (TimestepRunner replays its graph every step).
  const auto c = bare_machine();
  TaskGraph g;
  const int a = g.add_task(0, Unit::kGc, 100, "import");
  const int b = g.add_task(1, Unit::kHtis, 80, "pairs");
  const int d = g.add_task(1, Unit::kGc, 30, "update");
  g.add_message(a, b, 200.0);
  g.add_local_dep(b, d);
  std::vector<int> sinks;
  for (int n = 2; n < 6; ++n) {
    sinks.push_back(g.add_task(n, Unit::kGc, 5, "bcast"));
  }
  g.add_multicast(a, sinks, 64.0);

  sim::EventQueue q;
  noc::Torus t(c.noc, &q);
  Executor ex;
  const ExecStats first = ex.run(g, c, t, q);  // copy before the replay
  const size_t warm_slots = q.arena_slots();
  for (int rep = 0; rep < 3; ++rep) {
    q.reset();
    t.reset_time();
    const ExecStats& again = ex.run(g, c, t, q);
    EXPECT_EQ(first.makespan_ns, again.makespan_ns);
    EXPECT_EQ(first.tasks_executed, again.tasks_executed);
    EXPECT_EQ(first.phase_busy_ns, again.phase_busy_ns);
    EXPECT_EQ(first.phase_end_ns, again.phase_end_ns);
    EXPECT_EQ(first.critical_path_ns, again.critical_path_ns);
    EXPECT_EQ(first.critical_wait_ns, again.critical_wait_ns);
    EXPECT_EQ(first.max_node_busy_ns, again.max_node_busy_ns);
  }
  EXPECT_EQ(q.arena_slots(), warm_slots);
  q.check_arena();
  t.check_quiescent();
}

TEST(TaskGraph, LocalDepAcrossNodesRejected) {
  TaskGraph g;
  const int a = g.add_task(0, Unit::kGc, 1, "a");
  const int b = g.add_task(1, Unit::kGc, 1, "b");
  EXPECT_THROW(g.add_local_dep(a, b), Error);
  EXPECT_NO_THROW(g.add_barrier_dep(a, b));
}

}  // namespace
}  // namespace anton::core
