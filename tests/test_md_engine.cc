#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "md/engine.h"
#include "md/minimize.h"

namespace anton::md {
namespace {

MdParams fast_params() {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.0;
  p.respa_k = 1;
  p.long_range = LongRangeMethod::kMesh;
  p.mesh_spacing = 1.1;
  p.gse_sigma = 1.2;
  p.ewald_alpha = 0.35;
  return p;
}

TEST(Engine, NveEnergyConservationWaterBox) {
  System sys = build_water_box(125, 101);
  MdParams p = fast_params();
  Simulation sim(std::move(sys), p);
  sim.step(50);  // relax the synthetic lattice before measuring
  const double e0 = sim.energies().total();
  sim.step(200);
  const double e1 = sim.energies().total();
  // 200 fs of NVE: drift should be a small fraction of kinetic energy.
  const double ke = sim.system().kinetic_energy();
  EXPECT_LT(std::abs(e1 - e0), 0.01 * ke)
      << "E0=" << e0 << " E1=" << e1 << " KE=" << ke;
}

TEST(Engine, NveConservationWithSolute) {
  BuilderOptions o;
  o.total_atoms = 1500;
  o.solute_fraction = 0.12;
  o.seed = 102;
  System sys = build_solvated_system(o);
  MdParams p = fast_params();
  minimize_energy(sys, p, 300);  // relieve builder clashes
  sys.assign_velocities(300.0, o.seed);
  Simulation sim(std::move(sys), p);
  sim.step(50);  // relax the synthetic packing first
  const double e0 = sim.energies().total();
  sim.step(150);
  const double e1 = sim.energies().total();
  const double ke = sim.system().kinetic_energy();
  EXPECT_LT(std::abs(e1 - e0), 0.02 * ke);
}

TEST(Engine, ConstraintsHoldThroughDynamics) {
  System sys = build_water_box(125, 103);
  Simulation sim(std::move(sys), fast_params());
  sim.step(100);
  EXPECT_LT(max_constraint_violation(sim.system().box(),
                                     sim.system().topology(),
                                     sim.system().positions()),
            1e-6);
}

TEST(Engine, Deterministic) {
  auto run = [] {
    System sys = build_water_box(125, 104);
    Simulation sim(std::move(sys), fast_params());
    sim.step(25);
    return std::vector<Vec3>(sim.system().positions().begin(),
                             sim.system().positions().end());
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);  // bitwise
  }
}

TEST(Engine, RespaDriftBounded) {
  System sys = build_water_box(125, 105);
  MdParams p = fast_params();
  p.respa_k = 2;
  Simulation sim(std::move(sys), p);
  sim.step(50);
  const double e0 = sim.energies().total();
  sim.step(200);
  const double e1 = sim.energies().total();
  const double ke = sim.system().kinetic_energy();
  EXPECT_LT(std::abs(e1 - e0), 0.03 * ke);
}

TEST(Engine, RespaMatchesSingleStepOnShortHorizon) {
  // Over a handful of steps the RESPA trajectory should stay close to the
  // every-step reference.
  auto run = [](int k) {
    System sys = build_water_box(125, 106);
    MdParams p = fast_params();
    p.respa_k = k;
    Simulation sim(std::move(sys), p);
    sim.step(8);
    return std::vector<Vec3>(sim.system().positions().begin(),
                             sim.system().positions().end());
  };
  const auto ref = run(1);
  const auto respa = run(2);
  double max_dev = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    max_dev = std::max(max_dev, norm(ref[i] - respa[i]));
  }
  EXPECT_LT(max_dev, 5e-3);  // Å over 8 fs
}

TEST(Engine, LangevinThermostatsToTarget) {
  System sys = build_water_box(125, 107);
  sys.assign_velocities(100.0, 1);  // start cold
  MdParams p = fast_params();
  p.temperature_k = 300.0;
  p.langevin_gamma_per_fs = 0.05;
  Simulation sim(std::move(sys), p);
  sim.step(400);
  // Average over a window to beat fluctuations.
  double t_acc = 0;
  const int window = 50;
  for (int i = 0; i < window; ++i) {
    sim.step(2);
    t_acc += sim.system().temperature();
  }
  const double t_mean = t_acc / window;
  EXPECT_GT(t_mean, 240.0);
  EXPECT_LT(t_mean, 360.0);
}

TEST(Engine, KNoneRunsWithoutEwald) {
  System sys = build_water_box(125, 108);
  MdParams p = fast_params();
  p.long_range = LongRangeMethod::kNone;
  Simulation sim(std::move(sys), p);
  sim.step(20);
  const auto e = sim.energies();
  EXPECT_EQ(e.coulomb_kspace, 0.0);
  EXPECT_EQ(e.coulomb_self, 0.0);
  EXPECT_NE(e.coulomb_real, 0.0);
}

TEST(Engine, DirectAndMeshEnergiesAgree) {
  System sys_a = build_water_box(125, 109);
  System sys_b = sys_a;
  MdParams pa = fast_params();
  pa.long_range = LongRangeMethod::kDirect;
  pa.kspace_nmax = 10;
  MdParams pb = fast_params();
  pb.mesh_spacing = 0.8;
  Simulation sa(std::move(sys_a), pa);
  Simulation sb(std::move(sys_b), pb);
  const double ea = sa.energies().potential();
  const double eb = sb.energies().potential();
  EXPECT_NEAR(ea, eb, std::abs(ea) * 1e-3 + 0.5);
}

TEST(Engine, NeighborListRebuildsDuringRun) {
  System sys = build_water_box(125, 110);
  MdParams p = fast_params();
  p.temperature_k = 300.0;
  p.langevin_gamma_per_fs = 0.02;
  Simulation sim(std::move(sys), p);
  sim.step(300);
  EXPECT_GT(sim.forces().nlist_builds(), 1);
}

TEST(Engine, StepCountAdvances) {
  System sys = build_water_box(125, 111);
  Simulation sim(std::move(sys), fast_params());
  EXPECT_EQ(sim.step_count(), 0);
  sim.step(5);
  EXPECT_EQ(sim.step_count(), 5);
}

TEST(Engine, EnergyReportTermsPopulated) {
  BuilderOptions o;
  o.total_atoms = 900;
  o.solute_fraction = 0.2;
  o.seed = 112;
  System sys = build_solvated_system(o);
  minimize_energy(sys, fast_params(), 200);
  sys.assign_velocities(300.0, o.seed);
  Simulation sim(std::move(sys), fast_params());
  const auto e = sim.energies();
  EXPECT_NE(e.bond, 0.0);
  EXPECT_NE(e.angle, 0.0);
  EXPECT_NE(e.dihedral, 0.0);
  EXPECT_NE(e.lj, 0.0);
  EXPECT_NE(e.coulomb_real, 0.0);
  EXPECT_NE(e.coulomb_kspace, 0.0);
  EXPECT_LT(e.coulomb_self, 0.0);
  EXPECT_GT(e.kinetic, 0.0);
}

TEST(Engine, ThreadedMatchesSerialTrajectory) {
  auto run = [](ThreadPool* pool) {
    System sys = build_water_box(216, 113);
    Simulation sim(std::move(sys), fast_params(), pool);
    sim.step(10);
    return std::vector<Vec3>(sim.system().positions().begin(),
                             sim.system().positions().end());
  };
  ThreadPool pool(4);
  const auto serial = run(nullptr);
  const auto parallel = run(&pool);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(serial[i].x, parallel[i].x, 1e-8);
    EXPECT_NEAR(serial[i].y, parallel[i].y, 1e-8);
    EXPECT_NEAR(serial[i].z, parallel[i].z, 1e-8);
  }
}

// NVE drift stays bounded when the long-range path runs threaded with
// deterministic fixed-point reductions — the quantized mesh densities must
// not inject energy.
TEST(Engine, NveConservationThreadedDeterministic) {
  ThreadPool pool(4);
  System sys = build_water_box(125, 101);
  MdParams p = fast_params();
  p.deterministic_forces = true;
  Simulation sim(std::move(sys), p, &pool);
  sim.step(50);
  const double e0 = sim.energies().total();
  sim.step(200);
  const double e1 = sim.energies().total();
  const double ke = sim.system().kinetic_energy();
  EXPECT_LT(std::abs(e1 - e0), 0.01 * ke)
      << "E0=" << e0 << " E1=" << e1 << " KE=" << ke;
}

}  // namespace
}  // namespace anton::md
