// Failure injection: degraded links, overload behaviour, and the
// calibration lock that pins the headline reproduction numbers.
#include <gtest/gtest.h>

#include "chem/builder.h"
#include "core/machine.h"
#include "noc/torus.h"

namespace anton {
namespace {

noc::TorusConfig small_noc() {
  noc::TorusConfig c;
  c.nx = c.ny = c.nz = 4;
  c.link_bandwidth_gbs = 10.0;
  c.hop_latency_ns = 20.0;
  c.injection_overhead_ns = 5.0;
  c.packet_overhead_bytes = 0.0;
  return c;
}

TEST(FailureInjection, DeratedLinkSlowsTraffic) {
  sim::EventQueue q;
  noc::Torus t(small_noc(), &q);
  t.derate_link(t.rank(0, 0, 0), 0, 4.0);  // +x link of origin runs at 1/4

  double slow_at = 0, fast_at = 0;
  t.unicast(t.rank(0, 0, 0), t.rank(1, 0, 0), 1000.0,
            [&] { slow_at = q.now(); });
  t.unicast(t.rank(0, 1, 0), t.rank(1, 1, 0), 1000.0,
            [&] { fast_at = q.now(); });
  q.run();
  // Healthy: 5 + 20 + 100 = 125.  Derated: 5 + 20 + 400 = 425.
  EXPECT_NEAR(fast_at, 125.0, 1e-9);
  EXPECT_NEAR(slow_at, 425.0, 1e-9);
}

TEST(FailureInjection, ConfiguredDeratingAppliesAtConstruction) {
  auto cfg = small_noc();
  cfg.derated_links.push_back({0, 0, 8.0});
  sim::EventQueue q;
  noc::Torus t(cfg, &q);
  double at = 0;
  t.unicast(0, 1, 1000.0, [&] { at = q.now(); });
  q.run();
  EXPECT_NEAR(at, 5 + 20 + 800, 1e-9);
}

TEST(FailureInjection, RejectsInvalidDerating) {
  sim::EventQueue q;
  noc::Torus t(small_noc(), &q);
  EXPECT_THROW(t.derate_link(-1, 0, 2.0), Error);
  EXPECT_THROW(t.derate_link(0, 6, 2.0), Error);
  EXPECT_THROW(t.derate_link(0, 0, 0.5), Error);  // speedup not allowed
}

TEST(FailureInjection, MulticastRoutesThroughDeratedLinkSlowly) {
  sim::EventQueue q;
  noc::Torus t(small_noc(), &q);
  t.derate_link(t.rank(0, 0, 0), 0, 10.0);
  std::map<int, double> deliver;
  const std::vector<int> dsts{t.rank(1, 0, 0), t.rank(0, 1, 0)};
  t.multicast(t.rank(0, 0, 0), dsts, 1000.0, [&](int i) {
    deliver[dsts[static_cast<size_t>(i)]] = q.now();
  });
  q.run();
  // The +x branch crawls; the +y branch is unaffected.
  EXPECT_GT(deliver[t.rank(1, 0, 0)], 5 * deliver[t.rank(0, 1, 0)]);
}

TEST(FailureInjection, SlowLinkDegradesWholeTimestep) {
  // A single marginal link on the 64-node machine measurably stretches the
  // step: the event-driven schedule routes around nothing (routing is
  // deterministic), so a victim link becomes a straggler.
  BuilderOptions o;
  o.total_atoms = 6000;
  o.solute_fraction = 0.1;
  o.temperature_k = -1;
  o.seed = 501;
  const System sys = build_solvated_system(o);

  auto healthy = arch::MachineConfig::anton2(4, 4, 4);
  const double t_healthy =
      core::simulate_step(core::Workload::build(sys, healthy), healthy, {})
          .step_ns;

  auto degraded = healthy;
  degraded.noc.derated_links.push_back({0, 0, 50.0});
  degraded.noc.derated_links.push_back({0, 2, 50.0});
  const double t_degraded =
      core::simulate_step(core::Workload::build(sys, degraded), degraded, {})
          .step_ns;
  EXPECT_GT(t_degraded, 1.05 * t_healthy);
}

// --- calibration lock --------------------------------------------------------
// Pins the headline reproduction numbers so future changes to the machine
// model cannot silently drift away from the paper's claims.  Bands are
// deliberately loose (±20%); the claims under test are factors and shapes.

TEST(CalibrationLock, Dhfr512LandsNearPaperRate) {
  const System sys = build_benchmark_system(dhfr_spec());
  const auto r = core::AntonMachine(arch::MachineConfig::anton2())
                     .estimate(sys, 2.5, 2);
  EXPECT_GT(r.us_per_day(), 65.0);   // paper: 85 us/day
  EXPECT_LT(r.us_per_day(), 100.0);
}

TEST(CalibrationLock, Anton2OverAnton1NearTenX) {
  const System sys = build_benchmark_system(dhfr_spec());
  const double a2 = core::AntonMachine(arch::MachineConfig::anton2())
                        .estimate(sys, 2.5, 2)
                        .us_per_day();
  const double a1 = core::AntonMachine(arch::MachineConfig::anton1())
                        .estimate(sys, 2.5, 2)
                        .us_per_day();
  EXPECT_GT(a2 / a1, 7.0);   // paper: "up to ten times"
  EXPECT_LT(a2 / a1, 14.0);
}

TEST(CalibrationLock, EventDrivenAdvantageGrowsWithScale) {
  const System sys = build_benchmark_system(dhfr_spec());
  auto ratio_at = [&](int nodes) {
    int nx, ny, nz;
    core::torus_dims(nodes, &nx, &ny, &nz);
    const double ev = core::AntonMachine(arch::MachineConfig::anton2(nx, ny, nz))
                          .estimate(sys, 2.5, 2)
                          .us_per_day();
    const double bs =
        core::AntonMachine(arch::MachineConfig::anton2_bsp(nx, ny, nz))
            .estimate(sys, 2.5, 2)
            .us_per_day();
    return ev / bs;
  };
  const double small = ratio_at(8);
  const double large = ratio_at(512);
  EXPECT_GT(small, 1.0);
  EXPECT_GT(large, 1.5 * small);
}

}  // namespace
}  // namespace anton
