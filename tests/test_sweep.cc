// SweepRunner: deterministic parallel sweep harness.
//
// The contract under test: out[i] depends only on i, results land in index
// order regardless of scheduling, and a threaded sweep is *bitwise*
// identical to a serial one at any thread count — down to every double in
// the per-phase breakdown maps.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <stdexcept>
#include <vector>

#include "arch/config.h"
#include "chem/builder.h"
#include "common/threadpool.h"
#include "core/machine.h"
#include "core/sweep.h"

namespace anton::core {
namespace {

const System& small_system() {
  static const System sys = [] {
    BuilderOptions opt;
    opt.total_atoms = 2048;
    opt.temperature_k = -1;
    return build_solvated_system(opt);
  }();
  return sys;
}

std::vector<EstimatePoint> study_points() {
  std::vector<EstimatePoint> pts;
  pts.push_back({arch::MachineConfig::anton2(2, 2, 2), 2.5, 2});
  pts.push_back({arch::MachineConfig::anton2_bsp(2, 2, 2), 2.5, 2});
  pts.push_back({arch::MachineConfig::anton2(2, 2, 4), 2.5, 3});
  pts.push_back({arch::MachineConfig::anton1(2, 2, 2), 2.0, 2});
  pts.push_back({arch::MachineConfig::anton2(4, 2, 2), 2.5, 1});
  return pts;
}

// Every double must match to the last bit — including the map-valued phase
// breakdowns, which exercise the merge path end to end.
void expect_bitwise_equal(const PerfReport& a, const PerfReport& b) {
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.atoms, b.atoms);
  for (const StepTiming* s : {&a.full_step, &a.short_step}) {
    const StepTiming* t = s == &a.full_step ? &b.full_step : &b.short_step;
    EXPECT_EQ(s->step_ns, t->step_ns);
    EXPECT_EQ(s->exec.makespan_ns, t->exec.makespan_ns);
    EXPECT_EQ(s->exec.tasks_executed, t->exec.tasks_executed);
    EXPECT_EQ(s->exec.phase_busy_ns, t->exec.phase_busy_ns);
    EXPECT_EQ(s->exec.phase_end_ns, t->exec.phase_end_ns);
    EXPECT_EQ(s->exec.critical_path_ns, t->exec.critical_path_ns);
    EXPECT_EQ(s->exec.critical_wait_ns, t->exec.critical_wait_ns);
    EXPECT_EQ(s->exec.noc.messages, t->exec.noc.messages);
    EXPECT_EQ(s->exec.noc.total_bytes, t->exec.noc.total_bytes);
  }
  EXPECT_EQ(a.avg_step_ns(), b.avg_step_ns());
  EXPECT_EQ(a.us_per_day(), b.us_per_day());
}

TEST(SweepRunner, MapFillsSlotsInIndexOrder) {
  ThreadPool pool(4);
  const SweepRunner runner(&pool);
  // Wildly uneven work so the dynamic ticket genuinely reorders execution.
  std::vector<int> out;
  runner.map(64, out, [](size_t i) {
    volatile int spin = static_cast<int>((i * 37) % 5000);
    while (spin > 0) spin = spin - 1;
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 64u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(SweepRunner, MapRunsEveryPointExactlyOnce) {
  ThreadPool pool(3);
  const SweepRunner runner(&pool);
  std::atomic<int> calls{0};
  std::vector<int> out;
  runner.map(41, out, [&](size_t i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int>(i);
  });
  EXPECT_EQ(calls.load(), 41);
}

TEST(SweepRunner, SerialFallbacksMatchPool) {
  const SweepRunner no_pool(nullptr);
  ThreadPool one(1);
  const SweepRunner one_thread(&one);
  std::vector<int> a, b;
  no_pool.map(10, a, [](size_t i) { return static_cast<int>(3 * i + 1); });
  one_thread.map(10, b, [](size_t i) { return static_cast<int>(3 * i + 1); });
  EXPECT_EQ(a, b);
}

TEST(SweepRunner, RethrowsFirstExceptionAfterDraining) {
  ThreadPool pool(4);
  const SweepRunner runner(&pool);
  std::atomic<int> completed{0};
  std::vector<int> out;
  EXPECT_THROW(runner.map(16, out,
                          [&](size_t i) -> int {
                            if (i == 5) throw std::runtime_error("point 5");
                            completed.fetch_add(1,
                                                std::memory_order_relaxed);
                            return static_cast<int>(i);
                          }),
               std::runtime_error);
  // The failing point doesn't cancel the rest of the sweep.
  EXPECT_EQ(completed.load(), 15);

  const SweepRunner serial(nullptr);
  EXPECT_THROW(
      serial.map(4, out,
                 [](size_t) -> int { throw std::runtime_error("serial"); }),
      std::runtime_error);
}

TEST(SweepRunner, EstimateMatchesDirectMachineCall) {
  const auto pts = study_points();
  ThreadPool pool(2);
  const auto swept =
      SweepRunner(&pool).estimate(small_system(), std::span(pts));
  ASSERT_EQ(swept.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    const PerfReport direct = AntonMachine(pts[i].config)
                                  .estimate(small_system(), pts[i].dt_fs,
                                            pts[i].respa_k);
    expect_bitwise_equal(swept[i], direct);
  }
}

TEST(SweepRunner, BitwiseIdenticalAcrossThreadCounts) {
  const auto pts = study_points();
  const auto serial =
      SweepRunner(nullptr).estimate(small_system(), std::span(pts));
  for (const unsigned threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel =
        SweepRunner(&pool).estimate(small_system(), std::span(pts));
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      expect_bitwise_equal(serial[i], parallel[i]);
    }
  }
}

}  // namespace
}  // namespace anton::core
