#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "common/fixed_point.h"
#include "common/morton.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "common/vec3.h"

namespace anton {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  EXPECT_DOUBLE_EQ(norm(Vec3(3, 4, 0)), 5.0);
}

TEST(Vec3, NormalizedHandlesZero) {
  EXPECT_EQ(normalized(Vec3{}), Vec3{});
  const Vec3 v = normalized(Vec3{0, 0, 2});
  EXPECT_DOUBLE_EQ(norm(v), 1.0);
}

TEST(Vec3, Indexing) {
  Vec3 v{7, 8, 9};
  EXPECT_DOUBLE_EQ(v[0], 7);
  EXPECT_DOUBLE_EQ(v[1], 8);
  EXPECT_DOUBLE_EQ(v[2], 9);
  v[1] = 42;
  EXPECT_DOUBLE_EQ(v.y, 42);
}

TEST(FixedPoint, RoundTrip) {
  for (double v : {0.0, 1.0, -1.0, 3.14159, -123.456, 1e-6}) {
    const auto f = Fixed<32>::from_double(v);
    EXPECT_NEAR(f.to_double(), v, Fixed<32>::resolution());
  }
}

TEST(FixedPoint, AssociativeAccumulation) {
  // The whole point: permuting the accumulation order changes nothing.
  Rng rng(7, 0);
  std::vector<Vec3> contributions;
  for (int i = 0; i < 500; ++i) {
    contributions.push_back(100.0 * rng.gaussian_vec3());
  }
  ForceFixed fwd{}, rev{};
  for (const auto& c : contributions) fwd.accumulate(c);
  for (auto it = contributions.rbegin(); it != contributions.rend(); ++it) {
    rev.accumulate(*it);
  }
  EXPECT_EQ(fwd, rev);  // bitwise identical
}

TEST(FixedPoint, DoubleAccumulationIsNotAssociative) {
  // Sanity check that the test above is meaningful: plain doubles do differ.
  Rng rng(7, 0);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(1e8 * rng.gaussian());
  double fwd = 0, rev = 0;
  for (double x : xs) fwd += x;
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) rev += *it;
  EXPECT_NE(fwd, rev);
}

TEST(FixedPoint, RoundsHalfAwayFromZero) {
  // from_double rounds to nearest with ties away from zero, matching the
  // symmetric rounding of a hardware datapath.
  const double r = Fixed<32>::resolution();
  EXPECT_EQ(Fixed<32>::from_double(0.5 * r).raw(), 1);
  EXPECT_EQ(Fixed<32>::from_double(-0.5 * r).raw(), -1);
  EXPECT_EQ(Fixed<32>::from_double(0.49 * r).raw(), 0);
  EXPECT_EQ(Fixed<32>::from_double(-0.49 * r).raw(), 0);
  EXPECT_EQ(Fixed<32>::from_double(1.5 * r).raw(), 2);
  EXPECT_EQ(Fixed<32>::from_double(-1.5 * r).raw(), -2);
}

TEST(FixedPoint, NegativeValuesRoundTripSymmetrically) {
  for (double v : {1e-7, 0.25, 3.14159, 1234.5678}) {
    const auto pos = Fixed<32>::from_double(v);
    const auto neg = Fixed<32>::from_double(-v);
    EXPECT_EQ(pos.raw(), -neg.raw()) << v;
    EXPECT_NEAR(neg.to_double(), -v, Fixed<32>::resolution()) << v;
  }
}

TEST(FixedPoint, FromDoubleSaturatesAtRails) {
  // Casting an out-of-range double to int64_t is UB; from_double must clamp
  // to the rails instead (like the hardware datapath it models).
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(Fixed<32>::from_double(1e300).raw(), kMax);
  EXPECT_EQ(Fixed<32>::from_double(-1e300).raw(), kMin);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(Fixed<32>::from_double(inf).raw(), kMax);
  EXPECT_EQ(Fixed<32>::from_double(-inf).raw(), kMin);
  // Just past max_magnitude saturates; comfortably below it converts.
  EXPECT_EQ(Fixed<32>::from_double(2.0 * Fixed<32>::max_magnitude()).raw(),
            kMax);
  const double safe = 0.5 * Fixed<32>::max_magnitude();
  EXPECT_NEAR(Fixed<32>::from_double(safe).to_double(), safe, 1.0);
}

TEST(FixedPoint, NanMapsToZero) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Fixed<32>::from_double(nan).raw(), 0);
  EXPECT_EQ(Fixed<32>::from_double(-nan).raw(), 0);
}

TEST(FixedPoint, AdditionWrapsLikeHardware) {
  // Overflow wraps mod 2^64 (defined behaviour, computed in unsigned
  // arithmetic internally) rather than invoking signed-overflow UB.
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  auto a = Fixed<32>::from_raw(kMax);
  a += Fixed<32>::from_raw(1);
  EXPECT_EQ(a.raw(), kMin);
  auto b = Fixed<32>::from_raw(kMin);
  b -= Fixed<32>::from_raw(1);
  EXPECT_EQ(b.raw(), kMax);
  // Wrap in one direction is undone by the opposite contribution: the sum of
  // a balanced set is exact even when partial sums overflow.
  auto c = Fixed<32>::from_raw(kMax);
  c += Fixed<32>::from_raw(kMax);
  c -= Fixed<32>::from_raw(kMax);
  EXPECT_EQ(c.raw(), kMax);
}

TEST(FixedPoint, RawRoundTripsThroughConversion) {
  for (int64_t raw : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{1} << 40,
                      -(int64_t{1} << 40)}) {
    const auto f = Fixed<32>::from_raw(raw);
    EXPECT_EQ(Fixed<32>::from_double(f.to_double()).raw(), raw) << raw;
  }
}

TEST(Rng, Deterministic) {
  Rng a(42, 3), b(42, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, StreamsDiffer) {
  Rng a(42, 0), b(42, 1), c(43, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a2(42, 0);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(1, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(2026, 0);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, UnitVectorIsUnit) {
  Rng rng(5, 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(norm(rng.unit_vector()), 1.0, 1e-12);
  }
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(9, 0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.uniform_u64(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Morton, RoundTrip) {
  Rng rng(3, 0);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.uniform_u64(1u << 21));
    const uint32_t y = static_cast<uint32_t>(rng.uniform_u64(1u << 21));
    const uint32_t z = static_cast<uint32_t>(rng.uniform_u64(1u << 21));
    const auto d = morton_decode(morton_encode(x, y, z));
    EXPECT_EQ(d.x, x);
    EXPECT_EQ(d.y, y);
    EXPECT_EQ(d.z, z);
  }
}

TEST(Morton, LocalityOrdering) {
  // Adjacent codes should be spatially close most of the time: check the
  // canonical property that (0,0,0) and (1,0,0) differ by 1.
  EXPECT_EQ(morton_encode(0, 0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode(0, 0, 1), 4u);
}

TEST(RunningStat, Basics) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStat, Merge) {
  RunningStat a, b, all;
  Rng rng(11, 0);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.gaussian() * 3 + 1;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.count(), all.count());
}

TEST(Histogram, BinningAndQuantile) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 10.0);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  // Out-of-range clamps.
  h.add(-5);
  h.add(100);
  EXPECT_EQ(h.count(0), 11u);
  EXPECT_EQ(h.count(9), 11u);
}

TEST(Histogram, QuantileExactBinBoundary) {
  // 4 samples in bin 0 and 4 in bin 1: the median target (q*total = 4) is
  // satisfied exactly at the end of bin 0, so the result must be the shared
  // bin edge — computed from bin 0's top, never by sliding into bin 1.
  Histogram h(0.0, 1000.0, 10);
  for (int i = 0; i < 4; ++i) h.add(10.0);
  for (int i = 0; i < 4; ++i) h.add(110.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);
}

TEST(Histogram, QuantileFinalPopulatedBinNotHi) {
  // Regression: when the last populated bin holds the target mass and the
  // floating-point comparison misses by an ulp, the old implementation fell
  // through and returned hi_ — far beyond any data.  The quantile of a
  // distribution confined to bin 5 of [0, 10) must never exceed that bin's
  // top edge (6.0), for ANY q, including awkward fractions like 1/3 whose
  // product with the count is inexact.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 7; ++i) h.add(5.5);
  for (double q : {1.0 / 3.0, 0.7, 0.999999999, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 5.0) << "q=" << q;
    EXPECT_LE(v, 6.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
}

TEST(Histogram, TailQuantileBoundaryIsExact) {
  // 99 samples in bin 0 and one in the top bin: p99's target mass
  // (0.99 * 100 = 99) is satisfied exactly at the end of bin 0, so p99 must
  // be bin 0's top edge — not slide into the outlier's bin — while any
  // q > 0.99 must land inside the outlier's bin.  This is the service's
  // latency-tail shape: a dense fast mode plus rare slow evaluations.
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 99; ++i) h.add(0.5);
  h.add(99.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.0);
  EXPECT_GE(h.quantile(0.995), 99.0);
  EXPECT_LE(h.quantile(0.995), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5 * 100.0 / 99.0);
}

TEST(Histogram, QuantilesAreMonotoneInQ) {
  Histogram h(0.0, 50.0, 25);
  for (int i = 0; i < 1000; ++i) h.add((i * 7 % 500) / 10.0);
  double prev = h.quantile(0.0);
  for (double q : {0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, OutOfRangeAndNonFiniteClamp) {
  Histogram h(0.0, 10.0, 4);
  h.add(-1e308);
  h.add(-std::numeric_limits<double>::infinity());
  h.add(1e308);
  h.add(std::numeric_limits<double>::infinity());
  h.add(std::numeric_limits<double>::quiet_NaN());  // falls into the first bin
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(3), 2u);
  for (double q : {0.0, 0.5, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(RunningStat, MergeMatchesSinglePassAnySplit) {
  // Property: merging any random partition of a stream must reproduce the
  // single-pass statistics to near machine precision.
  Rng rng(2014, 0);
  for (int trial = 0; trial < 20; ++trial) {
    const int parts = 1 + static_cast<int>(rng.uniform(0.0, 7.0));
    std::vector<RunningStat> split(static_cast<size_t>(parts));
    RunningStat whole;
    for (int i = 0; i < 500; ++i) {
      const double v = rng.gaussian() * 10 + rng.uniform(-3.0, 3.0);
      whole.add(v);
      split[static_cast<size_t>(rng.uniform(0.0, parts)) % split.size()]
          .add(v);
    }
    RunningStat merged;
    for (const auto& s : split) merged.merge(s);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9 * whole.variance());
    EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * std::abs(whole.sum()) + 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  }
}

TEST(Config, GnuStyleFlags) {
  // The example binaries accept --key value / --key=value / bare --flag in
  // addition to key=value, so telemetry runs read naturally:
  //   quickstart atoms=4000 --trace out.json --metrics m.json
  const Config c = Config::from_tokens(
      {"--trace", "out.json", "--metrics=m.json", "--verbose", "atoms=5"});
  EXPECT_EQ(c.get_string("trace", ""), "out.json");
  EXPECT_EQ(c.get_string("metrics", ""), "m.json");
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_EQ(c.get_int("atoms", 0), 5);
}

TEST(Config, ParsesTypedValues) {
  const Config c = Config::from_tokens(
      {"nodes=512", "cutoff=9.5", "event_driven=true", "name=dhfr"});
  EXPECT_EQ(c.get_int("nodes", 0), 512);
  EXPECT_DOUBLE_EQ(c.get_double("cutoff", 0), 9.5);
  EXPECT_TRUE(c.get_bool("event_driven", false));
  EXPECT_EQ(c.get_string("name", ""), "dhfr");
  EXPECT_EQ(c.get_int("missing", 7), 7);
}

TEST(Config, RejectsMalformed) {
  EXPECT_THROW(Config::from_tokens({"oops"}), Error);
  const Config c = Config::from_tokens({"x=notanumber"});
  EXPECT_THROW(c.get_int("x", 0), Error);
  EXPECT_THROW(c.get_bool("x", false), Error);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, ForEachThreadRunsOncePerThread) {
  ThreadPool pool(3);
  std::vector<int> marks(pool.size(), 0);
  pool.for_each_thread([&](unsigned t) { marks[t]++; });
  for (int m : marks) EXPECT_EQ(m, 1);
}

TEST(ThreadPool, EmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Units, TimeConversionRoundTrip) {
  EXPECT_NEAR(units::internal_to_fs(units::fs_to_internal(2.5)), 2.5, 1e-12);
}

TEST(Units, UsPerDay) {
  // One 2.5 fs step every 2.5 μs of wall time = 86.4 μs/day... check:
  // steps/day = 86400/2.5e-6 = 3.456e10; fs/day = 8.64e10 fs = 86.4 μs.
  EXPECT_NEAR(units::us_per_day(2.5, 2.5e-6), 86.4, 1e-9);
}

TEST(Error, CheckMacros) {
  EXPECT_NO_THROW(ANTON_CHECK(1 + 1 == 2));
  EXPECT_THROW(ANTON_CHECK(false), Error);
  try {
    ANTON_CHECK_MSG(false, "ctx " << 42);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

TEST(TextTable, FormatsAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", TextTable::fmt(1.5)});
  t.add_row({"beta", TextTable::fmt_int(42)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

}  // namespace
}  // namespace anton
