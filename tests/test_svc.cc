// EstimatorService: the contracts the daemon is built on.
//
//   * cache keys are content-addressed: identical config/workload content
//     gives identical keys no matter where the objects live, telemetry
//     sink paths are excluded, and every model parameter perturbs the key;
//   * a cache hit is *bitwise* identical to a fresh recompute — every
//     double, including the per-phase breakdown maps;
//   * each distinct key evaluates exactly once no matter how many
//     concurrent duplicate queries race (the hammer test doubles as the
//     TSan workout: build with -DANTON_SANITIZE=thread and run
//     `ctest -L sanitize-thread -R Svc`);
//   * admission control sheds deterministically when the queue is full,
//     and shutdown drains every accepted job.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "arch/config.h"
#include "chem/builder.h"
#include "common/config.h"
#include "common/threadpool.h"
#include "core/machine.h"
#include "obs/metrics.h"
#include "svc/cache_key.h"
#include "svc/result_cache.h"
#include "svc/service.h"

namespace anton::svc {
namespace {

const System& small_system() {
  static const System sys = [] {
    BuilderOptions opt;
    opt.total_atoms = 2048;
    opt.temperature_k = -1;
    return build_solvated_system(opt);
  }();
  return sys;
}

// Every double must match to the last bit — including the map-valued phase
// breakdowns.  (Mirrors the SweepRunner determinism contract.)
void expect_bitwise_equal(const core::PerfReport& a,
                          const core::PerfReport& b) {
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.atoms, b.atoms);
  for (const core::StepTiming* s : {&a.full_step, &a.short_step}) {
    const core::StepTiming* t =
        s == &a.full_step ? &b.full_step : &b.short_step;
    EXPECT_EQ(s->step_ns, t->step_ns);
    EXPECT_EQ(s->exec.makespan_ns, t->exec.makespan_ns);
    EXPECT_EQ(s->exec.tasks_executed, t->exec.tasks_executed);
    EXPECT_EQ(s->exec.phase_busy_ns, t->exec.phase_busy_ns);
    EXPECT_EQ(s->exec.phase_end_ns, t->exec.phase_end_ns);
    EXPECT_EQ(s->exec.critical_path_ns, t->exec.critical_path_ns);
    EXPECT_EQ(s->exec.critical_wait_ns, t->exec.critical_wait_ns);
    EXPECT_EQ(s->exec.noc.messages, t->exec.noc.messages);
    EXPECT_EQ(s->exec.noc.total_bytes, t->exec.noc.total_bytes);
  }
  EXPECT_EQ(a.avg_step_ns(), b.avg_step_ns());
  EXPECT_EQ(a.us_per_day(), b.us_per_day());
}

// ---------------------------------------------------------------------------
// Cache keys.

TEST(CacheKey, SameContentSameKeyAcrossObjects) {
  const uint64_t sd = system_digest(small_system());
  const arch::MachineConfig a = arch::MachineConfig::anton2(4, 4, 4);
  const arch::MachineConfig b = arch::MachineConfig::anton2(4, 4, 4);
  EXPECT_EQ(query_key(a, sd, 2.5, 2), query_key(b, sd, 2.5, 2));
}

TEST(CacheKey, EveryModelParameterPerturbsTheKey) {
  const uint64_t sd = system_digest(small_system());
  const arch::MachineConfig base = arch::MachineConfig::anton2(4, 4, 4);
  const CacheKey k0 = query_key(base, sd, 2.5, 2);

  arch::MachineConfig m = base;
  m.gc_clock_ghz += 0.1;
  EXPECT_NE(query_key(m, sd, 2.5, 2), k0);

  m = base;
  m.noc.link_bandwidth_gbs *= 2;
  EXPECT_NE(query_key(m, sd, 2.5, 2), k0);

  m = base;
  m.use_multicast = !m.use_multicast;
  EXPECT_NE(query_key(m, sd, 2.5, 2), k0);

  m = base;
  m.noc.derated_links.push_back({0, 0, 0.5});
  EXPECT_NE(query_key(m, sd, 2.5, 2), k0);

  m = base;
  m.name += "x";
  EXPECT_NE(query_key(m, sd, 2.5, 2), k0);

  // Workload parameters and the system fingerprint are part of the key.
  EXPECT_NE(query_key(base, sd, 2.0, 2), k0);
  EXPECT_NE(query_key(base, sd, 2.5, 3), k0);
  EXPECT_NE(query_key(base, sd + 1, 2.5, 2), k0);
}

TEST(CacheKey, TelemetrySinkPathsAreExcluded) {
  const uint64_t sd = system_digest(small_system());
  const arch::MachineConfig base = arch::MachineConfig::anton2(4, 4, 4);
  arch::MachineConfig traced = base;
  traced.trace_path = "/tmp/trace.json";
  traced.metrics_path = "/tmp/metrics.json";
  EXPECT_EQ(query_key(traced, sd, 2.5, 2), query_key(base, sd, 2.5, 2));
}

TEST(CacheKey, SignedZeroIsConservativelyDistinct) {
  // Doubles are keyed by bit pattern: +0.0 and -0.0 compare equal but hash
  // apart.  That costs at most a duplicate cache entry, never a wrong hit.
  const uint64_t sd = system_digest(small_system());
  arch::MachineConfig pos = arch::MachineConfig::anton2(4, 4, 4);
  arch::MachineConfig neg = pos;
  pos.barrier_base_ns = 0.0;
  neg.barrier_base_ns = -0.0;
  EXPECT_NE(query_key(pos, sd, 2.5, 2), query_key(neg, sd, 2.5, 2));
}

TEST(CacheKey, SystemDigestTracksContent) {
  BuilderOptions opt;
  opt.total_atoms = 2048;
  opt.temperature_k = -1;
  const System a = build_solvated_system(opt);
  const System a2 = build_solvated_system(opt);
  opt.seed += 1;
  const System b = build_solvated_system(opt);
  EXPECT_EQ(system_digest(a), system_digest(a2));
  EXPECT_NE(system_digest(a), system_digest(b));
}

// ---------------------------------------------------------------------------
// Result cache.

core::PerfReport synthetic_report(int seed) {
  core::PerfReport r;
  r.machine = "synthetic-" + std::to_string(seed);
  r.nodes = seed;
  r.atoms = 100 * seed;
  r.full_step.step_ns = 1000.0 + seed;
  r.short_step.step_ns = 500.0 + seed;
  r.full_step.exec.phase_busy_ns["pair"] = 17.0 * seed;
  r.full_step.exec.phase_end_ns["fft"] = 23.0 * seed;
  return r;
}

CacheKey synthetic_key(uint64_t i) {
  KeyHasher h;
  h.absorb_u64(i);
  return h.digest();
}

TEST(ResultCache, InsertLookupRoundTrip) {
  ResultCache cache(1 << 20);
  const CacheKey k = synthetic_key(7);
  core::PerfReport out;
  EXPECT_FALSE(cache.lookup(k, &out));
  ASSERT_TRUE(cache.insert(k, synthetic_report(7)));
  ASSERT_TRUE(cache.lookup(k, &out));
  expect_bitwise_equal(out, synthetic_report(7));
  const ResultCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(ResultCache, EvictionKeepsMemoryBounded) {
  ResultCache cache(64 * 1024);  // floor budget: 4 KiB per shard
  for (uint64_t i = 0; i < 4096; ++i) {
    cache.insert(synthetic_key(i), synthetic_report(static_cast<int>(i)));
  }
  const ResultCache::Stats st = cache.stats();
  EXPECT_LE(st.bytes, cache.max_bytes());
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.entries, 0u);
  // Entries that survived must still read back exactly.
  uint64_t verified = 0;
  for (uint64_t i = 0; i < 4096; ++i) {
    core::PerfReport out;
    if (cache.lookup(synthetic_key(i), &out)) {
      expect_bitwise_equal(out, synthetic_report(static_cast<int>(i)));
      ++verified;
    }
  }
  EXPECT_GT(verified, 0u);
}

TEST(ResultCache, OversizeReportIsNotCached) {
  ResultCache cache(64 * 1024);  // shard budget 4 KiB
  core::PerfReport big = synthetic_report(1);
  big.machine.reserve(64 * 1024);
  EXPECT_GT(report_bytes(big), size_t{4} * 1024);
  EXPECT_FALSE(cache.insert(synthetic_key(1), big));
  core::PerfReport out;
  EXPECT_FALSE(cache.lookup(synthetic_key(1), &out));
}

TEST(ResultCache, ReportBytesCountsHeapState) {
  const core::PerfReport empty;
  core::PerfReport mapped = empty;
  for (int i = 0; i < 32; ++i) {
    mapped.full_step.exec.phase_busy_ns["phase" + std::to_string(i)] = i;
  }
  EXPECT_GT(report_bytes(mapped), report_bytes(empty));
}

// ---------------------------------------------------------------------------
// Service: bitwise hits, exactly-once evaluation, concurrency.

std::shared_ptr<const arch::MachineConfig> shared_anton2(int nx, int ny,
                                                         int nz) {
  return std::make_shared<const arch::MachineConfig>(
      arch::MachineConfig::anton2(nx, ny, nz));
}

TEST(EstimatorService, CacheHitIsBitwiseIdenticalToRecompute) {
  ThreadPool pool(2);
  EstimatorService::Options opt;
  opt.pool = &pool;
  EstimatorService service(opt);
  const int sys_id = service.register_system(small_system());
  service.start();

  const auto points = {shared_anton2(2, 2, 2), shared_anton2(2, 2, 4)};
  for (const auto& mc : points) {
    for (const double dt : {2.0, 2.5}) {
      const QueryResult first = service.query(mc, sys_id, dt);
      ASSERT_EQ(first.status, Status::kMiss);
      const QueryResult again = service.query(mc, sys_id, dt);
      ASSERT_EQ(again.status, Status::kHit);
      expect_bitwise_equal(again.report, first.report);
      // The gold answer: a fresh single-threaded estimate, no service.
      const core::AntonMachine machine(mc);
      expect_bitwise_equal(again.report,
                           machine.estimate(small_system(), dt));
    }
  }
  service.shutdown();
}

TEST(EstimatorService, HammerEvaluatesEachDistinctKeyExactlyOnce) {
  ThreadPool pool(4);
  EstimatorService::Options opt;
  opt.pool = &pool;
  opt.queue_depth = 1024;  // never shed in this test
  EstimatorService service(opt);
  const int sys_id = service.register_system(small_system());
  service.start();

  const std::vector<std::shared_ptr<const arch::MachineConfig>> grid = {
      shared_anton2(2, 2, 2), shared_anton2(2, 2, 4), shared_anton2(2, 4, 4),
      shared_anton2(4, 4, 4)};
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 32;

  std::vector<core::PerfReport> first_seen(grid.size());
  std::vector<std::once_flag> once(grid.size());
  std::vector<std::thread> clients;
  std::atomic<int> rejected{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const size_t i = static_cast<size_t>(c + q) % grid.size();
        const QueryResult r = service.query(grid[i], sys_id);
        if (r.status == Status::kShed || r.status == Status::kShutdown) {
          rejected.fetch_add(1);
          continue;
        }
        std::call_once(once[i], [&] { first_seen[i] = r.report; });
        expect_bitwise_equal(r.report, first_seen[i]);
      }
    });
  }
  for (auto& t : clients) t.join();
  service.shutdown();

  const EstimatorService::Stats st = service.stats();
  EXPECT_EQ(rejected.load(), 0);
  EXPECT_EQ(st.evaluated, grid.size());
  EXPECT_EQ(st.queries, uint64_t{kClients} * kQueriesPerClient);
  EXPECT_EQ(st.hits + st.misses + st.coalesced, st.queries);
  EXPECT_EQ(st.misses, grid.size());
}

// A gate the tests use to hold workers mid-evaluation, making coalescing,
// queue buildup, and load-shedding observable without timing assumptions.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  void enter_and_wait() {
    std::unique_lock<std::mutex> lock(mu);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
  void wait_entered(int n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered >= n; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

EstimatorService::Options gated_options(ThreadPool* pool, Gate* gate,
                                        size_t queue_depth) {
  EstimatorService::Options opt;
  opt.pool = pool;
  opt.queue_depth = queue_depth;
  opt.evaluator = [gate](const arch::MachineConfig& mc, const System&,
                         double dt_fs, int respa_k) {
    gate->enter_and_wait();
    core::PerfReport r;
    r.machine = mc.name;
    r.nodes = mc.noc.num_nodes();
    r.dt_fs = dt_fs;
    r.respa_k = respa_k;
    r.full_step.step_ns = 1000.0 * dt_fs;
    r.short_step.step_ns = 400.0 * dt_fs;
    return r;
  };
  return opt;
}

TEST(EstimatorService, DuplicateInFlightQueriesCoalesce) {
  ThreadPool pool(1);  // exactly one worker
  Gate gate;
  EstimatorService service(gated_options(&pool, &gate, 8));
  const int sys_id = service.register_system(small_system());
  service.start();

  const auto mc = shared_anton2(2, 2, 2);
  std::thread submitter([&] {
    const QueryResult r = service.query(mc, sys_id);
    EXPECT_EQ(r.status, Status::kMiss);
  });
  gate.wait_entered(1);  // worker is now inside the evaluation

  // While the evaluation is pinned, a duplicate query must attach to it —
  // with one worker and the job already in flight, nothing else can run it.
  std::thread twin([&] {
    const QueryResult r = service.query(mc, sys_id);
    EXPECT_EQ(r.status, Status::kCoalesced);
    EXPECT_EQ(r.report.nodes, 8);
  });
  // The twin is coalesced as soon as its query() returns; it cannot finish
  // before the gate opens, so joining after release() observes the status.
  while (service.stats().coalesced == 0) {
    std::this_thread::yield();
  }
  gate.release();
  submitter.join();
  twin.join();
  service.shutdown();

  const EstimatorService::Stats st = service.stats();
  EXPECT_EQ(st.evaluated, 1u);
  EXPECT_EQ(st.coalesced, 1u);
}

TEST(EstimatorService, FullQueueShedsWithExplicitStatus) {
  ThreadPool pool(1);
  Gate gate;
  EstimatorService service(gated_options(&pool, &gate, /*queue_depth=*/1));
  const int sys_id = service.register_system(small_system());
  service.start();

  // Job A occupies the only worker; job B fills the queue (depth 1).
  std::thread a([&] {
    EXPECT_EQ(service.query(shared_anton2(2, 2, 2), sys_id).status,
              Status::kMiss);
  });
  gate.wait_entered(1);
  std::thread b([&] {
    EXPECT_EQ(service.query(shared_anton2(2, 2, 4), sys_id).status,
              Status::kMiss);
  });
  while (service.stats().queued < 1) {
    std::this_thread::yield();
  }

  // Queue full: a third distinct query is rejected immediately, no block.
  const QueryResult c = service.query(shared_anton2(2, 4, 4), sys_id);
  EXPECT_EQ(c.status, Status::kShed);

  gate.release();
  a.join();
  b.join();
  service.shutdown();
  const EstimatorService::Stats st = service.stats();
  EXPECT_EQ(st.shed, 1u);
  EXPECT_EQ(st.evaluated, 2u);
}

TEST(EstimatorService, ShutdownDrainsEveryAcceptedJob) {
  ThreadPool pool(1);
  Gate gate;
  EstimatorService service(gated_options(&pool, &gate, 8));
  const int sys_id = service.register_system(small_system());
  service.start();

  constexpr int kJobs = 4;
  std::vector<std::thread> clients;
  std::atomic<int> completed{0};
  for (int j = 0; j < kJobs; ++j) {
    clients.emplace_back([&, j] {
      const QueryResult r = service.query(shared_anton2(2, 2, 2 + j), sys_id);
      EXPECT_EQ(r.status, Status::kMiss);
      completed.fetch_add(1);
    });
  }
  gate.wait_entered(1);  // one in flight; the rest pile into the queue
  while (service.stats().queued < kJobs - 1) {
    std::this_thread::yield();
  }

  // Shutdown must drain: every accepted job completes, no waiter hangs.
  std::thread stopper([&] { service.shutdown(); });
  gate.release();
  stopper.join();
  for (auto& t : clients) t.join();

  EXPECT_EQ(completed.load(), kJobs);
  EXPECT_EQ(service.stats().evaluated, uint64_t{kJobs});
  EXPECT_FALSE(service.running());
}

TEST(EstimatorService, QueriesOutsideRunningWindowReturnShutdown) {
  ThreadPool pool(1);
  EstimatorService::Options opt;
  opt.pool = &pool;
  EstimatorService service(opt);
  const int sys_id = service.register_system(small_system());

  // No workers yet: a miss cannot evaluate, so it reports kShutdown.
  EXPECT_EQ(service.query(shared_anton2(2, 2, 2), sys_id).status,
            Status::kShutdown);

  service.start();
  EXPECT_EQ(service.query(shared_anton2(2, 2, 2), sys_id).status,
            Status::kMiss);
  service.shutdown();

  // After shutdown the cache still answers; misses are rejected.
  EXPECT_EQ(service.query(shared_anton2(2, 2, 2), sys_id).status,
            Status::kHit);
  EXPECT_EQ(service.query(shared_anton2(2, 2, 4), sys_id).status,
            Status::kShutdown);
}

TEST(EstimatorService, TelemetryPathsAreStrippedBeforeEvaluation) {
  ThreadPool pool(1);
  EstimatorService::Options opt;
  opt.pool = &pool;
  EstimatorService service(opt);
  const int sys_id = service.register_system(small_system());
  service.start();

  arch::MachineConfig traced = arch::MachineConfig::anton2(2, 2, 2);
  traced.trace_path = "should_not_be_written.json";
  traced.metrics_path = "should_not_be_written_either.json";
  EXPECT_EQ(service.query(traced, sys_id).status, Status::kMiss);
  // Same model content without the sink paths: same key, so a hit.
  EXPECT_EQ(service.query(arch::MachineConfig::anton2(2, 2, 2), sys_id).status,
            Status::kHit);
  service.shutdown();
  EXPECT_FALSE(std::ifstream("should_not_be_written.json").good());
  EXPECT_FALSE(std::ifstream("should_not_be_written_either.json").good());
}

TEST(EstimatorService, RegistersSvcMetrics) {
  ThreadPool pool(2);
  obs::MetricsRegistry metrics;
  EstimatorService::Options opt;
  opt.pool = &pool;
  opt.metrics = &metrics;
  EstimatorService service(opt);
  const int sys_id = service.register_system(small_system());
  service.start();
  service.query(shared_anton2(2, 2, 2), sys_id);
  service.query(shared_anton2(2, 2, 2), sys_id);
  service.shutdown();

  EXPECT_EQ(metrics.counter("svc.queries")->value(), 2u);
  EXPECT_EQ(metrics.counter("svc.hits")->value(), 1u);
  EXPECT_EQ(metrics.counter("svc.misses")->value(), 1u);
  EXPECT_EQ(metrics.counter("svc.shed")->value(), 0u);
  EXPECT_EQ(metrics.histogram("svc.latency_ms", 0, 256, 1024)
                ->snapshot()
                .total(),
            2u);
  // The latency histogram exports p50/p95/p99 like every Histo.
  const std::string j = metrics.json();
  EXPECT_NE(j.find("svc.latency_ms"), std::string::npos);
  EXPECT_NE(j.find("\"p99\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Service flags.

TEST(SvcFlags, ParsesGnuStyleForms) {
  const Config cfg = Config::from_tokens(
      {"--svc-threads", "4", "--svc-cache-mb=16", "--svc-queue-depth", "8"});
  const SvcFlags f = SvcFlags::from_config(cfg);
  EXPECT_EQ(f.threads, 4);
  EXPECT_EQ(f.cache_mb, 16);
  EXPECT_EQ(f.queue_depth, 8);
  EXPECT_EQ(f.cache_bytes(), size_t{16} * 1024 * 1024);
}

TEST(SvcFlags, DefaultsAreDocumentedValues) {
  const SvcFlags f = SvcFlags::from_config(Config::from_tokens({}));
  EXPECT_EQ(f.threads, 0);
  EXPECT_EQ(f.cache_mb, 64);
  EXPECT_EQ(f.queue_depth, 256);
}

TEST(SvcFlags, RejectsNonPositiveKnobs) {
  Config cfg;
  cfg.set("svc-cache-mb", "0");
  EXPECT_THROW(SvcFlags::from_config(cfg), std::runtime_error);
}

}  // namespace
}  // namespace anton::svc
