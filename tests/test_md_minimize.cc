#include <gtest/gtest.h>

#include "chem/builder.h"
#include "md/constraints.h"
#include "md/engine.h"
#include "md/minimize.h"

namespace anton::md {
namespace {

MdParams min_params() {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kNone;
  return p;
}

TEST(Minimize, ReducesEnergy) {
  BuilderOptions o;
  o.total_atoms = 1200;
  o.solute_fraction = 0.15;
  o.seed = 55;
  o.temperature_k = -1;
  System sys = build_solvated_system(o);
  const auto r = minimize_energy(sys, min_params(), 150);
  EXPECT_LT(r.final_energy, r.initial_energy);
  EXPECT_GT(r.steps, 0);
}

TEST(Minimize, PreservesConstraints) {
  System sys = build_water_box(125, 56, -1);
  const auto r = minimize_energy(sys, min_params(), 100);
  (void)r;
  EXPECT_LT(max_constraint_violation(sys.box(), sys.topology(),
                                     sys.positions()),
            1e-6);
}

TEST(Minimize, ConvergesOnRelaxedSystem) {
  // Minimise once hard, then a second call should terminate quickly because
  // forces are already below tolerance.
  System sys = build_water_box(216, 57, -1);
  minimize_energy(sys, min_params(), 400, 0.1, 5.0);
  const auto again = minimize_energy(sys, min_params(), 400, 0.1, 50.0);
  EXPECT_LE(again.steps, 5);
  EXPECT_LT(again.max_force, 50.0);
}

TEST(Minimize, EnablesStableDynamicsOnClashedSystem) {
  BuilderOptions o;
  o.total_atoms = 2000;
  o.solute_fraction = 0.15;  // lots of chain, lots of clashes
  o.seed = 58;
  System sys = build_solvated_system(o);
  MdParams p = min_params();
  p.long_range = LongRangeMethod::kMesh;
  p.dt_fs = 1.0;
  minimize_energy(sys, p, 300);
  sys.assign_velocities(300.0, 58);
  Simulation sim(std::move(sys), p);
  EXPECT_NO_THROW(sim.step(50));  // would explode unminimised
}

TEST(Minimize, ZeroStepsIsNoOp) {
  System sys = build_water_box(216, 59, -1);
  const std::vector<Vec3> before(sys.positions().begin(),
                                 sys.positions().end());
  const auto r = minimize_energy(sys, min_params(), 0);
  EXPECT_EQ(r.steps, 0);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(sys.positions()[i], before[i]);
  }
}

TEST(Minimize, ThreadedMatchesSerialEnergy) {
  BuilderOptions o;
  o.total_atoms = 1200;
  o.solute_fraction = 0.1;
  o.seed = 60;
  o.temperature_k = -1;
  System a = build_solvated_system(o);
  System b = a;
  ThreadPool pool(3);
  const auto ra = minimize_energy(a, min_params(), 80);
  const auto rb = minimize_energy(b, min_params(), 80, 0.1, 10.0, &pool);
  EXPECT_NEAR(ra.final_energy, rb.final_energy,
              std::abs(ra.final_energy) * 1e-9 + 1e-6);
}

}  // namespace
}  // namespace anton::md
