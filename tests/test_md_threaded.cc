// Threaded short-range pipeline: determinism, serial parity, parallel
// neighbour-list correctness, and the zero-allocation guarantee.
//
// This binary overrides the global allocator with a counting hook so the
// steady-state test can assert that a warmed ForceCompute performs no heap
// allocation at all during stepping — the software analogue of Anton 2's
// fixed-function pipelines, which have no allocator to touch.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "chem/builder.h"
#include "common/threadpool.h"
#include "md/forces.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"

namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace anton::md {
namespace {

// 729 molecules = 2187 atoms, above the kernels' serial-fallback threshold,
// so the threaded paths genuinely engage.
const System& water2k() {
  static const System* sys = new System(build_water_box(729, 11));
  return *sys;
}

struct ShortRange {
  std::vector<Vec3> f;
  EnergyReport e;
};

ShortRange eval_short_range(const System& sys, const NeighborList& nlist,
                            ThreadPool* pool, ForceWorkspace* ws,
                            bool tabulate) {
  ShortRange r;
  r.f.assign(static_cast<size_t>(sys.num_atoms()), Vec3{});
  compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                    r.f, r.e, pool, /*shift_at_cutoff=*/true, ws, tabulate);
  compute_excluded_correction(sys.box(), sys.topology(), sys.positions(), 0.35,
                              r.f, r.e, pool, ws);
  return r;
}

void expect_close(const ShortRange& a, const ShortRange& b, double tol) {
  ASSERT_EQ(a.f.size(), b.f.size());
  for (size_t i = 0; i < a.f.size(); ++i) {
    const double scale =
        std::max(1.0, std::sqrt(std::max(norm2(a.f[i]), norm2(b.f[i]))));
    EXPECT_NEAR(a.f[i].x, b.f[i].x, tol * scale) << "atom " << i;
    EXPECT_NEAR(a.f[i].y, b.f[i].y, tol * scale) << "atom " << i;
    EXPECT_NEAR(a.f[i].z, b.f[i].z, tol * scale) << "atom " << i;
  }
  const double escale = std::max(
      {1.0, std::abs(a.e.lj), std::abs(a.e.coulomb_real), std::abs(a.e.virial),
       std::abs(a.e.coulomb_excl)});
  EXPECT_NEAR(a.e.lj, b.e.lj, tol * escale);
  EXPECT_NEAR(a.e.coulomb_real, b.e.coulomb_real, tol * escale);
  EXPECT_NEAR(a.e.coulomb_excl, b.e.coulomb_excl, tol * escale);
  EXPECT_NEAR(a.e.virial, b.e.virial, tol * escale);
}

TEST(Threaded, ForcesMatchSerialAcrossThreadCounts) {
  const System& sys = water2k();
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());

  const ShortRange serial =
      eval_short_range(sys, nlist, nullptr, nullptr, false);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ForceWorkspace ws;
    const ShortRange par = eval_short_range(sys, nlist, &pool, &ws, false);
    expect_close(serial, par, 1e-10);
  }
}

TEST(Threaded, TabulatedForcesMatchSerialTabulated) {
  const System& sys = water2k();
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());

  ForceWorkspace ws_serial;
  const ShortRange serial =
      eval_short_range(sys, nlist, nullptr, &ws_serial, true);
  for (unsigned threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ForceWorkspace ws;
    const ShortRange par = eval_short_range(sys, nlist, &pool, &ws, true);
    expect_close(serial, par, 1e-10);
  }
}

TEST(Threaded, DeterministicForFixedThreadCount) {
  const System& sys = water2k();
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());

  ThreadPool pool(4);
  ForceWorkspace ws;
  const ShortRange a = eval_short_range(sys, nlist, &pool, &ws, false);
  const ShortRange b = eval_short_range(sys, nlist, &pool, &ws, false);
  for (size_t i = 0; i < a.f.size(); ++i) {
    EXPECT_EQ(a.f[i].x, b.f[i].x);
    EXPECT_EQ(a.f[i].y, b.f[i].y);
    EXPECT_EQ(a.f[i].z, b.f[i].z);
  }
  EXPECT_EQ(a.e.lj, b.e.lj);
  EXPECT_EQ(a.e.coulomb_real, b.e.coulomb_real);
  EXPECT_EQ(a.e.coulomb_excl, b.e.coulomb_excl);
  EXPECT_EQ(a.e.virial, b.e.virial);
}

TEST(Threaded, ParallelNlistBuildMatchesSerialCsrExactly) {
  const System& sys = water2k();
  for (unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    NeighborList serial(6.5, 0.7);
    serial.build(sys.box(), sys.positions(), sys.topology());

    ThreadPool pool(threads);
    NeighborList par(6.5, 0.7);
    par.build(sys.box(), sys.positions(), sys.topology(), &pool);

    ASSERT_EQ(serial.num_pairs(), par.num_pairs());
    const auto s0 = serial.starts();
    const auto s1 = par.starts();
    ASSERT_EQ(s0.size(), s1.size());
    for (size_t i = 0; i < s0.size(); ++i) EXPECT_EQ(s0[i], s1[i]);
    for (int i = 0; i < serial.num_atoms(); ++i) {
      const auto n0 = serial.neighbors_of(i);
      const auto n1 = par.neighbors_of(i);
      ASSERT_EQ(n0.size(), n1.size()) << "atom " << i;
      for (size_t k = 0; k < n0.size(); ++k) EXPECT_EQ(n0[k], n1[k]);
    }
  }
}

TEST(Threaded, NeedsRebuildMatchesSerial) {
  const System& sys = water2k();
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());
  ThreadPool pool(4);

  std::vector<Vec3> moved(sys.positions().begin(), sys.positions().end());
  EXPECT_FALSE(nlist.needs_rebuild(sys.box(), moved));
  EXPECT_FALSE(nlist.needs_rebuild(sys.box(), moved, &pool));

  // Displace one atom just under, then just over, half the skin.
  moved[100].x += 0.34;
  EXPECT_FALSE(nlist.needs_rebuild(sys.box(), moved));
  EXPECT_FALSE(nlist.needs_rebuild(sys.box(), moved, &pool));
  moved[100].x += 0.02;
  EXPECT_TRUE(nlist.needs_rebuild(sys.box(), moved));
  EXPECT_TRUE(nlist.needs_rebuild(sys.box(), moved, &pool));
}

// tabulate_erfc=true sends both modes through the vectorized pair kernel:
// the SoA position staging and lane buffers live in ForceWorkspace (sized at
// warm-up, not per call), so the steady state stays allocation-free for the
// double-batch path and the deterministic fixed-point-batch path alike.
TEST(Threaded, SteadyStateShortRangeIsAllocationFree) {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kMesh;
  p.tabulate_erfc = true;
  for (const bool deterministic : {false, true}) {
    SCOPED_TRACE(deterministic ? "deterministic" : "fast");
    p.deterministic_forces = deterministic;
    ThreadPool pool(4);
    System sys = build_water_box(729, 11);
    ForceCompute force(sys.topology_ptr(), sys.box(), p, &pool);
    force.warm(sys.positions());

    std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
    // Two warm-up evaluations let every lazily-touched buffer reach its
    // steady-state size.
    force.compute_short(sys.positions(), f);
    force.compute_short(sys.positions(), f);

    const std::int64_t before = g_allocs.load();
    force.compute_short(sys.positions(), f);
    const std::int64_t during = g_allocs.load() - before;
    EXPECT_EQ(during, 0) << "steady-state compute_short allocated";

    // A rebuild at steady state reuses the persistent CSR and shard scratch.
    const std::int64_t before_build = g_allocs.load();
    NeighborList& nlist = const_cast<NeighborList&>(force.nlist());
    nlist.build(sys.box(), sys.positions(), sys.topology(), &pool);
    const std::int64_t during_build = g_allocs.load() - before_build;
    EXPECT_EQ(during_build, 0) << "steady-state nlist build allocated";
  }
}

// The long-range path — GSE spread, threaded r2c FFT, k-space multiply,
// inverse FFT, gather — must also run allocation-free once warmed: the FFT
// plan owns per-thread scratch, and the GSE workspace holds the per-thread
// grids and axis-weight arrays persistently.
TEST(Threaded, SteadyStateLongRangeIsAllocationFree) {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kMesh;
  p.tabulate_erfc = true;
  for (const bool deterministic : {false, true}) {
    SCOPED_TRACE(deterministic ? "deterministic" : "fast");
    p.deterministic_forces = deterministic;
    ThreadPool pool(4);
    System sys = build_water_box(729, 11);
    ForceCompute force(sys.topology_ptr(), sys.box(), p, &pool);
    force.warm(sys.positions());

    std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
    force.compute_long(sys.positions(), f);
    force.compute_long(sys.positions(), f);

    const std::int64_t before = g_allocs.load();
    force.compute_long(sys.positions(), f);
    const std::int64_t during = g_allocs.load() - before;
    EXPECT_EQ(during, 0) << "steady-state compute_long allocated";

    // The combined evaluation (short + long) is the per-step hot path.
    force.compute_all(sys.positions(), f);
    const std::int64_t before_all = g_allocs.load();
    force.compute_all(sys.positions(), f);
    const std::int64_t during_all = g_allocs.load() - before_all;
    EXPECT_EQ(during_all, 0) << "steady-state compute_all allocated";
  }
}

}  // namespace
}  // namespace anton::md
