// Tests for the extended engine features: thermostat family, restraints,
// salt ions.
#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "md/bonded.h"
#include "md/engine.h"
#include "md/minimize.h"

namespace anton::md {
namespace {

MdParams base_params() {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.0;
  p.respa_k = 2;
  p.long_range = LongRangeMethod::kMesh;
  return p;
}

class ThermostatFamily
    : public ::testing::TestWithParam<ThermostatKind> {};

TEST_P(ThermostatFamily, DrivesColdSystemToTarget) {
  System sys = build_water_box(125, 301);
  sys.assign_velocities(120.0, 1);  // cold start
  MdParams p = base_params();
  p.thermostat = GetParam();
  p.temperature_k = 300.0;
  p.langevin_gamma_per_fs = 0.05;
  p.thermostat_tau_fs = 50.0;
  Simulation sim(std::move(sys), p);
  sim.step(400);
  double t_acc = 0;
  for (int i = 0; i < 40; ++i) {
    sim.step(2);
    t_acc += sim.system().temperature();
  }
  const double t_mean = t_acc / 40;
  EXPECT_GT(t_mean, 240.0);
  EXPECT_LT(t_mean, 360.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ThermostatFamily,
                         ::testing::Values(ThermostatKind::kLangevin,
                                           ThermostatKind::kBerendsen,
                                           ThermostatKind::kVelocityRescale));

TEST(Thermostat, NoneLeavesEnergyAlone) {
  System sys = build_water_box(125, 302);
  MdParams p = base_params();
  p.thermostat = ThermostatKind::kNone;
  Simulation sim(std::move(sys), p);
  sim.step(50);
  const double e0 = sim.energies().total();
  sim.step(100);
  const double e1 = sim.energies().total();
  EXPECT_LT(std::abs(e1 - e0), 0.01 * sim.system().kinetic_energy());
}

TEST(Thermostat, BerendsenAndRescaleAreDeterministic) {
  auto run = [](ThermostatKind kind) {
    System sys = build_water_box(64, 303, -1);
    sys.assign_velocities(250.0, 9);
    MdParams p = base_params();
    p.cutoff = 5.0;
    p.skin = 0.5;
    p.thermostat = kind;
    Simulation sim(std::move(sys), p);
    sim.step(20);
    return sim.system().positions()[10];
  };
  EXPECT_EQ(run(ThermostatKind::kBerendsen),
            run(ThermostatKind::kBerendsen));
  EXPECT_EQ(run(ThermostatKind::kVelocityRescale),
            run(ThermostatKind::kVelocityRescale));
}

TEST(Restraints, PositionRestraintForceAndEnergy) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.finalize();
  top.add_position_restraint({0, 10.0, Vec3{5, 5, 5}});
  const Box box = Box::cube(20);
  std::vector<Vec3> pos{{6, 5, 5}};  // 1 Å off target
  std::vector<Vec3> f(1);
  EnergyReport e;
  compute_restraints(box, top, pos, f, e);
  EXPECT_NEAR(e.restraint, 10.0, 1e-12);
  EXPECT_NEAR(f[0].x, -20.0, 1e-12);  // -2k dx
  EXPECT_NEAR(f[0].y, 0.0, 1e-12);
}

TEST(Restraints, DistanceRestraintMatchesFiniteDifference) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.finalize();
  top.add_distance_restraint({0, 1, 5.0, 3.0});
  const Box box = Box::cube(20);
  std::vector<Vec3> pos{{5, 5, 5}, {8.5, 6, 4.3}};
  std::vector<Vec3> f(2);
  EnergyReport e;
  compute_restraints(box, top, pos, f, e);
  const double h = 1e-6;
  for (int ax = 0; ax < 3; ++ax) {
    auto at = [&](double d) {
      std::vector<Vec3> p = pos;
      p[1][ax] += d;
      EnergyReport er;
      std::vector<Vec3> tmp(2);
      compute_restraints(box, top, p, tmp, er);
      return er.restraint;
    };
    EXPECT_NEAR(f[1][ax], -(at(h) - at(-h)) / (2 * h), 1e-5);
  }
}

TEST(Restraints, PinnedAtomStaysPut) {
  // Pin one water oxygen hard; after dynamics it should remain near the
  // target while unpinned atoms diffuse.
  System sys = build_water_box(125, 304);
  const Vec3 target = sys.positions()[0];
  auto top = std::make_shared<Topology>(sys.topology());
  top->add_position_restraint({0, 200.0, target});
  System pinned(top, sys.box(),
                std::vector<Vec3>(sys.positions().begin(),
                                  sys.positions().end()));
  pinned.assign_velocities(300.0, 5);
  MdParams p = base_params();
  p.thermostat = ThermostatKind::kLangevin;
  p.langevin_gamma_per_fs = 0.02;
  Simulation sim(std::move(pinned), p);
  sim.step(300);
  EXPECT_LT(norm(sim.system().positions()[0] - target), 1.0);
}

TEST(Ions, BuilderAddsNeutralSaltPairs) {
  BuilderOptions o;
  o.total_atoms = 3000;
  o.solute_fraction = 0.05;
  o.ion_pairs = 10;
  o.temperature_k = -1;
  o.seed = 305;
  const System sys = build_solvated_system(o);
  EXPECT_EQ(sys.num_atoms(), 3000);
  EXPECT_NEAR(sys.topology().total_charge(), 0.0, 1e-9);
  int n_ions = 0;
  for (int i = 0; i < sys.num_atoms(); ++i) {
    if (sys.topology().type(i) == ForceField::Std::kION) ++n_ions;
  }
  EXPECT_EQ(n_ions, 20);
}

TEST(Ions, SaltSystemRunsStably) {
  BuilderOptions o;
  o.total_atoms = 1500;
  o.solute_fraction = 0.0;
  o.ion_pairs = 6;
  o.seed = 306;
  System sys = build_solvated_system(o);
  MdParams p = base_params();
  md::minimize_energy(sys, p, 100);
  sys.assign_velocities(300.0, 306);
  Simulation sim(std::move(sys), p);
  EXPECT_NO_THROW(sim.step(50));
}

}  // namespace
}  // namespace anton::md
