// Deterministic-forces regression tests.
//
// MdParams::deterministic_forces quantizes every pair contribution to 32.32
// fixed point before accumulation.  Fixed-point addition is exactly
// associative, so the reduced forces are bitwise identical for ANY thread
// count — serial included — which is the property Anton 2's hardware
// accumulation provides and which double-precision per-thread buffers cannot
// (summation grouping changes with the chunking).  The system here is 2187
// atoms, above the kernels' serial-fallback threshold, so the threaded paths
// genuinely engage.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "chem/builder.h"
#include "common/threadpool.h"
#include "md/forces.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"

namespace anton::md {
namespace {

const System& water2k() {
  static const System* sys = new System(build_water_box(729, 11));
  return *sys;
}

struct ShortRange {
  std::vector<Vec3> f;
  EnergyReport e;
};

ShortRange eval_deterministic(const System& sys, const NeighborList& nlist,
                              ThreadPool* pool, ForceWorkspace* ws,
                              bool deterministic) {
  ShortRange r;
  r.f.assign(static_cast<size_t>(sys.num_atoms()), Vec3{});
  compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                    r.f, r.e, pool, /*shift_at_cutoff=*/true, ws,
                    /*tabulate_erfc=*/false, deterministic);
  compute_excluded_correction(sys.box(), sys.topology(), sys.positions(), 0.35,
                              r.f, r.e, pool, ws, deterministic);
  return r;
}

void expect_bitwise_equal(const ShortRange& a, const ShortRange& b) {
  ASSERT_EQ(a.f.size(), b.f.size());
  for (size_t i = 0; i < a.f.size(); ++i) {
    ASSERT_EQ(a.f[i].x, b.f[i].x) << "atom " << i;
    ASSERT_EQ(a.f[i].y, b.f[i].y) << "atom " << i;
    ASSERT_EQ(a.f[i].z, b.f[i].z) << "atom " << i;
  }
  EXPECT_EQ(a.e.lj, b.e.lj);
  EXPECT_EQ(a.e.coulomb_real, b.e.coulomb_real);
  EXPECT_EQ(a.e.coulomb_excl, b.e.coulomb_excl);
  EXPECT_EQ(a.e.virial, b.e.virial);
}

// The headline property: serial and every thread count produce the same bits.
TEST(Determinism, BitwiseIdenticalForcesAcross1_2_8Threads) {
  const System& sys = water2k();
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());

  const ShortRange serial =
      eval_deterministic(sys, nlist, nullptr, nullptr, true);
  for (unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ForceWorkspace ws;
    const ShortRange par = eval_deterministic(sys, nlist, &pool, &ws, true);
    expect_bitwise_equal(serial, par);
  }
}

// Same property on the tabulated pair path, which runs the vectorized
// kernel (lane-gathered erfc tables + per-lane fixed-point quantization in
// lane order).  This certifies the SIMD fixed-point accumulation: serial and
// every thread count produce the same bits with tables enabled.
TEST(Determinism, TabulatedBitwiseIdenticalForcesAcross1_2_4_8Threads) {
  const System& sys = water2k();
  NeighborList nlist(9.0, 1.0);
  nlist.build(sys.box(), sys.positions(), sys.topology());

  auto eval_tabulated = [&](ThreadPool* pool, ForceWorkspace* ws) {
    ShortRange r;
    r.f.assign(static_cast<size_t>(sys.num_atoms()), Vec3{});
    compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                      r.f, r.e, pool, /*shift_at_cutoff=*/true, ws,
                      /*tabulate_erfc=*/true, /*deterministic=*/true);
    compute_excluded_correction(sys.box(), sys.topology(), sys.positions(),
                                0.35, r.f, r.e, pool, ws,
                                /*deterministic=*/true);
    return r;
  };

  ForceWorkspace ws_serial;
  const ShortRange serial = eval_tabulated(nullptr, &ws_serial);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ForceWorkspace ws;
    const ShortRange par = eval_tabulated(&pool, &ws);
    expect_bitwise_equal(serial, par);
  }
}

// Quantization must not meaningfully perturb the physics: the fixed-point
// result tracks the double path to roughly the 32.32 resolution per pair.
TEST(Determinism, FixedPointTracksDoublePath) {
  const System& sys = water2k();
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());

  ThreadPool pool(4);
  ForceWorkspace ws;
  const ShortRange dbl = eval_deterministic(sys, nlist, &pool, &ws, false);
  const ShortRange fxd = eval_deterministic(sys, nlist, &pool, &ws, true);
  ASSERT_EQ(dbl.f.size(), fxd.f.size());
  for (size_t i = 0; i < dbl.f.size(); ++i) {
    const double scale =
        std::max(1.0, std::sqrt(std::max(norm2(dbl.f[i]), norm2(fxd.f[i]))));
    EXPECT_NEAR(dbl.f[i].x, fxd.f[i].x, 1e-6 * scale) << "atom " << i;
    EXPECT_NEAR(dbl.f[i].y, fxd.f[i].y, 1e-6 * scale) << "atom " << i;
    EXPECT_NEAR(dbl.f[i].z, fxd.f[i].z, 1e-6 * scale) << "atom " << i;
  }
  const double escale =
      std::max({1.0, std::abs(dbl.e.lj), std::abs(dbl.e.coulomb_real)});
  EXPECT_NEAR(dbl.e.lj, fxd.e.lj, 1e-6 * escale);
  EXPECT_NEAR(dbl.e.coulomb_real, fxd.e.coulomb_real, 1e-6 * escale);
  EXPECT_NEAR(dbl.e.coulomb_excl, fxd.e.coulomb_excl, 1e-6 * escale);
}

// Same property through the full ForceCompute front end, the way an engine
// run would use it (MdParams::deterministic_forces).
TEST(Determinism, ForceComputeShortRangeBitwiseAcrossThreadCounts) {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kMesh;
  p.deterministic_forces = true;

  System sys = build_water_box(729, 11);
  const size_t n = static_cast<size_t>(sys.num_atoms());

  std::vector<Vec3> ref(n);
  {
    ForceCompute force(sys.topology_ptr(), sys.box(), p, nullptr);
    force.compute_short(sys.positions(), ref);
  }
  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ForceCompute force(sys.topology_ptr(), sys.box(), p, &pool);
    std::vector<Vec3> f(n);
    force.compute_short(sys.positions(), f);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref[i].x, f[i].x) << "atom " << i;
      ASSERT_EQ(ref[i].y, f[i].y) << "atom " << i;
      ASSERT_EQ(ref[i].z, f[i].z) << "atom " << i;
    }
  }
}

// Long-range path: the GSE mesh spread quantizes every grid contribution to
// fixed point, so reciprocal-space forces are bitwise identical for any
// thread count (the gather and FFT are data-parallel pure functions).
TEST(Determinism, LongRangeMeshBitwiseAcross1_2_4_8Threads) {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kMesh;
  p.deterministic_forces = true;

  System sys = build_water_box(729, 11);
  const size_t n = static_cast<size_t>(sys.num_atoms());

  std::vector<Vec3> ref(n);
  EnergyReport e_ref;
  {
    ForceCompute force(sys.topology_ptr(), sys.box(), p, nullptr);
    e_ref = force.compute_long(sys.positions(), ref);
  }
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ForceCompute force(sys.topology_ptr(), sys.box(), p, &pool);
    std::vector<Vec3> f(n);
    const EnergyReport e = force.compute_long(sys.positions(), f);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref[i].x, f[i].x) << "atom " << i;
      ASSERT_EQ(ref[i].y, f[i].y) << "atom " << i;
      ASSERT_EQ(ref[i].z, f[i].z) << "atom " << i;
    }
    EXPECT_EQ(e_ref.coulomb_kspace, e.coulomb_kspace);
    EXPECT_EQ(e_ref.virial, e.virial);
  }
}

// Direct Ewald is bitwise stable across thread counts by construction: each
// S(k) is a serial sum in atom order and the force pass is per-atom pure.
TEST(Determinism, DirectEwaldBitwiseAcrossThreadCounts) {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kDirect;
  p.kspace_nmax = 4;
  p.deterministic_forces = true;

  System sys = build_water_box(216, 13);
  const size_t n = static_cast<size_t>(sys.num_atoms());

  std::vector<Vec3> ref(n);
  EnergyReport e_ref;
  {
    ForceCompute force(sys.topology_ptr(), sys.box(), p, nullptr);
    e_ref = force.compute_long(sys.positions(), ref);
  }
  for (unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ForceCompute force(sys.topology_ptr(), sys.box(), p, &pool);
    std::vector<Vec3> f(n);
    const EnergyReport e = force.compute_long(sys.positions(), f);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref[i].x, f[i].x) << "atom " << i;
      ASSERT_EQ(ref[i].y, f[i].y) << "atom " << i;
      ASSERT_EQ(ref[i].z, f[i].z) << "atom " << i;
    }
    EXPECT_EQ(e_ref.coulomb_kspace, e.coulomb_kspace);
    EXPECT_EQ(e_ref.virial, e.virial);
  }
}

// The acceptance property for the full pipeline: total (short- plus
// long-range) forces bit-identical across thread counts 1/2/4/8.
TEST(Determinism, TotalForcesBitwiseAcross1_2_4_8Threads) {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kMesh;
  p.deterministic_forces = true;

  System sys = build_water_box(729, 11);
  const size_t n = static_cast<size_t>(sys.num_atoms());

  std::vector<Vec3> ref(n);
  {
    ForceCompute force(sys.topology_ptr(), sys.box(), p, nullptr);
    force.compute_all(sys.positions(), ref);
  }
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    ForceCompute force(sys.topology_ptr(), sys.box(), p, &pool);
    std::vector<Vec3> f(n);
    force.compute_all(sys.positions(), f);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref[i].x, f[i].x) << "atom " << i;
      ASSERT_EQ(ref[i].y, f[i].y) << "atom " << i;
      ASSERT_EQ(ref[i].z, f[i].z) << "atom " << i;
    }
  }
}

// The deterministic long-range result must track the double-precision path
// to the fixed-point quantization scale, not perturb the physics.
TEST(Determinism, LongRangeFixedPointTracksDoublePath) {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kMesh;

  System sys = build_water_box(729, 11);
  const size_t n = static_cast<size_t>(sys.num_atoms());
  ThreadPool pool(4);

  std::vector<Vec3> f_dbl(n), f_fxd(n);
  EnergyReport e_dbl, e_fxd;
  {
    ForceCompute force(sys.topology_ptr(), sys.box(), p, &pool);
    e_dbl = force.compute_long(sys.positions(), f_dbl);
  }
  p.deterministic_forces = true;
  {
    ForceCompute force(sys.topology_ptr(), sys.box(), p, &pool);
    e_fxd = force.compute_long(sys.positions(), f_fxd);
  }
  for (size_t i = 0; i < n; ++i) {
    const double scale = std::max(
        1.0, std::sqrt(std::max(norm2(f_dbl[i]), norm2(f_fxd[i]))));
    EXPECT_NEAR(f_dbl[i].x, f_fxd[i].x, 1e-6 * scale) << "atom " << i;
    EXPECT_NEAR(f_dbl[i].y, f_fxd[i].y, 1e-6 * scale) << "atom " << i;
    EXPECT_NEAR(f_dbl[i].z, f_fxd[i].z, 1e-6 * scale) << "atom " << i;
  }
  const double escale = std::max(1.0, std::abs(e_dbl.coulomb_kspace));
  EXPECT_NEAR(e_dbl.coulomb_kspace, e_fxd.coulomb_kspace, 1e-4 * escale);
  EXPECT_NEAR(e_dbl.virial, e_fxd.virial,
              1e-4 * std::max(1.0, std::abs(e_dbl.virial)));
}

// Repeated evaluation with the same workspace must also be stable (no state
// leaks between deterministic evaluations).
TEST(Determinism, RepeatedEvaluationIsStable) {
  const System& sys = water2k();
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());

  ThreadPool pool(2);
  ForceWorkspace ws;
  const ShortRange a = eval_deterministic(sys, nlist, &pool, &ws, true);
  const ShortRange b = eval_deterministic(sys, nlist, &pool, &ws, true);
  expect_bitwise_equal(a, b);
}

// The CSR well-formedness validator must accept a freshly built list (it
// auto-runs inside build() under the invariant layer; this keeps it covered
// in release builds too).
TEST(Determinism, NeighborListValidateAcceptsFreshBuild) {
  const System& sys = water2k();
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());
  nlist.validate();
  ThreadPool pool(4);
  nlist.build(sys.box(), sys.positions(), sys.topology(), &pool);
  nlist.validate();
}

}  // namespace
}  // namespace anton::md
