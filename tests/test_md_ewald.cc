#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "common/rng.h"
#include "common/units.h"
#include "md/ewald.h"
#include "md/gse.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"

namespace anton::md {
namespace {

// Builds a random neutral point-charge gas (ions only, no LJ relevance).
struct ChargeGas {
  Box box;
  std::shared_ptr<Topology> top;
  std::vector<Vec3> pos;

  ChargeGas(int n_pairs, double box_len, uint64_t seed) : box(Box::cube(box_len)) {
    ForceField ff = ForceField::standard();
    top = std::make_shared<Topology>(ff);
    Rng rng(seed, 0);
    for (int i = 0; i < n_pairs; ++i) {
      top->add_atom(ForceField::Std::kION, 1.0);
      top->add_atom(ForceField::Std::kION, -1.0);
      pos.push_back(rng.uniform_in_box(box.lengths()));
      pos.push_back(rng.uniform_in_box(box.lengths()));
    }
    top->finalize();
  }
};

// Total Coulomb energy from the three Ewald pieces (no LJ: ION atoms do have
// LJ but we read only the Coulomb terms).
double total_coulomb_direct(const ChargeGas& g, double alpha, int nmax,
                            double cutoff) {
  NeighborList nlist(cutoff, 0.0);
  nlist.build(g.box, g.pos, *g.top);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport e;
  compute_nonbonded(g.box, *g.top, nlist, g.pos, alpha, f, e);
  EwaldDirect ewald(g.box, alpha, nmax);
  ewald.compute(*g.top, g.pos, f, e);
  e.coulomb_self += ewald_self_energy(*g.top, alpha);
  compute_excluded_correction(g.box, *g.top, g.pos, alpha, f, e);
  return e.coulomb_real + e.coulomb_kspace + e.coulomb_self + e.coulomb_excl;
}

TEST(EwaldDirect, AlphaIndependence) {
  // The physical energy must not depend on the splitting parameter.
  ChargeGas g(8, 14.0, 31);
  const double e1 = total_coulomb_direct(g, 0.45, 12, 6.9);
  const double e2 = total_coulomb_direct(g, 0.60, 14, 6.9);
  EXPECT_NEAR(e1, e2, std::abs(e1) * 1e-4 + 1e-4);
}

TEST(EwaldDirect, MadelungConstantRockSalt) {
  // 4x4x4 NaCl lattice (64 ions), spacing a = 2.82 Å.  Madelung constant
  // for rock salt: E per ion pair = -1.747565 * C / a.
  const double a = 2.82;
  const int n = 4;
  Box box = Box::cube(n * a);
  ForceField ff = ForceField::standard();
  auto top = std::make_shared<Topology>(ff);
  std::vector<Vec3> pos;
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        top->add_atom(ForceField::Std::kION,
                      ((x + y + z) % 2 == 0) ? 1.0 : -1.0);
        pos.push_back({x * a, y * a, z * a});
      }
    }
  }
  top->finalize();

  const double alpha = 0.8;
  NeighborList nlist(0.49 * n * a, 0.0);
  nlist.build(box, pos, *top);
  std::vector<Vec3> f(pos.size());
  EnergyReport e;
  compute_nonbonded(box, *top, nlist, pos, alpha, f, e);
  EwaldDirect ewald(box, alpha, 14);
  ewald.compute(*top, pos, f, e);
  e.coulomb_self += ewald_self_energy(*top, alpha);
  const double total =
      e.coulomb_real + e.coulomb_kspace + e.coulomb_self;
  // Madelung convention: lattice energy per *ion pair* = -M C / a.
  const double per_pair = total / (n * n * n / 2);
  const double madelung = -per_pair * a / units::kCoulomb;
  EXPECT_NEAR(madelung, 1.747565, 2e-4);

  // Perfect lattice: forces vanish by symmetry.
  for (const auto& fi : f) EXPECT_NEAR(norm(fi), 0.0, 1e-6);
}

TEST(EwaldDirect, ForcesMatchFiniteDifference) {
  ChargeGas g(4, 12.0, 33);
  const double alpha = 0.5;
  EwaldDirect ewald(g.box, alpha, 8);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport e;
  ewald.compute(*g.top, g.pos, f, e);

  const double h = 1e-5;
  for (size_t i = 0; i < std::min<size_t>(3, g.pos.size()); ++i) {
    for (int ax = 0; ax < 3; ++ax) {
      auto at = [&](double d) {
        std::vector<Vec3> p = g.pos;
        p[i][ax] += d;
        return ewald.energy_only(*g.top, p);
      };
      const double fd = -(at(h) - at(-h)) / (2 * h);
      EXPECT_NEAR(f[i][ax], fd, std::abs(fd) * 1e-5 + 1e-6)
          << "atom " << i << " axis " << ax;
    }
  }
}

TEST(EwaldDirect, EnergyOnlyMatchesCompute) {
  ChargeGas g(6, 13.0, 34);
  EwaldDirect ewald(g.box, 0.5, 8);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport e;
  ewald.compute(*g.top, g.pos, f, e);
  EXPECT_NEAR(e.coulomb_kspace, ewald.energy_only(*g.top, g.pos), 1e-10);
}

TEST(GseMesh, EnergyMatchesDirectEwald) {
  ChargeGas g(12, 16.0, 35);
  const double alpha = 0.35;

  EwaldDirect direct(g.box, alpha, 12);
  std::vector<Vec3> fd(g.pos.size());
  EnergyReport ed;
  direct.compute(*g.top, g.pos, fd, ed);

  GseMesh gse(g.box, alpha, 0.8, 1.1);
  std::vector<Vec3> fg(g.pos.size());
  EnergyReport eg;
  gse.compute(*g.top, g.pos, fg, eg);

  EXPECT_NEAR(eg.coulomb_kspace, ed.coulomb_kspace,
              std::abs(ed.coulomb_kspace) * 2e-3 + 1e-3);
}

TEST(GseMesh, ForcesMatchDirectEwald) {
  ChargeGas g(12, 16.0, 36);
  const double alpha = 0.35;

  EwaldDirect direct(g.box, alpha, 12);
  std::vector<Vec3> fd(g.pos.size());
  EnergyReport ed;
  direct.compute(*g.top, g.pos, fd, ed);

  GseMesh gse(g.box, alpha, 0.8, 1.1);
  std::vector<Vec3> fg(g.pos.size());
  EnergyReport eg;
  gse.compute(*g.top, g.pos, fg, eg);

  // RMS force of the direct sum sets the scale.
  double rms = 0;
  for (const auto& f : fd) rms += norm2(f);
  rms = std::sqrt(rms / static_cast<double>(fd.size()));
  for (size_t i = 0; i < fd.size(); ++i) {
    EXPECT_NEAR(fg[i].x, fd[i].x, 0.02 * rms + 1e-4);
    EXPECT_NEAR(fg[i].y, fd[i].y, 0.02 * rms + 1e-4);
    EXPECT_NEAR(fg[i].z, fd[i].z, 0.02 * rms + 1e-4);
  }
}

TEST(GseMesh, RefinementConverges) {
  ChargeGas g(10, 15.0, 37);
  const double alpha = 0.35;
  EwaldDirect direct(g.box, alpha, 12);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport ed;
  direct.compute(*g.top, g.pos, f, ed);

  // A very coarse mesh aliases badly; a fine mesh converges to a small
  // plateau set by the truncated spreading Gaussian (~1e-3 relative).
  auto gse_error = [&](double spacing) {
    GseMesh gse(g.box, alpha, spacing, 1.1);
    std::vector<Vec3> fg(g.pos.size());
    EnergyReport eg;
    gse.compute(*g.top, g.pos, fg, eg);
    return std::abs(eg.coulomb_kspace - ed.coulomb_kspace);
  };
  const double scale = std::abs(ed.coulomb_kspace);
  const double coarse = gse_error(3.6);
  const double fine = gse_error(0.9);
  EXPECT_GT(coarse, 4.0 * fine);
  EXPECT_LT(fine, scale * 5e-3 + 5e-3);
}

TEST(GseMesh, RejectsUnstableParameters) {
  Box box = Box::cube(20.0);
  EXPECT_THROW(GseMesh(box, 0.5, 1.0, 1.2), Error);  // sigma*alpha = 0.6
}

TEST(GseMesh, NewtonsThirdLaw) {
  ChargeGas g(16, 18.0, 38);
  GseMesh gse(g.box, 0.35, 0.9, 1.1);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport e;
  gse.compute(*g.top, g.pos, f, e);
  Vec3 net{};
  for (const auto& fi : f) net += fi;
  // Mesh methods conserve momentum only approximately; tolerance scales
  // with the force magnitude.
  double rms = 0;
  for (const auto& fi : f) rms += norm2(fi);
  rms = std::sqrt(rms / static_cast<double>(f.size()));
  EXPECT_LT(norm(net), 0.05 * rms * std::sqrt(double(f.size())));
}

TEST(GseMesh, SupportPointsReported) {
  Box box = Box::cube(32.0);
  GseMesh gse(box, 0.35, 1.0, 1.2);
  EXPECT_GT(gse.support_points(), 26);
  EXPECT_EQ(gse.nx(), 32);
}

}  // namespace
}  // namespace anton::md
