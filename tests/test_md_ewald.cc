#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "common/units.h"
#include "md/ewald.h"
#include "md/gse.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"

namespace anton::md {
namespace {

// Builds a random neutral point-charge gas (ions only, no LJ relevance).
struct ChargeGas {
  Box box;
  std::shared_ptr<Topology> top;
  std::vector<Vec3> pos;

  ChargeGas(int n_pairs, double box_len, uint64_t seed) : box(Box::cube(box_len)) {
    ForceField ff = ForceField::standard();
    top = std::make_shared<Topology>(ff);
    Rng rng(seed, 0);
    for (int i = 0; i < n_pairs; ++i) {
      top->add_atom(ForceField::Std::kION, 1.0);
      top->add_atom(ForceField::Std::kION, -1.0);
      pos.push_back(rng.uniform_in_box(box.lengths()));
      pos.push_back(rng.uniform_in_box(box.lengths()));
    }
    top->finalize();
  }
};

// Total Coulomb energy from the three Ewald pieces (no LJ: ION atoms do have
// LJ but we read only the Coulomb terms).
double total_coulomb_direct(const ChargeGas& g, double alpha, int nmax,
                            double cutoff) {
  NeighborList nlist(cutoff, 0.0);
  nlist.build(g.box, g.pos, *g.top);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport e;
  compute_nonbonded(g.box, *g.top, nlist, g.pos, alpha, f, e);
  EwaldDirect ewald(g.box, alpha, nmax);
  ewald.compute(*g.top, g.pos, f, e);
  e.coulomb_self += ewald_self_energy(*g.top, alpha);
  compute_excluded_correction(g.box, *g.top, g.pos, alpha, f, e);
  return e.coulomb_real + e.coulomb_kspace + e.coulomb_self + e.coulomb_excl;
}

TEST(EwaldDirect, AlphaIndependence) {
  // The physical energy must not depend on the splitting parameter.
  ChargeGas g(8, 14.0, 31);
  const double e1 = total_coulomb_direct(g, 0.45, 12, 6.9);
  const double e2 = total_coulomb_direct(g, 0.60, 14, 6.9);
  EXPECT_NEAR(e1, e2, std::abs(e1) * 1e-4 + 1e-4);
}

TEST(EwaldDirect, MadelungConstantRockSalt) {
  // 4x4x4 NaCl lattice (64 ions), spacing a = 2.82 Å.  Madelung constant
  // for rock salt: E per ion pair = -1.747565 * C / a.
  const double a = 2.82;
  const int n = 4;
  Box box = Box::cube(n * a);
  ForceField ff = ForceField::standard();
  auto top = std::make_shared<Topology>(ff);
  std::vector<Vec3> pos;
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        top->add_atom(ForceField::Std::kION,
                      ((x + y + z) % 2 == 0) ? 1.0 : -1.0);
        pos.push_back({x * a, y * a, z * a});
      }
    }
  }
  top->finalize();

  const double alpha = 0.8;
  NeighborList nlist(0.49 * n * a, 0.0);
  nlist.build(box, pos, *top);
  std::vector<Vec3> f(pos.size());
  EnergyReport e;
  compute_nonbonded(box, *top, nlist, pos, alpha, f, e);
  EwaldDirect ewald(box, alpha, 14);
  ewald.compute(*top, pos, f, e);
  e.coulomb_self += ewald_self_energy(*top, alpha);
  const double total =
      e.coulomb_real + e.coulomb_kspace + e.coulomb_self;
  // Madelung convention: lattice energy per *ion pair* = -M C / a.
  const double per_pair = total / (n * n * n / 2);
  const double madelung = -per_pair * a / units::kCoulomb;
  EXPECT_NEAR(madelung, 1.747565, 2e-4);

  // Perfect lattice: forces vanish by symmetry.
  for (const auto& fi : f) EXPECT_NEAR(norm(fi), 0.0, 1e-6);
}

TEST(EwaldDirect, ForcesMatchFiniteDifference) {
  ChargeGas g(4, 12.0, 33);
  const double alpha = 0.5;
  EwaldDirect ewald(g.box, alpha, 8);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport e;
  ewald.compute(*g.top, g.pos, f, e);

  const double h = 1e-5;
  for (size_t i = 0; i < std::min<size_t>(3, g.pos.size()); ++i) {
    for (int ax = 0; ax < 3; ++ax) {
      auto at = [&](double d) {
        std::vector<Vec3> p = g.pos;
        p[i][ax] += d;
        return ewald.energy_only(*g.top, p);
      };
      const double fd = -(at(h) - at(-h)) / (2 * h);
      EXPECT_NEAR(f[i][ax], fd, std::abs(fd) * 1e-5 + 1e-6)
          << "atom " << i << " axis " << ax;
    }
  }
}

TEST(EwaldDirect, EnergyOnlyMatchesCompute) {
  ChargeGas g(6, 13.0, 34);
  EwaldDirect ewald(g.box, 0.5, 8);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport e;
  ewald.compute(*g.top, g.pos, f, e);
  EXPECT_NEAR(e.coulomb_kspace, ewald.energy_only(*g.top, g.pos), 1e-10);
}

TEST(GseMesh, EnergyMatchesDirectEwald) {
  ChargeGas g(12, 16.0, 35);
  const double alpha = 0.35;

  EwaldDirect direct(g.box, alpha, 12);
  std::vector<Vec3> fd(g.pos.size());
  EnergyReport ed;
  direct.compute(*g.top, g.pos, fd, ed);

  GseMesh gse(g.box, alpha, 0.8, 1.1);
  std::vector<Vec3> fg(g.pos.size());
  EnergyReport eg;
  gse.compute(*g.top, g.pos, fg, eg);

  EXPECT_NEAR(eg.coulomb_kspace, ed.coulomb_kspace,
              std::abs(ed.coulomb_kspace) * 2e-3 + 1e-3);
}

TEST(GseMesh, ForcesMatchDirectEwald) {
  ChargeGas g(12, 16.0, 36);
  const double alpha = 0.35;

  EwaldDirect direct(g.box, alpha, 12);
  std::vector<Vec3> fd(g.pos.size());
  EnergyReport ed;
  direct.compute(*g.top, g.pos, fd, ed);

  GseMesh gse(g.box, alpha, 0.8, 1.1);
  std::vector<Vec3> fg(g.pos.size());
  EnergyReport eg;
  gse.compute(*g.top, g.pos, fg, eg);

  // RMS force of the direct sum sets the scale.
  double rms = 0;
  for (const auto& f : fd) rms += norm2(f);
  rms = std::sqrt(rms / static_cast<double>(fd.size()));
  for (size_t i = 0; i < fd.size(); ++i) {
    EXPECT_NEAR(fg[i].x, fd[i].x, 0.02 * rms + 1e-4);
    EXPECT_NEAR(fg[i].y, fd[i].y, 0.02 * rms + 1e-4);
    EXPECT_NEAR(fg[i].z, fd[i].z, 0.02 * rms + 1e-4);
  }
}

TEST(GseMesh, RefinementConverges) {
  ChargeGas g(10, 15.0, 37);
  const double alpha = 0.35;
  EwaldDirect direct(g.box, alpha, 12);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport ed;
  direct.compute(*g.top, g.pos, f, ed);

  // A very coarse mesh aliases badly; a fine mesh converges to a small
  // plateau set by the truncated spreading Gaussian (~1e-3 relative).
  auto gse_error = [&](double spacing) {
    GseMesh gse(g.box, alpha, spacing, 1.1);
    std::vector<Vec3> fg(g.pos.size());
    EnergyReport eg;
    gse.compute(*g.top, g.pos, fg, eg);
    return std::abs(eg.coulomb_kspace - ed.coulomb_kspace);
  };
  const double scale = std::abs(ed.coulomb_kspace);
  const double coarse = gse_error(3.6);
  const double fine = gse_error(0.9);
  EXPECT_GT(coarse, 4.0 * fine);
  EXPECT_LT(fine, scale * 5e-3 + 5e-3);
}

TEST(GseMesh, RejectsUnstableParameters) {
  Box box = Box::cube(20.0);
  EXPECT_THROW(GseMesh(box, 0.5, 1.0, 1.2), Error);  // sigma*alpha = 0.6
}

TEST(GseMesh, NewtonsThirdLaw) {
  ChargeGas g(16, 18.0, 38);
  GseMesh gse(g.box, 0.35, 0.9, 1.1);
  std::vector<Vec3> f(g.pos.size());
  EnergyReport e;
  gse.compute(*g.top, g.pos, f, e);
  Vec3 net{};
  for (const auto& fi : f) net += fi;
  // Mesh methods conserve momentum only approximately; tolerance scales
  // with the force magnitude.
  double rms = 0;
  for (const auto& fi : f) rms += norm2(fi);
  rms = std::sqrt(rms / static_cast<double>(f.size()));
  EXPECT_LT(norm(net), 0.05 * rms * std::sqrt(double(f.size())));
}

TEST(GseMesh, SupportPointsReported) {
  Box box = Box::cube(32.0);
  GseMesh gse(box, 0.35, 1.0, 1.2);
  EXPECT_GT(gse.support_points(), 26);
  EXPECT_EQ(gse.nx(), 32);
}

// The threaded pipeline (per-thread spread grids, parallel k-space multiply,
// parallel gather) must agree with the serial one to accumulation roundoff.
TEST(GseMesh, ThreadedMatchesSerial) {
  ChargeGas g(24, 16.0, 39);
  GseMesh serial(g.box, 0.35, 0.8, 1.1);
  std::vector<Vec3> f0(g.pos.size());
  EnergyReport e0;
  serial.compute(*g.top, g.pos, f0, e0);
  double rms = 0;
  for (const auto& fi : f0) rms += norm2(fi);
  rms = std::sqrt(rms / static_cast<double>(f0.size()));
  for (unsigned threads : {2u, 4u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    GseMesh gse(g.box, 0.35, 0.8, 1.1, &pool);
    std::vector<Vec3> f(g.pos.size());
    EnergyReport e;
    gse.compute(*g.top, g.pos, f, e);
    EXPECT_NEAR(e.coulomb_kspace, e0.coulomb_kspace,
                1e-9 * std::abs(e0.coulomb_kspace) + 1e-9);
    EXPECT_NEAR(e.virial, e0.virial, 1e-9 * std::abs(e0.virial) + 1e-9);
    for (size_t i = 0; i < f.size(); ++i) {
      EXPECT_NEAR(f[i].x, f0[i].x, 1e-9 * rms + 1e-10) << "atom " << i;
      EXPECT_NEAR(f[i].y, f0[i].y, 1e-9 * rms + 1e-10) << "atom " << i;
      EXPECT_NEAR(f[i].z, f0[i].z, 1e-9 * rms + 1e-10) << "atom " << i;
    }
  }
}

// The threaded direct Ewald is bitwise equal to serial even without the
// deterministic flag: S(k) sums run in atom order per k, the scalar
// reduction is serial, and the force pass is per-atom pure.
TEST(EwaldDirect, ThreadedBitwiseEqualsSerial) {
  ChargeGas g(16, 14.0, 40);
  EwaldDirect serial(g.box, 0.4, 8);
  std::vector<Vec3> f0(g.pos.size());
  EnergyReport e0;
  serial.compute(*g.top, g.pos, f0, e0);
  for (unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    EwaldDirect ewald(g.box, 0.4, 8, &pool);
    std::vector<Vec3> f(g.pos.size());
    EnergyReport e;
    ewald.compute(*g.top, g.pos, f, e);
    EXPECT_EQ(e.coulomb_kspace, e0.coulomb_kspace);
    EXPECT_EQ(e.virial, e0.virial);
    for (size_t i = 0; i < f.size(); ++i) {
      ASSERT_EQ(f[i].x, f0[i].x) << "atom " << i;
      ASSERT_EQ(f[i].y, f0[i].y) << "atom " << i;
      ASSERT_EQ(f[i].z, f0[i].z) << "atom " << i;
    }
  }
}

// set_box must skip the table rebuild when the lengths are unchanged,
// rebuild in place when the dimensions survive, and produce results bitwise
// identical to a freshly constructed mesh in either case.
TEST(GseMesh, SetBoxSkipsAndMatchesFreshMesh) {
  ThreadPool pool(2);
  GseMesh gse(Box::cube(16.0), 0.35, 1.0, 1.2, &pool);
  EXPECT_EQ(gse.table_builds(), 1);
  EXPECT_EQ(gse.nx(), 16);

  // Unchanged lengths: everything skipped.
  gse.set_box(Box::cube(16.0));
  EXPECT_EQ(gse.table_builds(), 1);

  // Barostat-scale resize: ceil(15.8 / 1.0) = 16 keeps the mesh dimensions,
  // so the tables rebuild in place with no FFT re-plan or reallocation.
  gse.set_box(Box::cube(15.8));
  EXPECT_EQ(gse.table_builds(), 2);
  EXPECT_EQ(gse.nx(), 16);

  // Dimension change: FFT re-planned, buffers resized.
  gse.set_box(Box::cube(17.0));
  EXPECT_EQ(gse.table_builds(), 3);
  EXPECT_EQ(gse.nx(), 32);

  // The reboxed mesh must match a mesh constructed directly for that box.
  ChargeGas g(12, 17.0, 41);
  GseMesh fresh(g.box, 0.35, 1.0, 1.2, &pool);
  std::vector<Vec3> fa(g.pos.size()), fb(g.pos.size());
  EnergyReport ea, eb;
  gse.compute(*g.top, g.pos, fa, ea);
  fresh.compute(*g.top, g.pos, fb, eb);
  EXPECT_EQ(ea.coulomb_kspace, eb.coulomb_kspace);
  EXPECT_EQ(ea.virial, eb.virial);
  for (size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i].x, fb[i].x) << "atom " << i;
    ASSERT_EQ(fa[i].y, fb[i].y) << "atom " << i;
    ASSERT_EQ(fa[i].z, fb[i].z) << "atom " << i;
  }
}

// set_box on the direct Ewald rebuilds the k-vector list for the new cell.
TEST(EwaldDirect, SetBoxMatchesFreshSum) {
  ChargeGas g(8, 15.0, 42);
  EwaldDirect ewald(Box::cube(12.0), 0.4, 6);
  ewald.set_box(g.box);
  EwaldDirect fresh(g.box, 0.4, 6);
  EXPECT_EQ(ewald.energy_only(*g.top, g.pos), fresh.energy_only(*g.top, g.pos));
}

}  // namespace
}  // namespace anton::md
