// ThreadPool lifecycle and memory-model tests.
//
// These are primarily sanitizer targets: under ANTON_SANITIZE=thread they
// certify that the (fn, ctx, generation) trampoline publication, the atomic
// remaining_ completion count, and the construction/destruction handshake
// are race-free.  They also pin the functional contract: full coverage of
// [0, n), every thread index fired exactly once, and serialized concurrent
// dispatchers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "common/threadpool.h"

namespace anton {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ForEachThreadFiresEveryIndexOnce) {
  ThreadPool pool(5);
  ASSERT_EQ(pool.size(), 5u);
  std::vector<std::atomic<int>> hits(pool.size());
  pool.for_each_thread([&](unsigned t) { hits[t].fetch_add(1); });
  for (unsigned t = 0; t < pool.size(); ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "thread " << t;
  }
}

// Chunk writes made inside parallel_for must be visible to the caller after
// it returns (the acq_rel decrement / acquire wait pair provides the
// happens-before edge).  TSan verifies the ordering claim.
TEST(ThreadPool, ChunkWritesVisibleAfterReturn) {
  ThreadPool pool(4);
  std::vector<uint64_t> data(4096, 0);
  for (int round = 1; round <= 8; ++round) {
    pool.parallel_for(data.size(), [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) data[i] += static_cast<uint64_t>(round);
    });
    const uint64_t expect =
        static_cast<uint64_t>(round) * (round + 1) / 2 * data.size();
    const uint64_t sum = std::accumulate(data.begin(), data.end(),
                                         uint64_t{0});
    ASSERT_EQ(sum, expect) << "round " << round;
  }
}

// Construction → immediate heavy use → destruction, repeatedly: shakes out
// wakeup races between worker startup, dispatch, and the stop flag.
TEST(ThreadPool, RapidConstructUseDestroy) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int64_t> sum{0};
    pool.parallel_for(100, [&](size_t b, size_t e) {
      int64_t local = 0;
      for (size_t i = b; i < e; ++i) local += static_cast<int64_t>(i);
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 99 * 100 / 2);
  }
}

// Destroying a pool that never dispatched must not hang or race.
TEST(ThreadPool, DestroyWithoutDispatch) {
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
  }
}

// parallel_for is callable concurrently from several caller threads over the
// pool's whole lifetime: calls serialize on the dispatcher mutex.  Each
// caller's own chunk sums must still come back correct and complete.
TEST(ThreadPool, ConcurrentParallelForFromManyCallers) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  constexpr size_t kN = 512;
  std::vector<std::thread> callers;
  std::vector<int64_t> results(kCallers, 0);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &results, c] {
      int64_t acc = 0;
      for (int r = 0; r < kRounds; ++r) {
        std::atomic<int64_t> sum{0};
        pool.parallel_for(kN, [&](size_t b, size_t e) {
          int64_t local = 0;
          for (size_t i = b; i < e; ++i) local += static_cast<int64_t>(i);
          sum.fetch_add(local);
        });
        acc += sum.load();
      }
      results[static_cast<size_t>(c)] = acc;
    });
  }
  for (auto& t : callers) t.join();
  const int64_t per_round = static_cast<int64_t>(kN) * (kN - 1) / 2;
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(results[static_cast<size_t>(c)], per_round * kRounds)
        << "caller " << c;
  }
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(64, 0);
  pool.parallel_for(hits.size(), [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace anton
