#include <gtest/gtest.h>

#include <numeric>

#include "chem/builder.h"
#include "core/machine.h"
#include "core/workload.h"
#include "md/neighborlist.h"

namespace anton::core {
namespace {

arch::MachineConfig tiny_machine(int nx, int ny, int nz, double cutoff) {
  arch::MachineConfig c = arch::MachineConfig::anton2(nx, ny, nz);
  c.machine_cutoff = cutoff;
  return c;
}

TEST(Workload, AtomCountsPartition) {
  const System sys = build_water_box(512, 41, -1);
  const auto cfg = tiny_machine(2, 2, 2, 6.0);
  const Workload w = Workload::build(sys, cfg);
  int total = 0;
  for (int v = 0; v < w.num_nodes(); ++v) total += w.node(v).atoms;
  EXPECT_EQ(total, sys.num_atoms());
  EXPECT_EQ(w.total_atoms(), sys.num_atoms());
}

TEST(Workload, PairCountMatchesNeighborListWithoutExclusions) {
  // The workload counts *all* pairs within the cutoff (exclusions are a
  // force-field nicety the HTIS match units handle inline); compare against
  // a brute-force count.
  const System sys = build_water_box(343, 42, -1);
  const auto cfg = tiny_machine(2, 2, 2, 6.0);
  const Workload w = Workload::build(sys, cfg);

  int64_t brute = 0;
  const auto pos = sys.positions();
  for (int i = 0; i < sys.num_atoms(); ++i) {
    for (int j = i + 1; j < sys.num_atoms(); ++j) {
      if (sys.box().distance2(pos[static_cast<size_t>(i)],
                              pos[static_cast<size_t>(j)]) < 36.0) {
        ++brute;
      }
    }
  }
  EXPECT_EQ(w.total_pairs(), brute);
}

TEST(Workload, EveryPairCountedExactlyOnce) {
  // Internal + boundary tiles must partition the pair set: vary node grid,
  // the total must not change.
  const System sys = build_water_box(512, 43, -1);
  const auto w1 = Workload::build(sys, tiny_machine(1, 1, 1, 6.0));
  const auto w2 = Workload::build(sys, tiny_machine(2, 2, 2, 6.0));
  const auto w4 = Workload::build(sys, tiny_machine(4, 2, 2, 6.0));
  EXPECT_EQ(w1.total_pairs(), w2.total_pairs());
  EXPECT_EQ(w1.total_pairs(), w4.total_pairs());
  // Single node: all pairs internal.
  EXPECT_EQ(w1.node(0).internal_pairs, w1.total_pairs());
  EXPECT_TRUE(w1.node(0).tiles.empty());
}

TEST(Workload, TileOffsetsInPositiveHalfSpace) {
  const System sys = build_water_box(729, 44, -1);
  const auto w = Workload::build(sys, tiny_machine(3, 3, 3, 6.0));
  for (const auto& off : w.tile_offsets()) {
    const bool positive =
        off.dz > 0 || (off.dz == 0 && off.dy > 0) ||
        (off.dz == 0 && off.dy == 0 && off.dx > 0);
    EXPECT_TRUE(positive) << off.dx << "," << off.dy << "," << off.dz;
  }
}

TEST(Workload, RemoteAtomsBoundedByPairsAndNodeSize) {
  const System sys = build_water_box(729, 45, -1);
  const auto w = Workload::build(sys, tiny_machine(3, 3, 3, 6.0));
  for (int v = 0; v < w.num_nodes(); ++v) {
    for (const auto& t : w.node(v).tiles) {
      EXPECT_GT(t.remote_atoms, 0);
      EXPECT_LE(t.remote_atoms, t.pairs);
      EXPECT_LE(t.remote_atoms, sys.num_atoms());
    }
  }
}

TEST(Workload, PositionDestinationsMatchTiles) {
  const System sys = build_water_box(729, 46, -1);
  const auto w = Workload::build(sys, tiny_machine(3, 3, 3, 6.0));
  const auto& dd = w.decomp();
  // If u owns a tile with offset d, then node u+d must list u as a
  // destination.
  for (int u = 0; u < w.num_nodes(); ++u) {
    for (const auto& t : w.node(u).tiles) {
      const auto& off = w.tile_offsets()[static_cast<size_t>(t.offset_index)];
      const int v = dd.neighbor_rank(u, off);
      const auto& dsts = w.node(v).pos_destinations;
      EXPECT_NE(std::find(dsts.begin(), dsts.end(), u), dsts.end())
          << "node " << v << " does not export to " << u;
    }
  }
}

TEST(Workload, BondedTermsPartition) {
  BuilderOptions o;
  o.total_atoms = 3000;
  o.solute_fraction = 0.2;
  o.seed = 47;
  o.temperature_k = -1;
  const System sys = build_solvated_system(o);
  const auto w = Workload::build(sys, tiny_machine(2, 2, 2, 6.0));
  BondedCounts total{};
  int64_t constraints = 0;
  for (int v = 0; v < w.num_nodes(); ++v) {
    const auto& n = w.node(v);
    total.bonds += n.bonded_local.bonds + n.bonded_boundary.bonds;
    total.angles += n.bonded_local.angles + n.bonded_boundary.angles;
    total.dihedrals +=
        n.bonded_local.dihedrals + n.bonded_boundary.dihedrals;
    total.pairs14 += n.bonded_local.pairs14 + n.bonded_boundary.pairs14;
    constraints += n.constraints;
  }
  const Topology& top = sys.topology();
  EXPECT_EQ(total.bonds, static_cast<int64_t>(top.bonds().size()));
  EXPECT_EQ(total.angles, static_cast<int64_t>(top.angles().size()));
  EXPECT_EQ(total.dihedrals, static_cast<int64_t>(top.dihedrals().size()));
  EXPECT_EQ(total.pairs14, static_cast<int64_t>(top.pairs14().size()));
  EXPECT_EQ(constraints, static_cast<int64_t>(top.constraints().size()));
}

TEST(Workload, MeshDimsArePowerOfTwo) {
  const System sys = build_water_box(512, 48, -1);
  auto cfg = tiny_machine(2, 2, 2, 6.0);
  cfg.mesh_spacing = 2.0;
  const Workload w = Workload::build(sys, cfg);
  for (int a = 0; a < 3; ++a) {
    const int d = w.mesh_dim(a);
    EXPECT_TRUE(d > 0 && (d & (d - 1)) == 0);
    EXPECT_GE(d * cfg.mesh_spacing, sys.box().lengths()[a] * 0.99);
  }
  EXPECT_GT(w.spread_support_points(), 26);
  EXPECT_GT(w.spread_halo_bytes(cfg), 0);
}

TEST(Workload, CutoffBeyondMinImageRejected) {
  const System sys = build_water_box(64, 49, -1);
  auto cfg = tiny_machine(2, 2, 2, 100.0);
  EXPECT_THROW(Workload::build(sys, cfg), Error);
}

TEST(Workload, LoadBalanceReasonableForUniformSystem) {
  const System sys = build_water_box(4096, 50, -1);
  const auto w = Workload::build(sys, tiny_machine(4, 4, 4, 6.0));
  const double mean = w.mean_atoms_per_node();
  EXPECT_LT(w.max_atoms_per_node(), 1.6 * mean);
}

TEST(TorusDims, NearCubicFactorisation) {
  int x, y, z;
  core::torus_dims(512, &x, &y, &z);
  EXPECT_EQ(x * y * z, 512);
  EXPECT_EQ(x, 8);
  EXPECT_EQ(y, 8);
  EXPECT_EQ(z, 8);
  core::torus_dims(128, &x, &y, &z);
  EXPECT_EQ(x * y * z, 128);
  EXPECT_LE(std::max({x, y, z}), 8);
  core::torus_dims(1, &x, &y, &z);
  EXPECT_EQ(x * y * z, 1);
  core::torus_dims(7, &x, &y, &z);
  EXPECT_EQ(x * y * z, 7);
}

}  // namespace
}  // namespace anton::core
