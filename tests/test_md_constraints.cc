#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "common/rng.h"
#include "md/constraints.h"

namespace anton::md {
namespace {

TEST(Shake, RestoresSingleBondLength) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_constraint({0, 1, 1.5});
  top.finalize();
  const Box box = Box::cube(20.0);

  std::vector<Vec3> ref{{5, 5, 5}, {6.5, 5, 5}};   // satisfied
  std::vector<Vec3> pos{{5, 5, 5}, {6.9, 5.2, 5}};  // violated after a step
  std::vector<Vec3> vel(2);
  const auto stats = shake(box, top, ref, pos, vel, 0.01, 1e-10, 100);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(box.distance(pos[0], pos[1]), 1.5, 1e-7);
}

TEST(Shake, PreservesCenterOfMass) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  const int a = top.add_atom(ForceField::Std::kOW, 0.0);  // mass 16
  const int b = top.add_atom(ForceField::Std::kHW, 0.0);  // mass 1
  top.add_constraint({a, b, 1.0});
  top.finalize();
  const Box box = Box::cube(20.0);

  std::vector<Vec3> ref{{5, 5, 5}, {6, 5, 5}};
  std::vector<Vec3> pos{{5, 5, 5}, {6.4, 5, 5}};
  const double m_o = top.mass(a), m_h = top.mass(b);
  const Vec3 com_before =
      (m_o * pos[0] + m_h * pos[1]) / (m_o + m_h);
  std::vector<Vec3> vel(2);
  shake(box, top, ref, pos, vel, 0.01, 1e-10, 100);
  const Vec3 com_after = (m_o * pos[0] + m_h * pos[1]) / (m_o + m_h);
  EXPECT_NEAR(norm(com_after - com_before), 0.0, 1e-10);
  // The light atom moves far more than the heavy one.
  EXPECT_GT(norm(pos[1] - Vec3{6.4, 5, 5}), 10 * norm(pos[0] - Vec3{5, 5, 5}));
}

TEST(Shake, WaterTriangleConverges) {
  // Distort a rigid water and let SHAKE restore all three constraints.
  const System sys = build_water_box(1, 40, -1);
  const Topology& top = sys.topology();
  std::vector<Vec3> ref(sys.positions().begin(), sys.positions().end());
  std::vector<Vec3> pos = ref;
  Rng rng(13, 0);
  for (auto& p : pos) p += 0.08 * rng.gaussian_vec3();
  std::vector<Vec3> vel(pos.size());
  const auto stats =
      shake(sys.box(), top, ref, pos, vel, 0.01, 1e-10, 500);
  EXPECT_TRUE(stats.converged);
  EXPECT_LT(max_constraint_violation(sys.box(), top, pos), 1e-9);
}

TEST(Shake, VelocityCorrectionApplied) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_constraint({0, 1, 1.5});
  top.finalize();
  const Box box = Box::cube(20.0);
  const double dt = 0.01;

  std::vector<Vec3> ref{{5, 5, 5}, {6.5, 5, 5}};
  std::vector<Vec3> pos{{5, 5, 5}, {6.8, 5, 5}};
  std::vector<Vec3> pos_copy = pos;
  std::vector<Vec3> vel{{0, 0, 0}, {0, 0, 0}};
  shake(box, top, ref, pos, vel, dt, 1e-10, 100);
  // Δv = Δp/dt for each atom.
  for (int i = 0; i < 2; ++i) {
    const Vec3 dp = pos[static_cast<size_t>(i)] - pos_copy[static_cast<size_t>(i)];
    EXPECT_NEAR(vel[static_cast<size_t>(i)].x, dp.x / dt, 1e-9);
  }
}

TEST(Rattle, RemovesRadialVelocity) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_constraint({0, 1, 2.0});
  top.finalize();
  const Box box = Box::cube(20.0);

  std::vector<Vec3> pos{{5, 5, 5}, {7, 5, 5}};
  // Velocity with both radial (x) and tangential (y) components.
  std::vector<Vec3> vel{{1.0, 0.5, 0}, {-1.0, -0.5, 0}};
  const auto stats = rattle(box, top, pos, vel, 1e-12, 100);
  EXPECT_TRUE(stats.converged);
  const Vec3 r = pos[0] - pos[1];
  EXPECT_NEAR(dot(vel[0] - vel[1], r), 0.0, 1e-9);
  // Tangential motion preserved.
  EXPECT_NEAR(vel[0].y, 0.5, 1e-9);
}

TEST(Rattle, ConservesMomentum) {
  const System sys = build_water_box(8, 40, -1);
  std::vector<Vec3> pos(sys.positions().begin(), sys.positions().end());
  std::vector<Vec3> vel(pos.size());
  Rng rng(14, 0);
  for (auto& v : vel) v = rng.gaussian_vec3();
  const auto m = sys.topology().masses();
  Vec3 p_before{};
  for (size_t i = 0; i < vel.size(); ++i) p_before += m[i] * vel[i];
  rattle(sys.box(), sys.topology(), pos, vel, 1e-10, 200);
  Vec3 p_after{};
  for (size_t i = 0; i < vel.size(); ++i) p_after += m[i] * vel[i];
  EXPECT_NEAR(norm(p_after - p_before), 0.0, 1e-9);
}

TEST(Constraints, NoConstraintsIsNoOp) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.finalize();
  const Box box = Box::cube(10.0);
  std::vector<Vec3> pos{{1, 1, 1}};
  std::vector<Vec3> vel{{2, 2, 2}};
  const auto s1 = shake(box, top, pos, pos, vel, 0.01, 1e-10, 10);
  const auto s2 = rattle(box, top, pos, vel, 1e-10, 10);
  EXPECT_TRUE(s1.converged);
  EXPECT_TRUE(s2.converged);
  EXPECT_EQ(vel[0], Vec3(2, 2, 2));
}

TEST(Constraints, ViolationMetric) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_constraint({0, 1, 2.0});
  top.finalize();
  const Box box = Box::cube(20.0);
  std::vector<Vec3> ok{{0, 0, 0}, {2, 0, 0}};
  EXPECT_NEAR(max_constraint_violation(box, top, ok), 0.0, 1e-12);
  std::vector<Vec3> bad{{0, 0, 0}, {2.2, 0, 0}};
  // |r² - d²|/d² = |4.84-4|/4 = 0.21.
  EXPECT_NEAR(max_constraint_violation(box, top, bad), 0.21, 1e-10);
}

}  // namespace
}  // namespace anton::md
