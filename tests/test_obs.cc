// Tests for the unified telemetry layer (src/obs/): metrics registry,
// phase profiler, Chrome-trace writer, and their integration with the DES
// machine model and the functional MD engine.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chem/builder.h"
#include "common/threadpool.h"
#include "core/machine.h"
#include "md/engine.h"
#include "obs/metrics.h"
#include "obs/perfcounters.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace anton {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

size_t count_occurrences(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// Crude structural JSON balance check: every { has a } and every [ a ],
// ignoring characters inside string literals.
bool braces_balanced(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_str = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') in_str = true;
    if (c == '{') ++brace;
    if (c == '}') --brace;
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_str;
}

TEST(MetricsRegistry, KindsAndIdempotentRegistration) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  obs::Counter* c = reg.counter("a.count");
  obs::Gauge* g = reg.gauge("a.gauge");
  obs::Stat* s = reg.stat("a.stat");
  obs::Histo* h = reg.histogram("a.histo", 0, 10, 5);
  EXPECT_EQ(reg.size(), 4u);

  // Same name, same kind: same object.
  EXPECT_EQ(reg.counter("a.count"), c);
  EXPECT_EQ(reg.gauge("a.gauge"), g);
  EXPECT_EQ(reg.stat("a.stat"), s);
  EXPECT_EQ(reg.histogram("a.histo", 99, 100, 1), h);  // shape fixed by first
  EXPECT_EQ(reg.size(), 4u);

  // Same name, different kind: error.
  EXPECT_THROW(reg.gauge("a.count"), Error);
  EXPECT_THROW(reg.stat("a.gauge"), Error);
  EXPECT_THROW(reg.counter("a.histo"), Error);

  c->add(3);
  g->set(2.5);
  s->add(1.0);
  s->add(3.0);
  h->add(7.0);
  EXPECT_EQ(c->value(), 3u);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
  EXPECT_DOUBLE_EQ(s->snapshot().mean(), 2.0);
  EXPECT_EQ(h->snapshot().total(), 1u);

  const std::vector<std::string> names = reg.names();
  EXPECT_EQ(names.size(), 4u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(MetricsRegistry, SinksAreThreadSafe) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("t.count");
  obs::Gauge* g = reg.gauge("t.gauge");
  obs::Stat* s = reg.stat("t.stat");
  const int kThreads = 4, kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c->add();
        g->add(1.0);
        s->add(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(g->value(), kThreads * kIters);
  EXPECT_EQ(s->snapshot().count(), static_cast<uint64_t>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(s->snapshot().sum(), kThreads * kIters);
}

TEST(MetricsRegistry, JsonSnapshotIsWellFormed) {
  obs::MetricsRegistry reg;
  reg.counter("x.events")->add(7);
  reg.gauge("x.occupancy")->set(0.75);
  reg.stat("x.latency")->add(3.5);
  reg.histogram("x.hops", 0, 8, 8)->add(2);
  // A name needing escaping must not corrupt the document.
  reg.gauge("x.weird\"name\\")->set(1);
  const std::string j = reg.json();
  EXPECT_TRUE(braces_balanced(j)) << j;
  EXPECT_NE(j.find("\"schema\":\"anton.metrics.v1\""), std::string::npos);
  EXPECT_NE(j.find("\"x.events\""), std::string::npos);
  EXPECT_NE(j.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(j.find("\"type\":\"gauge\""), std::string::npos);
  EXPECT_NE(j.find("\"type\":\"stat\""), std::string::npos);
  EXPECT_NE(j.find("\"type\":\"histogram\""), std::string::npos);
}

TEST(MetricsRegistry, CsvSnapshot) {
  obs::MetricsRegistry reg;
  reg.counter("c.n")->add(5);
  reg.stat("s.v")->add(2.0);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("c.n,value,5"), std::string::npos);
  EXPECT_NE(csv.find("s.v,mean,"), std::string::npos);
  EXPECT_NE(csv.find("s.v,count,1"), std::string::npos);
}

TEST(PhaseProfiler, DisabledScopesAreNoOps) {
  obs::PhaseProfiler prof;
  EXPECT_FALSE(prof.enabled());
  {
    auto s = prof.scope("pair");  // must not crash or allocate sinks
  }
  prof.record_seconds("pair", 1.0);
  EXPECT_EQ(prof.phase_stat("pair"), nullptr);
}

TEST(PhaseProfiler, AccumulatesPhaseStats) {
  obs::MetricsRegistry reg;
  obs::PhaseProfiler prof;
  prof.enable(&reg, "md");
  for (int i = 0; i < 3; ++i) {
    auto s = prof.scope("pair");
    // Do a little work so the span is non-negative but tiny.
    volatile double x = 0;
    for (int k = 0; k < 100; ++k) x = x + k;
  }
  prof.record_seconds("fft", 0.25);
  const RunningStat pair =
      reg.stat("md.phase.pair.seconds")->snapshot();
  EXPECT_EQ(pair.count(), 3u);
  EXPECT_GE(pair.sum(), 0.0);
  const RunningStat fft = reg.stat("md.phase.fft.seconds")->snapshot();
  EXPECT_EQ(fft.count(), 1u);
  EXPECT_DOUBLE_EQ(fft.sum(), 0.25);

  prof.disable();
  EXPECT_FALSE(prof.enabled());
  { auto s = prof.scope("pair"); }
  EXPECT_EQ(reg.stat("md.phase.pair.seconds")->snapshot().count(), 3u);
}

TEST(TraceWriter, EmptyPathMeansDisabled) {
  EXPECT_EQ(obs::TraceWriter::open(""), nullptr);
}

TEST(TraceWriter, WritesValidChromeTrace) {
  const std::string path = "test_obs_trace.json";
  {
    auto tw = obs::TraceWriter::open(path);
    ASSERT_NE(tw, nullptr);
    tw->process_name(obs::kPidMd, "md engine");
    tw->thread_name(obs::kPidMd, 0, "main");
    tw->complete("pair", "md", 10.0, 5.0, obs::kPidMd, 0,
                 {{"atoms", 125.0}});
    tw->complete("fft", "md", 15.0, -1.0, obs::kPidMd, 0);  // dur clamps to 0
    tw->counter("queue.pending", 3.0, obs::kPidQueue, "events", 42.0);
    tw->instant("rebuild", "md", 20.0, obs::kPidMd, 0);
    EXPECT_EQ(tw->events_written(), 6u);
  }  // destructor closes the JSON
  const std::string s = slurp(path);
  EXPECT_TRUE(braces_balanced(s)) << s;
  EXPECT_NE(s.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(count_occurrences(s, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(s, "\"ph\":\"C\""), 1u);
  EXPECT_EQ(count_occurrences(s, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_occurrences(s, "\"ph\":\"M\""), 2u);
  EXPECT_NE(s.find("\"dur\":0"), std::string::npos);  // clamped span
  std::remove(path.c_str());
}

TEST(TraceWriter, TimestampOffsetAppliesToEventsNotMetadata) {
  const std::string path = "test_obs_trace_offset.json";
  {
    auto tw = obs::TraceWriter::open(path);
    tw->set_ts_offset_us(1000.0);
    tw->complete("task", "des", 5.0, 1.0, obs::kPidMachine, 0);
    tw->process_name(obs::kPidMachine, "machine");
    EXPECT_DOUBLE_EQ(tw->ts_offset_us(), 1000.0);
  }
  const std::string s = slurp(path);
  EXPECT_NE(s.find("\"ts\":1005"), std::string::npos) << s;
  // Metadata stays at ts 0 so track names anchor the timeline.
  EXPECT_NE(s.find("\"ph\":\"M\",\"ts\":0"), std::string::npos) << s;
  std::remove(path.c_str());
}

// --- integration: DES machine model -----------------------------------------

System small_system() {
  BuilderOptions o;
  o.total_atoms = 3000;
  o.solute_fraction = 0.1;
  o.seed = 77;
  o.temperature_k = -1;
  return build_solvated_system(o);
}

TEST(DesTelemetry, CriticalPathPartitionsMakespanExactly) {
  const System sys = small_system();
  const auto cfg = arch::MachineConfig::anton2(2, 2, 2);
  const core::Workload w = core::Workload::build(sys, cfg);
  obs::MetricsRegistry reg;
  core::StepOptions opt;
  opt.include_long_range = true;
  opt.metrics = &reg;
  const core::StepTiming t = core::simulate_step(w, cfg, opt);

  double path_sum = 0;
  for (const auto& [phase, ns] : t.exec.critical_path_ns) path_sum += ns;
  EXPECT_GT(t.exec.makespan_ns, 0.0);
  EXPECT_NEAR(t.exec.critical_wait_ns + path_sum, t.exec.makespan_ns,
              1e-6 * t.exec.makespan_ns);
  EXPECT_GE(t.exec.critical_wait_ns, 0.0);

  // The registry carries the DES breakdown under the "des." prefix.
  EXPECT_EQ(reg.stat("des.step.makespan_ns")->snapshot().count(), 1u);
  EXPECT_DOUBLE_EQ(reg.stat("des.step.makespan_ns")->snapshot().sum(),
                   t.exec.makespan_ns);
  EXPECT_EQ(reg.counter("des.step.tasks")->value(), t.exec.tasks_executed);
  // The queue also executes NoC delivery and transfer events, so its count
  // dominates the task count.
  EXPECT_GE(reg.counter("des.queue.executed")->value(),
            t.exec.tasks_executed);
  EXPECT_GT(reg.histogram("des.noc.latency_ns", 0, 1, 1)->snapshot().total(),
            0u);
  // Per-phase critical attribution matches ExecStats.
  for (const auto& [phase, ns] : t.exec.critical_path_ns) {
    const std::string name = "des.critical." + phase + ".ns";
    EXPECT_DOUBLE_EQ(reg.stat(name)->snapshot().sum(), ns) << name;
  }
}

TEST(DesTelemetry, TelemetryDoesNotPerturbTiming) {
  const System sys = small_system();
  const auto cfg = arch::MachineConfig::anton2(2, 2, 2);
  const core::Workload w = core::Workload::build(sys, cfg);
  const core::StepTiming plain =
      core::simulate_step(w, cfg, {.include_long_range = true});
  obs::MetricsRegistry reg;
  core::StepOptions opt;
  opt.include_long_range = true;
  opt.metrics = &reg;
  const core::StepTiming observed = core::simulate_step(w, cfg, opt);
  EXPECT_DOUBLE_EQ(plain.step_ns, observed.step_ns);
  EXPECT_EQ(plain.exec.tasks_executed, observed.exec.tasks_executed);
}

TEST(DesTelemetry, StepTraceHasSpansForEveryTask) {
  const System sys = small_system();
  const auto cfg = arch::MachineConfig::anton2(2, 2, 2);
  const core::Workload w = core::Workload::build(sys, cfg);
  const std::string path = "test_obs_des_trace.json";
  uint64_t tasks = 0;
  {
    auto tw = obs::TraceWriter::open(path);
    obs::MetricsRegistry reg;
    core::StepOptions opt;
    opt.include_long_range = true;
    opt.metrics = &reg;
    opt.trace = tw.get();
    tasks = core::simulate_step(w, cfg, opt).exec.tasks_executed;
    EXPECT_GT(tw->events_written(), tasks);  // tasks + packets + metadata
  }
  const std::string s = slurp(path);
  EXPECT_TRUE(braces_balanced(s));
  EXPECT_GE(count_occurrences(s, "\"ph\":\"X\""), tasks);
  EXPECT_GT(count_occurrences(s, "\"name\":\"packet\""), 0u);
  EXPECT_GT(count_occurrences(s, "\"name\":\"ser\""), 0u);
  std::remove(path.c_str());
}

// --- integration: functional MD engine ---------------------------------------

TEST(MdTelemetry, PhaseBreakdownCoversStepTime) {
  System sys = build_water_box(125, 11);
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.0;
  p.respa_k = 1;
  p.long_range = LongRangeMethod::kMesh;
  p.mesh_spacing = 1.1;
  p.telemetry = true;
  ThreadPool pool(2);
  md::Simulation sim(std::move(sys), p, &pool);
  sim.step(20);

  obs::MetricsRegistry* reg = sim.metrics();
  ASSERT_NE(reg, nullptr);
  const RunningStat total = reg->stat("md.step.seconds")->snapshot();
  EXPECT_EQ(total.count(), 20u);
  double phase_sum = 0;
  for (const std::string& name : reg->names()) {
    if (name.rfind("md.phase.", 0) == 0) {
      phase_sum += reg->stat(name)->snapshot().sum();
    }
  }
  // The instrumented phases (integrate/constraints/thermostat/nlist/
  // bonded/pair/fft) cover nearly the whole step; the remainder is glue.
  EXPECT_GT(phase_sum, 0.0);
  EXPECT_LE(phase_sum, 1.10 * total.sum());
  EXPECT_GE(phase_sum, 0.50 * total.sum());
  // The threaded pair kernel reports per-worker spans for imbalance.
  EXPECT_GT(reg->stat("md.pair.thread_seconds")->snapshot().count(), 0u);
}

TEST(MdTelemetry, DisabledByDefault) {
  System sys = build_water_box(125, 12);
  MdParams p;
  p.cutoff = 6.0;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kNone;
  md::Simulation sim(std::move(sys), p);
  sim.step(2);
  EXPECT_EQ(sim.metrics(), nullptr);
}

TEST(MdTelemetry, ExternalRegistryViaUseTelemetry) {
  System sys = build_water_box(125, 13);
  MdParams p;
  p.cutoff = 6.0;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kNone;
  md::Simulation sim(std::move(sys), p);
  obs::MetricsRegistry reg;
  sim.use_telemetry(&reg, nullptr);
  sim.step(3);
  EXPECT_EQ(sim.metrics(), &reg);
  EXPECT_EQ(reg.stat("md.step.seconds")->snapshot().count(), 3u);
  sim.use_telemetry(nullptr, nullptr);
  sim.step(2);
  EXPECT_EQ(sim.metrics(), nullptr);
  EXPECT_EQ(reg.stat("md.step.seconds")->snapshot().count(), 3u);
}

// ---------------------------------------------------------------------------
// CSV escaping and histogram summary fields.

TEST(MetricsRegistry, CsvEscapesNamesWithCommasAndQuotes) {
  obs::MetricsRegistry reg;
  reg.gauge("weird,name")->set(1.0);
  reg.gauge("has\"quote")->set(2.0);
  reg.counter("plain.name")->add(3);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("\"weird,name\",value,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"has\"\"quote\",value,2"), std::string::npos) << csv;
  EXPECT_NE(csv.find("plain.name,value,3"), std::string::npos) << csv;
  // Every data row must still parse to exactly three RFC-4180 fields.
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    int fields = 1;
    bool quoted = false;
    for (char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++fields;
    }
    EXPECT_EQ(fields, 3) << line;
  }
}

TEST(MetricsRegistry, HistogramExportsP95InJsonAndCsv) {
  obs::MetricsRegistry reg;
  obs::Histo* h = reg.histogram("h.lat", 0, 100, 100);
  for (int i = 0; i < 100; ++i) h->add(i + 0.5);
  const std::string j = reg.json();
  EXPECT_NE(j.find("\"p95\":"), std::string::npos);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("h.lat,p95,"), std::string::npos) << csv;
  // p95 of a uniform 0..100 fill lands in the mid-nineties bin.
  const Histogram snap = h->snapshot();
  EXPECT_GT(snap.quantile(0.95), 90.0);
  EXPECT_LT(snap.quantile(0.95), 100.0);
}

TEST(MetricsRegistry, HistogramExportsP99InJsonAndCsv) {
  obs::MetricsRegistry reg;
  obs::Histo* h = reg.histogram("svc.latency_ms", 0, 100, 100);
  // Bimodal latency: dense fast mode, 1% slow tail — the shape p99 exists
  // to expose (p95 sits in the fast mode, p99 at its very edge).
  for (int i = 0; i < 990; ++i) h->add(2.5);
  for (int i = 0; i < 10; ++i) h->add(80.5);
  const std::string j = reg.json();
  EXPECT_NE(j.find("\"p99\":"), std::string::npos);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("svc.latency_ms,p99,"), std::string::npos) << csv;
  const Histogram snap = h->snapshot();
  EXPECT_LT(snap.quantile(0.95), 4.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 3.0);  // exact top of the fast bin
  EXPECT_GT(snap.quantile(0.999), 80.0);
}

// ---------------------------------------------------------------------------
// Hardware counters: real where permitted, graceful everywhere else.

TEST(PerfCounters, ForcedUnavailableFallsBackGracefully) {
  obs::PerfCounters::force_unavailable_for_testing(true);
  obs::PerfCounters pc;
  obs::PerfCounters::force_unavailable_for_testing(false);
  EXPECT_FALSE(pc.available());
  EXPECT_FALSE(pc.unavailable_reason().empty());
  EXPECT_EQ(pc.events_open(), 0);
  const obs::PerfSample s = pc.read();
  EXPECT_FALSE(s.valid);
  EXPECT_EQ(s.cycles, 0.0);
  EXPECT_EQ(s.ipc(), 0.0);
  EXPECT_EQ(s.llc_miss_rate(), 0.0);
}

TEST(PerfCounters, SampleDeltaAndDerivedMetrics) {
  obs::PerfSample a, b;
  a.valid = b.valid = true;
  a.cycles = 1000;
  a.instructions = 2500;
  a.llc_loads = 100;
  a.llc_misses = 25;
  b.cycles = 400;
  b.instructions = 500;
  b.llc_loads = 40;
  b.llc_misses = 5;
  const obs::PerfSample d = a - b;
  EXPECT_TRUE(d.valid);
  EXPECT_DOUBLE_EQ(d.ipc(), 2000.0 / 600.0);
  EXPECT_DOUBLE_EQ(d.llc_miss_rate(), 20.0 / 60.0);
  // Subtracting an invalid sample poisons the delta instead of lying.
  obs::PerfSample invalid;
  EXPECT_FALSE((a - invalid).valid);
}

TEST(PerfCounters, HostCountersEitherWorkOrExplain) {
  obs::PerfCounters pc;
  if (pc.available()) {
    EXPECT_GT(pc.events_open(), 0);
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + i;
    const obs::PerfSample s = pc.read();
    EXPECT_TRUE(s.valid);
    EXPECT_GT(s.cycles, 0.0);
    EXPECT_GT(s.instructions, 0.0);
    EXPECT_TRUE(pc.owned_by_this_thread());
  } else {
    EXPECT_FALSE(pc.unavailable_reason().empty());
  }
}

TEST(PerfCounters, ProfilerDegradesToSecondsOnlyWhenUnavailable) {
  obs::PerfCounters::force_unavailable_for_testing(true);
  obs::PerfCounters pc;
  obs::PerfCounters::force_unavailable_for_testing(false);
  obs::MetricsRegistry reg;
  obs::PhaseProfiler prof;
  prof.enable(&reg, "md");
  prof.enable_perf(&pc);
  EXPECT_FALSE(prof.perf_sampling());
  { auto s = prof.scope("pair"); }
  EXPECT_EQ(reg.stat("md.phase.pair.seconds")->snapshot().count(), 1u);
  EXPECT_EQ(reg.gauge("md.perf.available")->value(), 0.0);
  for (const std::string& name : reg.names()) {
    EXPECT_EQ(name.find(".ipc"), std::string::npos) << name;
    EXPECT_EQ(name.find(".llc_miss_rate"), std::string::npos) << name;
  }
}

TEST(PerfCounters, ProfilerExportsIpcWhenCountersWork) {
  obs::PerfCounters pc;
  if (!pc.available()) GTEST_SKIP() << pc.unavailable_reason();
  obs::MetricsRegistry reg;
  obs::PhaseProfiler prof;
  prof.enable(&reg, "md");
  prof.enable_perf(&pc);
  EXPECT_TRUE(prof.perf_sampling());
  {
    auto s = prof.scope("pair");
    volatile double x = 0;
    for (int i = 0; i < 200000; ++i) x = x + i;
  }
  EXPECT_EQ(reg.gauge("md.perf.available")->value(), 1.0);
  const RunningStat ipc = reg.stat("md.phase.pair.ipc")->snapshot();
  EXPECT_EQ(ipc.count(), 1u);
  EXPECT_GT(ipc.mean(), 0.0);
  EXPECT_LT(ipc.mean(), 16.0);  // sanity: no CPU retires 16 inst/cycle here
}

TEST(MdTelemetry, PerfCountersParamExportsAvailabilityGauge) {
  System sys = build_water_box(125, 14);
  MdParams p;
  p.cutoff = 6.0;
  p.skin = 0.7;
  p.long_range = LongRangeMethod::kNone;
  p.telemetry = true;
  p.perf_counters = true;
  md::Simulation sim(std::move(sys), p);
  sim.step(2);
  ASSERT_NE(sim.metrics(), nullptr);
  const double avail = sim.metrics()->gauge("md.perf.available")->value();
  EXPECT_TRUE(avail == 0.0 || avail == 1.0);
  if (avail == 1.0) {
    // Scopes ran on the constructing thread, so IPC stats must have fed.
    EXPECT_GT(sim.metrics()->stat("md.phase.pair.ipc")->snapshot().count(),
              0u);
  }
}

}  // namespace
}  // namespace anton
