#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "chem/builder.h"
#include "chem/topology.h"
#include "common/rng.h"
#include "md/bonded.h"
#include "md/params.h"

namespace anton::md {
namespace {

using EnergyFn = std::function<double(std::span<const Vec3>)>;

// Central-difference force check: F = -dE/dr.
void expect_forces_match_gradient(const EnergyFn& energy,
                                  std::span<const Vec3> pos,
                                  std::span<const Vec3> analytic,
                                  double h = 1e-6, double tol = 1e-5) {
  std::vector<Vec3> p(pos.begin(), pos.end());
  for (size_t i = 0; i < p.size(); ++i) {
    for (int ax = 0; ax < 3; ++ax) {
      const double orig = p[i][ax];
      p[i][ax] = orig + h;
      const double ep = energy(p);
      p[i][ax] = orig - h;
      const double em = energy(p);
      p[i][ax] = orig;
      const double fd = -(ep - em) / (2 * h);
      EXPECT_NEAR(analytic[i][ax], fd, tol)
          << "atom " << i << " axis " << ax;
    }
  }
}

struct BondedFixture {
  Box box = Box::cube(50.0);
  ForceField ff = ForceField::standard();
};

TEST(Bonds, EnergyAtEquilibriumIsZero) {
  BondedFixture fx;
  Topology top(fx.ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_bond({0, 1, 310.0, 1.53});
  top.finalize();
  std::vector<Vec3> pos{{10, 10, 10}, {11.53, 10, 10}};
  std::vector<Vec3> f(2);
  EnergyReport e;
  compute_bonds(fx.box, top, pos, f, e);
  EXPECT_NEAR(e.bond, 0.0, 1e-12);
  EXPECT_NEAR(norm(f[0]), 0.0, 1e-9);
}

TEST(Bonds, HarmonicEnergyAndRestoring) {
  BondedFixture fx;
  Topology top(fx.ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_bond({0, 1, 100.0, 1.5});
  top.finalize();
  std::vector<Vec3> pos{{0, 0, 0}, {1.7, 0, 0}};  // stretched by 0.2
  std::vector<Vec3> f(2);
  EnergyReport e;
  compute_bonds(fx.box, top, pos, f, e);
  EXPECT_NEAR(e.bond, 100.0 * 0.04, 1e-10);
  // Atom 1 is at larger x and the bond is stretched -> restoring force -x.
  EXPECT_LT(f[1].x, 0.0);
  EXPECT_NEAR(f[0].x, -f[1].x, 1e-12);  // Newton's third law
}

TEST(Bonds, ForcesMatchFiniteDifference) {
  BondedFixture fx;
  Topology top(fx.ff);
  for (int i = 0; i < 3; ++i) top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_bond({0, 1, 310.0, 1.53});
  top.add_bond({1, 2, 200.0, 1.40});
  top.finalize();
  std::vector<Vec3> pos{{10, 10, 10}, {11.1, 10.5, 9.8}, {12.0, 11.2, 10.4}};
  std::vector<Vec3> f(3);
  EnergyReport e;
  compute_bonds(fx.box, top, pos, f, e);
  expect_forces_match_gradient(
      [&](std::span<const Vec3> p) {
        EnergyReport er;
        std::vector<Vec3> tmp(3);
        compute_bonds(fx.box, top, p, tmp, er);
        return er.bond;
      },
      pos, f);
}

TEST(Bonds, MinimumImageAcrossBoundary) {
  BondedFixture fx;
  Topology top(fx.ff);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_bond({0, 1, 310.0, 1.53});
  top.finalize();
  // Straddles the periodic boundary: true separation is 1.53.
  std::vector<Vec3> pos{{49.5, 10, 10}, {1.03, 10, 10}};
  std::vector<Vec3> f(2);
  EnergyReport e;
  compute_bonds(fx.box, top, pos, f, e);
  EXPECT_NEAR(e.bond, 0.0, 1e-9);
}

TEST(Angles, EnergyAtEquilibriumIsZero) {
  BondedFixture fx;
  Topology top(fx.ff);
  for (int i = 0; i < 3; ++i) top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_angle({0, 1, 2, 58.0, M_PI / 2});
  top.finalize();
  std::vector<Vec3> pos{{1, 0, 0}, {0, 0, 0}, {0, 1, 0}};  // 90 degrees
  std::vector<Vec3> f(3);
  EnergyReport e;
  compute_angles(fx.box, top, pos, f, e);
  EXPECT_NEAR(e.angle, 0.0, 1e-12);
  for (const auto& fi : f) EXPECT_NEAR(norm(fi), 0.0, 1e-9);
}

TEST(Angles, ForcesMatchFiniteDifference) {
  BondedFixture fx;
  Topology top(fx.ff);
  for (int i = 0; i < 3; ++i) top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_angle({0, 1, 2, 58.0, 111.0 * M_PI / 180});
  top.finalize();
  std::vector<Vec3> pos{{1.4, 0.2, -0.1}, {0, 0, 0}, {-0.5, 1.3, 0.4}};
  std::vector<Vec3> f(3);
  EnergyReport e;
  compute_angles(fx.box, top, pos, f, e);
  expect_forces_match_gradient(
      [&](std::span<const Vec3> p) {
        EnergyReport er;
        std::vector<Vec3> tmp(3);
        compute_angles(fx.box, top, p, tmp, er);
        return er.angle;
      },
      pos, f);
}

TEST(Angles, NetForceAndTorqueFree) {
  BondedFixture fx;
  Topology top(fx.ff);
  for (int i = 0; i < 3; ++i) top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_angle({0, 1, 2, 58.0, 1.9});
  top.finalize();
  std::vector<Vec3> pos{{1.5, 0.1, 0.3}, {0, 0, 0}, {-0.4, 1.2, -0.7}};
  std::vector<Vec3> f(3);
  EnergyReport e;
  compute_angles(fx.box, top, pos, f, e);
  Vec3 net{}, torque{};
  for (int i = 0; i < 3; ++i) {
    net += f[static_cast<size_t>(i)];
    torque += cross(pos[static_cast<size_t>(i)], f[static_cast<size_t>(i)]);
  }
  EXPECT_NEAR(norm(net), 0.0, 1e-10);
  EXPECT_NEAR(norm(torque), 0.0, 1e-10);
}

TEST(Dihedrals, AngleConvention) {
  const Box box = Box::cube(50);
  // cis (phi = 0): all four atoms planar, i and l on the same side.
  EXPECT_NEAR(dihedral_angle(box, {1, 1, 0}, {1, 0, 0}, {2, 0, 0}, {2, 1, 0}),
              0.0, 1e-12);
  // trans (phi = pi).
  EXPECT_NEAR(std::abs(dihedral_angle(box, {1, 1, 0}, {1, 0, 0}, {2, 0, 0},
                                      {2, -1, 0})),
              M_PI, 1e-12);
  // right angle.
  EXPECT_NEAR(std::abs(dihedral_angle(box, {1, 1, 0}, {1, 0, 0}, {2, 0, 0},
                                      {2, 0, 1})),
              M_PI / 2, 1e-12);
}

TEST(Dihedrals, ForcesMatchFiniteDifference) {
  BondedFixture fx;
  Topology top(fx.ff);
  for (int i = 0; i < 4; ++i) top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_dihedral({0, 1, 2, 3, 1.4, 3, 0.0});
  top.finalize();
  std::vector<Vec3> pos{
      {0.1, 1.2, 0.3}, {0, 0, 0}, {1.5, 0.2, -0.1}, {2.0, 1.1, 0.8}};
  std::vector<Vec3> f(4);
  EnergyReport e;
  compute_dihedrals(fx.box, top, pos, f, e);
  expect_forces_match_gradient(
      [&](std::span<const Vec3> p) {
        EnergyReport er;
        std::vector<Vec3> tmp(4);
        compute_dihedrals(fx.box, top, p, tmp, er);
        return er.dihedral;
      },
      pos, f);
}

TEST(Dihedrals, PhaseAndMultiplicity) {
  BondedFixture fx;
  Topology top(fx.ff);
  for (int i = 0; i < 4; ++i) top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_dihedral({0, 1, 2, 3, 2.0, 2, M_PI});
  top.finalize();
  // trans configuration: phi = pi -> E = k (1 + cos(2 pi - pi)) = k(1-1)=0.
  std::vector<Vec3> pos{{1, 1, 0}, {1, 0, 0}, {2, 0, 0}, {2, -1, 0}};
  std::vector<Vec3> f(4);
  EnergyReport e;
  compute_dihedrals(fx.box, top, pos, f, e);
  EXPECT_NEAR(e.dihedral, 0.0, 1e-10);
}

TEST(Dihedrals, CollinearGeometrySkippedGracefully) {
  BondedFixture fx;
  Topology top(fx.ff);
  for (int i = 0; i < 4; ++i) top.add_atom(ForceField::Std::kCB, 0.0);
  top.add_dihedral({0, 1, 2, 3, 1.4, 3, 0.0});
  top.finalize();
  std::vector<Vec3> pos{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}};
  std::vector<Vec3> f(4);
  EnergyReport e;
  EXPECT_NO_THROW(compute_dihedrals(fx.box, top, pos, f, e));
  for (const auto& fi : f) EXPECT_NEAR(norm(fi), 0.0, 1e-12);
}

TEST(Pairs14, ForcesMatchFiniteDifference) {
  BondedFixture fx;
  Topology top(fx.ff);
  for (int i = 0; i < 4; ++i) {
    top.add_atom(ForceField::Std::kCB, i % 2 ? 0.3 : -0.3);
  }
  for (int i = 0; i < 3; ++i) top.add_bond({i, i + 1, 310.0, 1.53});
  top.finalize();
  ASSERT_EQ(top.pairs14().size(), 1u);
  std::vector<Vec3> pos{
      {0.2, 1.3, 0.1}, {0, 0, 0}, {1.5, 0.1, -0.2}, {2.1, 1.2, 0.7}};
  std::vector<Vec3> f(4);
  EnergyReport e;
  compute_pairs14(fx.box, top, pos, f, e);
  EXPECT_NE(e.pair14, 0.0);
  expect_forces_match_gradient(
      [&](std::span<const Vec3> p) {
        EnergyReport er;
        std::vector<Vec3> tmp(4);
        compute_pairs14(fx.box, top, p, tmp, er);
        return er.pair14;
      },
      pos, f, 1e-6, 1e-4);
}

TEST(AllBonded, TestMoleculeGradientConsistency) {
  const System sys = build_test_molecule(3);
  const Topology& top = sys.topology();
  std::vector<Vec3> pos(sys.positions().begin(), sys.positions().end());
  std::vector<Vec3> f(pos.size());
  EnergyReport e;
  compute_all_bonded(sys.box(), top, pos, f, e);
  expect_forces_match_gradient(
      [&](std::span<const Vec3> p) {
        EnergyReport er;
        std::vector<Vec3> tmp(p.size());
        compute_all_bonded(sys.box(), top, p, tmp, er);
        return er.bond + er.angle + er.dihedral + er.pair14;
      },
      pos, f, 1e-6, 2e-4);
}

}  // namespace
}  // namespace anton::md
