#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "common/rng.h"
#include "md/analysis.h"
#include "md/engine.h"

namespace anton::md {
namespace {

TEST(Rdf, IdealGasIsFlat) {
  // Random uniform points: g(r) ~ 1 everywhere (away from tiny-r noise).
  Box box = Box::cube(20.0);
  ForceField ff = ForceField::standard();
  auto top = std::make_shared<Topology>(ff);
  std::vector<Vec3> pos;
  Rng rng(61, 0);
  std::vector<int> idx;
  for (int i = 0; i < 4000; ++i) {
    top->add_atom(ForceField::Std::kION, 0.0);
    pos.push_back(rng.uniform_in_box(box.lengths()));
    idx.push_back(i);
  }
  top->finalize();
  System sys(std::move(top), box, std::move(pos));

  RdfAccumulator rdf(8.0, 40);
  rdf.add_frame(sys, idx, idx);
  const auto g = rdf.g_of_r();
  const auto r = rdf.r_centers();
  for (size_t b = 0; b < g.size(); ++b) {
    if (r[b] < 2.0) continue;  // small shells are noisy
    EXPECT_NEAR(g[b], 1.0, 0.15) << "r=" << r[b];
  }
}

TEST(Rdf, LatticeHasPeakAtSpacing) {
  // Simple cubic lattice, spacing 3: sharp peak at r = 3.
  Box box = Box::cube(30.0);
  ForceField ff = ForceField::standard();
  auto top = std::make_shared<Topology>(ff);
  std::vector<Vec3> pos;
  std::vector<int> idx;
  int i = 0;
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      for (int z = 0; z < 10; ++z) {
        top->add_atom(ForceField::Std::kION, 0.0);
        pos.push_back({3.0 * x, 3.0 * y, 3.0 * z});
        idx.push_back(i++);
      }
    }
  }
  top->finalize();
  System sys(std::move(top), box, std::move(pos));

  RdfAccumulator rdf(6.0, 60);
  rdf.add_frame(sys, idx, idx);
  EXPECT_NEAR(rdf.first_peak_r(1.0), 3.0, 0.1);
}

TEST(Rdf, WaterOxygenStructureAfterEquilibration) {
  // Liquid water's O-O RDF first peak sits near 2.8 Å.  This is a sensitive
  // end-to-end check: force field + Ewald + constraints + integrator must
  // all cooperate to produce liquid structure.
  System sys = build_water_box(216, 62);
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.5;
  p.respa_k = 2;
  p.long_range = LongRangeMethod::kMesh;
  p.temperature_k = 300.0;
  p.langevin_gamma_per_fs = 0.05;
  Simulation sim(std::move(sys), p);
  sim.step(400);  // equilibrate off the lattice

  const auto oxygens =
      atoms_of_type(sim.system().topology(), ForceField::Std::kOW);
  ASSERT_EQ(oxygens.size(), 216u);
  RdfAccumulator rdf(6.5, 65);
  for (int frame = 0; frame < 10; ++frame) {
    sim.step(20);
    rdf.add_frame(sim.system(), oxygens, oxygens);
  }
  const double peak = rdf.first_peak_r(2.0);
  EXPECT_GT(peak, 2.5);
  EXPECT_LT(peak, 3.3);
  // The peak should be pronounced (liquid, not gas).
  const auto g = rdf.g_of_r();
  const auto r = rdf.r_centers();
  double g_peak = 0;
  for (size_t b = 0; b < g.size(); ++b) {
    if (std::abs(r[b] - peak) < 0.2) g_peak = std::max(g_peak, g[b]);
  }
  EXPECT_GT(g_peak, 1.5);
}

TEST(Rdf, CrossRdfBetweenDifferentGroups) {
  const System sys = build_water_box(216, 63, -1);
  const auto o = atoms_of_type(sys.topology(), ForceField::Std::kOW);
  const auto h = atoms_of_type(sys.topology(), ForceField::Std::kHW);
  RdfAccumulator rdf(5.0, 50);
  rdf.add_frame(sys, o, h);
  // Intramolecular O-H at 0.9572 Å dominates.
  EXPECT_NEAR(rdf.first_peak_r(0.5), 0.9572, 0.1);
}

TEST(Rdf, RejectsRangeBeyondMinImage) {
  const System sys = build_water_box(27, 64, -1);
  const auto o = atoms_of_type(sys.topology(), ForceField::Std::kOW);
  RdfAccumulator rdf(50.0, 10);
  EXPECT_THROW(rdf.add_frame(sys, o, o), Error);
}

TEST(AtomsOfType, SelectsCorrectly) {
  const System sys = build_water_box(10, 65, -1);
  const auto o = atoms_of_type(sys.topology(), ForceField::Std::kOW);
  const auto h = atoms_of_type(sys.topology(), ForceField::Std::kHW);
  EXPECT_EQ(o.size(), 10u);
  EXPECT_EQ(h.size(), 20u);
}

TEST(Msd, ZeroForIdenticalFrames) {
  const System sys = build_water_box(27, 66, -1);
  EXPECT_DOUBLE_EQ(
      mean_squared_displacement(sys.positions(), sys.positions()), 0.0);
}

TEST(Msd, GrowsUnderDynamics) {
  System sys = build_water_box(125, 67);
  const std::vector<Vec3> ref(sys.positions().begin(), sys.positions().end());
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.0;
  p.long_range = LongRangeMethod::kMesh;
  Simulation sim(std::move(sys), p);
  sim.step(30);
  const double m1 = mean_squared_displacement(ref, sim.system().positions());
  sim.step(60);
  const double m2 = mean_squared_displacement(ref, sim.system().positions());
  EXPECT_GT(m1, 0.0);
  EXPECT_GT(m2, m1);
}

}  // namespace
}  // namespace anton::md
