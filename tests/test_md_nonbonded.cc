#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "chem/builder.h"
#include "common/rng.h"
#include "common/units.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"

namespace anton::md {
namespace {

// Two neutral LJ particles in a big box.
struct LjPairFixture {
  Box box = Box::cube(40.0);
  ForceField ff = ForceField::standard();
  std::shared_ptr<Topology> top;

  LjPairFixture() {
    top = std::make_shared<Topology>(ff);
    top->add_atom(ForceField::Std::kCB, 0.0);
    top->add_atom(ForceField::Std::kCB, 0.0);
    top->finalize();
  }
};

TEST(NeighborList, MatchesBruteForce) {
  const System sys = build_water_box(343, 17, -1);
  const Topology& top = sys.topology();
  NeighborList nlist(6.0, 1.0);
  nlist.build(sys.box(), sys.positions(), top);

  // Brute force reference.
  std::set<std::pair<int, int>> ref;
  const auto pos = sys.positions();
  const double rl2 = 7.0 * 7.0;
  for (int i = 0; i < sys.num_atoms(); ++i) {
    for (int j = i + 1; j < sys.num_atoms(); ++j) {
      if (top.excluded(i, j)) continue;
      if (norm2(sys.box().min_image(pos[static_cast<size_t>(i)],
                                    pos[static_cast<size_t>(j)])) < rl2) {
        ref.insert({i, j});
      }
    }
  }

  std::set<std::pair<int, int>> got;
  for (int i = 0; i < sys.num_atoms(); ++i) {
    for (int j : nlist.neighbors_of(i)) {
      EXPECT_GT(j, i);
      EXPECT_TRUE(got.insert({i, j}).second) << "duplicate pair";
    }
  }
  EXPECT_EQ(got, ref);
}

TEST(NeighborList, ExcludesTopologicalPairs) {
  const System sys = build_water_box(125, 18, -1);
  NeighborList nlist(6.0, 0.5);
  nlist.build(sys.box(), sys.positions(), sys.topology());
  for (const auto& w : sys.topology().waters()) {
    for (int j : nlist.neighbors_of(w.o)) {
      EXPECT_NE(j, w.h1);
      EXPECT_NE(j, w.h2);
    }
  }
}

TEST(NeighborList, RebuildTriggersOnDisplacement) {
  const System sys = build_water_box(216, 19, -1);
  NeighborList nlist(6.0, 1.0);
  nlist.build(sys.box(), sys.positions(), sys.topology());
  std::vector<Vec3> moved(sys.positions().begin(), sys.positions().end());
  EXPECT_FALSE(nlist.needs_rebuild(sys.box(), moved));
  moved[0] += Vec3{0.3, 0, 0};  // under skin/2 = 0.5
  EXPECT_FALSE(nlist.needs_rebuild(sys.box(), moved));
  moved[0] += Vec3{0.4, 0, 0};  // now 0.7 > 0.5
  EXPECT_TRUE(nlist.needs_rebuild(sys.box(), moved));
}

TEST(NeighborList, RejectsListRadiusBeyondMinImage) {
  const System sys = build_water_box(27, 20, -1);  // small box
  NeighborList nlist(100.0, 1.0);
  EXPECT_THROW(nlist.build(sys.box(), sys.positions(), sys.topology()),
               Error);
}

TEST(Nonbonded, LjMinimumEnergyAndLocation) {
  LjPairFixture fx;
  // CB-CB: eps = 0.0860, sigma = 3.9.  Minimum at 2^{1/6} sigma.
  const double rmin = std::pow(2.0, 1.0 / 6.0) * 3.9;
  std::vector<Vec3> pos{{10, 10, 10}, {10 + rmin, 10, 10}};
  NeighborList nlist(9.0, 0.5);
  nlist.build(fx.box, pos, *fx.top);
  std::vector<Vec3> f(2);
  EnergyReport e;
  compute_nonbonded(fx.box, *fx.top, nlist, pos, 0.0, f, e);
  EXPECT_NEAR(e.lj, -0.0860, 1e-9);
  EXPECT_NEAR(f[0].x, 0.0, 1e-9);  // zero force at the minimum
}

TEST(Nonbonded, LjForceMatchesFiniteDifference) {
  LjPairFixture fx;
  std::vector<Vec3> pos{{10, 10, 10}, {13.4, 10.7, 9.2}};
  NeighborList nlist(9.0, 0.5);
  nlist.build(fx.box, pos, *fx.top);
  std::vector<Vec3> f(2);
  EnergyReport e;
  compute_nonbonded(fx.box, *fx.top, nlist, pos, 0.0, f, e);

  const double h = 1e-6;
  for (int ax = 0; ax < 3; ++ax) {
    auto energy_at = [&](double delta) {
      std::vector<Vec3> p = pos;
      p[1][ax] += delta;
      EnergyReport er;
      std::vector<Vec3> tmp(2);
      NeighborList nl(9.0, 0.5);
      nl.build(fx.box, p, *fx.top);
      compute_nonbonded(fx.box, *fx.top, nl, p, 0.0, tmp, er);
      return er.lj + er.coulomb_real;
    };
    const double fd = -(energy_at(h) - energy_at(-h)) / (2 * h);
    EXPECT_NEAR(f[1][ax], fd, 1e-6);
  }
}

TEST(Nonbonded, ScreenedCoulombMatchesErfc) {
  // Two opposite charges; alpha > 0 must give erfc-screened energy.
  Box box = Box::cube(40.0);
  ForceField ff = ForceField::standard();
  auto top = std::make_shared<Topology>(ff);
  top->add_atom(ForceField::Std::kION, 1.0);
  top->add_atom(ForceField::Std::kION, -1.0);
  top->finalize();
  const double r = 4.0, alpha = 0.35;
  std::vector<Vec3> pos{{10, 10, 10}, {14, 10, 10}};
  NeighborList nlist(9.0, 0.5);
  nlist.build(box, pos, *top);
  std::vector<Vec3> f(2);
  EnergyReport e;
  compute_nonbonded(box, *top, nlist, pos, alpha, f, e);
  const double lj_part = e.lj;
  const double expected =
      -units::kCoulomb * std::erfc(alpha * r) / r;
  EXPECT_NEAR(e.coulomb_real, expected, 1e-9);
  (void)lj_part;
}

TEST(Nonbonded, ThreadedMatchesSerial) {
  const System sys = build_water_box(729, 21, -1);
  NeighborList nlist(8.0, 1.0);
  nlist.build(sys.box(), sys.positions(), sys.topology());

  std::vector<Vec3> f_serial(static_cast<size_t>(sys.num_atoms()));
  EnergyReport e_serial;
  compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                    f_serial, e_serial, nullptr);

  ThreadPool pool(4);
  std::vector<Vec3> f_par(static_cast<size_t>(sys.num_atoms()));
  EnergyReport e_par;
  compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                    f_par, e_par, &pool);

  EXPECT_NEAR(e_serial.lj, e_par.lj, 1e-8);
  EXPECT_NEAR(e_serial.coulomb_real, e_par.coulomb_real, 1e-8);
  for (size_t i = 0; i < f_serial.size(); ++i) {
    EXPECT_NEAR(f_serial[i].x, f_par[i].x, 1e-9);
    EXPECT_NEAR(f_serial[i].y, f_par[i].y, 1e-9);
    EXPECT_NEAR(f_serial[i].z, f_par[i].z, 1e-9);
  }
}

TEST(Nonbonded, NewtonsThirdLawGlobally) {
  const System sys = build_water_box(216, 22, -1);
  NeighborList nlist(8.0, 1.0);
  nlist.build(sys.box(), sys.positions(), sys.topology());
  std::vector<Vec3> f(static_cast<size_t>(sys.num_atoms()));
  EnergyReport e;
  compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                    f, e);
  Vec3 net{};
  for (const auto& fi : f) net += fi;
  EXPECT_NEAR(norm(net), 0.0, 1e-8);
}

TEST(Nonbonded, SelfEnergyFormula) {
  ForceField ff = ForceField::standard();
  Topology top(ff);
  top.add_atom(ForceField::Std::kION, 1.0);
  top.add_atom(ForceField::Std::kION, -1.0);
  top.add_atom(ForceField::Std::kION, 0.5);
  top.finalize();
  const double alpha = 0.4;
  const double expected =
      -units::kCoulomb * alpha / std::sqrt(M_PI) * (1 + 1 + 0.25);
  EXPECT_NEAR(ewald_self_energy(top, alpha), expected, 1e-12);
}

TEST(Nonbonded, ExcludedCorrectionForceMatchesFiniteDifference) {
  Box box = Box::cube(30.0);
  ForceField ff = ForceField::standard();
  auto top = std::make_shared<Topology>(ff);
  top->add_atom(ForceField::Std::kOW, -0.8);
  top->add_atom(ForceField::Std::kHW, 0.8);
  top->add_bond({0, 1, 450.0, 0.96});
  top->finalize();
  std::vector<Vec3> pos{{5, 5, 5}, {5.7, 5.3, 4.9}};
  std::vector<Vec3> f(2);
  EnergyReport e;
  const double alpha = 0.35;
  compute_excluded_correction(box, *top, pos, alpha, f, e);
  // E_excl = -qq erf(ar)/r; this +/- pair has qq < 0, so the correction is
  // positive (it cancels the attractive k-space contribution).
  const double r = box.distance(pos[0], pos[1]);
  const double expected =
      -units::kCoulomb * (-0.64) * std::erf(alpha * r) / r;
  EXPECT_NEAR(e.coulomb_excl, expected, 1e-10);

  const double h = 1e-6;
  for (int ax = 0; ax < 3; ++ax) {
    auto energy_at = [&](double delta) {
      std::vector<Vec3> p = pos;
      p[0][ax] += delta;
      EnergyReport er;
      std::vector<Vec3> tmp(2);
      compute_excluded_correction(box, *top, p, alpha, tmp, er);
      return er.coulomb_excl;
    };
    const double fd = -(energy_at(h) - energy_at(-h)) / (2 * h);
    EXPECT_NEAR(f[0][ax], fd, 1e-6);
  }
}

}  // namespace
}  // namespace anton::md
