#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "noc/torus.h"

namespace anton::noc {
namespace {

TorusConfig small_config() {
  TorusConfig c;
  c.nx = 4;
  c.ny = 4;
  c.nz = 4;
  c.link_bandwidth_gbs = 10.0;
  c.hop_latency_ns = 20.0;
  c.injection_overhead_ns = 5.0;
  c.packet_overhead_bytes = 0.0;
  return c;
}

TEST(Torus, HopCountsShortestWay) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  EXPECT_EQ(t.hop_count(t.rank(0, 0, 0), t.rank(0, 0, 0)), 0);
  EXPECT_EQ(t.hop_count(t.rank(0, 0, 0), t.rank(1, 0, 0)), 1);
  EXPECT_EQ(t.hop_count(t.rank(0, 0, 0), t.rank(3, 0, 0)), 1);  // wraps
  EXPECT_EQ(t.hop_count(t.rank(0, 0, 0), t.rank(2, 0, 0)), 2);
  EXPECT_EQ(t.hop_count(t.rank(0, 0, 0), t.rank(2, 2, 2)), 6);  // diameter
}

TEST(Torus, RouteIsDimensionOrdered) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  const auto links = t.route(t.rank(0, 0, 0), t.rank(2, 1, 0));
  ASSERT_EQ(links.size(), 3u);
  // Two x-hops first, then one y-hop.
  EXPECT_EQ(links[0].dir, 0);  // +x
  EXPECT_EQ(links[1].dir, 0);
  EXPECT_EQ(links[2].dir, 2);  // +y
}

TEST(Torus, RouteWrapsBackwards) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  const auto links = t.route(t.rank(0, 0, 0), t.rank(3, 0, 0));
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].dir, 1);  // -x is shorter
}

TEST(Torus, UnicastLatencyComponents) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  double delivered_at = -1;
  // 1000 B over 2 hops: 5 (inject) + 2*20 (hops) + 100 (1000B @ 10 GB/s).
  t.unicast(t.rank(0, 0, 0), t.rank(2, 0, 0), 1000.0,
            [&] { delivered_at = q.now(); });
  q.run();
  EXPECT_NEAR(delivered_at, 5 + 40 + 100, 1e-9);
}

TEST(Torus, SelfSendIsLocal) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  double delivered_at = -1;
  t.unicast(3, 3, 1e6, [&] { delivered_at = q.now(); });
  q.run();
  EXPECT_NEAR(delivered_at, 5.0, 1e-9);  // injection overhead only
}

TEST(Torus, ContentionSerializesSharedLink) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  // Two messages over the same single link, injected simultaneously.
  std::vector<double> times;
  t.unicast(t.rank(0, 0, 0), t.rank(1, 0, 0), 1000.0,
            [&] { times.push_back(q.now()); });
  t.unicast(t.rank(0, 0, 0), t.rank(1, 0, 0), 1000.0,
            [&] { times.push_back(q.now()); });
  q.run();
  ASSERT_EQ(times.size(), 2u);
  // First: 5 + 20 + 100 = 125.  Second waits 100 ns for the link.
  EXPECT_NEAR(times[0], 125.0, 1e-9);
  EXPECT_NEAR(times[1], 225.0, 1e-9);
}

TEST(Torus, DisjointPathsDoNotContend) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  std::vector<double> times;
  t.unicast(t.rank(0, 0, 0), t.rank(1, 0, 0), 1000.0,
            [&] { times.push_back(q.now()); });
  t.unicast(t.rank(0, 1, 0), t.rank(1, 1, 0), 1000.0,
            [&] { times.push_back(q.now()); });
  q.run();
  EXPECT_NEAR(times[0], 125.0, 1e-9);
  EXPECT_NEAR(times[1], 125.0, 1e-9);
}

TEST(Torus, MulticastDeliversToAll) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  std::vector<int> got;
  const std::vector<int> dsts{1, 2, 3, 17, 33};
  // The callback receives the destination *index*; map back to the node.
  t.multicast(0, dsts, 500.0,
              [&](int i) { got.push_back(dsts[static_cast<size_t>(i)]); });
  q.run();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, dsts);
}

TEST(Torus, MulticastSharesTreeLinks) {
  sim::EventQueue q1, q2;
  Torus t1(small_config(), &q1);
  Torus t2(small_config(), &q2);
  // Unicasts to two nodes sharing a route prefix vs multicast.
  const int src = t1.rank(0, 0, 0);
  const int a = t1.rank(2, 0, 0);
  const int b = t1.rank(2, 1, 0);
  t1.unicast(src, a, 1000.0, [] {});
  t1.unicast(src, b, 1000.0, [] {});
  q1.run();
  t2.multicast(src, std::vector<int>{a, b}, 1000.0, [](int) {});
  q2.run();
  // The multicast should move fewer bytes (shared prefix counted once).
  EXPECT_LT(t2.stats().total_bytes, t1.stats().total_bytes);
}

TEST(Torus, StatsAccumulate) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  t.unicast(0, 5, 100.0, [] {});  // (1,1,0): 2 hops
  t.unicast(0, 9, 200.0, [] {});  // (1,2,0): 3 hops
  q.run();
  const auto& s = t.stats();
  EXPECT_EQ(s.messages, 2u);
  EXPECT_NEAR(s.total_bytes, 100.0 * 2 + 200.0 * 3, 1e-9);
  EXPECT_GT(s.latency_ns.mean(), 0);
  EXPECT_GT(t.busiest_link_ns(), 0);
}

TEST(Torus, ResetStatsKeepsOccupancy) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  t.unicast(0, 1, 1e5, [] {});
  q.run();
  t.reset_stats();
  EXPECT_EQ(t.stats().messages, 0u);
  EXPECT_DOUBLE_EQ(t.busiest_link_ns(), 0.0);
}

TEST(Torus, SingleNodeDegenerate) {
  TorusConfig c = small_config();
  c.nx = c.ny = c.nz = 1;
  sim::EventQueue q;
  Torus t(c, &q);
  double at = -1;
  t.unicast(0, 0, 100, [&] { at = q.now(); });
  q.run();
  EXPECT_GE(at, 0);
}

TEST(Torus, PacketConservationUnderMixedStorm) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  uint64_t callbacks = 0;
  uint64_t expected = 0;
  // A storm of unicasts (including self-sends) and multicasts of varying
  // fan-out, all injected up front so deliveries interleave heavily.
  for (int i = 0; i < 40; ++i) {
    const int src = (i * 7) % t.num_nodes();
    const int dst = (i * 13 + 5) % t.num_nodes();
    t.unicast(src, dst, 100.0 + 10.0 * i, [&] { ++callbacks; });
    ++expected;
  }
  for (int i = 0; i < 10; ++i) {
    std::vector<int> dsts;
    for (int k = 0; k <= i; ++k) dsts.push_back((i * 11 + k * 3 + 1) % 64);
    t.multicast(i, dsts, 500.0, [&](int) { ++callbacks; });
    expected += dsts.size();
  }
  EXPECT_EQ(t.packets_injected(), expected);
  EXPECT_EQ(t.packets_delivered(), 0u);
  EXPECT_EQ(t.packets_in_flight(), expected);

  q.run();

  EXPECT_EQ(t.packets_delivered(), expected);
  EXPECT_EQ(t.packets_in_flight(), 0u);
  EXPECT_EQ(callbacks, expected);
  t.check_quiescent();  // must not throw once the queue has drained
}

TEST(Torus, CheckQuiescentThrowsWithPacketsInFlight) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  t.unicast(0, 5, 100.0, [] {});
  EXPECT_EQ(t.packets_in_flight(), 1u);
  EXPECT_THROW(t.check_quiescent(), std::runtime_error);
  q.run();
  t.check_quiescent();
}

TEST(Torus, ConservationSurvivesStatsReset) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  t.unicast(0, 1, 100.0, [] {});
  q.run();
  t.reset_stats();
  // reset_stats clears performance counters, not conservation accounting.
  EXPECT_EQ(t.packets_injected(), 1u);
  EXPECT_EQ(t.packets_delivered(), 1u);
  t.check_quiescent();
}

TEST(Torus, EventPoolRecyclesAcrossStorms) {
  // Conservation now extends to the event arena: every in-flight packet is
  // one pooled slot, quiescence balances the pool, and repeated storms reuse
  // the same slots instead of growing the arena.
  sim::EventQueue q;
  Torus t(small_config(), &q);
  const std::vector<int> dsts{1, 5, 9, 17};
  uint64_t callbacks = 0;
  auto storm = [&] {
    for (int i = 0; i < 30; ++i) {
      t.unicast((i * 7) % t.num_nodes(), (i * 13 + 5) % t.num_nodes(),
                100.0 + i, [&] { ++callbacks; });
    }
    t.multicast(0, dsts, 500.0, [&](int) { ++callbacks; });
    q.run();
  };
  storm();
  const size_t warm = q.arena_slots();
  EXPECT_GT(warm, 0u);
  for (int r = 0; r < 4; ++r) storm();
  EXPECT_EQ(q.arena_slots(), warm);
  EXPECT_EQ(q.arena_free(), q.arena_slots());
  q.check_arena();
  t.check_quiescent();
  EXPECT_EQ(callbacks, 5u * (30 + dsts.size()));
}

TEST(Torus, CoordsRoundTrip) {
  sim::EventQueue q;
  Torus t(small_config(), &q);
  for (int r = 0; r < t.num_nodes(); ++r) {
    int x, y, z;
    t.coords(r, &x, &y, &z);
    EXPECT_EQ(t.rank(x, y, z), r);
  }
}

}  // namespace
}  // namespace anton::noc
