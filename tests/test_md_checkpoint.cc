#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "chem/builder.h"
#include "md/checkpoint.h"
#include "md/engine.h"

namespace anton::md {
namespace {

MdParams params() {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.0;
  p.long_range = LongRangeMethod::kMesh;
  return p;
}

TEST(Checkpoint, StreamRoundTripIsExact) {
  System sys = build_water_box(64, 71);
  const Checkpoint cp = capture(sys, 42);
  std::stringstream ss;
  save_checkpoint(ss, cp);
  const Checkpoint loaded = load_checkpoint(ss);
  EXPECT_EQ(loaded.step, 42);
  ASSERT_EQ(loaded.positions.size(), cp.positions.size());
  for (size_t i = 0; i < cp.positions.size(); ++i) {
    EXPECT_EQ(loaded.positions[i], cp.positions[i]);    // bitwise
    EXPECT_EQ(loaded.velocities[i], cp.velocities[i]);
  }
}

TEST(Checkpoint, RestartContinuesTrajectory) {
  // Run 10 steps; checkpoint at 5; restart from the checkpoint and compare
  // against the uninterrupted run.  The restarted engine rebuilds its
  // neighbour list from the restored positions, which reorders the
  // floating-point pair summation relative to the carried-over list — so
  // agreement is to rounding-amplified precision, not bitwise (exactly the
  // problem Anton's fixed-point accumulation hardware solves).
  System sys = build_water_box(125, 72);
  Simulation sim(std::move(sys), params());
  sim.step(5);
  const Checkpoint cp = capture(sim.system(), sim.step_count());
  sim.step(5);
  const std::vector<Vec3> reference(sim.system().positions().begin(),
                                    sim.system().positions().end());

  System sys2 = build_water_box(125, 72);
  restore(sys2, cp);
  Simulation sim2(std::move(sys2), params());
  sim2.step(5);
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(norm(sim2.system().positions()[i] - reference[i]), 0.0,
                2e-2);
  }
}

TEST(Checkpoint, RestartFromSameStateIsBitwiseDeterministic) {
  // Two engines restored from the same checkpoint evolve identically — the
  // list-rebuild schedule is aligned, so determinism is exact.
  System sys = build_water_box(125, 76);
  Simulation warm(std::move(sys), params());
  warm.step(5);
  const Checkpoint cp = capture(warm.system(), warm.step_count());

  auto run = [&] {
    System s = build_water_box(125, 76);
    restore(s, cp);
    Simulation sim(std::move(s), params());
    sim.step(5);
    return std::vector<Vec3>(sim.system().positions().begin(),
                             sim.system().positions().end());
  };
  const auto a = run();
  const auto b = run();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Checkpoint, FileRoundTrip) {
  System sys = build_water_box(27, 73);
  const std::string path = "/tmp/anton2sim_test_checkpoint.bin";
  save_checkpoint_file(path, capture(sys, 7));
  const Checkpoint cp = load_checkpoint_file(path);
  EXPECT_EQ(cp.step, 7);
  EXPECT_EQ(static_cast<int>(cp.positions.size()), sys.num_atoms());
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbage) {
  std::stringstream ss;
  ss << "this is not a checkpoint at all";
  EXPECT_THROW(load_checkpoint(ss), Error);
}

TEST(Checkpoint, RejectsAtomCountMismatch) {
  System big = build_water_box(64, 74);
  System small = build_water_box(27, 74);
  const Checkpoint cp = capture(big, 0);
  EXPECT_THROW(restore(small, cp), Error);
}

TEST(Checkpoint, XyzFrameFormat) {
  System sys = build_water_box(2, 75, -1);
  std::stringstream ss;
  append_xyz_frame(ss, sys, "frame 0");
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "6");
  std::getline(ss, line);
  EXPECT_EQ(line, "frame 0");
  int atom_lines = 0;
  while (std::getline(ss, line)) {
    if (!line.empty()) ++atom_lines;
  }
  EXPECT_EQ(atom_lines, 6);
}

}  // namespace
}  // namespace anton::md
