#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/threadpool.h"
#include "fft/fft.h"

namespace anton {
namespace {

std::vector<Complex> random_signal(size_t n, uint64_t seed) {
  Rng rng(seed, 0);
  std::vector<Complex> v(n);
  for (auto& x : v) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

TEST(FftPlan, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(next_power_of_two(1), 1);
  EXPECT_EQ(next_power_of_two(33), 64);
  EXPECT_EQ(next_power_of_two(64), 64);
}

TEST(FftPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FftPlan(12), Error);
}

TEST(FftPlan, MatchesReferenceDft) {
  for (int n : {2, 4, 8, 16, 64, 256}) {
    auto sig = random_signal(static_cast<size_t>(n), 42 + n);
    const auto ref = dft_reference(sig, false);
    FftPlan plan(n);
    plan.transform(sig, false);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(sig[static_cast<size_t>(i)].real(),
                  ref[static_cast<size_t>(i)].real(), 1e-9);
      EXPECT_NEAR(sig[static_cast<size_t>(i)].imag(),
                  ref[static_cast<size_t>(i)].imag(), 1e-9);
    }
  }
}

TEST(FftPlan, InverseMatchesReference) {
  auto sig = random_signal(32, 7);
  const auto ref = dft_reference(sig, true);
  FftPlan plan(32);
  plan.transform(sig, true);
  for (size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(sig[i].real(), ref[i].real(), 1e-10);
    EXPECT_NEAR(sig[i].imag(), ref[i].imag(), 1e-10);
  }
}

TEST(FftPlan, RoundTripIsIdentity) {
  for (int n : {8, 128, 1024}) {
    auto sig = random_signal(static_cast<size_t>(n), 11);
    const auto orig = sig;
    FftPlan plan(n);
    plan.transform(sig, false);
    plan.transform(sig, true);
    for (size_t i = 0; i < sig.size(); ++i) {
      EXPECT_NEAR(sig[i].real(), orig[i].real(), 1e-10);
      EXPECT_NEAR(sig[i].imag(), orig[i].imag(), 1e-10);
    }
  }
}

TEST(FftPlan, ParsevalEnergyConservation) {
  const int n = 256;
  auto sig = random_signal(n, 3);
  double time_energy = 0;
  for (const auto& v : sig) time_energy += std::norm(v);
  FftPlan plan(n);
  plan.transform(sig, false);
  double freq_energy = 0;
  for (const auto& v : sig) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8);
}

TEST(FftPlan, DeltaTransformsToConstant) {
  std::vector<Complex> sig(16, Complex{0, 0});
  sig[0] = {1, 0};
  FftPlan plan(16);
  plan.transform(sig, false);
  for (const auto& v : sig) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftPlan, SingleToneLandsInOneBin) {
  const int n = 64, f = 5;
  std::vector<Complex> sig(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double theta = 2 * M_PI * f * j / n;
    sig[static_cast<size_t>(j)] = {std::cos(theta), std::sin(theta)};
  }
  FftPlan plan(n);
  plan.transform(sig, false);
  for (int k = 0; k < n; ++k) {
    const double mag = std::abs(sig[static_cast<size_t>(k)]);
    if (k == f) {
      EXPECT_NEAR(mag, n, 1e-8);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-8);
    }
  }
}

TEST(Fft3D, RoundTrip) {
  Fft3D fft(8, 4, 16);
  std::vector<Complex> data(fft.num_points());
  Rng rng(9, 0);
  for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = data;
  fft.forward(data);
  fft.inverse(data);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft3D, SeparablePlaneWave) {
  // A single 3D plane wave should land in exactly one bin.
  const int nx = 8, ny = 8, nz = 8;
  const int fx = 2, fy = 3, fz = 5;
  Fft3D fft(nx, ny, nz);
  std::vector<Complex> data(fft.num_points());
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const double theta =
            2 * M_PI * (double(fx * x) / nx + double(fy * y) / ny +
                        double(fz * z) / nz);
        data[fft.index(x, y, z)] = {std::cos(theta), std::sin(theta)};
      }
    }
  }
  fft.forward(data);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const double mag = std::abs(data[fft.index(x, y, z)]);
        if (x == fx && y == fy && z == fz) {
          EXPECT_NEAR(mag, double(nx) * ny * nz, 1e-7);
        } else {
          EXPECT_NEAR(mag, 0.0, 1e-7);
        }
      }
    }
  }
}

// Full-spectrum 3D reference DFT built by applying the O(n²) 1D reference
// transform along each axis in turn.
std::vector<Complex> dft3_reference(const std::vector<Complex>& in, int nx,
                                    int ny, int nz) {
  std::vector<Complex> data = in;
  auto idx = [&](int x, int y, int z) {
    return (static_cast<size_t>(z) * ny + y) * nx + x;
  };
  std::vector<Complex> line;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      line.assign(static_cast<size_t>(nx), Complex{});
      for (int x = 0; x < nx; ++x) line[static_cast<size_t>(x)] = data[idx(x, y, z)];
      const auto out = dft_reference(line, false);
      for (int x = 0; x < nx; ++x) data[idx(x, y, z)] = out[static_cast<size_t>(x)];
    }
  }
  for (int z = 0; z < nz; ++z) {
    for (int x = 0; x < nx; ++x) {
      line.assign(static_cast<size_t>(ny), Complex{});
      for (int y = 0; y < ny; ++y) line[static_cast<size_t>(y)] = data[idx(x, y, z)];
      const auto out = dft_reference(line, false);
      for (int y = 0; y < ny; ++y) data[idx(x, y, z)] = out[static_cast<size_t>(y)];
    }
  }
  for (int y = 0; y < ny; ++y) {
    for (int x = 0; x < nx; ++x) {
      line.assign(static_cast<size_t>(nz), Complex{});
      for (int z = 0; z < nz; ++z) line[static_cast<size_t>(z)] = data[idx(x, y, z)];
      const auto out = dft_reference(line, false);
      for (int z = 0; z < nz; ++z) data[idx(x, y, z)] = out[static_cast<size_t>(z)];
    }
  }
  return data;
}

std::vector<double> random_real(size_t n, uint64_t seed) {
  Rng rng(seed, 0);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1, 1);
  return v;
}

// The r2c half-spectrum must agree with the reference DFT of the same real
// data on the stored region, across a range of (including degenerate) sizes.
TEST(Fft3D, RealForwardMatchesReferenceDft) {
  struct Dims {
    int nx, ny, nz;
  };
  for (const Dims d : {Dims{8, 4, 4}, Dims{4, 8, 2}, Dims{2, 2, 8},
                       Dims{16, 4, 2}, Dims{8, 8, 8}}) {
    SCOPED_TRACE(testing::Message()
                 << d.nx << "x" << d.ny << "x" << d.nz);
    Fft3D fft(d.nx, d.ny, d.nz);
    const auto real_in =
        random_real(fft.num_points(), 100 + static_cast<uint64_t>(d.nx));
    std::vector<Complex> full(fft.num_points());
    for (size_t i = 0; i < full.size(); ++i) full[i] = {real_in[i], 0.0};
    const auto ref = dft3_reference(full, d.nx, d.ny, d.nz);

    std::vector<Complex> half(fft.half_points());
    fft.forward_real(real_in, half);
    for (int z = 0; z < d.nz; ++z) {
      for (int y = 0; y < d.ny; ++y) {
        for (int hx = 0; hx < fft.half_nx(); ++hx) {
          const Complex got = half[fft.half_index(hx, y, z)];
          const Complex want =
              ref[(static_cast<size_t>(z) * d.ny + y) * d.nx + hx];
          EXPECT_NEAR(got.real(), want.real(), 1e-9);
          EXPECT_NEAR(got.imag(), want.imag(), 1e-9);
        }
      }
    }
  }
}

// forward_real followed by inverse_real must reproduce the input.
TEST(Fft3D, RealRoundTripIsIdentity) {
  for (int nx : {2, 4, 8, 16}) {
    SCOPED_TRACE(nx);
    Fft3D fft(nx, 8, 4);
    const auto orig = random_real(fft.num_points(), 7 + static_cast<uint64_t>(nx));
    std::vector<Complex> half(fft.half_points());
    fft.forward_real(orig, half);
    std::vector<double> back(fft.num_points());
    fft.inverse_real(half, back);
    for (size_t i = 0; i < orig.size(); ++i) {
      EXPECT_NEAR(back[i], orig[i], 1e-10);
    }
  }
}

// The half-spectrum must match the full complex forward transform (the
// pre-r2c code path) on the stored region — they are the same transform.
TEST(Fft3D, RealForwardMatchesComplexForward) {
  Fft3D fft(16, 8, 8);
  const auto real_in = random_real(fft.num_points(), 55);
  std::vector<Complex> full(fft.num_points());
  for (size_t i = 0; i < full.size(); ++i) full[i] = {real_in[i], 0.0};
  fft.forward(full);
  std::vector<Complex> half(fft.half_points());
  fft.forward_real(real_in, half);
  for (int z = 0; z < fft.nz(); ++z) {
    for (int y = 0; y < fft.ny(); ++y) {
      for (int hx = 0; hx < fft.half_nx(); ++hx) {
        const Complex got = half[fft.half_index(hx, y, z)];
        const Complex want = full[fft.index(hx, y, z)];
        EXPECT_NEAR(got.real(), want.real(), 1e-10);
        EXPECT_NEAR(got.imag(), want.imag(), 1e-10);
      }
    }
  }
}

// Threading must not change a single bit: every 1D line transform is a pure
// function and lines are data-parallel, so the threaded transform equals the
// serial one exactly for any thread count.
TEST(Fft3D, ThreadedBitwiseEqualsSerial) {
  const auto real_in = random_real(static_cast<size_t>(16) * 16 * 8, 99);
  std::vector<Complex> cplx_in(real_in.size());
  for (size_t i = 0; i < real_in.size(); ++i) cplx_in[i] = {real_in[i], 0.5};

  Fft3D serial(16, 16, 8);
  auto serial_cplx = cplx_in;
  serial.forward(serial_cplx);
  std::vector<Complex> serial_half(serial.half_points());
  serial.forward_real(real_in, serial_half);
  std::vector<double> serial_back(serial.num_points());
  {
    auto spec = serial_half;
    serial.inverse_real(spec, serial_back);
  }

  for (unsigned threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    Fft3D fft(16, 16, 8, &pool);
    auto cplx = cplx_in;
    fft.forward(cplx);
    for (size_t i = 0; i < cplx.size(); ++i) {
      ASSERT_EQ(cplx[i].real(), serial_cplx[i].real()) << i;
      ASSERT_EQ(cplx[i].imag(), serial_cplx[i].imag()) << i;
    }
    std::vector<Complex> half(fft.half_points());
    fft.forward_real(real_in, half);
    for (size_t i = 0; i < half.size(); ++i) {
      ASSERT_EQ(half[i].real(), serial_half[i].real()) << i;
      ASSERT_EQ(half[i].imag(), serial_half[i].imag()) << i;
    }
    std::vector<double> back(fft.num_points());
    fft.inverse_real(half, back);
    for (size_t i = 0; i < back.size(); ++i) {
      ASSERT_EQ(back[i], serial_back[i]) << i;
    }
  }
}

TEST(Fft3D, LinearityProperty) {
  Fft3D fft(8, 8, 8);
  auto a = random_signal(fft.num_points(), 21);
  auto b = random_signal(fft.num_points(), 22);
  std::vector<Complex> sum(fft.num_points());
  for (size_t i = 0; i < sum.size(); ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft.forward(a);
  fft.forward(b);
  fft.forward(sum);
  for (size_t i = 0; i < sum.size(); ++i) {
    const Complex expect = 2.0 * a[i] + 3.0 * b[i];
    EXPECT_NEAR(sum[i].real(), expect.real(), 1e-8);
    EXPECT_NEAR(sum[i].imag(), expect.imag(), 1e-8);
  }
}

}  // namespace
}  // namespace anton
