#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fft/fft.h"

namespace anton {
namespace {

std::vector<Complex> random_signal(size_t n, uint64_t seed) {
  Rng rng(seed, 0);
  std::vector<Complex> v(n);
  for (auto& x : v) x = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return v;
}

TEST(FftPlan, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(next_power_of_two(1), 1);
  EXPECT_EQ(next_power_of_two(33), 64);
  EXPECT_EQ(next_power_of_two(64), 64);
}

TEST(FftPlan, RejectsNonPowerOfTwo) {
  EXPECT_THROW(FftPlan(12), Error);
}

TEST(FftPlan, MatchesReferenceDft) {
  for (int n : {2, 4, 8, 16, 64, 256}) {
    auto sig = random_signal(static_cast<size_t>(n), 42 + n);
    const auto ref = dft_reference(sig, false);
    FftPlan plan(n);
    plan.transform(sig, false);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(sig[static_cast<size_t>(i)].real(),
                  ref[static_cast<size_t>(i)].real(), 1e-9);
      EXPECT_NEAR(sig[static_cast<size_t>(i)].imag(),
                  ref[static_cast<size_t>(i)].imag(), 1e-9);
    }
  }
}

TEST(FftPlan, InverseMatchesReference) {
  auto sig = random_signal(32, 7);
  const auto ref = dft_reference(sig, true);
  FftPlan plan(32);
  plan.transform(sig, true);
  for (size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(sig[i].real(), ref[i].real(), 1e-10);
    EXPECT_NEAR(sig[i].imag(), ref[i].imag(), 1e-10);
  }
}

TEST(FftPlan, RoundTripIsIdentity) {
  for (int n : {8, 128, 1024}) {
    auto sig = random_signal(static_cast<size_t>(n), 11);
    const auto orig = sig;
    FftPlan plan(n);
    plan.transform(sig, false);
    plan.transform(sig, true);
    for (size_t i = 0; i < sig.size(); ++i) {
      EXPECT_NEAR(sig[i].real(), orig[i].real(), 1e-10);
      EXPECT_NEAR(sig[i].imag(), orig[i].imag(), 1e-10);
    }
  }
}

TEST(FftPlan, ParsevalEnergyConservation) {
  const int n = 256;
  auto sig = random_signal(n, 3);
  double time_energy = 0;
  for (const auto& v : sig) time_energy += std::norm(v);
  FftPlan plan(n);
  plan.transform(sig, false);
  double freq_energy = 0;
  for (const auto& v : sig) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8);
}

TEST(FftPlan, DeltaTransformsToConstant) {
  std::vector<Complex> sig(16, Complex{0, 0});
  sig[0] = {1, 0};
  FftPlan plan(16);
  plan.transform(sig, false);
  for (const auto& v : sig) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftPlan, SingleToneLandsInOneBin) {
  const int n = 64, f = 5;
  std::vector<Complex> sig(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double theta = 2 * M_PI * f * j / n;
    sig[static_cast<size_t>(j)] = {std::cos(theta), std::sin(theta)};
  }
  FftPlan plan(n);
  plan.transform(sig, false);
  for (int k = 0; k < n; ++k) {
    const double mag = std::abs(sig[static_cast<size_t>(k)]);
    if (k == f) {
      EXPECT_NEAR(mag, n, 1e-8);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-8);
    }
  }
}

TEST(Fft3D, RoundTrip) {
  Fft3D fft(8, 4, 16);
  std::vector<Complex> data(fft.num_points());
  Rng rng(9, 0);
  for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = data;
  fft.forward(data);
  fft.inverse(data);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft3D, SeparablePlaneWave) {
  // A single 3D plane wave should land in exactly one bin.
  const int nx = 8, ny = 8, nz = 8;
  const int fx = 2, fy = 3, fz = 5;
  Fft3D fft(nx, ny, nz);
  std::vector<Complex> data(fft.num_points());
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const double theta =
            2 * M_PI * (double(fx * x) / nx + double(fy * y) / ny +
                        double(fz * z) / nz);
        data[fft.index(x, y, z)] = {std::cos(theta), std::sin(theta)};
      }
    }
  }
  fft.forward(data);
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const double mag = std::abs(data[fft.index(x, y, z)]);
        if (x == fx && y == fy && z == fz) {
          EXPECT_NEAR(mag, double(nx) * ny * nz, 1e-7);
        } else {
          EXPECT_NEAR(mag, 0.0, 1e-7);
        }
      }
    }
  }
}

TEST(Fft3D, LinearityProperty) {
  Fft3D fft(8, 8, 8);
  auto a = random_signal(fft.num_points(), 21);
  auto b = random_signal(fft.num_points(), 22);
  std::vector<Complex> sum(fft.num_points());
  for (size_t i = 0; i < sum.size(); ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft.forward(a);
  fft.forward(b);
  fft.forward(sum);
  for (size_t i = 0; i < sum.size(); ++i) {
    const Complex expect = 2.0 * a[i] + 3.0 * b[i];
    EXPECT_NEAR(sum[i].real(), expect.real(), 1e-8);
    EXPECT_NEAR(sum[i].imag(), expect.imag(), 1e-8);
  }
}

}  // namespace
}  // namespace anton
