#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "common/rng.h"
#include "md/bonded.h"
#include "md/forces.h"
#include "md/pressure.h"

namespace anton::md {
namespace {

// Random neutral LJ+charge gas with no constraints (so the Clausius virial
// is complete) in a cubic box.
struct Gas {
  Box box;
  std::shared_ptr<Topology> top;
  std::vector<Vec3> pos;

  Gas(int n_pairs, double box_len, uint64_t seed) : box(Box::cube(box_len)) {
    ForceField ff = ForceField::standard();
    top = std::make_shared<Topology>(ff);
    Rng rng(seed, 0);
    for (int i = 0; i < n_pairs; ++i) {
      top->add_atom(ForceField::Std::kION, 1.0);
      top->add_atom(ForceField::Std::kION, -1.0);
      pos.push_back(rng.uniform_in_box(box.lengths()));
      pos.push_back(rng.uniform_in_box(box.lengths()));
    }
    top->finalize();
  }

  // Potential energy at a uniform scaling λ of coordinates and box.
  double energy_scaled(const MdParams& params, double lambda) const {
    const Box scaled_box(lambda * box.lengths());
    std::vector<Vec3> scaled(pos.size());
    for (size_t i = 0; i < pos.size(); ++i) scaled[i] = lambda * pos[i];
    ForceCompute fc(top, scaled_box, params);
    std::vector<Vec3> f(pos.size());
    return fc.compute_all(scaled, f).potential();
  }

  EnergyReport report(const MdParams& params) const {
    ForceCompute fc(top, box, params);
    std::vector<Vec3> f(pos.size());
    return fc.compute_all(pos, f);
  }
};

MdParams gas_params(LongRangeMethod lr) {
  MdParams p;
  p.cutoff = 5.5;
  p.skin = 0.0;
  p.shift_at_cutoff = false;  // exact energies for the FD check
  p.ewald_alpha = 0.55;
  p.kspace_nmax = 12;
  p.mesh_spacing = 0.7;
  p.gse_sigma = 0.8;
  p.long_range = lr;
  return p;
}

// W = -dE/dλ at λ=1 (uniform scaling); P_pot = W / (3V).
double virial_from_finite_difference(const Gas& gas, const MdParams& p) {
  const double h = 1e-5;
  const double ep = gas.energy_scaled(p, 1.0 + h);
  const double em = gas.energy_scaled(p, 1.0 - h);
  return -(ep - em) / (2.0 * h);
}

TEST(Pressure, VirialMatchesFiniteDifferenceCutoffOnly) {
  const Gas gas(14, 14.0, 201);
  const MdParams p = gas_params(LongRangeMethod::kNone);
  const EnergyReport e = gas.report(p);
  const double w_fd = virial_from_finite_difference(gas, p);
  EXPECT_NEAR(e.virial, w_fd, std::abs(w_fd) * 1e-4 + 1e-3);
}

TEST(Pressure, VirialMatchesFiniteDifferenceDirectEwald) {
  const Gas gas(10, 13.0, 202);
  const MdParams p = gas_params(LongRangeMethod::kDirect);
  const EnergyReport e = gas.report(p);
  const double w_fd = virial_from_finite_difference(gas, p);
  EXPECT_NEAR(e.virial, w_fd, std::abs(w_fd) * 1e-3 + 5e-2);
}

TEST(Pressure, GseVirialTracksDirectEwald) {
  const Gas gas(12, 14.0, 203);
  const EnergyReport e_direct =
      gas.report(gas_params(LongRangeMethod::kDirect));
  const EnergyReport e_mesh = gas.report(gas_params(LongRangeMethod::kMesh));
  // Mesh solver approximates the reciprocal sum; the virial should agree to
  // the method's accuracy.
  EXPECT_NEAR(e_mesh.virial, e_direct.virial,
              std::abs(e_direct.virial) * 0.05 + 0.5);
}

TEST(Pressure, InstantaneousPressureFormula) {
  const Gas gas(8, 12.0, 204);
  auto top = gas.top;
  System sys(top, gas.box, gas.pos);
  sys.assign_velocities(300.0, 1);
  EnergyReport e;
  e.virial = 42.0;
  const double expected =
      (2.0 * sys.kinetic_energy() + 42.0) / (3.0 * gas.box.volume());
  EXPECT_NEAR(instantaneous_pressure(sys, e), expected, 1e-12);
  EXPECT_NEAR(instantaneous_pressure_bar(sys, e), expected * kPressureBar,
              1e-9);
}

TEST(Pressure, IdealGasLimit) {
  // Charges off, LJ weak at low density: P ≈ rho kB T.
  Box box = Box::cube(60.0);
  ForceField ff = ForceField::standard();
  auto top = std::make_shared<Topology>(ff);
  std::vector<Vec3> pos;
  Rng rng(205, 0);
  // Jittered lattice: dilute *and* overlap-free (random placement would put
  // occasional pairs deep inside the LJ core and wreck the comparison).
  for (int i = 0; i < 200; ++i) {
    top->add_atom(ForceField::Std::kHS, 0.0);  // tiny epsilon
    const int x = i % 6, y = (i / 6) % 6, z = i / 36;
    pos.push_back(box.wrap(Vec3{10.0 * x + 5, 10.0 * y + 5, 10.0 * z + 5} +
                           0.8 * rng.gaussian_vec3()));
  }
  top->finalize();
  System sys(top, box, pos);
  sys.assign_velocities(300.0, 2);

  MdParams p = gas_params(LongRangeMethod::kNone);
  ForceCompute fc(top, box, p);
  std::vector<Vec3> f(pos.size());
  const EnergyReport e = fc.compute_all(pos, f);
  const double p_ideal =
      200.0 / box.volume() * units::kBoltzmann * sys.temperature();
  EXPECT_NEAR(instantaneous_pressure(sys, e), p_ideal,
              0.1 * p_ideal + 1e-6);
}

TEST(Pressure, BondedVirialConsistency) {
  // A strained molecule in a box; scale coordinates+box and compare the
  // bonded virial against -dE/dλ.
  const System mol = build_test_molecule(206);
  const Topology& top = mol.topology();
  std::vector<Vec3> pos(mol.positions().begin(), mol.positions().end());

  auto energy_at = [&](double lambda) {
    const Box b(lambda * mol.box().lengths());
    std::vector<Vec3> scaled(pos.size());
    for (size_t i = 0; i < pos.size(); ++i) scaled[i] = lambda * pos[i];
    EnergyReport er;
    std::vector<Vec3> f(pos.size());
    compute_all_bonded(b, top, scaled, f, er);
    return er.bond + er.angle + er.dihedral + er.pair14;
  };
  EnergyReport e;
  std::vector<Vec3> f(pos.size());
  compute_all_bonded(mol.box(), top, pos, f, e);
  const double h = 1e-6;
  const double w_fd = -(energy_at(1 + h) - energy_at(1 - h)) / (2 * h);
  EXPECT_NEAR(e.virial, w_fd, std::abs(w_fd) * 1e-4 + 1e-4);
}

}  // namespace
}  // namespace anton::md
