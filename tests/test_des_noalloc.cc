// Zero-allocation guarantee for the discrete-event core.
//
// This binary overrides the global allocator with a counting hook so the
// steady-state tests can assert that a warmed event queue, torus, and
// TimestepRunner perform no heap allocation at all while simulating — the
// DES analogue of the short-range pipeline's guarantee in
// test_md_threaded.cc.  Every schedule draws a pooled arena slot, every
// delivery recycles it, and replaying a step graph touches only memory the
// first run left warm.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "arch/config.h"
#include "chem/builder.h"
#include "core/timestep.h"
#include "core/workload.h"
#include "noc/torus.h"
#include "sim/event_queue.h"
#include "sim/parallel_engine.h"

namespace {
std::atomic<std::int64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace anton {
namespace {

// Self-scheduling chain event: each firing frees its arena slot, then
// reclaims it for the follow-up — the torus delivery pattern in miniature.
struct Hopper {
  sim::EventQueue* q;
  int remaining;
  void operator()() const {
    if (remaining > 0) {
      q->schedule_after(1.0 + 0.5 * (remaining % 3),
                        Hopper{q, remaining - 1});
    }
  }
};

TEST(DesNoAlloc, WarmedQueueStormAllocatesNothing) {
  sim::EventQueue q;
  auto storm = [&] {
    for (int c = 0; c < 32; ++c) {
      q.schedule_after(1.0 + 0.25 * c, Hopper{&q, 50});
    }
    q.run();
  };
  storm();  // grows arena + heap to steady-state capacity
  q.check_arena();

  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  storm();
  const std::int64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "steady-state event storm allocated";
  q.check_arena();
  EXPECT_EQ(q.arena_free(), q.arena_slots());
}

struct CountDelivery {
  uint64_t* n;
  void operator()() const { ++*n; }
};

struct CountMcastDelivery {
  uint64_t* n;
  void operator()(int) const { ++*n; }
};

TEST(DesNoAlloc, WarmedTorusTrafficAllocatesNothing) {
  sim::EventQueue q;
  noc::TorusConfig tc;
  tc.nx = tc.ny = tc.nz = 4;
  noc::Torus torus(tc, &q);
  const std::vector<int> dsts{1, 5, 21, 42, 63};
  uint64_t delivered = 0;

  auto storm = [&] {
    for (int i = 0; i < 48; ++i) {
      torus.unicast((i * 7) % 64, (i * 13 + 5) % 64, 256.0,
                    CountDelivery{&delivered});
      if (i % 4 == 0) {
        torus.multicast((i * 11) % 64, dsts, 512.0,
                        CountMcastDelivery{&delivered});
      }
    }
    q.run();
  };
  storm();  // warms route scratch, multicast tree arrays, event arena
  torus.check_quiescent();

  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  storm();
  const std::int64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "steady-state torus traffic allocated";
  torus.check_quiescent();
  EXPECT_EQ(delivered, 2u * (48 + 12 * dsts.size()));
}

TEST(DesNoAlloc, WarmedTimestepRunnerAllocatesNothing) {
  BuilderOptions opt;
  opt.total_atoms = 2048;
  opt.temperature_k = -1;  // positions only; velocities don't affect timing
  const System sys = build_solvated_system(opt);
  const arch::MachineConfig cfg = arch::MachineConfig::anton2(2, 2, 2);
  const core::Workload workload = core::Workload::build(sys, cfg);

  core::TimestepRunner runner(workload, cfg, {.include_long_range = true});
  const double first = runner.run_timestep();
  const double second = runner.run_timestep();

  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  const double third = runner.run_timestep();
  const std::int64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "steady-state run_timestep() allocated";

  // Replay is exact, not approximate: same graph, same queue order, same
  // link horizons from t = 0 every run.
  EXPECT_EQ(first, second);
  EXPECT_EQ(second, third);
  EXPECT_GT(third, 0.0);
}

// Chain event for the sharded engine: hops between shards through the
// mailboxes, so the steady-state claim covers rings, gather scratch and the
// per-window barrier path, not just the shard-private queues.
struct ShardHopper {
  sim::ParallelEngine* eng;
  uint32_t chain;
  int remaining;
  int shard;
  void operator()() const {
    if (remaining <= 0) return;
    const double delay = 1.0 + 0.5 * (remaining % 3);
    const int next = (shard + (remaining % 2)) % eng->shards();
    sim::EventQueue& q = eng->queue(shard);
    if (next == shard) {
      q.schedule_after(delay, ShardHopper{eng, chain, remaining - 1, shard});
    } else {
      eng->post(shard, next, q.now() + delay, chain,
                ShardHopper{eng, chain, remaining - 1, next});
    }
  }
};

TEST(DesNoAlloc, WarmedParallelEngineStormAllocatesNothing) {
  sim::ParallelEngine eng(4, 1.0, nullptr);
  eng.reserve(32, 32);
  auto storm = [&] {
    for (uint32_t c = 0; c < 32; ++c) {
      const int s = sim::ParallelEngine::shard_of(static_cast<int>(c), 32, 4);
      eng.queue(s).schedule_after(1.0 + 0.25 * c,
                                  ShardHopper{&eng, c, 50, s});
    }
    eng.run();
    eng.check_mailbox_balance();
    eng.check_arenas();
  };
  storm();  // grows arenas, heaps, rings and gather scratch to steady state
  eng.reset();

  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  storm();
  const std::int64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "steady-state sharded storm allocated";
  EXPECT_GT(eng.stats().parcels, 0u) << "storm never crossed a shard";
}

TEST(DesNoAlloc, WarmedShardedRunnerAllocatesNothing) {
  BuilderOptions opt;
  opt.total_atoms = 2048;
  opt.temperature_k = -1;
  const System sys = build_solvated_system(opt);
  arch::MachineConfig cfg = arch::MachineConfig::anton2(2, 2, 2);
  cfg.des_shards = 4;
  const core::Workload workload = core::Workload::build(sys, cfg);

  core::TimestepRunner runner(workload, cfg);
  ASSERT_EQ(runner.des_shards(), 4);
  const double first = runner.run_timestep();
  const double second = runner.run_timestep();

  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  const double third = runner.run_timestep();
  const std::int64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "steady-state sharded run_timestep() allocated";

  EXPECT_EQ(first, second);
  EXPECT_EQ(second, third);
  EXPECT_GT(third, 0.0);
}

TEST(DesNoAlloc, ShortStepRunnerAllocatesNothing) {
  BuilderOptions opt;
  opt.total_atoms = 2048;
  opt.temperature_k = -1;
  const System sys = build_solvated_system(opt);
  const arch::MachineConfig cfg = arch::MachineConfig::anton2(2, 2, 2);
  const core::Workload workload = core::Workload::build(sys, cfg);

  core::TimestepRunner runner(workload, cfg, {.include_long_range = false});
  const double first = runner.run_timestep();
  runner.run_timestep();

  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  const double again = runner.run_timestep();
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0);
  EXPECT_EQ(first, again);
}

}  // namespace
}  // namespace anton
