// Determinism and invariants of the sharded parallel DES engine.
//
// The engine's contract is that shard count is invisible in every simulated
// quantity: clocks, per-chain completion times, per-phase Executor stats,
// and NoC conservation counters are bitwise identical at 1, 2, 4 and 8
// shards, and FIFO order among equal timestamps survives shard boundaries
// (the mailbox drain re-sorts parcels into the canonical
// (time, producer-key, producer-seq) order before insertion).  These tests
// run both serially and under TSan (see the tsan-pdes CI job): the engine's
// mailbox rings and counters are plain non-atomic words ordered only by the
// ThreadPool dispatch rendezvous, and TSan is the proof that this is
// synchronization, not luck.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/config.h"
#include "chem/builder.h"
#include "common/error.h"
#include "common/threadpool.h"
#include "core/timestep.h"
#include "core/workload.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/mailbox.h"
#include "sim/parallel_engine.h"

namespace anton {
namespace {

// ---- Miniature event storm over the engine: self-scheduling chains with
// content-derived jitter that migrate between shards every third hop, so a
// third of all hops cross a shard boundary through the mailboxes.  Delays
// are >= the 1.0 lookahead, so every cross-shard post lands at or beyond
// the window end.
struct MiniStorm {
  static constexpr int kMigrateEvery = 3;

  sim::ParallelEngine& eng;
  int chains;
  int depth;
  std::vector<double> done_at;  // per chain, written only by that chain

  MiniStorm(sim::ParallelEngine& e, int n_chains, int n_depth)
      : eng(e), chains(n_chains), depth(n_depth),
        done_at(static_cast<size_t>(n_chains)) {}

  static double delay(uint32_t chain, int d) {
    return 1.0 + 0.125 * ((chain * 2654435761u +
                           static_cast<uint32_t>(d)) % 9);
  }

  int shard_at(uint32_t chain, int d) const {
    const int home = sim::ParallelEngine::shard_of(static_cast<int>(chain),
                                                   chains, eng.shards());
    return (home + d / kMigrateEvery) % eng.shards();
  }

  void seed(uint32_t chain) {
    const int s0 = shard_at(chain, 0);
    eng.queue(s0).schedule_after(delay(chain, 0), [this, chain, s0] {
      hop(chain, 0, s0);
    });
  }

  void hop(uint32_t chain, int d, int shard) {
    sim::EventQueue& q = eng.queue(shard);
    if (d + 1 >= depth) {
      done_at[chain] = q.now();
      return;
    }
    const int next = shard_at(chain, d + 1);
    if (next == shard) {
      q.schedule_after(delay(chain, d + 1), [this, chain, d, shard] {
        hop(chain, d + 1, shard);
      });
    } else {
      eng.post(shard, next, q.now() + delay(chain, d + 1), chain,
               [this, chain, d, next] { hop(chain, d + 1, next); });
    }
  }
};

struct StormRun {
  double clock = 0;
  uint64_t events = 0;
  uint64_t parcels = 0;
  std::vector<double> done_at;
};

StormRun run_mini_storm(int shards, int chains, int depth, ThreadPool* pool) {
  sim::ParallelEngine eng(shards, 1.0, pool);
  eng.reserve(static_cast<size_t>(chains), static_cast<size_t>(chains));
  MiniStorm storm(eng, chains, depth);
  for (int c = 0; c < chains; ++c) storm.seed(static_cast<uint32_t>(c));
  StormRun r;
  r.clock = eng.run();
  r.events = eng.stats().events;
  r.parcels = eng.stats().parcels;
  r.done_at = std::move(storm.done_at);
  eng.check_mailbox_balance();
  eng.check_arenas();
  return r;
}

TEST(Pdes, StormBitwiseAcrossShardCounts) {
  // A real pool even on 1-core hosts: ThreadPool(3) always spawns workers,
  // so the cross-thread window handoff is exercised everywhere.
  ThreadPool pool(3);
  const int chains = 96, depth = 40;
  const StormRun ref = run_mini_storm(1, chains, depth, nullptr);
  EXPECT_EQ(ref.events, static_cast<uint64_t>(chains) * depth);
  for (int shards : {2, 4, 8}) {
    const StormRun r = run_mini_storm(shards, chains, depth, &pool);
    EXPECT_EQ(r.clock, ref.clock) << "clock diverged at " << shards;
    EXPECT_EQ(r.events, ref.events) << "event count diverged at " << shards;
    EXPECT_GT(r.parcels, 0u) << "no cross-shard traffic at " << shards;
    for (int c = 0; c < chains; ++c) {
      ASSERT_EQ(r.done_at[static_cast<size_t>(c)],
                ref.done_at[static_cast<size_t>(c)])
          << "chain " << c << " completion diverged at " << shards
          << " shards";
    }
  }
}

TEST(Pdes, StormReplayIsStable) {
  const StormRun a = run_mini_storm(4, 64, 30, nullptr);
  const StormRun b = run_mini_storm(4, 64, 30, nullptr);
  EXPECT_EQ(a.clock, b.clock);
  EXPECT_EQ(a.done_at, b.done_at);
}

// ---- FIFO-tie property across shard boundaries.  Producers all fire at
// identical integer timestamps and post two parcels each (same time, same
// key, consecutive seq) to one aggregator shard.  The aggregator folds a
// non-commutative hash, so any deviation from the canonical
// (time, key, seq) order — producer id ascending, then posting order —
// changes the result.  Producers are seeded in *descending* id order and
// live on different shards per P, so arrival order genuinely varies; the
// folded hash must not.
struct TieHarness {
  sim::ParallelEngine& eng;
  int producers;
  int ticks;
  uint64_t acc = 0;  // written only by shard 0 events

  void seed() {
    for (int p = producers - 1; p >= 0; --p) fire(static_cast<uint32_t>(p), 0);
  }

  void fire(uint32_t p, int tick) {
    const int shard =
        sim::ParallelEngine::shard_of(static_cast<int>(p), producers,
                                      eng.shards());
    // Two parcels at the same (time, key): seq must keep posting order.
    const double t = static_cast<double>(tick + 1);
    eng.post(shard, 0, t, p, [this, p] { acc = acc * 31 + 2 * p; });
    eng.post(shard, 0, t, p, [this, p] { acc = acc * 31 + 2 * p + 1; });
    if (tick + 1 < ticks) {
      eng.queue(shard).schedule_at(t, [this, p, tick] { fire(p, tick + 1); });
    }
  }
};

uint64_t run_tie_harness(int shards, int producers, int ticks,
                         ThreadPool* pool) {
  sim::ParallelEngine eng(shards, 1.0, pool);
  eng.reserve(static_cast<size_t>(producers) * 3,
              static_cast<size_t>(producers) * 2);
  TieHarness h{eng, producers, ticks};
  h.seed();
  eng.run();
  eng.check_mailbox_balance();
  return h.acc;
}

TEST(Pdes, FifoTiesCanonicalAcrossShardBoundaries) {
  const int producers = 16, ticks = 12;
  // The canonical order the engine must reconstruct at every shard count:
  // per tick, producers ascending, and each producer's two posts in FIFO.
  uint64_t want = 0;
  for (int tick = 0; tick < ticks; ++tick) {
    for (uint32_t p = 0; p < static_cast<uint32_t>(producers); ++p) {
      want = want * 31 + 2 * p;
      want = want * 31 + 2 * p + 1;
    }
  }
  ThreadPool pool(3);
  for (int shards : {1, 2, 4, 8}) {
    EXPECT_EQ(run_tie_harness(shards, producers, ticks,
                              shards > 1 ? &pool : nullptr),
              want)
        << "tie order diverged at " << shards << " shards";
  }
}

TEST(ParallelEngine, PostInsideWindowThrows) {
  // The conservative contract: during a window, a cross-shard post must land
  // at or beyond the window end.  Lookahead 5.0, first event at t=1 →
  // window end 6.0; a post at t=2 violates the contract.
  sim::ParallelEngine eng(2, 5.0, nullptr);
  eng.reserve(4, 4);
  eng.queue(0).schedule_at(1.0, [&eng] {
    eng.post(0, 1, 2.0, 7, [] {});
  });
  EXPECT_THROW(eng.run(), Error);
}

TEST(ParallelEngine, PostAtWindowEndIsAccepted) {
  sim::ParallelEngine eng(2, 5.0, nullptr);
  eng.reserve(4, 4);
  bool ran = false;
  eng.queue(0).schedule_at(1.0, [&eng, &ran] {
    eng.post(0, 1, 6.0, 7, [&ran] { ran = true; });
  });
  EXPECT_EQ(eng.run(), 6.0);
  EXPECT_TRUE(ran);
  eng.check_mailbox_balance();
}

TEST(ParallelEngine, MailboxRingBalanceAndOverflow) {
  sim::ShardRing<int> ring;
  ring.init(2);
  EXPECT_TRUE(ring.empty());
  ring.push(10);
  ring.push(11);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.enqueued(), 2u);
  EXPECT_EQ(ring.drained(), 0u);
  // Overflow must fail loudly — rings are pre-sized, never grown.
  EXPECT_THROW(ring.push(12), Error);
  EXPECT_EQ(ring.front(), 10);
  ring.pop();
  EXPECT_EQ(ring.front(), 11);
  ring.pop();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.enqueued(), ring.drained());
}

TEST(ParallelEngine, ShardOfPartitionsEvenly) {
  // Contiguous, monotone, every shard non-empty when nodes >= shards.
  for (int nodes : {8, 64, 512, 513}) {
    for (int shards : {1, 2, 4, 8}) {
      int prev = 0;
      std::vector<int> count(static_cast<size_t>(shards));
      for (int n = 0; n < nodes; ++n) {
        const int s = sim::ParallelEngine::shard_of(n, nodes, shards);
        ASSERT_GE(s, prev);
        ASSERT_LT(s, shards);
        prev = s;
        ++count[static_cast<size_t>(s)];
      }
      for (int s = 0; s < shards; ++s) {
        EXPECT_GE(count[static_cast<size_t>(s)], nodes / shards / 2);
      }
    }
  }
}

// ---- Full timestep replay: the machine model itself, at every shard
// count, against the serial legacy engine.
struct RunnerResult {
  double makespan = 0;
  core::ExecStats exec;
  int des_shards = 0;
};

const core::Workload& test_workload() {
  static const core::Workload* w = [] {
    BuilderOptions opt;
    opt.total_atoms = 4096;
    opt.temperature_k = -1;
    const System sys = build_solvated_system(opt);
    const arch::MachineConfig cfg = arch::MachineConfig::anton2(4, 4, 4);
    return new core::Workload(core::Workload::build(sys, cfg));
  }();
  return *w;
}

RunnerResult run_step(int des_shards, const core::StepOptions& options = {}) {
  arch::MachineConfig cfg = arch::MachineConfig::anton2(4, 4, 4);
  cfg.des_shards = des_shards;
  core::TimestepRunner runner(test_workload(), cfg, options);
  RunnerResult r;
  r.makespan = runner.run_timestep();
  r.exec = runner.exec();
  r.des_shards = runner.des_shards();
  return r;
}

TEST(Pdes, RunnerBitwiseAcrossShardCounts) {
  const RunnerResult ref = run_step(1);
  ASSERT_EQ(ref.des_shards, 1);
  EXPECT_GT(ref.makespan, 0.0);
  for (int shards : {2, 4, 8}) {
    const RunnerResult r = run_step(shards);
    ASSERT_EQ(r.des_shards, shards);
    EXPECT_EQ(r.makespan, ref.makespan) << "makespan diverged at " << shards;
    EXPECT_EQ(r.exec.tasks_executed, ref.exec.tasks_executed);
    EXPECT_EQ(r.exec.noc.messages, ref.exec.noc.messages);
    EXPECT_EQ(r.exec.noc.total_bytes, ref.exec.noc.total_bytes);
    EXPECT_EQ(r.exec.noc.latency_ns.count(), ref.exec.noc.latency_ns.count());
    EXPECT_EQ(r.exec.noc.latency_ns.mean(), ref.exec.noc.latency_ns.mean());
    EXPECT_EQ(r.exec.noc.hops.mean(), ref.exec.noc.hops.mean());
    EXPECT_EQ(r.exec.max_node_busy_ns, ref.exec.max_node_busy_ns);
    // Per-phase stat maps, bitwise: same keys, same values.
    ASSERT_EQ(r.exec.phase_busy_ns.size(), ref.exec.phase_busy_ns.size());
    for (const auto& [phase, busy] : ref.exec.phase_busy_ns) {
      const auto it = r.exec.phase_busy_ns.find(phase);
      ASSERT_NE(it, r.exec.phase_busy_ns.end()) << phase;
      EXPECT_EQ(it->second, busy) << "phase_busy[" << phase << "] at "
                                  << shards << " shards";
    }
    ASSERT_EQ(r.exec.phase_end_ns.size(), ref.exec.phase_end_ns.size());
    for (const auto& [phase, end] : ref.exec.phase_end_ns) {
      const auto it = r.exec.phase_end_ns.find(phase);
      ASSERT_NE(it, r.exec.phase_end_ns.end()) << phase;
      EXPECT_EQ(it->second, end) << "phase_end[" << phase << "] at "
                                 << shards << " shards";
    }
  }
}

TEST(Pdes, RunnerMatchesSerialEngine) {
  const RunnerResult serial = run_step(0);
  ASSERT_EQ(serial.des_shards, 0);
  const RunnerResult sharded = run_step(8);
  ASSERT_EQ(sharded.des_shards, 8);
  // The simulated clock and every conservation counter are identical; the
  // Welford-folded latency stats may differ in the last ulp because the
  // serial engine records deliveries in heap order while the coordinator
  // plans in canonical (time, node, seq) order.
  EXPECT_EQ(sharded.makespan, serial.makespan);
  EXPECT_EQ(sharded.exec.tasks_executed, serial.exec.tasks_executed);
  EXPECT_EQ(sharded.exec.noc.messages, serial.exec.noc.messages);
  EXPECT_EQ(sharded.exec.noc.total_bytes, serial.exec.noc.total_bytes);
  EXPECT_EQ(sharded.exec.noc.latency_ns.count(),
            serial.exec.noc.latency_ns.count());
  for (const auto& [phase, busy] : serial.exec.phase_busy_ns) {
    const auto it = sharded.exec.phase_busy_ns.find(phase);
    ASSERT_NE(it, sharded.exec.phase_busy_ns.end()) << phase;
    EXPECT_NEAR(it->second, busy, 1e-6 * (1.0 + busy)) << phase;
  }
}

TEST(Pdes, RunnerReplayIsExactAtEveryShardCount) {
  for (int shards : {0, 2, 8}) {
    arch::MachineConfig cfg = arch::MachineConfig::anton2(4, 4, 4);
    cfg.des_shards = shards;
    core::TimestepRunner runner(test_workload(), cfg);
    const double first = runner.run_timestep();
    const double second = runner.run_timestep();
    EXPECT_EQ(first, second) << "replay diverged at " << shards << " shards";
  }
}

TEST(Pdes, ShortStepMatchesAcrossShardCounts) {
  core::StepOptions opt;
  opt.include_long_range = false;
  const RunnerResult serial = run_step(0, opt);
  const RunnerResult sharded = run_step(8, opt);
  EXPECT_EQ(sharded.makespan, serial.makespan);
}

TEST(Pdes, EnvOverrideSelectsShardCount) {
  ::setenv("ANTON_DES_SHARDS", "4", 1);
  const RunnerResult r = run_step(0);
  ::unsetenv("ANTON_DES_SHARDS");
  EXPECT_EQ(r.des_shards, 4);
  EXPECT_EQ(r.makespan, run_step(0).makespan);
}

TEST(Pdes, EnvOverrideClampsToNodeCount) {
  ::setenv("ANTON_DES_SHARDS", "1000", 1);
  const RunnerResult r = run_step(0);
  ::unsetenv("ANTON_DES_SHARDS");
  EXPECT_EQ(r.des_shards, 64);  // 4x4x4 nodes
}

TEST(Pdes, MalformedEnvFallsBackToConfig) {
  ::setenv("ANTON_DES_SHARDS", "not-a-number", 1);
  const RunnerResult r = run_step(2);
  ::unsetenv("ANTON_DES_SHARDS");
  EXPECT_EQ(r.des_shards, 2);
}

TEST(Pdes, TraceWriterForcesSerialEngine) {
  // Tracing hooks the queue and torus per event, which the parallel engine
  // does not support; a trace request silently falls back to serial.
  const std::string path = ::testing::TempDir() + "/pdes_trace.json";
  {
    obs::TraceWriter trace(path);
    core::StepOptions opt;
    opt.trace = &trace;
    const RunnerResult r = run_step(8, opt);
    EXPECT_EQ(r.des_shards, 0);
  }
  std::remove(path.c_str());
}

TEST(Pdes, BulkSynchronousForcesSerialEngine) {
  // BSP barriers are cross-node local dependencies, which break the
  // node-to-shard ownership argument; the runner falls back to serial.
  arch::MachineConfig cfg = arch::MachineConfig::anton2(4, 4, 4);
  cfg.sync = arch::SyncModel::kBulkSynchronous;
  cfg.des_shards = 8;
  core::TimestepRunner runner(test_workload(), cfg);
  EXPECT_EQ(runner.des_shards(), 0);
  EXPECT_GT(runner.run_timestep(), 0.0);
}

TEST(Pdes, LookaheadReflectsTorusLatencyFloor) {
  arch::MachineConfig cfg = arch::MachineConfig::anton2(4, 4, 4);
  cfg.des_shards = 8;
  core::TimestepRunner runner(test_workload(), cfg);
  ASSERT_EQ(runner.des_shards(), 8);
  // The step graph has no same-node sends, so the window width is the
  // remote latency floor: injection overhead + one hop.
  EXPECT_EQ(runner.lookahead_ns(),
            cfg.noc.injection_overhead_ns + cfg.noc.hop_latency_ns);
}

}  // namespace
}  // namespace anton
