#include <gtest/gtest.h>

#include <cmath>

#include "chem/builder.h"
#include "md/constraints.h"
#include "md/engine.h"
#include "md/pressure.h"

namespace anton::md {
namespace {

MdParams npt_params() {
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.5;
  p.respa_k = 2;
  p.long_range = LongRangeMethod::kMesh;
  p.thermostat = ThermostatKind::kBerendsen;
  p.temperature_k = 300.0;
  p.thermostat_tau_fs = 100.0;
  p.barostat = BarostatKind::kBerendsen;
  p.pressure_bar = 1.0;
  p.barostat_tau_fs = 400.0;
  p.barostat_interval = 5;
  return p;
}

TEST(Barostat, OverpressurisedBoxExpands) {
  // Compress a water box by 5% in volume: pressure is strongly positive, so
  // NPT must expand it back toward (and past) nothing — strictly larger
  // than the compressed start.
  System sys = build_water_box(216, 701);
  const double v_relaxed = sys.box().volume();
  const double squeeze = std::cbrt(0.95);
  auto pos = sys.positions();
  for (auto& p : pos) p *= squeeze;
  sys.set_box(Box(squeeze * sys.box().lengths()));
  const double v0 = sys.box().volume();
  ASSERT_LT(v0, v_relaxed);

  Simulation sim(std::move(sys), npt_params());
  sim.step(300);
  EXPECT_GT(sim.system().box().volume(), v0 * 1.005);
}

TEST(Barostat, DifferentStartingVolumesConverge) {
  // The truncated-shifted water model has its own equilibrium density (the
  // missing LJ tail makes it lower than experiment), so the meaningful
  // invariant is convergence: compressed and stretched starting boxes must
  // move toward each other under NPT.
  auto volume_after = [](double scale, uint64_t seed) {
    System sys = build_water_box(216, seed);
    const double mu = std::cbrt(scale);
    for (auto& p : sys.positions()) p *= mu;
    sys.set_box(Box(mu * sys.box().lengths()));
    Simulation sim(std::move(sys), npt_params());
    sim.step(400);
    return sim.system().box().volume();
  };
  const double v_small = volume_after(0.92, 702);
  const double v_big = volume_after(1.12, 702);
  const double initial_gap = (1.12 - 0.92) / 0.92;  // ~22%
  const double final_gap = std::abs(v_big - v_small) / v_small;
  EXPECT_LT(final_gap, 0.6 * initial_gap);
}

TEST(Barostat, ConstraintsSurviveRescaling) {
  System sys = build_water_box(125, 703);
  Simulation sim(std::move(sys), npt_params());
  sim.step(100);
  EXPECT_LT(max_constraint_violation(sim.system().box(),
                                     sim.system().topology(),
                                     sim.system().positions()),
            1e-6);
}

TEST(Barostat, DisabledLeavesBoxUntouched) {
  System sys = build_water_box(125, 704);
  const Vec3 l0 = sys.box().lengths();
  MdParams p = npt_params();
  p.barostat = BarostatKind::kNone;
  Simulation sim(std::move(sys), p);
  sim.step(50);
  EXPECT_EQ(sim.system().box().lengths(), l0);
}

TEST(Barostat, VolumeChangeIsClamped) {
  // Even under absurd initial pressure the per-event volume change is
  // capped at 2%, so 300 steps with interval 5 can move volume by at most
  // (1.02)^60 ≈ 3.3x; verify we stay well inside that envelope and nothing
  // explodes.
  System sys = build_water_box(125, 705);
  const double squeeze = std::cbrt(0.80);  // brutal 20% compression
  auto pos = sys.positions();
  for (auto& p : pos) p *= squeeze;
  sys.set_box(Box(squeeze * sys.box().lengths()));
  const double v0 = sys.box().volume();
  MdParams p = npt_params();
  p.barostat_tau_fs = 100.0;  // aggressive coupling
  Simulation sim(std::move(sys), p);
  EXPECT_NO_THROW(sim.step(300));
  const double ratio = sim.system().box().volume() / v0;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 3.5);
}

}  // namespace
}  // namespace anton::md
