// Unit tests for the portable SIMD wrapper (src/common/simd.h).
//
// Every operation is checked lane-by-lane against a plain scalar reference
// that encodes the documented per-lane semantics (Intel min/max, half-even
// rounding, correctly-rounded fma, ordered compares).  On an AVX2 build this
// certifies the intrinsics match the scalar model; on a scalar build it
// pins the fallback to the same contract.  Inputs include randomized lanes,
// NaN/infinity/denormal specials, unaligned loads and ragged-tail masks.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "common/simd.h"

namespace anton::simd {
namespace {

constexpr int W = kLanesD;

uint64_t bits_of(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

// Bitwise equality, except any-NaN matches any-NaN (payloads may differ
// between a hardware op and libm).
void expect_lane(double got, double want, const char* what, int lane) {
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got)) << what << " lane " << lane;
  } else {
    EXPECT_EQ(bits_of(got), bits_of(want))
        << what << " lane " << lane << ": got " << got << " want " << want;
  }
}

VecD make(const double* p) { return VecD::loadu(p); }

void check_all_lanes(VecD got, const double* want, const char* what) {
  double g[W];
  got.storeu(g);
  for (int l = 0; l < W; ++l) expect_lane(g[l], want[l], what, l);
}

// A pool of interesting doubles: specials, denormals, exact halves (rounding
// ties), large/small magnitudes and a few ordinary values.
std::vector<double> special_doubles() {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  return {0.0,
          -0.0,
          1.0,
          -1.0,
          0.5,
          -0.5,
          1.5,
          2.5,
          -2.5,
          1.0 / 3.0,
          -7.25,
          1e308,
          -1e308,
          1e-308,
          std::numeric_limits<double>::denorm_min(),
          -std::numeric_limits<double>::denorm_min(),
          std::numeric_limits<double>::min(),
          std::numeric_limits<double>::epsilon(),
          inf,
          -inf,
          nan};
}

// Random finite doubles over a wide exponent range.
std::vector<double> random_doubles(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> mant(-1.0, 1.0);
  std::uniform_int_distribution<int> expo(-60, 60);
  std::vector<double> out(n);
  for (double& v : out) v = std::ldexp(mant(rng), expo(rng));
  return out;
}

// All pairwise (a, b) lane combinations from a value pool, packed W at a
// time, exercising fn(vec_a, vec_b) against ref(lane_a, lane_b).
template <class VecFn, class RefFn>
void check_binary(const std::vector<double>& pool, VecFn&& fn, RefFn&& ref,
                  const char* what) {
  std::vector<double> as, bs;
  for (double a : pool) {
    for (double b : pool) {
      as.push_back(a);
      bs.push_back(b);
    }
  }
  while (as.size() % W != 0) {
    as.push_back(0.0);
    bs.push_back(0.0);
  }
  for (size_t i = 0; i < as.size(); i += W) {
    const VecD va = make(&as[i]);
    const VecD vb = make(&bs[i]);
    double want[W];
    for (int l = 0; l < W; ++l) {
      want[l] = ref(as[i + static_cast<size_t>(l)],
                    bs[i + static_cast<size_t>(l)]);
    }
    check_all_lanes(fn(va, vb), want, what);
  }
}

TEST(Simd, BackendReportsFixedLaneModel) {
  EXPECT_EQ(kLanesD, 4);
  EXPECT_EQ(kLanesF, 8);
  EXPECT_STREQ(kBackendName, kAvx2 ? "avx2" : "scalar");
}

TEST(Simd, LoadStoreLaneRoundTripUnaligned) {
  // Deliberately offset buffer so loadu/storeu hit unaligned addresses.
  alignas(32) double raw[W + 3] = {};
  double* p = raw + 1;
  const auto xs = random_doubles(W, 1);
  for (int l = 0; l < W; ++l) p[l] = xs[static_cast<size_t>(l)];
  const VecD v = VecD::loadu(p);
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(bits_of(v.lane(l)), bits_of(p[l]));
  }
  double out[W + 1];
  v.storeu(out + 1);
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(bits_of(out[l + 1]), bits_of(p[l]));
  }
  const VecD b = VecD::broadcast(3.25);
  for (int l = 0; l < W; ++l) EXPECT_EQ(b.lane(l), 3.25);
  const VecD z = VecD::zero();
  for (int l = 0; l < W; ++l) EXPECT_EQ(bits_of(z.lane(l)), 0u);
}

TEST(Simd, ArithmeticMatchesScalarReferencePerLane) {
  auto pool = special_doubles();
  const auto rnd = random_doubles(12, 2);
  pool.insert(pool.end(), rnd.begin(), rnd.end());
  check_binary(
      pool, [](VecD a, VecD b) { return a + b; },
      [](double a, double b) { return a + b; }, "add");
  check_binary(
      pool, [](VecD a, VecD b) { return a - b; },
      [](double a, double b) { return a - b; }, "sub");
  check_binary(
      pool, [](VecD a, VecD b) { return a * b; },
      [](double a, double b) { return a * b; }, "mul");
  check_binary(
      pool, [](VecD a, VecD b) { return a / b; },
      [](double a, double b) { return a / b; }, "div");
  check_binary(
      pool, [](VecD a, VecD) { return -a; },
      [](double a, double) { return 0.0 - a; }, "neg");
}

TEST(Simd, SqrtAndRoundMatchReference) {
  auto pool = special_doubles();
  const auto rnd = random_doubles(40, 3);
  pool.insert(pool.end(), rnd.begin(), rnd.end());
  while (pool.size() % W != 0) pool.push_back(0.0);
  for (size_t i = 0; i < pool.size(); i += W) {
    const VecD v = make(&pool[i]);
    double want_sqrt[W], want_round[W];
    for (int l = 0; l < W; ++l) {
      want_sqrt[l] = std::sqrt(pool[i + static_cast<size_t>(l)]);
      want_round[l] = std::nearbyint(pool[i + static_cast<size_t>(l)]);
    }
    check_all_lanes(sqrt(v), want_sqrt, "sqrt");
    check_all_lanes(round_nearest(v), want_round, "round_nearest");
  }
}

TEST(Simd, RoundNearestIsHalfToEven) {
  const double in[W] = {0.5, 1.5, 2.5, -0.5};
  const double want[W] = {0.0, 2.0, 2.0, -0.0};
  check_all_lanes(round_nearest(make(in)), want, "half-even");
  const double in2[W] = {-1.5, -2.5, 3.5, 4.5};
  const double want2[W] = {-2.0, -2.0, 4.0, 4.0};
  check_all_lanes(round_nearest(make(in2)), want2, "half-even-2");
}

TEST(Simd, FmaIsSingleRounding) {
  auto pool = special_doubles();
  const auto rnd = random_doubles(9, 4);
  pool.insert(pool.end(), rnd.begin(), rnd.end());
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<size_t> pick(0, pool.size() - 1);
  for (int rep = 0; rep < 200; ++rep) {
    double a[W], b[W], c[W], want[W];
    for (int l = 0; l < W; ++l) {
      a[l] = pool[pick(rng)];
      b[l] = pool[pick(rng)];
      c[l] = pool[pick(rng)];
      want[l] = std::fma(a[l], b[l], c[l]);
    }
    check_all_lanes(fma(make(a), make(b), make(c)), want, "fma");
  }
  // A case where fused and unfused rounding genuinely differ, proving the
  // wrapper (and the -ffp-contract=off build) really uses one rounding.
  const double x = 1.0 + std::ldexp(1.0, -30);
  const double fused = std::fma(x, x, -1.0);
  const double unfused = x * x - 1.0;
  ASSERT_NE(bits_of(fused), bits_of(unfused));
  const VecD r = fma(VecD::broadcast(x), VecD::broadcast(x),
                     VecD::broadcast(-1.0));
  for (int l = 0; l < W; ++l) EXPECT_EQ(bits_of(r.lane(l)), bits_of(fused));
}

TEST(Simd, MinMaxUseIntelSemantics) {
  auto pool = special_doubles();
  // Intel semantics: a OP b ? a : b — a NaN in `a` selects b, a NaN in `b`
  // propagates, and min(+0,-0) = -0 / max(+0,-0) = -0 (second operand).
  check_binary(
      pool, [](VecD a, VecD b) { return min(a, b); },
      [](double a, double b) { return a < b ? a : b; }, "min");
  check_binary(
      pool, [](VecD a, VecD b) { return max(a, b); },
      [](double a, double b) { return a > b ? a : b; }, "max");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const VecD vn = VecD::broadcast(nan);
  const VecD v1 = VecD::broadcast(1.0);
  EXPECT_EQ(min(vn, v1).lane(0), 1.0);       // NaN in a selects b
  EXPECT_TRUE(std::isnan(min(v1, vn).lane(0)));
  EXPECT_EQ(max(vn, v1).lane(0), 1.0);
  EXPECT_TRUE(std::isnan(max(v1, vn).lane(0)));
}

TEST(Simd, ComparesAreOrderedExceptNe) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  auto pool = special_doubles();
  auto check_cmp = [&](auto fn, auto ref, const char* what) {
    for (double a : pool) {
      for (double b : pool) {
        const MaskD m = fn(VecD::broadcast(a), VecD::broadcast(b));
        for (int l = 0; l < W; ++l) {
          EXPECT_EQ(m.lane(l), ref(a, b)) << what << " a=" << a << " b=" << b;
        }
      }
    }
  };
  check_cmp([](VecD a, VecD b) { return cmp_lt(a, b); },
            [](double a, double b) { return a < b; }, "lt");
  check_cmp([](VecD a, VecD b) { return cmp_le(a, b); },
            [](double a, double b) { return a <= b; }, "le");
  check_cmp([](VecD a, VecD b) { return cmp_gt(a, b); },
            [](double a, double b) { return a > b; }, "gt");
  check_cmp([](VecD a, VecD b) { return cmp_ge(a, b); },
            [](double a, double b) { return a >= b; }, "ge");
  check_cmp([](VecD a, VecD b) { return cmp_eq(a, b); },
            [](double a, double b) { return a == b; }, "eq");
  // cmp_ne is the unordered complement of eq: NaN != anything is true.
  check_cmp([](VecD a, VecD b) { return cmp_ne(a, b); },
            [](double a, double b) { return !(a == b); }, "ne");
  EXPECT_TRUE(cmp_ne(VecD::broadcast(nan), VecD::broadcast(nan)).all());
  EXPECT_FALSE(cmp_eq(VecD::broadcast(nan), VecD::broadcast(nan)).any());
}

TEST(Simd, MaskOpsAndRaggedTails) {
  for (int n = 0; n <= W; ++n) {
    const MaskD m = MaskD::first_n(n);
    for (int l = 0; l < W; ++l) EXPECT_EQ(m.lane(l), l < n) << "n=" << n;
    EXPECT_EQ(m.any(), n > 0);
    EXPECT_EQ(m.all(), n == W);
    EXPECT_EQ(m.bits(), (1 << n) - 1);
  }
  EXPECT_FALSE(MaskD::none().any());
  const MaskD a = MaskD::first_n(3);
  const MaskD b = MaskD::first_n(1);
  EXPECT_EQ((a & b).bits(), 0b0001);
  EXPECT_EQ((a | b).bits(), 0b0111);
  EXPECT_EQ(andnot(a, b).bits(), 0b0110);  // a & ~b
}

TEST(Simd, BlendSelectsPerLane) {
  const double av[W] = {1.0, 2.0, 3.0, 4.0};
  const double bv[W] = {-1.0, -2.0, -3.0, -4.0};
  for (int n = 0; n <= W; ++n) {
    const VecD r = blend(MaskD::first_n(n), make(av), make(bv));
    for (int l = 0; l < W; ++l) {
      EXPECT_EQ(r.lane(l), l < n ? av[l] : bv[l]);
    }
  }
  // Blend driven by a compare mask, the kernel's cutoff idiom.
  const double xs[W] = {0.5, 2.0, 1.0, 9.0};
  const MaskD in = cmp_lt(make(xs), VecD::broadcast(1.5));
  const VecD r = blend(in, make(av), VecD::zero());
  const double want[W] = {1.0, 0.0, 3.0, 0.0};
  check_all_lanes(r, want, "blend-cmp");
}

TEST(Simd, GatherAndMaskGather) {
  std::vector<double> table = random_doubles(64, 6);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> pick(0, 63);
  for (int rep = 0; rep < 100; ++rep) {
    int idx[W];
    for (int& k : idx) k = pick(rng);
    const VecI vi = VecI::loadu(idx);
    const VecD g = VecD::gather(table.data(), vi);
    for (int l = 0; l < W; ++l) {
      EXPECT_EQ(bits_of(g.lane(l)),
                bits_of(table[static_cast<size_t>(idx[l])]));
    }
    for (int n = 0; n <= W; ++n) {
      const VecD mg = VecD::mask_gather(table.data(), vi, MaskD::first_n(n));
      for (int l = 0; l < W; ++l) {
        const double want = l < n ? table[static_cast<size_t>(idx[l])] : 0.0;
        EXPECT_EQ(bits_of(mg.lane(l)), bits_of(want));
      }
    }
  }
}

TEST(Simd, LoadFields4TransposesRecordsBitwise) {
  // 4-double records at arbitrary (possibly duplicated) offsets: field j of
  // output vector f_j, lane l must be bitwise base[idx[l] + j] — the AVX2
  // backend is pure data movement (loads + unpack/permute transpose), the
  // scalar backend per-lane loads, so both are exact.
  std::vector<double> table = random_doubles(32 * 4, 11);
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<int> pick(0, 31);
  for (int rep = 0; rep < 100; ++rep) {
    int idx[W];
    for (int& k : idx) k = pick(rng) * 4;
    idx[W - 1] = idx[0];  // duplicated offsets must be fine
    VecD f0, f1, f2, f3;
    load_fields4(table.data(), VecI::loadu(idx), f0, f1, f2, f3);
    const VecD* f[4] = {&f0, &f1, &f2, &f3};
    for (int j = 0; j < 4; ++j) {
      for (int l = 0; l < W; ++l) {
        EXPECT_EQ(bits_of(f[j]->lane(l)),
                  bits_of(table[static_cast<size_t>(idx[l] + j)]));
      }
    }
  }
  // Special values survive the transpose unmodified (no arithmetic).
  const double specials[8] = {-0.0,
                              std::numeric_limits<double>::infinity(),
                              std::numeric_limits<double>::quiet_NaN(),
                              std::numeric_limits<double>::denorm_min(),
                              1.0,
                              -2.5,
                              0.0,
                              -1e308};
  const int at[W] = {0, 4, 0, 4};
  VecD g0, g1, g2, g3;
  load_fields4(specials, VecI::loadu(at), g0, g1, g2, g3);
  const VecD* g[4] = {&g0, &g1, &g2, &g3};
  for (int j = 0; j < 4; ++j) {
    for (int l = 0; l < W; ++l) {
      EXPECT_EQ(bits_of(g[j]->lane(l)),
                bits_of(specials[static_cast<size_t>(at[l] + j)]));
    }
  }
}

TEST(Simd, PrefetchIsAdvisoryOnly) {
  // prefetch must accept any address (including one past the end) without
  // faulting or altering data; it is a pure hint on both backends.
  std::vector<double> buf = random_doubles(8, 17);
  const std::vector<double> before = buf;
  prefetch(buf.data());
  prefetch(buf.data() + buf.size());
  for (size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(bits_of(buf[i]), bits_of(before[i]));
  }
}

TEST(Simd, TruncateAndFromInt) {
  const double in[W] = {2.9, -2.9, 0.49, -0.49};
  const int want[W] = {2, -2, 0, 0};
  const VecI t = truncate(make(in));
  for (int l = 0; l < W; ++l) EXPECT_EQ(t.lane(l), want[l]);
  // Large in-range magnitudes.
  const double big[W] = {2147483000.0, -2147483000.0, 1e6 + 0.999, -7.0};
  const VecI tb = truncate(make(big));
  const int wantb[W] = {2147483000, -2147483000, 1000000, -7};
  for (int l = 0; l < W; ++l) EXPECT_EQ(tb.lane(l), wantb[l]);
  // Round trip through from_int is exact for int32.
  const int ivals[W] = {0, -1, 123456789, -2147483647};
  const VecD d = VecD::from_int(VecI::loadu(ivals));
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(d.lane(l), static_cast<double>(ivals[l]));
  }
}

TEST(Simd, VecIOps) {
  const int av[W] = {1, -5, 100000, 7};
  const int bv[W] = {3, 2, -4, 7};
  const VecI a = VecI::loadu(av);
  const VecI b = VecI::loadu(bv);
  const VecI s = a + b;
  const VecI p = a * b;
  const VecI mn = min(a, b);
  const VecI mx = max(a, b);
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(s.lane(l), av[l] + bv[l]);
    EXPECT_EQ(p.lane(l), av[l] * bv[l]);
    EXPECT_EQ(mn.lane(l), std::min(av[l], bv[l]));
    EXPECT_EQ(mx.lane(l), std::max(av[l], bv[l]));
  }
  int out[W];
  VecI::broadcast(42).storeu(out);
  for (int l = 0; l < W; ++l) EXPECT_EQ(out[l], 42);
  // Integer gather.
  std::vector<int> tab(32);
  for (int i = 0; i < 32; ++i) tab[static_cast<size_t>(i)] = i * i - 7;
  const int idx[W] = {0, 31, 5, 17};
  const VecI g = VecI::gather(tab.data(), VecI::loadu(idx));
  for (int l = 0; l < W; ++l) {
    EXPECT_EQ(g.lane(l), tab[static_cast<size_t>(idx[l])]);
  }
}

TEST(Simd, ReduceOrderedIsStrictlyLeftToRight) {
  // Pick lanes where summation order changes the result, and pin the exact
  // ((l0+l1)+l2)+l3 order.
  const double lanes[W] = {1e16, 1.0, -1e16, 1.0};
  const double want = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  const double other = ((lanes[0] + lanes[2]) + lanes[1]) + lanes[3];
  ASSERT_NE(bits_of(want), bits_of(other));
  EXPECT_EQ(bits_of(make(lanes).reduce_ordered()), bits_of(want));
  const auto rnd = random_doubles(4 * 50, 8);
  for (size_t i = 0; i < rnd.size(); i += W) {
    const double w = ((rnd[i] + rnd[i + 1]) + rnd[i + 2]) + rnd[i + 3];
    EXPECT_EQ(bits_of(make(&rnd[i]).reduce_ordered()), bits_of(w));
  }
}

TEST(Simd, CmulMatchesNaiveComplexFormula) {
  const auto rnd = random_doubles(4 * 100, 9);
  for (size_t i = 0; i < rnd.size(); i += W) {
    const VecD a = make(&rnd[i]);
    double b_raw[W];
    for (int l = 0; l < W; ++l) {
      b_raw[l] = rnd[(i + static_cast<size_t>(l) + 7) % rnd.size()];
    }
    const VecD b = make(b_raw);
    const VecD r = cmul(a, b);
    for (int p = 0; p < W; p += 2) {
      const double ar = a.lane(p), ai = a.lane(p + 1);
      const double br = b.lane(p), bi = b.lane(p + 1);
      expect_lane(r.lane(p), ar * br - ai * bi, "cmul-re", p);
      expect_lane(r.lane(p + 1), ai * br + ar * bi, "cmul-im", p);
      // Also bitwise what std::complex multiplication produces for finite
      // non-NaN results (the FFT's former inner loop).
      const std::complex<double> want =
          std::complex<double>{ar, ai} * std::complex<double>{br, bi};
      if (!std::isnan(want.real()) && !std::isnan(want.imag())) {
        EXPECT_EQ(bits_of(r.lane(p)), bits_of(want.real()));
        EXPECT_EQ(bits_of(r.lane(p + 1)), bits_of(want.imag()));
      }
    }
  }
}

// --- float lane checks (lighter: the MD kernels are double, VecF exists for
// future single-precision paths) --------------------------------------------

TEST(Simd, FloatLanesMatchScalarReference) {
  std::mt19937 rng(10);
  std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
  constexpr int WF = kLanesF;
  for (int rep = 0; rep < 100; ++rep) {
    float a[WF], b[WF], c[WF];
    for (int l = 0; l < WF; ++l) {
      a[l] = dist(rng);
      b[l] = dist(rng);
      c[l] = dist(rng);
    }
    const VecF va = VecF::loadu(a);
    const VecF vb = VecF::loadu(b);
    const VecF vc = VecF::loadu(c);
    const VecF sum = va + vb;
    const VecF diff = va - vb;
    const VecF prod = va * vb;
    const VecF quot = va / vb;
    const VecF fm = fma(va, vb, vc);
    const VecF mn = min(va, vb);
    const VecF mx = max(va, vb);
    for (int l = 0; l < WF; ++l) {
      EXPECT_EQ(sum.lane(l), a[l] + b[l]);
      EXPECT_EQ(diff.lane(l), a[l] - b[l]);
      EXPECT_EQ(prod.lane(l), a[l] * b[l]);
      EXPECT_EQ(quot.lane(l), a[l] / b[l]);
      EXPECT_EQ(fm.lane(l), std::fma(a[l], b[l], c[l]));
      EXPECT_EQ(mn.lane(l), a[l] < b[l] ? a[l] : b[l]);
      EXPECT_EQ(mx.lane(l), a[l] > b[l] ? a[l] : b[l]);
    }
    const MaskF lt = cmp_lt(va, vb);
    const MaskF ge = cmp_ge(va, vb);
    const VecF bl = blend(lt, va, vb);
    for (int l = 0; l < WF; ++l) {
      EXPECT_EQ(lt.lane(l), a[l] < b[l]);
      EXPECT_EQ(ge.lane(l), a[l] >= b[l]);
      EXPECT_EQ(bl.lane(l), a[l] < b[l] ? a[l] : b[l]);
    }
    float acc = a[0];
    for (int l = 1; l < WF; ++l) acc += a[l];
    EXPECT_EQ(va.reduce_ordered(), acc);
  }
  for (int n = 0; n <= kLanesF; ++n) {
    const MaskF m = MaskF::first_n(n);
    for (int l = 0; l < kLanesF; ++l) EXPECT_EQ(m.lane(l), l < n);
    EXPECT_EQ(m.any(), n > 0);
    EXPECT_EQ(m.all(), n == kLanesF);
  }
}

}  // namespace
}  // namespace anton::simd
