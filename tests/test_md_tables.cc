// Tabulated pair kernels: cubic-Hermite table machinery, the erfc table
// accuracy bound, parity between tabulated and analytic short-range forces,
// and NVE energy conservation with tables enabled.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "chem/builder.h"
#include "common/table.h"
#include "common/units.h"
#include "md/engine.h"
#include "md/neighborlist.h"
#include "md/nonbonded.h"

namespace anton::md {
namespace {

constexpr double kTwoOverSqrtPi = 1.1283791670955126;

TEST(CubicTable, ReproducesSmoothFunction) {
  CubicTable tab;
  tab.build(
      0.0, 5.0, 513, [](double x) { return std::exp(-x); },
      [](double x) { return -std::exp(-x); });
  ASSERT_TRUE(tab.built());
  // Exact at the nodes.
  EXPECT_DOUBLE_EQ(tab(0.0), 1.0);
  // Hermite error scales like h^4 f'''' / 384; h ~ 1e-2 gives ~2.6e-11.
  double max_err = 0;
  for (int k = 0; k < 2000; ++k) {
    const double x = 5.0 * k / 1999.0;
    max_err = std::max(max_err, std::abs(tab(x) - std::exp(-x)));
  }
  EXPECT_LT(max_err, 1e-9);
  // Clamped outside the domain.
  EXPECT_DOUBLE_EQ(tab(-1.0), tab(0.0));
  EXPECT_DOUBLE_EQ(tab(6.0), tab(5.0));
}

TEST(CubicTable, EvalBatchIsBitwiseIdenticalToScalarEval) {
  CubicTable tab;
  tab.build(
      0.25, 81.0, 1537, [](double x) { return std::exp(-0.3 * x) / x; },
      [](double x) {
        return -std::exp(-0.3 * x) * (0.3 / x + 1.0 / (x * x));
      });
  // Random abscissae across the domain plus clamp regions on both sides and
  // exact node hits; every batch size from 1 to 3 vector widths to cover
  // ragged tails.
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> in_dom(0.25, 81.0);
  std::uniform_real_distribution<double> wide(-5.0, 95.0);
  std::vector<double> xs;
  for (int k = 0; k < 4000; ++k) xs.push_back(in_dom(rng));
  for (int k = 0; k < 1000; ++k) xs.push_back(wide(rng));
  for (int k = 0; k < 1537; k += 13) {
    xs.push_back(0.25 + k * (81.0 - 0.25) / 1536.0);
  }
  auto expect_bits = [](double got, double want, size_t i) {
    uint64_t gb, wb;
    std::memcpy(&gb, &got, sizeof gb);
    std::memcpy(&wb, &want, sizeof wb);
    EXPECT_EQ(gb, wb) << "x index " << i << ": got " << got << " want "
                      << want;
  };
  std::vector<double> out(xs.size(), -1.0);
  tab.eval_batch(xs.data(), out.data(), static_cast<int>(xs.size()));
  for (size_t i = 0; i < xs.size(); ++i) expect_bits(out[i], tab(xs[i]), i);
  for (int count = 1; count <= 12; ++count) {
    std::vector<double> o(static_cast<size_t>(count), -1.0);
    tab.eval_batch(xs.data(), o.data(), count);
    for (int i = 0; i < count; ++i) {
      expect_bits(o[static_cast<size_t>(i)], tab(xs[static_cast<size_t>(i)]),
                  static_cast<size_t>(i));
    }
  }
}

TEST(ErfcTables, MeetAccuracyBound) {
  const System sys = build_water_box(8, 5);
  const double alpha = 0.35;
  const double cutoff = 9.0;
  ForceWorkspace ws;
  ws.build_cache(sys.topology(), alpha, cutoff, /*shift_at_cutoff=*/true,
                 /*tabulate_erfc=*/true, /*table_target_err=*/1e-9);
  ASSERT_TRUE(ws.tables_ready());
  EXPECT_LE(ws.table_max_rel_err(), 1e-9);

  // Independent dense sweep in r (not the build's midpoint grid): both the
  // energy table E(r²) = erfc(ar)/r and the force-factor table stay within
  // an order of magnitude of the advertised bound.
  const CubicTable& etab = ws.coul_e();
  const CubicTable& ftab = ws.coul_f();
  double max_rel = 0;
  for (int k = 0; k <= 20000; ++k) {
    const double r = 0.6 + (cutoff - 0.01 - 0.6) * k / 20000.0;
    const double r2 = r * r;
    const double ar = alpha * r;
    const double e_ref = std::erfc(ar) / r;
    const double f_ref =
        (std::erfc(ar) / r + kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) / r2;
    max_rel = std::max(max_rel, std::abs(etab(r2) - e_ref) / std::abs(e_ref));
    max_rel = std::max(max_rel, std::abs(ftab(r2) - f_ref) / std::abs(f_ref));
  }
  EXPECT_LT(max_rel, 1e-8);

  // The fused interleaved view carries the same node data (the interpolant
  // evaluated at a node abscissa reproduces the stored node value up to the
  // rounding of the abscissa itself).
  const CoulTableView view = ws.coul_ef();
  ASSERT_EQ(view.n, etab.num_nodes());
  EXPECT_EQ(view.x0, etab.min_x());
  for (int k = 0; k < view.n; k += 97) {
    const double x = view.x0 + k * view.h;
    EXPECT_NEAR(view.nodes[k].ev, etab(x), 1e-12 * std::abs(view.nodes[k].ev))
        << "node " << k;
    EXPECT_NEAR(view.nodes[k].fv, ftab(x), 1e-12 * std::abs(view.nodes[k].fv))
        << "node " << k;
  }
}

TEST(ErfcTables, TabulatedNonbondedMatchesAnalytic) {
  const System sys = build_water_box(216, 21);
  NeighborList nlist(6.5, 0.7);
  nlist.build(sys.box(), sys.positions(), sys.topology());
  const size_t n = static_cast<size_t>(sys.num_atoms());

  std::vector<Vec3> fa(n), ft(n);
  EnergyReport ea, et;
  ForceWorkspace wsa, wst;
  compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                    fa, ea, nullptr, true, &wsa, false);
  compute_nonbonded(sys.box(), sys.topology(), nlist, sys.positions(), 0.35,
                    ft, et, nullptr, true, &wst, true);

  EXPECT_NEAR(ea.lj, et.lj, 1e-9 * std::abs(ea.lj));
  EXPECT_NEAR(ea.coulomb_real, et.coulomb_real,
              1e-6 * std::abs(ea.coulomb_real));
  EXPECT_NEAR(ea.virial, et.virial, 1e-6 * std::abs(ea.virial));
  for (size_t i = 0; i < n; ++i) {
    const double scale = std::max(1.0, std::sqrt(norm2(fa[i])));
    EXPECT_NEAR(fa[i].x, ft[i].x, 1e-6 * scale) << "atom " << i;
    EXPECT_NEAR(fa[i].y, ft[i].y, 1e-6 * scale) << "atom " << i;
    EXPECT_NEAR(fa[i].z, ft[i].z, 1e-6 * scale) << "atom " << i;
  }
}

TEST(ErfcTables, NveConservationWithTabulatedKernel) {
  System sys = build_water_box(125, 101);
  MdParams p;
  p.cutoff = 6.5;
  p.skin = 0.7;
  p.dt_fs = 1.0;
  p.respa_k = 1;
  p.long_range = LongRangeMethod::kMesh;
  p.mesh_spacing = 1.1;
  p.gse_sigma = 1.2;
  p.ewald_alpha = 0.35;
  p.tabulate_erfc = true;
  Simulation sim(std::move(sys), p);
  sim.step(50);  // relax the synthetic lattice before measuring
  const double e0 = sim.energies().total();
  sim.step(200);
  const double e1 = sim.energies().total();
  const double ke = sim.system().kinetic_energy();
  EXPECT_LT(std::abs(e1 - e0), 0.01 * ke)
      << "E0=" << e0 << " E1=" << e1 << " KE=" << ke;
}

}  // namespace
}  // namespace anton::md
