#include "geom/decomp.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace anton {

DomainDecomp::DomainDecomp(const Box& box, int nx, int ny, int nz)
    : box_(box), nx_(nx), ny_(ny), nz_(nz) {
  ANTON_CHECK_MSG(nx > 0 && ny > 0 && nz > 0,
                  "node grid dims must be positive");
}

int DomainDecomp::node_of(const Vec3& p) const {
  const Vec3 w = box_.wrap(p);
  const Vec3& l = box_.lengths();
  int cx = static_cast<int>(w.x / l.x * nx_);
  int cy = static_cast<int>(w.y / l.y * ny_);
  int cz = static_cast<int>(w.z / l.z * nz_);
  cx = std::min(cx, nx_ - 1);
  cy = std::min(cy, ny_ - 1);
  cz = std::min(cz, nz_ - 1);
  return rank(cx, cy, cz);
}

int DomainDecomp::neighbor_rank(int r, const NodeOffset& off) const {
  int cx, cy, cz;
  coords(r, &cx, &cy, &cz);
  cx = (cx + off.dx % nx_ + nx_) % nx_;
  cy = (cy + off.dy % ny_ + ny_) % ny_;
  cz = (cz + off.dz % nz_ + nz_) % nz_;
  return rank(cx, cy, cz);
}

double DomainDecomp::box_distance(const NodeOffset& off) const {
  const Vec3 hb = home_box_lengths();
  auto axis_gap = [](int d, double cell) {
    const int gap = std::max(0, std::abs(d) - 1);
    return gap * cell;
  };
  const double gx = axis_gap(off.dx, hb.x);
  const double gy = axis_gap(off.dy, hb.y);
  const double gz = axis_gap(off.dz, hb.z);
  return std::sqrt(gx * gx + gy * gy + gz * gz);
}

std::vector<NodeOffset> DomainDecomp::import_offsets(double cutoff,
                                                     ImportShell shell) const {
  ANTON_CHECK_MSG(cutoff > 0, "cutoff must be positive");
  const Vec3 hb = home_box_lengths();
  // How many home boxes the cutoff can span per axis.  Capped so that on
  // small node grids an offset and its periodic image are not both listed.
  const int rx = std::min(nx_ / 2,
                          static_cast<int>(std::ceil(cutoff / hb.x)));
  const int ry = std::min(ny_ / 2,
                          static_cast<int>(std::ceil(cutoff / hb.y)));
  const int rz = std::min(nz_ / 2,
                          static_cast<int>(std::ceil(cutoff / hb.z)));
  std::vector<NodeOffset> out;
  for (int dz = -rz; dz <= rz; ++dz) {
    for (int dy = -ry; dy <= ry; ++dy) {
      for (int dx = -rx; dx <= rx; ++dx) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const NodeOffset off{dx, dy, dz};
        if (box_distance(off) >= cutoff) continue;
        if (shell == ImportShell::kHalf) {
          // Keep the lexicographically-positive representative.
          const bool keep =
              dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx > 0);
          if (!keep) continue;
        }
        out.push_back(off);
      }
    }
  }
  return out;
}

std::vector<int> DomainDecomp::assign(std::span<const Vec3> positions) const {
  std::vector<int> out(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    out[i] = node_of(positions[i]);
  }
  return out;
}

std::vector<int> DomainDecomp::counts(std::span<const Vec3> positions) const {
  std::vector<int> out(static_cast<size_t>(num_nodes()), 0);
  for (const auto& p : positions) ++out[static_cast<size_t>(node_of(p))];
  return out;
}

}  // namespace anton
