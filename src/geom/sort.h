// Spatial (Morton-order) sorting of atom indices.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/hilbert.h"
#include "common/morton.h"
#include "common/vec3.h"
#include "geom/box.h"

namespace anton {

// Returns a permutation `perm` such that positions[perm[0]], positions[perm[1]],
// ... follow a Z-order curve through the box.  Resolution: 1024 cells/axis.
inline std::vector<int> morton_order(const Box& box,
                                     std::span<const Vec3> positions) {
  constexpr uint32_t kGrid = 1024;
  const Vec3& l = box.lengths();
  std::vector<uint64_t> keys(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    const Vec3 w = box.wrap(positions[i]);
    const auto clampg = [](double frac) {
      const auto g = static_cast<uint32_t>(frac * kGrid);
      return g >= kGrid ? kGrid - 1 : g;
    };
    keys[i] = morton_encode(clampg(w.x / l.x), clampg(w.y / l.y),
                            clampg(w.z / l.z));
  }
  std::vector<int> perm(positions.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });
  return perm;
}

// Like morton_order but along a 3D Hilbert curve (strictly face-adjacent
// traversal; better locality at the same cost).  Resolution: 256 cells/axis.
inline std::vector<int> hilbert_order(const Box& box,
                                      std::span<const Vec3> positions) {
  constexpr int kBits = 8;
  constexpr uint32_t kGrid = 1u << kBits;
  const Vec3& l = box.lengths();
  std::vector<uint64_t> keys(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    const Vec3 w = box.wrap(positions[i]);
    const auto clampg = [](double frac) {
      const auto g = static_cast<uint32_t>(frac * kGrid);
      return g >= kGrid ? kGrid - 1 : g;
    };
    keys[i] = hilbert_encode(clampg(w.x / l.x), clampg(w.y / l.y),
                             clampg(w.z / l.z), kBits);
  }
  std::vector<int> perm(positions.size());
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [&](int a, int b) {
    return keys[static_cast<size_t>(a)] < keys[static_cast<size_t>(b)];
  });
  return perm;
}

// Applies a permutation: out[i] = in[perm[i]].
template <typename T>
std::vector<T> apply_permutation(std::span<const T> in,
                                 std::span<const int> perm) {
  std::vector<T> out(in.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    out[i] = in[static_cast<size_t>(perm[i])];
  }
  return out;
}

}  // namespace anton
