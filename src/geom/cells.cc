#include "geom/cells.h"

#include <algorithm>

namespace anton {

CellGrid::CellGrid(const Box& box, double min_cell) : box_(box) {
  ANTON_CHECK_MSG(min_cell > 0, "cell size must be positive");
  const Vec3& l = box.lengths();
  nx_ = std::max(1, static_cast<int>(l.x / min_cell));
  ny_ = std::max(1, static_cast<int>(l.y / min_cell));
  nz_ = std::max(1, static_cast<int>(l.z / min_cell));
  starts_.assign(static_cast<size_t>(num_cells()) + 1, 0);
}

void CellGrid::bin(std::span<const Vec3> positions) {
  const size_t n = positions.size();
  std::vector<int> cell_of_atom(n);
  std::vector<int> counts(static_cast<size_t>(num_cells()), 0);
  for (size_t i = 0; i < n; ++i) {
    const int c = cell_of(positions[i]);
    cell_of_atom[i] = c;
    ++counts[static_cast<size_t>(c)];
  }
  starts_.assign(static_cast<size_t>(num_cells()) + 1, 0);
  for (int c = 0; c < num_cells(); ++c) {
    starts_[static_cast<size_t>(c) + 1] =
        starts_[static_cast<size_t>(c)] + counts[static_cast<size_t>(c)];
  }
  atoms_.assign(n, 0);
  std::vector<int> cursor(starts_.begin(), starts_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    atoms_[static_cast<size_t>(
        cursor[static_cast<size_t>(cell_of_atom[i])]++)] = static_cast<int>(i);
  }
}

std::vector<int> CellGrid::stencil(int cell) const {
  std::vector<int> out;
  out.reserve(27);
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int c = neighbor(cell, dx, dy, dz);
        if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
      }
    }
  }
  return out;
}

std::vector<int> CellGrid::half_stencil(int cell) const {
  // Standard half-shell: (dz > 0) || (dz == 0 && dy > 0) ||
  // (dz == 0 && dy == 0 && dx >= 0).
  std::vector<int> out;
  out.reserve(14);
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const bool keep =
            dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx >= 0);
        if (!keep) continue;
        const int c = neighbor(cell, dx, dy, dz);
        if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
      }
    }
  }
  return out;
}

}  // namespace anton
