#include "geom/cells.h"

#include <algorithm>

namespace anton {

CellGrid::CellGrid(const Box& box, double min_cell) { reset(box, min_cell); }

void CellGrid::reset(const Box& box, double min_cell) {
  ANTON_CHECK_MSG(min_cell > 0, "cell size must be positive");
  box_ = box;
  const Vec3& l = box.lengths();
  nx_ = std::max(1, static_cast<int>(l.x / min_cell));
  ny_ = std::max(1, static_cast<int>(l.y / min_cell));
  nz_ = std::max(1, static_cast<int>(l.z / min_cell));
  starts_.assign(static_cast<size_t>(num_cells()) + 1, 0);
}

void CellGrid::bin(std::span<const Vec3> positions) {
  const size_t n = positions.size();
  bin_cell_of_atom_.assign(n, 0);
  starts_.assign(static_cast<size_t>(num_cells()) + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const int c = cell_of(positions[i]);
    bin_cell_of_atom_[i] = c;
    ++starts_[static_cast<size_t>(c) + 1];
  }
  for (int c = 0; c < num_cells(); ++c) {
    starts_[static_cast<size_t>(c) + 1] += starts_[static_cast<size_t>(c)];
  }
  atoms_.assign(n, 0);
  bin_cursor_.assign(starts_.begin(), starts_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    atoms_[static_cast<size_t>(
        bin_cursor_[static_cast<size_t>(bin_cell_of_atom_[i])]++)] =
        static_cast<int>(i);
  }
}

std::vector<int> CellGrid::stencil(int cell) const {
  std::vector<int> out;
  out.reserve(27);
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int c = neighbor(cell, dx, dy, dz);
        if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
      }
    }
  }
  return out;
}

std::vector<int> CellGrid::half_stencil(int cell) const {
  // Standard half-shell: (dz > 0) || (dz == 0 && dy > 0) ||
  // (dz == 0 && dy == 0 && dx >= 0).
  std::vector<int> out;
  out.reserve(14);
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const bool keep =
            dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx >= 0);
        if (!keep) continue;
        const int c = neighbor(cell, dx, dy, dz);
        if (std::find(out.begin(), out.end(), c) == out.end()) out.push_back(c);
      }
    }
  }
  return out;
}

int CellGrid::half_stencil_shifts(int cell, int* cells, Vec3* shifts) const {
  int cx, cy, cz;
  coords(cell, &cx, &cy, &cz);
  const Vec3& l = box_.lengths();
  int count = 0;
  for (int dz = -1; dz <= 1; ++dz) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const bool keep =
            dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx >= 0);
        if (!keep) continue;
        int x = cx + dx, y = cy + dy, z = cz + dz;
        Vec3 s{};
        if (x < 0) { x += nx_; s.x = -l.x; } else if (x >= nx_) { x -= nx_; s.x = l.x; }
        if (y < 0) { y += ny_; s.y = -l.y; } else if (y >= ny_) { y -= ny_; s.y = l.y; }
        if (z < 0) { z += nz_; s.z = -l.z; } else if (z >= nz_) { z -= nz_; s.z = l.z; }
        cells[count] = index(x, y, z);
        shifts[count] = s;
        ++count;
      }
    }
  }
  return count;
}

}  // namespace anton
