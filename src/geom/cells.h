// Cell (link-cell) decomposition of a periodic box.
//
// Used by the functional MD engine to build Verlet lists in O(N), by the
// synthetic system builders for overlap rejection, and by the machine model
// to count pairwise interactions per spatial region.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/vec3.h"
#include "geom/box.h"

namespace anton {

class CellGrid {
 public:
  // Builds a grid with cell side >= min_cell along each axis.
  CellGrid(const Box& box, double min_cell);

  // Re-targets the grid to a new box/cell size without releasing any of the
  // binning storage, so a persistent grid can be rebuilt allocation-free.
  void reset(const Box& box, double min_cell);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int num_cells() const { return nx_ * ny_ * nz_; }
  Vec3 cell_lengths() const {
    const Vec3& l = box_.lengths();
    return {l.x / nx_, l.y / ny_, l.z / nz_};
  }
  const Box& box() const { return box_; }

  // Cell index for a (wrapped or unwrapped) position.
  int cell_of(const Vec3& p) const {
    const Vec3 w = box_.wrap(p);
    const Vec3& l = box_.lengths();
    int cx = static_cast<int>(w.x / l.x * nx_);
    int cy = static_cast<int>(w.y / l.y * ny_);
    int cz = static_cast<int>(w.z / l.z * nz_);
    if (cx >= nx_) cx = nx_ - 1;
    if (cy >= ny_) cy = ny_ - 1;
    if (cz >= nz_) cz = nz_ - 1;
    return index(cx, cy, cz);
  }

  int index(int cx, int cy, int cz) const {
    return (cz * ny_ + cy) * nx_ + cx;
  }
  void coords(int cell, int* cx, int* cy, int* cz) const {
    *cx = cell % nx_;
    *cy = (cell / nx_) % ny_;
    *cz = cell / (nx_ * ny_);
  }

  // Periodic neighbour cell (including self at d=0,0,0).
  int neighbor(int cell, int dx, int dy, int dz) const {
    int cx, cy, cz;
    coords(cell, &cx, &cy, &cz);
    cx = (cx + dx % nx_ + nx_) % nx_;
    cy = (cy + dy % ny_ + ny_) % ny_;
    cz = (cz + dz % nz_ + nz_) % nz_;
    return index(cx, cy, cz);
  }

  // Bins positions; afterwards cell_atoms(c) lists atom indices in cell c.
  void bin(std::span<const Vec3> positions);

  std::span<const int> cell_atoms(int cell) const {
    const auto begin = starts_[static_cast<size_t>(cell)];
    const auto end = starts_[static_cast<size_t>(cell) + 1];
    return {atoms_.data() + begin, atoms_.data() + end};
  }

  // CSR offset of `cell` into the binned atom array — the number of atoms in
  // all lower-indexed cells.  Valid after bin().
  int cell_start(int cell) const {
    return starts_[static_cast<size_t>(cell)];
  }

  // The 27-cell stencil (self + 26 neighbours) may alias itself on very
  // small grids; returns unique cells only.
  std::vector<int> stencil(int cell) const;

  // Half stencil for pair enumeration without double counting: self plus 13
  // neighbours.  Aliasing on small grids is removed.
  std::vector<int> half_stencil(int cell) const;

  // Non-allocating half stencil that also reports the periodic image shift
  // of each neighbour cell: for atom a in `cell` (wrapped position wa) and
  // atom b in neighbour entry k (wrapped position wb), the cell-image
  // displacement is wa - wb - shifts[k], which equals the minimum-image
  // displacement for any pair within the cell side length.  Writes up to 14
  // entries into cells/shifts and returns the count.  Precondition: at least
  // 3 cells along every axis (no stencil aliasing) — callers fall back to
  // O(N²) otherwise.
  int half_stencil_shifts(int cell, int* cells, Vec3* shifts) const;

 private:
  Box box_;
  int nx_, ny_, nz_;
  std::vector<int> atoms_;    // atom indices sorted by cell
  std::vector<int> starts_;   // CSR offsets, size num_cells()+1
  // bin() scratch, persistent so rebinning does not allocate.
  std::vector<int> bin_cell_of_atom_;
  std::vector<int> bin_cursor_;
};

}  // namespace anton
