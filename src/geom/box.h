// Orthorhombic periodic simulation box.
//
// Anton machines simulate periodic systems; all distance math in the library
// goes through Box so the minimum-image convention is applied in exactly one
// place.
#pragma once

#include <cmath>

#include "common/error.h"
#include "common/vec3.h"

namespace anton {

class Box {
 public:
  Box() : lengths_{1.0, 1.0, 1.0} {}
  explicit Box(const Vec3& lengths) : lengths_(lengths) {
    ANTON_CHECK_MSG(lengths.x > 0 && lengths.y > 0 && lengths.z > 0,
                    "box lengths must be positive, got " << lengths);
  }
  static Box cube(double l) { return Box({l, l, l}); }

  const Vec3& lengths() const { return lengths_; }
  double volume() const { return lengths_.x * lengths_.y * lengths_.z; }

  // Wraps a position into [0, L) per axis.
  Vec3 wrap(Vec3 p) const {
    p.x -= lengths_.x * std::floor(p.x / lengths_.x);
    p.y -= lengths_.y * std::floor(p.y / lengths_.y);
    p.z -= lengths_.z * std::floor(p.z / lengths_.z);
    // floor rounding can land exactly on L for tiny negative inputs.
    if (p.x >= lengths_.x) p.x -= lengths_.x;
    if (p.y >= lengths_.y) p.y -= lengths_.y;
    if (p.z >= lengths_.z) p.z -= lengths_.z;
    return p;
  }

  // Minimum-image displacement a - b.
  Vec3 min_image(const Vec3& a, const Vec3& b) const {
    Vec3 d = a - b;
    d.x -= lengths_.x * std::nearbyint(d.x / lengths_.x);
    d.y -= lengths_.y * std::nearbyint(d.y / lengths_.y);
    d.z -= lengths_.z * std::nearbyint(d.z / lengths_.z);
    return d;
  }

  double distance2(const Vec3& a, const Vec3& b) const {
    return norm2(min_image(a, b));
  }
  double distance(const Vec3& a, const Vec3& b) const {
    return std::sqrt(distance2(a, b));
  }

  // Largest cutoff for which the minimum-image convention is valid.
  double max_cutoff() const {
    return 0.5 * std::min(lengths_.x, std::min(lengths_.y, lengths_.z));
  }

 private:
  Vec3 lengths_;
};

}  // namespace anton
