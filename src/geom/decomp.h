// Spatial domain decomposition onto a 3D grid of nodes.
//
// Each node of the simulated machine owns a rectangular "home box".  For a
// given interaction cutoff, a node must import atom positions from every
// neighbouring home box whose nearest face/edge/corner lies within the
// cutoff — the "import region".  This module computes home-box membership
// and the set of neighbour offsets, which in turn drives the NoC traffic the
// machine model simulates.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.h"
#include "geom/box.h"

namespace anton {

struct NodeOffset {
  int dx = 0, dy = 0, dz = 0;
  friend bool operator==(const NodeOffset&, const NodeOffset&) = default;
};

enum class ImportShell {
  kFull,  // all neighbours within cutoff (positions imported both ways)
  kHalf,  // half-shell: each pair of boxes appears exactly once
};

class DomainDecomp {
 public:
  DomainDecomp(const Box& box, int nx, int ny, int nz);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  int num_nodes() const { return nx_ * ny_ * nz_; }
  const Box& box() const { return box_; }

  // Home-box edge lengths.
  Vec3 home_box_lengths() const {
    const Vec3& l = box_.lengths();
    return {l.x / nx_, l.y / ny_, l.z / nz_};
  }

  int rank(int cx, int cy, int cz) const { return (cz * ny_ + cy) * nx_ + cx; }
  void coords(int rank, int* cx, int* cy, int* cz) const {
    *cx = rank % nx_;
    *cy = (rank / nx_) % ny_;
    *cz = rank / (nx_ * ny_);
  }

  // Which node owns position p (after wrapping).
  int node_of(const Vec3& p) const;

  // Periodic neighbour rank.
  int neighbor_rank(int rank, const NodeOffset& off) const;

  // Neighbour offsets whose home box comes within `cutoff` of the local one.
  // Excludes (0,0,0).  For kHalf, exactly one of (off, -off) is returned.
  std::vector<NodeOffset> import_offsets(double cutoff,
                                         ImportShell shell) const;

  // Minimum distance between the local home box and the home box at `off`
  // (0 for face-adjacent boxes).
  double box_distance(const NodeOffset& off) const;

  // Bins atoms to nodes: out[i] = owning rank of positions[i].
  std::vector<int> assign(std::span<const Vec3> positions) const;

  // Per-node atom counts for a position set.
  std::vector<int> counts(std::span<const Vec3> positions) const;

 private:
  Box box_;
  int nx_, ny_, nz_;
};

}  // namespace anton
