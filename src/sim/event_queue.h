// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// insertion order.  Time is simulated nanoseconds (double) so components in
// different clock domains (PPIM arrays, geometry cores, router pipelines)
// compose without a global clock.
//
// Storage is allocation-free in steady state.  Callables live inline in a
// pooled arena of InlineFn slots recycled through a free list; the heap
// orders trivially-copyable 24-byte {time, seq, slot} entries on a 4-ary
// min-heap (half the depth of a binary heap, and sifts move POD entries,
// never closures).  step() *moves* the callable out of its slot — the
// closure copy of the old priority_queue::top() is structurally impossible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.h"
#include "obs/flightrecorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/inline_fn.h"

namespace anton::sim {

using SimTime = double;  // nanoseconds

// Optional telemetry sinks for an EventQueue.  All pointers may be null
// individually; the queue holds no sinks by default and pays only a null
// check per event when untelemetered.
struct QueueTelemetry {
  obs::Counter* executed = nullptr;    // events executed
  obs::Histo* depth = nullptr;         // heap size sampled at each step()
  obs::Histo* horizon_ns = nullptr;    // schedule distance t - now per event
  obs::TraceWriter* trace = nullptr;   // "queue.pending" counter track
  int trace_pid = obs::kPidQueue;
  uint32_t trace_stride = 16;          // sample every Nth step to bound size
};

class EventQueue {
 public:
  using Callback = InlineFn<kEventInlineBytes>;

  // Schedules fn at absolute time t (>= now).  The callable is stored
  // inline in a pooled arena slot; captures larger than kEventInlineBytes
  // fail to compile.
  template <class F>
  void schedule_at(SimTime t, F&& fn) {
    ANTON_HOT_NOALLOC();
    const uint32_t slot = alloc_slot(t);
    arena_[slot].emplace(std::forward<F>(fn));
    push_entry(t, slot);
  }

  // Moves an already-erased callable into a pooled slot.  This is the
  // mailbox-drain insertion path of the parallel engine: parcels carry their
  // payload as a Callback, and wrapping that in schedule_at would nest an
  // InlineFn inside an InlineFn (which cannot fit its own buffer).
  void schedule_move(SimTime t, Callback&& fn) {
    ANTON_HOT_NOALLOC();
    const uint32_t slot = alloc_slot(t);
    arena_[slot] = std::move(fn);
    push_entry(t, slot);
  }

  template <class F>
  void schedule_after(SimTime delay, F&& fn) {
    ANTON_HOT_NOALLOC();
    ANTON_CHECK(delay >= 0);
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  uint64_t executed() const { return executed_; }

  // Timestamp of the earliest pending event; +infinity when empty.  The
  // parallel engine uses this to size conservative windows.
  SimTime next_time() const {
    return heap_.empty() ? std::numeric_limits<SimTime>::infinity()
                         : heap_.front().time;
  }

  // Runs events until the queue drains; returns the final time.
  SimTime run() {
    ANTON_HOT_NOALLOC();
    while (!heap_.empty()) step();
    return now_;
  }

  // Executes every event with time strictly below `horizon` (events at
  // exactly `horizon` belong to the next window); returns how many ran.
  uint64_t run_until(SimTime horizon) {
    ANTON_HOT_NOALLOC();
    uint64_t n = 0;
    while (!heap_.empty() && heap_.front().time < horizon) {
      step();
      ++n;
    }
    return n;
  }

  // Pre-sizes the arena, heap and free list for `events` concurrent pending
  // events, so warmup growth never happens on the hot path.
  void reserve(size_t events) {
    arena_.reserve(events);
    heap_.reserve(events);
    free_.reserve(events);
  }

  // Executes the single earliest event.
  void step() {
    ANTON_HOT_NOALLOC();
    ANTON_CHECK(!heap_.empty());
    const Entry top = heap_.front();
    pop_root();
    // Time monotonicity: schedule_at admits t >= now - 1e-9, so the popped
    // event may trail the clock by at most that slack; anything worse means
    // the heap ordering or the clock has been corrupted.
    ANTON_CHECK_INVARIANT(top.time >= now_ - 1e-9,
                          "event queue time ran backwards: event t="
                              << top.time << " now=" << now_);
    now_ = std::max(now_, top.time);
    ++executed_;
    // Flight record on the simulated clock: no wall-time read in this loop.
    obs::flight::record_sim(obs::flight::Kind::kDesEvent, "des.event",
                            top.time, top.seq);
    observe_step();
    // Move the callable out of its slot before invoking: the callback may
    // schedule new events, which can both reuse the freed slot and grow the
    // arena (invalidating references into it).
    Callback cb = std::move(arena_[top.slot]);
    free_.push_back(top.slot);  // anton-lint: allow(hot-alloc) amortized
    cb();
  }

  // Installs (or clears, with {}) telemetry sinks.  Sinks must outlive the
  // queue or be cleared before they are destroyed.
  void set_telemetry(const QueueTelemetry& t) { telemetry_ = t; }
  const QueueTelemetry& telemetry() const { return telemetry_; }

  // Resets the clock for a fresh simulation run.  Arena and heap capacity
  // are retained, so a warmed queue re-runs without allocating.
  void reset() {
    ANTON_CHECK_MSG(heap_.empty(), "reset with pending events");
    check_arena();
    now_ = 0;
    seq_ = 0;
    executed_ = 0;
  }

  // Pool accounting: every arena slot is either on the free list or
  // referenced by exactly one pending heap entry.  A mismatch means a slot
  // leaked (scheduled but never freed) or was double-freed.
  size_t arena_slots() const { return arena_.size(); }
  size_t arena_free() const { return free_.size(); }
  void check_arena() const {
    ANTON_CHECK_MSG(arena_.size() == free_.size() + heap_.size(),
                    "event arena leak: " << arena_.size() << " slots, "
                                         << free_.size() << " free, "
                                         << heap_.size() << " pending");
  }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  static bool before(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;  // FIFO among equal timestamps
  }

  // Shared halves of schedule_at / schedule_move: slot allocation from the
  // free list (or amortized arena growth) and the heap insertion.
  uint32_t alloc_slot(SimTime t) {
    ANTON_HOT_NOALLOC();
    ANTON_CHECK_MSG(t >= now_ - 1e-9, "event scheduled in the past: t="
                                          << t << " now=" << now_);
    if (telemetry_.horizon_ns != nullptr)
      telemetry_.horizon_ns->add(std::max(0.0, t - now_));
    if (!free_.empty()) {
      const uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    const uint32_t slot = static_cast<uint32_t>(arena_.size());
    arena_.emplace_back();  // anton-lint: allow(hot-alloc) amortized warmup
    return slot;
  }

  void push_entry(SimTime t, uint32_t slot) {
    ANTON_HOT_NOALLOC();
    heap_.push_back(  // anton-lint: allow(hot-alloc) amortized warmup
        Entry{t, seq_++, slot});
    sift_up(heap_.size() - 1);
  }

  void sift_up(size_t i) {
    ANTON_HOT_NOALLOC();
    const Entry e = heap_[i];
    while (i > 0) {
      const size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  // Removes the root: the last entry sifts down into the hole.
  void pop_root() {
    ANTON_HOT_NOALLOC();
    const Entry last = heap_.back();
    heap_.pop_back();
    const size_t n = heap_.size();
    if (n == 0) return;
    size_t i = 0;
    for (;;) {
      const size_t first = 4 * i + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t limit = std::min(first + 4, n);
      for (size_t c = first + 1; c < limit; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  void observe_step() {
    if (telemetry_.executed != nullptr) telemetry_.executed->add();
    if (telemetry_.depth != nullptr)
      telemetry_.depth->add(double(heap_.size()));
    if (telemetry_.trace != nullptr &&
        executed_ % std::max<uint32_t>(1, telemetry_.trace_stride) == 0) {
      telemetry_.trace->counter("queue.pending", now_ * 1e-3,
                                telemetry_.trace_pid, "events",
                                double(heap_.size()));
    }
  }

  std::vector<Entry> heap_;       // 4-ary min-heap over (time, seq)
  std::vector<Callback> arena_;   // pooled callables, indexed by Entry::slot
  std::vector<uint32_t> free_;    // recycled arena slots (LIFO)
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t executed_ = 0;
  QueueTelemetry telemetry_;
};

}  // namespace anton::sim
