// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// insertion order.  Time is simulated nanoseconds (double) so components in
// different clock domains (PPIM arrays, geometry cores, router pipelines)
// compose without a global clock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.h"

namespace anton::sim {

using SimTime = double;  // nanoseconds

class EventQueue {
 public:
  // Schedules fn at absolute time t (>= now).
  void schedule_at(SimTime t, std::function<void()> fn) {
    ANTON_CHECK_MSG(t >= now_ - 1e-9, "event scheduled in the past: t="
                                          << t << " now=" << now_);
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  void schedule_after(SimTime delay, std::function<void()> fn) {
    ANTON_CHECK(delay >= 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  uint64_t executed() const { return executed_; }

  // Runs events until the queue drains; returns the final time.
  SimTime run() {
    while (!heap_.empty()) step();
    return now_;
  }

  // Executes the single earliest event.
  void step() {
    ANTON_CHECK(!heap_.empty());
    // Top must be copied out before pop so the callback may schedule more.
    Event ev = heap_.top();
    heap_.pop();
    // Time monotonicity: schedule_at admits t >= now - 1e-9, so the popped
    // event may trail the clock by at most that slack; anything worse means
    // the heap ordering or the clock has been corrupted.
    ANTON_CHECK_INVARIANT(ev.time >= now_ - 1e-9,
                          "event queue time ran backwards: event t="
                              << ev.time << " now=" << now_);
    now_ = std::max(now_, ev.time);
    ++executed_;
    ev.fn();
  }

  // Resets the clock for a fresh simulation run.
  void reset() {
    ANTON_CHECK_MSG(heap_.empty(), "reset with pending events");
    now_ = 0;
    seq_ = 0;
    executed_ = 0;
  }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace anton::sim
