// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// insertion order.  Time is simulated nanoseconds (double) so components in
// different clock domains (PPIM arrays, geometry cores, router pipelines)
// compose without a global clock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace anton::sim {

using SimTime = double;  // nanoseconds

// Optional telemetry sinks for an EventQueue.  All pointers may be null
// individually; the queue holds no sinks by default and pays only a null
// check per event when untelemetered.
struct QueueTelemetry {
  obs::Counter* executed = nullptr;    // events executed
  obs::Histo* depth = nullptr;         // heap size sampled at each step()
  obs::Histo* horizon_ns = nullptr;    // schedule distance t - now per event
  obs::TraceWriter* trace = nullptr;   // "queue.pending" counter track
  int trace_pid = obs::kPidQueue;
  uint32_t trace_stride = 16;          // sample every Nth step to bound size
};

class EventQueue {
 public:
  // Schedules fn at absolute time t (>= now).
  void schedule_at(SimTime t, std::function<void()> fn) {
    ANTON_CHECK_MSG(t >= now_ - 1e-9, "event scheduled in the past: t="
                                          << t << " now=" << now_);
    if (telemetry_.horizon_ns != nullptr)
      telemetry_.horizon_ns->add(std::max(0.0, t - now_));
    heap_.push(Event{t, seq_++, std::move(fn)});
  }

  void schedule_after(SimTime delay, std::function<void()> fn) {
    ANTON_CHECK(delay >= 0);
    schedule_at(now_ + delay, std::move(fn));
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  uint64_t executed() const { return executed_; }

  // Runs events until the queue drains; returns the final time.
  SimTime run() {
    while (!heap_.empty()) step();
    return now_;
  }

  // Executes the single earliest event.
  void step() {
    ANTON_CHECK(!heap_.empty());
    // Top must be copied out before pop so the callback may schedule more.
    Event ev = heap_.top();
    heap_.pop();
    // Time monotonicity: schedule_at admits t >= now - 1e-9, so the popped
    // event may trail the clock by at most that slack; anything worse means
    // the heap ordering or the clock has been corrupted.
    ANTON_CHECK_INVARIANT(ev.time >= now_ - 1e-9,
                          "event queue time ran backwards: event t="
                              << ev.time << " now=" << now_);
    now_ = std::max(now_, ev.time);
    ++executed_;
    observe_step();
    ev.fn();
  }

  // Installs (or clears, with {}) telemetry sinks.  Sinks must outlive the
  // queue or be cleared before they are destroyed.
  void set_telemetry(const QueueTelemetry& t) { telemetry_ = t; }
  const QueueTelemetry& telemetry() const { return telemetry_; }

  // Resets the clock for a fresh simulation run.
  void reset() {
    ANTON_CHECK_MSG(heap_.empty(), "reset with pending events");
    now_ = 0;
    seq_ = 0;
    executed_ = 0;
  }

 private:
  void observe_step() {
    if (telemetry_.executed != nullptr) telemetry_.executed->add();
    if (telemetry_.depth != nullptr)
      telemetry_.depth->add(double(heap_.size()));
    if (telemetry_.trace != nullptr &&
        executed_ % std::max<uint32_t>(1, telemetry_.trace_stride) == 0) {
      telemetry_.trace->counter("queue.pending", now_ * 1e-3,
                                telemetry_.trace_pid, "events",
                                double(heap_.size()));
    }
  }

  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_ = 0;
  uint64_t seq_ = 0;
  uint64_t executed_ = 0;
  QueueTelemetry telemetry_;
};

}  // namespace anton::sim
