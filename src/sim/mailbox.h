// Cross-shard mailboxes for the parallel discrete-event engine.
//
// A ShardRing<T> is a pre-sized single-producer/single-consumer ring.  The
// producer is the one worker thread executing the source shard's window; the
// consumer is the coordinating thread draining at the window barrier.  The
// two phases never overlap — the thread pool's fork/join rendezvous
// publishes all producer writes before the barrier code runs, and the next
// window's dispatch publishes the consumer's index updates back — so the
// indices are deliberately *plain* integers: any unsynchronized access is a
// real bug TSan should report, not one atomics would paper over.
//
// Capacity is fixed at init() time (sized from the topology or workload);
// overflow is a hard check, never a reallocation, so the steady-state send
// path touches no allocator.
//
// Parcel is the payload the engine's post() path carries: an event time, a
// 64-bit canonical ordering key, and the pooled inline callable.  The key
// must embed the *logical* producer identity (node id, chain id — anything
// independent of the shard count), because the barrier sorts parcels by
// (time, key, seq) before insertion and that order is what makes execution
// reproducible at every shard count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.h"
#include "sim/event_queue.h"  // SimTime + InlineFn

namespace anton::sim {

template <class T>
class ShardRing {
 public:
  ShardRing() = default;

  // Sizes the ring for `capacity` undrained entries.  Allowed only while the
  // ring is empty (construction or between runs).
  void init(size_t capacity) {
    ANTON_CHECK_MSG(head_ == tail_, "resizing a non-empty mailbox ring");
    if (capacity > buf_.size()) buf_.resize(capacity);
    head_ = tail_ = 0;
  }

  size_t capacity() const { return buf_.size(); }
  size_t size() const { return static_cast<size_t>(head_ - tail_); }
  bool empty() const { return head_ == tail_; }

  // Producer side (source shard's worker, during a window).
  void push(T&& v) {
    ANTON_HOT_NOALLOC();
    ANTON_CHECK_MSG(size() < buf_.size(),
                    "mailbox ring overflow at " << buf_.size()
                        << " entries; pre-size the ring for this workload");
    buf_[static_cast<size_t>(head_ % buf_.size())] = std::move(v);
    ++head_;
    ++enqueued_;
  }

  // Consumer side (coordinator, at the window barrier).
  T& front() {
    ANTON_CHECK(!empty());
    return buf_[static_cast<size_t>(tail_ % buf_.size())];
  }
  void pop() {
    ANTON_HOT_NOALLOC();
    ANTON_CHECK(!empty());
    ++tail_;
    ++drained_;
  }

  // Lifetime traffic counters for the per-barrier balance invariant
  // (enqueued == drained whenever the ring is empty).
  uint64_t enqueued() const { return enqueued_; }
  uint64_t drained() const { return drained_; }

  void reset_counters() {
    ANTON_CHECK_MSG(empty(), "reset with undrained mailbox entries");
    enqueued_ = 0;
    drained_ = 0;
    head_ = tail_ = 0;
  }

 private:
  std::vector<T> buf_;
  // Plain (non-atomic) by design: producer and consumer phases are separated
  // by the window-barrier rendezvous (see file comment).
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
  uint64_t enqueued_ = 0;
  uint64_t drained_ = 0;
};

// A cross-shard event in flight: fires `fn` at `time` on the destination
// shard.  `key` is the canonical shard-count-independent ordering key; `seq`
// is the producer-local enqueue sequence (assigned by the engine) breaking
// (time, key) ties from one producer in FIFO order.
struct Parcel {
  SimTime time = 0;
  uint64_t key = 0;
  uint64_t seq = 0;
  InlineFn<kEventInlineBytes> fn;
};

}  // namespace anton::sim
