// Deterministic parallel discrete-event engine: sharded conservative-window
// execution.
//
// The node grid of the simulated machine is partitioned into P spatial
// shards, each owning a private EventQueue (the existing pooled-arena 4-ary
// heap, unchanged).  Execution proceeds in conservative time windows
//
//   [w_start, w_start + lookahead)
//
// where w_start is the globally earliest pending event after the barrier and
// `lookahead` is a lower bound on every cross-shard event delay (the torus
// hop model's minimum send latency).  Within a window the shards run in
// parallel on the ThreadPool and may interact only through pre-sized SPSC
// mailboxes (sim/mailbox.h), drained by the coordinating thread at the next
// window barrier — a parcel posted at time t inside window k carries
// t >= w_start + lookahead = w_end, so no shard can ever need an event
// another shard is still producing.  That is the whole correctness argument,
// and post() checks it on every send.
//
// Determinism at every shard count (the SweepRunner bar, now inside a single
// estimate) follows from three facts, each independent of P:
//   1. The window sequence is P-independent: w_start is the global minimum
//      next-event time, the same value a serial engine would see.
//   2. A parcel's insertion barrier is P-independent: it is determined by
//      the window its producing event executed in.
//   3. At each barrier, parcels are sorted by (time, key, seq) — key embeds
//      the logical producer (node/chain id), seq the producer-local FIFO
//      order — before insertion, so equal-timestamp ties resolve identically
//      at every P.
// By induction, the per-node event order (the only order simulation results
// can depend on) is identical at every shard count, so simulated clocks and
// conservation counters are bitwise reproducible from 1 shard to P shards.
//
// The barrier hook lets a higher layer (core::Executor) run serialized
// cross-shard planning — torus link reservation in canonical order — between
// windows; it is a plain function pointer because std::function is banned in
// src/sim (des-std-function lint rule).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/threadpool.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/mailbox.h"

namespace anton::sim {

struct ParallelEngineStats {
  uint64_t windows = 0;    // conservative windows executed
  uint64_t events = 0;     // events executed across all shards
  uint64_t parcels = 0;    // mailbox parcels drained at barriers
  double barrier_s = 0;    // wall time in barriers (hook + drain + window calc)
  double window_s = 0;     // wall time executing windows
  uint64_t max_window_events = 0;  // largest single-window event count
};

class ParallelEngine {
 public:
  // `lookahead_ns` must lower-bound every cross-shard delay posted through
  // the mailboxes.  `pool` may be null — windows then execute serially over
  // the shards with bitwise-identical results (threading buys wall time,
  // never different answers).
  ParallelEngine(int shards, double lookahead_ns, ThreadPool* pool = nullptr);

  int shards() const { return static_cast<int>(queues_.size()); }
  double lookahead_ns() const { return lookahead_; }

  EventQueue& queue(int shard) {
    return queues_[static_cast<size_t>(shard)];
  }
  const EventQueue& queue(int shard) const {
    return queues_[static_cast<size_t>(shard)];
  }

  // Spatial shard of `node` in a `num_nodes` grid: contiguous blocks.  Pure
  // in (node, num_nodes, shards) — the mapping is what callers key their
  // canonical ordering on, so it must not depend on any engine state.
  static int shard_of(int node, int num_nodes, int shards) {
    return static_cast<int>(static_cast<int64_t>(node) * shards / num_nodes);
  }

  // Pre-sizes every shard queue for `events_per_shard` pending events and
  // every mailbox ring for `ring_capacity` undrained parcels, so a steady
  // state run never grows storage on the hot path.
  void reserve(size_t events_per_shard, size_t ring_capacity);

  // Cross-shard send: fires `fn` at absolute time `t` on `dst_shard`.  Must
  // be called from the worker currently executing `src_shard`'s window (or
  // from the coordinator between runs).  `key` is the canonical ordering key
  // and must embed the logical producer identity (node id, chain id —
  // anything independent of the shard count); see sim/mailbox.h.
  template <class F>
  void post(int src_shard, int dst_shard, SimTime t, uint64_t key, F&& fn) {
    ANTON_HOT_NOALLOC();
    // The conservative-window contract: a parcel produced inside the current
    // window may not be due before the window's end, or the receiving shard
    // could already have simulated past it.
    ANTON_CHECK_MSG(!running_ || t >= window_end_ - 1e-9,
                    "cross-shard post inside the lookahead horizon: t="
                        << t << " window_end=" << window_end_
                        << " (raise the delay or shrink lookahead_ns)");
    Parcel p;
    p.time = t;
    p.key = key;
    p.seq = post_seq_[static_cast<size_t>(src_shard)].v++;
    p.fn.emplace(std::forward<F>(fn));
    ring(src_shard, dst_shard).push(std::move(p));
  }

  // Installs a callback invoked at every window barrier (and once before the
  // first window), on the coordinating thread, before mailboxes drain.  The
  // executor uses this to plan cross-shard NoC sends in canonical order
  // against the shared link state.
  void set_barrier_hook(void (*fn)(void*), void* ctx) {
    hook_fn_ = fn;
    hook_ctx_ = ctx;
  }

  // Runs windows until every shard queue and every mailbox is empty and the
  // barrier hook produces no further work.  Returns the final simulated time
  // (max over shard clocks — the same value a serial engine's drained clock
  // would hold).
  SimTime run();

  // Resets every shard clock and all engine statistics for a fresh run.
  // Queues must be empty (quiescent) — capacities are retained.
  void reset();

  const ParallelEngineStats& stats() const { return stats_; }

  // Lifetime mailbox traffic (sum over rings).  enqueued == drained whenever
  // the engine is quiescent; the per-ring form of this invariant is asserted
  // at every window barrier.
  uint64_t mailbox_enqueued() const;
  uint64_t mailbox_drained() const;
  void check_mailbox_balance() const;

  // Arena accounting across every shard queue (the sharded half of the
  // torus conservation invariant).
  void check_arenas() const;

  // Exports des.pdes.* metrics for the stats accumulated since reset():
  //   <prefix>.windows / .events / .parcels  counters
  //   <prefix>.window_events                 stat (events per window)
  //   <prefix>.barrier_ms / .window_ms       stats (wall time split)
  //   <prefix>.shards                        gauge
  void export_metrics(obs::MetricsRegistry* reg,
                      const std::string& prefix) const;

 private:
  struct alignas(64) PadCount {
    uint64_t v = 0;
  };

  ShardRing<Parcel>& ring(int src, int dst) {
    return rings_[static_cast<size_t>(src) * queues_.size() +
                  static_cast<size_t>(dst)];
  }
  const ShardRing<Parcel>& ring(int src, int dst) const {
    return rings_[static_cast<size_t>(src) * queues_.size() +
                  static_cast<size_t>(dst)];
  }

  void drain_mailboxes();
  uint64_t execute_window();

  std::vector<EventQueue> queues_;
  std::vector<ShardRing<Parcel>> rings_;  // [src * P + dst]
  std::vector<PadCount> post_seq_;     // per source shard (single writer)
  std::vector<PadCount> win_events_;   // per shard, per window (single writer)
  std::vector<Parcel> gather_;         // barrier drain scratch (retained)
  ThreadPool* pool_;
  double lookahead_;
  void (*hook_fn_)(void*) = nullptr;
  void* hook_ctx_ = nullptr;
  bool running_ = false;
  SimTime window_end_ = 0;
  ParallelEngineStats stats_;
};

}  // namespace anton::sim
