// Small-buffer-optimized, move-only, type-erased callable.
//
// The DES hot path schedules millions of closures per simulated step;
// std::function heap-allocates any capture larger than its ~16-byte SSO and
// must stay copyable, which forces a closure copy out of
// priority_queue::top().  InlineFn stores the callable inline in a
// fixed-size buffer (no heap, ever — oversized captures fail to compile),
// relocates by move, and needs no copy constructor, so the event queue can
// pool events in a flat arena and move them out on pop.
//
// The type erasure is a manual three-entry vtable (invoke / relocate /
// destroy) selected per callable type at compile time; an engaged InlineFn
// costs one indirect call to invoke, exactly like std::function, without
// the allocation or the copyability tax.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace anton::sim {

// Capacity of a pooled event callable.  Sized for the executor's largest
// capture (task-release closures: this + a span/pointer + two ids) with
// headroom for user events; a capture that exceeds it is a compile error —
// shrink the capture (capture pointers, not containers) rather than raising
// this casually, every pending event pays for the full buffer.
inline constexpr std::size_t kEventInlineBytes = 64;

template <std::size_t Capacity = kEventInlineBytes>
class InlineFn {
 public:
  InlineFn() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  // Replaces the stored callable.  The callable must fit the inline buffer
  // and be nothrow-movable (relocation happens during arena growth).
  template <class F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable capture exceeds the inline event buffer; "
                  "capture pointers/indices instead of values");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callable cannot live in the event buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callables must be nothrow-movable");
    reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    vt_ = vtable_for<Fn>();
  }

  // Invokes the stored callable; undefined when empty (callers — the event
  // queue — only invoke slots they know are engaged).
  void operator()() { vt_->invoke(buf_); }

  explicit operator bool() const { return vt_ != nullptr; }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <class Fn>
  static const VTable* vtable_for() {
    static constexpr VTable vt{
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* dst, void* src) {
          Fn* s = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); }};
    return &vt;
  }

  void move_from(InlineFn& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace anton::sim
