#include "sim/parallel_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/flightrecorder.h"
#include "obs/profiler.h"

namespace anton::sim {

ParallelEngine::ParallelEngine(int shards, double lookahead_ns,
                               ThreadPool* pool)
    : queues_(static_cast<size_t>(shards)),
      rings_(static_cast<size_t>(shards) * static_cast<size_t>(shards)),
      post_seq_(static_cast<size_t>(shards)),
      win_events_(static_cast<size_t>(shards)),
      pool_(pool),
      lookahead_(lookahead_ns) {
  ANTON_CHECK_MSG(shards >= 1, "engine needs at least one shard");
  ANTON_CHECK_MSG(lookahead_ns > 0,
                  "conservative windows need a positive lookahead");
}

void ParallelEngine::reserve(size_t events_per_shard, size_t ring_capacity) {
  for (auto& q : queues_) q.reserve(events_per_shard);
  for (auto& r : rings_) r.init(ring_capacity);
  gather_.reserve(ring_capacity * queues_.size());
}

// Collects each destination shard's incoming parcels, sorts them into the
// canonical (time, key, producer-seq) order, and moves the payloads into the
// destination queue.  Insertion order is what breaks equal-timestamp ties in
// EventQueue, so this sort is the determinism boundary: it depends only on
// shard-count-independent values.
void ParallelEngine::drain_mailboxes() {
  const int p = shards();
  for (int dst = 0; dst < p; ++dst) {
    gather_.clear();
    for (int src = 0; src < p; ++src) {
      ShardRing<Parcel>& r = ring(src, dst);
      while (!r.empty()) {
        gather_.push_back(  // anton-lint: allow(hot-alloc) amortized scratch
            std::move(r.front()));
        r.pop();
      }
      // Per-shard mailbox balance at every window barrier: everything ever
      // enqueued into this ring has now been drained.
      ANTON_CHECK_MSG(r.enqueued() == r.drained(),
                      "mailbox imbalance on ring (" << src << "->" << dst
                          << "): enqueued " << r.enqueued() << " drained "
                          << r.drained());
    }
    if (gather_.empty()) continue;
    std::sort(gather_.begin(), gather_.end(),
              [](const Parcel& a, const Parcel& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.key != b.key) return a.key < b.key;
                return a.seq < b.seq;
              });
    stats_.parcels += gather_.size();
    EventQueue& q = queues_[static_cast<size_t>(dst)];
    for (Parcel& parcel : gather_) {
      q.schedule_move(parcel.time, std::move(parcel.fn));
    }
  }
}

uint64_t ParallelEngine::execute_window() {
  const SimTime horizon = window_end_;
  const int p = shards();
  if (pool_ == nullptr || pool_->size() <= 1 || p == 1) {
    for (int s = 0; s < p; ++s) {
      win_events_[static_cast<size_t>(s)].v =
          queues_[static_cast<size_t>(s)].run_until(horizon);
    }
  } else {
    const unsigned stride = pool_->size();
    pool_->for_each_thread([this, horizon, stride, p](unsigned t) {
      for (int s = static_cast<int>(t); s < p; s += static_cast<int>(stride)) {
        win_events_[static_cast<size_t>(s)].v =
            queues_[static_cast<size_t>(s)].run_until(horizon);
      }
    });
  }
  uint64_t n = 0;
  for (int s = 0; s < p; ++s) n += win_events_[static_cast<size_t>(s)].v;
  return n;
}

SimTime ParallelEngine::run() {
  ANTON_HOT_NOALLOC();
  running_ = true;
  for (;;) {
    const double b0 = obs::wall_seconds();
    // Barrier: serialized cross-shard planning first (it may insert events
    // and parcels), then the mailbox drain — both can schedule events
    // earlier than anything currently pending, so the window start is
    // computed only after both have run.
    if (hook_fn_ != nullptr) hook_fn_(hook_ctx_);
    drain_mailboxes();
    SimTime t_min = std::numeric_limits<SimTime>::infinity();
    for (const auto& q : queues_) t_min = std::min(t_min, q.next_time());
    stats_.barrier_s += obs::wall_seconds() - b0;
    if (!std::isfinite(t_min)) break;  // quiescent: no work anywhere
    window_end_ = t_min + lookahead_;
    const double w0 = obs::wall_seconds();
    const uint64_t n = execute_window();
    stats_.window_s += obs::wall_seconds() - w0;
    stats_.events += n;
    stats_.max_window_events = std::max(stats_.max_window_events, n);
    ++stats_.windows;
    obs::flight::record_sim(obs::flight::Kind::kPdesWindow, "pdes.window",
                            window_end_, n);
  }
  running_ = false;
  window_end_ = 0;
  SimTime end = 0;
  for (const auto& q : queues_) end = std::max(end, q.now());
  return end;
}

void ParallelEngine::reset() {
  for (auto& q : queues_) q.reset();
  for (auto& r : rings_) r.reset_counters();
  for (auto& s : post_seq_) s.v = 0;
  stats_ = ParallelEngineStats{};
  window_end_ = 0;
}

uint64_t ParallelEngine::mailbox_enqueued() const {
  uint64_t n = 0;
  for (const auto& r : rings_) n += r.enqueued();
  return n;
}

uint64_t ParallelEngine::mailbox_drained() const {
  uint64_t n = 0;
  for (const auto& r : rings_) n += r.drained();
  return n;
}

void ParallelEngine::check_mailbox_balance() const {
  for (const auto& r : rings_) {
    ANTON_CHECK_MSG(r.empty() && r.enqueued() == r.drained(),
                    "mailbox imbalance: " << r.size() << " undrained, "
                        << r.enqueued() << " enqueued, " << r.drained()
                        << " drained");
  }
}

void ParallelEngine::check_arenas() const {
  for (const auto& q : queues_) q.check_arena();
}

void ParallelEngine::export_metrics(obs::MetricsRegistry* reg,
                                    const std::string& prefix) const {
  ANTON_CHECK(reg != nullptr);
  reg->counter(prefix + ".windows")->add(stats_.windows);
  reg->counter(prefix + ".events")->add(stats_.events);
  reg->counter(prefix + ".parcels")->add(stats_.parcels);
  if (stats_.windows > 0) {
    reg->stat(prefix + ".window_events")
        ->add(static_cast<double>(stats_.events) /
              static_cast<double>(stats_.windows));
  }
  reg->stat(prefix + ".barrier_ms")->add(stats_.barrier_s * 1e3);
  reg->stat(prefix + ".window_ms")->add(stats_.window_s * 1e3);
  reg->gauge(prefix + ".shards")->set(static_cast<double>(shards()));
}

}  // namespace anton::sim
