// From-scratch FFT substrate.
//
// Anton 2 computes small distributed 3D FFTs on-machine as part of the
// mesh-based long-range electrostatics.  The host library needs the same
// transform for (a) the functional Gaussian-split-Ewald solver and (b) the
// machine model's FFT phase, whose communication pattern (axis all-to-alls)
// is derived from these dimensions.  Power-of-two, complex double,
// iterative radix-2 with precomputed twiddles.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"

namespace anton {

using Complex = std::complex<double>;

bool is_power_of_two(int n);
// Smallest power of two >= n.
int next_power_of_two(int n);

// One-dimensional in-place FFT plan for a fixed power-of-two size.
class FftPlan {
 public:
  explicit FftPlan(int n);

  int size() const { return n_; }

  // In-place DIT transform; `inverse` applies the conjugate transform and
  // scales by 1/n.
  void transform(std::span<Complex> data, bool inverse) const;

 private:
  int n_;
  int log2n_;
  std::vector<Complex> twiddles_;   // forward twiddles, n/2 entries
  std::vector<uint32_t> bitrev_;
};

// 3D FFT over a dense array indexed [z][y][x] (x fastest).  Each dimension
// must be a power of two.
class Fft3D {
 public:
  Fft3D(int nx, int ny, int nz);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  size_t num_points() const {
    return static_cast<size_t>(nx_) * ny_ * nz_;
  }
  size_t index(int x, int y, int z) const {
    return (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
  }

  void forward(std::span<Complex> data) const { transform(data, false); }
  void inverse(std::span<Complex> data) const { transform(data, true); }

 private:
  void transform(std::span<Complex> data, bool inverse) const;

  int nx_, ny_, nz_;
  FftPlan px_, py_, pz_;
};

// Reference O(n²) DFT used by the test suite to validate the fast path.
std::vector<Complex> dft_reference(std::span<const Complex> in, bool inverse);

}  // namespace anton
