// From-scratch FFT substrate.
//
// Anton 2 computes small distributed 3D FFTs on-machine as part of the
// mesh-based long-range electrostatics.  The host library needs the same
// transform for (a) the functional Gaussian-split-Ewald solver and (b) the
// machine model's FFT phase, whose communication pattern (axis all-to-alls)
// is derived from these dimensions.  Power-of-two, complex double,
// iterative radix-2 with precomputed twiddles.
//
// The 3D transform is threaded over an optional ThreadPool and is
// allocation-free after construction: every line/tile buffer lives in
// per-thread scratch owned by the plan.  X lines (contiguous) run in place,
// one line per work item; Y and Z lines (strided) go through a cache-blocked
// tile transpose — a block of kTile lines is gathered with contiguous row
// reads, transformed in scratch, and scattered back — replacing the
// element-at-a-time strided gather/scatter of the original implementation.
//
// A real-to-complex path (`forward_real`/`inverse_real`) exploits Hermitian
// symmetry of real input: X lines are transformed two-at-a-time packed into
// one complex FFT, and only the non-redundant half-spectrum
// (nx/2+1 × ny × nz, x fastest) is kept, halving the Y/Z pass work and the
// k-space multiply of the caller.
//
// Determinism: every 1D line transform is a pure function of its input, and
// lines are data-parallel, so results are bitwise identical for any thread
// count (and to the serial transform).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/threadpool.h"
#include "obs/metrics.h"

namespace anton {

using Complex = std::complex<double>;

bool is_power_of_two(int n);
// Smallest power of two >= n.
int next_power_of_two(int n);

// One-dimensional in-place FFT plan for a fixed power-of-two size.
class FftPlan {
 public:
  explicit FftPlan(int n);

  int size() const { return n_; }

  // In-place DIT transform; `inverse` applies the conjugate transform and
  // scales by 1/n.  Both twiddle tables are precomputed, so the butterfly
  // loop is branch-free.
  void transform(std::span<Complex> data, bool inverse) const;

 private:
  int n_;
  int log2n_;
  std::vector<Complex> twiddles_;      // forward twiddles, n/2 entries
  std::vector<Complex> twiddles_inv_;  // conjugate table for the inverse
  // Per-stage contiguous twiddle runs (stage s = butterflies of length
  // 2^(s+1) holds 2^s entries at stage_off_[s]), so the vectorized butterfly
  // loads twiddles with whole-lane loads instead of a strided walk through
  // twiddles_.  n-1 entries total.
  std::vector<Complex> stage_tw_;
  std::vector<Complex> stage_tw_inv_;
  std::vector<size_t> stage_off_;
  std::vector<uint32_t> bitrev_;
};

// 3D FFT over a dense array indexed [z][y][x] (x fastest).  Each dimension
// must be a power of two.  Pass a ThreadPool to parallelize over lines; the
// transform is bitwise identical for any thread count.
class Fft3D {
 public:
  explicit Fft3D(int nx, int ny, int nz, ThreadPool* pool = nullptr);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  size_t num_points() const {
    return static_cast<size_t>(nx_) * ny_ * nz_;
  }
  size_t index(int x, int y, int z) const {
    return (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
  }

  // Non-redundant half-spectrum geometry for the real-to-complex path: the
  // stored x range is [0, nx/2] (Hermitian mirror supplies the rest), with
  // y/z at full extent and x still fastest.
  int half_nx() const { return nx_ / 2 + 1; }
  size_t half_points() const {
    return static_cast<size_t>(half_nx()) * ny_ * nz_;
  }
  size_t half_index(int hx, int y, int z) const {
    return (static_cast<size_t>(z) * ny_ + y) * half_nx() + hx;
  }

  void forward(std::span<Complex> data) { transform(data, false); }
  void inverse(std::span<Complex> data) { transform(data, true); }

  // Real-to-complex forward transform: `in` is the full real grid
  // (num_points()), `out` receives the half-spectrum (half_points()).
  // X lines are transformed in pairs (two real lines packed as the real and
  // imaginary parts of one complex line, untangled by Hermitian symmetry).
  void forward_real(std::span<const double> in, std::span<Complex> out);

  // Inverse of forward_real: consumes the half-spectrum (destroyed in the
  // process) and writes the real grid.  Includes the 1/N scaling.
  void inverse_real(std::span<Complex> spec, std::span<double> out);

  // Optional per-pass timing (x/y/z wall seconds per transform); any may be
  // null.  Stats are sampled per 3D transform, not per line.
  void set_pass_stats(obs::Stat* x, obs::Stat* y, obs::Stat* z) {
    stat_x_ = x;
    stat_y_ = y;
    stat_z_ = z;
  }

 private:
  // Lines per tile in the Y/Z transpose passes: 16 columns × 16 B/Complex
  // keeps a tile row inside two cache lines while amortizing the strided
  // walk across the tile width.
  static constexpr int kTile = 16;

  struct Scratch {
    std::vector<Complex> line;  // X-pass pack/untangle buffer (nx)
    std::vector<Complex> tile;  // Y/Z tile: kTile lines of max(ny, nz)
  };

  void transform(std::span<Complex> data, bool inverse);
  // Distributes items over the pool (serial fallback); fn(item, thread).
  template <class F>
  void run_items(size_t n_items, F&& fn);

  void pass_x(std::span<Complex> data, bool inverse);
  // Tiled strided pass along axis 1 (Y) or 2 (Z) over a grid whose row
  // length is `row_len` (nx for the complex grid, half_nx for the r2c grid).
  void pass_lines(std::span<Complex> data, bool inverse, int axis,
                  int row_len);
  void pass_x_forward_real(std::span<const double> in, std::span<Complex> out);
  void pass_x_inverse_real(std::span<Complex> spec, std::span<double> out);

  int nx_, ny_, nz_;
  ThreadPool* pool_;
  FftPlan px_, py_, pz_;
  std::vector<Scratch> scratch_;  // one per pool thread
  obs::Stat* stat_x_ = nullptr;
  obs::Stat* stat_y_ = nullptr;
  obs::Stat* stat_z_ = nullptr;
};

// Reference O(n²) DFT used by the test suite to validate the fast path.
std::vector<Complex> dft_reference(std::span<const Complex> in, bool inverse);

}  // namespace anton
