#include "fft/fft.h"

#include <cmath>

namespace anton {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

int next_power_of_two(int n) {
  ANTON_CHECK(n >= 1);
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(int n) : n_(n) {
  ANTON_CHECK_MSG(is_power_of_two(n), "FFT size must be a power of two, got "
                                          << n);
  log2n_ = 0;
  while ((1 << log2n_) < n) ++log2n_;

  twiddles_.resize(static_cast<size_t>(n / 2));
  for (int k = 0; k < n / 2; ++k) {
    const double theta = -2.0 * M_PI * k / n;
    twiddles_[static_cast<size_t>(k)] = {std::cos(theta), std::sin(theta)};
  }

  bitrev_.resize(static_cast<size_t>(n));
  for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) {
    uint32_t r = 0;
    for (int b = 0; b < log2n_; ++b) {
      r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
    }
    bitrev_[i] = r;
  }
}

void FftPlan::transform(std::span<Complex> data, bool inverse) const {
  ANTON_CHECK(static_cast<int>(data.size()) == n_);
  // Bit-reversal permutation.
  for (int i = 0; i < n_; ++i) {
    const auto j = static_cast<int>(bitrev_[static_cast<size_t>(i)]);
    if (i < j) std::swap(data[static_cast<size_t>(i)],
                         data[static_cast<size_t>(j)]);
  }
  // Iterative butterflies.
  for (int len = 2; len <= n_; len <<= 1) {
    const int half = len / 2;
    const int tw_step = n_ / len;
    for (int start = 0; start < n_; start += len) {
      for (int k = 0; k < half; ++k) {
        Complex w = twiddles_[static_cast<size_t>(k * tw_step)];
        if (inverse) w = std::conj(w);
        const size_t a = static_cast<size_t>(start + k);
        const size_t b = a + static_cast<size_t>(half);
        const Complex t = data[b] * w;
        data[b] = data[a] - t;
        data[a] += t;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / n_;
    for (auto& v : data) v *= scale;
  }
}

Fft3D::Fft3D(int nx, int ny, int nz)
    : nx_(nx), ny_(ny), nz_(nz), px_(nx), py_(ny), pz_(nz) {}

void Fft3D::transform(std::span<Complex> data, bool inverse) const {
  ANTON_CHECK(data.size() == num_points());

  // X lines are contiguous.
  for (int z = 0; z < nz_; ++z) {
    for (int y = 0; y < ny_; ++y) {
      px_.transform(data.subspan(index(0, y, z), static_cast<size_t>(nx_)),
                    inverse);
    }
  }
  // Y lines: gather/scatter with stride nx.
  std::vector<Complex> line(static_cast<size_t>(std::max(ny_, nz_)));
  for (int z = 0; z < nz_; ++z) {
    for (int x = 0; x < nx_; ++x) {
      for (int y = 0; y < ny_; ++y) {
        line[static_cast<size_t>(y)] = data[index(x, y, z)];
      }
      py_.transform({line.data(), static_cast<size_t>(ny_)}, inverse);
      for (int y = 0; y < ny_; ++y) {
        data[index(x, y, z)] = line[static_cast<size_t>(y)];
      }
    }
  }
  // Z lines: stride nx*ny.
  for (int y = 0; y < ny_; ++y) {
    for (int x = 0; x < nx_; ++x) {
      for (int z = 0; z < nz_; ++z) {
        line[static_cast<size_t>(z)] = data[index(x, y, z)];
      }
      pz_.transform({line.data(), static_cast<size_t>(nz_)}, inverse);
      for (int z = 0; z < nz_; ++z) {
        data[index(x, y, z)] = line[static_cast<size_t>(z)];
      }
    }
  }
}

std::vector<Complex> dft_reference(std::span<const Complex> in, bool inverse) {
  const size_t n = in.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t k = 0; k < n; ++k) {
    Complex acc{0, 0};
    for (size_t j = 0; j < n; ++j) {
      const double theta =
          sign * 2.0 * M_PI * static_cast<double>(k * j % n) /
          static_cast<double>(n);
      acc += in[j] * Complex{std::cos(theta), std::sin(theta)};
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

}  // namespace anton
