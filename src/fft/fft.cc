#include "fft/fft.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/simd.h"
#include "obs/profiler.h"

namespace anton {

bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }

int next_power_of_two(int n) {
  ANTON_CHECK(n >= 1);
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(int n) : n_(n) {
  ANTON_CHECK_MSG(is_power_of_two(n), "FFT size must be a power of two, got "
                                          << n);
  log2n_ = 0;
  while ((1 << log2n_) < n) ++log2n_;

  twiddles_.resize(static_cast<size_t>(n / 2));
  twiddles_inv_.resize(static_cast<size_t>(n / 2));
  for (int k = 0; k < n / 2; ++k) {
    const double theta = -2.0 * M_PI * k / n;
    twiddles_[static_cast<size_t>(k)] = {std::cos(theta), std::sin(theta)};
    // conj is exact, so the inverse transform stays bitwise identical to the
    // old per-butterfly `conj(w)` while removing the branch from the loop.
    twiddles_inv_[static_cast<size_t>(k)] =
        std::conj(twiddles_[static_cast<size_t>(k)]);
  }

  // Flatten the strided per-stage twiddle walks (tw[k * tw_step]) into
  // contiguous runs so the vectorized butterflies can use whole-lane loads.
  // Entries are copied bit-for-bit from twiddles_, so the transform is
  // unchanged numerically.
  stage_off_.assign(static_cast<size_t>(log2n_), 0);
  stage_tw_.resize(n > 1 ? static_cast<size_t>(n - 1) : 0);
  stage_tw_inv_.resize(stage_tw_.size());
  size_t off = 0;
  int stage = 0;
  for (int len = 2; len <= n; len <<= 1, ++stage) {
    stage_off_[static_cast<size_t>(stage)] = off;
    const int half = len / 2;
    const int tw_step = n / len;
    for (int k = 0; k < half; ++k) {
      stage_tw_[off + static_cast<size_t>(k)] =
          twiddles_[static_cast<size_t>(k * tw_step)];
      stage_tw_inv_[off + static_cast<size_t>(k)] =
          twiddles_inv_[static_cast<size_t>(k * tw_step)];
    }
    off += static_cast<size_t>(half);
  }

  bitrev_.resize(static_cast<size_t>(n));
  for (uint32_t i = 0; i < static_cast<uint32_t>(n); ++i) {
    uint32_t r = 0;
    for (int b = 0; b < log2n_; ++b) {
      r |= ((i >> b) & 1u) << (log2n_ - 1 - b);
    }
    bitrev_[i] = r;
  }
}

void FftPlan::transform(std::span<Complex> data, bool inverse) const {
  ANTON_HOT_NOALLOC();
  ANTON_DCHECK(static_cast<int>(data.size()) == n_);
  const Complex* stw = inverse ? stage_tw_inv_.data() : stage_tw_.data();
  // Bit-reversal permutation.
  for (int i = 0; i < n_; ++i) {
    const auto j = static_cast<int>(bitrev_[static_cast<size_t>(i)]);
    if (i < j) std::swap(data[static_cast<size_t>(i)],
                         data[static_cast<size_t>(j)]);
  }
  // Iterative butterflies.  Stages with half >= 2 process two complexes per
  // vector: twiddles come from the contiguous per-stage table, the product
  // uses simd::cmul (the naive complex formula, matching what the scalar
  // std::complex multiply computed bitwise for finite values), and the
  // add/sub pair is elementwise.  The len == 2 stage (a single twiddle per
  // butterfly) stays scalar in both backends.
  double* dd = reinterpret_cast<double*>(data.data());
  int stage = 0;
  for (int len = 2; len <= n_; len <<= 1, ++stage) {
    const int half = len / 2;
    const Complex* tw = stw + stage_off_[static_cast<size_t>(stage)];
    if (half < 2) {
      const Complex w = tw[0];
      for (int start = 0; start < n_; start += len) {
        const size_t a = static_cast<size_t>(start);
        const size_t b = a + 1;
        const Complex t = data[b] * w;
        data[b] = data[a] - t;
        data[a] += t;
      }
      continue;
    }
    const double* twd = reinterpret_cast<const double*>(tw);
    for (int start = 0; start < n_; start += len) {
      for (int k = 0; k < half; k += 2) {
        const simd::VecD w = simd::VecD::loadu(twd + 2 * k);
        double* pa = dd + 2 * (start + k);
        double* pb = pa + 2 * half;
        const simd::VecD va = simd::VecD::loadu(pa);
        const simd::VecD vb = simd::VecD::loadu(pb);
        const simd::VecD t = simd::cmul(vb, w);
        (va - t).storeu(pb);
        (va + t).storeu(pa);
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / n_;
    for (auto& v : data) v *= scale;
  }
}

Fft3D::Fft3D(int nx, int ny, int nz, ThreadPool* pool)
    : nx_(nx), ny_(ny), nz_(nz), pool_(pool), px_(nx), py_(ny), pz_(nz) {
  const unsigned nthreads = pool_ != nullptr ? pool_->size() : 1;
  scratch_.resize(nthreads);
  const size_t tile_line = static_cast<size_t>(std::max(ny_, nz_));
  for (Scratch& s : scratch_) {
    s.line.assign(static_cast<size_t>(nx_), Complex{});
    s.tile.assign(static_cast<size_t>(kTile) * tile_line, Complex{});
  }
}

template <class F>
void Fft3D::run_items(size_t n_items, F&& fn) {
  const size_t threads = pool_ != nullptr ? pool_->size() : 1;
  if (threads <= 1 || n_items <= 1) {
    for (size_t i = 0; i < n_items; ++i) fn(i, 0u);
    return;
  }
  const size_t chunk = (n_items + threads - 1) / threads;
  pool_->for_each_thread([&fn, n_items, chunk](unsigned t) {
    const size_t begin = std::min(n_items, static_cast<size_t>(t) * chunk);
    const size_t end = std::min(n_items, begin + chunk);
    for (size_t i = begin; i < end; ++i) fn(i, t);
  });
}

void Fft3D::pass_x(std::span<Complex> data, bool inverse) {
  ANTON_HOT_NOALLOC();
  const size_t lines = static_cast<size_t>(nz_) * ny_;
  run_items(lines, [&](size_t l, unsigned) {
    px_.transform(
        data.subspan(l * static_cast<size_t>(nx_), static_cast<size_t>(nx_)),
        inverse);
  });
}

void Fft3D::pass_lines(std::span<Complex> data, bool inverse, int axis,
                       int row_len) {
  ANTON_HOT_NOALLOC();
  const int n = axis == 1 ? ny_ : nz_;
  if (n == 1) return;
  const FftPlan& plan = axis == 1 ? py_ : pz_;
  const size_t stride = axis == 1
                            ? static_cast<size_t>(row_len)
                            : static_cast<size_t>(row_len) * ny_;
  const int outer = axis == 1 ? nz_ : ny_;
  const int nblocks = (row_len + kTile - 1) / kTile;
  run_items(static_cast<size_t>(outer) * nblocks, [&](size_t item,
                                                      unsigned thr) {
    const int o = static_cast<int>(item / static_cast<size_t>(nblocks));
    const int blk = static_cast<int>(item % static_cast<size_t>(nblocks));
    const int x0 = blk * kTile;
    const int tw = std::min(kTile, row_len - x0);
    // First element of line j==0 for this (outer, block):
    //   Y pass: index(x0, 0, z) with row length row_len;
    //   Z pass: index(x0, y, 0).
    const size_t base =
        axis == 1
            ? static_cast<size_t>(o) * ny_ * static_cast<size_t>(row_len) + x0
            : static_cast<size_t>(o) * static_cast<size_t>(row_len) + x0;
    Complex* tile = scratch_[thr].tile.data();
    // Gather: tile holds tw lines of length n, line c at tile[c*n ..].
    // The inner loop over c reads `tw` contiguous elements per row, turning
    // the strided walk into sequential cache-line traffic.
    for (int j = 0; j < n; ++j) {
      const Complex* src = &data[base + static_cast<size_t>(j) * stride];
      for (int c = 0; c < tw; ++c) {
        tile[static_cast<size_t>(c) * n + j] = src[c];
      }
    }
    for (int c = 0; c < tw; ++c) {
      plan.transform({tile + static_cast<size_t>(c) * n,
                      static_cast<size_t>(n)},
                     inverse);
    }
    for (int j = 0; j < n; ++j) {
      Complex* dst = &data[base + static_cast<size_t>(j) * stride];
      for (int c = 0; c < tw; ++c) {
        dst[c] = tile[static_cast<size_t>(c) * n + j];
      }
    }
  });
}

void Fft3D::transform(std::span<Complex> data, bool inverse) {
  ANTON_HOT_NOALLOC();
  ANTON_CHECK(data.size() == num_points());
  double t0 = stat_x_ != nullptr ? obs::wall_seconds() : 0.0;
  pass_x(data, inverse);
  if (stat_x_ != nullptr) {
    const double t1 = obs::wall_seconds();
    stat_x_->add(t1 - t0);
    t0 = t1;
  }
  pass_lines(data, inverse, 1, nx_);
  if (stat_y_ != nullptr) {
    const double t1 = obs::wall_seconds();
    stat_y_->add(t1 - t0);
    t0 = t1;
  }
  pass_lines(data, inverse, 2, nx_);
  if (stat_z_ != nullptr) stat_z_->add(obs::wall_seconds() - t0);
}

void Fft3D::pass_x_forward_real(std::span<const double> in,
                                std::span<Complex> out) {
  ANTON_HOT_NOALLOC();
  const size_t lines = static_cast<size_t>(nz_) * ny_;
  const int hnx = half_nx();
  // Two real lines packed as the real/imaginary parts of one complex line;
  // the odd leftover (only possible when ny*nz is odd) runs standalone.
  run_items((lines + 1) / 2, [&](size_t p, unsigned thr) {
    Complex* buf = scratch_[thr].line.data();
    const size_t l0 = 2 * p;
    const double* a = &in[l0 * static_cast<size_t>(nx_)];
    Complex* oa = &out[l0 * static_cast<size_t>(hnx)];
    if (l0 + 1 < lines) {
      const double* b = a + nx_;
      for (int x = 0; x < nx_; ++x) {
        buf[x] = Complex{a[x], b[x]};
      }
      px_.transform({buf, static_cast<size_t>(nx_)}, false);
      // Untangle S = A + iB via Hermitian symmetry of the real inputs:
      //   A[k] = (S[k] + conj(S[n-k]))/2,  B[k] = (S[k] - conj(S[n-k]))/2i.
      Complex* ob = oa + hnx;
      oa[0] = Complex{buf[0].real(), 0.0};
      ob[0] = Complex{buf[0].imag(), 0.0};
      for (int k = 1; k < hnx; ++k) {
        const Complex s = buf[k];
        const Complex r = std::conj(buf[nx_ - k]);
        oa[k] = 0.5 * (s + r);
        const Complex d = s - r;  // 2i·B[k]
        ob[k] = Complex{0.5 * d.imag(), -0.5 * d.real()};
      }
    } else {
      for (int x = 0; x < nx_; ++x) {
        buf[x] = Complex{a[x], 0.0};
      }
      px_.transform({buf, static_cast<size_t>(nx_)}, false);
      for (int k = 0; k < hnx; ++k) oa[k] = buf[k];
    }
  });
}

void Fft3D::pass_x_inverse_real(std::span<Complex> spec,
                                std::span<double> out) {
  ANTON_HOT_NOALLOC();
  const size_t lines = static_cast<size_t>(nz_) * ny_;
  const int hnx = half_nx();
  run_items((lines + 1) / 2, [&](size_t p, unsigned thr) {
    Complex* buf = scratch_[thr].line.data();
    const size_t l0 = 2 * p;
    const Complex* sa = &spec[l0 * static_cast<size_t>(hnx)];
    double* oa = &out[l0 * static_cast<size_t>(nx_)];
    if (l0 + 1 < lines) {
      // Pack two Hermitian line spectra as P = Sa + i·Sb; the inverse FFT of
      // P carries line a in its real part and line b in its imaginary part.
      const Complex* sb = sa + hnx;
      for (int k = 0; k < hnx; ++k) {
        const Complex a = sa[k];
        const Complex b = sb[k];
        buf[k] = Complex{a.real() - b.imag(), a.imag() + b.real()};
      }
      for (int k = hnx; k < nx_; ++k) {
        const Complex a = std::conj(sa[nx_ - k]);
        const Complex b = std::conj(sb[nx_ - k]);
        buf[k] = Complex{a.real() - b.imag(), a.imag() + b.real()};
      }
      px_.transform({buf, static_cast<size_t>(nx_)}, true);
      double* ob = oa + nx_;
      for (int x = 0; x < nx_; ++x) {
        oa[x] = buf[x].real();
        ob[x] = buf[x].imag();
      }
    } else {
      for (int k = 0; k < hnx; ++k) buf[k] = sa[k];
      for (int k = hnx; k < nx_; ++k) buf[k] = std::conj(sa[nx_ - k]);
      px_.transform({buf, static_cast<size_t>(nx_)}, true);
      for (int x = 0; x < nx_; ++x) oa[x] = buf[x].real();
    }
  });
}

void Fft3D::forward_real(std::span<const double> in, std::span<Complex> out) {
  ANTON_HOT_NOALLOC();
  ANTON_CHECK(in.size() == num_points());
  ANTON_CHECK(out.size() == half_points());
  double t0 = stat_x_ != nullptr ? obs::wall_seconds() : 0.0;
  pass_x_forward_real(in, out);
  if (stat_x_ != nullptr) {
    const double t1 = obs::wall_seconds();
    stat_x_->add(t1 - t0);
    t0 = t1;
  }
  pass_lines(out, false, 1, half_nx());
  if (stat_y_ != nullptr) {
    const double t1 = obs::wall_seconds();
    stat_y_->add(t1 - t0);
    t0 = t1;
  }
  pass_lines(out, false, 2, half_nx());
  if (stat_z_ != nullptr) stat_z_->add(obs::wall_seconds() - t0);
}

void Fft3D::inverse_real(std::span<Complex> spec, std::span<double> out) {
  ANTON_HOT_NOALLOC();
  ANTON_CHECK(spec.size() == half_points());
  ANTON_CHECK(out.size() == num_points());
  double t0 = stat_z_ != nullptr ? obs::wall_seconds() : 0.0;
  pass_lines(spec, true, 2, half_nx());
  if (stat_z_ != nullptr) {
    const double t1 = obs::wall_seconds();
    stat_z_->add(t1 - t0);
    t0 = t1;
  }
  pass_lines(spec, true, 1, half_nx());
  if (stat_y_ != nullptr) {
    const double t1 = obs::wall_seconds();
    stat_y_->add(t1 - t0);
    t0 = t1;
  }
  pass_x_inverse_real(spec, out);
  if (stat_x_ != nullptr) stat_x_->add(obs::wall_seconds() - t0);
}

std::vector<Complex> dft_reference(std::span<const Complex> in, bool inverse) {
  const size_t n = in.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (size_t k = 0; k < n; ++k) {
    Complex acc{0, 0};
    for (size_t j = 0; j < n; ++j) {
      const double theta =
          sign * 2.0 * M_PI * static_cast<double>(k * j % n) /
          static_cast<double>(n);
      acc += in[j] * Complex{std::cos(theta), std::sin(theta)};
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

}  // namespace anton
