// The MD timestep as executed by the simulated machine.
//
// Builds the task graph of one timestep from a Workload and runs it on the
// discrete-event machine model.  Two scheduling regimes, selected by
// MachineConfig::sync:
//
//   kEventDriven (Anton 2)  — every task fires the moment its dependency
//     counter drains.  Position multicasts overlap pairwise tiles, the FFT
//     all-to-alls overlap bonded work, force returns stream back while
//     other tiles still compute.
//
//   kBulkSynchronous (Anton 1) — the same tasks separated by global
//     barriers after each phase (position exchange; force computation;
//     each FFT transpose; interpolation; step end).  No overlap across
//     phase boundaries.
//
// A "short" step omits the long-range (mesh/FFT) phases — the RESPA inner
// step; the full/short mix reproduces the machine's multiple-time-step
// cadence.
//
// TimestepRunner is the persistent form: it builds the graph once and owns
// the queue/torus/executor, so re-running the same step (the steady state
// between workload refreshes, and every bench sweep replica) is
// allocation-free with telemetry off.  simulate_step() wraps a throwaway
// runner for one-shot callers.
#pragma once

#include <memory>

#include "arch/config.h"
#include "core/taskgraph.h"
#include "core/workload.h"
#include "noc/torus.h"
#include "common/threadpool.h"
#include "obs/metrics.h"
#include "obs/perfcounters.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/parallel_engine.h"

namespace anton::core {

struct StepOptions {
  bool include_long_range = true;
  // Optional telemetry.  When `metrics` is set, the step exports per-phase
  // busy time, critical-path attribution, queue statistics, NoC latency/hop
  // histograms and link occupancy under the "des." prefix.  When `trace` is
  // set, every task, packet and link reservation becomes a trace span;
  // trace_ts_offset_us places this step on the shared trace timeline (each
  // step runs on a fresh event queue whose clock starts at zero).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
  double trace_ts_offset_us = 0;
};

struct StepTiming {
  ExecStats exec;
  double step_ns = 0;

  double phase_ns(const std::string& phase) const {
    const auto it = exec.phase_busy_ns.find(phase);
    return it == exec.phase_busy_ns.end() ? 0.0 : it->second;
  }
};

// Builds the task graph of one timestep (all tasks, dependencies, messages,
// multicasts, and — in BSP mode — barriers) without executing it.
TaskGraph build_step_graph(const Workload& workload,
                           const arch::MachineConfig& config,
                           bool include_long_range);

// Persistent timestep simulator: one graph, one event queue, one torus, one
// executor, re-run on demand.  run_timestep() resets the simulated clock and
// link horizons, replays the graph, and returns the makespan; with telemetry
// off, the second and later calls perform zero heap allocations.
class TimestepRunner {
 public:
  TimestepRunner(const Workload& workload, const arch::MachineConfig& config,
                 const StepOptions& options = {});

  // Replays the step; returns makespan_ns.  Deterministic: every call
  // produces identical timing.
  double run_timestep();

  // Stats of the last run_timestep() (valid after the first call).
  const ExecStats& exec() const { return executor_.stats(); }
  double step_ns() const { return step_ns_; }
  // Convenience copy in the simulate_step() result shape.
  StepTiming timing() const;

  // Re-places this runner's steps on a shared trace timeline (each run
  // starts its queue clock at zero).
  void set_trace_offset_us(double us) { options_.trace_ts_offset_us = us; }

  // Shards the parallel engine actually runs with: MachineConfig::des_shards
  // overridden by ANTON_DES_SHARDS, clamped to the node count, and forced to
  // 0 (serial legacy engine) when a TraceWriter is attached or the sync
  // model is bulk-synchronous.
  int des_shards() const { return des_shards_; }
  // The conservative-window width the engine was built with (0 when serial).
  double lookahead_ns() const {
    return engine_ != nullptr ? engine_->lookahead_ns() : 0.0;
  }

 private:
  arch::MachineConfig config_;
  StepOptions options_;
  TaskGraph graph_;
  sim::EventQueue queue_;
  noc::Torus torus_;
  Executor executor_;
  double step_ns_ = 0;
  // Parallel-DES execution (null when des_shards() == 0): the worker pool
  // and the sharded engine the executor replays the graph on.
  int des_shards_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<sim::ParallelEngine> engine_;
  // Host-side hardware counters around each replay (ANTON_PERF=1 and a
  // metrics registry): exports des.host.ipc / des.host.llc_miss_rate — how
  // efficiently the *simulator itself* runs, next to the simulated timings.
  std::unique_ptr<obs::PerfCounters> perf_;
};

// Simulates one timestep; deterministic.  One-shot wrapper over
// TimestepRunner.
StepTiming simulate_step(const Workload& workload,
                         const arch::MachineConfig& config,
                         const StepOptions& options);

// Cost of one global barrier (BSP mode): software base + reduction +
// broadcast over the torus diameter.
double barrier_cost_ns(const arch::MachineConfig& config);

}  // namespace anton::core
