// The MD timestep as executed by the simulated machine.
//
// Builds the task graph of one timestep from a Workload and runs it on the
// discrete-event machine model.  Two scheduling regimes, selected by
// MachineConfig::sync:
//
//   kEventDriven (Anton 2)  — every task fires the moment its dependency
//     counter drains.  Position multicasts overlap pairwise tiles, the FFT
//     all-to-alls overlap bonded work, force returns stream back while
//     other tiles still compute.
//
//   kBulkSynchronous (Anton 1) — the same tasks separated by global
//     barriers after each phase (position exchange; force computation;
//     each FFT transpose; interpolation; step end).  No overlap across
//     phase boundaries.
//
// A "short" step omits the long-range (mesh/FFT) phases — the RESPA inner
// step; the full/short mix reproduces the machine's multiple-time-step
// cadence.
#pragma once

#include "arch/config.h"
#include "core/taskgraph.h"
#include "core/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace anton::core {

struct StepOptions {
  bool include_long_range = true;
  // Optional telemetry.  When `metrics` is set, the step exports per-phase
  // busy time, critical-path attribution, queue statistics, NoC latency/hop
  // histograms and link occupancy under the "des." prefix.  When `trace` is
  // set, every task, packet and link reservation becomes a trace span;
  // trace_ts_offset_us places this step on the shared trace timeline (each
  // step runs on a fresh event queue whose clock starts at zero).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
  double trace_ts_offset_us = 0;
};

struct StepTiming {
  ExecStats exec;
  double step_ns = 0;

  double phase_ns(const std::string& phase) const {
    const auto it = exec.phase_busy_ns.find(phase);
    return it == exec.phase_busy_ns.end() ? 0.0 : it->second;
  }
};

// Simulates one timestep; deterministic.
StepTiming simulate_step(const Workload& workload,
                         const arch::MachineConfig& config,
                         const StepOptions& options);

// Cost of one global barrier (BSP mode): software base + reduction +
// broadcast over the torus diameter.
double barrier_cost_ns(const arch::MachineConfig& config);

}  // namespace anton::core
