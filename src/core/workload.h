// Workload mapping: decomposes a molecular system onto the machine's node
// grid and counts the work each node performs in one MD timestep.
//
// This is the quantitative bridge between the functional MD layer and the
// timing model: pairwise-interaction counts load the HTIS, bonded/mesh/
// integration counts load the geometry cores, and per-neighbour atom counts
// size the NoC messages.  Pair counting is exact (from the actual atom
// positions), using the same half-shell tile assignment the machine uses.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "arch/config.h"
#include "chem/system.h"
#include "geom/decomp.h"

namespace anton::core {

struct BondedCounts {
  int64_t bonds = 0;
  int64_t angles = 0;
  int64_t dihedrals = 0;
  int64_t pairs14 = 0;

  int64_t total() const { return bonds + angles + dihedrals + pairs14; }
};

// One pairwise tile: interactions between the node's home box and the
// neighbour at `offset_index` (index into Workload::tile_offsets).
struct Tile {
  int offset_index;
  int64_t pairs;
  // Distinct remote atoms touched by this tile — sizes the force-return
  // message back to the neighbour.
  int64_t remote_atoms;
};

struct NodeWork {
  int atoms = 0;
  int64_t internal_pairs = 0;       // both atoms local
  std::vector<Tile> tiles;          // boundary tiles owned by this node
  std::vector<int> pos_destinations;  // ranks that need this node's positions
  BondedCounts bonded_local;        // all atoms on this node
  BondedCounts bonded_boundary;     // needs imported positions
  int64_t constraints = 0;

  int64_t boundary_pairs() const {
    int64_t s = 0;
    for (const auto& t : tiles) s += t.pairs;
    return s;
  }
  int64_t total_pairs() const { return internal_pairs + boundary_pairs(); }
};

class Workload {
 public:
  // Decomposes `system` onto the torus in `config` using the machine
  // cutoff and mesh spacing.  The node grid is config.noc dimensions.
  static Workload build(const System& system,
                        const arch::MachineConfig& config);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const NodeWork& node(int rank) const {
    return nodes_.at(static_cast<size_t>(rank));
  }
  const std::vector<NodeOffset>& tile_offsets() const { return tile_offsets_; }
  const DomainDecomp& decomp() const { return *decomp_; }

  int total_atoms() const { return total_atoms_; }
  int64_t total_pairs() const;
  double mean_atoms_per_node() const {
    return static_cast<double>(total_atoms_) / num_nodes();
  }
  // Max/mean atoms per node — load-imbalance diagnostics.
  int max_atoms_per_node() const;

  // Mesh geometry for the long-range phase.
  int mesh_dim(int axis) const { return mesh_dim_[axis]; }
  int64_t mesh_points_total() const {
    return static_cast<int64_t>(mesh_dim_[0]) * mesh_dim_[1] * mesh_dim_[2];
  }
  int64_t mesh_points_per_node() const {
    return (mesh_points_total() + num_nodes() - 1) / num_nodes();
  }
  int spread_support_points() const { return spread_support_points_; }
  // Bytes of mesh halo exchanged with each face neighbour after spreading.
  double spread_halo_bytes(const arch::MachineConfig& config) const;

 private:
  std::unique_ptr<DomainDecomp> decomp_;
  std::vector<NodeWork> nodes_;
  std::vector<NodeOffset> tile_offsets_;
  int total_atoms_ = 0;
  int mesh_dim_[3] = {0, 0, 0};
  int spread_support_points_ = 0;
};

}  // namespace anton::core
