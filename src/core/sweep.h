// Deterministic parallel sweep harness.
//
// Machine-model studies (the F1–F5 figures, T2/T3 tables, A1/A2 ablations,
// the example campaigns) are embarrassingly parallel: every sweep point
// builds its own workload, task graph, event queue, torus and metrics
// scope, sharing nothing but read-only inputs.  SweepRunner shards points
// across the existing ThreadPool with a dynamic ticket counter (points have
// wildly different costs — a 512-node estimate dwarfs an 8-node one, so
// static chunking would idle most threads) and writes each result into its
// fixed index slot.  Each point's simulation is single-threaded and
// self-contained, so out[i] depends only on i: the merged output is
// bitwise identical to a serial run at any thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/threadpool.h"
#include "core/machine.h"

namespace anton::core {

// One machine-model point of an estimate sweep.
struct EstimatePoint {
  arch::MachineConfig config;
  double dt_fs = 2.5;
  int respa_k = 2;
};

class SweepRunner {
 public:
  // pool == nullptr (or a 1-thread pool) evaluates serially on the caller.
  // The pool is borrowed, not owned, and must outlive the runner.
  explicit SweepRunner(ThreadPool* pool = nullptr) : pool_(pool) {}

  // Evaluates out[i] = eval(i) for every i in [0, n).  eval must be safe to
  // call concurrently for distinct i and must not dispatch on the pool
  // itself (ThreadPool is non-reentrant).  Scheduling is dynamic (atomic
  // ticket), but results land in index order, so output is independent of
  // the schedule.  The first exception any point throws is rethrown on the
  // caller after the sweep drains; remaining points still run.
  template <class R, class Fn>
  void map(size_t n, std::vector<R>& out, Fn&& eval) const {
    out.resize(n);
    if (pool_ == nullptr || pool_->size() <= 1 || n <= 1) {
      for (size_t i = 0; i < n; ++i) out[i] = eval(i);
      return;
    }
    std::atomic<size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr err;
    R* slots = out.data();
    pool_->for_each_thread([&](unsigned) {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          slots[i] = eval(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(err_mu);
          if (!err) err = std::current_exception();
        }
      }
    });
    if (err) std::rethrow_exception(err);
  }

  // AntonMachine::estimate() over a set of machine points on one system;
  // results in point order.  Each replica runs on its own event queue,
  // torus and metrics scope (estimate() constructs all three per call).
  std::vector<PerfReport> estimate(const System& system,
                                   std::span<const EstimatePoint> points) const;

  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_;
};

}  // namespace anton::core
