#include "core/sweep.h"

namespace anton::core {

std::vector<PerfReport> SweepRunner::estimate(
    const System& system, std::span<const EstimatePoint> points) const {
  std::vector<PerfReport> out;
  map(points.size(), out, [&](size_t i) {
    const EstimatePoint& p = points[i];
    return AntonMachine(p.config).estimate(system, p.dt_fs, p.respa_k);
  });
  return out;
}

}  // namespace anton::core
