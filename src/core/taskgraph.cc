#include "core/taskgraph.h"

#include <algorithm>

#include "common/error.h"

namespace anton::core {

int TaskGraph::add_task(int node, Unit unit, double busy_ns,
                        const char* phase) {
  ANTON_CHECK(node >= 0 && busy_ns >= 0 && phase != nullptr);
  tasks_.push_back(Task{node, unit, busy_ns, phase});
  return num_tasks() - 1;
}

void TaskGraph::add_local_dep(int from, int to) {
  ANTON_CHECK(from >= 0 && from < num_tasks() && to >= 0 && to < num_tasks());
  ANTON_CHECK_MSG(task(from).node == task(to).node,
                  "local dep across nodes; use add_message");
  task(from).local_dependents.push_back(to);
  task(to).deps++;
}

void TaskGraph::add_barrier_dep(int from, int to) {
  ANTON_CHECK(from >= 0 && from < num_tasks() && to >= 0 && to < num_tasks());
  task(from).local_dependents.push_back(to);
  task(to).deps++;
}

void TaskGraph::add_message(int from, int to, double bytes) {
  ANTON_CHECK(from >= 0 && from < num_tasks() && to >= 0 && to < num_tasks());
  task(from).sends.push_back({to, bytes});
  task(to).deps++;
}

void TaskGraph::add_multicast(int from, const std::vector<int>& to,
                              double bytes) {
  ANTON_CHECK(from >= 0 && from < num_tasks());
  Task& t = task(from);
  ANTON_CHECK_MSG(t.mcast_dependents.empty(),
                  "one multicast per task; add another task");
  t.mcast_dependents = to;
  t.mcast_bytes = bytes;
  for (int dep : to) task(dep).deps++;
}

namespace {

struct ExecState {
  TaskGraph* graph;
  const arch::MachineConfig* config;
  noc::Torus* torus;
  sim::EventQueue* queue;
  std::vector<int> deps_left;
  std::vector<sim::SimTime> unit_free;  // (node * kNumUnits + unit)
  std::vector<double> node_busy;
  ExecStats stats;
  // Critical-path bookkeeping: per-task dispatch/end times and the releasing
  // predecessor (-1 for seed tasks released at t0).
  std::vector<sim::SimTime> dispatch_time;
  std::vector<sim::SimTime> end_time;
  std::vector<int> crit_pred;
  std::vector<int> unit_last_task;  // prior occupant per (node, unit)
  sim::SimTime t0 = 0;
  obs::TraceWriter* trace = nullptr;
  int trace_pid = obs::kPidMachine;
  std::vector<bool> tid_named;

  double dispatch_overhead(Unit unit) const {
    switch (unit) {
      case Unit::kHtis:
        return config->htis_task_overhead_ns +
               (config->sync == arch::SyncModel::kEventDriven
                    ? config->sync_trigger_ns
                    : 0.0);
      case Unit::kGc:
        return config->gc_task_overhead_ns +
               (config->sync == arch::SyncModel::kEventDriven
                    ? config->sync_trigger_ns
                    : 0.0);
      case Unit::kSync:
        return 0.0;
    }
    return 0.0;
  }

  void complete(int id) {
    const TaskGraph::Task& t = graph->task(id);
    for (int dep : t.local_dependents) notify(dep, id);
    for (const auto& s : t.sends) {
      const int dst_node = graph->task(s.dst_task).node;
      torus->unicast(t.node, dst_node, s.bytes,
                     [this, dst = s.dst_task, id] { notify(dst, id); });
    }
    if (!t.mcast_dependents.empty()) {
      std::vector<int> dst_nodes;
      dst_nodes.reserve(t.mcast_dependents.size());
      for (int dep : t.mcast_dependents) {
        dst_nodes.push_back(graph->task(dep).node);
      }
      // Map delivery node back to the dependent task (nodes are unique per
      // multicast in our graphs; assert to be safe).
      std::map<int, int> node_to_task;
      for (size_t i = 0; i < dst_nodes.size(); ++i) {
        ANTON_CHECK_MSG(
            node_to_task.emplace(dst_nodes[i], t.mcast_dependents[i]).second,
            "multicast with two dependents on one node");
      }
      torus->multicast(t.node, dst_nodes, t.mcast_bytes,
                       [this, node_to_task, id](int node) {
                         notify(node_to_task.at(node), id);
                       });
    }
  }

  void notify(int id, int from) {
    ANTON_CHECK(deps_left[static_cast<size_t>(id)] > 0);
    if (--deps_left[static_cast<size_t>(id)] == 0) ready(id, from);
  }

  void ready(int id, int released_by) {
    const TaskGraph::Task& t = graph->task(id);
    const size_t unit_key =
        static_cast<size_t>(t.node) * kNumUnits + static_cast<size_t>(t.unit);
    const double overhead = dispatch_overhead(t.unit);
    const sim::SimTime dispatch = std::max(queue->now(), unit_free[unit_key]);
    const sim::SimTime start = dispatch + overhead;
    const sim::SimTime end = start + t.busy_ns;
    // The releasing predecessor: the final dependency to arrive — unless the
    // hardware unit itself was the bottleneck, in which case whoever held
    // the unit last is what this task actually waited for.
    if (unit_free[unit_key] > queue->now() &&
        unit_last_task[unit_key] >= 0) {
      released_by = unit_last_task[unit_key];
    }
    dispatch_time[static_cast<size_t>(id)] = dispatch;
    end_time[static_cast<size_t>(id)] = end;
    crit_pred[static_cast<size_t>(id)] = released_by;
    unit_last_task[unit_key] = id;
    unit_free[unit_key] = end;
    const double occupied = overhead + t.busy_ns;
    node_busy[static_cast<size_t>(t.node)] += occupied;
    stats.phase_busy_ns[t.phase] += occupied;
    auto& end_ns = stats.phase_end_ns[t.phase];
    end_ns = std::max(end_ns, static_cast<double>(end));
    stats.tasks_executed++;
    if (trace != nullptr) emit_span(t, unit_key, dispatch, end);
    queue->schedule_at(end, [this, id] { complete(id); });
  }

  void emit_span(const TaskGraph::Task& t, size_t unit_key,
                 sim::SimTime dispatch, sim::SimTime end) {
    if (!tid_named[unit_key]) {
      tid_named[unit_key] = true;
      static constexpr const char* kUnitNames[kNumUnits] = {"htis", "gc",
                                                            "sync"};
      trace->thread_name(trace_pid, static_cast<int>(unit_key),
                         "n" + std::to_string(t.node) + "/" +
                             kUnitNames[static_cast<int>(t.unit)]);
    }
    trace->complete(t.phase, "des", (dispatch - t0) * 1e-3,
                    (end - dispatch) * 1e-3, trace_pid,
                    static_cast<int>(unit_key),
                    {{"busy_ns", t.busy_ns}});
  }
};

}  // namespace

ExecStats execute(TaskGraph& graph, const arch::MachineConfig& config,
                  noc::Torus& torus, sim::EventQueue& queue,
                  obs::TraceWriter* trace, int trace_pid) {
  ExecState st;
  st.graph = &graph;
  st.config = &config;
  st.torus = &torus;
  st.queue = &queue;
  st.deps_left.resize(static_cast<size_t>(graph.num_tasks()));
  for (int i = 0; i < graph.num_tasks(); ++i) {
    st.deps_left[static_cast<size_t>(i)] = graph.task(i).deps;
  }
  st.unit_free.assign(
      static_cast<size_t>(torus.num_nodes()) * kNumUnits, 0.0);
  st.node_busy.assign(static_cast<size_t>(torus.num_nodes()), 0.0);
  st.dispatch_time.assign(static_cast<size_t>(graph.num_tasks()), 0.0);
  st.end_time.assign(static_cast<size_t>(graph.num_tasks()), 0.0);
  st.crit_pred.assign(static_cast<size_t>(graph.num_tasks()), -1);
  st.unit_last_task.assign(st.unit_free.size(), -1);
  st.trace = trace;
  st.trace_pid = trace_pid;
  st.tid_named.assign(st.unit_free.size(), false);

  torus.reset_stats();
  const sim::SimTime t0 = queue.now();
  st.t0 = t0;
  // Seed all zero-dependency tasks.
  for (int i = 0; i < graph.num_tasks(); ++i) {
    if (graph.task(i).deps == 0) st.ready(i, -1);
  }
  const sim::SimTime t_end = queue.run();

  st.stats.makespan_ns = t_end - t0;
  double sum = 0;
  for (double b : st.node_busy) {
    st.stats.max_node_busy_ns = std::max(st.stats.max_node_busy_ns, b);
    sum += b;
  }
  st.stats.mean_node_busy_ns = sum / static_cast<double>(st.node_busy.size());
  ANTON_CHECK_MSG(st.stats.tasks_executed ==
                      static_cast<uint64_t>(graph.num_tasks()),
                  "deadlock: " << graph.num_tasks() - st.stats.tasks_executed
                               << " tasks never ran");
  st.stats.noc = torus.stats();

  // Critical-path walk-back from the last-finishing task.  Each hop
  // attributes the task's unit occupancy to its phase and the gap to its
  // releasing predecessor (exposed wire latency) to critical_wait_ns; the
  // queue drains at the last task's completion, so the pieces tile the
  // makespan exactly.
  if (graph.num_tasks() > 0) {
    int cur = 0;
    for (int i = 1; i < graph.num_tasks(); ++i) {
      if (st.end_time[static_cast<size_t>(i)] >
          st.end_time[static_cast<size_t>(cur)]) {
        cur = i;
      }
    }
    while (cur >= 0) {
      const size_t c = static_cast<size_t>(cur);
      st.stats.critical_path_ns[graph.task(cur).phase] +=
          st.end_time[c] - st.dispatch_time[c];
      const int pred = st.crit_pred[c];
      const double released_at =
          pred >= 0 ? st.end_time[static_cast<size_t>(pred)] : t0;
      st.stats.critical_wait_ns +=
          std::max(0.0, st.dispatch_time[c] - released_at);
      cur = pred;
    }
  }
  return st.stats;
}

}  // namespace anton::core
