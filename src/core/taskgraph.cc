#include "core/taskgraph.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace anton::core {

int TaskGraph::intern_phase(const char* phase) {
  for (int i = 0; i < num_phases(); ++i) {
    if (phase_names_[static_cast<size_t>(i)] == phase ||
        std::strcmp(phase_names_[static_cast<size_t>(i)], phase) == 0) {
      return i;
    }
  }
  phase_names_.push_back(phase);
  return num_phases() - 1;
}

int TaskGraph::add_task(int node, Unit unit, double busy_ns,
                        const char* phase) {
  ANTON_CHECK(node >= 0 && busy_ns >= 0 && phase != nullptr);
  Task t{};
  t.node = node;
  t.unit = unit;
  t.busy_ns = busy_ns;
  t.phase = phase;
  t.phase_id = intern_phase(phase);
  tasks_.push_back(std::move(t));
  return num_tasks() - 1;
}

void TaskGraph::add_local_dep(int from, int to) {
  ANTON_CHECK(from >= 0 && from < num_tasks() && to >= 0 && to < num_tasks());
  ANTON_CHECK_MSG(task(from).node == task(to).node,
                  "local dep across nodes; use add_message");
  task(from).local_dependents.push_back(to);
  task(to).deps++;
}

void TaskGraph::add_barrier_dep(int from, int to) {
  ANTON_CHECK(from >= 0 && from < num_tasks() && to >= 0 && to < num_tasks());
  task(from).local_dependents.push_back(to);
  task(to).deps++;
}

void TaskGraph::add_message(int from, int to, double bytes) {
  ANTON_CHECK(from >= 0 && from < num_tasks() && to >= 0 && to < num_tasks());
  task(from).sends.push_back({to, bytes});
  task(to).deps++;
}

void TaskGraph::add_multicast(int from, const std::vector<int>& to,
                              double bytes) {
  ANTON_CHECK(from >= 0 && from < num_tasks());
  Task& t = task(from);
  ANTON_CHECK_MSG(t.mcast_dependents.empty(),
                  "one multicast per task; add another task");
  t.mcast_dependents = to;
  t.mcast_bytes = bytes;
  for (int dep : to) task(dep).deps++;
}

double Executor::dispatch_overhead(Unit unit) const {
  switch (unit) {
    case Unit::kHtis:
      return config_->htis_task_overhead_ns +
             (config_->sync == arch::SyncModel::kEventDriven
                  ? config_->sync_trigger_ns
                  : 0.0);
    case Unit::kGc:
      return config_->gc_task_overhead_ns +
             (config_->sync == arch::SyncModel::kEventDriven
                  ? config_->sync_trigger_ns
                  : 0.0);
    case Unit::kSync:
      return 0.0;
  }
  return 0.0;
}

// Task completion: release dependents.  Remote releases ride the torus as
// pooled delivery callables — the multicast callback receives the
// *destination index*, so dispatch is a plain lookup into the task's own
// mcast_dependents array (no per-send container, no node→task map).
void Executor::complete(int id) {
  ANTON_HOT_NOALLOC();
  const TaskGraph::Task& t = graph_->task(id);
  for (int dep : t.local_dependents) notify(dep, id);
  if (engine_ != nullptr) {
    // Sharded run: NoC planning mutates shared link state, so it is
    // deferred — record the completion in this shard's outbox and let the
    // window barrier plan every send in canonical order.
    if (!t.sends.empty() || !t.mcast_dependents.empty()) {
      SendRec rec;
      rec.t = queue_for(t.node).now();
      rec.seq = node_send_seq_[static_cast<size_t>(t.node)]++;
      rec.task = id;
      rec.node = static_cast<uint32_t>(t.node);
      outbox_[static_cast<size_t>(node_shard_[static_cast<size_t>(t.node)])]
          .push(std::move(rec));
    }
    return;
  }
  for (const auto& s : t.sends) {
    const int dst_node = graph_->task(s.dst_task).node;
    torus_->unicast(t.node, dst_node, s.bytes,
                    [this, dst = s.dst_task, id] { notify(dst, id); });
  }
  if (!t.mcast_dependents.empty()) {
    mcast_nodes_.clear();
    for (int dep : t.mcast_dependents) {
      mcast_nodes_.push_back(  // anton-lint: allow(hot-alloc) amortized
          graph_->task(dep).node);
    }
    torus_->multicast(t.node, mcast_nodes_, t.mcast_bytes,
                      [this, deps = &t.mcast_dependents, id](int i) {
                        notify((*deps)[static_cast<size_t>(i)], id);
                      });
  }
}

void Executor::notify(int id, int from) {
  ANTON_HOT_NOALLOC();
  ANTON_CHECK(deps_left_[static_cast<size_t>(id)] > 0);
  if (--deps_left_[static_cast<size_t>(id)] == 0) ready(id, from);
}

void Executor::ready(int id, int released_by) {
  ANTON_HOT_NOALLOC();
  const TaskGraph::Task& t = graph_->task(id);
  sim::EventQueue& q = queue_for(t.node);
  const sim::SimTime now = q.now();
  const size_t unit_key =
      static_cast<size_t>(t.node) * kNumUnits + static_cast<size_t>(t.unit);
  const double overhead = dispatch_overhead(t.unit);
  const sim::SimTime dispatch = std::max(now, unit_free_[unit_key]);
  const sim::SimTime start = dispatch + overhead;
  const sim::SimTime end = start + t.busy_ns;
  // The releasing predecessor: the final dependency to arrive — unless the
  // hardware unit itself was the bottleneck, in which case whoever held
  // the unit last is what this task actually waited for.
  if (unit_free_[unit_key] > now && unit_last_task_[unit_key] >= 0) {
    released_by = unit_last_task_[unit_key];
  }
  dispatch_time_[static_cast<size_t>(id)] = dispatch;
  end_time_[static_cast<size_t>(id)] = end;
  crit_pred_[static_cast<size_t>(id)] = released_by;
  unit_last_task_[unit_key] = id;
  unit_free_[unit_key] = end;
  const double occupied = overhead + t.busy_ns;
  node_busy_[static_cast<size_t>(t.node)] += occupied;
  if (engine_ == nullptr) {
    phase_busy_[static_cast<size_t>(t.phase_id)] += occupied;
    double& end_ns = phase_end_[static_cast<size_t>(t.phase_id)];
    end_ns = std::max(end_ns, static_cast<double>(end));
    tasks_executed_++;
  } else {
    // Per-node lanes (single writer: the shard executing this node).  The
    // serial globals would race — and worse, accumulate float sums in a
    // shard-dependent order.  Folded ascending-node after the run.
    const size_t k = static_cast<size_t>(t.node) * phase_busy_.size() +
                     static_cast<size_t>(t.phase_id);
    node_phase_busy_[k] += occupied;
    node_phase_end_[k] = std::max(node_phase_end_[k],
                                  static_cast<double>(end));
    ++shard_tasks_[static_cast<size_t>(
          node_shard_[static_cast<size_t>(t.node)])].v;
  }
  if (trace_ != nullptr) emit_span(t, unit_key, dispatch, end);
  q.schedule_at(end, [this, id] { complete(id); });
}

void Executor::emit_span(const TaskGraph::Task& t, size_t unit_key,
                         sim::SimTime dispatch, sim::SimTime end) {
  if (!tid_named_[unit_key]) {
    tid_named_[unit_key] = true;
    static constexpr const char* kUnitNames[kNumUnits] = {"htis", "gc",
                                                          "sync"};
    trace_->thread_name(trace_pid_, static_cast<int>(unit_key),
                        "n" + std::to_string(t.node) + "/" +
                            kUnitNames[static_cast<int>(t.unit)]);
  }
  trace_->complete(t.phase, "des", (dispatch - t0_) * 1e-3,
                   (end - dispatch) * 1e-3, trace_pid_,
                   static_cast<int>(unit_key),
                   {{"busy_ns", t.busy_ns}});
}

namespace {
// Keeps stats maps warm across runs: stale keys get zeroed in place (std::map
// insertion only allocates for *new* keys, so reused phase labels never
// touch the heap again).
void zero_values(std::map<std::string, double>& m) {
  for (auto& [k, v] : m) {
    (void)k;
    v = 0;
  }
}
}  // namespace

void Executor::prepare(TaskGraph& graph, const arch::MachineConfig& config,
                       noc::Torus& torus) {
  graph_ = &graph;
  config_ = &config;
  torus_ = &torus;

  const size_t n = static_cast<size_t>(graph.num_tasks());
  deps_left_.resize(n);
  for (int i = 0; i < graph.num_tasks(); ++i) {
    deps_left_[static_cast<size_t>(i)] = graph.task(i).deps;
  }
  unit_free_.assign(static_cast<size_t>(torus.num_nodes()) * kNumUnits, 0.0);
  node_busy_.assign(static_cast<size_t>(torus.num_nodes()), 0.0);
  dispatch_time_.assign(n, 0.0);
  end_time_.assign(n, 0.0);
  crit_pred_.assign(n, -1);
  unit_last_task_.assign(unit_free_.size(), -1);
  tid_named_.assign(unit_free_.size(), false);
  const size_t num_phases = static_cast<size_t>(graph.num_phases());
  phase_busy_.assign(num_phases, 0.0);
  phase_end_.assign(num_phases, 0.0);
  crit_phase_.assign(num_phases, 0.0);
  crit_touched_.assign(num_phases, false);
  tasks_executed_ = 0;

  stats_.makespan_ns = 0;
  zero_values(stats_.phase_busy_ns);
  zero_values(stats_.phase_end_ns);
  zero_values(stats_.critical_path_ns);
  stats_.max_node_busy_ns = 0;
  stats_.mean_node_busy_ns = 0;
  stats_.tasks_executed = 0;
  stats_.critical_wait_ns = 0;
  stats_.noc = noc::NocStats{};

  torus.reset_stats();
}

const ExecStats& Executor::finalize(sim::SimTime t0, sim::SimTime t_end) {
  TaskGraph& graph = *graph_;
  stats_.makespan_ns = t_end - t0;
  double sum = 0;
  for (double b : node_busy_) {
    stats_.max_node_busy_ns = std::max(stats_.max_node_busy_ns, b);
    sum += b;
  }
  stats_.mean_node_busy_ns = sum / static_cast<double>(node_busy_.size());
  stats_.tasks_executed = tasks_executed_;
  ANTON_CHECK_MSG(tasks_executed_ == static_cast<uint64_t>(graph.num_tasks()),
                  "deadlock: " << graph.num_tasks() - tasks_executed_
                               << " tasks never ran");
  stats_.noc = torus_->stats();

  // Critical-path walk-back from the last-finishing task.  Each hop
  // attributes the task's unit occupancy to its phase and the gap to its
  // releasing predecessor (exposed wire latency) to critical_wait_ns; the
  // queue drains at the last task's completion, so the pieces tile the
  // makespan exactly.
  if (graph.num_tasks() > 0) {
    int cur = 0;
    for (int i = 1; i < graph.num_tasks(); ++i) {
      if (end_time_[static_cast<size_t>(i)] >
          end_time_[static_cast<size_t>(cur)]) {
        cur = i;
      }
    }
    while (cur >= 0) {
      const size_t c = static_cast<size_t>(cur);
      crit_phase_[static_cast<size_t>(graph.task(cur).phase_id)] +=
          end_time_[c] - dispatch_time_[c];
      crit_touched_[static_cast<size_t>(graph.task(cur).phase_id)] = true;
      const int pred = crit_pred_[c];
      const double released_at =
          pred >= 0 ? end_time_[static_cast<size_t>(pred)] : t0;
      stats_.critical_wait_ns +=
          std::max(0.0, dispatch_time_[c] - released_at);
      cur = pred;
    }
  }

  // Fold the dense per-phase accumulators into the string-keyed maps the
  // public API exposes.  Phases the critical path never touched are left
  // out of critical_path_ns (matching the original lazy accumulation).
  for (int p = 0; p < graph.num_phases(); ++p) {
    const size_t pi = static_cast<size_t>(p);
    stats_.phase_busy_ns[graph.phase_name(p)] = phase_busy_[pi];
    stats_.phase_end_ns[graph.phase_name(p)] = phase_end_[pi];
    if (crit_touched_[pi]) {
      stats_.critical_path_ns[graph.phase_name(p)] += crit_phase_[pi];
    }
  }
  return stats_;
}

const ExecStats& Executor::run(TaskGraph& graph,
                               const arch::MachineConfig& config,
                               noc::Torus& torus, sim::EventQueue& queue,
                               obs::TraceWriter* trace, int trace_pid) {
  queue_ = &queue;
  engine_ = nullptr;
  trace_ = trace;
  trace_pid_ = trace_pid;
  prepare(graph, config, torus);

  const sim::SimTime t0 = queue.now();
  t0_ = t0;
  // Seed all zero-dependency tasks.
  for (int i = 0; i < graph.num_tasks(); ++i) {
    if (graph.task(i).deps == 0) ready(i, -1);
  }
  const sim::SimTime t_end = queue.run();
  return finalize(t0, t_end);
}

const ExecStats& Executor::run_sharded(TaskGraph& graph,
                                       const arch::MachineConfig& config,
                                       noc::Torus& torus,
                                       sim::ParallelEngine& engine) {
  ANTON_CHECK_MSG(config.sync == arch::SyncModel::kEventDriven,
                  "sharded execution requires event-driven sync: BSP barrier "
                  "deps cross nodes without messages, so no lookahead bounds "
                  "them");
  queue_ = nullptr;
  engine_ = &engine;
  trace_ = nullptr;
  prepare(graph, config, torus);

  const int num_nodes = torus.num_nodes();
  const int p = engine.shards();
  node_shard_.resize(static_cast<size_t>(num_nodes));
  for (int node = 0; node < num_nodes; ++node) {
    node_shard_[static_cast<size_t>(node)] =
        sim::ParallelEngine::shard_of(node, num_nodes, p);
  }
  node_send_seq_.assign(static_cast<size_t>(num_nodes), 0);
  node_phase_busy_.assign(
      static_cast<size_t>(num_nodes) * phase_busy_.size(), 0.0);
  node_phase_end_.assign(node_phase_busy_.size(), 0.0);
  shard_tasks_.assign(static_cast<size_t>(p), PadCount{});

  // Size each shard's outbox for every sending task it owns (the worst case:
  // all of them complete inside one window), and reject graphs the shard
  // contract cannot execute: a local dependent on another node (BSP barrier
  // edges) would be a cross-shard release with zero latency.
  outbox_.resize(static_cast<size_t>(p));
  shard_senders_.assign(static_cast<size_t>(p), 0);
  size_t total_senders = 0;
  for (int i = 0; i < graph.num_tasks(); ++i) {
    const TaskGraph::Task& t = graph.task(i);
    ANTON_CHECK_MSG(t.node >= 0 && t.node < num_nodes,
                    "task " << i << " pinned to node " << t.node
                            << " outside the torus");
    for (int dep : t.local_dependents) {
      ANTON_CHECK_MSG(graph.task(dep).node == t.node,
                      "sharded execution requires node-local dependents; "
                      "task " << i << " releases task " << dep
                              << " on another node without a message");
    }
    if (!t.sends.empty() || !t.mcast_dependents.empty()) {
      ++shard_senders_[static_cast<size_t>(node_shard_[static_cast<size_t>(t.node)])];
      ++total_senders;
    }
  }
  for (int s = 0; s < p; ++s) {
    outbox_[static_cast<size_t>(s)].init(shard_senders_[static_cast<size_t>(s)]);
  }
  send_gather_.reserve(total_senders);

  torus.set_shard_lanes(p);
  engine.set_barrier_hook(&Executor::barrier_hook, this);

  const sim::SimTime t0 = engine.queue(0).now();
  t0_ = t0;
  // Seed all zero-dependency tasks in ascending id — a shard-count
  // independent insertion order into every shard queue.
  for (int i = 0; i < graph.num_tasks(); ++i) {
    if (graph.task(i).deps == 0) ready(i, -1);
  }
  const sim::SimTime t_end = engine.run();
  engine.set_barrier_hook(nullptr, nullptr);

  // Fold the single-writer lanes into the serial accumulators, in ascending
  // node order so the float sums are shard-count independent.
  tasks_executed_ = 0;
  for (const auto& st : shard_tasks_) tasks_executed_ += st.v;
  const size_t num_phases = phase_busy_.size();
  for (int node = 0; node < num_nodes; ++node) {
    for (size_t ph = 0; ph < num_phases; ++ph) {
      const size_t k = static_cast<size_t>(node) * num_phases + ph;
      phase_busy_[ph] += node_phase_busy_[k];
      phase_end_[ph] = std::max(phase_end_[ph], node_phase_end_[k]);
    }
  }

  // Conservation across shards: every planned packet delivered (lanes were
  // folded at the final barrier), every outbox and engine mailbox balanced,
  // every shard arena recycled.
  torus.check_conservation();
  for (const auto& o : outbox_) {
    ANTON_CHECK_MSG(o.empty() && o.enqueued() == o.drained(),
                    "executor outbox imbalance: " << o.enqueued()
                        << " enqueued, " << o.drained() << " drained");
  }
  engine.check_mailbox_balance();
  engine.check_arenas();
  torus.set_shard_lanes(0);

  return finalize(t0, t_end);
}

// Barrier-time planning (coordinating thread, shards idle).  Completion
// records are sorted by (completion time, node, per-node seq) — all
// shard-count independent — and their sends planned in that order against
// the shared link state, so the torus evolves exactly as it would under one
// shard.  Window monotonicity makes the order globally time-sorted across
// barriers: a record drained at barrier k completed before w_end(k), and
// every later record completes at or after w_end(k).
void Executor::drain_outboxes() {
  send_gather_.clear();
  for (auto& o : outbox_) {
    while (!o.empty()) {
      send_gather_.push_back(  // anton-lint: allow(hot-alloc) amortized
          o.front());
      o.pop();
    }
    ANTON_CHECK_MSG(o.enqueued() == o.drained(),
                    "executor outbox imbalance at barrier: " << o.enqueued()
                        << " enqueued, " << o.drained() << " drained");
  }
  std::sort(send_gather_.begin(), send_gather_.end(),
            [](const SendRec& a, const SendRec& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.node != b.node) return a.node < b.node;
              return a.seq < b.seq;
            });
  for (const SendRec& rec : send_gather_) {
    const TaskGraph::Task& t = graph_->task(rec.task);
    for (const auto& s : t.sends) {
      const int dst_task = s.dst_task;
      const int dst_node = graph_->task(dst_task).node;
      torus_->note_injected();
      const sim::SimTime deliver =
          torus_->plan_unicast_at(rec.t, t.node, dst_node, s.bytes);
      queue_for(dst_node).schedule_at(
          deliver,
          [this, dst_task, id = static_cast<int>(rec.task),
           lane = node_shard_[static_cast<size_t>(dst_node)]] {
            torus_->note_delivered(lane);
            notify(dst_task, id);
          });
    }
    if (!t.mcast_dependents.empty()) {
      mcast_nodes_.clear();
      for (int dep : t.mcast_dependents) {
        mcast_nodes_.push_back(  // anton-lint: allow(hot-alloc) amortized
            graph_->task(dep).node);
      }
      torus_->plan_multicast_at(rec.t, t.node, mcast_nodes_, t.mcast_bytes);
      for (size_t i = 0; i < t.mcast_dependents.size(); ++i) {
        const int dst_task = t.mcast_dependents[i];
        const int dst_node = graph_->task(dst_task).node;
        torus_->note_injected();
        queue_for(dst_node).schedule_at(
            torus_->mcast_deliver_time(i),
            [this, dst_task, id = static_cast<int>(rec.task),
             lane = node_shard_[static_cast<size_t>(dst_node)]] {
              torus_->note_delivered(lane);
              notify(dst_task, id);
            });
      }
    }
  }
  // Delivered lanes written by the last window fold here, on the
  // coordinator, so packets_delivered() is current at every barrier.
  torus_->fold_shard_lanes();
}

ExecStats execute(TaskGraph& graph, const arch::MachineConfig& config,
                  noc::Torus& torus, sim::EventQueue& queue,
                  obs::TraceWriter* trace, int trace_pid) {
  Executor ex;
  return ex.run(graph, config, torus, queue, trace, trace_pid);
}

}  // namespace anton::core
