// Task graph + discrete-event executor: the machine's execution model.
//
// An MD timestep is expressed as a graph of tasks, each pinned to a node and
// a hardware unit (HTIS pairwise array, geometry-core array, or the sync/
// barrier unit).  Dependencies are either node-local (hardware counter
// decrements) or carried by NoC messages.  The executor plays the graph on
// the event queue: a task fires when its dependency counter drains, queues
// on its (node, unit) resource, runs for its busy time, then notifies
// dependents — local ones immediately, remote ones through the torus model.
//
// This is precisely the paper's "fine-grained event-driven operation": no
// global coordination, computation overlapping communication wherever the
// dependency structure allows.  Bulk-synchronous execution is expressed in
// the same graph language by inserting global barrier tasks between phases.
//
// The Executor is a persistent object: its per-task bookkeeping vectors and
// phase accumulators (interned to dense ids at graph-build time) are reused
// across run() calls, so replaying a same-shaped graph — the steady state of
// AntonMachine::run and of sweep replicas — performs zero heap allocations
// on the task-release path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/config.h"
#include "noc/torus.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "sim/mailbox.h"
#include "sim/parallel_engine.h"

namespace anton::core {

enum class Unit : uint8_t {
  kHtis = 0,  // pairwise point interaction pipelines
  kGc = 1,    // geometry cores (flexible subsystem)
  kSync = 2,  // barrier/reduction engine
};
inline constexpr int kNumUnits = 3;

class TaskGraph {
 public:
  struct Send {
    int dst_task;
    double bytes;
  };

  struct Task {
    int node;
    Unit unit;
    double busy_ns;
    const char* phase;
    int phase_id;  // dense index into the graph's interned phase table
    int deps = 0;
    std::vector<int> local_dependents;
    std::vector<Send> sends;          // unicast messages fired at completion
    // Multicast: same payload to many dependents (one tree on the wire).
    std::vector<int> mcast_dependents;
    double mcast_bytes = 0;
  };

  // Returns the task id.
  int add_task(int node, Unit unit, double busy_ns, const char* phase);

  // Local dependency: `to` cannot start before `from` completes.
  void add_local_dep(int from, int to);

  // Barrier dependency: like a local dep but may cross nodes without a
  // message — used only for global barrier tasks, whose cost constant
  // already includes the reduction/broadcast traffic.
  void add_barrier_dep(int from, int to);

  // Cross-node dependency carried by a message of `bytes` from the node of
  // `from` to the node of `to`.
  void add_message(int from, int to, double bytes);

  // Multicast from `from` to all of `to` (payload travels each tree link
  // once).  All targets gain one dependency.
  void add_multicast(int from, const std::vector<int>& to, double bytes);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  const Task& task(int id) const { return tasks_.at(static_cast<size_t>(id)); }
  Task& task(int id) { return tasks_.at(static_cast<size_t>(id)); }

  // Interned phase labels (by string content; add_task assigns ids).
  int num_phases() const { return static_cast<int>(phase_names_.size()); }
  const char* phase_name(int id) const {
    return phase_names_.at(static_cast<size_t>(id));
  }

 private:
  int intern_phase(const char* phase);

  std::vector<Task> tasks_;
  std::vector<const char*> phase_names_;
};

struct ExecStats {
  double makespan_ns = 0;
  // Busy nanoseconds summed over all nodes, per phase label.
  std::map<std::string, double> phase_busy_ns;
  // Latest completion time of any task in each phase (critical-path view).
  std::map<std::string, double> phase_end_ns;
  double max_node_busy_ns = 0;   // busiest node's total compute
  double mean_node_busy_ns = 0;
  // 1 - exposed-communication fraction: how much of the makespan the
  // busiest node spent computing.
  double compute_fraction() const {
    return makespan_ns > 0 ? max_node_busy_ns / makespan_ns : 0;
  }
  uint64_t tasks_executed = 0;
  noc::NocStats noc;

  // Critical-path attribution.  The executor records, for every task, the
  // predecessor that actually released it (the final dependency to arrive,
  // or the prior occupant of its hardware unit when the unit was the
  // bottleneck), then walks back from the last-finishing task.  The walk
  // partitions the makespan exactly:
  //   makespan_ns == critical_wait_ns + sum(critical_path_ns[*])
  // critical_path_ns[phase] is time the critical path spent occupying a unit
  // in that phase (dispatch overhead included); critical_wait_ns is time it
  // spent waiting on the wire (exposed NoC latency).
  std::map<std::string, double> critical_path_ns;
  double critical_wait_ns = 0;
};

// Persistent graph executor.  One run() plays the graph to completion on
// (torus, queue); all internal buffers (dependency counters, unit/node
// bookkeeping, per-phase accumulators, multicast scratch) are retained
// between calls, so repeated runs of an equally-sized graph allocate
// nothing.  Not reentrant; the graph must outlive the call.
class Executor {
 public:
  // `torus` must have as many nodes as the graph references.
  // Deterministic.  When `trace` is non-null every task becomes a
  // complete-event span on (trace_pid, tid = node * kNumUnits + unit) named
  // after its phase.  The returned reference stays valid (and is
  // overwritten) across run() calls.
  const ExecStats& run(TaskGraph& graph, const arch::MachineConfig& config,
                       noc::Torus& torus, sim::EventQueue& queue,
                       obs::TraceWriter* trace = nullptr,
                       int trace_pid = obs::kPidMachine);

  // Sharded variant: plays the graph on a sim::ParallelEngine whose shard
  // queues partition the torus node grid (ParallelEngine::shard_of).  Every
  // per-task event runs on its node's shard; NoC sends are deferred into
  // per-shard outbox rings and planned at window barriers on the
  // coordinating thread, in canonical (completion time, node, per-node seq)
  // order, against the shared torus link state — so link contention, packet
  // conservation and all returned statistics are bitwise identical at every
  // shard count (including 1).  Requires event-driven sync (BSP's barrier
  // deps cross nodes without messages, which has no sound lookahead) and no
  // TraceWriter (not thread-safe).  The engine must be quiescent on entry;
  // the caller owns engine reset between runs.
  const ExecStats& run_sharded(TaskGraph& graph,
                               const arch::MachineConfig& config,
                               noc::Torus& torus, sim::ParallelEngine& engine);

  const ExecStats& stats() const { return stats_; }

 private:
  double dispatch_overhead(Unit unit) const;
  void complete(int id);
  void notify(int id, int from);
  void ready(int id, int released_by);
  void emit_span(const TaskGraph::Task& t, size_t unit_key,
                 sim::SimTime dispatch, sim::SimTime end);

  // The queue `node`'s events execute on: the bound serial queue, or the
  // node's shard queue when running under a parallel engine.
  sim::EventQueue& queue_for(int node) {
    return engine_ == nullptr
               ? *queue_
               : engine_->queue(node_shard_[static_cast<size_t>(node)]);
  }

  // Shared set-up / tear-down halves of run() and run_sharded().
  void prepare(TaskGraph& graph, const arch::MachineConfig& config,
               noc::Torus& torus);
  const ExecStats& finalize(sim::SimTime t0, sim::SimTime t_end);

  // Window-barrier callback (coordinating thread): drains the per-shard
  // outboxes, sorts the completion records canonically, plans their NoC
  // traffic and schedules the deliveries into the destination shards.
  void drain_outboxes();
  static void barrier_hook(void* ctx) {
    static_cast<Executor*>(ctx)->drain_outboxes();
  }

  // Bound for the duration of run().
  TaskGraph* graph_ = nullptr;
  const arch::MachineConfig* config_ = nullptr;
  noc::Torus* torus_ = nullptr;
  sim::EventQueue* queue_ = nullptr;
  sim::ParallelEngine* engine_ = nullptr;
  obs::TraceWriter* trace_ = nullptr;
  int trace_pid_ = obs::kPidMachine;
  sim::SimTime t0_ = 0;

  // Persistent per-task / per-unit bookkeeping (sized on each run, reused).
  std::vector<int> deps_left_;
  std::vector<sim::SimTime> unit_free_;  // (node * kNumUnits + unit)
  std::vector<double> node_busy_;
  std::vector<sim::SimTime> dispatch_time_;
  std::vector<sim::SimTime> end_time_;
  std::vector<int> crit_pred_;       // releasing predecessor (-1 for seeds)
  std::vector<int> unit_last_task_;  // prior occupant per (node, unit)
  std::vector<bool> tid_named_;
  std::vector<int> mcast_nodes_;     // multicast destination scratch
  // Per-phase accumulation by interned id (folded into the stats_ maps —
  // which stay warm, values zeroed in place — after the queue drains).
  std::vector<double> phase_busy_;
  std::vector<double> phase_end_;
  std::vector<double> crit_phase_;
  std::vector<bool> crit_touched_;
  uint64_t tasks_executed_ = 0;

  // ---- Sharded-run state (unused when engine_ == nullptr) ----------------
  // A task completion whose sends must be planned at the next barrier.  The
  // sort key (t, node, seq) is shard-count independent: t and node come from
  // the graph/simulation, seq is the node-local completion order (itself
  // deterministic by the engine's reproducibility argument).
  struct SendRec {
    sim::SimTime t;  // completion time of the sending task
    uint64_t seq;    // per-node completion sequence
    int32_t task;
    uint32_t node;
  };
  struct alignas(64) PadCount {
    uint64_t v = 0;
  };
  std::vector<int> node_shard_;         // node -> owning shard
  std::vector<uint64_t> node_send_seq_; // per-node completion counters
  std::vector<sim::ShardRing<SendRec>> outbox_;  // one per shard
  std::vector<SendRec> send_gather_;    // barrier drain scratch (retained)
  std::vector<size_t> shard_senders_;   // outbox sizing scratch (retained)
  // Per-node × phase accumulators (single writer per node), folded in
  // ascending node order after the run so the floating-point sums are
  // shard-count independent.
  std::vector<double> node_phase_busy_;
  std::vector<double> node_phase_end_;
  std::vector<PadCount> shard_tasks_;   // tasks executed, per shard

  ExecStats stats_;
};

// Convenience wrapper: executes on a throwaway Executor and copies the
// stats out.  Prefer a persistent Executor anywhere the graph replays.
ExecStats execute(TaskGraph& graph, const arch::MachineConfig& config,
                  noc::Torus& torus, sim::EventQueue& queue,
                  obs::TraceWriter* trace = nullptr,
                  int trace_pid = obs::kPidMachine);

}  // namespace anton::core
