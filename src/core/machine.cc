#include "core/machine.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "md/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace anton::core {

void torus_dims(int nodes, int* nx, int* ny, int* nz) {
  ANTON_CHECK_MSG(nodes >= 1, "need at least one node");
  // Brute-force near-cubic factorisation: minimise the max dimension, then
  // the surface area.
  int best[3] = {nodes, 1, 1};
  double best_score = 1e300;
  for (int a = 1; a * a * a <= nodes; ++a) {
    if (nodes % a != 0) continue;
    const int rest = nodes / a;
    for (int b = a; b * b <= rest; ++b) {
      if (rest % b != 0) continue;
      const int c = rest / b;
      const double score = static_cast<double>(a) * b + static_cast<double>(b) * c +
                           static_cast<double>(a) * c;
      if (score < best_score) {
        best_score = score;
        best[0] = a;
        best[1] = b;
        best[2] = c;
      }
    }
  }
  // Largest dimension first is conventional for torus wiring diagrams, but
  // the decomposition prefers matching axes to the (cubic) box; order is
  // irrelevant for cubic boxes — return ascending.
  *nx = best[0];
  *ny = best[1];
  *nz = best[2];
}

namespace {

// Names the pid tracks a machine run contributes to a shared trace.
void name_trace_tracks(obs::TraceWriter* trace) {
  if (trace == nullptr) return;
  trace->process_name(obs::kPidMd, "md engine (wall clock)");
  trace->process_name(obs::kPidMachine, "machine model (sim time)");
  trace->process_name(obs::kPidNoc, "torus noc (sim time)");
  trace->process_name(obs::kPidQueue, "event queue (sim time)");
}

}  // namespace

PerfReport AntonMachine::estimate(const System& system, double dt_fs,
                                  int respa_k) const {
  ANTON_CHECK(respa_k >= 1);
  const Workload w = Workload::build(system, *config_);
  PerfReport r;
  r.machine = config_->name;
  r.nodes = nodes();
  r.atoms = system.num_atoms();
  r.dt_fs = dt_fs;
  r.respa_k = respa_k;

  obs::MetricsRegistry reg;
  std::unique_ptr<obs::TraceWriter> trace =
      obs::TraceWriter::open(config_->trace_path);
  name_trace_tracks(trace.get());
  const bool telemetered = trace != nullptr || !config_->metrics_path.empty();

  StepOptions full{.include_long_range = true};
  StepOptions part{.include_long_range = false};
  if (telemetered) {
    full.metrics = part.metrics = &reg;
    full.trace = part.trace = trace.get();
  }
  r.full_step = simulate_step(w, *config_, full);
  // Lay the short step after the full one on the trace timeline.
  part.trace_ts_offset_us = r.full_step.step_ns * 1e-3;
  r.short_step = simulate_step(w, *config_, part);

  if (!config_->metrics_path.empty()) reg.save_json(config_->metrics_path);
  return r;
}

PerfReport AntonMachine::run(System& system, const MdParams& md_params,
                             int steps, int workload_refresh) const {
  ANTON_CHECK(steps >= 1 && workload_refresh >= 1);
  md::Simulation sim(system, md_params);

  PerfReport r;
  r.machine = config_->name;
  r.nodes = nodes();
  r.atoms = system.num_atoms();
  r.dt_fs = md_params.dt_fs;
  r.respa_k = md_params.respa_k;

  // One registry and one trace for the whole run: the functional MD engine
  // shares them (wall-clock spans on its own pid) with the machine model
  // (sim-time spans), so a single Perfetto load shows both clock domains.
  obs::MetricsRegistry reg;
  std::unique_ptr<obs::TraceWriter> trace =
      obs::TraceWriter::open(config_->trace_path);
  name_trace_tracks(trace.get());
  const bool telemetered = trace != nullptr || !config_->metrics_path.empty();
  if (telemetered) sim.use_telemetry(&reg, trace.get());

  double full_ns = 0, short_ns = 0;
  int full_n = 0, short_n = 0;
  double sim_time_us = 0;  // trace-timeline cursor over simulated steps
  // Between workload refreshes the step graph is identical, so the runners
  // persist and replay allocation-free; they rebuild only when the
  // decomposition does.
  std::unique_ptr<TimestepRunner> full_runner, short_runner;
  for (int s = 0; s < steps; ++s) {
    if (s % workload_refresh == 0) {
      const Workload w = Workload::build(sim.system(), *config_);
      StepOptions full_opts{.include_long_range = true};
      StepOptions short_opts{.include_long_range = false};
      if (telemetered) {
        full_opts.metrics = short_opts.metrics = &reg;
        full_opts.trace = short_opts.trace = trace.get();
      }
      full_runner = std::make_unique<TimestepRunner>(w, *config_, full_opts);
      short_runner =
          md_params.respa_k > 1
              ? std::make_unique<TimestepRunner>(w, *config_, short_opts)
              : nullptr;
    }
    const bool full = (s % md_params.respa_k == 0);
    TimestepRunner& runner = full ? *full_runner : *short_runner;
    if (telemetered) runner.set_trace_offset_us(sim_time_us);
    runner.run_timestep();
    const StepTiming t = runner.timing();
    sim_time_us += t.step_ns * 1e-3;
    if (full) {
      full_ns += t.step_ns;
      ++full_n;
      r.full_step = t;
    } else {
      short_ns += t.step_ns;
      ++short_n;
      r.short_step = t;
    }
    sim.step(1);
  }
  // Average over the measured steps; if no short step ran (respa_k == 1),
  // mirror the full-step time so avg_step_ns() stays meaningful.
  if (full_n > 0) r.full_step.step_ns = full_ns / full_n;
  if (short_n > 0) {
    r.short_step.step_ns = short_ns / short_n;
  } else {
    r.short_step.step_ns = r.full_step.step_ns;
  }
  // Copy the evolved state back out.
  system = sim.system();
  if (telemetered) sim.use_telemetry(nullptr, nullptr);
  if (!config_->metrics_path.empty()) reg.save_json(config_->metrics_path);
  return r;
}

}  // namespace anton::core
