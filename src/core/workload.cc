#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "fft/fft.h"
#include "geom/cells.h"

namespace anton::core {

namespace {

// Packs a node-grid offset into a map key.
int64_t pack_offset(int dx, int dy, int dz) {
  return (static_cast<int64_t>(dx + 64) << 14) |
         (static_cast<int64_t>(dy + 64) << 7) |
         static_cast<int64_t>(dz + 64);
}

// Periodic node-grid delta from a to b, wrapped into (-n/2, n/2].
int wrap_delta(int a, int b, int n) {
  int d = (b - a) % n;
  if (d > n / 2) d -= n;
  if (d < -(n - 1) / 2) d += n;
  return d;
}

bool positive_half(int dx, int dy, int dz) {
  return dz > 0 || (dz == 0 && dy > 0) || (dz == 0 && dy == 0 && dx > 0);
}

}  // namespace

Workload Workload::build(const System& system,
                         const arch::MachineConfig& config) {
  const double mesh_spacing = config.mesh_spacing;
  Workload w;
  const Box& box = system.box();
  const auto& nc = config.noc;
  w.decomp_ =
      std::make_unique<DomainDecomp>(box, nc.nx, nc.ny, nc.nz);
  const DomainDecomp& dd = *w.decomp_;
  const int P = dd.num_nodes();
  w.nodes_.assign(static_cast<size_t>(P), NodeWork{});
  w.total_atoms_ = system.num_atoms();

  // --- per-atom node assignment -------------------------------------------
  const auto pos = system.positions();
  std::vector<int> owner(pos.size());
  for (size_t i = 0; i < pos.size(); ++i) {
    owner[i] = dd.node_of(pos[i]);
    w.nodes_[static_cast<size_t>(owner[i])].atoms++;
  }

  // --- exact pair counting with half-shell tile assignment ----------------
  const double rc = config.machine_cutoff;
  ANTON_CHECK_MSG(rc <= box.max_cutoff(),
                  "machine cutoff " << rc << " exceeds minimum-image limit "
                                    << box.max_cutoff());
  CellGrid grid(box, rc);
  grid.bin(pos);
  const double rc2 = rc * rc;
  const bool tiny = grid.nx() < 3 || grid.ny() < 3 || grid.nz() < 3;

  // (node, packed_offset) -> (pairs, distinct remote atoms).
  struct TileCount {
    int64_t pairs = 0;
    int64_t remote_atoms = 0;
  };
  std::vector<std::map<int64_t, TileCount>> tile_pairs(
      static_cast<size_t>(P));
  // First-touch stamps: last (tile key, owner) that counted each atom as
  // remote; lets us count distinct remote atoms in O(1) per pair.
  std::vector<int64_t> remote_stamp(pos.size(), -1);

  auto count_pair = [&](int i, int j) {
    const int a = owner[static_cast<size_t>(i)];
    const int b = owner[static_cast<size_t>(j)];
    if (a == b) {
      w.nodes_[static_cast<size_t>(a)].internal_pairs++;
      return;
    }
    int ax, ay, az, bx, by, bz;
    dd.coords(a, &ax, &ay, &az);
    dd.coords(b, &bx, &by, &bz);
    int dx = wrap_delta(ax, bx, dd.nx());
    int dy = wrap_delta(ay, by, dd.ny());
    int dz = wrap_delta(az, bz, dd.nz());
    int owner_rank = a;
    int remote_atom = j;
    if (!positive_half(dx, dy, dz)) {
      owner_rank = b;
      remote_atom = i;
      dx = -dx;
      dy = -dy;
      dz = -dz;
    }
    const int64_t key = pack_offset(dx, dy, dz);
    TileCount& tc = tile_pairs[static_cast<size_t>(owner_rank)][key];
    tc.pairs++;
    const int64_t stamp = key * P + owner_rank;
    if (remote_stamp[static_cast<size_t>(remote_atom)] != stamp) {
      remote_stamp[static_cast<size_t>(remote_atom)] = stamp;
      tc.remote_atoms++;
    }
  };

  if (tiny) {
    const int n = static_cast<int>(pos.size());
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (box.distance2(pos[static_cast<size_t>(i)],
                          pos[static_cast<size_t>(j)]) < rc2) {
          count_pair(i, j);
        }
      }
    }
  } else {
    for (int c = 0; c < grid.num_cells(); ++c) {
      const auto atoms_c = grid.cell_atoms(c);
      for (int ncell : grid.half_stencil(c)) {
        const auto atoms_n = grid.cell_atoms(ncell);
        for (int a : atoms_c) {
          for (int b : atoms_n) {
            if (ncell == c && b <= a) continue;
            if (box.distance2(pos[static_cast<size_t>(a)],
                              pos[static_cast<size_t>(b)]) < rc2) {
              count_pair(std::min(a, b), std::max(a, b));
            }
          }
        }
      }
    }
  }

  // Canonical offset table (union across nodes) + per-node tiles.
  std::map<int64_t, int> offset_index;
  for (int v = 0; v < P; ++v) {
    for (const auto& [key, tc] : tile_pairs[static_cast<size_t>(v)]) {
      if (!offset_index.count(key)) {
        const int idx = static_cast<int>(w.tile_offsets_.size());
        offset_index[key] = idx;
        const int dx = static_cast<int>((key >> 14) & 0x7F) - 64;
        const int dy = static_cast<int>((key >> 7) & 0x7F) - 64;
        const int dz = static_cast<int>(key & 0x7F) - 64;
        w.tile_offsets_.push_back({dx, dy, dz});
      }
      w.nodes_[static_cast<size_t>(v)].tiles.push_back(
          {offset_index[key], tc.pairs, tc.remote_atoms});
    }
  }

  // Position multicast destinations: node u needs v's positions when u owns
  // a tile whose offset points from u to v, i.e. v = u + offset.
  std::vector<std::set<int>> dests(static_cast<size_t>(P));
  for (int u = 0; u < P; ++u) {
    for (const auto& t : w.nodes_[static_cast<size_t>(u)].tiles) {
      const NodeOffset& off =
          w.tile_offsets_[static_cast<size_t>(t.offset_index)];
      const int v = dd.neighbor_rank(u, off);
      if (v != u) dests[static_cast<size_t>(v)].insert(u);
    }
  }
  for (int v = 0; v < P; ++v) {
    auto& nd = w.nodes_[static_cast<size_t>(v)];
    nd.pos_destinations.assign(dests[static_cast<size_t>(v)].begin(),
                               dests[static_cast<size_t>(v)].end());
  }

  // --- bonded terms (owner = node of first atom) --------------------------
  const Topology& top = system.topology();
  auto all_local = [&](std::initializer_list<int> atoms) {
    const int o = owner[static_cast<size_t>(*atoms.begin())];
    for (int a : atoms) {
      if (owner[static_cast<size_t>(a)] != o) return false;
    }
    return true;
  };
  for (const auto& b : top.bonds()) {
    auto& nd = w.nodes_[static_cast<size_t>(owner[static_cast<size_t>(b.i)])];
    (all_local({b.i, b.j}) ? nd.bonded_local : nd.bonded_boundary).bonds++;
  }
  for (const auto& a : top.angles()) {
    auto& nd = w.nodes_[static_cast<size_t>(owner[static_cast<size_t>(a.i)])];
    (all_local({a.i, a.j, a.k}) ? nd.bonded_local : nd.bonded_boundary)
        .angles++;
  }
  for (const auto& d : top.dihedrals()) {
    auto& nd = w.nodes_[static_cast<size_t>(owner[static_cast<size_t>(d.i)])];
    (all_local({d.i, d.j, d.k, d.l}) ? nd.bonded_local : nd.bonded_boundary)
        .dihedrals++;
  }
  for (const auto& p : top.pairs14()) {
    auto& nd = w.nodes_[static_cast<size_t>(owner[static_cast<size_t>(p.i)])];
    (all_local({p.i, p.j}) ? nd.bonded_local : nd.bonded_boundary).pairs14++;
  }
  for (const auto& c : top.constraints()) {
    w.nodes_[static_cast<size_t>(owner[static_cast<size_t>(c.i)])]
        .constraints++;
  }

  // --- mesh geometry -------------------------------------------------------
  // Nearest power of two (geometric rounding) keeps the realised spacing
  // close to the target instead of up to 2x finer.
  for (int axis = 0; axis < 3; ++axis) {
    const double l = box.lengths()[axis];
    const double want = std::max(4.0, l / mesh_spacing);
    const int up = next_power_of_two(static_cast<int>(std::ceil(want)));
    const int down = std::max(4, up / 2);
    w.mesh_dim_[axis] = (want / down <= up / want) ? down : up;
  }
  // The spreading Gaussian's width tracks the mesh spacing, so the support
  // is a fixed radius in cells.
  const int r = config.spread_support_cells;
  w.spread_support_points_ = (2 * r + 1) * (2 * r + 1) * (2 * r + 1);
  return w;
}

int64_t Workload::total_pairs() const {
  int64_t s = 0;
  for (const auto& n : nodes_) s += n.total_pairs();
  return s;
}

int Workload::max_atoms_per_node() const {
  int m = 0;
  for (const auto& n : nodes_) m = std::max(m, n.atoms);
  return m;
}

double Workload::spread_halo_bytes(const arch::MachineConfig& config) const {
  // Halo depth = spread radius in cells; each face exchanges
  // depth * (brick cross-section) mesh points.
  const int P = num_nodes();
  const double brick_points = static_cast<double>(mesh_points_total()) / P;
  const double cross_section = std::pow(brick_points, 2.0 / 3.0);
  const double depth =
      std::cbrt(static_cast<double>(spread_support_points_)) / 2.0;
  return depth * cross_section * config.bytes_per_mesh_point;
}

}  // namespace anton::core
