#include "core/timestep.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <map>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.h"

namespace anton::core {

namespace {

// Phase labels (static storage; TaskGraph keeps const char*).
constexpr const char* kPosExport = "pos_export";
constexpr const char* kImport = "import";
constexpr const char* kPairLocal = "pair_local";
constexpr const char* kPairTile = "pair_tile";
constexpr const char* kForceReturn = "force_return";
constexpr const char* kBonded = "bonded";
constexpr const char* kSpread = "spread";
constexpr const char* kFft = "fft";
constexpr const char* kInterp = "interp";
constexpr const char* kIntegrate = "integrate";
constexpr const char* kConstrain = "constrain";
constexpr const char* kMigrate = "migrate";
constexpr const char* kBarrier = "barrier";

// Face-neighbour ranks (6) of a node in the decomposition grid.
std::vector<int> face_neighbors(const DomainDecomp& dd, int rank) {
  std::vector<int> out;
  static const NodeOffset kFaces[6] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                                       {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
  for (const auto& f : kFaces) {
    const int n = dd.neighbor_rank(rank, f);
    if (n != rank && std::find(out.begin(), out.end(), n) == out.end()) {
      out.push_back(n);
    }
  }
  return out;
}

}  // namespace

double barrier_cost_ns(const arch::MachineConfig& config) {
  const auto& n = config.noc;
  const int depth = n.nx / 2 + n.ny / 2 + n.nz / 2;  // torus radius
  return config.barrier_base_ns +
         2.0 * depth * n.hop_latency_ns;  // reduce + broadcast
}

TaskGraph build_step_graph(const Workload& w,
                           const arch::MachineConfig& config,
                           bool include_long_range) {
  const DomainDecomp& dd = w.decomp();
  const int P = w.num_nodes();
  const bool bsp = config.sync == arch::SyncModel::kBulkSynchronous;
  const bool lr = include_long_range;

  TaskGraph g;

  // --- create per-node tasks ----------------------------------------------
  std::vector<int> t_pos(P), t_pair_local(P), t_bonded_local(P);
  std::vector<int> t_bonded_boundary(P), t_integrate(P), t_constrain(P);
  std::vector<int> t_migrate(P), t_end(P);
  std::vector<int> t_spread(P), t_interp(P);
  std::vector<std::array<int, 6>> t_fft(static_cast<size_t>(P));
  std::vector<std::vector<int>> tile_tasks(static_cast<size_t>(P));

  auto bonded_cycles = [&](const BondedCounts& b) {
    return b.bonds * config.cycles_per_bond +
           b.angles * config.cycles_per_angle +
           b.dihedrals * config.cycles_per_dihedral +
           b.pairs14 * config.cycles_per_pair14;
  };

  const double fft_stage_cycles =
      static_cast<double>(w.mesh_points_per_node()) *
      std::log2(std::max(
          2.0, static_cast<double>(std::max(
                   {w.mesh_dim(0), w.mesh_dim(1), w.mesh_dim(2)})))) *
      config.cycles_per_fft_point;

  for (int v = 0; v < P; ++v) {
    const NodeWork& nw = w.node(v);
    // Position packing/export (GC streams positions to the network).
    t_pos[v] = g.add_task(v, Unit::kGc, config.gc_time_ns(2.0 * nw.atoms),
                          kPosExport);
    // Local pairwise interactions (HTIS).
    t_pair_local[v] =
        g.add_task(v, Unit::kHtis,
                   config.htis_time_ns(static_cast<double>(nw.internal_pairs)),
                   kPairLocal);
    // Bonded terms.
    t_bonded_local[v] = g.add_task(
        v, Unit::kGc, config.gc_time_ns(bonded_cycles(nw.bonded_local)),
        kBonded);
    t_bonded_boundary[v] = g.add_task(
        v, Unit::kGc, config.gc_time_ns(bonded_cycles(nw.bonded_boundary)),
        kBonded);
    // Integration + constraints.
    t_integrate[v] = g.add_task(
        v, Unit::kGc,
        config.gc_time_ns(nw.atoms * config.cycles_per_integrate_atom),
        kIntegrate);
    t_constrain[v] = g.add_task(
        v, Unit::kGc,
        config.gc_time_ns(static_cast<double>(nw.constraints) *
                          config.constraint_iterations *
                          config.cycles_per_constraint_iter),
        kConstrain);
    t_migrate[v] =
        g.add_task(v, Unit::kGc, config.gc_time_ns(4.0 * 30.0), kMigrate);
    t_end[v] = g.add_task(v, Unit::kSync, 0.0, "step_end");

    if (lr) {
      // Charge spreading and force interpolation run on the HTIS: each
      // (atom, mesh-point) pair is one pairwise interaction, exactly as on
      // the real machines.
      const double grid_interactions =
          static_cast<double>(nw.atoms) * w.spread_support_points();
      t_spread[v] = g.add_task(v, Unit::kHtis,
                               config.htis_time_ns(grid_interactions),
                               kSpread);
      for (int s = 0; s < 6; ++s) {
        t_fft[static_cast<size_t>(v)][static_cast<size_t>(s)] =
            g.add_task(v, Unit::kGc, config.gc_time_ns(fft_stage_cycles), kFft);
      }
      t_interp[v] = g.add_task(v, Unit::kHtis,
                               config.htis_time_ns(grid_interactions),
                               kInterp);
    }
  }

  // --- position multicast + import proxies --------------------------------
  // For each node v that exports positions, one zero-cost import proxy per
  // destination node; tiles and boundary bonded work hang off the proxies.
  // proxy_on[u][v] = proxy task on node u for positions arriving from v.
  std::vector<std::map<int, int>> proxy_on(static_cast<size_t>(P));
  for (int v = 0; v < P; ++v) {
    const NodeWork& nw = w.node(v);
    if (nw.pos_destinations.empty()) continue;
    std::vector<int> proxies;
    proxies.reserve(nw.pos_destinations.size());
    for (int u : nw.pos_destinations) {
      const int proxy = g.add_task(u, Unit::kSync, 0.0, kImport);
      proxy_on[static_cast<size_t>(u)][v] = proxy;
      proxies.push_back(proxy);
    }
    const double pos_bytes = nw.atoms * config.bytes_per_position;
    if (config.use_multicast) {
      g.add_multicast(t_pos[v], proxies, pos_bytes);
    } else {
      for (int proxy : proxies) g.add_message(t_pos[v], proxy, pos_bytes);
    }
  }

  // --- pairwise tiles + force return --------------------------------------
  // Incoming force-return proxies per node (for BSP barrier bookkeeping).
  std::vector<std::vector<int>> freturn_proxies(static_cast<size_t>(P));
  for (int u = 0; u < P; ++u) {
    const NodeWork& nw = w.node(u);
    for (const auto& tile : nw.tiles) {
      const NodeOffset& off =
          w.tile_offsets()[static_cast<size_t>(tile.offset_index)];
      const int v = dd.neighbor_rank(u, off);  // remote partner
      const int t_tile = g.add_task(
          u, Unit::kHtis,
          config.htis_time_ns(static_cast<double>(tile.pairs)), kPairTile);
      tile_tasks[static_cast<size_t>(u)].push_back(t_tile);
      // The tile needs v's positions.
      const auto it = proxy_on[static_cast<size_t>(u)].find(v);
      ANTON_CHECK_MSG(it != proxy_on[static_cast<size_t>(u)].end(),
                      "tile without matching import");
      g.add_local_dep(it->second, t_tile);
      // Local force contribution feeds integration directly.
      g.add_local_dep(t_tile, t_integrate[u]);
      // Remote forces return to v.
      const int fprox = g.add_task(v, Unit::kSync, 0.0, kForceReturn);
      freturn_proxies[static_cast<size_t>(v)].push_back(fprox);
      g.add_message(t_tile, fprox,
                    static_cast<double>(tile.remote_atoms) *
                        config.bytes_per_force);
      g.add_local_dep(fprox, t_integrate[v]);
    }
  }

  // --- local dependencies --------------------------------------------------
  for (int v = 0; v < P; ++v) {
    // Boundary bonded terms need every import this node receives.
    for (const auto& [src, proxy] : proxy_on[static_cast<size_t>(v)]) {
      (void)src;
      g.add_local_dep(proxy, t_bonded_boundary[v]);
    }
    g.add_local_dep(t_pair_local[v], t_integrate[v]);
    g.add_local_dep(t_bonded_local[v], t_integrate[v]);
    g.add_local_dep(t_bonded_boundary[v], t_integrate[v]);
    g.add_local_dep(t_integrate[v], t_constrain[v]);
    g.add_local_dep(t_constrain[v], t_migrate[v]);
    g.add_local_dep(t_migrate[v], t_end[v]);
  }

  // --- migration messages (small, face neighbours) -------------------------
  for (int v = 0; v < P; ++v) {
    for (int n : face_neighbors(dd, v)) {
      g.add_message(t_migrate[v], t_end[n],
                    2.0 * config.bytes_per_migrating_atom);
    }
  }

  // --- long-range chain -----------------------------------------------------
  if (lr) {
    const double halo_bytes = w.spread_halo_bytes(config);
    const auto& nc = config.noc;
    const double local_mesh_bytes =
        static_cast<double>(w.mesh_points_per_node()) *
        config.bytes_per_mesh_point;

    for (int v = 0; v < P; ++v) {
      auto& fft = t_fft[static_cast<size_t>(v)];
      // Spread -> halo exchange -> stage X.
      g.add_local_dep(t_spread[v], fft[0]);
      for (int n : face_neighbors(dd, v)) {
        g.add_message(t_spread[v], t_fft[static_cast<size_t>(n)][0],
                      halo_bytes);
      }
      // Forward: X -> (x transpose) -> Y -> (y transpose) -> Z(+multiply).
      // Inverse: Z -> (y transpose) -> Y -> (x transpose) -> X.
      g.add_local_dep(fft[0], fft[1]);
      g.add_local_dep(fft[1], fft[2]);
      g.add_local_dep(fft[2], fft[3]);
      g.add_local_dep(fft[3], fft[4]);
      g.add_local_dep(fft[4], fft[5]);

      int vx, vy, vz;
      dd.coords(v, &vx, &vy, &vz);
      // x-row all-to-all feeding stage 1, and again feeding stage 5.
      for (int x = 0; x < nc.nx; ++x) {
        if (x == vx) continue;
        const int peer = dd.rank(x, vy, vz);
        const double bytes = local_mesh_bytes / std::max(1, nc.nx);
        g.add_message(fft[0], t_fft[static_cast<size_t>(peer)][1], bytes);
        g.add_message(fft[4], t_fft[static_cast<size_t>(peer)][5], bytes);
      }
      // y-column all-to-all feeding stage 2 and stage 4.
      for (int y = 0; y < nc.ny; ++y) {
        if (y == vy) continue;
        const int peer = dd.rank(vx, y, vz);
        const double bytes = local_mesh_bytes / std::max(1, nc.ny);
        g.add_message(fft[1], t_fft[static_cast<size_t>(peer)][2], bytes);
        g.add_message(fft[3], t_fft[static_cast<size_t>(peer)][4], bytes);
      }
      // Interpolation needs the inverse transform plus a potential halo.
      g.add_local_dep(fft[5], t_interp[v]);
      for (int n : face_neighbors(dd, v)) {
        g.add_message(fft[5], t_interp[n], halo_bytes);
      }
      g.add_local_dep(t_interp[v], t_integrate[v]);
    }
  }

  // --- BSP barriers ---------------------------------------------------------
  if (bsp) {
    const double cost = barrier_cost_ns(config);
    auto make_barrier = [&]() {
      return g.add_task(0, Unit::kSync, cost, kBarrier);
    };
    // B1: after position exchange, before anything that consumes imports.
    const int b1 = make_barrier();
    for (int v = 0; v < P; ++v) {
      g.add_barrier_dep(t_pos[v], b1);
      for (const auto& [src, proxy] : proxy_on[static_cast<size_t>(v)]) {
        (void)src;
        g.add_barrier_dep(proxy, b1);
      }
    }
    for (int v = 0; v < P; ++v) {
      g.add_barrier_dep(b1, t_pair_local[v]);
      for (int t : tile_tasks[static_cast<size_t>(v)]) {
        g.add_barrier_dep(b1, t);
      }
      g.add_barrier_dep(b1, t_bonded_local[v]);
      g.add_barrier_dep(b1, t_bonded_boundary[v]);
      if (lr) g.add_barrier_dep(b1, t_spread[v]);
    }

    // B2: after all force computation and force returns, before integration.
    const int b2 = make_barrier();
    for (int v = 0; v < P; ++v) {
      g.add_barrier_dep(t_pair_local[v], b2);
      for (int t : tile_tasks[static_cast<size_t>(v)]) {
        g.add_barrier_dep(t, b2);
      }
      for (int fp : freturn_proxies[static_cast<size_t>(v)]) {
        g.add_barrier_dep(fp, b2);
      }
      g.add_barrier_dep(t_bonded_local[v], b2);
      g.add_barrier_dep(t_bonded_boundary[v], b2);
      if (lr) g.add_barrier_dep(t_interp[v], b2);
    }
    for (int v = 0; v < P; ++v) {
      g.add_barrier_dep(b2, t_integrate[v]);
    }

    // FFT transposes each behave like phases of their own: barrier between
    // consecutive FFT stages.
    if (lr) {
      for (int s = 0; s < 5; ++s) {
        const int bf = make_barrier();
        for (int v = 0; v < P; ++v) {
          g.add_barrier_dep(t_fft[static_cast<size_t>(v)][static_cast<size_t>(s)],
                            bf);
          g.add_barrier_dep(
              bf, t_fft[static_cast<size_t>(v)][static_cast<size_t>(s + 1)]);
        }
      }
    }
  }

  return g;
}

namespace {

// ANTON_DES_SHARDS overrides MachineConfig::des_shards (negative / malformed
// values fall back to the config).
int resolve_des_shards(const arch::MachineConfig& config) {
  if (const char* env = std::getenv("ANTON_DES_SHARDS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 0) return static_cast<int>(v);
  }
  return config.des_shards;
}

// Conservative-window width for a step graph: the minimum latency of any
// message the graph can send.  Cross-node sends are bounded below by
// injection overhead plus one router hop; a same-node (loopback) send only
// guarantees the injection overhead, so its presence shrinks the window.
double graph_lookahead_ns(const TaskGraph& graph, const noc::Torus& torus) {
  bool loopback = false;
  for (int i = 0; i < graph.num_tasks() && !loopback; ++i) {
    const TaskGraph::Task& t = graph.task(i);
    for (const auto& s : t.sends) {
      if (graph.task(s.dst_task).node == t.node) {
        loopback = true;
        break;
      }
    }
    for (int dep : t.mcast_dependents) {
      if (graph.task(dep).node == t.node) {
        loopback = true;
        break;
      }
    }
  }
  return loopback ? torus.min_loopback_latency_ns()
                  : torus.min_remote_latency_ns();
}

}  // namespace

TimestepRunner::TimestepRunner(const Workload& workload,
                               const arch::MachineConfig& config,
                               const StepOptions& options)
    : config_(config),
      options_(options),
      graph_(build_step_graph(workload, config, options.include_long_range)),
      torus_(config.noc, &queue_) {
  obs::MetricsRegistry* reg = options_.metrics;
  obs::TraceWriter* trace = options_.trace;

  // Parallel-DES engine: only for event-driven graphs (BSP barrier deps
  // cross nodes without messages) and only without a TraceWriter (not
  // thread-safe).  Both fall back to the serial legacy engine.
  int shards = resolve_des_shards(config);
  if (trace != nullptr || config.sync != arch::SyncModel::kEventDriven) {
    shards = 0;
  }
  shards = std::min(shards, config.noc.num_nodes());
  des_shards_ = shards;
  if (shards > 0) {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned want = std::min(static_cast<unsigned>(shards), hw);
    if (want > 1) pool_ = std::make_unique<ThreadPool>(want - 1);
    engine_ = std::make_unique<sim::ParallelEngine>(
        shards, graph_lookahead_ns(graph_, torus_), pool_.get());
    // Pre-size shard arenas from the topology: every task owns at most one
    // pending completion event; deliveries grow the arenas once, on the
    // warmup run, like the serial queue.
    engine_->reserve(
        static_cast<size_t>(graph_.num_tasks() / shards + 1), 1);
  }
  if (reg != nullptr || trace != nullptr) {
    sim::QueueTelemetry qt;
    if (reg != nullptr) {
      qt.executed = reg->counter("des.queue.executed");
      qt.depth = reg->histogram("des.queue.depth", 0.0, 4096.0, 64);
      qt.horizon_ns = reg->histogram("des.queue.horizon_ns", 0.0, 50000.0,
                                     100);
    }
    qt.trace = trace;
    queue_.set_telemetry(qt);
    torus_.set_telemetry(reg, "des.noc", trace);
    if (reg != nullptr && obs::PerfCounters::env_enabled()) {
      perf_ = std::make_unique<obs::PerfCounters>();
      reg->gauge("des.perf.available")->set(perf_->available() ? 1.0 : 0.0);
    }
  }
}

double TimestepRunner::run_timestep() {
  // Fresh simulated clock: the queue clock restarts at zero and link
  // busy-until horizons clear, so every replay sees an identical machine.
  queue_.reset();
  if (engine_ != nullptr) engine_->reset();
  torus_.reset_time();
  obs::TraceWriter* trace = options_.trace;
  if (trace != nullptr) trace->set_ts_offset_us(options_.trace_ts_offset_us);

  const bool sample_perf = perf_ != nullptr && perf_->available() &&
                           perf_->owned_by_this_thread();
  obs::PerfSample perf0;
  if (sample_perf) perf0 = perf_->read();

  const ExecStats& ex =
      engine_ != nullptr
          ? executor_.run_sharded(graph_, config_, torus_, *engine_)
          : executor_.run(graph_, config_, torus_, queue_, trace);
  step_ns_ = ex.makespan_ns;

  if (sample_perf && perf0.valid) {
    const obs::PerfSample d = perf_->read() - perf0;
    if (d.valid && options_.metrics != nullptr) {
      if (d.cycles > 0) options_.metrics->stat("des.host.ipc")->add(d.ipc());
      if (d.llc_loads > 0) {
        options_.metrics->stat("des.host.llc_miss_rate")
            ->add(d.llc_miss_rate());
      }
    }
  }

  if (trace != nullptr) trace->set_ts_offset_us(0.0);
  obs::MetricsRegistry* reg = options_.metrics;
  if (reg != nullptr) {
    reg->stat("des.step.makespan_ns")->add(ex.makespan_ns);
    reg->counter("des.step.tasks")->add(ex.tasks_executed);
    for (const auto& [phase, busy] : ex.phase_busy_ns) {
      reg->stat("des.phase." + phase + ".busy_ns")->add(busy);
    }
    for (const auto& [phase, ns] : ex.critical_path_ns) {
      reg->stat("des.critical." + phase + ".ns")->add(ns);
    }
    reg->stat("des.critical.wait_ns")->add(ex.critical_wait_ns);
    if (ex.makespan_ns > 0) {
      torus_.export_link_occupancy(reg, "des.noc", ex.makespan_ns);
    }
    if (engine_ != nullptr) engine_->export_metrics(reg, "des.pdes");
  }
  return step_ns_;
}

StepTiming TimestepRunner::timing() const {
  StepTiming t;
  t.exec = executor_.stats();
  t.step_ns = step_ns_;
  return t;
}

StepTiming simulate_step(const Workload& w, const arch::MachineConfig& config,
                         const StepOptions& options) {
  TimestepRunner runner(w, config, options);
  runner.run_timestep();
  return runner.timing();
}

}  // namespace anton::core
