#include "core/decomposition_study.h"

#include <unordered_set>

#include "common/error.h"
#include "geom/cells.h"
#include "geom/decomp.h"

namespace anton::core {

namespace {

// Pair-ownership rules.
int half_shell_owner(const DomainDecomp& dd, int node_i, int node_j) {
  // Deterministic representative: lower of the pair after periodic
  // canonicalisation; the workload mapper's positive-half rule is
  // equivalent for counting purposes.
  return std::min(node_i, node_j);
}

int nt_owner(const DomainDecomp& dd, int node_i, int node_j) {
  // Node owning (x_i, y_i, z_j): the i-atom's column meets the j-atom's
  // slab.
  int xi, yi, zi, xj, yj, zj;
  dd.coords(node_i, &xi, &yi, &zi);
  dd.coords(node_j, &xj, &yj, &zj);
  return dd.rank(xi, yi, zj);
}

}  // namespace

ImportStats analyze_decomposition(const System& system,
                                  const arch::MachineConfig& config,
                                  DecompositionScheme scheme) {
  const Box& box = system.box();
  const auto& nc = config.noc;
  DomainDecomp dd(box, nc.nx, nc.ny, nc.nz);
  const int P = dd.num_nodes();
  const double rc = config.machine_cutoff;
  ANTON_CHECK(rc <= box.max_cutoff());

  const auto pos = system.positions();
  std::vector<int> owner(pos.size());
  for (size_t i = 0; i < pos.size(); ++i) owner[i] = dd.node_of(pos[i]);

  // imports[v] = distinct remote atoms whose positions node v needs.
  std::vector<std::unordered_set<int>> imports(static_cast<size_t>(P));
  int64_t total_pairs = 0;

  CellGrid grid(box, rc);
  grid.bin(pos);
  const double rc2 = rc * rc;
  const bool tiny = grid.nx() < 3 || grid.ny() < 3 || grid.nz() < 3;

  auto process = [&](int i, int j) {
    ++total_pairs;
    const int a = owner[static_cast<size_t>(i)];
    const int b = owner[static_cast<size_t>(j)];
    int o;
    switch (scheme) {
      case DecompositionScheme::kHalfShell:
        o = half_shell_owner(dd, a, b);
        break;
      case DecompositionScheme::kNeutralTerritory:
        o = nt_owner(dd, a, b);
        break;
    }
    if (o != a) imports[static_cast<size_t>(o)].insert(i);
    if (o != b) imports[static_cast<size_t>(o)].insert(j);
  };

  if (tiny) {
    const int n = static_cast<int>(pos.size());
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (box.distance2(pos[static_cast<size_t>(i)],
                          pos[static_cast<size_t>(j)]) < rc2) {
          process(i, j);
        }
      }
    }
  } else {
    for (int c = 0; c < grid.num_cells(); ++c) {
      const auto atoms_c = grid.cell_atoms(c);
      for (int ncell : grid.half_stencil(c)) {
        const auto atoms_n = grid.cell_atoms(ncell);
        for (int a : atoms_c) {
          for (int b : atoms_n) {
            if (ncell == c && b <= a) continue;
            if (box.distance2(pos[static_cast<size_t>(a)],
                              pos[static_cast<size_t>(b)]) < rc2) {
              process(std::min(a, b), std::max(a, b));
            }
          }
        }
      }
    }
  }

  ImportStats stats;
  stats.scheme = scheme;
  stats.nodes = P;
  stats.total_pairs = total_pairs;
  // Export copies: how many (atom, destination) sends occur — the transpose
  // of the import sets.
  std::vector<int64_t> exports(static_cast<size_t>(P), 0);
  for (int v = 0; v < P; ++v) {
    stats.imported_atoms.add(
        static_cast<double>(imports[static_cast<size_t>(v)].size()));
    // Iteration order is irrelevant here: integer increments commute
    // exactly, so the unordered walk cannot perturb the result.
    // anton-lint: allow(unordered-iter)
    for (int atom : imports[static_cast<size_t>(v)]) {
      exports[static_cast<size_t>(owner[static_cast<size_t>(atom)])]++;
    }
    stats.total_import_bytes +=
        static_cast<double>(imports[static_cast<size_t>(v)].size()) *
        config.bytes_per_position;
  }
  for (int v = 0; v < P; ++v) {
    stats.exported_copies.add(static_cast<double>(exports[static_cast<size_t>(v)]));
  }
  return stats;
}

}  // namespace anton::core
