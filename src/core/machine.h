// AntonMachine: the public facade of the machine model.
//
// Two modes:
//   - estimate(): timing-only — decompose the system, simulate one full and
//     one RESPA-short timestep, report μs/day and the per-phase breakdown.
//   - run(): functional — advance the system with the gold MD engine while
//     accumulating simulated machine time, so users get a real trajectory
//     *and* the machine-clock performance for it.
#pragma once

#include <memory>
#include <string>

#include "arch/config.h"
#include "chem/system.h"
#include "common/error.h"
#include "core/timestep.h"
#include "core/workload.h"
#include "md/params.h"

namespace anton::core {

struct PerfReport {
  std::string machine;
  int nodes = 0;
  int atoms = 0;
  double dt_fs = 2.5;
  int respa_k = 2;

  StepTiming full_step;   // with long-range (FFT) phases
  StepTiming short_step;  // RESPA inner step

  double avg_step_ns() const {
    return (full_step.step_ns + (respa_k - 1) * short_step.step_ns) / respa_k;
  }
  double steps_per_second() const { return 1e9 / avg_step_ns(); }
  // Simulated physical time per wall-clock day, microseconds.
  double us_per_day() const {
    return dt_fs * steps_per_second() * 86400.0 * 1e-9;
  }
  double ns_per_day() const { return us_per_day() * 1e3; }
};

// Picks a near-cubic torus (nx, ny, nz) with nx*ny*nz == nodes.
void torus_dims(int nodes, int* nx, int* ny, int* nz);

// The calibrated machine model as an immutable shared object.  A
// MachineConfig, once handed to an AntonMachine, is never mutated again:
// the machine stores it behind a shared_ptr-to-const, so any number of
// threads (the SweepRunner shards, the svc:: estimator workers) can hold
// the same calibrated model and call estimate() concurrently without
// copies or synchronization.  estimate() itself is const and builds every
// piece of mutable state (workload, task graph, event queue, torus,
// metrics scope) per call on the calling thread's stack.
class AntonMachine {
 public:
  explicit AntonMachine(arch::MachineConfig config)
      : config_(std::make_shared<const arch::MachineConfig>(
            std::move(config))) {}

  // Shares an existing immutable config instead of copying it — the
  // estimator service constructs one AntonMachine per job and this keeps
  // the per-job cost at one refcount bump, not a config deep copy.
  explicit AntonMachine(std::shared_ptr<const arch::MachineConfig> config)
      : config_(std::move(config)) {
    ANTON_CHECK(config_ != nullptr);
  }

  const arch::MachineConfig& config() const { return *config_; }
  // The shared immutable model, for callers that fan the same calibrated
  // config out to many evaluators.
  std::shared_ptr<const arch::MachineConfig> config_ptr() const {
    return config_;
  }
  int nodes() const { return config_->noc.num_nodes(); }

  // Timing-only estimate for the system's current configuration.
  PerfReport estimate(const System& system, double dt_fs = 2.5,
                      int respa_k = 2) const;

  // Functional run: advances `system` for `steps` MD steps using the gold
  // engine with `md` parameters, while accumulating machine timing.  The
  // workload decomposition refreshes every `workload_refresh` steps.
  PerfReport run(System& system, const MdParams& md, int steps,
                 int workload_refresh = 20) const;

 private:
  std::shared_ptr<const arch::MachineConfig> config_;
};

}  // namespace anton::core
