// Pairwise-decomposition import analysis: half-shell vs neutral territory.
//
// The Anton line's signature scaling trick is the choice of *where* each
// pairwise interaction is computed.  The half-shell method computes a pair
// on one of the two atoms' home nodes — its import volume grows with the
// full cutoff shell.  The neutral-territory (NT) method computes the pair on
// the node owning (x_i, y_i, z_j): each atom is imported into a thin "tower"
// (same x,y column, z within cutoff) and a flat "plate" (same z slab, x,y
// within cutoff), whose combined volume scales much better when home boxes
// shrink below the cutoff.
//
// This module computes exact per-node import statistics for both schemes on
// a real atom configuration, quantifying the communication the NoC must
// carry.  (The DES timestep model uses the half-shell scheme; this analysis
// is the design-space study.)
#pragma once

#include "arch/config.h"
#include "chem/system.h"
#include "common/stats.h"

namespace anton::core {

enum class DecompositionScheme {
  kHalfShell,
  kNeutralTerritory,
};

struct ImportStats {
  DecompositionScheme scheme;
  int nodes = 0;
  int64_t total_pairs = 0;
  // Per-node distinct atoms imported (positions received).
  RunningStat imported_atoms;
  // Per-node distinct (atom, destination) position sends.
  RunningStat exported_copies;
  double total_import_bytes = 0;  // positions, summed over nodes

  double mean_import_per_node() const { return imported_atoms.mean(); }
};

// Exact import statistics for `scheme` on the given system decomposed onto
// the torus in `config` (cutoff = config.machine_cutoff).
ImportStats analyze_decomposition(const System& system,
                                  const arch::MachineConfig& config,
                                  DecompositionScheme scheme);

}  // namespace anton::core
