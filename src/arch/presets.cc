#include "arch/config.h"

namespace anton::arch {

MachineConfig MachineConfig::anton2(int nx, int ny, int nz) {
  MachineConfig c;
  c.name = "anton2";
  c.ppims_per_node = 76;
  c.ppim_clock_ghz = 1.65;
  c.htis_task_overhead_ns = 3.0;
  c.geometry_cores = 64;
  c.gc_simd_width = 4;
  c.gc_clock_ghz = 1.65;
  c.gc_task_overhead_ns = 8.0;
  c.sync = SyncModel::kEventDriven;
  c.sync_trigger_ns = 2.0;
  c.barrier_base_ns = 400.0;
  c.noc.nx = nx;
  c.noc.ny = ny;
  c.noc.nz = nz;
  c.noc.link_bandwidth_gbs = 24.0;
  c.noc.hop_latency_ns = 20.0;
  c.noc.injection_overhead_ns = 6.0;
  c.noc.packet_overhead_bytes = 32.0;
  c.bytes_per_position = 8.0;
  c.bytes_per_force = 8.0;
  c.cycles_per_fft_point = 8.0;
  return c;
}

MachineConfig MachineConfig::anton1(int nx, int ny, int nz) {
  MachineConfig c;
  c.name = "anton1";
  c.ppims_per_node = 32;
  c.ppim_clock_ghz = 0.80;
  c.htis_task_overhead_ns = 40.0;
  c.geometry_cores = 8;
  c.gc_simd_width = 1;
  c.gc_clock_ghz = 0.485;
  c.gc_task_overhead_ns = 50.0;
  c.sync = SyncModel::kBulkSynchronous;
  c.sync_trigger_ns = 4.0;       // unused in BSP mode
  c.barrier_base_ns = 450.0;
  c.noc.nx = nx;
  c.noc.ny = ny;
  c.noc.nz = nz;
  c.noc.link_bandwidth_gbs = 6.3;  // 50.6 Gbit/s per direction
  c.noc.hop_latency_ns = 50.0;
  c.noc.injection_overhead_ns = 30.0;
  c.noc.packet_overhead_bytes = 32.0;
  c.bytes_per_position = 12.0;
  c.bytes_per_force = 12.0;
  c.cycles_per_fft_point = 8.0;
  c.cycles_per_constraint_iter = 15.0;
  return c;
}

MachineConfig MachineConfig::anton2_bsp(int nx, int ny, int nz) {
  MachineConfig c = anton2(nx, ny, nz);
  c.name = "anton2-bsp";
  c.sync = SyncModel::kBulkSynchronous;
  return c;
}

}  // namespace anton::arch
