// Machine configuration: every architectural parameter of the modelled
// Anton node and interconnect, with presets for Anton 1 and Anton 2.
//
// The presets encode the calibrated assumptions listed in DESIGN.md.  The
// two machines differ in four ways the paper emphasises:
//   1. HTIS width and clock (32 PPIMs @ 800 MHz -> 76 PPIMs @ 1.65 GHz),
//   2. flexible-subsystem throughput (8 scalar GCs -> 64 four-wide GCs),
//   3. network bandwidth and per-hop latency,
//   4. synchronisation: Anton 1 operates bulk-synchronously (coarse phase
//      barriers); Anton 2 is fine-grained event-driven (hardware counters
//      fire tasks the moment their inputs arrive).
#pragma once

#include <string>

#include "noc/torus.h"

namespace anton::arch {

enum class SyncModel {
  kEventDriven,      // Anton 2: per-task hardware countdown triggers
  kBulkSynchronous,  // Anton 1: global barrier between phases
};

struct MachineConfig {
  std::string name;

  // --- high-throughput interaction subsystem (HTIS) ---
  int ppims_per_node = 76;
  double ppim_clock_ghz = 1.65;
  int pairs_per_ppim_cycle = 1;
  double htis_task_overhead_ns = 10.0;  // fixed cost to launch a tile

  // --- flexible subsystem (geometry cores) ---
  int geometry_cores = 64;
  int gc_simd_width = 4;
  double gc_clock_ghz = 1.65;
  double gc_task_overhead_ns = 15.0;  // dispatch cost per software task

  // Per-element cycle costs on one GC lane (calibrated, not RTL-derived).
  double cycles_per_bond = 40;
  double cycles_per_angle = 80;
  double cycles_per_dihedral = 160;
  double cycles_per_pair14 = 60;
  double cycles_per_fft_point = 12;   // per point per 1D stage (5 bf + twiddle)
  double cycles_per_integrate_atom = 30;
  double cycles_per_constraint_iter = 25;
  int constraint_iterations = 6;      // typical M-SHAKE iteration count

  // --- synchronisation ---
  SyncModel sync = SyncModel::kEventDriven;
  double sync_trigger_ns = 4.0;    // event-driven: fire a counter-armed task
  double barrier_base_ns = 400.0;  // BSP: software cost per global barrier

  // --- simulator execution (host-side, does not affect modelled timing) ---
  // Shards for the parallel discrete-event engine: the node grid splits into
  // this many shard-private event queues run under conservative time
  // windows, with bitwise-identical results at every shard count.  0 = the
  // serial legacy engine.  ANTON_DES_SHARDS overrides at runtime; runs that
  // need a TraceWriter or BSP sync fall back to serial.
  int des_shards = 0;

  // --- interconnect ---
  noc::TorusConfig noc;
  // Hardware multicast for position import (ablation: false = unicast to
  // every destination, payload repeated per route).
  bool use_multicast = true;

  // --- data sizes on the wire (Anton compresses aggressively) ---
  double bytes_per_position = 16.0;
  double bytes_per_force = 16.0;
  double bytes_per_mesh_point = 16.0;
  double bytes_per_migrating_atom = 64.0;

  // --- telemetry (zero cost when paths are empty) ---
  // Chrome-trace output: task spans, packet lifecycles, link occupancy and
  // queue-depth tracks for every simulated step (load in Perfetto).
  std::string trace_path;
  // Metrics snapshot ("anton.metrics.v1" JSON) written when the run ends.
  std::string metrics_path;

  // --- MD mapping parameters the machine uses ---
  double machine_cutoff = 9.0;  // Å pairwise cutoff on the HTIS
  double mesh_spacing = 2.0;    // Å target mesh spacing for the GSE grid
  // GSE spreading support radius in mesh cells (the spreading Gaussian's
  // width tracks the mesh spacing, so support is constant in cells).
  int spread_support_cells = 2;

  // Derived throughputs.
  double pair_rate_per_ns() const {
    return ppims_per_node * pairs_per_ppim_cycle * ppim_clock_ghz;
  }
  double gc_lane_rate_per_ns() const {
    return geometry_cores * gc_simd_width * gc_clock_ghz;
  }
  // Time for `cycles` worth of (perfectly parallel) lane work.
  double gc_time_ns(double lane_cycles) const {
    return lane_cycles / gc_lane_rate_per_ns();
  }
  double htis_time_ns(double pairs) const {
    return pairs / pair_rate_per_ns();
  }

  // Presets.  (nx, ny, nz) is the torus size; 8x8x8 = the 512-node machine.
  static MachineConfig anton2(int nx = 8, int ny = 8, int nz = 8);
  static MachineConfig anton1(int nx = 8, int ny = 8, int nz = 8);
  // Anton 2 hardware but bulk-synchronous scheduling — the ablation the
  // event-driven claim rests on.
  static MachineConfig anton2_bsp(int nx = 8, int ny = 8, int nz = 8);
};

}  // namespace anton::arch
