#include "svc/result_cache.h"

#include <algorithm>

#include "common/error.h"

namespace anton::svc {
namespace {

// Conservative per-node overhead of a libstdc++ std::map entry (rb-tree
// node header + alignment); the key string's heap block is added on top.
constexpr size_t kMapNodeBytes = 64;

size_t map_bytes(const std::map<std::string, double>& m) {
  size_t b = 0;
  for (const auto& [k, v] : m) {
    (void)v;
    // Short strings live in the SSO buffer already counted in the node.
    b += kMapNodeBytes + (k.capacity() > 15 ? k.capacity() + 1 : 0);
  }
  return b;
}

size_t step_bytes(const core::StepTiming& t) {
  return map_bytes(t.exec.phase_busy_ns) + map_bytes(t.exec.phase_end_ns) +
         map_bytes(t.exec.critical_path_ns);
}

}  // namespace

size_t report_bytes(const core::PerfReport& report) {
  return sizeof(core::PerfReport) +
         (report.machine.capacity() > 15 ? report.machine.capacity() + 1 : 0) +
         step_bytes(report.full_step) + step_bytes(report.short_step);
}

// Probe window: `kProbe` consecutive slots (wrapping) starting at the key's
// home index.  Bounded, so the worst-case lookup cost is a constant-length
// linear scan; eviction holes inside a window cannot cause stale hits
// (identical keys always carry identical deterministic values), at worst an
// occasional recompute of a key whose duplicate was evicted.
static constexpr size_t kProbe = 16;

int ResultCache::find_slot(const Slot* slots, size_t mask,
                           const CacheKey& key) {
  ANTON_HOT_NOALLOC();
  const size_t home = static_cast<size_t>(key.lo) & mask;
  for (size_t p = 0; p < kProbe; ++p) {
    const size_t i = (home + p) & mask;
    if (slots[i].value != nullptr && slots[i].key == key) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

ResultCache::ResultCache(size_t max_bytes)
    : max_bytes_(std::max<size_t>(max_bytes, size_t{64} * 1024)) {
  // Size the fixed slot arrays from the budget assuming ~2 KiB resident per
  // report, rounded up to a power of two, floored at one probe window.
  const size_t want = max_bytes_ / kShards / 2048;
  slots_per_shard_ = kProbe;
  while (slots_per_shard_ < want) slots_per_shard_ <<= 1;
  shards_ = std::vector<Shard>(kShards);
  for (Shard& s : shards_) {
    s.slots.resize(slots_per_shard_);
    s.ref = std::make_unique<std::atomic<uint8_t>[]>(slots_per_shard_);
    for (size_t i = 0; i < slots_per_shard_; ++i) {
      s.ref[i].store(0, std::memory_order_relaxed);
    }
  }
}

ResultCache::~ResultCache() = default;

bool ResultCache::lookup(const CacheKey& key, core::PerfReport* out) {
  ANTON_CHECK(out != nullptr);
  Shard& s = shard_of(key);
  std::shared_lock<std::shared_mutex> lock(s.mu);
  const int i = find_slot(s.slots.data(), slots_per_shard_ - 1, key);
  if (i < 0) {
    s.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Mark recently-used for the CLOCK hand.  Relaxed: readers only ever
  // store 1, writers read/clear it under the exclusive lock.
  s.ref[static_cast<size_t>(i)].store(1, std::memory_order_relaxed);
  // Deep copy under the shared lock: an eviction (exclusive) cannot run
  // concurrently, so the copy cannot tear.
  *out = *s.slots[static_cast<size_t>(i)].value;
  s.hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::evict_until(Shard& s, size_t need_bytes, size_t budget) {
  // Global CLOCK hand over the shard: clear ref bits as it passes, evict
  // the first unreferenced occupied slot.  Two full sweeps guarantee a
  // victim (every ref bit is cleared after one pass), so the loop is
  // bounded even when everything was recently touched.
  while (s.entries > 0 && s.bytes + need_bytes > budget) {
    for (size_t step = 0; step < 2 * slots_per_shard_; ++step) {
      const size_t i = s.hand;
      s.hand = (s.hand + 1) & (slots_per_shard_ - 1);
      if (s.slots[i].value == nullptr) continue;
      if (s.ref[i].load(std::memory_order_relaxed) != 0) {
        s.ref[i].store(0, std::memory_order_relaxed);
        continue;
      }
      s.bytes -= s.slots[i].bytes;
      s.slots[i].bytes = 0;
      s.slots[i].value.reset();
      --s.entries;
      ++s.evictions;
      break;
    }
  }
}

bool ResultCache::insert(const CacheKey& key, const core::PerfReport& report) {
  const size_t bytes = report_bytes(report);
  const size_t budget = max_bytes_ / kShards;
  if (bytes > budget) return false;  // outlier: recompute beats caching it

  Shard& s = shard_of(key);
  std::unique_lock<std::shared_mutex> lock(s.mu);
  const size_t mask = slots_per_shard_ - 1;

  // Overwrite in place if the key is already resident (a racing worker
  // computed the same deterministic value; keep one copy).
  int slot = find_slot(s.slots.data(), mask, key);
  if (slot >= 0) {
    Slot& sl = s.slots[static_cast<size_t>(slot)];
    s.bytes -= sl.bytes;
    evict_until(s, bytes, budget);
    *sl.value = report;
    sl.bytes = bytes;
    s.bytes += bytes;
    s.ref[static_cast<size_t>(slot)].store(1, std::memory_order_relaxed);
    return true;
  }

  evict_until(s, bytes, budget);

  // Place into the first empty slot of the probe window; if the window is
  // full, CLOCK within the window: evict the first unreferenced victim
  // (clearing ref bits as we scan), falling back to the home slot.
  const size_t home = static_cast<size_t>(key.lo) & mask;
  size_t target = slots_per_shard_;  // sentinel: none yet
  for (size_t p = 0; p < kProbe; ++p) {
    const size_t i = (home + p) & mask;
    if (s.slots[i].value == nullptr) {
      target = i;
      break;
    }
  }
  if (target == slots_per_shard_) {
    for (size_t p = 0; p < kProbe; ++p) {
      const size_t i = (home + p) & mask;
      if (s.ref[i].load(std::memory_order_relaxed) != 0) {
        s.ref[i].store(0, std::memory_order_relaxed);
        continue;
      }
      target = i;
      break;
    }
    if (target == slots_per_shard_) target = home;
    Slot& victim = s.slots[target];
    s.bytes -= victim.bytes;
    victim.value.reset();
    victim.bytes = 0;
    --s.entries;
    ++s.evictions;
  }

  Slot& sl = s.slots[target];
  sl.key = key;
  sl.value = std::make_unique<core::PerfReport>(report);
  sl.bytes = bytes;
  s.bytes += bytes;
  ++s.entries;
  ++s.insertions;
  s.ref[target].store(1, std::memory_order_relaxed);
  return true;
}

ResultCache::Stats ResultCache::stats() const {
  Stats st;
  for (const Shard& s : shards_) {
    std::shared_lock<std::shared_mutex> lock(s.mu);
    st.hits += s.hits.load(std::memory_order_relaxed);
    st.misses += s.misses.load(std::memory_order_relaxed);
    st.insertions += s.insertions;
    st.evictions += s.evictions;
    st.bytes += s.bytes;
    st.entries += s.entries;
    st.capacity += slots_per_shard_;
  }
  return st;
}

}  // namespace anton::svc
