#include "svc/cache_key.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace anton::svc {

void KeyHasher::absorb_double(double d) {
  absorb_u64(std::bit_cast<uint64_t>(d));
}

void KeyHasher::absorb_bytes(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t w = 0;
  while (n >= 8) {
    std::memcpy(&w, p, 8);
    absorb_u64(w);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    w = 0;
    std::memcpy(&w, p, n);
    absorb_u64(w | (static_cast<uint64_t>(n) << 56));
  }
}

uint64_t system_digest(const System& system) {
  KeyHasher h;
  const Topology& top = system.topology();
  h.absorb_i64(system.num_atoms());
  const Vec3 box = system.box().lengths();
  h.absorb_double(box.x);
  h.absorb_double(box.y);
  h.absorb_double(box.z);
  // Positions drive the pair tiles and the decomposition: absorb raw bits.
  const auto pos = system.positions();
  h.absorb_bytes(pos.data(), pos.size() * sizeof(Vec3));
  // Topology terms load the geometry cores and the constraint solver; the
  // index lists are plain trivially-copyable structs, absorbed wholesale.
  const auto bonds = top.bonds();
  const auto angles = top.angles();
  const auto dihedrals = top.dihedrals();
  const auto pairs14 = top.pairs14();
  const auto constraints = top.constraints();
  const auto waters = top.waters();
  h.absorb_u64(bonds.size());
  h.absorb_bytes(bonds.data(), bonds.size_bytes());
  h.absorb_u64(angles.size());
  h.absorb_bytes(angles.data(), angles.size_bytes());
  h.absorb_u64(dihedrals.size());
  h.absorb_bytes(dihedrals.data(), dihedrals.size_bytes());
  h.absorb_u64(pairs14.size());
  h.absorb_bytes(pairs14.data(), pairs14.size_bytes());
  h.absorb_u64(constraints.size());
  h.absorb_bytes(constraints.data(), constraints.size_bytes());
  h.absorb_u64(waters.size());
  h.absorb_bytes(waters.data(), waters.size_bytes());
  return h.digest().lo ^ (h.digest().hi * 0x9e3779b97f4a7c15ull);
}

CacheKey query_key(const arch::MachineConfig& c, uint64_t system_digest,
                   double dt_fs, int respa_k) {
  ANTON_HOT_NOALLOC();
  KeyHasher h;
  h.absorb_u64(system_digest);
  h.absorb_double(dt_fs);
  h.absorb_i64(respa_k);

  // MachineConfig, field by field in declaration order (arch/config.h).
  // trace_path / metrics_path are deliberately skipped: telemetry sinks,
  // not model parameters (see header comment).
  h.absorb_string(c.name);
  h.absorb_i64(c.ppims_per_node);
  h.absorb_double(c.ppim_clock_ghz);
  h.absorb_i64(c.pairs_per_ppim_cycle);
  h.absorb_double(c.htis_task_overhead_ns);
  h.absorb_i64(c.geometry_cores);
  h.absorb_i64(c.gc_simd_width);
  h.absorb_double(c.gc_clock_ghz);
  h.absorb_double(c.gc_task_overhead_ns);
  h.absorb_double(c.cycles_per_bond);
  h.absorb_double(c.cycles_per_angle);
  h.absorb_double(c.cycles_per_dihedral);
  h.absorb_double(c.cycles_per_pair14);
  h.absorb_double(c.cycles_per_fft_point);
  h.absorb_double(c.cycles_per_integrate_atom);
  h.absorb_double(c.cycles_per_constraint_iter);
  h.absorb_i64(c.constraint_iterations);
  h.absorb_i64(static_cast<int64_t>(c.sync));
  h.absorb_double(c.sync_trigger_ns);
  h.absorb_double(c.barrier_base_ns);

  const noc::TorusConfig& n = c.noc;
  h.absorb_i64(n.nx);
  h.absorb_i64(n.ny);
  h.absorb_i64(n.nz);
  h.absorb_i64(static_cast<int64_t>(n.routing));
  h.absorb_double(n.link_bandwidth_gbs);
  h.absorb_double(n.hop_latency_ns);
  h.absorb_double(n.injection_overhead_ns);
  h.absorb_double(n.packet_overhead_bytes);
  // Derated links in stored order: the list is part of the config identity.
  h.absorb_u64(n.derated_links.size());
  for (const auto& d : n.derated_links) {
    h.absorb_i64(d.node);
    h.absorb_i64(d.dir);
    h.absorb_double(d.factor);
  }

  h.absorb_bool(c.use_multicast);
  h.absorb_double(c.bytes_per_position);
  h.absorb_double(c.bytes_per_force);
  h.absorb_double(c.bytes_per_mesh_point);
  h.absorb_double(c.bytes_per_migrating_atom);
  h.absorb_double(c.machine_cutoff);
  h.absorb_double(c.mesh_spacing);
  h.absorb_i64(c.spread_support_cells);
  return h.digest();
}

}  // namespace anton::svc
