// Content-addressed cache keys for the estimator service.
//
// A query to the service is (MachineConfig, system, dt_fs, respa_k); the
// model is deterministic, so the result is a pure function of that tuple.
// The cache therefore keys on a canonical 128-bit digest of the tuple's
// *content*, not on object identity: two queries that spell the same
// machine and workload hash to the same key no matter where the config
// structs live or how they were built.
//
// Canonicalization rules (see DESIGN.md, "Estimator service"):
//   * every model-relevant MachineConfig field is absorbed in declaration
//     order; doubles as their raw IEEE-754 bit patterns (so +0.0 and -0.0
//     get distinct keys — conservative: at worst two cache entries hold the
//     same value, never a wrong hit);
//   * strings as (length, bytes); enums as their underlying integer;
//   * the telemetry sink paths (trace_path, metrics_path) are EXCLUDED —
//     they select side channels, not model behaviour, and the service
//     evaluates with telemetry off so cached and fresh results have
//     identical (empty) side effects;
//   * the system is folded in as a digest computed once at registration
//     (positions, box, and every topology term that loads the workload
//     model), so the per-query cost is O(config), not O(atoms).
//
// The full 128-bit digest is stored in each cache entry and compared on
// lookup, so an aliased hit needs a full digest collision (~2^-64 per pair
// at any realistic cache size), not just a bucket collision.
#pragma once

#include <cstdint>
#include <string_view>

#include "arch/config.h"
#include "chem/system.h"

namespace anton::svc {

struct CacheKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
  // Lexicographic order so CacheKey can key a std::map (the service's
  // in-flight table iterates deterministically under this order).
  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

// Incremental two-lane 64-bit mixer.  Not cryptographic — it only needs to
// spread config edits across both words and keep full-digest collisions
// astronomically unlikely for cache addressing.
class KeyHasher {
 public:
  void absorb_u64(uint64_t w) {
    ++n_;
    a_ = mix(a_ ^ (w * 0x9e3779b97f4a7c15ull));
    b_ = mix(b_ + (w ^ 0x6a09e667f3bcc909ull) + n_);
  }
  void absorb_i64(int64_t w) { absorb_u64(static_cast<uint64_t>(w)); }
  void absorb_double(double d);
  void absorb_bool(bool b) { absorb_u64(b ? 1 : 0); }
  void absorb_bytes(const void* data, size_t n);
  void absorb_string(std::string_view s) {
    absorb_u64(s.size());
    absorb_bytes(s.data(), s.size());
  }

  CacheKey digest() const {
    CacheKey k;
    k.lo = mix(a_ ^ (n_ * 0xff51afd7ed558ccdull));
    k.hi = mix(b_ ^ (a_ + 0xc4ceb9fe1a85ec53ull));
    return k;
  }

 private:
  static uint64_t mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  uint64_t a_ = 0x243f6a8885a308d3ull;
  uint64_t b_ = 0x13198a2e03707344ull;
  uint64_t n_ = 0;
};

// One-time workload fingerprint: atom positions, box, and every topology
// term family that feeds Workload::build.  O(atoms); compute it when a
// system is registered with the service, never per query.
uint64_t system_digest(const System& system);

// The per-query key: canonical digest of (config, system digest, dt_fs,
// respa_k).  Allocation-free — this runs on every request, cache hit or
// miss, and is annotated ANTON_HOT_NOALLOC for the callgraph verifier.
CacheKey query_key(const arch::MachineConfig& config, uint64_t system_digest,
                   double dt_fs, int respa_k);

}  // namespace anton::svc
