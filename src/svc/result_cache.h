// Content-addressed result cache for the estimator service.
//
// Maps CacheKey -> PerfReport with three properties the service leans on:
//
//   * hit == recompute, bitwise.  The model is deterministic, so the cache
//     stores the PerfReport verbatim and hands back copies; every double,
//     including the per-phase maps, is identical to a fresh estimate()
//     (property-tested in tests/test_svc.cc).
//   * bounded memory.  Construction fixes a byte budget; each entry is
//     charged its deep size (struct + string capacities + map nodes), and
//     inserts evict via a per-shard CLOCK (second-chance) hand until the
//     new entry fits.  The slot arrays are allocated once up front — the
//     table never rehashes, so lookups race with no structural moves.
//   * sharded concurrency.  Keys spread across kShards shards (top digest
//     bits), each with its own shared_mutex: lookups take a shared lock,
//     inserts an exclusive one, so concurrent hits on different shards
//     never serialize and hits on one shard only serialize against that
//     shard's inserts.
//
// The slot-probe inner loop is allocation- and lock-free and annotated for
// the callgraph verifier; the shard lock wraps it from lookup()/insert(),
// deliberately outside the verified region (see the "estimator service
// locking boundary" note in tools/callgraph_allow.txt and DESIGN.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "core/machine.h"
#include "svc/cache_key.h"

namespace anton::svc {

// Deep byte estimate of a PerfReport: the struct plus its heap (machine
// name, phase-map nodes).  Used for cache accounting, so it only needs to
// be a consistent, slightly conservative estimate.
size_t report_bytes(const core::PerfReport& report);

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t bytes = 0;     // resident entry bytes across all shards
    size_t entries = 0;
    size_t capacity = 0;  // total slots
  };

  // max_bytes bounds resident entry memory (not counting the fixed slot
  // arrays, which are ~48 B/slot).  Slot count is derived from the budget
  // assuming ~2 KiB per report, floored so tiny caches still function.
  explicit ResultCache(size_t max_bytes);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;
  ~ResultCache();

  // On hit copies the stored report into *out and returns true.  The copy
  // happens under the shard's shared lock, so a concurrent eviction of the
  // same slot cannot tear it.
  bool lookup(const CacheKey& key, core::PerfReport* out);

  // Inserts (or overwrites) the report under key, evicting clock victims
  // until it fits.  A report bigger than the whole shard budget is not
  // cached (returns false) — the service just recomputes such outliers.
  bool insert(const CacheKey& key, const core::PerfReport& report);

  Stats stats() const;
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Slot {
    CacheKey key;
    std::unique_ptr<core::PerfReport> value;  // null => empty slot
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::vector<Slot> slots;  // fixed size, power of two; never rehashed
    // CLOCK reference bits, separate from Slot so readers can set them
    // under the shared lock (relaxed atomic store; no writer race).
    std::unique_ptr<std::atomic<uint8_t>[]> ref;
    size_t bytes = 0;
    size_t entries = 0;
    size_t hand = 0;  // clock hand, advances over slots on eviction
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    uint64_t insertions = 0;  // guarded by mu (exclusive)
    uint64_t evictions = 0;   // guarded by mu (exclusive)
  };

  Shard& shard_of(const CacheKey& key) {
    return shards_[static_cast<size_t>(key.hi >> 32) & (kShards - 1)];
  }

  // Probes the shard's slot array for `key`; returns the slot index or -1.
  // Caller holds the shard lock (shared or exclusive).  Allocation-free.
  static int find_slot(const Slot* slots, size_t mask, const CacheKey& key);

  void evict_until(Shard& s, size_t need_bytes, size_t budget);

  static constexpr size_t kShards = 16;  // power of two

  size_t max_bytes_;
  size_t slots_per_shard_;
  std::vector<Shard> shards_;
};

}  // namespace anton::svc
