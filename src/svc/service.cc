#include "svc/service.h"

#include <utility>

#include "common/error.h"
#include "obs/flightrecorder.h"

namespace anton::svc {

const char* status_name(Status s) {
  switch (s) {
    case Status::kHit:
      return "hit";
    case Status::kMiss:
      return "miss";
    case Status::kCoalesced:
      return "coalesced";
    case Status::kShed:
      return "shed";
    case Status::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

EstimatorService::EstimatorService(const Options& options)
    : pool_(options.pool),
      queue_depth_(options.queue_depth),
      evaluator_(options.evaluator),
      cache_(options.cache_bytes) {
  ANTON_CHECK(pool_ != nullptr);
  ANTON_CHECK(queue_depth_ > 0);
  if (options.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options.metrics;
    m_queries_ = reg.counter("svc.queries");
    m_hits_ = reg.counter("svc.hits");
    m_misses_ = reg.counter("svc.misses");
    m_coalesced_ = reg.counter("svc.coalesced");
    m_shed_ = reg.counter("svc.shed");
    m_queue_depth_ = reg.gauge("svc.queue_depth");
    // 0.25 ms bins out to 256 ms; estimates past that land in the
    // overflow bin and still count toward p99.
    m_latency_ms_ = reg.histogram("svc.latency_ms", 0.0, 256.0, 1024);
    profiler_.enable(&reg, "svc");
  }
}

EstimatorService::~EstimatorService() { shutdown(); }

int EstimatorService::register_system(const System& system) {
  RegisteredSystem reg;
  reg.system = std::make_shared<const System>(system);
  reg.digest = system_digest(*reg.system);
  std::lock_guard<std::mutex> lock(smu_);
  systems_.push_back(std::move(reg));
  return static_cast<int>(systems_.size()) - 1;
}

void EstimatorService::start() {
  std::unique_lock<std::mutex> lock(qmu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  lock.unlock();
  obs::flight::record(obs::flight::Kind::kMark, "svc.start");
  // The driver turns every pool thread (itself included, as pool index 0)
  // into a service worker; for_each_thread returns only when all workers
  // leave their loops at shutdown.
  driver_ = std::thread([this] {
    pool_->for_each_thread([this](unsigned) { worker_loop(); });
  });
}

void EstimatorService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(qmu_);
    if (stop_ && !started_) return;  // never started
    stop_ = true;
  }
  qcv_.notify_all();
  if (driver_.joinable()) driver_.join();
  {
    std::lock_guard<std::mutex> lock(qmu_);
    started_ = false;
  }
  obs::flight::record(obs::flight::Kind::kMark, "svc.shutdown");
}

bool EstimatorService::running() const {
  std::lock_guard<std::mutex> lock(qmu_);
  return started_ && !stop_;
}

void EstimatorService::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(qmu_);
      qcv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->set(static_cast<double>(queue_.size()));
      }
    }
    evaluate(*job);
    // Publish order matters: the report is in the cache (and in the job)
    // before the in-flight entry disappears, so a query that misses the
    // in-flight table under qmu_ is guaranteed to find the cached result.
    {
      std::lock_guard<std::mutex> lock(qmu_);
      inflight_.erase(job->key);
    }
  }
}

void EstimatorService::evaluate(Job& job) {
  obs::flight::record(obs::flight::Kind::kMark, "svc.evaluate",
                      job.key.lo);
  core::PerfReport report;
  {
    auto scope = profiler_.scope("evaluate");
    if (evaluator_) {
      report = evaluator_(*job.config, *job.system, job.dt_fs, job.respa_k);
    } else {
      const core::AntonMachine machine(job.config);
      report = machine.estimate(*job.system, job.dt_fs, job.respa_k);
    }
  }
  n_evaluated_.fetch_add(1, std::memory_order_relaxed);
  cache_.insert(job.key, report);
  std::lock_guard<std::mutex> lock(job.mu);
  job.report = std::move(report);
  job.done = true;
  job.cv.notify_all();
}

QueryResult EstimatorService::finish(Status status, double t0,
                                     core::PerfReport report) {
  QueryResult r;
  r.status = status;
  r.report = std::move(report);
  r.latency_ms = (obs::wall_seconds() - t0) * 1e3;
  if (m_latency_ms_ != nullptr) m_latency_ms_->add(r.latency_ms);
  switch (status) {
    case Status::kHit:
      n_hits_.fetch_add(1, std::memory_order_relaxed);
      if (m_hits_ != nullptr) m_hits_->add();
      break;
    case Status::kMiss:
      n_misses_.fetch_add(1, std::memory_order_relaxed);
      if (m_misses_ != nullptr) m_misses_->add();
      break;
    case Status::kCoalesced:
      // Counted at attach time (under qmu_), not here: monitoring should
      // see the pile-up while the evaluation is still in flight.
      break;
    case Status::kShed:
      n_shed_.fetch_add(1, std::memory_order_relaxed);
      if (m_shed_ != nullptr) m_shed_->add();
      obs::flight::record(obs::flight::Kind::kMark, "svc.shed");
      break;
    case Status::kShutdown:
      break;
  }
  return r;
}

QueryResult EstimatorService::query(const arch::MachineConfig& config,
                                    int system_id, double dt_fs,
                                    int respa_k) {
  return query(std::make_shared<const arch::MachineConfig>(config),
               system_id, dt_fs, respa_k);
}

QueryResult EstimatorService::query(
    std::shared_ptr<const arch::MachineConfig> config, int system_id,
    double dt_fs, int respa_k) {
  ANTON_CHECK(config != nullptr);
  const double t0 = obs::wall_seconds();
  n_queries_.fetch_add(1, std::memory_order_relaxed);
  if (m_queries_ != nullptr) m_queries_->add();

  RegisteredSystem reg;
  {
    std::lock_guard<std::mutex> lock(smu_);
    ANTON_CHECK(system_id >= 0 &&
                system_id < static_cast<int>(systems_.size()));
    reg = systems_[static_cast<size_t>(system_id)];
  }

  // The service evaluates with telemetry sinks off: the cache key ignores
  // trace_path / metrics_path, so cached and fresh answers must produce
  // identical (empty) side effects regardless of what the caller set.
  if (!config->trace_path.empty() || !config->metrics_path.empty()) {
    auto clean = std::make_shared<arch::MachineConfig>(*config);
    clean->trace_path.clear();
    clean->metrics_path.clear();
    config = std::move(clean);
  }

  CacheKey key;
  {
    auto scope = profiler_.scope("key");
    key = query_key(*config, reg.digest, dt_fs, respa_k);
  }

  core::PerfReport report;
  {
    auto scope = profiler_.scope("lookup");
    if (cache_.lookup(key, &report)) {
      return finish(Status::kHit, t0, std::move(report));
    }
  }

  // Miss: coalesce onto an in-flight twin, or enqueue — all under qmu_.
  std::shared_ptr<Job> job;
  bool submitter = false;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    if (stop_) return finish(Status::kShutdown, t0, {});
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      job = it->second;
      n_coalesced_.fetch_add(1, std::memory_order_relaxed);
      if (m_coalesced_ != nullptr) m_coalesced_->add();
    } else {
      // Re-check the cache: a worker may have finished this key between
      // our lookup above and this lock.  Its cache insert happened before
      // its in-flight erase (both ends synchronize on qmu_), so an absent
      // in-flight entry guarantees the cached result is visible here.
      auto scope = profiler_.scope("lookup");
      if (cache_.lookup(key, &report)) {
        return finish(Status::kHit, t0, std::move(report));
      }
      if (queue_.size() >= queue_depth_) {
        return finish(Status::kShed, t0, {});
      }
      job = std::make_shared<Job>();
      job->key = key;
      job->config = std::move(config);
      job->system = reg.system;
      job->dt_fs = dt_fs;
      job->respa_k = respa_k;
      inflight_.emplace(key, job);
      queue_.push_back(job);
      if (m_queue_depth_ != nullptr) {
        m_queue_depth_->set(static_cast<double>(queue_.size()));
      }
      submitter = true;
    }
  }
  qcv_.notify_one();

  {
    auto scope = profiler_.scope("wait");
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&job] { return job->done; });
    report = job->report;
  }
  return finish(submitter ? Status::kMiss : Status::kCoalesced, t0,
                std::move(report));
}

EstimatorService::Stats EstimatorService::stats() const {
  Stats s;
  s.queries = n_queries_.load(std::memory_order_relaxed);
  s.hits = n_hits_.load(std::memory_order_relaxed);
  s.misses = n_misses_.load(std::memory_order_relaxed);
  s.coalesced = n_coalesced_.load(std::memory_order_relaxed);
  s.shed = n_shed_.load(std::memory_order_relaxed);
  s.evaluated = n_evaluated_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(qmu_);
    s.queued = queue_.size();
  }
  s.cache = cache_.stats();
  return s;
}

}  // namespace anton::svc
