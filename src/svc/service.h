// EstimatorService: sweep-as-a-service in front of AntonMachine::estimate().
//
// The sweep harness (core/sweep.h) answers "evaluate these N points once";
// the service answers the production shape of the same question: a long-
// running daemon absorbing estimator queries from many client threads,
// where the stream repeats itself (parameter-sweep frontends walk
// overlapping grids; interactive users re-ask baseline points).  Three
// mechanisms turn that repetition into throughput:
//
//   * content-addressed cache (svc/result_cache.h): the model is a pure
//     function of (config, system, dt_fs, respa_k), so results are cached
//     under a canonical digest of that tuple (svc/cache_key.h); a hit is
//     bitwise identical to recompute.
//   * request coalescing: concurrent queries for the same key collapse
//     onto one in-flight evaluation — N duplicate requests cost one
//     estimate() plus N-1 condition-variable waits.
//   * admission control: the job queue is bounded; when it is full new
//     misses are shed with an explicit kShed status instead of queueing
//     without bound, so latency stays bounded under overload and clients
//     can back off.
//
// Threading: workers run on the existing ThreadPool.  start() launches one
// driver thread that calls pool->for_each_thread(worker_loop) — the pool's
// threads (driver included, as pool index 0) become service workers until
// shutdown(), which drains every accepted job before releasing the pool.
// While the service is running the pool belongs to it: do not dispatch
// other parallel_for work on the same pool (ThreadPool's documented
// non-reentrancy).
//
// Exactly-once evaluation: a worker inserts the finished report into the
// cache *before* erasing the in-flight entry (both ends synchronize on the
// queue mutex), and a missed lookup re-checks the cache under that mutex
// before enqueueing.  A key therefore never evaluates twice while the
// cache holds it — with an adequate cache budget, evaluations == distinct
// keys exactly (property-tested in tests/test_svc.cc).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/threadpool.h"
#include "core/machine.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "svc/cache_key.h"
#include "svc/result_cache.h"

namespace anton::svc {

// How a query was satisfied (or not).
enum class Status {
  kHit,        // served from the result cache
  kMiss,       // this query triggered the evaluation
  kCoalesced,  // attached to another query's in-flight evaluation
  kShed,       // rejected: queue at capacity (no report)
  kShutdown,   // rejected: service stopped (no report)
};

const char* status_name(Status s);

struct QueryResult {
  Status status = Status::kShutdown;
  core::PerfReport report;  // valid for kHit / kMiss / kCoalesced
  double latency_ms = 0.0;
};

class EstimatorService {
 public:
  struct Options {
    ThreadPool* pool = nullptr;     // required; borrowed, not owned
    size_t cache_bytes = 64 << 20;  // result-cache budget
    size_t queue_depth = 256;       // max queued (not in-flight) jobs
    // Optional telemetry: when set, the service registers svc.* metrics
    // (hit/miss/coalesced/shed counters, queue-depth gauge, latency
    // histogram) and phase-profiles key/lookup/evaluate/wait.
    obs::MetricsRegistry* metrics = nullptr;
    // Test seam: replaces AntonMachine::estimate for job evaluation.  The
    // deterministic concurrency tests (tests/test_svc.cc) use a gated
    // evaluator to hold a worker mid-job and observe coalescing /
    // load-shedding without timing assumptions.  Cold path: constructed
    // once per service, invoked per *evaluation* (not per query), so the
    // per-query no-std::function contract holds.
    // anton-lint: allow(des-std-function)
    std::function<core::PerfReport(const arch::MachineConfig&, const System&,
                                   double dt_fs, int respa_k)>
        evaluator;
  };

  struct Stats {
    uint64_t queries = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t coalesced = 0;
    uint64_t shed = 0;
    uint64_t evaluated = 0;  // actual estimate() calls
    size_t queued = 0;       // jobs waiting for a worker right now
    ResultCache::Stats cache;
  };

  explicit EstimatorService(const Options& options);
  EstimatorService(const EstimatorService&) = delete;
  EstimatorService& operator=(const EstimatorService&) = delete;
  ~EstimatorService();  // implies shutdown()

  // Registers a workload; the returned id names it in queries.  The system
  // is copied once and fingerprinted once (O(atoms)); queries then pay
  // O(config) hashing only.  Thread-safe, allowed while running.
  int register_system(const System& system);

  // Starts the workers.  Queries before start() are answered from the
  // cache or shed (kShutdown) — nothing can evaluate without workers.
  void start();

  // Stops accepting work, drains every accepted job, releases the pool.
  // Idempotent.  Queries racing with shutdown either complete or return
  // kShutdown; none hang.
  void shutdown();
  bool running() const;

  // Blocking query: returns when the report is available (hit, computed,
  // or coalesced) or immediately on shed/shutdown.  `config` is shared,
  // not copied, unless it carries telemetry sink paths (those are stripped
  // so cached and fresh evaluations have identical side effects — the key
  // ignores them, see svc/cache_key.h).  Safe from any thread except the
  // service's own workers.
  QueryResult query(std::shared_ptr<const arch::MachineConfig> config,
                    int system_id, double dt_fs = 2.5, int respa_k = 2);
  QueryResult query(const arch::MachineConfig& config, int system_id,
                    double dt_fs = 2.5, int respa_k = 2);

  Stats stats() const;
  const ResultCache& cache() const { return cache_; }
  size_t queue_depth() const { return queue_depth_; }

 private:
  struct RegisteredSystem {
    std::shared_ptr<const System> system;
    uint64_t digest = 0;
  };

  // One in-flight evaluation; duplicate queries attach as waiters.
  struct Job {
    CacheKey key;
    std::shared_ptr<const arch::MachineConfig> config;
    std::shared_ptr<const System> system;
    double dt_fs = 2.5;
    int respa_k = 2;

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    core::PerfReport report;  // valid once done
  };

  void worker_loop();
  void evaluate(Job& job);
  QueryResult finish(Status status, double t0, core::PerfReport report);

  ThreadPool* pool_;
  size_t queue_depth_;
  // Options::evaluator test seam, copied once at construction; see the
  // Options field for the contract.
  // anton-lint: allow(des-std-function)
  std::function<core::PerfReport(const arch::MachineConfig&, const System&,
                                 double, int)>
      evaluator_;
  ResultCache cache_;

  // Telemetry (null when Options::metrics is null).
  obs::PhaseProfiler profiler_;
  obs::Counter* m_queries_ = nullptr;
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_coalesced_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Histo* m_latency_ms_ = nullptr;

  mutable std::mutex smu_;  // guards systems_
  std::vector<RegisteredSystem> systems_;

  // Queue state.  qmu_ is the synchronization backbone: the queue, the
  // in-flight table, and the stop flag all live under it, and the
  // cache-insert-before-inflight-erase ordering (see file comment) rides
  // on its acquire/release.
  mutable std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::map<CacheKey, std::shared_ptr<Job>> inflight_;
  bool stop_ = true;      // flips false in start(), true in shutdown()
  bool started_ = false;  // driver thread launched

  std::atomic<uint64_t> n_queries_{0};
  std::atomic<uint64_t> n_hits_{0};
  std::atomic<uint64_t> n_misses_{0};
  std::atomic<uint64_t> n_coalesced_{0};
  std::atomic<uint64_t> n_shed_{0};
  std::atomic<uint64_t> n_evaluated_{0};

  std::thread driver_;
};

}  // namespace anton::svc
