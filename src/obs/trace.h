// TraceWriter: streaming Chrome trace-event JSON (chrome://tracing /
// Perfetto "JSON trace" format).
//
// The writer emits the object form {"traceEvents":[...]} with complete ("X"),
// counter ("C"), instant ("i") and metadata ("M") events.  Timestamps and
// durations are microseconds (the unit the format mandates); sub-microsecond
// spans are expressed fractionally, which Perfetto resolves to nanoseconds.
// Two clock domains share one file, separated by pid:
//
//   kPidMd      functional MD engine — wall-clock phases
//   kPidMachine DES task-graph execution — SimTime
//   kPidNoc     torus packet lifecycles and per-link occupancy — SimTime
//   kPidQueue   event-queue depth counter track — SimTime
//
// Events are appended to the output stream under a mutex as they are
// reported, so traces survive crashes up to the last flush and memory use
// is O(1) in trace length.  The closing bracket is written by the
// destructor; tools/validate_trace.py checks emitted files parse.
//
// A null TraceWriter pointer is the disabled state everywhere in the tree:
// instrumentation sites test the pointer and skip all formatting work, so
// default runs pay a branch per site and nothing else.
#pragma once

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>

namespace anton::obs {

// Process-id namespaces for the subsystems sharing one trace.
inline constexpr int kPidMd = 1;
inline constexpr int kPidMachine = 2;
inline constexpr int kPidNoc = 3;
inline constexpr int kPidQueue = 4;

class TraceWriter {
 public:
  // Returns nullptr (telemetry disabled) for an empty path.
  static std::unique_ptr<TraceWriter> open(const std::string& path);

  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  struct Arg {
    const char* key;
    double value;
  };

  // Complete event: a [ts, ts+dur] span on (pid, tid).
  void complete(const char* name, const char* cat, double ts_us, double dur_us,
                int pid, int tid, std::initializer_list<Arg> args = {});
  // Counter track: one series sample at ts.
  void counter(const char* name, double ts_us, int pid, const char* series,
               double value);
  void instant(const char* name, const char* cat, double ts_us, int pid,
               int tid);
  // Metadata: names shown in the Perfetto track list.
  void process_name(int pid, const std::string& name);
  void thread_name(int pid, int tid, const std::string& name);

  void flush();
  uint64_t events_written() const { return events_; }
  const std::string& path() const { return path_; }

  // Offset (µs) added to every subsequent event timestamp.  Subsystems that
  // restart their clock (e.g. a fresh DES event queue per simulated step)
  // set this before emitting so consecutive runs lay out sequentially on
  // the trace timeline instead of stacking at t = 0.
  void set_ts_offset_us(double off_us);
  double ts_offset_us() const;

 private:
  // Writes the leading separator and shared "ph"/"ts" fields; caller holds
  // mu_ and finishes the record.
  void begin_event(char ph, double ts_us);

  mutable std::mutex mu_;
  std::ofstream out_;
  std::string path_;
  uint64_t events_ = 0;
  double ts_offset_us_ = 0;
  bool closed_ = false;
};

}  // namespace anton::obs
