#include "obs/metrics.h"

#include <fstream>
#include <sstream>

#include "common/error.h"
#include "obs/json.h"

namespace anton::obs {

MetricsRegistry::Entry& MetricsRegistry::lookup(std::string_view name) {
  ANTON_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  const auto it = entries_.find(name);
  if (it != entries_.end()) return it->second;
  return entries_.emplace(std::string(name), Entry{}).first->second;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = lookup(name);
  if (!e.counter) {
    ANTON_CHECK_MSG(!e.gauge && !e.stat && !e.histo,
                    "metric '" << std::string(name)
                               << "' already registered with another kind");
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = lookup(name);
  if (!e.gauge) {
    ANTON_CHECK_MSG(!e.counter && !e.stat && !e.histo,
                    "metric '" << std::string(name)
                               << "' already registered with another kind");
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Stat* MetricsRegistry::stat(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = lookup(name);
  if (!e.stat) {
    ANTON_CHECK_MSG(!e.counter && !e.gauge && !e.histo,
                    "metric '" << std::string(name)
                               << "' already registered with another kind");
    e.stat = std::make_unique<Stat>();
  }
  return e.stat.get();
}

Histo* MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                  int bins) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = lookup(name);
  if (!e.histo) {
    ANTON_CHECK_MSG(!e.counter && !e.gauge && !e.stat,
                    "metric '" << std::string(name)
                               << "' already registered with another kind");
    e.histo = std::make_unique<Histo>(lo, hi, bins);
  }
  return e.histo.get();
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.empty();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::vector<std::string> MetricsRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    out.push_back(name);
  }
  return out;
}

namespace {

void write_stat_fields(std::ostream& os, const RunningStat& s) {
  os << "\"count\":" << s.count() << ",\"mean\":" << json_double(s.mean())
     << ",\"stddev\":" << json_double(s.stddev())
     << ",\"min\":" << json_double(s.min())
     << ",\"max\":" << json_double(s.max())
     << ",\"sum\":" << json_double(s.sum());
}

void write_histo_fields(std::ostream& os, const Histogram& h) {
  os << "\"lo\":" << json_double(h.bin_lo(0))
     << ",\"hi\":" << json_double(h.bin_hi(h.bins() - 1))
     << ",\"total\":" << h.total() << ",\"p50\":" << json_double(h.quantile(0.5))
     << ",\"p90\":" << json_double(h.quantile(0.9))
     << ",\"p95\":" << json_double(h.quantile(0.95))
     << ",\"p99\":" << json_double(h.quantile(0.99)) << ",\"counts\":[";
  for (int b = 0; b < h.bins(); ++b) {
    if (b) os << ',';
    os << h.count(b);
  }
  os << ']';
}

// RFC-4180 field quoting: names containing a comma, quote, or newline would
// otherwise shift every downstream column.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "{\"schema\":\"anton.metrics.v1\",\"metrics\":{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{";
    if (e.counter) {
      os << "\"type\":\"counter\",\"value\":" << e.counter->value();
    } else if (e.gauge) {
      os << "\"type\":\"gauge\",\"value\":" << json_double(e.gauge->value());
    } else if (e.stat) {
      os << "\"type\":\"stat\",";
      write_stat_fields(os, e.stat->snapshot());
    } else if (e.histo) {
      os << "\"type\":\"histogram\",";
      write_histo_fields(os, e.histo->snapshot());
    } else {
      os << "\"type\":\"unset\"";
    }
    os << '}';
  }
  os << "}}";
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  os << "name,field,value\n";
  for (const auto& [raw_name, e] : entries_) {
    const std::string name = csv_field(raw_name);
    if (e.counter) {
      os << name << ",value," << e.counter->value() << '\n';
    } else if (e.gauge) {
      os << name << ",value," << json_double(e.gauge->value()) << '\n';
    } else if (e.stat) {
      const RunningStat s = e.stat->snapshot();
      os << name << ",count," << s.count() << '\n'
         << name << ",mean," << json_double(s.mean()) << '\n'
         << name << ",stddev," << json_double(s.stddev()) << '\n'
         << name << ",min," << json_double(s.min()) << '\n'
         << name << ",max," << json_double(s.max()) << '\n'
         << name << ",sum," << json_double(s.sum()) << '\n';
    } else if (e.histo) {
      const Histogram h = e.histo->snapshot();
      os << name << ",total," << h.total() << '\n'
         << name << ",p50," << json_double(h.quantile(0.5)) << '\n'
         << name << ",p90," << json_double(h.quantile(0.9)) << '\n'
         << name << ",p95," << json_double(h.quantile(0.95)) << '\n'
         << name << ",p99," << json_double(h.quantile(0.99)) << '\n';
    }
  }
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void MetricsRegistry::save_json(const std::string& path) const {
  std::ofstream out(path);
  ANTON_CHECK_MSG(out.good(), "cannot open metrics output '" << path << "'");
  write_json(out);
  out << '\n';
}

void MetricsRegistry::save_csv(const std::string& path) const {
  std::ofstream out(path);
  ANTON_CHECK_MSG(out.good(), "cannot open metrics output '" << path << "'");
  write_csv(out);
}

}  // namespace anton::obs
