// PerfCounters: a perf_event_open group-read wrapper for hardware
// utilization counters.
//
// One PerfCounters object opens a single counter *group* — cycles (leader),
// instructions, LLC loads, LLC misses, branch misses, task clock — bound to
// the thread that constructed it, so one read() syscall returns a
// consistent simultaneous snapshot of all six.  Derived metrics (IPC, LLC
// miss rate) are what actually explain kernel behaviour on commodity CPUs:
// wall clock alone cannot distinguish "fewer instructions" from "fewer
// stalls", which is the distinction the vectorization and cache-blocking
// work lives or dies by.
//
// Graceful degradation is a hard requirement: perf_event_open is routinely
// blocked (kernel.perf_event_paranoid > 2, seccomp in containers, non-Linux
// hosts) and individual events are often missing (LLC events inside VMs).
// Every failure mode degrades to available() == false or to a sample with
// the affected fields zero; nothing else in the telemetry layer changes
// behaviour.  unavailable_reason() says why, and the registry export writes
// "<prefix>.perf.available" so snapshots are self-describing.
//
// Counters are scaled for multiplexing using the group's
// TIME_ENABLED/TIME_RUNNING ratio, so samples stay meaningful when the
// kernel rotates more groups than the PMU has slots.
//
// Thread binding: the group counts the *constructing* thread only
// (inherit=0 — group reads and inheritance do not compose).  PhaseProfiler
// checks owned_by_this_thread() before sampling a scope, so worker-thread
// scopes never charge main-thread counts to their phase.
#pragma once

#include <cstdint>
#include <string>
#include <thread>

namespace anton::obs {

// One multiplex-scaled counter snapshot.  Raw totals accumulate from
// construction; subtract two snapshots for a per-scope delta.
struct PerfSample {
  double cycles = 0;
  double instructions = 0;
  double llc_loads = 0;
  double llc_misses = 0;
  double branch_misses = 0;
  double task_clock_ns = 0;
  bool valid = false;  // false: counters unavailable, all fields zero

  double ipc() const { return cycles > 0 ? instructions / cycles : 0.0; }
  double llc_miss_rate() const {
    return llc_loads > 0 ? llc_misses / llc_loads : 0.0;
  }
  double branch_miss_per_kinst() const {
    return instructions > 0 ? 1e3 * branch_misses / instructions : 0.0;
  }

  PerfSample operator-(const PerfSample& o) const {
    PerfSample d;
    d.valid = valid && o.valid;
    if (!d.valid) return d;
    d.cycles = cycles - o.cycles;
    d.instructions = instructions - o.instructions;
    d.llc_loads = llc_loads - o.llc_loads;
    d.llc_misses = llc_misses - o.llc_misses;
    d.branch_misses = branch_misses - o.branch_misses;
    d.task_clock_ns = task_clock_ns - o.task_clock_ns;
    return d;
  }
};

class PerfCounters {
 public:
  // Opens the counter group on the calling thread.  Never throws: failure
  // leaves the object constructed with available() == false.
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const { return available_; }
  // Human-readable reason when !available(); empty otherwise.
  const std::string& unavailable_reason() const { return reason_; }

  // Totals since construction.  valid == false when unavailable or the
  // group read failed; individual events that failed to open read as zero.
  PerfSample read() const;

  bool owned_by_this_thread() const {
    return owner_ == std::this_thread::get_id();
  }

  // Number of events that actually opened (of the six requested).
  int events_open() const { return n_open_; }

  // ANTON_PERF=1 opts run-level instrumentation (MD engine, DES host
  // sampling) in; off by default because each scope costs two read()
  // syscalls.
  static bool env_enabled();

  // Test hook: when set, subsequently constructed objects behave exactly as
  // if perf_event_open had been refused — the fallback path under test.
  static void force_unavailable_for_testing(bool on);

 private:
  static constexpr int kMaxEvents = 6;
  int fds_[kMaxEvents];       // open fds, creation order; leader first
  int slot_of_[kMaxEvents];   // fds_[i] fills PerfSample slot slot_of_[i]
  int n_open_ = 0;
  bool available_ = false;
  std::string reason_;
  std::thread::id owner_;
};

}  // namespace anton::obs
