// Flight recorder: always-on, per-thread, lock-free last-N-events buffers.
//
// Every thread that records gets its own SPSC ring of fixed-size 32-byte
// POD records (phase spans, DES event executions, NoC sends, invariant
// tags, free-form marks).  The owning thread is the only writer; the dumper
// is the only reader and runs at crash time or on request.  Steady-state
// writes are a masked index computation plus one 32-byte store and a
// release head bump — no heap allocation, no lock, no formatting — so hot
// paths annotated ANTON_HOT_NOALLOC can record without losing their
// callgraph-verified purity (the one-time per-thread ring attach is the
// sanctioned amortized-warmup exception, like the event arena).
//
// The payoff is crash forensics: install_crash_handler() wires the
// recorder into anton::detail::fail (every ANTON_CHECK / invariant
// failure) and into the fatal-signal set (SIGSEGV, SIGABRT, SIGBUS,
// SIGFPE, SIGILL, SIGTERM, SIGINT), so when a run dies the last N records
// per thread dump as a Chrome-trace JSON file — "test died under TSan"
// becomes a replayable timeline loadable in ui.perfetto.dev.  The signal
// path formats with snprintf into a stack buffer and write()s the fd
// directly; no allocator or stdio state is touched after the fault.
//
// Clock domains: wall-clock records (phases, marks, invariants) stamp
// obs::wall_seconds(); DES-side records (event executions, NoC sends)
// reuse the simulated-nanosecond timestamps they already have, costing no
// clock read in the 10M-events/s queue loop.  The dump separates the two
// domains by trace pid (kPidFlightWall / kPidFlightSim).
//
// Environment knobs:
//   ANTON_FLIGHT=0           disable recording entirely
//   ANTON_FLIGHT_DEPTH=N     per-thread ring capacity (rounded up to a
//                            power of two; default 4096 = 128 KiB/thread)
//   ANTON_FLIGHT_PATH=FILE   dump destination (default anton_flight.<pid>.json)
//   ANTON_FLIGHT_EXIT_DUMP=1 also dump on clean process exit (smoke tests)
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "obs/profiler.h"

namespace anton::obs {

// Trace pids for the flight-recorder dump (6..8 reserved for future obs
// tracks; 1..4 are the live TraceWriter domains in obs/trace.h).
inline constexpr int kPidFlightWall = 9;
inline constexpr int kPidFlightSim = 10;

namespace flight {

enum class Kind : uint32_t {
  kMark = 0,       // free-form instant (wall clock)
  kPhase = 1,      // completed profiler scope: t = begin s, payload = dur ns
  kDesEvent = 2,   // DES event executed: t = sim ns, payload = event seq
  kNocSend = 3,    // NoC delivery planned: t = sim ns, payload = src<<32|dst
  kInvariant = 4,  // check failure: label = expr, payload = line
  kPdesWindow = 5, // parallel-DES window barrier: t = window end (sim ns),
                   // payload = events executed in the window
};

struct Record {
  double t;           // wall seconds (kMark/kPhase/kInvariant) or sim ns
  const char* label;  // static string literal; never owned
  uint64_t payload;
  Kind kind;
  uint32_t pad;
};
static_assert(sizeof(Record) == 32, "flight records are 32-byte POD");
static_assert(std::is_trivially_copyable_v<Record>);

// One per-thread ring.  write() is the owner thread only; the release head
// store publishes the record to the (crash-time) reader.
class Ring {
 public:
  void write(Kind k, const char* label, double t, uint64_t payload) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    Record& r = buf_[h & mask_];
    r.t = t;
    r.label = label;
    r.payload = payload;
    r.kind = k;
    r.pad = 0;
    head_.store(h + 1, std::memory_order_release);
  }

  uint64_t written() const { return head_.load(std::memory_order_acquire); }
  uint64_t capacity() const { return mask_ + 1; }

 private:
  friend struct GlobalState;
  Record* buf_ = nullptr;  // owned by the global state; never freed mid-run
  uint64_t mask_ = 0;
  std::atomic<uint64_t> head_{0};
};

namespace detail {
// Cold path: registers this thread's ring (first record on the thread).
// Returns nullptr when recording is disabled or the thread table is full.
Ring* attach_this_thread();
inline thread_local Ring* t_ring = nullptr;
inline thread_local bool t_attach_tried = false;

inline Ring* ring() {
  Ring* r = t_ring;
  if (r != nullptr) return r;
  if (t_attach_tried) return nullptr;
  return attach_this_thread();
}
}  // namespace detail

// Record with an explicit timestamp (t in the kind's clock domain).
inline void record_at(Kind k, const char* label, double t,
                      uint64_t payload = 0) {
  Ring* r = detail::ring();
  if (r != nullptr) r->write(k, label, t, payload);
}

// Wall-clock record (kMark / kInvariant).
inline void record(Kind k, const char* label, uint64_t payload = 0) {
  Ring* r = detail::ring();
  if (r != nullptr) r->write(k, label, wall_seconds(), payload);
}

// Simulated-time record (kDesEvent / kNocSend): no clock read.
inline void record_sim(Kind k, const char* label, double sim_ns,
                       uint64_t payload = 0) {
  record_at(k, label, sim_ns, payload);
}

// Completed phase span from the profiler.
inline void record_phase(const char* label, double t0, double t1) {
  record_at(Kind::kPhase, label, t0,
            static_cast<uint64_t>((t1 - t0) * 1e9));
}

// Arms crash dumping: installs the anton::detail failure hook (ANTON_CHECK
// and invariant failures) and the fatal-signal handlers, and registers the
// exit-dump when ANTON_FLIGHT_EXIT_DUMP=1.  Idempotent; a non-null path
// overrides ANTON_FLIGHT_PATH / the default for subsequent dumps.
void install_crash_handler(const char* path = nullptr);

// The path crash dumps go to (after install_crash_handler resolution).
const char* dump_path();

// Writes all rings as a Chrome-trace JSON file; returns false on I/O error.
// Safe from normal (non-signal) context only.
bool dump(const char* path);

struct Stats {
  int threads = 0;        // rings attached
  uint64_t records = 0;   // total writes (including overwritten)
  uint64_t retained = 0;  // records currently held across all rings
};
Stats stats();

// Test-only: drops every ring, clears the dumped-once latch and the cached
// env config so the next attach re-reads ANTON_FLIGHT*.  Only call when no
// other thread is recording (their thread-local ring pointers would dangle).
void reset_for_testing();

}  // namespace flight
}  // namespace anton::obs
