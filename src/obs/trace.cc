#include "obs/trace.h"

#include "common/error.h"
#include "obs/json.h"

namespace anton::obs {

std::unique_ptr<TraceWriter> TraceWriter::open(const std::string& path) {
  if (path.empty()) return nullptr;
  return std::make_unique<TraceWriter>(path);
}

TraceWriter::TraceWriter(const std::string& path) : path_(path) {
  out_.open(path);
  ANTON_CHECK_MSG(out_.good(), "cannot open trace output '" << path << "'");
  out_ << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"generator\":"
          "\"anton2sim\"},\"traceEvents\":[";
}

TraceWriter::~TraceWriter() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!closed_) {
    out_ << "\n]}\n";
    out_.close();
    closed_ = true;
  }
}

void TraceWriter::begin_event(char ph, double ts_us) {
  out_ << (events_ == 0 ? "\n" : ",\n");
  ++events_;
  // Metadata events carry no meaningful timestamp; leave them at 0 so the
  // offset never pushes track names off the timeline.
  if (ph != 'M') ts_us += ts_offset_us_;
  out_ << "{\"ph\":\"" << ph << "\",\"ts\":" << json_double(ts_us);
}

void TraceWriter::set_ts_offset_us(double off_us) {
  std::lock_guard<std::mutex> lk(mu_);
  ts_offset_us_ = off_us;
}

double TraceWriter::ts_offset_us() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ts_offset_us_;
}

void TraceWriter::complete(const char* name, const char* cat, double ts_us,
                           double dur_us, int pid, int tid,
                           std::initializer_list<Arg> args) {
  if (dur_us < 0) dur_us = 0;
  std::lock_guard<std::mutex> lk(mu_);
  begin_event('X', ts_us);
  out_ << ",\"dur\":" << json_double(dur_us) << ",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"name\":\"" << json_escape(name)
       << "\",\"cat\":\"" << json_escape(cat) << '"';
  if (args.size() > 0) {
    out_ << ",\"args\":{";
    bool first = true;
    for (const Arg& a : args) {
      if (!first) out_ << ',';
      first = false;
      out_ << '"' << json_escape(a.key) << "\":" << json_double(a.value);
    }
    out_ << '}';
  }
  out_ << '}';
}

void TraceWriter::counter(const char* name, double ts_us, int pid,
                          const char* series, double value) {
  std::lock_guard<std::mutex> lk(mu_);
  begin_event('C', ts_us);
  out_ << ",\"pid\":" << pid << ",\"name\":\"" << json_escape(name)
       << "\",\"args\":{\"" << json_escape(series)
       << "\":" << json_double(value) << "}}";
}

void TraceWriter::instant(const char* name, const char* cat, double ts_us,
                          int pid, int tid) {
  std::lock_guard<std::mutex> lk(mu_);
  begin_event('i', ts_us);
  out_ << ",\"pid\":" << pid << ",\"tid\":" << tid << ",\"s\":\"t\",\"name\":\""
       << json_escape(name) << "\",\"cat\":\"" << json_escape(cat) << "\"}";
}

void TraceWriter::process_name(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  begin_event('M', 0.0);
  out_ << ",\"pid\":" << pid << ",\"name\":\"process_name\",\"args\":{"
       << "\"name\":\"" << json_escape(name) << "\"}}";
}

void TraceWriter::thread_name(int pid, int tid, const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  begin_event('M', 0.0);
  out_ << ",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(name) << "\"}}";
}

void TraceWriter::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  out_.flush();
}

}  // namespace anton::obs
