#include "obs/perfcounters.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace anton::obs {

namespace {
std::atomic<bool> g_force_unavailable{false};
}  // namespace

bool PerfCounters::env_enabled() {
  static const bool on = [] {
    const char* env = std::getenv("ANTON_PERF");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }();
  return on;
}

void PerfCounters::force_unavailable_for_testing(bool on) {
  g_force_unavailable.store(on, std::memory_order_relaxed);
}

#if defined(__linux__)

namespace {

// PerfSample slot indices, mirrored by the read() unpacking below.
enum Slot {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kBranchMisses,
  kTaskClock,
};

struct EventSpec {
  uint32_t type;
  uint64_t config;
  int slot;
};

// Leader first: the group schedules as one unit and read() returns every
// member in creation order.
constexpr EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, kCycles},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, kInstructions},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16),
     kLlcLoads},
    {PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16),
     kLlcMisses},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, kBranchMisses},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, kTaskClock},
};

int open_event(const EventSpec& spec, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // leader starts the whole group
  attr.exclude_kernel = 1;                 // works at perf_event_paranoid<=2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                  /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

}  // namespace

PerfCounters::PerfCounters() : owner_(std::this_thread::get_id()) {
  for (int& fd : fds_) fd = -1;
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    reason_ = "forced unavailable (test hook)";
    return;
  }
  const int leader = open_event(kEvents[0], -1);
  if (leader < 0) {
    reason_ = std::string("perf_event_open(cycles) failed: ") +
              std::strerror(errno) +
              " (check kernel.perf_event_paranoid or container seccomp)";
    return;
  }
  fds_[n_open_] = leader;
  slot_of_[n_open_] = kEvents[0].slot;
  ++n_open_;
  // Members are best-effort: a VM without LLC events still yields IPC.
  for (size_t i = 1; i < sizeof(kEvents) / sizeof(kEvents[0]); ++i) {
    const int fd = open_event(kEvents[i], leader);
    if (fd < 0) continue;
    fds_[n_open_] = fd;
    slot_of_[n_open_] = kEvents[i].slot;
    ++n_open_;
  }
  if (ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    reason_ = std::string("PERF_EVENT_IOC_ENABLE failed: ") +
              std::strerror(errno);
    for (int i = 0; i < n_open_; ++i) close(fds_[i]);
    n_open_ = 0;
    return;
  }
  available_ = true;
}

PerfCounters::~PerfCounters() {
  for (int i = 0; i < n_open_; ++i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
}

PerfSample PerfCounters::read() const {
  PerfSample s;
  if (!available_) return s;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  uint64_t buf[3 + kMaxEvents];
  const ssize_t want =
      static_cast<ssize_t>((3 + static_cast<size_t>(n_open_)) * sizeof(uint64_t));
  if (::read(fds_[0], buf, static_cast<size_t>(want)) != want) return s;
  if (buf[0] != static_cast<uint64_t>(n_open_)) return s;
  const double enabled = static_cast<double>(buf[1]);
  const double running = static_cast<double>(buf[2]);
  // Multiplex scaling; running == 0 means the group never got PMU time.
  const double scale = running > 0 ? enabled / running : 0.0;
  double slots[kMaxEvents] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < n_open_; ++i) {
    slots[slot_of_[i]] = static_cast<double>(buf[3 + i]) * scale;
  }
  s.cycles = slots[kCycles];
  s.instructions = slots[kInstructions];
  s.llc_loads = slots[kLlcLoads];
  s.llc_misses = slots[kLlcMisses];
  s.branch_misses = slots[kBranchMisses];
  s.task_clock_ns = slots[kTaskClock];
  s.valid = true;
  return s;
}

#else  // !__linux__

PerfCounters::PerfCounters() : owner_(std::this_thread::get_id()) {
  for (int& fd : fds_) fd = -1;
  reason_ = "perf_event_open is Linux-only";
  if (g_force_unavailable.load(std::memory_order_relaxed)) {
    reason_ = "forced unavailable (test hook)";
  }
}

PerfCounters::~PerfCounters() = default;

PerfSample PerfCounters::read() const { return PerfSample{}; }

#endif  // __linux__

}  // namespace anton::obs
