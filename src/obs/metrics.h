// MetricsRegistry: the unified telemetry sink for the DES machine model,
// the NoC, and the functional MD engine.
//
// Metrics are named hierarchically with dot-separated components
// ("noc.link.occupancy", "md.phase.pair.seconds"); the snapshot writers
// export a flat, sorted name → record map so downstream tooling can address
// any metric by its full name.  Four metric kinds:
//
//   Counter   monotonically increasing integer (lock-free, relaxed atomics)
//   Gauge     last-written double (lock-free)
//   Stat      RunningStat sink (mean/stddev/min/max/sum; mutex-protected)
//   Histo     fixed-bin Histogram sink (mutex-protected)
//
// All sinks are thread-safe so the threaded MD pipeline can feed them from
// worker threads.  Pointers returned by the registry are stable for the
// registry's lifetime, so hot paths look a metric up once and keep the
// pointer: the per-sample cost is an atomic add (Counter/Gauge) or one
// uncontended mutex (Stat/Histo).  Registration is idempotent — asking for
// an existing name of the same kind returns the same object; a kind
// mismatch throws.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"

namespace anton::obs {

class Counter {
 public:
  void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Thread-safe RunningStat sink.
class Stat {
 public:
  void add(double x) {
    std::lock_guard<std::mutex> lk(mu_);
    s_.add(x);
  }
  void merge(const RunningStat& o) {
    std::lock_guard<std::mutex> lk(mu_);
    s_.merge(o);
  }
  RunningStat snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return s_;
  }

 private:
  mutable std::mutex mu_;
  RunningStat s_;
};

// Thread-safe Histogram sink.
class Histo {
 public:
  Histo(double lo, double hi, int bins) : h_(lo, hi, bins) {}
  void add(double x) {
    std::lock_guard<std::mutex> lk(mu_);
    h_.add(x);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return h_;
  }

 private:
  mutable std::mutex mu_;
  Histogram h_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Stat* stat(std::string_view name);
  // Creates (or returns) a histogram; the [lo, hi)/bins shape is fixed by
  // the first registration and later registrations just return the sink.
  Histo* histogram(std::string_view name, double lo, double hi, int bins);

  bool empty() const;
  size_t size() const;
  std::vector<std::string> names() const;

  // Snapshot export.  JSON schema (stable, "anton.metrics.v1"):
  //   {"schema": "anton.metrics.v1",
  //    "metrics": {"<name>": {"type": "counter"|"gauge"|"stat"|"histogram",
  //                           ...kind-specific fields...}, ...}}
  // CSV: one "name,field,value" row per exported scalar.
  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  std::string json() const;
  void save_json(const std::string& path) const;
  void save_csv(const std::string& path) const;

 private:
  struct Entry {
    // Exactly one of these is set; kind is implied by which.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Stat> stat;
    std::unique_ptr<Histo> histo;
  };

  Entry& lookup(std::string_view name);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace anton::obs
