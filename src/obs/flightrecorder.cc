#include "obs/flightrecorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "common/error.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#define ANTON_FLIGHT_HAVE_SIGNALS 1
#else
#define ANTON_FLIGHT_HAVE_SIGNALS 0
#endif

namespace anton::obs::flight {

// Non-anonymous so Ring's friend declaration resolves.
struct GlobalState {
  static constexpr int kMaxThreads = 128;
  static constexpr uint64_t kDefaultDepth = 4096;

  std::mutex mu;                 // guards attach / config / regular dump
  Ring rings[kMaxThreads];
  Record* buffers[kMaxThreads] = {nullptr};
  std::atomic<int> n{0};
  bool config_loaded = false;
  bool enabled = true;
  uint64_t depth = kDefaultDepth;
  char path[512] = {0};
  std::atomic<bool> handlers_installed{false};
  std::atomic<bool> fail_dumped{false};

  void load_config_locked() {
    if (config_loaded) return;
    config_loaded = true;
    const char* env = std::getenv("ANTON_FLIGHT");
    enabled = !(env != nullptr && std::strcmp(env, "0") == 0);
    depth = kDefaultDepth;
    if (const char* d = std::getenv("ANTON_FLIGHT_DEPTH")) {
      const long v = std::strtol(d, nullptr, 10);
      if (v > 0) {
        uint64_t p = 64;
        while (p < static_cast<uint64_t>(v) && p < (1ULL << 20)) p <<= 1;
        depth = p;
      }
    }
    if (path[0] == '\0') {
      const char* p = std::getenv("ANTON_FLIGHT_PATH");
      if (p != nullptr && *p != '\0') {
        std::snprintf(path, sizeof(path), "%s", p);
      } else {
        std::snprintf(path, sizeof(path), "anton_flight.%ld.json",
                      static_cast<long>(getpid()));
      }
    }
  }

  // Ring member access lives here (GlobalState is Ring's only friend).
  Ring* attach_locked() {
    load_config_locked();
    if (!enabled) return nullptr;
    const int i = n.load(std::memory_order_relaxed);
    if (i >= kMaxThreads) return nullptr;
    buffers[i] = new Record[depth]();
    rings[i].buf_ = buffers[i];
    rings[i].mask_ = depth - 1;
    rings[i].head_.store(0, std::memory_order_relaxed);
    n.store(i + 1, std::memory_order_release);
    return &rings[i];
  }

  void reset_locked() {
    const int count = n.load(std::memory_order_relaxed);
    n.store(0, std::memory_order_release);
    for (int i = 0; i < count; ++i) {
      rings[i].buf_ = nullptr;
      rings[i].mask_ = 0;
      rings[i].head_.store(0, std::memory_order_relaxed);
      delete[] buffers[i];
      buffers[i] = nullptr;
    }
    config_loaded = false;
    path[0] = '\0';
    fail_dumped.store(false, std::memory_order_relaxed);
  }
};

namespace {

GlobalState& g() {
  static GlobalState s;
  return s;
}

// ---------------------------------------------------------------------------
// Dump helpers.  Both writers (buffered and signal-safe) walk the same
// snapshot logic; the formatting differs only in where bytes go.

struct RingView {
  const Ring* ring;
  const Record* buf;
  uint64_t first, count, cap;
  int tid;
};

int snapshot_views(RingView* out, int max) {
  GlobalState& s = g();
  const int n = std::min(s.n.load(std::memory_order_acquire), max);
  for (int i = 0; i < n; ++i) {
    const Ring& r = s.rings[i];
    const uint64_t head = r.written();
    const uint64_t cap = r.capacity();
    const uint64_t count = std::min(head, cap);
    out[i] = RingView{&r, s.buffers[i], head - count, count, cap, i};
  }
  return n;
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kMark: return "mark";
    case Kind::kPhase: return "phase";
    case Kind::kDesEvent: return "des.event";
    case Kind::kNocSend: return "noc.send";
    case Kind::kInvariant: return "invariant";
    case Kind::kPdesWindow: return "pdes.window";
  }
  return "unknown";
}

bool wall_domain(Kind k) {
  return k == Kind::kMark || k == Kind::kPhase || k == Kind::kInvariant;
}

// Minimal JSON string escaping into a bounded buffer (labels are static
// literals — phase names, CHECK expressions — but expressions can contain
// quotes and backslashes).
void escape_label(const char* in, char* out, size_t cap) {
  size_t o = 0;
  for (const char* p = in; *p != '\0' && o + 2 < cap; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      out[o++] = '\\';
      out[o++] = *p;
    } else if (c < 0x20) {
      out[o++] = ' ';
    } else {
      out[o++] = *p;
    }
  }
  out[o] = '\0';
}

// The wall-clock epoch for a dump: the earliest wall-domain timestamp, so
// ts values are small positive microseconds instead of absolute uptimes.
double wall_epoch(const RingView* views, int n) {
  double epoch = 0;
  bool seen = false;
  for (int i = 0; i < n; ++i) {
    for (uint64_t j = views[i].first; j < views[i].first + views[i].count;
         ++j) {
      const Record& r = views[i].buf[j & (views[i].cap - 1)];
      if (wall_domain(r.kind) && (!seen || r.t < epoch)) {
        epoch = r.t;
        seen = true;
      }
    }
  }
  return epoch;
}

// Formats one record as a trace event into buf; returns bytes written.
int format_record(char* buf, size_t cap, const Record& r, int tid,
                  double epoch) {
  char label[256];
  escape_label(r.label != nullptr ? r.label : "?", label, sizeof(label));
  const bool wall = wall_domain(r.kind);
  const int pid = wall ? kPidFlightWall : kPidFlightSim;
  const double ts_us = wall ? (r.t - epoch) * 1e6 : r.t * 1e-3;
  if (r.kind == Kind::kPhase) {
    const double dur_us = static_cast<double>(r.payload) * 1e-3;
    return std::snprintf(
        buf, cap,
        ",\n{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"kind\":\"phase\"}}",
        label, ts_us, dur_us, pid, tid);
  }
  return std::snprintf(
      buf, cap,
      ",\n{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"t\","
      "\"ts\":%.3f,\"pid\":%d,\"tid\":%d,"
      "\"args\":{\"kind\":\"%s\",\"payload\":%" PRIu64 "}}",
      label, ts_us, pid, tid, kind_name(r.kind), r.payload);
}

// Per-(tid, domain) window span so every dump contains at least one "X"
// event and viewers get a track extent even for instant-only rings.
int format_window(char* buf, size_t cap, const RingView& v, bool sim_domain,
                  double epoch) {
  double lo = 0, hi = 0;
  bool seen = false;
  for (uint64_t j = v.first; j < v.first + v.count; ++j) {
    const Record& r = v.buf[j & (v.cap - 1)];
    if (wall_domain(r.kind) == sim_domain) continue;
    const double ts = sim_domain ? r.t * 1e-3 : (r.t - epoch) * 1e6;
    if (!seen) {
      lo = hi = ts;
      seen = true;
    } else {
      lo = std::min(lo, ts);
      hi = std::max(hi, ts);
    }
  }
  if (!seen) return 0;
  return std::snprintf(
      buf, cap,
      ",\n{\"name\":\"flight.window\",\"cat\":\"flight\",\"ph\":\"X\","
      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,"
      "\"args\":{\"records\":%" PRIu64 "}}",
      lo, hi - lo,
      sim_domain ? kPidFlightSim : kPidFlightWall, v.tid, v.count);
}

// Shared dump body over an abstract sink: fn(buf, len) must write len bytes.
template <class Sink>
bool dump_to(Sink&& sink) {
  RingView views[GlobalState::kMaxThreads];
  const int n = snapshot_views(views, GlobalState::kMaxThreads);
  const double epoch = wall_epoch(views, n);

  char buf[1024];
  int len = std::snprintf(
      buf, sizeof(buf),
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
      "\"args\":{\"name\":\"flight.wall\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
      "\"args\":{\"name\":\"flight.sim\"}}",
      kPidFlightWall, kPidFlightSim);
  if (!sink(buf, len)) return false;

  uint64_t total = 0;
  for (int i = 0; i < n; ++i) {
    for (int dom = 0; dom < 2; ++dom) {
      len = format_window(buf, sizeof(buf), views[i], dom == 1, epoch);
      if (len > 0 && !sink(buf, len)) return false;
    }
    for (uint64_t j = views[i].first; j < views[i].first + views[i].count;
         ++j) {
      const Record& r = views[i].buf[j & (views[i].cap - 1)];
      len = format_record(buf, sizeof(buf), r, views[i].tid, epoch);
      if (!sink(buf, len)) return false;
      ++total;
    }
  }

  len = std::snprintf(buf, sizeof(buf),
                      "\n],\n\"flight\":{\"schema\":\"anton.flight.v1\","
                      "\"threads\":%d,\"records\":%" PRIu64 "}}\n",
                      n, total);
  return sink(buf, len);
}

bool dump_to_file(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = dump_to([f](const char* b, int len) {
    return std::fwrite(b, 1, static_cast<size_t>(len), f) ==
           static_cast<size_t>(len);
  });
  std::fclose(f);
  return ok;
}

#if ANTON_FLIGHT_HAVE_SIGNALS
// Async-signal-safe dump: open/write/close only, formatting via snprintf
// into stack buffers.  Ring snapshots race against still-running threads;
// a torn record at worst mislabels one event in a crash dump.
void dump_signal_safe(const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  dump_to([fd](const char* b, int len) {
    ssize_t off = 0;
    while (off < len) {
      const ssize_t w = ::write(fd, b + off, static_cast<size_t>(len - off));
      if (w <= 0) return false;
      off += w;
    }
    return true;
  });
  ::close(fd);
}

void fatal_signal_handler(int sig) {
  dump_signal_safe(g().path);
  // Disposition was installed with SA_RESETHAND: re-raising terminates with
  // the default action (and the correct wait status for the parent).
  raise(sig);
}
#endif  // ANTON_FLIGHT_HAVE_SIGNALS

// Invariant / ANTON_CHECK failure hook: tag the timeline, then dump once
// per process (EXPECT_THROW-style tests would otherwise rewrite the file on
// every caught failure).
void on_check_failure(const char* expr, const char* file, int line) noexcept {
  (void)file;
  record(Kind::kInvariant, expr, static_cast<uint64_t>(line));
  GlobalState& s = g();
  bool expected = false;
  if (s.fail_dumped.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    dump_to_file(s.path);
  }
}

void exit_dump() { dump_to_file(g().path); }

}  // namespace

namespace detail {

Ring* attach_this_thread() {
  t_attach_tried = true;
  GlobalState& s = g();
  std::lock_guard<std::mutex> lk(s.mu);
  t_ring = s.attach_locked();
  return t_ring;
}

}  // namespace detail

void install_crash_handler(const char* path) {
  GlobalState& s = g();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (path != nullptr && *path != '\0') {
      std::snprintf(s.path, sizeof(s.path), "%s", path);
      s.config_loaded = false;  // re-resolve enabled/depth lazily
    }
    s.load_config_locked();
  }
  bool expected = false;
  if (!s.handlers_installed.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;
  }
  anton::detail::set_failure_hook(&on_check_failure);
#if ANTON_FLIGHT_HAVE_SIGNALS
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &fatal_signal_handler;
  sa.sa_flags = SA_RESETHAND;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL, SIGTERM,
                  SIGINT}) {
    sigaction(sig, &sa, nullptr);
  }
#endif
  if (const char* e = std::getenv("ANTON_FLIGHT_EXIT_DUMP")) {
    if (*e != '\0' && std::strcmp(e, "0") != 0) std::atexit(&exit_dump);
  }
}

const char* dump_path() {
  GlobalState& s = g();
  std::lock_guard<std::mutex> lk(s.mu);
  s.load_config_locked();
  return s.path;
}

bool dump(const char* path) {
  GlobalState& s = g();
  std::lock_guard<std::mutex> lk(s.mu);
  return dump_to_file(path);
}

Stats stats() {
  GlobalState& s = g();
  Stats st;
  st.threads = s.n.load(std::memory_order_acquire);
  for (int i = 0; i < st.threads; ++i) {
    const uint64_t head = s.rings[i].written();
    st.records += head;
    st.retained += std::min(head, s.rings[i].capacity());
  }
  return st;
}

void reset_for_testing() {
  GlobalState& s = g();
  std::lock_guard<std::mutex> lk(s.mu);
  s.reset_locked();
  detail::t_ring = nullptr;
  detail::t_attach_tried = false;
}

}  // namespace anton::obs::flight
