// PhaseProfiler: scoped phase timing for the two clock domains in the tree.
//
// The MD engine is profiled in wall-clock time (the host actually executes
// it); the DES machine model is profiled in SimTime (the event queue's
// simulated nanoseconds) via record_seconds / the ExecStats exporters in
// core/.  Both feed the same MetricsRegistry, producing one uniform
// per-phase breakdown: each phase label becomes a Stat named
// "<prefix>.phase.<label>.seconds" whose sum is the total time spent in
// that phase and whose count is the number of scopes.
//
// Usage (hot path):
//   PhaseProfiler prof;                       // disabled: scopes are no-ops
//   prof.enable(&registry, "md", trace, pid); // turn on
//   { auto s = prof.scope("pair"); ... }      // RAII: times the block
//
// Disabled cost: Scope construction checks one pointer and stores two
// words; no clock is read.  Enabled cost: two steady_clock reads plus one
// mutex-guarded RunningStat add (and one trace record when a TraceWriter is
// attached).
//
// wall_seconds() below is the single sanctioned wall-clock read in the
// library: anton-lint's raw-clock rule forbids std::chrono::steady_clock
// calls outside src/obs/, so every timing measurement flows through here
// and is visible to the telemetry layer.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace anton::obs {

// Monotonic wall-clock seconds since an arbitrary epoch.
inline double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  // Attaches sinks and arms the profiler.  Phase stats are registered under
  // "<prefix>.phase.<label>.seconds"; trace spans (optional) are emitted on
  // (trace_pid, trace_tid) with ts relative to the enable() call.
  void enable(MetricsRegistry* registry, std::string prefix,
              TraceWriter* trace = nullptr, int trace_pid = kPidMd,
              int trace_tid = 0);
  void disable();
  bool enabled() const { return registry_ != nullptr; }

  MetricsRegistry* registry() const { return registry_; }
  TraceWriter* trace() const { return trace_; }
  double epoch() const { return epoch_; }

  class Scope {
   public:
    Scope(PhaseProfiler* p, const char* phase)
        : p_(p != nullptr && p->enabled() ? p : nullptr), phase_(phase) {
      if (p_ != nullptr) t0_ = wall_seconds();
    }
    ~Scope() {
      if (p_ != nullptr) p_->finish(phase_, t0_, wall_seconds());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler* p_;
    const char* phase_;
    double t0_ = 0;
  };

  Scope scope(const char* phase) { return Scope(this, phase); }

  // Manual recording for measurements made elsewhere (e.g. per-thread spans
  // inside the pair kernel, or SimTime converted by the DES exporters).
  void record_seconds(const char* phase, double seconds);

  // The stat backing a phase label (creates it on first use).  Stable
  // pointer; safe to cache.  Null when disabled.
  Stat* phase_stat(const char* phase);

 private:
  friend class Scope;
  void finish(const char* phase, double t0, double t1);

  MetricsRegistry* registry_ = nullptr;
  TraceWriter* trace_ = nullptr;
  std::string prefix_;
  int pid_ = kPidMd;
  int tid_ = 0;
  double epoch_ = 0;
  std::mutex mu_;  // guards cache_
  // Keyed by the phase literal's address: phase labels are string literals
  // in practice, so the common case is one map probe per scope.
  std::map<const char*, Stat*> cache_;
};

}  // namespace anton::obs
