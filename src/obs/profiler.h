// PhaseProfiler: scoped phase timing for the two clock domains in the tree.
//
// The MD engine is profiled in wall-clock time (the host actually executes
// it); the DES machine model is profiled in SimTime (the event queue's
// simulated nanoseconds) via record_seconds / the ExecStats exporters in
// core/.  Both feed the same MetricsRegistry, producing one uniform
// per-phase breakdown: each phase label becomes a Stat named
// "<prefix>.phase.<label>.seconds" whose sum is the total time spent in
// that phase and whose count is the number of scopes.
//
// Usage (hot path):
//   PhaseProfiler prof;                       // disabled: scopes are no-ops
//   prof.enable(&registry, "md", trace, pid); // turn on
//   { auto s = prof.scope("pair"); ... }      // RAII: times the block
//
// Disabled cost: Scope construction checks one pointer and stores two
// words; no clock is read.  Enabled cost: two steady_clock reads plus one
// mutex-guarded RunningStat add (and one trace record when a TraceWriter is
// attached).
//
// wall_seconds() below is the single sanctioned wall-clock read in the
// library: anton-lint's raw-clock rule forbids std::chrono::steady_clock
// calls outside src/obs/, so every timing measurement flows through here
// and is visible to the telemetry layer.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "obs/perfcounters.h"
#include "obs/trace.h"

namespace anton::obs {

// Monotonic wall-clock seconds since an arbitrary epoch.
inline double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class PhaseProfiler {
 public:
  PhaseProfiler() = default;
  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  // Attaches sinks and arms the profiler.  Phase stats are registered under
  // "<prefix>.phase.<label>.seconds"; trace spans (optional) are emitted on
  // (trace_pid, trace_tid) with ts relative to the enable() call.
  void enable(MetricsRegistry* registry, std::string prefix,
              TraceWriter* trace = nullptr, int trace_pid = kPidMd,
              int trace_tid = 0);
  void disable();
  bool enabled() const { return registry_ != nullptr; }

  // Attaches a hardware-counter group: every subsequent scope that runs on
  // the counters' owner thread also exports "<prefix>.phase.<label>.ipc"
  // and ".llc_miss_rate" stats next to the ".seconds" stat, and the
  // registry gains a "<prefix>.perf.available" gauge (0/1).  An unavailable
  // PerfCounters (blocked syscall, non-Linux) degrades to seconds-only
  // profiling — scopes never pay the two read() syscalls.  Call after
  // enable(); nullptr detaches.
  void enable_perf(PerfCounters* perf);
  PerfCounters* perf() const { return perf_; }
  bool perf_sampling() const {
    return perf_ != nullptr && perf_->available() &&
           perf_->owned_by_this_thread();
  }

  MetricsRegistry* registry() const { return registry_; }
  TraceWriter* trace() const { return trace_; }
  double epoch() const { return epoch_; }

  class Scope {
   public:
    Scope(PhaseProfiler* p, const char* phase)
        : p_(p != nullptr && p->enabled() ? p : nullptr), phase_(phase) {
      if (p_ != nullptr) {
        if (p_->perf_sampling()) {
          perf0_ = p_->perf_->read();
          perf_armed_ = perf0_.valid;
        }
        t0_ = wall_seconds();
      }
    }
    ~Scope() {
      if (p_ != nullptr) {
        p_->finish(phase_, t0_, wall_seconds());
        if (perf_armed_) {
          p_->finish_perf(phase_, p_->perf_->read() - perf0_);
        }
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseProfiler* p_;
    const char* phase_;
    double t0_ = 0;
    PerfSample perf0_;
    bool perf_armed_ = false;
  };

  Scope scope(const char* phase) { return Scope(this, phase); }

  // Manual recording for measurements made elsewhere (e.g. per-thread spans
  // inside the pair kernel, or SimTime converted by the DES exporters).
  void record_seconds(const char* phase, double seconds);

  // The stat backing a phase label (creates it on first use).  Stable
  // pointer; safe to cache.  Null when disabled.
  Stat* phase_stat(const char* phase);

 private:
  friend class Scope;
  void finish(const char* phase, double t0, double t1);
  void finish_perf(const char* phase, const PerfSample& delta);

  // Per-phase sinks, registered lazily; ipc/llc_miss_rate only materialize
  // once a perf-armed scope actually closes on that phase.
  struct PhaseSinks {
    Stat* seconds = nullptr;
    Stat* ipc = nullptr;
    Stat* llc_miss_rate = nullptr;
  };
  PhaseSinks* phase_sinks(const char* phase);

  MetricsRegistry* registry_ = nullptr;
  TraceWriter* trace_ = nullptr;
  PerfCounters* perf_ = nullptr;
  std::string prefix_;
  int pid_ = kPidMd;
  int tid_ = 0;
  double epoch_ = 0;
  std::mutex mu_;  // guards cache_
  // Keyed by the phase literal's address: phase labels are string literals
  // in practice, so the common case is one map probe per scope.
  std::map<const char*, PhaseSinks> cache_;
};

}  // namespace anton::obs
