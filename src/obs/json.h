// Minimal JSON emission helpers shared by the metrics snapshot writer and
// the Chrome-trace writer.  Emission only — the project has no JSON parser
// dependency; validation of emitted files lives in tools/validate_trace.py.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace anton::obs {

// Escapes a string for use inside a JSON string literal.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Formats a double as a valid JSON number.  JSON has no NaN/Inf tokens, so
// non-finite values map to null (callers that must distinguish should clamp
// beforehand).  %.17g round-trips every double exactly.
inline std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace anton::obs
