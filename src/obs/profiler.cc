#include "obs/profiler.h"

#include <utility>

#include "obs/flightrecorder.h"

namespace anton::obs {

void PhaseProfiler::enable(MetricsRegistry* registry, std::string prefix,
                           TraceWriter* trace, int trace_pid, int trace_tid) {
  std::lock_guard<std::mutex> lk(mu_);
  registry_ = registry;
  trace_ = trace;
  prefix_ = std::move(prefix);
  pid_ = trace_pid;
  tid_ = trace_tid;
  epoch_ = wall_seconds();
  cache_.clear();
}

void PhaseProfiler::disable() {
  std::lock_guard<std::mutex> lk(mu_);
  registry_ = nullptr;
  trace_ = nullptr;
  perf_ = nullptr;
  cache_.clear();
}

void PhaseProfiler::enable_perf(PerfCounters* perf) {
  std::lock_guard<std::mutex> lk(mu_);
  perf_ = perf;
  if (registry_ != nullptr && perf != nullptr) {
    registry_->gauge(prefix_ + ".perf.available")
        ->set(perf->available() ? 1.0 : 0.0);
  }
}

PhaseProfiler::PhaseSinks* PhaseProfiler::phase_sinks(const char* phase) {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = cache_.find(phase);
  if (it != cache_.end()) return &it->second;
  PhaseSinks sinks;
  sinks.seconds = registry_->stat(prefix_ + ".phase." + phase + ".seconds");
  return &cache_.emplace(phase, sinks).first->second;
}

Stat* PhaseProfiler::phase_stat(const char* phase) {
  PhaseSinks* sinks = phase_sinks(phase);
  return sinks != nullptr ? sinks->seconds : nullptr;
}

void PhaseProfiler::record_seconds(const char* phase, double seconds) {
  Stat* s = phase_stat(phase);
  if (s != nullptr) s->add(seconds);
}

void PhaseProfiler::finish(const char* phase, double t0, double t1) {
  Stat* s = phase_stat(phase);
  if (s == nullptr) return;  // disabled between scope open and close
  s->add(t1 - t0);
  flight::record_phase(phase, t0, t1);
  if (trace_ != nullptr) {
    trace_->complete(phase, prefix_.c_str(), (t0 - epoch_) * 1e6,
                     (t1 - t0) * 1e6, pid_, tid_);
  }
}

void PhaseProfiler::finish_perf(const char* phase, const PerfSample& delta) {
  if (!delta.valid || registry_ == nullptr) return;
  Stat* ipc = nullptr;
  Stat* llc = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (registry_ == nullptr) return;
    PhaseSinks& sinks = cache_[phase];
    if (sinks.seconds == nullptr) {
      sinks.seconds = registry_->stat(prefix_ + ".phase." + phase + ".seconds");
    }
    if (delta.cycles > 0 && sinks.ipc == nullptr) {
      sinks.ipc = registry_->stat(prefix_ + ".phase." + phase + ".ipc");
    }
    if (delta.llc_loads > 0 && sinks.llc_miss_rate == nullptr) {
      sinks.llc_miss_rate =
          registry_->stat(prefix_ + ".phase." + phase + ".llc_miss_rate");
    }
    ipc = sinks.ipc;
    llc = sinks.llc_miss_rate;
  }
  if (delta.cycles > 0 && ipc != nullptr) ipc->add(delta.ipc());
  if (delta.llc_loads > 0 && llc != nullptr) llc->add(delta.llc_miss_rate());
}

}  // namespace anton::obs
