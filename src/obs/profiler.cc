#include "obs/profiler.h"

#include <utility>

namespace anton::obs {

void PhaseProfiler::enable(MetricsRegistry* registry, std::string prefix,
                           TraceWriter* trace, int trace_pid, int trace_tid) {
  std::lock_guard<std::mutex> lk(mu_);
  registry_ = registry;
  trace_ = trace;
  prefix_ = std::move(prefix);
  pid_ = trace_pid;
  tid_ = trace_tid;
  epoch_ = wall_seconds();
  cache_.clear();
}

void PhaseProfiler::disable() {
  std::lock_guard<std::mutex> lk(mu_);
  registry_ = nullptr;
  trace_ = nullptr;
  cache_.clear();
}

Stat* PhaseProfiler::phase_stat(const char* phase) {
  if (registry_ == nullptr) return nullptr;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = cache_.find(phase);
  if (it != cache_.end()) return it->second;
  Stat* s = registry_->stat(prefix_ + ".phase." + phase + ".seconds");
  cache_.emplace(phase, s);
  return s;
}

void PhaseProfiler::record_seconds(const char* phase, double seconds) {
  Stat* s = phase_stat(phase);
  if (s != nullptr) s->add(seconds);
}

void PhaseProfiler::finish(const char* phase, double t0, double t1) {
  Stat* s = phase_stat(phase);
  if (s == nullptr) return;  // disabled between scope open and close
  s->add(t1 - t0);
  if (trace_ != nullptr) {
    trace_->complete(phase, prefix_.c_str(), (t0 - epoch_) * 1e6,
                     (t1 - t0) * 1e6, pid_, tid_);
  }
}

}  // namespace anton::obs
