#include "noc/torus.h"

#include <algorithm>

#include "obs/flightrecorder.h"

namespace anton::noc {

Torus::Torus(const TorusConfig& config, sim::EventQueue* queue)
    : config_(config), queue_(queue) {
  ANTON_CHECK(queue != nullptr);
  ANTON_CHECK_MSG(config.nx >= 1 && config.ny >= 1 && config.nz >= 1,
                  "torus dimensions must be positive");
  ANTON_CHECK(config.link_bandwidth_gbs > 0 && config.hop_latency_ns >= 0);
  link_free_.assign(static_cast<size_t>(num_nodes()) * 6, 0.0);
  link_busy_total_.assign(link_free_.size(), 0.0);
  link_derate_.assign(link_free_.size(), 1.0);
  mcast_head_.assign(link_free_.size(), 0.0);
  mcast_mark_.assign(link_free_.size(), 0);
  for (const auto& d : config.derated_links) {
    derate_link(d.node, d.dir, d.factor);
  }
}

void Torus::derate_link(int node, int dir, double factor) {
  ANTON_CHECK_MSG(node >= 0 && node < num_nodes() && dir >= 0 && dir < 6,
                  "bad link id (" << node << "," << dir << ")");
  ANTON_CHECK_MSG(factor >= 1.0, "derate factor must be >= 1");
  link_derate_[static_cast<size_t>(link_index({node, dir}))] = factor;
}

namespace {
// Steps along one ring axis taking the shorter way; returns (+1/-1 step,
// number of hops).
std::pair<int, int> ring_steps(int from, int to, int n) {
  const int fwd = (to - from + n) % n;
  const int bwd = n - fwd;
  if (fwd == 0) return {0, 0};
  if (fwd <= bwd) return {+1, fwd};
  return {-1, bwd};
}
}  // namespace

// Appends into caller-owned scratch; growth amortized.
void Torus::route_ordered_into(int src, int dst, const int (&axis_order)[3],
                               std::vector<LinkId>& out) const {
  ANTON_HOT_NOALLOC();
  int x, y, z, dx, dy, dz;
  coords(src, &x, &y, &z);
  coords(dst, &dx, &dy, &dz);

  const int dims[3] = {config_.nx, config_.ny, config_.nz};
  int cur[3] = {x, y, z};
  const int target[3] = {dx, dy, dz};
  for (int a = 0; a < 3; ++a) {
    const int axis = axis_order[a];
    const auto [step, hops] = ring_steps(cur[axis], target[axis], dims[axis]);
    for (int h = 0; h < hops; ++h) {
      const int dir = axis * 2 + (step > 0 ? 0 : 1);
      out.push_back(  // anton-lint: allow(hot-alloc) amortized scratch growth
          {rank(cur[0], cur[1], cur[2]), dir});
      cur[axis] = (cur[axis] + step + dims[axis]) % dims[axis];
    }
  }
}

std::vector<LinkId> Torus::route_ordered(int src, int dst,
                                         const int (&axis_order)[3]) const {
  std::vector<LinkId> links;
  route_ordered_into(src, dst, axis_order, links);
  return links;
}

void Torus::route_into(int src, int dst, std::vector<LinkId>& out) const {
  ANTON_HOT_NOALLOC();
  static constexpr int kOrders[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                        {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  if (config_.routing == RoutingPolicy::kRandomizedOrder) {
    // Deterministic hash of (src, dst, per-torus sequence number): the same
    // simulation replays identically, but repeated traffic between a node
    // pair spreads across all six minimal path families.
    uint64_t h = 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(src) * 0xBF58476D1CE4E5B9ull;
    h ^= static_cast<uint64_t>(dst) * 0x94D049BB133111EBull;
    h ^= ++route_seq_;
    h *= 0xD2B74407B1CE6E93ull;
    h ^= h >> 29;
    route_ordered_into(src, dst, kOrders[h % 6], out);
    return;
  }
  route_ordered_into(src, dst, kOrders[0], out);
}

std::vector<LinkId> Torus::route(int src, int dst) const {
  std::vector<LinkId> links;
  route_into(src, dst, links);
  return links;
}

int Torus::hop_count(int src, int dst) const {
  int x, y, z, dx, dy, dz;
  coords(src, &x, &y, &z);
  coords(dst, &dx, &dy, &dz);
  const int dims[3] = {config_.nx, config_.ny, config_.nz};
  const int a[3] = {x, y, z}, b[3] = {dx, dy, dz};
  int hops = 0;
  for (int axis = 0; axis < 3; ++axis) {
    hops += ring_steps(a[axis], b[axis], dims[axis]).second;
  }
  return hops;
}

sim::SimTime Torus::traverse(sim::SimTime now, std::span<const LinkId> links,
                             double wire_bytes) {
  ANTON_HOT_NOALLOC();
  const double base_ser_ns =
      wire_bytes / config_.link_bandwidth_gbs;  // B / (GB/s) = ns
  sim::SimTime head = now + config_.injection_overhead_ns;
  double last_ser_ns = base_ser_ns;
  for (const auto& l : links) {
    const size_t idx = static_cast<size_t>(link_index(l));
    const double ser_ns = base_ser_ns * link_derate_[idx];
    const sim::SimTime start = std::max(head, link_free_[idx]);
    // Link occupancy is append-only: a message may never reserve a slot
    // before the link's current busy-until horizon (sends are issued from
    // discrete events in time order, so this would mean causality broke).
    ANTON_CHECK_INVARIANT(start + ser_ns >= link_free_[idx],
                          "link busy-until horizon moved backwards on link ("
                              << l.node << "," << l.dir << ")");
    link_free_[idx] = start + ser_ns;
    link_busy_total_[idx] += ser_ns;
    observe_link(l, start, ser_ns);
    head = start + config_.hop_latency_ns;
    last_ser_ns = ser_ns;
  }
  // Tail clears the final link one serialization time after the head leaves.
  return head + last_ser_ns;
}

sim::SimTime Torus::plan_unicast_at(sim::SimTime now, int src, int dst,
                                    double bytes) {
  ANTON_HOT_NOALLOC();
  ANTON_CHECK(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes());
  ANTON_CHECK(bytes >= 0);
  const double wire_bytes = bytes + config_.packet_overhead_bytes;
  sim::SimTime deliver;
  int hops = 0;
  if (src == dst) {
    deliver = now + config_.injection_overhead_ns;
  } else {
    route_scratch_.clear();
    route_into(src, dst, route_scratch_);
    hops = static_cast<int>(route_scratch_.size());
    deliver = traverse(now, route_scratch_, wire_bytes);
  }
  stats_.messages++;
  // total_bytes counts link-bytes (payload × links traversed) so unicast and
  // multicast accounting are comparable.
  stats_.total_bytes += wire_bytes * std::max(1, hops);
  stats_.latency_ns.add(deliver - now);
  stats_.hops.add(hops);
  observe_delivery(now, src, dst, wire_bytes, hops, deliver);
  return deliver;
}

void Torus::plan_multicast_at(sim::SimTime now, int src,
                              std::span<const int> dsts, double bytes) {
  ANTON_HOT_NOALLOC();
  ANTON_CHECK(bytes >= 0);
  const double wire_bytes = bytes + config_.packet_overhead_bytes;
  const double ser_ns = wire_bytes / config_.link_bandwidth_gbs;

  // Dimension-ordered tree: union of the unicast routes.  Each tree link is
  // charged once; a node's delivery time is the head arrival at that node
  // plus the final serialization.  The tree is tracked by generation stamp:
  // mcast_mark_[link] == mcast_gen_ marks a link some earlier branch of
  // *this* multicast already reserved.
  ++mcast_gen_;
  mcast_deliver_.resize(  // anton-lint: allow(hot-alloc) amortized scratch
      dsts.size());
  uint64_t tree_links = 0;
  const sim::SimTime inject = now + config_.injection_overhead_ns;

  for (size_t di = 0; di < dsts.size(); ++di) {
    const int dst = dsts[di];
    ANTON_CHECK(dst >= 0 && dst < num_nodes());
    sim::SimTime head = inject;
    int hops = 0;
    double last_ser_ns = ser_ns;
    if (dst != src) {
      // Multicast trees are always dimension-ordered: the hardware tree
      // relies on branches sharing route prefixes, which randomised axis
      // order would destroy.
      static constexpr int kDor[3] = {0, 1, 2};
      route_scratch_.clear();
      route_ordered_into(src, dst, kDor, route_scratch_);
      for (const auto& l : route_scratch_) {
        const size_t idx = static_cast<size_t>(link_index(l));
        const double link_ser = ser_ns * link_derate_[idx];
        if (mcast_mark_[idx] == mcast_gen_) {
          // Link already carries the payload for an earlier branch; this
          // branch rides along.
          head = mcast_head_[idx] + config_.hop_latency_ns;
        } else {
          const sim::SimTime start = std::max(head, link_free_[idx]);
          link_free_[idx] = start + link_ser;
          link_busy_total_[idx] += link_ser;
          observe_link(l, start, link_ser);
          mcast_mark_[idx] = mcast_gen_;
          mcast_head_[idx] = start;
          ++tree_links;
          head = start + config_.hop_latency_ns;
        }
        last_ser_ns = link_ser;
        ++hops;
      }
    }
    const sim::SimTime deliver = head + (dst == src ? 0.0 : last_ser_ns);
    mcast_deliver_[di] = deliver;
    stats_.messages++;
    stats_.latency_ns.add(deliver - now);
    stats_.hops.add(hops);
    observe_delivery(now, src, dst, wire_bytes, hops, deliver);
  }
  // Actual tree traffic: one payload per tree link.
  stats_.total_bytes += wire_bytes * static_cast<double>(tree_links);
}

void Torus::set_telemetry(obs::MetricsRegistry* registry,
                          const std::string& prefix,
                          obs::TraceWriter* trace) {
  trace_ = trace;
  if (registry == nullptr) {
    tel_messages_ = nullptr;
    tel_latency_ = nullptr;
    tel_hops_ = nullptr;
    return;
  }
  // Hop histogram spans the torus diameter; latency gets a generous fixed
  // range (overflow clamps into the top bin, which the snapshot makes
  // visible as a saturated p99).
  const int diameter =
      config_.nx / 2 + config_.ny / 2 + config_.nz / 2;
  tel_messages_ = registry->counter(prefix + ".messages");
  tel_latency_ = registry->histogram(prefix + ".latency_ns", 0.0, 50000.0, 100);
  tel_hops_ = registry->histogram(prefix + ".hops", 0.0,
                                  double(std::max(1, diameter + 1)),
                                  std::max(1, diameter + 1));
}

void Torus::observe_delivery(sim::SimTime now, int src, int dst, double bytes,
                             int hops, sim::SimTime deliver) {
  obs::flight::record_sim(
      obs::flight::Kind::kNocSend, "noc.send", now,
      (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32) |
          static_cast<uint32_t>(dst));
  if (tel_messages_ != nullptr) tel_messages_->add();
  if (tel_latency_ != nullptr) tel_latency_->add(deliver - now);
  if (tel_hops_ != nullptr) tel_hops_->add(double(hops));
  if (trace_ != nullptr) {
    trace_->complete("packet", "noc", now * 1e-3,
                     (deliver - now) * 1e-3, obs::kPidNoc,
                     src,
                     {{"dst", double(dst)},
                      {"bytes", bytes},
                      {"hops", double(hops)}});
  }
}

void Torus::observe_link(const LinkId& l, sim::SimTime start, double ser_ns) {
  if (trace_ != nullptr) {
    trace_->complete("ser", "noc.link", start * 1e-3, ser_ns * 1e-3,
                     obs::kPidNoc, num_nodes() + link_index(l),
                     {{"node", double(l.node)}, {"dir", double(l.dir)}});
  }
}

void Torus::export_link_occupancy(obs::MetricsRegistry* registry,
                                  const std::string& prefix,
                                  double elapsed_ns) const {
  ANTON_CHECK(registry != nullptr);
  ANTON_CHECK_MSG(elapsed_ns > 0, "elapsed window must be positive");
  obs::Histo* occ =
      registry->histogram(prefix + ".link.occupancy", 0.0, 1.0, 50);
  double max_frac = 0, sum_frac = 0;
  for (double b : link_busy_total_) {
    const double frac = std::min(1.0, b / elapsed_ns);
    occ->add(frac);
    max_frac = std::max(max_frac, frac);
    sum_frac += frac;
  }
  registry->gauge(prefix + ".link.occupancy.max")->set(max_frac);
  registry->gauge(prefix + ".link.occupancy.mean")
      ->set(link_busy_total_.empty()
                ? 0.0
                : sum_frac / double(link_busy_total_.size()));
}

void Torus::check_quiescent() const {
  check_conservation();
  // Pool recycle half of the invariant: every delivered packet's callable
  // slot must have been returned to the queue's free list — the arena
  // balances (slots == free + pending) or a slot leaked / double-freed.
  queue_->check_arena();
}

void Torus::set_shard_lanes(int lanes) {
  ANTON_CHECK_MSG(lanes >= 0, "shard lane count must be non-negative");
  for (const auto& lane : delivered_lanes_) {
    ANTON_CHECK_MSG(lane.v == 0, "resizing shard lanes with unfolded counts");
  }
  delivered_lanes_.assign(static_cast<size_t>(lanes), PadCount{});
}

void Torus::fold_shard_lanes() {
  for (auto& lane : delivered_lanes_) {
    delivered_ += lane.v;
    lane.v = 0;
  }
}

void Torus::check_conservation() const {
  // In sharded runs the caller must fold_shard_lanes() first so delivered_
  // holds the torus-wide total; an unfolded lane here is itself a bug.
  for (const auto& lane : delivered_lanes_) {
    ANTON_CHECK_MSG(lane.v == 0,
                    "conservation check with unfolded shard lanes");
  }
  ANTON_CHECK_MSG(delivered_ == injected_,
                  "packet conservation violated: injected "
                      << injected_ << " delivered " << delivered_ << " ("
                      << injected_ - delivered_ << " in flight)");
}

const NocStats& Torus::stats() {
  // Conservation: the model must never deliver a packet it did not inject,
  // and every packet still in flight holds exactly one pending event (its
  // pooled delivery callable) — fewer pending events than in-flight packets
  // means a delivery event was lost or its slot recycled early.  The
  // delivered side is only current between barriers when running sharded
  // (per-shard lanes fold in lazily), so both checks are skipped until the
  // lanes are detached or folded to zero in-flight.
  const bool lanes_armed = !delivered_lanes_.empty();
  (void)lanes_armed;  // invariants compile out in release
  ANTON_CHECK_INVARIANT(lanes_armed || delivered_ <= injected_,
                        "packet over-delivery: injected "
                            << injected_ << " delivered " << delivered_);
  ANTON_CHECK_INVARIANT(lanes_armed ||
                            injected_ - delivered_ <= queue_->pending(),
                        "in-flight packets ("
                            << injected_ - delivered_
                            << ") exceed pending events ("
                            << queue_->pending()
                            << "): a pooled delivery callable was lost");
  stats_.max_link_busy_ns = busiest_link_ns();
  stats_.total_link_busy_ns = 0;
  for (double b : link_busy_total_) stats_.total_link_busy_ns += b;
  return stats_;
}

double Torus::busiest_link_ns() const {
  double m = 0;
  for (double b : link_busy_total_) m = std::max(m, b);
  return m;
}

void Torus::reset_stats() {
  stats_ = NocStats{};
  std::fill(link_busy_total_.begin(), link_busy_total_.end(), 0.0);
  // link_free_ deliberately *not* reset: occupancy persists across phases
  // within a run; reset_stats only clears accounting (see reset_time()).
}

void Torus::reset_time() {
  std::fill(link_free_.begin(), link_free_.end(), 0.0);
  route_seq_ = 0;
}

}  // namespace anton::noc
