// 3D-torus interconnect model.
//
// Anton machines are built around a 3D torus with per-hop routers and
// hardware multicast.  This model captures the three effects that determine
// message timing at MD scale: distance (per-hop router latency), bandwidth
// (per-link serialization with occupancy-based contention), and endpoint
// injection overhead.  Routing is dimension-ordered (x, then y, then z),
// taking the shorter way around each ring.  Multicast follows the
// dimension-ordered tree, charging each tree link exactly once — the
// hardware multicast the paper's import regions rely on.
//
// Granularity: virtual cut-through at whole-message level.  The head
// experiences hop latency per router; each traversed link is occupied for
// the serialization time; delivery completes when the tail clears the final
// link.  Contention is modelled by per-link busy-until bookkeeping, which is
// causally consistent because sends are issued from discrete events in time
// order.
//
// The send path is allocation-free in steady state: timing is planned in
// plan_unicast/plan_multicast using persistent route/tree scratch (the
// multicast tree uses generation-stamped per-link arrays, not a map), and
// delivery callbacks are templated through to the event queue's pooled
// inline-callable arena.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace anton::noc {

// Route-selection policy.  Dimension-ordered routing is deterministic and
// deadlock-free but concentrates load; randomised axis order spreads
// traffic across the (up to) 6 minimal path families, relieving hotspots at
// the cost of a (modelled) deadlock-avoidance VC.
enum class RoutingPolicy {
  kDimensionOrder,
  kRandomizedOrder,
};

struct TorusConfig {
  int nx = 8, ny = 8, nz = 8;
  RoutingPolicy routing = RoutingPolicy::kDimensionOrder;
  double link_bandwidth_gbs = 10.0;    // GB/s per direction per link
  double hop_latency_ns = 30.0;        // router traversal + wire, per hop
  double injection_overhead_ns = 10.0; // endpoint cost per message
  double packet_overhead_bytes = 32.0; // header/CRC added per message

  // Failure injection: individual links running at reduced speed (a failing
  // SerDes lane, a marginal cable).  factor > 1 multiplies the link's
  // serialization time.
  struct DeratedLink {
    int node;
    int dir;  // 0..5: +x,-x,+y,-y,+z,-z
    double factor;
  };
  std::vector<DeratedLink> derated_links;

  int num_nodes() const { return nx * ny * nz; }
};

struct LinkId {
  int node;  // source node of the directed link
  int dir;   // 0..5: +x,-x,+y,-y,+z,-z
  friend bool operator==(const LinkId&, const LinkId&) = default;
};

struct NocStats {
  uint64_t messages = 0;
  double total_bytes = 0;
  RunningStat latency_ns;      // per-delivery
  RunningStat hops;            // per-delivery
  double max_link_busy_ns = 0; // busiest link's total occupancy
  double total_link_busy_ns = 0;
};

class Torus {
 public:
  Torus(const TorusConfig& config, sim::EventQueue* queue);

  const TorusConfig& config() const { return config_; }
  int num_nodes() const { return config_.num_nodes(); }

  int rank(int x, int y, int z) const {
    return (z * config_.ny + y) * config_.nx + x;
  }
  void coords(int rank, int* x, int* y, int* z) const {
    *x = rank % config_.nx;
    *y = (rank / config_.nx) % config_.ny;
    *z = rank / (config_.nx * config_.ny);
  }

  // Minimal route; axis order per the routing policy (randomised order
  // hashes (src, dst, message sequence) deterministically).  Returns the
  // sequence of directed links.
  std::vector<LinkId> route(int src, int dst) const;
  // Route with an explicit axis permutation (perm is a permutation of
  // {0,1,2}).
  std::vector<LinkId> route_ordered(int src, int dst,
                                    const int (&axis_order)[3]) const;
  int hop_count(int src, int dst) const;

  // Sends `bytes` from src to dst; on_delivery fires at the delivery time.
  // src == dst delivers after a fixed local-loopback cost.  The callback is
  // stored inline in the event queue's pooled arena — keep captures small
  // (pointers/indices); oversized captures fail to compile.
  template <class F>
  void unicast(int src, int dst, double bytes, F&& on_delivery) {
    ANTON_HOT_NOALLOC();
    const sim::SimTime deliver = plan_unicast(src, dst, bytes);
    ++injected_;
    queue_->schedule_at(deliver,
                        [this, cb = std::forward<F>(on_delivery)]() mutable {
                          ++delivered_;
                          cb();
                        });
  }

  // Multicasts along the dimension-ordered tree; on_delivery(i) fires once
  // per destination — i indexes into `dsts`, at dsts[i]'s own delivery time
  // (index, not node id, so dispatch on the receiving side is a plain array
  // lookup).  Each tree link carries the payload once.  `dsts` must stay
  // valid until the multicast call returns; the callback is copied per
  // destination, so it must be copyable and small.
  template <class F>
  void multicast(int src, std::span<const int> dsts, double bytes,
                 const F& on_delivery) {
    ANTON_HOT_NOALLOC();
    plan_multicast(src, dsts, bytes);
    for (size_t i = 0; i < dsts.size(); ++i) {
      ++injected_;
      queue_->schedule_at(mcast_deliver_[i],
                          [this, cb = on_delivery, i]() mutable {
                            ++delivered_;
                            cb(static_cast<int>(i));
                          });
    }
  }

  const NocStats& stats();
  void reset_stats();

  // Zeroes per-link busy-until horizons (and the randomized-routing
  // sequence) so a *reset* event queue can replay traffic from t = 0 —
  // without this, links would appear occupied by a previous run.
  // reset_stats() deliberately leaves horizons alone (occupancy persists
  // across phases within a run); callers replaying a run want both.
  void reset_time();

  // Attaches telemetry sinks.  Metrics registered under "<prefix>.":
  //   <prefix>.messages        counter, per delivery
  //   <prefix>.latency_ns      histogram of per-delivery latency
  //   <prefix>.hops            histogram of per-delivery hop count
  // When `trace` is non-null, every link reservation becomes a "ser" span on
  // (obs::kPidNoc, tid = link index) — the per-link serialization occupancy
  // timeline — and every packet a "packet" span on tid = source node with
  // dst/bytes/hops args.  Pass (nullptr, "", nullptr) to detach.
  void set_telemetry(obs::MetricsRegistry* registry, const std::string& prefix,
                     obs::TraceWriter* trace = nullptr);

  // Snapshot of per-link occupancy over an elapsed window: fills
  // "<prefix>.link.occupancy" (histogram of busy_ns / elapsed_ns across all
  // directed links) plus max/mean gauges.  elapsed_ns must be positive.
  void export_link_occupancy(obs::MetricsRegistry* registry,
                             const std::string& prefix,
                             double elapsed_ns) const;

  // Failure injection after construction: multiplies the directed link's
  // serialization time by `factor` (>= 1).
  void derate_link(int node, int dir, double factor);

  // Total occupancy (ns) of the busiest directed link — used by benches to
  // report utilization.
  double busiest_link_ns() const;

  // Packet-conservation accounting (always-on counters; the checks compile
  // out in release unless ANTON_ENABLE_INVARIANTS).  Every unicast counts as
  // one injected packet, every multicast as one per destination; a packet is
  // delivered when its on_delivery callback fires.  Conservation means no
  // packet is ever dropped or duplicated by the model:
  //   delivered <= injected  at all times, and
  //   delivered == injected  once the event queue has drained.
  // An in-flight packet is exactly one pooled callable occupying one event
  // arena slot, so conservation now also covers pool recycling: quiescence
  // requires the queue's arena accounting to balance (no slot leaked, none
  // double-freed).
  uint64_t packets_injected() const { return injected_; }
  uint64_t packets_delivered() const { return delivered_; }
  uint64_t packets_in_flight() const { return injected_ - delivered_; }
  // Always-on validator for tests and end-of-phase barriers: throws unless
  // every injected packet has been delivered and the event pool balances.
  void check_quiescent() const;

  // ---- Sharded (parallel-DES) send path ----------------------------------
  //
  // Under sim::ParallelEngine the node grid is split across shard-private
  // event queues, so the torus can no longer read "now" from the single
  // attached queue nor schedule deliveries into it.  Planning runs on the
  // coordinating thread at window barriers, in canonical (time, node, seq)
  // order, against the same shared link state the serial path uses — link
  // reservation is inherently global, so serializing it at barriers is what
  // keeps the contention model and its causality invariant intact.  The
  // caller then schedules each delivery into the destination node's shard
  // queue and reports it through a per-shard delivered lane.

  // plan_unicast with an explicit current time; returns the delivery time.
  sim::SimTime plan_unicast_at(sim::SimTime now, int src, int dst,
                               double bytes);
  // plan_multicast with an explicit current time; per-destination delivery
  // times are read back through mcast_deliver_time(i) (valid until the next
  // plan_multicast* call).
  void plan_multicast_at(sim::SimTime now, int src, std::span<const int> dsts,
                         double bytes);
  sim::SimTime mcast_deliver_time(size_t i) const { return mcast_deliver_[i]; }

  // Conservation accounting for caller-scheduled deliveries.  note_injected
  // runs on the coordinator while planning; note_delivered runs on whichever
  // worker executes the destination shard's window and bumps that shard's
  // cache-line-padded lane (single writer per window).  fold_shard_lanes —
  // coordinator, at a window barrier — folds the lanes into the aggregate
  // delivered counter so packets_delivered()/check_conservation() see the
  // torus-wide total.  The window-barrier rendezvous orders all of this.
  void set_shard_lanes(int lanes);
  int shard_lanes() const { return static_cast<int>(delivered_lanes_.size()); }
  void note_injected() { ++injected_; }
  void note_delivered(int lane) {
    ++delivered_lanes_[static_cast<size_t>(lane)].v;
  }
  void fold_shard_lanes();

  // The conservation half of check_quiescent(), without the serial queue's
  // arena accounting — the sharded runner pairs this with
  // ParallelEngine::check_arenas() across the shard queues.
  void check_conservation() const;

  // Lower bound on any cross-node delivery latency (injection overhead plus
  // one router hop, before any serialization): the conservative-window
  // lookahead for sharded runs.  Same-node loopback deliveries only
  // guarantee the injection overhead.
  double min_remote_latency_ns() const {
    return config_.injection_overhead_ns + config_.hop_latency_ns;
  }
  double min_loopback_latency_ns() const {
    return config_.injection_overhead_ns;
  }

 private:
  int link_index(const LinkId& l) const {
    return l.node * 6 + l.dir;
  }
  // Advances a message across `links` starting at `now`; returns delivery
  // time.
  sim::SimTime traverse(sim::SimTime now, std::span<const LinkId> links,
                        double wire_bytes);

  // Non-template halves of the send path: all routing, contention and stats
  // bookkeeping, using persistent scratch.  plan_unicast returns the
  // delivery time; plan_multicast fills mcast_deliver_[i] per destination.
  // Both read "now" from the attached serial queue and forward to the _at
  // variants.
  sim::SimTime plan_unicast(int src, int dst, double bytes) {
    return plan_unicast_at(queue_->now(), src, dst, bytes);
  }
  void plan_multicast(int src, std::span<const int> dsts, double bytes) {
    plan_multicast_at(queue_->now(), src, dsts, bytes);
  }

  // Appends the policy-selected route to `out` (persistent-scratch variant
  // of route()).
  void route_into(int src, int dst, std::vector<LinkId>& out) const;
  void route_ordered_into(int src, int dst, const int (&axis_order)[3],
                          std::vector<LinkId>& out) const;

  TorusConfig config_;
  sim::EventQueue* queue_;
  std::vector<sim::SimTime> link_free_;   // busy-until per directed link
  std::vector<double> link_busy_total_;   // accumulated occupancy
  std::vector<double> link_derate_;       // serialization multiplier per link
  mutable uint64_t route_seq_ = 0;        // randomised-routing hash input
  uint64_t injected_ = 0;                 // packets handed to unicast/multicast
  uint64_t delivered_ = 0;                // on_delivery callbacks fired
  NocStats stats_;

  // Per-shard delivery lanes for the parallel engine: one padded counter per
  // shard, each written by a single worker per window, folded into
  // delivered_ at window barriers.  Empty when running serial.
  struct alignas(64) PadCount {
    uint64_t v = 0;
  };
  std::vector<PadCount> delivered_lanes_;

  // Send-path scratch (persistent; grown once, recycled every call).
  mutable std::vector<LinkId> route_scratch_;
  std::vector<sim::SimTime> mcast_deliver_;  // per-destination delivery time
  // Generation-stamped multicast tree: mcast_mark_[link] == mcast_gen_
  // means the link already carries this multicast's payload and
  // mcast_head_[link] is the head departure time — replaces the per-call
  // std::map<(node,dir), SimTime> the old path allocated.
  std::vector<sim::SimTime> mcast_head_;
  std::vector<uint64_t> mcast_mark_;
  uint64_t mcast_gen_ = 0;

  // Telemetry sinks (all null when detached).
  obs::Counter* tel_messages_ = nullptr;
  obs::Histo* tel_latency_ = nullptr;
  obs::Histo* tel_hops_ = nullptr;
  obs::TraceWriter* trace_ = nullptr;

  void observe_delivery(sim::SimTime now, int src, int dst, double bytes,
                        int hops, sim::SimTime deliver);
  void observe_link(const LinkId& l, sim::SimTime start, double ser_ns);
};

}  // namespace anton::noc
