#include "chem/topology.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace anton {

int Topology::add_atom(int type, double charge) {
  ANTON_CHECK_MSG(!finalized_, "cannot add atoms after finalize()");
  ANTON_CHECK(type >= 0 && type < ff_.num_types());
  type_.push_back(type);
  charge_.push_back(charge);
  mass_.push_back(ff_.type(type).mass);
  return num_atoms() - 1;
}

namespace {
void check_index(int i, int n) {
  ANTON_CHECK_MSG(i >= 0 && i < n, "atom index " << i << " out of range [0,"
                                                 << n << ")");
}
}  // namespace

void Topology::add_bond(const BondTerm& b) {
  ANTON_CHECK(!finalized_);
  check_index(b.i, num_atoms());
  check_index(b.j, num_atoms());
  ANTON_CHECK_MSG(b.i != b.j, "self bond");
  bonds_.push_back(b);
}

void Topology::add_angle(const AngleTerm& a) {
  ANTON_CHECK(!finalized_);
  check_index(a.i, num_atoms());
  check_index(a.j, num_atoms());
  check_index(a.k, num_atoms());
  angles_.push_back(a);
}

void Topology::add_dihedral(const DihedralTerm& d) {
  ANTON_CHECK(!finalized_);
  check_index(d.i, num_atoms());
  check_index(d.j, num_atoms());
  check_index(d.k, num_atoms());
  check_index(d.l, num_atoms());
  dihedrals_.push_back(d);
}

void Topology::add_constraint(const Constraint& c) {
  ANTON_CHECK(!finalized_);
  check_index(c.i, num_atoms());
  check_index(c.j, num_atoms());
  ANTON_CHECK(c.length > 0);
  constraints_.push_back(c);
}

void Topology::add_water(const WaterGroup& w) {
  ANTON_CHECK(!finalized_);
  check_index(w.o, num_atoms());
  check_index(w.h1, num_atoms());
  check_index(w.h2, num_atoms());
  waters_.push_back(w);
}

void Topology::add_position_restraint(const PositionRestraint& r) {
  check_index(r.atom, num_atoms());
  ANTON_CHECK(r.k >= 0);
  pos_restraints_.push_back(r);
}

void Topology::add_distance_restraint(const DistanceRestraint& r) {
  check_index(r.i, num_atoms());
  check_index(r.j, num_atoms());
  ANTON_CHECK(r.i != r.j && r.k >= 0 && r.r0 >= 0);
  dist_restraints_.push_back(r);
}

void Topology::end_molecule() {
  ANTON_CHECK(!finalized_);
  ANTON_CHECK_MSG(num_atoms() > molecule_starts_.back(),
                  "empty molecule");
  molecule_starts_.push_back(num_atoms());
}

void Topology::finalize() {
  ANTON_CHECK_MSG(!finalized_, "finalize() called twice");
  if (molecule_starts_.back() != num_atoms()) end_molecule();

  const int n = num_atoms();
  // Adjacency from bonds and constraints (constrained pairs behave like
  // bonds for exclusion purposes; water H-H constraints connect the pair).
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  auto link = [&](int i, int j) {
    adj[static_cast<size_t>(i)].push_back(j);
    adj[static_cast<size_t>(j)].push_back(i);
  };
  for (const auto& b : bonds_) link(b.i, b.j);
  for (const auto& c : constraints_) link(c.i, c.j);
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  // Breadth-first to graph distance 3 from each atom.  Distance 1-2 ->
  // excluded; distance 3 -> excluded from the plain loop but added to the
  // scaled 1-4 list.  Flat vectors + one sort per atom: multi-million-atom
  // systems finalise in seconds.
  std::vector<std::vector<int>> excl(static_cast<size_t>(n));
  std::vector<std::pair<int, int>> p14;
  std::vector<int> dist(static_cast<size_t>(n), -1);
  std::vector<int> touched;
  for (int s = 0; s < n; ++s) {
    touched.clear();
    dist[static_cast<size_t>(s)] = 0;
    touched.push_back(s);
    std::vector<int> frontier{s};
    for (int d = 1; d <= 3; ++d) {
      std::vector<int> next;
      for (int u : frontier) {
        for (int v : adj[static_cast<size_t>(u)]) {
          if (dist[static_cast<size_t>(v)] != -1) continue;
          dist[static_cast<size_t>(v)] = d;
          touched.push_back(v);
          next.push_back(v);
          if (v > s) {
            excl[static_cast<size_t>(s)].push_back(v);
            if (d == 3) p14.push_back({s, v});
          }
        }
      }
      frontier = std::move(next);
    }
    for (int t : touched) dist[static_cast<size_t>(t)] = -1;
    std::sort(excl[static_cast<size_t>(s)].begin(),
              excl[static_cast<size_t>(s)].end());
  }

  // BFS visits each (s, v) at most once per source, so lists are already
  // duplicate-free; p14 inherits the (sorted-by-s) order.
  pairs14_.clear();
  pairs14_.reserve(p14.size());
  for (const auto& [i, j] : p14) pairs14_.push_back({i, j});

  // CSR-ify.
  excl_starts_.assign(static_cast<size_t>(n) + 1, 0);
  size_t total = 0;
  for (int i = 0; i < n; ++i) {
    total += excl[static_cast<size_t>(i)].size();
    excl_starts_[static_cast<size_t>(i) + 1] = static_cast<int>(total);
  }
  excl_.clear();
  excl_.reserve(total);
  for (int i = 0; i < n; ++i) {
    for (int j : excl[static_cast<size_t>(i)]) excl_.push_back(j);
  }

  finalized_ = true;
  validate();
}

bool Topology::excluded(int i, int j) const {
  if (i == j) return true;
  if (i > j) std::swap(i, j);
  const auto ex = exclusions_of(i);
  return std::binary_search(ex.begin(), ex.end(), j);
}

double Topology::total_charge() const {
  double q = 0;
  for (double c : charge_) q += c;
  return q;
}

double Topology::total_mass() const {
  double m = 0;
  for (double x : mass_) m += x;
  return m;
}

int Topology::degrees_of_freedom() const {
  return 3 * num_atoms() - static_cast<int>(constraints_.size());
}

void Topology::validate() const {
  ANTON_CHECK(finalized_);
  const int n = num_atoms();
  for (const auto& b : bonds_) {
    check_index(b.i, n);
    check_index(b.j, n);
    ANTON_CHECK(std::isfinite(b.k) && std::isfinite(b.r0) && b.r0 > 0);
  }
  for (const auto& a : angles_) {
    ANTON_CHECK(std::isfinite(a.k_theta) && a.theta0 > 0 && a.theta0 <= M_PI);
  }
  for (const auto& d : dihedrals_) {
    ANTON_CHECK(std::isfinite(d.k_phi) && d.n >= 1 && d.n <= 6);
  }
  for (int i = 0; i < n; ++i) {
    const auto ex = exclusions_of(i);
    ANTON_CHECK(std::is_sorted(ex.begin(), ex.end()));
    for (int j : ex) ANTON_CHECK(j > i && j < n);
  }
  ANTON_CHECK(molecule_starts_.front() == 0 &&
              molecule_starts_.back() == n);
  ANTON_CHECK(std::is_sorted(molecule_starts_.begin(), molecule_starts_.end()));
}

}  // namespace anton
