// Synthetic molecular system builders.
//
// The paper evaluates on real biomolecular inputs (DHFR at 23,558 atoms,
// systems past a million atoms) that are not available offline.  These
// builders produce *statistically equivalent* substitutes: solvated boxes at
// liquid-water density (~0.1 atoms/Å³) with a protein-like fraction of
// bonded bead polymer, matching the paper systems' total atom count and
// solute/solvent ratio.  The machine model is loaded by interaction counts,
// bonded-term counts, and spatial distribution — all of which these systems
// reproduce (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/system.h"

namespace anton {

struct BuilderOptions {
  int total_atoms = 23558;
  // Fraction of atoms that belong to solute chains (DHFR: 2489/23558).
  double solute_fraction = 0.1056;
  // Beads per solute chain before the remainder chain.
  int chain_length = 220;
  // Give every other backbone bead a light constrained side bead.
  bool side_beads = true;
  // Number of +1/-1 monatomic ion pairs (physiological salt); ions count
  // against the solute atom budget.
  int ion_pairs = 0;
  uint64_t seed = 2014;
  double temperature_k = 300.0;  // for initial velocities; <0 skips
};

// Builds a solvated system with exactly options.total_atoms atoms.
System build_solvated_system(const BuilderOptions& options);

// Pure rigid-water box with exactly 3*n_molecules atoms.
System build_water_box(int n_molecules, uint64_t seed,
                       double temperature_k = 300.0);

// A tiny fully-bonded molecule (butane-like 4-bead chain) in a small box —
// used by unit tests that need every bonded term type present.
System build_test_molecule(uint64_t seed);

// --- benchmark presets (names follow the paper's benchmark classes) -------
struct BenchmarkSpec {
  std::string name;
  int total_atoms;
  double solute_fraction;
};

// The standard 23,558-atom benchmark the abstract quotes (DHFR class).
BenchmarkSpec dhfr_spec();
// ApoA1-class (~92k atoms) and STMV-class (~1.07M atoms) systems.
BenchmarkSpec apoa1_spec();
BenchmarkSpec stmv_spec();
// Ribosome-class multi-million-atom system.
BenchmarkSpec ribosome_spec();
// All presets, ordered by size.
std::vector<BenchmarkSpec> benchmark_suite();

System build_benchmark_system(const BenchmarkSpec& spec, uint64_t seed = 2014);

}  // namespace anton
