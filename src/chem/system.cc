#include "chem/system.h"

#include <cmath>

namespace anton {

void System::assign_velocities(double temperature_k, uint64_t seed) {
  ANTON_CHECK(temperature_k >= 0);
  const auto m = top_->masses();
  for (size_t i = 0; i < velocities_.size(); ++i) {
    // Per-atom stream: node-count independent determinism.
    Rng rng(mix_seed(seed, 0x5EED0F5EED5ull), static_cast<uint64_t>(i));
    const double sigma =
        std::sqrt(units::kBoltzmann * temperature_k / m[i]);
    velocities_[i] = sigma * rng.gaussian_vec3();
  }
  remove_com_velocity();
  if (temperature_k > 0) {
    const double t_now = temperature();
    if (t_now > 0) {
      const double scale = std::sqrt(temperature_k / t_now);
      for (auto& v : velocities_) v *= scale;
    }
  }
}

}  // namespace anton
