// Molecular topology: atoms, bonded terms, exclusions, constraint groups.
//
// Structure-of-arrays layout for per-atom data (type, charge, mass) plus
// flat term lists — the layout both the host MD engine and the machine-model
// work partitioner consume directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chem/forcefield.h"
#include "common/error.h"
#include "common/vec3.h"

namespace anton {

struct BondTerm {
  int i, j;
  double k;   // kcal/mol/Å²  (E = k (r - r0)²)
  double r0;  // Å
};

struct AngleTerm {
  int i, j, k;       // j is the apex
  double k_theta;    // kcal/mol/rad²
  double theta0;     // radians
};

struct DihedralTerm {
  int i, j, k, l;
  double k_phi;  // kcal/mol  (E = k (1 + cos(n φ - phase)))
  int n;
  double phase;  // radians
};

// Scaled third-neighbour nonbonded pair.
struct Pair14 {
  int i, j;
};

// Holonomic bond-length constraint (SHAKE/RATTLE unit).
struct Constraint {
  int i, j;
  double length;  // Å
};

// Rigid 3-site water: constrained O-H1, O-H2, H1-H2.
struct WaterGroup {
  int o, h1, h2;
};

// Harmonic position restraint: E = k |r - target|² (absolute coordinates;
// used to pin solute atoms during equilibration).
struct PositionRestraint {
  int atom;
  double k;     // kcal/mol/Å²
  Vec3 target;  // Å
};

// Harmonic distance restraint between two atoms (enhanced-sampling /
// umbrella-style bias): E = k (|r_ij| - r0)².
struct DistanceRestraint {
  int i, j;
  double k;
  double r0;
};

class Topology {
 public:
  explicit Topology(ForceField ff) : ff_(std::move(ff)) {}

  // --- construction -------------------------------------------------------
  // Returns the new atom's index.
  int add_atom(int type, double charge);
  void add_bond(const BondTerm& b);
  void add_angle(const AngleTerm& a);
  void add_dihedral(const DihedralTerm& d);
  void add_constraint(const Constraint& c);
  void add_water(const WaterGroup& w);
  // Restraints may be added before or after finalize(); they do not affect
  // exclusions.
  void add_position_restraint(const PositionRestraint& r);
  void add_distance_restraint(const DistanceRestraint& r);

  // Marks the current end of the atom list as a molecule boundary; molecules
  // are contiguous atom ranges.
  void end_molecule();

  // Derives exclusions (1-2, 1-3) and scaled 1-4 pairs from the bond graph
  // and constraint graph.  Must be called once after construction.
  void finalize();
  bool finalized() const { return finalized_; }

  // --- per-atom data ------------------------------------------------------
  int num_atoms() const { return static_cast<int>(type_.size()); }
  std::span<const int> types() const { return type_; }
  std::span<const double> charges() const { return charge_; }
  std::span<const double> masses() const { return mass_; }
  int type(int i) const { return type_.at(static_cast<size_t>(i)); }
  double charge(int i) const { return charge_.at(static_cast<size_t>(i)); }
  double mass(int i) const { return mass_.at(static_cast<size_t>(i)); }
  double total_charge() const;
  double total_mass() const;

  // --- term lists ---------------------------------------------------------
  std::span<const BondTerm> bonds() const { return bonds_; }
  std::span<const AngleTerm> angles() const { return angles_; }
  std::span<const DihedralTerm> dihedrals() const { return dihedrals_; }
  std::span<const Pair14> pairs14() const { return pairs14_; }
  std::span<const Constraint> constraints() const { return constraints_; }
  std::span<const WaterGroup> waters() const { return waters_; }
  std::span<const PositionRestraint> position_restraints() const {
    return pos_restraints_;
  }
  std::span<const DistanceRestraint> distance_restraints() const {
    return dist_restraints_;
  }

  // Molecule ranges: molecule m spans atoms [starts[m], starts[m+1]).
  int num_molecules() const {
    return static_cast<int>(molecule_starts_.size()) - 1;
  }
  std::pair<int, int> molecule_range(int m) const {
    return {molecule_starts_.at(static_cast<size_t>(m)),
            molecule_starts_.at(static_cast<size_t>(m) + 1)};
  }

  // --- exclusions ---------------------------------------------------------
  // Sorted list of atoms j > i excluded from nonbonded interaction with i
  // (1-2 and 1-3 neighbours, constrained pairs, intra-water pairs).
  std::span<const int> exclusions_of(int i) const {
    const auto begin = excl_starts_.at(static_cast<size_t>(i));
    const auto end = excl_starts_.at(static_cast<size_t>(i) + 1);
    return {excl_.data() + begin, excl_.data() + end};
  }
  bool excluded(int i, int j) const;
  int64_t num_exclusions() const { return static_cast<int64_t>(excl_.size()); }

  const ForceField& forcefield() const { return ff_; }

  // Degrees of freedom after constraints (3N - n_constraints, no COM removal
  // correction by default).
  int degrees_of_freedom() const;

  // Sanity checks: indices in range, finite parameters, exclusions sorted.
  void validate() const;

 private:
  ForceField ff_;
  std::vector<int> type_;
  std::vector<double> charge_;
  std::vector<double> mass_;
  std::vector<BondTerm> bonds_;
  std::vector<AngleTerm> angles_;
  std::vector<DihedralTerm> dihedrals_;
  std::vector<Pair14> pairs14_;
  std::vector<Constraint> constraints_;
  std::vector<WaterGroup> waters_;
  std::vector<PositionRestraint> pos_restraints_;
  std::vector<DistanceRestraint> dist_restraints_;
  std::vector<int> molecule_starts_{0};
  // CSR exclusion lists over ordered pairs (i < j).
  std::vector<int> excl_;
  std::vector<int> excl_starts_;
  bool finalized_ = false;
};

}  // namespace anton
