// Force-field parameter tables.
//
// A compact CHARMM/AMBER-style additive force field: per-type Lennard-Jones
// parameters combined with Lorentz–Berthelot rules, harmonic bonds and
// angles, cosine dihedrals, fixed partial charges, and scaled 1-4
// interactions.  The parameter values are generic but physically reasonable;
// the reproduction depends on interaction *counts and shapes*, not on
// biological fidelity (see DESIGN.md substitution table).
#pragma once

#include <string>
#include <vector>

#include "common/error.h"

namespace anton {

struct AtomType {
  std::string name;
  double mass;      // amu
  double lj_eps;    // kcal/mol
  double lj_sigma;  // Å
};

// LJ parameters for a type pair after combination rules.
struct LjPair {
  double eps;
  double sigma;
};

class ForceField {
 public:
  // Registers a type; returns its index.
  int add_type(const AtomType& t);

  int num_types() const { return static_cast<int>(types_.size()); }
  const AtomType& type(int i) const {
    return types_.at(static_cast<size_t>(i));
  }
  int find_type(const std::string& name) const;

  // Lorentz–Berthelot: sigma arithmetic mean, eps geometric mean.
  LjPair lj(int type_a, int type_b) const;

  // Scaling factors applied to 1-4 (third-neighbour) nonbonded pairs.
  double lj14_scale() const { return lj14_scale_; }
  double elec14_scale() const { return elec14_scale_; }
  void set_14_scales(double lj, double elec) {
    lj14_scale_ = lj;
    elec14_scale_ = elec;
  }

  // The built-in parameter set used by all synthetic builders: 3-site water
  // (TIP3P-like) plus a family of solute bead types.
  static ForceField standard();

  // Named indices into standard(); kept stable so topologies serialize.
  struct Std {
    static constexpr int kOW = 0;   // water oxygen
    static constexpr int kHW = 1;   // water hydrogen
    static constexpr int kCB = 2;   // solute backbone bead
    static constexpr int kCS = 3;   // solute sidechain bead
    static constexpr int kNP = 4;   // positively charged solute bead
    static constexpr int kNM = 5;   // negatively charged solute bead
    static constexpr int kHS = 6;   // solute hydrogen-like light bead
    static constexpr int kION = 7;  // monatomic ion
  };

 private:
  std::vector<AtomType> types_;
  double lj14_scale_ = 0.5;
  double elec14_scale_ = 0.8333;
};

}  // namespace anton
