#include "chem/builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "geom/cells.h"

namespace anton {

namespace {

// TIP3P-like rigid water geometry.
constexpr double kOH = 0.9572;              // Å
constexpr double kHOH = 104.52 * M_PI / 180.0;
constexpr double kQO = -0.834;
constexpr double kQH = 0.417;

// Solute bead geometry/parameters.
constexpr double kBondLen = 1.53;           // Å backbone
constexpr double kBondK = 310.0;            // kcal/mol/Å²
constexpr double kSideLen = 1.09;           // constrained light bead
constexpr double kAngleDeg = 111.0;
constexpr double kAngleK = 58.0;            // kcal/mol/rad²
constexpr double kDihedralK = 1.4;          // kcal/mol
constexpr int kDihedralN = 3;

// Adds one rigid water molecule at position `origin` with random
// orientation; returns the oxygen index.
int add_water(Topology& top, std::vector<Vec3>& pos, const Vec3& origin,
              Rng& rng) {
  const int o = top.add_atom(ForceField::Std::kOW, kQO);
  const int h1 = top.add_atom(ForceField::Std::kHW, kQH);
  const int h2 = top.add_atom(ForceField::Std::kHW, kQH);

  // Random orthonormal frame.
  const Vec3 u = rng.unit_vector();
  Vec3 w = cross(u, rng.unit_vector());
  if (norm(w) < 1e-8) w = cross(u, Vec3{1, 0, 0});
  w = normalized(w);

  const double half = 0.5 * kHOH;
  pos.push_back(origin);
  pos.push_back(origin + kOH * (std::cos(half) * u + std::sin(half) * w));
  pos.push_back(origin + kOH * (std::cos(half) * u - std::sin(half) * w));

  const double hh = 2.0 * kOH * std::sin(half);
  top.add_constraint({o, h1, kOH});
  top.add_constraint({o, h2, kOH});
  top.add_constraint({h1, h2, hh});
  top.add_water({o, h1, h2});
  top.end_molecule();
  return o;
}

// Builds one solute chain of `n_beads` beads as a constrained-geometry
// random walk inside the box; appends positions.  Charges alternate so each
// chain is exactly neutral.  Returns indices of all beads added.
void add_chain(Topology& top, std::vector<Vec3>& pos, const Box& box,
               int n_beads, Rng& rng) {
  ANTON_CHECK(n_beads >= 1);
  std::vector<int> backbone;
  const Vec3 start = rng.uniform_in_box(box.lengths());
  // Globule radius targeting ~0.008 beads/Å³ so chains stay protein-dense
  // without severe self-overlap.
  const double pull_radius =
      std::cbrt(3.0 * n_beads / (4.0 * M_PI * 0.008));

  // Charge pattern: +0.25, -0.25 alternating, with any odd bead neutralised
  // at the end (handled below by assigning the last leftover bead q=0).
  int added = 0;
  Vec3 prev_dir = rng.unit_vector();
  Vec3 cur = start;
  double pending_charge = 0.0;  // keeps the chain exactly neutral
  while (added < n_beads) {
    const bool want_side = added + 1 < n_beads && (backbone.size() % 2 == 1);
    double q;
    if (added + 1 == n_beads) {
      q = -pending_charge;  // close out neutrality
    } else {
      q = (backbone.size() % 2 == 0) ? 0.25 : -0.25;
      pending_charge += q;
    }
    const int type = (backbone.size() % 8 == 5) ? ForceField::Std::kCS
                                                : ForceField::Std::kCB;
    const int bead = top.add_atom(type, q);
    pos.push_back(box.wrap(cur));
    backbone.push_back(bead);
    ++added;

    if (backbone.size() >= 2) {
      top.add_bond({backbone[backbone.size() - 2], bead, kBondK, kBondLen});
    }
    if (backbone.size() >= 3) {
      top.add_angle({backbone[backbone.size() - 3],
                     backbone[backbone.size() - 2], bead, kAngleK,
                     kAngleDeg * M_PI / 180.0});
    }
    if (backbone.size() >= 4) {
      top.add_dihedral({backbone[backbone.size() - 4],
                        backbone[backbone.size() - 3],
                        backbone[backbone.size() - 2], bead, kDihedralK,
                        kDihedralN, 0.0});
    }

    // Optional constrained side bead hanging off this backbone bead.
    if (want_side) {
      const int side = top.add_atom(ForceField::Std::kHS, 0.0);
      const Vec3 side_dir = normalized(cross(prev_dir, rng.unit_vector()) +
                                       0.3 * rng.unit_vector());
      pos.push_back(box.wrap(cur + kSideLen * side_dir));
      top.add_constraint({bead, side, kSideLen});
      top.add_bond({bead, side, 340.0, kSideLen});  // for energy bookkeeping
      ++added;
    }

    // Advance the walk: new direction at ~kAngleDeg from the previous one,
    // with a compactness bias pulling back toward the chain start so chains
    // stay globular (protein-like) instead of spanning the box.
    Vec3 axis = cross(prev_dir, rng.unit_vector());
    if (norm(axis) < 1e-8) axis = cross(prev_dir, Vec3{0, 0, 1});
    axis = normalized(axis);
    const double theta = M_PI - kAngleDeg * M_PI / 180.0;
    Vec3 dir = std::cos(theta) * prev_dir +
               std::sin(theta) * normalized(cross(axis, prev_dir));
    const Vec3 back = box.min_image(start, cur);
    if (norm(back) > pull_radius) {
      dir = normalized(dir + 0.25 * normalized(back));
    }
    prev_dir = normalized(dir);
    cur += kBondLen * prev_dir;
  }
}

}  // namespace

System build_water_box(int n_molecules, uint64_t seed, double temperature_k) {
  ANTON_CHECK_MSG(n_molecules > 0, "need at least one water molecule");
  const double volume = 3.0 * n_molecules / units::kWaterAtomsPerA3;
  const Box box = Box::cube(std::cbrt(volume));

  auto top = std::make_shared<Topology>(ForceField::standard());
  std::vector<Vec3> pos;
  pos.reserve(static_cast<size_t>(3 * n_molecules));
  Rng rng(mix_seed(seed, 0xA201), 0);

  // Jittered simple-cubic lattice with enough sites.
  const int g = static_cast<int>(std::ceil(std::cbrt(double(n_molecules))));
  const Vec3 cell = box.lengths() / g;
  int placed = 0;
  for (int z = 0; z < g && placed < n_molecules; ++z) {
    for (int y = 0; y < g && placed < n_molecules; ++y) {
      for (int x = 0; x < g && placed < n_molecules; ++x) {
        Vec3 origin{(x + 0.5) * cell.x, (y + 0.5) * cell.y,
                    (z + 0.5) * cell.z};
        origin += 0.12 * rng.gaussian_vec3();
        add_water(*top, pos, box.wrap(origin), rng);
        ++placed;
      }
    }
  }
  ANTON_CHECK(placed == n_molecules);
  top->finalize();

  System sys(std::move(top), box, std::move(pos));
  if (temperature_k >= 0) sys.assign_velocities(temperature_k, seed);
  return sys;
}

System build_solvated_system(const BuilderOptions& options) {
  ANTON_CHECK_MSG(options.total_atoms >= 12, "system too small");
  ANTON_CHECK(options.solute_fraction >= 0 && options.solute_fraction < 0.9);

  const double volume = options.total_atoms / units::kWaterAtomsPerA3;
  const Box box = Box::cube(std::cbrt(volume));

  // Split the atom budget: solute atoms + ions first, remainder must be
  // divisible by 3 for water molecules.
  const int n_ions = 2 * options.ion_pairs;
  int n_solute = static_cast<int>(
      std::lround(options.solute_fraction * options.total_atoms));
  while ((options.total_atoms - n_solute - n_ions) % 3 != 0) ++n_solute;
  ANTON_CHECK_MSG(n_solute + n_ions <= options.total_atoms,
                  "ion_pairs + solute_fraction exceed the atom budget");
  const int n_water = (options.total_atoms - n_solute - n_ions) / 3;

  auto top = std::make_shared<Topology>(ForceField::standard());
  std::vector<Vec3> pos;
  pos.reserve(static_cast<size_t>(options.total_atoms));
  Rng rng(mix_seed(options.seed, 0xA202), 0);

  // --- solute chains ------------------------------------------------------
  int remaining = n_solute;
  while (remaining > 0) {
    const int len = std::min(remaining, options.chain_length);
    // A "chain" shorter than 2 beads becomes an ion.
    if (len == 1) {
      top->add_atom(ForceField::Std::kION, 0.0);
      pos.push_back(rng.uniform_in_box(box.lengths()));
      top->end_molecule();
    } else {
      add_chain(*top, pos, box, len, rng);
      top->end_molecule();
    }
    remaining -= len;
  }
  ANTON_CHECK(static_cast<int>(pos.size()) == n_solute);

  // --- salt ions ------------------------------------------------------------
  for (int i = 0; i < options.ion_pairs; ++i) {
    for (double q : {+1.0, -1.0}) {
      top->add_atom(ForceField::Std::kION, q);
      pos.push_back(rng.uniform_in_box(box.lengths()));
      top->end_molecule();
    }
  }

  // --- water fill ---------------------------------------------------------
  // Candidate lattice denser than needed; skip sites too close to solute.
  if (n_water > 0) {
    constexpr double kSpacing = 2.80;   // Å
    constexpr double kSkip = 2.20;      // Å clearance from solute atoms
    CellGrid grid(box, std::max(kSkip, 3.0));
    grid.bin(pos);  // solute atoms only at this point

    const int gx = std::max(1, static_cast<int>(box.lengths().x / kSpacing));
    const int gy = std::max(1, static_cast<int>(box.lengths().y / kSpacing));
    const int gz = std::max(1, static_cast<int>(box.lengths().z / kSpacing));
    const Vec3 cell{box.lengths().x / gx, box.lengths().y / gy,
                    box.lengths().z / gz};

    const std::vector<Vec3> solute_pos = pos;  // snapshot for clash checks
    auto clashes = [&](const Vec3& p) {
      const int c = grid.cell_of(p);
      for (int nc : grid.stencil(c)) {
        for (int a : grid.cell_atoms(nc)) {
          if (box.distance2(p, solute_pos[static_cast<size_t>(a)]) <
              kSkip * kSkip) {
            return true;
          }
        }
      }
      return false;
    };

    int placed = 0;
    for (int z = 0; z < gz && placed < n_water; ++z) {
      for (int y = 0; y < gy && placed < n_water; ++y) {
        for (int x = 0; x < gx && placed < n_water; ++x) {
          Vec3 origin{(x + 0.5) * cell.x, (y + 0.5) * cell.y,
                      (z + 0.5) * cell.z};
          origin = box.wrap(origin + 0.10 * rng.gaussian_vec3());
          if (clashes(origin)) continue;
          add_water(*top, pos, origin, rng);
          ++placed;
        }
      }
    }
    ANTON_CHECK_MSG(placed == n_water,
                    "water lattice exhausted: placed "
                        << placed << " of " << n_water
                        << " molecules; lower solute_fraction or density");
  }

  top->finalize();
  ANTON_CHECK(top->num_atoms() == options.total_atoms);

  System sys(std::move(top), box, std::move(pos));
  if (options.temperature_k >= 0) {
    sys.assign_velocities(options.temperature_k, options.seed);
  }
  return sys;
}

System build_test_molecule(uint64_t seed) {
  auto top = std::make_shared<Topology>(ForceField::standard());
  std::vector<Vec3> pos;
  const Box box = Box::cube(24.0);
  Rng rng(mix_seed(seed, 0xA203), 0);
  add_chain(*top, pos, box, 6, rng);
  top->end_molecule();
  top->finalize();
  System sys(std::move(top), box, std::move(pos));
  sys.assign_velocities(300.0, seed);
  return sys;
}

BenchmarkSpec dhfr_spec() { return {"dhfr_23k", 23558, 2489.0 / 23558.0}; }
BenchmarkSpec apoa1_spec() { return {"apoa1_92k", 92224, 0.10}; }
BenchmarkSpec stmv_spec() { return {"stmv_1m", 1066628, 0.12}; }
BenchmarkSpec ribosome_spec() { return {"ribosome_2m", 2217000, 0.13}; }

std::vector<BenchmarkSpec> benchmark_suite() {
  return {dhfr_spec(), apoa1_spec(), stmv_spec(), ribosome_spec()};
}

System build_benchmark_system(const BenchmarkSpec& spec, uint64_t seed) {
  BuilderOptions o;
  o.total_atoms = spec.total_atoms;
  o.solute_fraction = spec.solute_fraction;
  o.seed = seed;
  return build_solvated_system(o);
}

}  // namespace anton
