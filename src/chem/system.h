// A simulation-ready molecular system: immutable topology + box + mutable
// phase-space state.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "chem/topology.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "common/vec3.h"
#include "geom/box.h"

namespace anton {

class System {
 public:
  System(std::shared_ptr<const Topology> top, Box box,
         std::vector<Vec3> positions)
      : top_(std::move(top)),
        box_(box),
        positions_(std::move(positions)),
        velocities_(positions_.size()) {
    ANTON_CHECK(top_ != nullptr);
    ANTON_CHECK(top_->finalized());
    ANTON_CHECK_MSG(static_cast<int>(positions_.size()) == top_->num_atoms(),
                    "positions/topology size mismatch");
  }

  const Topology& topology() const { return *top_; }
  std::shared_ptr<const Topology> topology_ptr() const { return top_; }
  const Box& box() const { return box_; }
  // Barostats rescale the box; positions must be rescaled consistently by
  // the caller (see md::Simulation).
  void set_box(const Box& box) { box_ = box; }
  int num_atoms() const { return top_->num_atoms(); }

  std::span<const Vec3> positions() const { return positions_; }
  std::span<Vec3> positions() { return positions_; }
  std::span<const Vec3> velocities() const { return velocities_; }
  std::span<Vec3> velocities() { return velocities_; }

  // Instantaneous kinetic energy (kcal/mol); velocities are in internal
  // units (Å per natural time unit).
  double kinetic_energy() const {
    double ke = 0;
    const auto m = top_->masses();
    for (size_t i = 0; i < velocities_.size(); ++i) {
      ke += 0.5 * m[i] * norm2(velocities_[i]);
    }
    return ke;
  }

  // Instantaneous temperature (K) from equipartition over constrained DoF.
  double temperature() const {
    const int dof = top_->degrees_of_freedom();
    ANTON_CHECK(dof > 0);
    return 2.0 * kinetic_energy() / (dof * units::kBoltzmann);
  }

  Vec3 center_of_mass_velocity() const {
    Vec3 p{};
    double m_total = 0;
    const auto m = top_->masses();
    for (size_t i = 0; i < velocities_.size(); ++i) {
      p += m[i] * velocities_[i];
      m_total += m[i];
    }
    return p / m_total;
  }

  // Draws Maxwell–Boltzmann velocities at temperature T (K), removes net
  // momentum, and rescales to hit T exactly.  Deterministic in (seed).
  void assign_velocities(double temperature_k, uint64_t seed);

  void remove_com_velocity() {
    const Vec3 v = center_of_mass_velocity();
    for (auto& vi : velocities_) vi -= v;
  }

 private:
  std::shared_ptr<const Topology> top_;
  Box box_;
  std::vector<Vec3> positions_;
  std::vector<Vec3> velocities_;
};

}  // namespace anton
