#include "chem/forcefield.h"

#include <cmath>

namespace anton {

int ForceField::add_type(const AtomType& t) {
  ANTON_CHECK_MSG(t.mass > 0, "atom type '" << t.name << "' must have mass");
  ANTON_CHECK_MSG(t.lj_eps >= 0 && t.lj_sigma >= 0,
                  "atom type '" << t.name << "' has negative LJ parameters");
  types_.push_back(t);
  return static_cast<int>(types_.size()) - 1;
}

int ForceField::find_type(const std::string& name) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<int>(i);
  }
  ANTON_CHECK_MSG(false, "unknown atom type '" << name << "'");
  return -1;
}

LjPair ForceField::lj(int type_a, int type_b) const {
  const AtomType& a = type(type_a);
  const AtomType& b = type(type_b);
  return {std::sqrt(a.lj_eps * b.lj_eps), 0.5 * (a.lj_sigma + b.lj_sigma)};
}

ForceField ForceField::standard() {
  ForceField ff;
  // TIP3P-like water.
  ff.add_type({"OW", 15.9994, 0.1521, 3.1507});
  ff.add_type({"HW", 1.008, 0.0, 0.4});  // tiny sigma avoids 0/0 in mixing
  // Solute beads (roughly united-atom carbon / nitrogen-ish).
  ff.add_type({"CB", 12.011, 0.0860, 3.9000});
  ff.add_type({"CS", 12.011, 0.1094, 3.7500});
  ff.add_type({"NP", 14.007, 0.1700, 3.2500});
  ff.add_type({"NM", 14.007, 0.1700, 3.2500});
  ff.add_type({"HS", 1.008, 0.0157, 2.4500});
  ff.add_type({"ION", 22.990, 0.0874, 2.4299});
  return ff;
}

}  // namespace anton
