#include "md/ewald.h"

#include <cmath>
#include <complex>
#include <vector>

#include "common/error.h"
#include "common/units.h"

namespace anton::md {

namespace {
using Cx = std::complex<double>;

// Per-atom axis phase tables: phase[axis][n][atom] = e^{i 2π n x/L} for
// n = 0..nmax; negative n use the conjugate.
struct PhaseTables {
  int nmax;
  size_t n_atoms;
  std::vector<Cx> px, py, pz;  // (nmax+1) * n_atoms each

  const Cx& get(const std::vector<Cx>& t, int n, size_t i) const {
    return t[static_cast<size_t>(n) * n_atoms + i];
  }
  Cx phase(int nx, int ny, int nz, size_t i) const {
    Cx v = (nx >= 0) ? get(px, nx, i) : std::conj(get(px, -nx, i));
    v *= (ny >= 0) ? get(py, ny, i) : std::conj(get(py, -ny, i));
    v *= (nz >= 0) ? get(pz, nz, i) : std::conj(get(pz, -nz, i));
    return v;
  }
};

PhaseTables build_phases(const Box& box, std::span<const Vec3> pos,
                         int nmax) {
  PhaseTables t;
  t.nmax = nmax;
  t.n_atoms = pos.size();
  const auto fill = [&](std::vector<Cx>& out, auto coord, double L) {
    out.resize(static_cast<size_t>(nmax + 1) * t.n_atoms);
    for (size_t i = 0; i < t.n_atoms; ++i) {
      out[i] = Cx{1.0, 0.0};
    }
    if (nmax == 0) return;
    for (size_t i = 0; i < t.n_atoms; ++i) {
      const double theta = 2.0 * M_PI * coord(pos[i]) / L;
      const Cx base{std::cos(theta), std::sin(theta)};
      Cx cur = base;
      for (int n = 1; n <= nmax; ++n) {
        out[static_cast<size_t>(n) * t.n_atoms + i] = cur;
        cur *= base;
      }
    }
  };
  fill(t.px, [](const Vec3& p) { return p.x; }, box.lengths().x);
  fill(t.py, [](const Vec3& p) { return p.y; }, box.lengths().y);
  fill(t.pz, [](const Vec3& p) { return p.z; }, box.lengths().z);
  return t;
}

// Iterates the k half-space (each ±k pair represented once); calls
// fn(nx, ny, nz, kvec, prefactor_A) where A = exp(-k²/4α²)/k².
template <typename Fn>
void for_each_k(const Box& box, double alpha, int nmax, Fn&& fn) {
  const Vec3 two_pi_over_l{2.0 * M_PI / box.lengths().x,
                           2.0 * M_PI / box.lengths().y,
                           2.0 * M_PI / box.lengths().z};
  for (int nx = 0; nx <= nmax; ++nx) {
    const int ny_lo = (nx == 0) ? 0 : -nmax;
    for (int ny = ny_lo; ny <= nmax; ++ny) {
      const int nz_lo = (nx == 0 && ny == 0) ? 1 : -nmax;
      for (int nz = nz_lo; nz <= nmax; ++nz) {
        const Vec3 k{nx * two_pi_over_l.x, ny * two_pi_over_l.y,
                     nz * two_pi_over_l.z};
        const double k2 = norm2(k);
        const double a = std::exp(-k2 / (4.0 * alpha * alpha)) / k2;
        fn(nx, ny, nz, k, a);
      }
    }
  }
}

}  // namespace

EwaldDirect::EwaldDirect(const Box& box, double alpha, int nmax)
    : box_(box), alpha_(alpha), nmax_(nmax) {
  ANTON_CHECK_MSG(alpha > 0, "Ewald alpha must be positive");
  ANTON_CHECK_MSG(nmax >= 1, "need at least one k shell");
}

void EwaldDirect::compute(const Topology& top, std::span<const Vec3> pos,
                          std::span<Vec3> forces,
                          EnergyReport& energy) const {
  const size_t n = pos.size();
  ANTON_CHECK(static_cast<int>(n) == top.num_atoms());
  const PhaseTables phases = build_phases(box_, pos, nmax_);
  const auto q = top.charges();
  const double pref = units::kCoulomb * 2.0 * M_PI / box_.volume();

  double e_total = 0.0;
  double w_total = 0.0;
  for_each_k(box_, alpha_, nmax_, [&](int nx, int ny, int nz, const Vec3& k,
                                      double a) {
    // Structure factor.
    Cx s{0, 0};
    for (size_t i = 0; i < n; ++i) {
      s += q[i] * phases.phase(nx, ny, nz, i);
    }
    // Half-space: factor 2 accounts for -k.
    const double e_k = 2.0 * a * std::norm(s);
    e_total += e_k;
    // Analytic reciprocal-space virial: W_k = E_k (1 - k²/(2α²)).
    w_total += e_k * (1.0 - norm2(k) / (2.0 * alpha_ * alpha_));

    // Forces: F_i = C (4π/V) q_i Σ_k A(k) k Im[S*(k) e^{ik·r_i}]; doubling
    // for -k already included via the factor 2 below.
    const Cx s_conj = std::conj(s);
    for (size_t i = 0; i < n; ++i) {
      const Cx e_ikr = phases.phase(nx, ny, nz, i);
      const double im = (s_conj * e_ikr).imag();
      const double c = 2.0 * pref * 2.0 * a * q[i] * im;
      forces[i] += c * k;
    }
  });
  energy.coulomb_kspace += pref * e_total;
  energy.virial += pref * w_total;
}

double EwaldDirect::energy_only(const Topology& top,
                                std::span<const Vec3> pos) const {
  const size_t n = pos.size();
  const PhaseTables phases = build_phases(box_, pos, nmax_);
  const auto q = top.charges();
  double e_total = 0.0;
  for_each_k(box_, alpha_, nmax_,
             [&](int nx, int ny, int nz, const Vec3&, double a) {
               Cx s{0, 0};
               for (size_t i = 0; i < n; ++i) {
                 s += q[i] * phases.phase(nx, ny, nz, i);
               }
               e_total += 2.0 * a * std::norm(s);
             });
  return units::kCoulomb * 2.0 * M_PI / box_.volume() * e_total;
}

}  // namespace anton::md
