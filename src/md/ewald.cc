#include "md/ewald.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace anton::md {

using Cx = std::complex<double>;

EwaldDirect::EwaldDirect(const Box& box, double alpha, int nmax,
                         ThreadPool* pool)
    : box_(box), alpha_(alpha), nmax_(nmax), pool_(pool) {
  ANTON_CHECK_MSG(alpha > 0, "Ewald alpha must be positive");
  ANTON_CHECK_MSG(nmax >= 1, "need at least one k shell");
  build_kvectors();
}

// Enumerates the k half-space (each ±k pair represented once) in a fixed
// order; the list persists across steps and is rebuilt only on set_box.
void EwaldDirect::build_kvectors() {
  kvecs_.clear();
  const Vec3 two_pi_over_l{2.0 * M_PI / box_.lengths().x,
                           2.0 * M_PI / box_.lengths().y,
                           2.0 * M_PI / box_.lengths().z};
  for (int nx = 0; nx <= nmax_; ++nx) {
    const int ny_lo = (nx == 0) ? 0 : -nmax_;
    for (int ny = ny_lo; ny <= nmax_; ++ny) {
      const int nz_lo = (nx == 0 && ny == 0) ? 1 : -nmax_;
      for (int nz = nz_lo; nz <= nmax_; ++nz) {
        const Vec3 k{nx * two_pi_over_l.x, ny * two_pi_over_l.y,
                     nz * two_pi_over_l.z};
        const double k2 = norm2(k);
        kvecs_.push_back(
            {nx, ny, nz, k, std::exp(-k2 / (4.0 * alpha_ * alpha_)) / k2});
      }
    }
  }
  s_.resize(kvecs_.size());
}

void EwaldDirect::set_box(const Box& box) {
  const Vec3 cur = box_.lengths();
  const Vec3 next = box.lengths();
  if (next.x == cur.x && next.y == cur.y && next.z == cur.z) return;
  box_ = box;
  build_kvectors();
}

// Grows the phase tables to cover n_atoms; capacity only ever increases, so
// steady-state stepping performs no allocation.
void EwaldDirect::ensure_tables(size_t n_atoms) {
  if (n_atoms > capacity_) {
    capacity_ = n_atoms;
    const size_t rows = static_cast<size_t>(nmax_ + 1);
    px_.resize(rows * capacity_);
    py_.resize(rows * capacity_);
    pz_.resize(rows * capacity_);
  }
  n_atoms_ = n_atoms;
}

Cx EwaldDirect::phase(int nx, int ny, int nz, size_t i) const {
  const auto get = [this, i](const std::vector<Cx>& t, int n) {
    return t[static_cast<size_t>(n) * capacity_ + i];
  };
  Cx v = (nx >= 0) ? get(px_, nx) : std::conj(get(px_, -nx));
  v *= (ny >= 0) ? get(py_, ny) : std::conj(get(py_, -ny));
  v *= (nz >= 0) ? get(pz_, nz) : std::conj(get(pz_, -nz));
  return v;
}

// Per-atom axis phase tables: phase[axis][n][atom] = e^{i 2π n x/L} for
// n = 0..nmax.  Each atom fills its own column, so the pass is
// data-parallel and bitwise independent of the thread count.
void EwaldDirect::fill_phases(std::span<const Vec3> pos) {
  ANTON_HOT_NOALLOC();
  const size_t n = pos.size();
  const Vec3 lengths = box_.lengths();
  const int nmax = nmax_;
  const size_t cap = capacity_;
  auto fill_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      px_[i] = Cx{1.0, 0.0};
      py_[i] = Cx{1.0, 0.0};
      pz_[i] = Cx{1.0, 0.0};
      const double tx = 2.0 * M_PI * pos[i].x / lengths.x;
      const double ty = 2.0 * M_PI * pos[i].y / lengths.y;
      const double tz = 2.0 * M_PI * pos[i].z / lengths.z;
      const Cx bx{std::cos(tx), std::sin(tx)};
      const Cx by{std::cos(ty), std::sin(ty)};
      const Cx bz{std::cos(tz), std::sin(tz)};
      Cx cx = bx, cy = by, cz = bz;
      for (int nn = 1; nn <= nmax; ++nn) {
        const size_t row = static_cast<size_t>(nn) * cap + i;
        px_[row] = cx;
        py_[row] = cy;
        pz_[row] = cz;
        cx *= bx;
        cy *= by;
        cz *= bz;
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(n, fill_range);
  } else {
    fill_range(0, n);
  }
}

// S(k) = Σ_i q_i e^{ik·r_i}, parallel over k-vectors; each S(k) is a serial
// sum in atom order, so the result is bitwise independent of thread count.
// The three axis columns are hoisted out of the atom loop and negative
// frequencies handled by flipping the imaginary sign (branch-free conjugate),
// keeping the inner loop a straight-line multiply-accumulate over contiguous
// memory.
void EwaldDirect::accumulate_structure_factors(std::span<const double> q) {
  ANTON_HOT_NOALLOC();
  const size_t n = n_atoms_;
  const size_t cap = capacity_;
  auto sum_range = [&](size_t begin, size_t end) {
    for (size_t kk = begin; kk < end; ++kk) {
      const KVector& kv = kvecs_[kk];
      // nx is always >= 0 in the half-space enumeration.
      const Cx* colx = &px_[static_cast<size_t>(kv.nx) * cap];
      const Cx* coly = &py_[static_cast<size_t>(std::abs(kv.ny)) * cap];
      const Cx* colz = &pz_[static_cast<size_t>(std::abs(kv.nz)) * cap];
      const double sy = kv.ny < 0 ? -1.0 : 1.0;
      const double sz = kv.nz < 0 ? -1.0 : 1.0;
      Cx s{0, 0};
      for (size_t i = 0; i < n; ++i) {
        const Cx vy{coly[i].real(), sy * coly[i].imag()};
        const Cx vz{colz[i].real(), sz * colz[i].imag()};
        s += q[i] * (colx[i] * vy * vz);
      }
      s_[kk] = s;
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(kvecs_.size(), sum_range);
  } else {
    sum_range(0, kvecs_.size());
  }
}

void EwaldDirect::compute(const Topology& top, std::span<const Vec3> pos,
                          std::span<Vec3> forces, EnergyReport& energy) {
  ANTON_HOT_NOALLOC();
  const size_t n = pos.size();
  ANTON_CHECK(static_cast<int>(n) == top.num_atoms());
  ensure_tables(n);
  fill_phases(pos);
  const auto q = top.charges();
  accumulate_structure_factors(q);
  const double pref = units::kCoulomb * 2.0 * M_PI / box_.volume();

  // Scalar energy/virial reduction over k: serial O(K), so the totals are
  // bitwise identical for any thread count by construction.
  double e_total = 0.0;
  double w_total = 0.0;
  const double inv_2a2 = 1.0 / (2.0 * alpha_ * alpha_);
  for (size_t kk = 0; kk < kvecs_.size(); ++kk) {
    // Half-space: factor 2 accounts for -k.
    const double e_k = 2.0 * kvecs_[kk].a * std::norm(s_[kk]);
    e_total += e_k;
    // Analytic reciprocal-space virial: W_k = E_k (1 - k²/(2α²)).
    w_total += e_k * (1.0 - norm2(kvecs_[kk].k) * inv_2a2);
  }
  energy.coulomb_kspace += pref * e_total;
  energy.virial += pref * w_total;

  // Forces: F_i = C (4π/V) q_i Σ_k A(k) k Im[S*(k) e^{ik·r_i}]; doubling
  // for -k included via the factor 2.  Each atom sums over all k and writes
  // only forces[i] — data-parallel, bitwise stable for any thread count.
  // The phase e^{ik·r_i} is regenerated by running products that follow the
  // k-enumeration order (one complex multiply per k) rather than read from
  // the phase tables: per-(k, atom) table lookups stride by the atom
  // capacity, missing cache on every access, and made this pass memory-bound.
  const int nmax = nmax_;
  const size_t cap = capacity_;
  auto force_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double qi = q[i];
      if (qi == 0.0) continue;
      const double coef = 2.0 * pref * 2.0 * qi;
      // Axis bases and the n = -nmax starting phases, from the tables.
      const Cx bx = px_[cap + i];
      const Cx by = py_[cap + i];
      const Cx bz = pz_[cap + i];
      const Cx py_lo = std::conj(py_[static_cast<size_t>(nmax) * cap + i]);
      const Cx pz_lo = std::conj(pz_[static_cast<size_t>(nmax) * cap + i]);
      Vec3 acc{};
      size_t kk = 0;
      Cx vx{1.0, 0.0};
      for (int fx = 0; fx <= nmax; ++fx) {
        // ny runs from 0 when fx == 0 (half-space), else from -nmax.
        Cx vxy = (fx == 0) ? vx : vx * py_lo;
        const int fy_lo = (fx == 0) ? 0 : -nmax;
        for (int fy = fy_lo; fy <= nmax; ++fy) {
          const bool origin_row = (fx == 0 && fy == 0);
          Cx vxyz = vxy * (origin_row ? bz : pz_lo);
          const int fz_lo = origin_row ? 1 : -nmax;
          for (int fz = fz_lo; fz <= nmax; ++fz) {
            const KVector& kv = kvecs_[kk];
            // Im[S*(k) e^{ikr}] expanded — half the multiplies of a full
            // complex product whose real part is discarded.
            const double im = s_[kk].real() * vxyz.imag() -
                              s_[kk].imag() * vxyz.real();
            acc += (coef * kv.a * im) * kv.k;
            ++kk;
            vxyz *= bz;
          }
          vxy *= by;
        }
        vx *= bx;
      }
      forces[i] += acc;
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(n, force_range);
  } else {
    force_range(0, n);
  }
}

double EwaldDirect::energy_only(const Topology& top,
                                std::span<const Vec3> pos) {
  const size_t n = pos.size();
  ensure_tables(n);
  fill_phases(pos);
  accumulate_structure_factors(top.charges());
  double e_total = 0.0;
  for (size_t kk = 0; kk < kvecs_.size(); ++kk) {
    e_total += 2.0 * kvecs_[kk].a * std::norm(s_[kk]);
  }
  return units::kCoulomb * 2.0 * M_PI / box_.volume() * e_total;
}

}  // namespace anton::md
