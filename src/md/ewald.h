// Exact reciprocal-space Ewald sum (direct summation over k-vectors).
//
// O(N·K) — used as the gold standard that validates the mesh-based
// Gaussian-split-Ewald solver, and for small test systems.  Combined with
// the erfc real-space part (nonbonded.h), the self term and the excluded-
// pair correction, this yields the exact periodic Coulomb energy.
//
// The sum is threaded over an optional ThreadPool and allocation-free in
// steady state: the per-atom axis phase tables, the k-vector list and the
// structure-factor array are persistent members, incrementally resized only
// when the atom count grows.  Each structure factor S(k) is a serial sum
// over atoms, the scalar energy/virial reduction over k runs serially
// (O(K), negligible), and the force pass is data-parallel over atoms — so
// forces and energies are bitwise identical for any thread count without
// any fixed-point quantization, honoring MdParams::deterministic_forces by
// construction.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "chem/topology.h"
#include "common/threadpool.h"
#include "common/vec3.h"
#include "geom/box.h"
#include "md/params.h"

namespace anton::md {

class EwaldDirect {
 public:
  // nmax: include all k = 2π(nx/Lx, ny/Ly, nz/Lz) with |ni| <= nmax, k != 0.
  EwaldDirect(const Box& box, double alpha, int nmax,
              ThreadPool* pool = nullptr);

  // Adds reciprocal-space forces; energy lands in energy.coulomb_kspace.
  void compute(const Topology& top, std::span<const Vec3> pos,
               std::span<Vec3> forces, EnergyReport& energy);

  // Energy only (no forces) — used by finite-difference force tests.
  double energy_only(const Topology& top, std::span<const Vec3> pos);

  // Rebox for the barostat: rebuilds the k-vector list for the new cell.
  // No-op when the lengths are unchanged.
  void set_box(const Box& box);

 private:
  // One half-space k-vector with its integer indices and Gaussian
  // prefactor A = exp(-k²/4α²)/k².
  struct KVector {
    int nx, ny, nz;
    Vec3 k;
    double a;
  };

  void build_kvectors();
  void ensure_tables(size_t n_atoms);
  void fill_phases(std::span<const Vec3> pos);
  void accumulate_structure_factors(std::span<const double> q);
  std::complex<double> phase(int nx, int ny, int nz, size_t i) const;

  Box box_;
  double alpha_;
  int nmax_;
  ThreadPool* pool_;
  std::vector<KVector> kvecs_;

  // Persistent per-atom axis phase tables: phase[axis][n][atom] =
  // e^{i 2π n x/L} for n = 0..nmax (negative n via conjugate), each
  // (nmax+1) × capacity.
  size_t n_atoms_ = 0;    // atoms covered by the current tables
  size_t capacity_ = 0;   // allocated atom capacity (grows, never shrinks)
  std::vector<std::complex<double>> px_, py_, pz_;
  std::vector<std::complex<double>> s_;  // per-k structure factors
};

}  // namespace anton::md
