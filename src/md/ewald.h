// Exact reciprocal-space Ewald sum (direct summation over k-vectors).
//
// O(N·K) — used as the gold standard that validates the mesh-based
// Gaussian-split-Ewald solver, and for small test systems.  Combined with
// the erfc real-space part (nonbonded.h), the self term and the excluded-
// pair correction, this yields the exact periodic Coulomb energy.
#pragma once

#include <span>

#include "chem/topology.h"
#include "common/vec3.h"
#include "geom/box.h"
#include "md/params.h"

namespace anton::md {

class EwaldDirect {
 public:
  // nmax: include all k = 2π(nx/Lx, ny/Ly, nz/Lz) with |ni| <= nmax, k != 0.
  EwaldDirect(const Box& box, double alpha, int nmax);

  // Adds reciprocal-space forces; energy lands in energy.coulomb_kspace.
  void compute(const Topology& top, std::span<const Vec3> pos,
               std::span<Vec3> forces, EnergyReport& energy) const;

  // Energy only (no forces) — used by finite-difference force tests.
  double energy_only(const Topology& top, std::span<const Vec3> pos) const;

 private:
  Box box_;
  double alpha_;
  int nmax_;
};

}  // namespace anton::md
