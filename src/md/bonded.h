// Bonded force terms: harmonic bonds, harmonic angles, cosine dihedrals, and
// scaled 1-4 nonbonded pairs.  All displacements use the minimum-image
// convention so molecules may straddle the periodic boundary.
#pragma once

#include <span>

#include "chem/topology.h"
#include "common/vec3.h"
#include "geom/box.h"
#include "md/params.h"

namespace anton::md {

// Accumulates forces in-place and energy terms into `energy`.
void compute_bonds(const Box& box, const Topology& top,
                   std::span<const Vec3> pos, std::span<Vec3> forces,
                   EnergyReport& energy);

void compute_angles(const Box& box, const Topology& top,
                    std::span<const Vec3> pos, std::span<Vec3> forces,
                    EnergyReport& energy);

void compute_dihedrals(const Box& box, const Topology& top,
                       std::span<const Vec3> pos, std::span<Vec3> forces,
                       EnergyReport& energy);

// Scaled 1-4 LJ + plain Coulomb on the third-neighbour pair list.
void compute_pairs14(const Box& box, const Topology& top,
                     std::span<const Vec3> pos, std::span<Vec3> forces,
                     EnergyReport& energy);

// Harmonic position and distance restraints.  Position restraints use
// absolute (unwrapped) coordinates and contribute no virial (they are an
// external field); distance restraints are pairwise and do.
void compute_restraints(const Box& box, const Topology& top,
                        std::span<const Vec3> pos, std::span<Vec3> forces,
                        EnergyReport& energy);

// Convenience: all of the above.
void compute_all_bonded(const Box& box, const Topology& top,
                        std::span<const Vec3> pos, std::span<Vec3> forces,
                        EnergyReport& energy);

// Dihedral angle (radians, in (-pi, pi]) of four positions; exposed for
// tests and the machine model's functional GC kernels.
double dihedral_angle(const Box& box, const Vec3& ri, const Vec3& rj,
                      const Vec3& rk, const Vec3& rl);

}  // namespace anton::md
