#include "md/workspace.h"

#include <algorithm>
#include <cmath>

#include "common/simd.h"
#include "common/units.h"

namespace anton::md {

namespace {

constexpr double kTwoOverSqrtPi = 1.1283791670955126;

// Screened-Coulomb energy per unit qq as a function of r²:
//   E(r²) = erfc(alpha r) / r.
double erfc_energy_r2(double alpha, double r2) {
  const double r = std::sqrt(r2);
  return std::erfc(alpha * r) / r;
}

// Force factor per unit qq as a function of r² (multiplies the displacement
// vector): F(r²) = (erfc(ar)/r + 2a/√π e^{-a²r²}) / r².  Note dE/dr² = -F/2.
double erfc_force_r2(double alpha, double r2) {
  const double r = std::sqrt(r2);
  const double ar = alpha * r;
  return (std::erfc(ar) / r + kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) /
         r2;
}

// dF/dr² for the Hermite nodes of the force table:
//   dF/dr = -3 erfc/r⁴ - 2a/√π e^{-a²r²} (3/r³ + 2a²/r),  dF/dr² = dF/dr / 2r.
double erfc_force_deriv_r2(double alpha, double r2) {
  const double r = std::sqrt(r2);
  const double ar = alpha * r;
  const double g = kTwoOverSqrtPi * alpha * std::exp(-ar * ar);
  const double df_dr = -3.0 * std::erfc(ar) / (r2 * r2) -
                       g * (3.0 / (r2 * r) + 2.0 * alpha * alpha / r);
  return df_dr / (2.0 * r);
}

}  // namespace

void ForceWorkspace::build_cache(const Topology& top, double alpha,
                                 double cutoff, bool shift_at_cutoff,
                                 bool tabulate_erfc, double table_target_err) {
  const ForceField& ff = top.forcefield();
  const int ntypes = ff.num_types();
  const size_t n = static_cast<size_t>(top.num_atoms());
  const bool want_tables = tabulate_erfc && alpha > 0;
  if (cache_ready_ && ntypes_ == ntypes && q_scaled_.size() == n &&
      cache_alpha_ == alpha && cache_cutoff_ == cutoff &&
      cache_shift_ == shift_at_cutoff && tables_ready_ == want_tables) {
    return;
  }

  // Dense premixed LJ table: one Lorentz–Berthelot mix per type pair, done
  // once instead of once per interacting pair, with the cutoff shift energy
  // folded in.  The stored values are bitwise what ForceField::lj computes,
  // so tabulated and on-the-fly paths agree exactly.
  const double cutoff2 = cutoff * cutoff;
  lj_.assign(static_cast<size_t>(ntypes) * static_cast<size_t>(ntypes), {});
  for (int a = 0; a < ntypes; ++a) {
    for (int b = 0; b < ntypes; ++b) {
      const LjPair p = ff.lj(a, b);
      LjMixed m;
      m.eps = p.eps;
      m.sigma2 = p.sigma * p.sigma;
      if (shift_at_cutoff && p.eps > 0) {
        const double src2 = p.sigma * p.sigma / cutoff2;
        const double src6 = src2 * src2 * src2;
        m.e_shift = 4.0 * p.eps * (src6 * src6 - src6);
      }
      lj_[static_cast<size_t>(a) * static_cast<size_t>(ntypes) +
          static_cast<size_t>(b)] = m;
    }
  }
  lj_row_zero_.assign(static_cast<size_t>(ntypes), 1);
  for (int a = 0; a < ntypes; ++a) {
    for (int b = 0; b < ntypes; ++b) {
      if (lj_[static_cast<size_t>(a) * static_cast<size_t>(ntypes) +
              static_cast<size_t>(b)]
              .eps > 0) {
        lj_row_zero_[static_cast<size_t>(a)] = 0;
      }
    }
  }

  const auto charges = top.charges();
  q_scaled_.resize(n);
  for (size_t i = 0; i < n; ++i) q_scaled_[i] = units::kCoulomb * charges[i];

  coul_shift_ = shift_at_cutoff
                    ? (alpha > 0 ? std::erfc(alpha * cutoff) / cutoff
                                 : 1.0 / cutoff)
                    : 0.0;

  tables_ready_ = false;
  table_max_rel_err_ = 0;
  if (want_tables) {
    // Tabulate over r² so the kernel needs no sqrt.  Pairs can in principle
    // approach closer than the table floor during bad initial geometry; the
    // kernel falls back to the analytic form below table_r2_min().
    table_r2_min_ = 0.25;  // r = 0.5 Å
    const double x1 = cutoff2;
    auto e_fn = [alpha](double x) { return erfc_energy_r2(alpha, x); };
    auto e_dfn = [alpha](double x) { return -0.5 * erfc_force_r2(alpha, x); };
    auto f_fn = [alpha](double x) { return erfc_force_r2(alpha, x); };
    auto f_dfn = [alpha](double x) { return erfc_force_deriv_r2(alpha, x); };
    // Refine by node doubling until the measured midpoint error meets the
    // accuracy bound.
    for (int nodes = 2048; nodes <= (1 << 17); nodes *= 2) {
      coul_e_.build(table_r2_min_, x1, nodes, e_fn, e_dfn);
      coul_f_.build(table_r2_min_, x1, nodes, f_fn, f_dfn);
      double max_rel = 0;
      const double h = (x1 - table_r2_min_) / (nodes - 1);
      for (int k = 0; k + 1 < nodes; ++k) {
        const double x = table_r2_min_ + (k + 0.5) * h;
        const double ee = e_fn(x), fe = f_fn(x);
        max_rel = std::max(max_rel, std::abs(coul_e_(x) - ee) /
                                        std::max(std::abs(ee), 1e-300));
        max_rel = std::max(max_rel, std::abs(coul_f_(x) - fe) /
                                        std::max(std::abs(fe), 1e-300));
      }
      table_max_rel_err_ = max_rel;
      if (max_rel <= table_target_err) break;
    }
    // Pack the converged node set into the fused interleaved layout used by
    // the pair kernel.  Samples are recomputed with the exact expressions the
    // CubicTable build used, so the node values are bitwise identical and the
    // measured accuracy bound transfers.
    const int n_nodes = coul_e_.num_nodes();
    ef_h_ = (x1 - table_r2_min_) / (n_nodes - 1);
    ef_inv_h_ = 1.0 / ef_h_;
    ef_nodes_.resize(static_cast<size_t>(n_nodes));
    for (int k = 0; k < n_nodes; ++k) {
      const double x = table_r2_min_ + k * ef_h_;
      ef_nodes_[static_cast<size_t>(k)] = {e_fn(x), e_dfn(x), f_fn(x),
                                           f_dfn(x)};
    }
    tables_ready_ = true;
  }

  ntypes_ = ntypes;
  cache_alpha_ = alpha;
  cache_cutoff_ = cutoff;
  cache_shift_ = shift_at_cutoff;
  cache_ready_ = true;
}

void ForceWorkspace::stage_positions(std::span<const Vec3> pos,
                                     std::span<const double> charges) {
  const size_t n = pos.size();
  if (soa_xyzq_.size() != 4 * n) soa_xyzq_.resize(4 * n);
  for (size_t i = 0; i < n; ++i) {
    double* rec = soa_xyzq_.data() + 4 * i;
    rec[0] = pos[i].x;
    rec[1] = pos[i].y;
    rec[2] = pos[i].z;
    rec[3] = charges[i];
  }
}

void ForceWorkspace::ensure_threads(unsigned nthreads, size_t n_atoms) {
  if (thread_f_.size() == nthreads && partials_.size() == nthreads &&
      (nthreads == 0 || thread_f_[0].size() == n_atoms)) {
    return;
  }
  thread_f_.assign(nthreads, std::vector<Vec3>(n_atoms, Vec3{}));
  partials_.assign(nthreads, PairEnergyPartial{});
  chunk_bounds_.assign(static_cast<size_t>(nthreads) + 1, 0);
}

void ForceWorkspace::ensure_fixed_threads(unsigned nthreads, size_t n_atoms) {
  ensure_threads(nthreads, n_atoms);  // chunk bounds + partials geometry
  if (thread_fx_.size() == nthreads && partials_fx_.size() == nthreads &&
      (nthreads == 0 || thread_fx_[0].size() == n_atoms)) {
    return;
  }
  thread_fx_.assign(nthreads, std::vector<ForceFixed>(n_atoms, ForceFixed{}));
  partials_fx_.assign(nthreads, PairEnergyPartialFixed{});
}

void GseWorkspace::ensure(unsigned nthreads, int sx, int sy, int sz,
                          size_t mesh_points, bool threaded_grids,
                          bool fixed_grids) {
  if (threads_.size() == nthreads && sx_ == sx && sy_ == sy && sz_ == sz &&
      mesh_points_ == mesh_points && threaded_grids_ == threaded_grids &&
      fixed_grids_ == fixed_grids) {
    return;
  }
  // The per-axis arrays are padded to a full vector width so the spread and
  // gather inner loops can read whole lanes past the live count.  Padding
  // entries are zero weight at index 0 and never rewritten by axis_weights,
  // so padded lanes contribute exact zeros through in-range gathers.
  constexpr int W = static_cast<int>(simd::kLanesD);
  auto pad = [](int s) {
    return static_cast<size_t>((s + W - 1) / W * W);
  };
  threads_.assign(nthreads, GseThreadScratch{});
  for (GseThreadScratch& t : threads_) {
    t.wx.assign(pad(sx), 0.0);
    t.wy.assign(pad(sy), 0.0);
    t.wz.assign(pad(sz), 0.0);
    t.dxs.assign(pad(sx), 0.0);
    t.dys.assign(pad(sy), 0.0);
    t.dzs.assign(pad(sz), 0.0);
    t.ix.assign(pad(sx), 0);
    t.iy.assign(pad(sy), 0);
    t.iz.assign(pad(sz), 0);
    if (threaded_grids) t.rho.assign(mesh_points, 0.0);
    if (fixed_grids) t.rho_fx.assign(mesh_points, MeshFixed{});
  }
  sx_ = sx;
  sy_ = sy;
  sz_ = sz;
  mesh_points_ = mesh_points;
  threaded_grids_ = threaded_grids;
  fixed_grids_ = fixed_grids;
}

}  // namespace anton::md
