#include "md/engine.h"

#include <cmath>

#include <algorithm>

#include "common/rng.h"
#include "common/units.h"
#include "md/pressure.h"

namespace anton::md {

Simulation::Simulation(System system, MdParams params, ThreadPool* pool)
    : system_(std::move(system)),
      params_(params),
      force_(std::make_unique<ForceCompute>(system_.topology_ptr(),
                                            system_.box(), params, pool)),
      pool_(pool),
      f_short_(static_cast<size_t>(system_.num_atoms())),
      f_long_(static_cast<size_t>(system_.num_atoms())),
      ref_pos_(static_cast<size_t>(system_.num_atoms())),
      dt_(units::fs_to_internal(params.dt_fs)) {
  ANTON_CHECK_MSG(params_.respa_k >= 1, "respa_k must be >= 1");
  ANTON_CHECK_MSG(params_.dt_fs > 0, "timestep must be positive");
  if (params_.telemetry || !params_.trace_path.empty() ||
      !params_.metrics_path.empty()) {
    own_trace_ = obs::TraceWriter::open(params_.trace_path);
    if (own_trace_ != nullptr) {
      own_trace_->process_name(obs::kPidMd, "md engine (wall clock)");
    }
    metrics_ = &own_metrics_;
    profiler_.enable(metrics_, "md", own_trace_.get(), obs::kPidMd);
    step_stat_ = metrics_->stat("md.step.seconds");
    force_->set_profiler(&profiler_);
    if (params_.perf_counters || obs::PerfCounters::env_enabled()) {
      perf_ = std::make_unique<obs::PerfCounters>();
      profiler_.enable_perf(perf_.get());
    }
  }
  // Build the neighbour list and size all workspace scratch now, so stepping
  // starts allocation-free from the first call.
  force_->warm(system_.positions());
}

Simulation::~Simulation() {
  try {
    write_metrics();
  } catch (...) {
    // Destructor: an unwritable metrics path must not terminate.
  }
}

void Simulation::use_telemetry(obs::MetricsRegistry* registry,
                               obs::TraceWriter* trace) {
  if (registry == nullptr) {
    profiler_.disable();
    force_->set_profiler(nullptr);
    metrics_ = nullptr;
    step_stat_ = nullptr;
    return;
  }
  metrics_ = registry;
  profiler_.enable(metrics_, "md", trace, obs::kPidMd);
  step_stat_ = metrics_->stat("md.step.seconds");
  force_->set_profiler(&profiler_);
  if (perf_ == nullptr &&
      (params_.perf_counters || obs::PerfCounters::env_enabled())) {
    perf_ = std::make_unique<obs::PerfCounters>();
  }
  if (perf_ != nullptr) profiler_.enable_perf(perf_.get());
}

void Simulation::write_metrics() const {
  if (metrics_ == &own_metrics_ && !params_.metrics_path.empty()) {
    own_metrics_.save_json(params_.metrics_path);
  }
}

void Simulation::apply_langevin(double dt) {
  // Ornstein–Uhlenbeck velocity update: v <- c1 v + c2 sigma xi, with the
  // friction expressed per femtosecond in the public parameters.
  const double c1 = std::exp(-params_.langevin_gamma_per_fs *
                             units::internal_to_fs(dt));
  const double c2 = std::sqrt(1.0 - c1 * c1);
  const auto masses = system_.topology().masses();
  auto vel = system_.velocities();
  const uint64_t step_key =
      mix_seed(params_.seed, static_cast<uint64_t>(step_count_) + 0x0A0B);
  for (size_t i = 0; i < vel.size(); ++i) {
    Rng rng(step_key, static_cast<uint64_t>(i));
    const double sigma =
        std::sqrt(units::kBoltzmann * params_.temperature_k / masses[i]);
    vel[i] = c1 * vel[i] + c2 * sigma * rng.gaussian_vec3();
  }
}

void Simulation::apply_thermostat(double dt) {
  ThermostatKind kind = params_.thermostat;
  if (kind == ThermostatKind::kNone && params_.langevin_gamma_per_fs > 0) {
    kind = ThermostatKind::kLangevin;  // legacy shorthand
  }
  switch (kind) {
    case ThermostatKind::kNone:
      return;
    case ThermostatKind::kLangevin:
      apply_langevin(dt);
      return;
    case ThermostatKind::kBerendsen:
    case ThermostatKind::kVelocityRescale: {
      const double t_now = system_.temperature();
      if (t_now <= 0) return;
      const double dt_over_tau =
          units::internal_to_fs(dt) / params_.thermostat_tau_fs;
      double lambda2;
      if (kind == ThermostatKind::kBerendsen) {
        // Weak coupling: relax the temperature toward the target.
        lambda2 = 1.0 + dt_over_tau * (params_.temperature_k / t_now - 1.0);
      } else {
        // Exponential rescale of T itself (deterministic CSVR limit).
        const double t_new =
            params_.temperature_k +
            (t_now - params_.temperature_k) * std::exp(-dt_over_tau);
        lambda2 = t_new / t_now;
      }
      const double lambda = std::sqrt(std::max(0.0, lambda2));
      for (auto& v : system_.velocities()) v *= lambda;
      return;
    }
  }
}

void Simulation::single_step() {
  const double step_t0 =
      step_stat_ != nullptr ? obs::wall_seconds() : 0.0;
  const Topology& top = system_.topology();
  const Box& box = system_.box();
  auto pos = system_.positions();
  auto vel = system_.velocities();
  const auto masses = top.masses();
  const int k = params_.respa_k;
  const int64_t s = step_count_;

  if (!forces_fresh_) {
    last_energy_ = force_->compute_short(pos, f_short_);
    const EnergyReport e_long = force_->compute_long(pos, f_long_);
    last_energy_.coulomb_kspace = e_long.coulomb_kspace;
    last_energy_.coulomb_self = e_long.coulomb_self;
    last_long_virial_ = e_long.virial;
    last_energy_.virial += last_long_virial_;
    forces_fresh_ = true;
  }

  // First half kick: short-range every step; long-range impulse (weight k)
  // at RESPA block boundaries.
  const bool long_kick_in = (s % k == 0);
  {
    obs::PhaseProfiler::Scope sc(&profiler_, "integrate");
    for (size_t i = 0; i < pos.size(); ++i) {
      Vec3 f = f_short_[i];
      if (long_kick_in) f += static_cast<double>(k) * f_long_[i];
      vel[i] += (0.5 * dt_ / masses[i]) * f;
    }

    // Drift.
    std::copy(pos.begin(), pos.end(), ref_pos_.begin());
    for (size_t i = 0; i < pos.size(); ++i) {
      pos[i] += dt_ * vel[i];
    }
  }
  {
    obs::PhaseProfiler::Scope sc(&profiler_, "constraints");
    last_shake_ = shake(box, top, ref_pos_, pos, vel, dt_, params_.shake_tol,
                        params_.shake_max_iter);
  }
  ANTON_CHECK_MSG(last_shake_.converged,
                  "SHAKE failed to converge (max violation "
                      << last_shake_.max_violation << ")");

  // Thermostat between drift and the force evaluation (OBABO-like split).
  {
    obs::PhaseProfiler::Scope sc(&profiler_, "thermostat");
    apply_thermostat(dt_);
  }

  // New forces.
  EnergyReport e = force_->compute_short(pos, f_short_);
  const bool long_kick_out = ((s + 1) % k == 0);
  if (long_kick_out) {
    const EnergyReport e_long = force_->compute_long(pos, f_long_);
    e.coulomb_kspace = e_long.coulomb_kspace;
    e.coulomb_self = e_long.coulomb_self;
    last_long_virial_ = e_long.virial;
  } else {
    e.coulomb_kspace = last_energy_.coulomb_kspace;
    e.coulomb_self = last_energy_.coulomb_self;
  }
  e.virial += last_long_virial_;
  last_energy_ = e;

  // Second half kick.
  {
    obs::PhaseProfiler::Scope sc(&profiler_, "integrate");
    for (size_t i = 0; i < pos.size(); ++i) {
      Vec3 f = f_short_[i];
      if (long_kick_out) f += static_cast<double>(k) * f_long_[i];
      vel[i] += (0.5 * dt_ / masses[i]) * f;
    }
  }

  // RATTLE: remove velocity components along constraints.
  ShakeStats rs;
  {
    obs::PhaseProfiler::Scope sc(&profiler_, "constraints");
    rs = rattle(box, top, pos, vel, params_.shake_tol,
                params_.shake_max_iter);
  }
  ANTON_CHECK_MSG(rs.converged, "RATTLE failed to converge");

  ++step_count_;

  if (params_.barostat != BarostatKind::kNone &&
      step_count_ % params_.barostat_interval == 0) {
    obs::PhaseProfiler::Scope sc(&profiler_, "barostat");
    apply_barostat();
  }

  if (step_stat_ != nullptr) {
    step_stat_->add(obs::wall_seconds() - step_t0);
  }
}

void Simulation::apply_barostat() {
  // Instantaneous pressure from the last force evaluation.  With RESPA the
  // reciprocal-space virial refreshes on outer steps only; the barostat's
  // long coupling time averages over that.
  EnergyReport e = last_energy_;
  const double p_now =
      (2.0 * system_.kinetic_energy() + e.virial) /
      (3.0 * system_.box().volume()) * kPressureBar;
  const double dt_eff_fs = params_.dt_fs * params_.barostat_interval;
  double mu3 = 1.0 - params_.compressibility_per_bar *
                         (dt_eff_fs / params_.barostat_tau_fs) *
                         (params_.pressure_bar - p_now);
  // Clamp: a single coupling event never changes the volume by >2%.
  mu3 = std::clamp(mu3, 0.98, 1.02);
  const double mu = std::cbrt(mu3);
  if (std::abs(mu - 1.0) < 1e-12) return;

  // Rescale molecule centres of mass; members translate rigidly so
  // constraints stay satisfied exactly.
  const Topology& top = system_.topology();
  auto pos = system_.positions();
  const auto masses = top.masses();
  for (int m = 0; m < top.num_molecules(); ++m) {
    const auto [begin, end] = top.molecule_range(m);
    Vec3 com{};
    double mass = 0;
    for (int i = begin; i < end; ++i) {
      com += masses[static_cast<size_t>(i)] * pos[static_cast<size_t>(i)];
      mass += masses[static_cast<size_t>(i)];
    }
    com /= mass;
    const Vec3 shift = (mu - 1.0) * com;
    for (int i = begin; i < end; ++i) {
      pos[static_cast<size_t>(i)] += shift;
    }
  }
  system_.set_box(Box(mu * system_.box().lengths()));

  // Rebox the force pipeline in place: the GSE mesh re-derives its k-space
  // tables (skipping everything when dimensions survive), and the neighbour
  // grid is flagged for rebuild on the next evaluation.  The erfc/LJ caches
  // are box-independent, so nothing is reconstructed or reallocated.
  force_->set_box(system_.box());
  forces_fresh_ = false;
}

void Simulation::step(int n) {
  for (int i = 0; i < n; ++i) single_step();
}

EnergyReport Simulation::energies() {
  EnergyReport e = force_->compute_all(system_.positions(), f_short_);
  // compute_all overwrote f_short_ with total forces; mark stale so the next
  // step() re-evaluates the split.
  forces_fresh_ = false;
  e.kinetic = system_.kinetic_energy();
  return e;
}

}  // namespace anton::md
