#include "md/nonbonded.h"

#include <cmath>
#include <vector>

#include "common/units.h"

namespace anton::md {

namespace {

struct PartialEnergy {
  double lj = 0;
  double coul = 0;
  double virial = 0;
};

// Inner kernel over the i-range [begin, end); forces accumulated into `f`.
PartialEnergy pair_kernel(const Box& box, const Topology& top,
                          const NeighborList& nlist,
                          std::span<const Vec3> pos, double alpha,
                          double cutoff, size_t begin, size_t end,
                          std::span<Vec3> f, bool shift) {
  PartialEnergy e;
  const ForceField& ff = top.forcefield();
  const auto charges = top.charges();
  const auto types = top.types();
  constexpr double kTwoOverSqrtPi = 1.1283791670955126;
  const double cutoff2 = cutoff * cutoff;
  // Coulomb shift term per unit qq: value of the (screened) 1/r at cutoff.
  const double coul_shift =
      shift ? (alpha > 0 ? std::erfc(alpha * cutoff) / cutoff : 1.0 / cutoff)
            : 0.0;

  for (size_t i = begin; i < end; ++i) {
    const Vec3 pi = pos[i];
    const double qi = units::kCoulomb * charges[i];
    const int ti = types[i];
    Vec3 fi{};
    for (int j : nlist.neighbors_of(static_cast<int>(i))) {
      const Vec3 d = box.min_image(pi, pos[static_cast<size_t>(j)]);
      const double r2 = norm2(d);
      if (r2 >= cutoff2) continue;
      const double r = std::sqrt(r2);
      const double inv_r2 = 1.0 / r2;
      double f_pair = 0.0;

      // Lennard-Jones.
      const LjPair lj = ff.lj(ti, types[static_cast<size_t>(j)]);
      if (lj.eps > 0) {
        const double sr2 = lj.sigma * lj.sigma * inv_r2;
        const double sr6 = sr2 * sr2 * sr2;
        double e_lj = 4.0 * lj.eps * (sr6 * sr6 - sr6);
        if (shift) {
          const double src2 = lj.sigma * lj.sigma / cutoff2;
          const double src6 = src2 * src2 * src2;
          e_lj -= 4.0 * lj.eps * (src6 * src6 - src6);
        }
        f_pair += 24.0 * lj.eps * (2.0 * sr6 * sr6 - sr6) * inv_r2;
        e.lj += e_lj;
      }

      // Coulomb (screened when alpha > 0).
      const double qq = qi * charges[static_cast<size_t>(j)];
      if (qq != 0.0) {
        double e_c, f_c;
        if (alpha > 0) {
          const double ar = alpha * r;
          const double erfc_ar = std::erfc(ar);
          e_c = qq * (erfc_ar / r - coul_shift);
          f_c = qq *
                (erfc_ar / r + kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) *
                inv_r2;
        } else {
          e_c = qq * (1.0 / r - coul_shift);
          f_c = qq / r * inv_r2;
        }
        e.coul += e_c;
        f_pair += f_c;
      }

      const Vec3 fv = f_pair * d;
      e.virial += dot(d, fv);
      fi += fv;
      f[static_cast<size_t>(j)] -= fv;
    }
    f[i] += fi;
  }
  return e;
}

}  // namespace

void compute_nonbonded(const Box& box, const Topology& top,
                       const NeighborList& nlist, std::span<const Vec3> pos,
                       double alpha, std::span<Vec3> forces,
                       EnergyReport& energy, ThreadPool* pool,
                       bool shift_at_cutoff) {
  ANTON_CHECK(nlist.built());
  ANTON_CHECK(nlist.num_atoms() == top.num_atoms());
  const double cutoff = nlist.cutoff();
  const size_t n = pos.size();

  if (pool == nullptr || pool->size() <= 1 || n < 2048) {
    const PartialEnergy e = pair_kernel(box, top, nlist, pos, alpha, cutoff,
                                        0, n, forces, shift_at_cutoff);
    energy.lj += e.lj;
    energy.coulomb_real += e.coul;
    energy.virial += e.virial;
    return;
  }

  // Threaded path: per-thread force buffers, reduced afterwards.  The j-side
  // scatter makes in-place accumulation racy otherwise.
  const unsigned nthreads = pool->size();
  std::vector<std::vector<Vec3>> buffers(nthreads,
                                         std::vector<Vec3>(n, Vec3{}));
  std::vector<PartialEnergy> partials(nthreads);
  const size_t chunk = (n + nthreads - 1) / nthreads;
  pool->for_each_thread([&](unsigned t) {
    const size_t begin = std::min(n, static_cast<size_t>(t) * chunk);
    const size_t end = std::min(n, begin + chunk);
    if (begin < end) {
      partials[t] = pair_kernel(box, top, nlist, pos, alpha, cutoff, begin,
                                end, buffers[t], shift_at_cutoff);
    }
  });
  for (unsigned t = 0; t < nthreads; ++t) {
    energy.lj += partials[t].lj;
    energy.coulomb_real += partials[t].coul;
    energy.virial += partials[t].virial;
    const auto& buf = buffers[t];
    for (size_t i = 0; i < n; ++i) forces[i] += buf[i];
  }
}

double ewald_self_energy(const Topology& top, double alpha) {
  double q2 = 0;
  for (double q : top.charges()) q2 += q * q;
  return -units::kCoulomb * alpha / std::sqrt(M_PI) * q2;
}

void compute_excluded_correction(const Box& box, const Topology& top,
                                 std::span<const Vec3> pos, double alpha,
                                 std::span<Vec3> forces,
                                 EnergyReport& energy) {
  constexpr double kTwoOverSqrtPi = 1.1283791670955126;
  for (int i = 0; i < top.num_atoms(); ++i) {
    const double qi = units::kCoulomb * top.charge(i);
    if (qi == 0.0) continue;
    for (int j : top.exclusions_of(i)) {
      const double qq = qi * top.charge(j);
      if (qq == 0.0) continue;
      const Vec3 d = box.min_image(pos[static_cast<size_t>(i)],
                                   pos[static_cast<size_t>(j)]);
      const double r2 = norm2(d);
      const double r = std::sqrt(r2);
      const double ar = alpha * r;
      const double erf_ar = std::erf(ar);
      // Subtract E = qq erf(ar)/r.
      energy.coulomb_excl -= qq * erf_ar / r;
      // F_i for energy -qq erf(ar)/r: gradient of erf/r is
      // (2a/sqrt(pi) exp(-a²r²) r - erf(ar)) / r²  along r̂.
      const double f_mag =
          -qq *
          (erf_ar / r - kTwoOverSqrtPi * alpha * std::exp(-ar * ar)) / r2;
      const Vec3 f = f_mag * d;
      energy.virial += dot(d, f);
      forces[static_cast<size_t>(i)] += f;
      forces[static_cast<size_t>(j)] -= f;
    }
  }
}

}  // namespace anton::md
